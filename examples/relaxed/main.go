// relaxed: strict persistency under relaxed consistency (§4.1/§4.2),
// executable.
//
// The paper notes that under relaxed consistency "the programmer is
// now responsible for inserting the correct memory barriers", and that
// with decoupled barriers "persists may reorder across store barriers
// and store visibility may reorder across persist barriers". This
// example runs the persistent queue on a PSO-style machine (store
// buffers; visibility reorders) and shows:
//
//  1. without consistency fences, a crash can expose the head pointer
//     ahead of its entry — even under STRICT persistency, whose persist
//     order is exactly the visible store order;
//  2. adding fences at the annotation points restores recovery
//     correctness for every persistency model.
//
// Run with: go run ./examples/relaxed
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/memory"
	"repro/internal/observer"
	"repro/internal/queue"
	"repro/internal/trace"
)

func run(fences bool, policy queue.Policy, model core.Model) (reachableCorruption error) {
	for seed := int64(0); seed < 15; seed++ {
		tr := &trace.Trace{}
		m := exec.NewMachine(exec.Config{
			Threads: 2, Seed: seed, Sink: tr,
			Consistency: exec.PSO, // store visibility reorders
		})
		s := m.SetupThread()
		q := queue.MustNew(s, queue.Config{
			DataBytes: 1 << 13, Design: queue.CWL, Policy: policy, Fences: fences,
		})
		meta := q.Meta()
		m.Run(func(t *exec.Thread) {
			for i := 0; i < 6; i++ {
				q.Insert(t, queue.MakePayload(uint64(t.TID())*100+uint64(i), 48))
			}
		})
		rec := func(im *memory.Image) error {
			_, err := queue.Recover(im, meta)
			return err
		}
		corr, err := observer.FindCorruption(tr, core.Params{Model: model}, rec,
			observer.Config{Samples: 500, Seed: seed})
		if err != nil {
			panic(err)
		}
		if corr != nil {
			return corr
		}
	}
	return nil
}

func main() {
	fmt.Println("persistent queue on a PSO machine (store visibility reorders)")
	fmt.Println()

	if corr := run(false, queue.PolicyStrict, core.Strict); corr != nil {
		fmt.Printf("strict persistency, no fences : CORRUPTIBLE — %v\n", corr)
	} else {
		fmt.Println("strict persistency, no fences : no corruption sampled (rerun)")
	}
	if corr := run(true, queue.PolicyStrict, core.Strict); corr == nil {
		fmt.Println("strict persistency, fenced    : every sampled crash state recovers")
	} else {
		panic(fmt.Sprintf("BUG: fenced strict corrupted: %v", corr))
	}
	if corr := run(true, queue.PolicyEpoch, core.Epoch); corr == nil {
		fmt.Println("epoch persistency,  fenced    : every sampled crash state recovers")
	} else {
		panic(fmt.Sprintf("BUG: fenced epoch corrupted: %v", corr))
	}

	fmt.Println()
	fmt.Println("on SC machines the queue's persist barriers suffice; on relaxed")
	fmt.Println("consistency the same code also needs store fences, because persist")
	fmt.Println("barriers order persists with respect to *visible* store order —")
	fmt.Println("the decoupling of consistency and persistency the paper formalizes.")
}
