// kvstore: a persistent key-value store with atomic multi-key updates,
// built directly on the persistency API (not on the queue) — showing
// how epoch persistency orders an undo log the way the paper's §6
// queue orders data before its head pointer.
//
// Layout (persistent):
//
//	slots:  N × 16 bytes of [key, value]
//	undo:   a one-transaction undo log:
//	        [count][ (slot, oldKey, oldValue) … ][commit flag]
//
// An update appends undo records, persist-barriers, flips the commit
// flag on (log valid), barriers, applies the new values, barriers, and
// clears the flag. Recovery rolls back a mid-flight transaction iff
// the flag is set, so every crash state yields either the old or the
// new values of a transaction — never a mix.
//
// The example verifies exactly that with the recovery observer, and
// then demonstrates the negative: removing one barrier makes a torn
// state reachable.
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/memory"
	"repro/internal/trace"
)

const (
	slotCount = 8
	slotSize  = 16
	undoMax   = 4
)

// store is the persistent KV layout.
type store struct {
	slots  memory.Addr // slotCount × [key, value]
	undo   memory.Addr // [count][undoMax × (slot, oldKey, oldVal)]
	commit memory.Addr // flag word
	// barriers toggles the undo-log ordering barriers (negative test).
	barriers bool
}

func newStore(s *exec.Thread, barriers bool) *store {
	st := &store{
		slots:    s.MallocPersistent(slotCount*slotSize, 64),
		undo:     s.MallocPersistent(8+undoMax*24, 64),
		commit:   s.MallocPersistent(8, 64),
		barriers: barriers,
	}
	s.PersistBarrier()
	return st
}

func (st *store) barrier(t *exec.Thread) {
	if st.barriers {
		t.PersistBarrier()
	}
}

// update atomically sets several slot/value pairs.
func (st *store) update(t *exec.Thread, pairs map[int]uint64) {
	// 1. Write undo records.
	i := 0
	for slot := range pairs {
		rec := st.undo + 8 + memory.Addr(i*24)
		a := st.slots + memory.Addr(slot*slotSize)
		t.Store8(rec, uint64(slot))
		t.Store8(rec+8, t.Load8(a))
		t.Store8(rec+16, t.Load8(a+8))
		i++
	}
	t.Store8(st.undo, uint64(len(pairs)))
	st.barrier(t) // undo records before the commit flag
	// 2. Arm the log.
	t.Store8(st.commit, 1)
	st.barrier(t) // flag before in-place updates
	// 3. Apply in place.
	for slot, val := range pairs {
		a := st.slots + memory.Addr(slot*slotSize)
		t.Store8(a, uint64(slot)) // key
		t.Store8(a+8, val)
	}
	st.barrier(t) // updates before disarming
	// 4. Disarm.
	t.Store8(st.commit, 0)
	// 5. Transaction-end barrier. Without it the *next* transaction's
	// undo records persist concurrently with this disarm, and a crash
	// can expose flag=1 alongside a half-overwritten undo log — a torn
	// rollback. (This run's earlier revision hit exactly that state;
	// the observer caught it. Epoch persistency demands the barrier.)
	st.barrier(t)
}

// recoverStore applies the undo log of a crashed image and returns the
// table.
func recoverStore(im *memory.Image, slots, undo, commit memory.Addr) map[uint64]uint64 {
	vals := make(map[uint64]uint64)
	read := func(i int) (k, v uint64) {
		a := slots + memory.Addr(i*slotSize)
		return im.ReadWord(a), im.ReadWord(a + 8)
	}
	table := make(map[int][2]uint64)
	for i := 0; i < slotCount; i++ {
		k, v := read(i)
		table[i] = [2]uint64{k, v}
	}
	if im.ReadWord(commit) == 1 {
		// Mid-flight transaction: roll back.
		n := im.ReadWord(undo)
		for i := uint64(0); i < n && i < undoMax; i++ {
			rec := undo + 8 + memory.Addr(i*24)
			slot := im.ReadWord(rec)
			table[int(slot)] = [2]uint64{im.ReadWord(rec + 8), im.ReadWord(rec + 16)}
		}
	}
	for _, kv := range table {
		if kv[0] != 0 || kv[1] != 0 {
			vals[kv[0]] = kv[1]
		}
	}
	return vals
}

// consistent checks that every committed transaction is all-or-nothing:
// after txn j sets slots {1,2} to j*100+slot, a recovered state must
// show both slots from the same transaction (or both untouched).
func consistent(vals map[uint64]uint64) bool {
	v1, ok1 := vals[1]
	v2, ok2 := vals[2]
	if !ok1 && !ok2 {
		return true
	}
	if ok1 != ok2 {
		return false
	}
	return v2-v1 == 1 // txn j writes j*100+1 and j*100+2
}

func run(withBarriers bool) (torn int, total int) {
	tr := &trace.Trace{}
	m := exec.NewMachine(exec.Config{Threads: 1, Seed: 5, Sink: tr})
	s := m.SetupThread()
	st := newStore(s, withBarriers)
	m.Run(func(t *exec.Thread) {
		for j := uint64(1); j <= 6; j++ {
			st.update(t, map[int]uint64{1: j*100 + 1, 2: j*100 + 2})
		}
	})
	g, err := graph.Build(tr, core.Params{Model: core.Epoch})
	if err != nil {
		panic(err)
	}
	// Enumerate a large random sample of crash states.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		cut := g.SampleCut(rng, []float64{0.2, 0.5, 0.8, 0.97}[i%4])
		vals := recoverStore(g.Materialize(cut), st.slots, st.undo, st.commit)
		total++
		if !consistent(vals) {
			torn++
		}
	}
	return torn, total
}

func main() {
	torn, total := run(true)
	fmt.Printf("with undo-log barriers   : %d/%d crash states torn\n", torn, total)
	tornNo, totalNo := run(false)
	fmt.Printf("without barriers         : %d/%d crash states torn\n", tornNo, totalNo)
	if torn != 0 {
		panic("BUG: correctly annotated store tore a transaction")
	}
	if tornNo == 0 {
		fmt.Println("\n(note: no torn state sampled this run without barriers — rerun")
		fmt.Println(" with another seed; the state is reachable, sampling is random)")
	} else {
		fmt.Println("\nthe persist barriers are load-bearing: without them, epoch")
		fmt.Println("persistency lets the in-place updates persist before the undo")
		fmt.Println("log, and a crash exposes a torn multi-key transaction.")
	}
}
