// Quickstart: trace a tiny persistent workload on the simulated
// machine and compare persist critical paths under the paper's
// persistency models.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/memory"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	// Record a trace of a little two-thread program that persists a
	// handful of values with epoch annotations.
	tr := &trace.Trace{}
	m := exec.NewMachine(exec.Config{Threads: 2, Seed: 1, Sink: tr})

	// Shared state is allocated before the threads start.
	s := m.SetupThread()
	buf := s.MallocPersistent(1024, 64) // a persistent buffer
	cnt := s.MallocPersistent(8, 64)    // a persistent counter

	m.Run(func(t *exec.Thread) {
		for i := 0; i < 10; i++ {
			t.BeginWork(uint64(t.TID()*100 + i))
			// Persist a record: three fields, then a barrier, then bump
			// the shared counter. The barrier orders record → counter;
			// the three field persists stay concurrent under relaxed
			// models.
			rec := buf + memory.Addr(t.TID()*512+i*48)
			t.Store8(rec, uint64(i))
			t.Store8(rec+8, uint64(i*i))
			t.Store8(rec+16, uint64(t.TID()))
			t.PersistBarrier()
			t.Add8(cnt, 1)
			t.EndWork(uint64(t.TID()*100 + i))
		}
	})

	fmt.Printf("traced %d events, %d persists\n\n",
		tr.Len(), trace.Summarize(tr).Persists)

	// Replay the same trace through every persistency model in a single
	// pass (SimulateAll walks the trace once, feeding all models).
	const latency = 500 * time.Nanosecond
	tbl := stats.NewTable("model", "critical path", "coalesced", "persist-bound rate")
	rs, err := core.SimulateAll(tr, core.Params{})
	if err != nil {
		panic(err)
	}
	for _, r := range rs {
		tbl.AddRow(
			r.Model.String(),
			fmt.Sprint(r.CriticalPath),
			fmt.Sprint(r.Coalesced),
			stats.FormatRate(r.PersistBoundRate(latency)),
		)
	}
	fmt.Printf("persist concurrency by model (at %v persist latency):\n\n%s", latency, tbl)
	fmt.Println("\nstrict persistency serializes each thread's persists in program")
	fmt.Println("order; epoch persistency keeps each record's fields concurrent and")
	fmt.Println("pays only for the record→counter barrier; the counter persists")
	fmt.Println("serialize under every model (strong persist atomicity).")
}
