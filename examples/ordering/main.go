// ordering: the paper's Figure 1, executable.
//
// Two threads persist to objects A and B in opposite program orders
// with persist barriers between. If thread 1's *store visibility* is
// allowed to reorder across its persist barrier (relaxed consistency),
// coherence serializes the persists to each object in an order that,
// combined with the barrier constraints and strong persist atomicity,
// forms a cycle — an unsatisfiable persist order. The paper concludes
// that a system cannot simultaneously (1) let store visibility reorder
// across persist barriers, (2) enforce persist barriers, and (3)
// guarantee strong persist atomicity; one of the three must give.
//
// Run with: go run ./examples/ordering
package main

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/trace"
)

func build(visibilityReorders, strongAtomicity bool) (*graph.Graph, []string) {
	var g graph.Graph
	names := []string{
		"T1: persist A",
		"T1: persist B",
		"T2: persist B",
		"T2: persist A",
	}
	t1A := g.AddNode(names[0], trace.Event{})
	t1B := g.AddNode(names[1], trace.Event{})
	t2B := g.AddNode(names[2], trace.Event{})
	t2A := g.AddNode(names[3], trace.Event{})

	// Persist barriers (program order on each thread).
	g.AddEdge(t1A, t1B, graph.ProgramOrder)
	g.AddEdge(t2B, t2A, graph.ProgramOrder)

	if strongAtomicity {
		if visibilityReorders {
			// T1's stores become visible B-first, so coherence orders
			// T1's B before T2's B, and T2's A before T1's A.
			g.AddEdge(t1B, t2B, graph.Atomicity)
			g.AddEdge(t2A, t1A, graph.Atomicity)
		} else {
			// Visibility follows program order: T1 entirely first.
			g.AddEdge(t1A, t2A, graph.Atomicity)
			g.AddEdge(t1B, t2B, graph.Atomicity)
		}
	}
	return &g, names
}

func report(title string, g *graph.Graph, names []string) {
	cyc := g.FindCycle()
	fmt.Printf("%s:\n", title)
	if cyc == nil {
		fmt.Printf("  satisfiable — a valid persist order exists (critical path %d)\n\n", g.CriticalPath())
		return
	}
	fmt.Printf("  CYCLE — no persist order can satisfy the constraints:\n")
	for _, id := range cyc {
		fmt.Printf("    %s ->\n", names[id])
	}
	fmt.Printf("    %s (back to start)\n\n", names[cyc[0]])
}

func main() {
	fmt.Println("Figure 1: store visibility reordering vs. persist barriers vs.")
	fmt.Println("strong persist atomicity — pick any two.")
	fmt.Println()

	g, names := build(true, true)
	report("visibility reorders + barriers + strong persist atomicity", g, names)

	g2, n2 := build(false, true)
	report("barriers coupled to store visibility (no reordering)", g2, n2)

	g3, n3 := build(true, false)
	report("strong persist atomicity relaxed", g3, n3)

	fmt.Println("the two resolutions are exactly the paper's: couple persist and")
	fmt.Println("store barriers, or relax strong persist atomicity and add explicit")
	fmt.Println("atomicity barriers where needed.")
}
