// WAL: a database-style write-ahead log on the persistent queue — the
// paper's motivating workload ("several workloads require
// high-performance persistent queues, such as write ahead logs (WAL)
// in databases and journaled file systems", §6).
//
// The example appends SET operations to the queue from several
// simulated threads, then uses the recovery observer to crash the
// system at random points and replays the surviving log records into a
// fresh table, demonstrating the recovery guarantee: the recovered
// table is always a consistent prefix-closed state, never corrupt.
//
// Run with: go run ./examples/wal
package main

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/queue"
	"repro/internal/trace"
)

// record is one WAL entry: SET key = value by a transaction id.
type record struct {
	txn   uint64
	key   uint64
	value uint64
}

func (r record) encode() []byte {
	b := make([]byte, 24)
	binary.LittleEndian.PutUint64(b[0:], r.txn)
	binary.LittleEndian.PutUint64(b[8:], r.key)
	binary.LittleEndian.PutUint64(b[16:], r.value)
	return b
}

func decode(b []byte) record {
	return record{
		txn:   binary.LittleEndian.Uint64(b[0:]),
		key:   binary.LittleEndian.Uint64(b[8:]),
		value: binary.LittleEndian.Uint64(b[16:]),
	}
}

// replay folds log records into a table.
func replay(entries []queue.Entry) map[uint64]uint64 {
	table := make(map[uint64]uint64)
	for _, e := range entries {
		r := decode(e.Payload)
		table[r.key] = r.value
	}
	return table
}

func main() {
	const (
		threads = 3
		txns    = 8 // per thread
	)

	// Trace a run that appends WAL records under racing-epoch
	// annotations (the paper's high-concurrency configuration).
	tr := &trace.Trace{}
	m := exec.NewMachine(exec.Config{Threads: threads, Seed: 7, Sink: tr})
	s := m.SetupThread()
	log := queue.MustNew(s, queue.Config{
		DataBytes:  1 << 13,
		Design:     queue.CWL,
		Policy:     queue.PolicyRacingEpoch,
		MaxThreads: threads,
	})
	meta := log.Meta()
	m.Run(func(t *exec.Thread) {
		for i := 0; i < txns; i++ {
			r := record{
				txn:   uint64(t.TID())<<32 | uint64(i),
				key:   uint64(t.TID()*10 + i%4),
				value: uint64(i * 1000),
			}
			log.Insert(t, r.encode())
		}
	})

	// Build the persist-order DAG under epoch persistency and crash the
	// system at random consistent cuts.
	g, err := graph.Build(tr, core.Params{Model: core.Epoch})
	if err != nil {
		panic(err)
	}
	fmt.Printf("WAL run: %d records appended, %d persists in the DAG\n\n",
		threads*txns, g.Len())

	// Crash at increasing points of the persist drain: the recovered
	// log is always a clean prefix of the appended records.
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		cut := g.PrefixCut(int(frac * float64(g.Len())))
		entries, err := queue.Recover(g.Materialize(cut), meta)
		if err != nil {
			// Under correct annotations this is unreachable; seeing it
			// would mean the persistency model was violated.
			panic(fmt.Sprintf("WAL corrupt after crash: %v", err))
		}
		table := replay(entries)
		fmt.Printf("crash at %3.0f%% of persist drain: %2d/%2d records recovered, %d keys replayed — consistent\n",
			frac*100, len(entries), threads*txns, len(table))
	}

	// Adversarial crashes: random consistent cuts (out-of-order persist
	// completion within the model's freedom) must also recover.
	rng := rand.New(rand.NewSource(99))
	corrupt := 0
	for i := 0; i < 2000; i++ {
		cut := g.SampleCut(rng, []float64{0.3, 0.7, 0.95}[i%3])
		if _, err := queue.Recover(g.Materialize(cut), meta); err != nil {
			corrupt++
		}
	}
	fmt.Printf("\n2000 adversarial crash states: %d corrupt\n", corrupt)
	if corrupt > 0 {
		panic("WAL recovery violated — persistency model broken")
	}

	fmt.Println("\nevery crash exposes a clean log prefix per the queue's recovery")
	fmt.Println("rule; replay always yields a consistent table. This is the paper's")
	fmt.Println("recovery-correctness guarantee, exercised end to end.")
}
