// fsmeta: journaled file-system-style metadata updates — the paper's
// other motivating workload ("file systems must constrain the order of
// disk operations to metadata to preserve a consistent file system
// image", §9) — built on internal/journal.
//
// A rename-like operation atomically updates two "inode" blocks (the
// source and destination directories). The example crashes the system
// at thousands of points under epoch persistency and verifies that
// recovery never observes half a rename; then it demonstrates why the
// racing-epochs discipline, safe for the queue, is NOT safe here.
//
// Run with: go run ./examples/fsmeta
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/journal"
	"repro/internal/memory"
	"repro/internal/observer"
	"repro/internal/trace"
)

const (
	dirs      = 3 // "directory inode" pairs
	renames   = 6 // per thread
	threads   = 3
	ringBytes = 1 << 11 // small: forces checkpoint truncations
)

// runFS executes the rename workload under a policy and returns the
// trace plus recovery metadata.
func runFS(policy journal.Policy, seed int64) (*trace.Trace, journal.Meta) {
	tr := &trace.Trace{}
	m := exec.NewMachine(exec.Config{Threads: threads, Seed: seed, Sink: tr})
	s := m.SetupThread()
	st := journal.MustNew(s, journal.Config{
		Blocks:       2 * dirs,
		JournalBytes: ringBytes,
		Policy:       policy,
	})
	meta := st.Meta()
	m.Run(func(t *exec.Thread) {
		for i := 0; i < renames; i++ {
			// "Rename": the pair (2d, 2d+1) must change together.
			d := t.TID() % dirs
			tag := uint64(t.TID()*1000 + i + 1)
			st.Update(t, []journal.Write{
				{Block: 2 * d, Data: journal.MakeBlock(tag)},
				{Block: 2*d + 1, Data: journal.MakeBlock(tag)},
			})
		}
	})
	return tr, meta
}

// atomicityCheck verifies no half-applied rename in a recovered image.
func atomicityCheck(meta journal.Meta) func(*memory.Image) error {
	return func(im *memory.Image) error {
		state, err := journal.Recover(im, meta)
		if err != nil {
			return err
		}
		for d := 0; d < dirs; d++ {
			t0, ok0 := journal.BlockTag(state.Block(2 * d))
			t1, ok1 := journal.BlockTag(state.Block(2*d + 1))
			if !ok0 || !ok1 {
				return fmt.Errorf("directory %d: torn inode block", d)
			}
			if t0 != t1 {
				return fmt.Errorf("directory %d: half a rename (tags %d, %d)", d, t0, t1)
			}
		}
		return nil
	}
}

// crashStorm samples crash states and reports the corruption count.
func crashStorm(policy journal.Policy, seed int64) (corrupt, total int) {
	tr, meta := runFS(policy, seed)
	g, err := graph.Build(tr, core.Params{Model: core.Epoch})
	if err != nil {
		panic(err)
	}
	check := atomicityCheck(meta)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 2500; i++ {
		keep := []float64{0.2, 0.5, 0.8, 0.97}[i%4]
		if err := check(g.Materialize(g.SampleCut(rng, keep))); err != nil {
			corrupt++
		}
		total++
	}
	return corrupt, total
}

func main() {
	fmt.Printf("journaled metadata: %d threads × %d renames, %dB ring (checkpoints occur)\n\n",
		threads, renames, ringBytes)

	c, n := crashStorm(journal.PolicyEpoch, 1)
	fmt.Printf("epoch discipline         : %4d/%d crash states corrupt\n", c, n)

	// The racing hazard's window is narrow (a truncation racing another
	// thread's buffered applies); hunt across seeds with the observer.
	var racingErr error
	for seed := int64(0); seed < 16 && racingErr == nil; seed++ {
		tr, meta := runFS(journal.PolicyRacingEpoch, seed)
		racingErr, _ = observer.FindCorruption(tr, core.Params{Model: core.Epoch},
			observer.RecoverFunc(atomicityCheck(meta)), observer.Config{Samples: 800, Seed: seed})
	}
	if racingErr != nil {
		fmt.Printf("racing-epochs discipline : corruption reachable — %v\n", racingErr)
	} else {
		fmt.Println("racing-epochs discipline : no corruption sampled (rerun; the state is reachable)")
	}

	if c != 0 {
		panic("BUG: epoch-annotated journal corrupted")
	}
	fmt.Println("\nthe queue tolerates racing epochs (strong persist atomicity guards")
	fmt.Println("its head pointer), but the journal's checkpoint truncation needs the")
	fmt.Println("barriers around the lock: relaxed annotation is a per-algorithm")
	fmt.Println("contract, which is the paper's deeper point about persistency models.")
}
