package repro

// One testing.B benchmark per table and figure in the paper's
// evaluation (§8), plus the reproduction's ablations. Each benchmark
// regenerates its artifact at reduced scale and reports the paper's
// metric via b.ReportMetric:
//
//	BenchmarkTable1      norm=… (persist-bound rate / instruction rate)
//	BenchmarkFigure1     cycle detection on the Figure 1 constraint graph
//	BenchmarkFigure2     constraint edges per class per model
//	BenchmarkFigure3     break-even persist latency per model
//	BenchmarkFigure4     critical path per insert vs atomic persist size
//	BenchmarkFigure5     critical path per insert vs tracking granularity
//	BenchmarkBanksAblation, BenchmarkUnbufferedStrict
//
// Full-scale runs: cmd/pqbench. Absolute host rates differ from the
// paper's testbed; the reported shapes are the reproduction target.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nvram"
	"repro/internal/queue"
	"repro/internal/sweep"
	"repro/internal/trace"
)

const (
	benchInserts = 2000
	benchPayload = 100
	benchLatency = 500 * time.Nanosecond
	// benchInstrRate pins the instruction rate so reported normalized
	// values are stable across hosts; cmd/pqbench measures it live.
	benchInstrRate = 4e6
)

func BenchmarkTable1(b *testing.B) {
	for _, threads := range []int{1, 8} {
		for _, design := range []queue.Design{queue.CWL, queue.TwoLock} {
			for _, pol := range queue.Policies {
				name := fmt.Sprintf("%v/%v/%dT", design, pol, threads)
				b.Run(name, func(b *testing.B) {
					var r core.Result
					for i := 0; i < b.N; i++ {
						w := bench.Workload{
							Design: design, Policy: pol, Threads: threads,
							Inserts: benchInserts, PayloadLen: benchPayload, Seed: 42,
						}
						var err error
						r, err = bench.Simulate(w, core.Params{Model: bench.ModelFor(pol)})
						if err != nil {
							b.Fatal(err)
						}
					}
					norm := r.PersistBoundRate(benchLatency) / benchInstrRate
					if norm > 1000 {
						norm = 1000 // cap +Inf-ish values for readability
					}
					b.ReportMetric(norm, "norm")
					b.ReportMetric(r.PathPerWork(), "levels/insert")
					b.ReportMetric(float64(r.Coalesced), "coalesced")
				})
			}
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var g graph.Graph
		t1A := g.AddNode("T1:A", trace.Event{})
		t1B := g.AddNode("T1:B", trace.Event{})
		t2B := g.AddNode("T2:B", trace.Event{})
		t2A := g.AddNode("T2:A", trace.Event{})
		g.AddEdge(t1A, t1B, graph.ProgramOrder)
		g.AddEdge(t2B, t2A, graph.ProgramOrder)
		g.AddEdge(t1B, t2B, graph.Atomicity)
		g.AddEdge(t2A, t1A, graph.Atomicity)
		if g.FindCycle() == nil {
			b.Fatal("Figure 1 constraints must cycle")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	var rows []bench.Fig2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig2(100, 42, sweep.Config{}, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.CriticalPath), "cp-"+r.Policy.String())
	}
}

func BenchmarkFigure3(b *testing.B) {
	var points []bench.Fig3Point
	for i := 0; i < b.N; i++ {
		var err error
		points, err = bench.Fig3(bench.Fig3Config{
			Inserts: benchInserts, PayloadLen: benchPayload,
			Seed: 42, InstrRate: benchInstrRate,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pol := range bench.Fig3Policies {
		be := bench.BreakEvenLatency(points, pol)
		b.ReportMetric(float64(be.Nanoseconds()), "breakeven-ns-"+pol.String())
	}
}

func BenchmarkFigure4(b *testing.B) {
	var points []bench.GranPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = bench.Fig4(bench.GranularityConfig{Inserts: 1000, PayloadLen: benchPayload, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Granularity == 8 || p.Granularity == 256 {
			b.ReportMetric(p.PathPerInsert, fmt.Sprintf("lvl-%s-%dB", p.Policy, p.Granularity))
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	var points []bench.GranPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = bench.Fig5(bench.GranularityConfig{Inserts: 1000, PayloadLen: benchPayload, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Granularity == 8 || p.Granularity == 256 {
			b.ReportMetric(p.PathPerInsert, fmt.Sprintf("lvl-%s-%dB", p.Policy, p.Granularity))
		}
	}
}

// BenchmarkBanksAblation quantifies the paper's §3 caveat: with few
// banks, device conflicts rather than ordering constraints bound
// throughput.
func BenchmarkBanksAblation(b *testing.B) {
	w := bench.Workload{Design: queue.CWL, Policy: queue.PolicyEpoch, Threads: 4, Inserts: 500, PayloadLen: benchPayload, Seed: 42}
	tr, err := bench.Trace(w)
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.Build(tr, core.Params{Model: core.Epoch})
	if err != nil {
		b.Fatal(err)
	}
	for _, banks := range []int{0, 1, 8, 64} {
		name := fmt.Sprintf("banks=%d", banks)
		if banks == 0 {
			name = "banks=inf"
		}
		b.Run(name, func(b *testing.B) {
			var r nvram.Result
			for i := 0; i < b.N; i++ {
				r, err = nvram.Schedule(g, nvram.Config{Latency: benchLatency, Banks: banks, AtomicGranularity: 64})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.Makespan.Nanoseconds())/float64(r.IdealMakespan.Nanoseconds()), "makespan/ideal")
		})
	}
}

// BenchmarkJournalTable regenerates the journaled-metadata persist
// concurrency table (reproduction-added workload).
func BenchmarkJournalTable(b *testing.B) {
	var rows []bench.JournalRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.JournalTable(500, []int{1}, 42, sweep.Config{}, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.PathPerTxn, "path-"+r.Policy.String())
	}
}

// BenchmarkPSTMTable regenerates the durable-transaction persist
// concurrency table (reproduction-added workload).
func BenchmarkPSTMTable(b *testing.B) {
	var rows []bench.PSTMRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.PSTMTable(500, []int{1}, 42, sweep.Config{}, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.PathPerTxn, "path-"+r.Policy.String())
	}
}

// BenchmarkUnbufferedStrict compares §4.1's buffered and unbuffered
// strict persistency execution models.
func BenchmarkUnbufferedStrict(b *testing.B) {
	var r core.Result
	for i := 0; i < b.N; i++ {
		w := bench.Workload{Design: queue.CWL, Policy: queue.PolicyStrict, Threads: 1, Inserts: benchInserts, PayloadLen: benchPayload, Seed: 42}
		var err error
		r, err = bench.Simulate(w, core.Params{Model: core.Strict})
		if err != nil {
			b.Fatal(err)
		}
	}
	buffered := r.PersistBoundRate(benchLatency)
	unbuffered := bench.UnbufferedRate(r, benchInstrRate, benchLatency)
	b.ReportMetric(buffered/benchInstrRate, "buffered-norm")
	b.ReportMetric(unbuffered/benchInstrRate, "unbuffered-norm")
}
