package repro

// End-to-end integration tests: the full pipeline — simulated
// execution → trace → persistency models → constraint DAG → recovery
// observer — exercised the way the tools and examples drive it.

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/memory"
	"repro/internal/observer"
	"repro/internal/queue"
	"repro/internal/trace"
)

// TestEndToEndPipeline walks one workload through every layer.
func TestEndToEndPipeline(t *testing.T) {
	// 1. Execute and trace.
	tr := &trace.Trace{}
	m := exec.NewMachine(exec.Config{Threads: 2, Seed: 42, Sink: tr})
	s := m.SetupThread()
	q := queue.MustNew(s, queue.Config{DataBytes: 1 << 13, Design: queue.CWL, Policy: queue.PolicyEpoch})
	meta := q.Meta()
	m.Run(func(th *exec.Thread) {
		for i := 0; i < 8; i++ {
			id := uint64(th.TID())<<16 | uint64(i)
			th.BeginWork(id)
			q.Insert(th, queue.MakePayload(id, 64))
			th.EndWork(id)
		}
	})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}

	// 2. Timing simulation across models: relaxation hierarchy.
	var cps []int64
	for _, model := range []core.Model{core.Strand, core.Epoch, core.Strict} {
		r, err := core.Simulate(tr, core.Params{Model: model})
		if err != nil {
			t.Fatal(err)
		}
		if r.WorkItems != 16 {
			t.Fatalf("%v: work items %d", model, r.WorkItems)
		}
		cps = append(cps, r.CriticalPath)
	}
	if !(cps[0] <= cps[1] && cps[1] < cps[2]) {
		t.Fatalf("hierarchy violated: strand %d epoch %d strict %d", cps[0], cps[1], cps[2])
	}

	// 3. Constraint DAG agrees with the simulator (no coalescing).
	g, err := graph.Build(tr, core.Params{Model: core.Epoch})
	if err != nil {
		t.Fatal(err)
	}
	rNoCo, err := core.Simulate(tr, core.Params{Model: core.Epoch, NoCoalescing: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.CriticalPath() != rNoCo.CriticalPath {
		t.Fatalf("graph %d vs sim %d", g.CriticalPath(), rNoCo.CriticalPath)
	}

	// 4. Full-cut materialization equals machine memory, and recovery
	// returns every entry.
	im := g.Materialize(g.Full())
	if !im.Equal(m.PersistentImage()) {
		t.Fatal("materialized image differs from machine memory")
	}
	entries, err := queue.Recover(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 16 {
		t.Fatalf("recovered %d entries", len(entries))
	}

	// 5. Observer: adversarial sweep is clean.
	rec := func(im *memory.Image) error {
		_, err := queue.Recover(im, meta)
		return err
	}
	out, err := observer.Adversarial(tr, core.Params{Model: core.Epoch}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllRecovered() {
		t.Fatalf("observer: %v", out)
	}
}

// TestTraceCodecRoundTripsWorkload checks the on-disk trace format on a
// real workload, and that the decoded trace simulates identically.
func TestTraceCodecRoundTripsWorkload(t *testing.T) {
	tr, err := bench.Trace(bench.Workload{Design: queue.TwoLock, Policy: queue.PolicyRacingEpoch, Threads: 3, Inserts: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Simulate(tr, core.Params{Model: core.Epoch})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Simulate(back, core.Params{Model: core.Epoch})
	if err != nil {
		t.Fatal(err)
	}
	if a.CriticalPath != b.CriticalPath || a.Persists != b.Persists {
		t.Fatalf("decoded trace simulates differently: %+v vs %+v", a, b)
	}
}

// TestDeterministicTable1Row pins one full Table 1 cell end to end.
func TestDeterministicTable1Row(t *testing.T) {
	w := bench.Workload{Design: queue.CWL, Policy: queue.PolicyEpoch, Threads: 1, Inserts: 500, PayloadLen: 100, Seed: 42}
	r, err := bench.Simulate(w, core.Params{Model: core.Epoch})
	if err != nil {
		t.Fatal(err)
	}
	if r.CriticalPath != 2*500+1 {
		t.Fatalf("epoch CWL critical path = %d, want 1001", r.CriticalPath)
	}
	rate := r.PersistBoundRate(500 * time.Nanosecond)
	if rate < 0.9e6 || rate > 1.1e6 {
		t.Fatalf("persist-bound rate = %v, want ~1M/s", rate)
	}
}
