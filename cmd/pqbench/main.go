// Command pqbench regenerates the paper's evaluation artifacts from the
// persistent-queue workloads: Table 1 and Figures 2–5, plus this
// reproduction's device and unbuffered-strict ablations.
//
// Usage:
//
//	pqbench -experiment table1|fig2|fig3|fig4|fig5|all \
//	        [-inserts N] [-threads 1,8] [-latency 500ns] [-seed S] [-csv] \
//	        [-parallel N]
//
// plus the reproduction-added ablations: banks, window, wear, journal,
// pstm, dist, races, unbuffered.
//
// Absolute instruction rates come from this host, so the normalized
// values differ from the paper's Xeon numbers; the shapes (who wins,
// by roughly what factor, where the crossovers fall) are the
// reproduction target. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nvram"
	"repro/internal/persistcheck"
	"repro/internal/queue"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1|fig2|fig3|fig4|fig5|banks|window|unbuffered|all")
		inserts    = flag.Int("inserts", 20000, "inserts per configuration")
		threadsStr = flag.String("threads", "1,8", "comma-separated thread counts for table1")
		latency    = flag.Duration("latency", bench.DefaultLatency, "persist latency for table1")
		seed       = flag.Int64("seed", 42, "interleaving seed")
		payload    = flag.Int("payload", 100, "entry payload bytes")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		instrRate  = flag.Float64("instr-rate", 0, "fix the instruction rate (items/s) instead of measuring")
		jsonOut    = flag.Bool("json", false, "emit machine-readable JSON reports (table1/fig2/fig3/fig4/fig5/window)")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON persist timeline (Perfetto) to this file")
		traceIns   = flag.Int("trace-inserts", 200, "inserts per configuration in the -trace-out timeline pass")
		metricsOut = flag.String("metrics-out", "", "write a metrics snapshot to this file (.prom/.txt: Prometheus text, else JSON)")
		parallel   = flag.Int("parallel", 0, "sweep worker count; 0 means GOMAXPROCS, 1 forces sequential")
		traceCache = flag.Int("trace-cache", bench.DefaultCacheEntries, "workload trace cache capacity in traces; 0 disables (re-execute every workload)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file")
		blockProf  = flag.String("blockprofile", "", "write a goroutine blocking profile to this file (rate 1)")
		mutexProf  = flag.String("mutexprofile", "", "write a mutex contention profile to this file (fraction 1)")
		spansOut   = flag.String("spans-out", "", "write the harness wall-clock span trace (Chrome trace-event JSON) to this file")
		check      = flag.Bool("check", false, "run the persistency checker over the benchmark queue configurations and exit (status 2 on hazards)")
		integrity  = flag.Bool("integrity", false, "use the corruption-detecting durable format in the ablation workloads (framing overhead shows up in persist counts)")
	)
	flag.Parse()

	man := telemetry.NewManifest("pqbench").
		CaptureFlags(flag.CommandLine).
		Seed("seed", *seed).
		ModelGrid(core.Models...)
	fmt.Fprintln(os.Stderr, man.String())

	if *blockProf != "" {
		runtime.SetBlockProfileRate(1)
	}
	if *mutexProf != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	reg := telemetry.NewRegistry()
	// The span tracer is allocated only when a trace is requested —
	// spans cost a mutex acquisition per sweep item; the nil tracer
	// costs nothing.
	var spans *telemetry.SpanTracer
	if *spansOut != "" {
		spans = telemetry.NewSpanTracer(reg)
	}
	// Every experiment grid shares one sweep configuration; each sweep
	// labels its own telemetry series via Named.
	sw := sweep.Config{Parallel: *parallel, Registry: reg, Spans: spans}
	// One trace cache spans every experiment, so workloads shared across
	// experiments (e.g. fig4/fig5, banks/races) execute exactly once. A
	// nil cache streams every execution.
	var cache *bench.TraceCache
	if *traceCache > 0 {
		cache = bench.NewTraceCache(*traceCache)
	}
	cache.SetSpans(spans)
	threads, err := parseInts(*threadsStr)
	if err != nil {
		fatal(err)
	}
	if *check {
		hazards, err := checkPass(reg, threads, *inserts, *payload, *seed, *integrity)
		if err != nil {
			fatal(err)
		}
		if *metricsOut != "" {
			if err := telemetry.WriteMetrics(reg, man, *metricsOut); err != nil {
				fatal(err)
			}
		}
		if hazards > 0 {
			fmt.Printf("verdict  : %d persistency hazard(s) found\n", hazards)
			os.Exit(2)
		}
		fmt.Println("verdict  : no persistency hazards found")
		return
	}
	run := func(name string, fn func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		stop := reg.Timer(telemetry.Label("pqbench_experiment", "experiment", name)).Time()
		if !*jsonOut {
			fmt.Printf("=== %s ===\n", name)
		}
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		stop()
		if !*jsonOut {
			fmt.Println()
		}
	}
	emit := func(t *stats.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.String())
		}
	}

	run("table1", func() error {
		cfg := bench.Table1Config{
			Inserts: *inserts, PayloadLen: *payload, Threads: threads,
			Latency: *latency, Seed: *seed, InstrRate: *instrRate,
			Sweep: sw, Cache: cache,
		}
		rows, err := bench.Table1(cfg)
		if err != nil {
			return err
		}
		for _, r := range rows {
			telemetry.ObserveResult(reg, fmt.Sprintf("%v/%v/%dT", r.Design, r.Policy, r.Threads), r.Result)
		}
		if *jsonOut {
			return bench.Table1Report(cfg, rows).WithManifest(man).WriteJSON(os.Stdout)
		}
		fmt.Printf("persist-bound insert rate normalized to instruction rate (latency %v)\n", *latency)
		fmt.Println("values >= 1 (marked *) are instruction-rate-bound, as bolded in the paper")
		emit(bench.RenderTable1(rows))
		fmt.Println()
		detail := stats.NewTable("design", "policy", "threads", "instr-rate", "persist-rate", "critical-path", "path/insert", "coalesced")
		for _, r := range rows {
			detail.AddRow(
				r.Design.String(), r.Policy.String(), strconv.Itoa(r.Threads),
				stats.FormatRate(r.InstrRate), stats.FormatRate(r.PersistRate),
				strconv.FormatInt(r.CriticalPath, 10),
				fmt.Sprintf("%.2f", r.Result.PathPerWork()),
				strconv.FormatInt(r.Result.Coalesced, 10),
			)
		}
		emit(detail)
		return nil
	})

	run("fig2", func() error {
		rows, err := bench.Fig2(min(*inserts, 200), *seed, sw, cache)
		if err != nil {
			return err
		}
		if *jsonOut {
			return bench.Fig2Report(rows).WithManifest(man).WriteJSON(os.Stdout)
		}
		fmt.Println("queue persist dependence structure (CWL, 1 thread): constraint edges by class")
		fmt.Println("epoch removes the paper's 'A' constraints (intra-insert serialization);")
		fmt.Println("strand removes 'B' (inter-insert serialization), leaving atomicity edges")
		emit(bench.RenderFig2(rows))
		return nil
	})

	run("fig3", func() error {
		points, err := bench.Fig3(bench.Fig3Config{Inserts: *inserts, PayloadLen: *payload, Seed: *seed, InstrRate: *instrRate, Sweep: sw, Cache: cache})
		if err != nil {
			return err
		}
		if *jsonOut {
			return bench.Fig3Report(points).WithManifest(man).WriteJSON(os.Stdout)
		}
		fmt.Println("achievable rate (million inserts/s) vs persist latency; CWL, 1 thread")
		emit(bench.RenderFig3(points))
		for _, pol := range bench.Fig3Policies {
			fmt.Printf("break-even latency (%s): %v\n", pol, bench.BreakEvenLatency(points, pol))
		}
		return nil
	})

	run("fig4", func() error {
		points, err := bench.Fig4(bench.GranularityConfig{Inserts: min(*inserts, 5000), PayloadLen: *payload, Seed: *seed, Sweep: sw, Cache: cache})
		if err != nil {
			return err
		}
		if *jsonOut {
			return bench.GranReport("fig4", points).WithManifest(man).WriteJSON(os.Stdout)
		}
		fmt.Println("persist critical path per insert vs atomic persist granularity (tracking 8B)")
		emit(bench.RenderGran(points, "atomic"))
		return nil
	})

	run("fig5", func() error {
		points, err := bench.Fig5(bench.GranularityConfig{Inserts: min(*inserts, 5000), PayloadLen: *payload, Seed: *seed, Sweep: sw, Cache: cache})
		if err != nil {
			return err
		}
		if *jsonOut {
			return bench.GranReport("fig5", points).WithManifest(man).WriteJSON(os.Stdout)
		}
		fmt.Println("persist critical path per insert vs dependence tracking granularity (atomic 8B)")
		emit(bench.RenderGran(points, "tracking"))
		return nil
	})

	run("banks", func() error {
		// Device ablation: beyond the paper's infinite-bandwidth
		// assumption, sweep bank counts for the epoch-annotated queue.
		w := bench.Workload{Design: queue.CWL, Policy: queue.PolicyEpoch, Threads: 4, Inserts: min(*inserts, 2000), PayloadLen: *payload, Seed: *seed, Integrity: *integrity}
		tr, err := cache.Trace(w)
		if err != nil {
			return err
		}
		sp := spans.Start("graph", "build").Arg("model", core.Epoch.String())
		g, err := graph.Build(tr, core.Params{Model: core.Epoch})
		if err == nil {
			sp.Arg("frontier-ranges", g.Stats.FrontierRanges).Arg("peak-ranges", g.Stats.PeakRanges)
		}
		sp.End()
		if err != nil {
			return err
		}
		tbl := stats.NewTable("banks", "makespan", "ideal", "device-bound", "wear-max")
		for _, banks := range []int{0, 1, 2, 4, 8, 16, 64} {
			r, err := nvram.Schedule(g, nvram.Config{Latency: *latency, Banks: banks, AtomicGranularity: 64})
			if err != nil {
				return err
			}
			label := strconv.Itoa(banks)
			if banks == 0 {
				label = "inf"
			}
			telemetry.ObserveDevice(reg, "banks="+label, r)
			tbl.AddRow(label, r.Makespan.String(), r.IdealMakespan.String(),
				strconv.FormatBool(r.DeviceBound), strconv.Itoa(r.WearMax))
		}
		fmt.Println("NVRAM device ablation: epoch-annotated CWL, 4 threads, 64B banks")
		emit(tbl)
		return nil
	})

	run("window", func() error {
		points, err := bench.WindowAblation(min(*inserts, 5000), *seed, nil, sw, cache)
		if err != nil {
			return err
		}
		if *jsonOut {
			return bench.WindowReport(points).WithManifest(man).WriteJSON(os.Stdout)
		}
		fmt.Println("coalescing-window ablation: strand-annotated CWL, 1 thread")
		fmt.Println("(a finite persist buffer bounds the otherwise unbounded head coalescing)")
		emit(bench.RenderWindow(points))
		return nil
	})

	run("journal", func() error {
		rows, err := bench.JournalTable(min(*inserts, 5000), threads, *seed, sw, cache)
		if err != nil {
			return err
		}
		fmt.Println("journaled metadata store (2-block transactions): persist concurrency by policy")
		fmt.Println("(racing-epochs omitted: unsafe for this structure — see EXPERIMENTS.md)")
		emit(bench.RenderJournal(rows))
		return nil
	})

	run("dist", func() error {
		// Per-insert critical-path growth distribution: strict pays on
		// every insert; racing/strand pay rarely but in bursts.
		tbl := stats.NewTable("policy", "threads", "mean", "p50", "p90", "p99", "max")
		for _, pol := range queue.Policies {
			for _, th := range threads {
				w := bench.Workload{Design: queue.CWL, Policy: pol, Threads: th, Inserts: min(*inserts, 10000), PayloadLen: *payload, Seed: *seed, Integrity: *integrity}
				r, err := bench.SimulateCached(cache, w, core.Params{Model: bench.ModelFor(pol), TrackWorkPath: true})
				if err != nil {
					return err
				}
				xs := make([]float64, len(r.WorkPathDeltas))
				for i, d := range r.WorkPathDeltas {
					xs[i] = float64(d)
				}
				sum := stats.Summarize(xs)
				tbl.AddRow(pol.String(), strconv.Itoa(th),
					fmt.Sprintf("%.3f", sum.Mean), fmt.Sprintf("%.0f", sum.P50),
					fmt.Sprintf("%.0f", sum.P90), fmt.Sprintf("%.0f", sum.P99),
					fmt.Sprintf("%.0f", sum.Max))
			}
		}
		fmt.Println("critical-path growth per insert (CWL): distribution by policy")
		emit(tbl)
		return nil
	})

	run("races", func() error {
		// Persist-epoch races per policy (§5.2): the non-racing
		// discipline is race-free by construction; racing epochs trade
		// races for concurrency.
		tbl := stats.NewTable("policy", "threads", "persist-epochs", "races")
		for _, pol := range queue.Policies {
			for _, th := range threads {
				w := bench.Workload{Design: queue.CWL, Policy: pol, Threads: th, Inserts: min(*inserts, 2000), PayloadLen: *payload, Seed: *seed, Integrity: *integrity}
				tr, err := cache.Trace(w)
				if err != nil {
					return err
				}
				rep, err := core.DetectEpochRaces(tr, core.RaceConfig{})
				if err != nil {
					return err
				}
				tbl.AddRow(pol.String(), strconv.Itoa(th), strconv.Itoa(rep.Epochs), strconv.Itoa(rep.Total))
			}
		}
		fmt.Println("persist-epoch races detected (CWL workload)")
		emit(tbl)
		return nil
	})

	run("pstm", func() error {
		rows, err := bench.PSTMTable(min(*inserts, 5000), threads, *seed, sw, cache)
		if err != nil {
			return err
		}
		fmt.Println("durable undo-log transactions (paired-word): persist concurrency by policy")
		fmt.Println("(racing-epochs omitted: unsafe for this structure — see EXPERIMENTS.md)")
		emit(bench.RenderPSTM(rows))
		return nil
	})

	run("wear", func() error {
		// Endurance ablation (§2.1): the queue's head pointer is a wear
		// hotspot; Start-Gap leveling spreads it. The log wraps a small
		// buffer so the leveler's gap completes many cycles.
		w := bench.Workload{
			Design: queue.CWL, Policy: queue.PolicyEpoch, Threads: 1,
			Inserts: min(*inserts, 5000), PayloadLen: *payload, Seed: *seed,
			DataBytes: 1 << 16, Overwrite: true, Integrity: *integrity,
		}
		tr, err := cache.Trace(w)
		if err != nil {
			return err
		}
		sp := spans.Start("graph", "build").Arg("model", core.Epoch.String())
		g, err := graph.Build(tr, core.Params{Model: core.Epoch})
		if err == nil {
			sp.Arg("frontier-ranges", g.Stats.FrontierRanges).Arg("peak-ranges", g.Stats.PeakRanges)
		}
		sp.End()
		if err != nil {
			return err
		}
		raw, err := nvram.MeasureWear(g, 64, nil)
		if err != nil {
			return err
		}
		lines := int(w.DataBytes/64) + 64
		tbl := stats.NewTable("leveling", "max-line-writes", "lines-touched", "imbalance", "gap-moves")
		tbl.AddRow("none", strconv.Itoa(raw.MaxLine), strconv.Itoa(raw.LinesTouched), fmt.Sprintf("%.2f", raw.Imbalance()), "0")
		for _, psi := range []int{128, 32, 8} {
			sg, err := nvram.NewStartGap(lines, psi)
			if err != nil {
				return err
			}
			p, err := nvram.MeasureWear(g, 64, sg)
			if err != nil {
				return err
			}
			tbl.AddRow(fmt.Sprintf("start-gap psi=%d", psi),
				strconv.Itoa(p.MaxLine), strconv.Itoa(p.LinesTouched),
				fmt.Sprintf("%.2f", p.Imbalance()), strconv.Itoa(p.GapMoves))
		}
		fmt.Println("NVRAM endurance ablation: epoch-annotated CWL, 1 thread, 64B lines")
		emit(tbl)
		return nil
	})

	run("unbuffered", func() error {
		// Buffered vs unbuffered strict persistency (§4.1): unbuffered
		// stalls execution on every persist.
		instr := *instrRate
		if instr <= 0 {
			var err error
			instr, err = bench.NativeRate(bench.Workload{Design: queue.CWL, Threads: 1, Inserts: *inserts, PayloadLen: *payload})
			if err != nil {
				return err
			}
		}
		w := bench.Workload{Design: queue.CWL, Policy: queue.PolicyStrict, Threads: 1, Inserts: *inserts, PayloadLen: *payload, Seed: *seed, Integrity: *integrity}
		r, err := bench.SimulateCached(cache, w, core.Params{Model: core.Strict})
		if err != nil {
			return err
		}
		tbl := stats.NewTable("variant", "rate", "normalized")
		buffered := r.PersistBoundRate(*latency)
		if buffered > instr {
			buffered = instr
		}
		unbuf := bench.UnbufferedRate(r, instr, *latency)
		tbl.AddRow("instruction rate", stats.FormatRate(instr), "1.00")
		tbl.AddRow("buffered strict", stats.FormatRate(buffered), stats.FormatNorm(buffered/instr))
		tbl.AddRow("unbuffered strict", stats.FormatRate(unbuf), stats.FormatNorm(unbuf/instr))
		fmt.Printf("strict persistency execution models (CWL, 1 thread, latency %v)\n", *latency)
		emit(tbl)
		return nil
	})

	switch *experiment {
	case "all", "table1", "fig2", "fig3", "fig4", "fig5", "banks", "window", "wear", "journal", "pstm", "dist", "races", "unbuffered":
	default:
		fatal(fmt.Errorf("unknown experiment %q", *experiment))
	}

	if *traceOut != "" {
		maxT := 1
		for _, t := range threads {
			if t > maxT {
				maxT = t
			}
		}
		if err := tracePass(reg, man, *traceOut, maxT, *payload, *traceIns, *seed, *integrity); err != nil {
			fatal(err)
		}
	}
	cache.Observe(reg)
	if cache != nil && !*jsonOut {
		s := cache.Stats()
		fmt.Printf("trace cache: %d hits, %d misses, %d evictions, %.1f%% of %d events replayed\n",
			s.Hits, s.Misses, s.Evictions, 100*s.ReplayRate(), s.EventsReplayed+s.EventsGenerated)
	}
	if *spansOut != "" {
		f, err := os.Create(*spansOut)
		if err != nil {
			fatal(err)
		}
		if err := telemetry.EncodeChromeTraceDoc(f, man, spans); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pqbench: wrote %d wall-clock spans to %s\n", spans.Len(), *spansOut)
	}
	if *metricsOut != "" {
		if err := telemetry.WriteMetrics(reg, man, *metricsOut); err != nil {
			fatal(err)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
	if *blockProf != "" {
		if err := writeLookupProfile("block", *blockProf); err != nil {
			fatal(err)
		}
	}
	if *mutexProf != "" {
		if err := writeLookupProfile("mutex", *mutexProf); err != nil {
			fatal(err)
		}
	}
}

// writeLookupProfile dumps a named runtime profile (block, mutex) to
// a file in pprof format.
func writeLookupProfile(name, path string) error {
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("no %s profile", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// checkPass statically checks the queue configurations the benchmarks
// exercise: each design × annotation policy under the policy's target
// model, at every benchmarked thread count. A clean benchmark matrix
// should produce zero hazards; a hazard means the measured numbers
// belong to an incorrectly ordered structure. Checker aggregates land
// in the shared metrics registry.
func checkPass(reg *telemetry.Registry, threads []int, inserts, payload int, seed int64, integrity bool) (int, error) {
	hazards := 0
	for _, design := range []string{"cwl", "2lc"} {
		for _, policy := range []string{"strict", "epoch", "strand"} {
			for _, th := range threads {
				d, err := workload.ParseDesign(design)
				if err != nil {
					return 0, err
				}
				p, err := workload.ParsePolicy(policy)
				if err != nil {
					return 0, err
				}
				o := workload.Options{
					Workload: "queue", Design: d, Policy: p,
					Model:   workload.ModelForPolicy("queue", p),
					Threads: th, Inserts: min(inserts, 64*th), Payload: payload, Seed: seed,
					DesignStr: design, PolicyStr: policy, Integrity: integrity,
				}
				run, err := workload.Build(o, nil)
				if err != nil {
					return 0, err
				}
				rep, err := persistcheck.Check(run.Trace, core.Params{Model: o.Model}, run.Checks, persistcheck.Config{
					ReproParams: o.Params(),
					SiteLabel:   run.SiteLabel,
				})
				if err != nil {
					return 0, err
				}
				fmt.Printf("--- %s/%s, %d threads, model %s ---\n%s", design, policy, th, o.Model, rep)
				persistcheck.Observe(reg, rep)
				hazards += rep.Hazards()
			}
		}
	}
	return hazards, nil
}

// tracePass re-runs a small instance of each queue configuration with
// the persist-timeline tracer attached, verifies every tracer against
// its simulation result, prints the critical-path attribution reports,
// and exports one Perfetto-loadable Chrome trace with a process per
// configuration.
func tracePass(reg *telemetry.Registry, man *telemetry.Manifest, path string, threads, payload, inserts int, seed int64, integrity bool) error {
	models := []core.Model{core.Strict, core.Epoch, core.Strand}
	policies := []queue.Policy{queue.PolicyStrict, queue.PolicyEpoch, queue.PolicyStrand}
	var tracers []*telemetry.Tracer
	fmt.Println("=== persist timeline ===")
	for _, d := range []queue.Design{queue.CWL, queue.TwoLock} {
		for i, m := range models {
			w := bench.Workload{
				Design: d, Policy: policies[i],
				Threads: threads, Inserts: inserts, PayloadLen: payload, Seed: seed,
				Integrity: integrity,
			}
			meta, err := bench.QueueMeta(w)
			if err != nil {
				return err
			}
			tr := telemetry.NewTracer(m, w.String())
			tr.SiteLabel = bench.SiteLabel(meta)
			sim, err := core.NewSim(core.Params{Model: m})
			if err != nil {
				return err
			}
			sim.SetProbe(tr)
			// CountingSink feeds the per-thread op-mix series while the
			// simulator consumes the same stream.
			if _, err := bench.Run(w, telemetry.NewCountingSink(reg, sim)); err != nil {
				return err
			}
			if err := sim.Err(); err != nil {
				return err
			}
			r := sim.Result()
			if err := tr.Verify(r); err != nil {
				return fmt.Errorf("%v: %w", w, err)
			}
			telemetry.ObserveResult(reg, w.String(), r)
			tr.ObserveMetrics(reg)
			fmt.Print(tr.Attribute(3).Render())
			fmt.Println()
			tracers = append(tracers, tr)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := telemetry.EncodeChromeTraceDoc(f, man, nil, tracers...); err != nil {
		return err
	}
	fmt.Printf("wrote persist timeline for %d configurations to %s (load in Perfetto or chrome://tracing)\n", len(tracers), path)
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pqbench:", err)
	os.Exit(1)
}
