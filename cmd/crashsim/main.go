// Command crashsim exercises the recovery observer (§4): it traces a
// persistent-queue run, samples crash states (consistent cuts of the
// persist-order DAG) under a persistency model, runs queue recovery on
// each, and reports the outcome.
//
// Usage:
//
//	crashsim [-workload queue|journal] [-design cwl|2lc]
//	         [-policy strict|epoch|racing|strand]
//	         [-model strict|epoch|epoch-tso|strand] [-threads N]
//	         [-inserts N] [-samples N] [-seed S]
//	         [-break-barrier] [-omit-completion-barrier]
//
// With -break-barrier the data→head barrier is dropped, and the
// observer demonstrates the resulting corruption — the ordering
// constraint made executable. The journal workload uses a small ring
// so checkpoint truncations occur; try it with -policy racing to see
// the per-algorithm unsafety discussed in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/journal"
	"repro/internal/memory"
	"repro/internal/observer"
	"repro/internal/queue"
	"repro/internal/trace"
)

func main() {
	var (
		workload   = flag.String("workload", "queue", "queue or journal")
		designStr  = flag.String("design", "cwl", "cwl or 2lc")
		policyStr  = flag.String("policy", "epoch", "strict|epoch|racing|strand")
		modelStr   = flag.String("model", "", "persistency model (default: the policy's target model)")
		threads    = flag.Int("threads", 2, "simulated threads")
		inserts    = flag.Int("inserts", 16, "total inserts")
		samples    = flag.Int("samples", 500, "crash states to sample")
		seed       = flag.Int64("seed", 1, "interleaving + sampling seed")
		breakBar   = flag.Bool("break-barrier", false, "drop the data→head barrier (negative test)")
		omitComp   = flag.Bool("omit-completion-barrier", false, "drop 2LC's completion barrier (negative test)")
		payloadLen = flag.Int("payload", 64, "payload bytes")
	)
	flag.Parse()

	design, err := parseDesign(*designStr)
	if err != nil {
		fatal(err)
	}
	policy, err := parsePolicy(*policyStr)
	if err != nil {
		fatal(err)
	}
	model := bench.ModelFor(policy)
	if *modelStr != "" {
		model, err = parseModel(*modelStr)
		if err != nil {
			fatal(err)
		}
	}

	// Trace the run.
	tr := &trace.Trace{}
	m := exec.NewMachine(exec.Config{Threads: *threads, Seed: *seed, Sink: tr})
	s := m.SetupThread()
	var rec observer.RecoverFunc
	var describe string
	switch *workload {
	case "queue":
		q, err := queue.New(s, queue.Config{
			DataBytes:             dataBytes(*inserts, *payloadLen),
			Design:                design,
			Policy:                policy,
			MaxThreads:            *threads,
			BreakDataHeadOrder:    *breakBar,
			OmitCompletionBarrier: *omitComp,
		})
		if err != nil {
			fatal(err)
		}
		meta := q.Meta()
		per := *inserts / *threads
		m.Run(func(t *exec.Thread) {
			for i := 0; i < per; i++ {
				q.Insert(t, queue.MakePayload(uint64(t.TID())<<32|uint64(i), *payloadLen))
			}
		})
		rec = func(im *memory.Image) error {
			_, err := queue.Recover(im, meta)
			return err
		}
		describe = fmt.Sprintf("%v queue, %v annotations, %d threads, %d inserts", design, policy, *threads, per**threads)
	case "journal":
		jpol, err := journalPolicy(policy)
		if err != nil {
			fatal(err)
		}
		st, err := journal.New(s, journal.Config{
			Blocks:       2 * *threads,
			JournalBytes: 1 << 11, // small ring: checkpoints occur
			Policy:       jpol,
		})
		if err != nil {
			fatal(err)
		}
		meta := st.Meta()
		per := *inserts / *threads
		m.Run(func(t *exec.Thread) {
			g := t.TID()
			for i := 0; i < per; i++ {
				tag := uint64(t.TID()*100000 + i + 1)
				st.Update(t, []journal.Write{
					{Block: 2 * g, Data: journal.MakeBlock(tag)},
					{Block: 2*g + 1, Data: journal.MakeBlock(tag)},
				})
			}
		})
		rec = func(im *memory.Image) error {
			state, err := journal.Recover(im, meta)
			if err != nil {
				return err
			}
			for g := 0; g < *threads; g++ {
				t0, ok0 := journal.BlockTag(state.Block(2 * g))
				t1, ok1 := journal.BlockTag(state.Block(2*g + 1))
				if !ok0 || !ok1 || t0 != t1 {
					return fmt.Errorf("group %d torn (tags %d/%d intact %v/%v)", g, t0, t1, ok0, ok1)
				}
			}
			return nil
		}
		describe = fmt.Sprintf("journal, %v annotations, %d threads, %d txns", policy, *threads, per**threads)
	default:
		fatal(fmt.Errorf("unknown workload %q", *workload))
	}

	out, err := observer.CrashTest(tr, core.Params{Model: model}, rec, observer.Config{Samples: *samples, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload : %s\n", describe)
	fmt.Printf("model    : %v\n", model)
	fmt.Printf("observer : %s\n", out)
	if out.AllRecovered() {
		fmt.Println("verdict  : every sampled crash state recovered correctly")
	} else {
		fmt.Println("verdict  : RECOVERY CORRECTNESS VIOLATED — the dropped/missing constraint is load-bearing")
		os.Exit(2)
	}
}

func dataBytes(inserts, payload int) uint64 {
	n := uint64(inserts+2) * queue.SlotBytes(payload)
	return n + queue.SlotAlign
}

func parseDesign(s string) (queue.Design, error) {
	switch s {
	case "cwl":
		return queue.CWL, nil
	case "2lc":
		return queue.TwoLock, nil
	default:
		return 0, fmt.Errorf("unknown design %q", s)
	}
}

func parsePolicy(s string) (queue.Policy, error) {
	switch s {
	case "strict":
		return queue.PolicyStrict, nil
	case "epoch":
		return queue.PolicyEpoch, nil
	case "racing":
		return queue.PolicyRacingEpoch, nil
	case "strand":
		return queue.PolicyStrand, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

func journalPolicy(p queue.Policy) (journal.Policy, error) {
	switch p {
	case queue.PolicyStrict:
		return journal.PolicyStrict, nil
	case queue.PolicyEpoch:
		return journal.PolicyEpoch, nil
	case queue.PolicyRacingEpoch:
		return journal.PolicyRacingEpoch, nil
	case queue.PolicyStrand:
		return journal.PolicyStrand, nil
	default:
		return 0, fmt.Errorf("unknown policy %v", p)
	}
}

func parseModel(s string) (core.Model, error) {
	for _, m := range core.Models {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown model %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crashsim:", err)
	os.Exit(1)
}
