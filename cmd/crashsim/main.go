// Command crashsim exercises the recovery observer (§4): it traces a
// persistent-structure run, samples crash states (consistent cuts of
// the persist-order DAG) under a persistency model, runs recovery on
// each, and reports the outcome.
//
// Usage:
//
//	crashsim [-workload queue|journal|pstm] [-design cwl|2lc]
//	         [-policy strict|epoch|racing|strand]
//	         [-model strict|epoch|epoch-tso|strand] [-threads N]
//	         [-inserts N] [-samples N] [-seed S]
//	         [-break-barrier] [-omit-completion-barrier]
//	         [-campaign] [-scenarios N] [-faults N] [-parallel N]
//	         [-replay REPRO]
//
// With -break-barrier the data→head barrier is dropped, and the
// observer demonstrates the resulting corruption — the ordering
// constraint made executable. The journal workload uses a small ring
// so checkpoint truncations occur; try it with -policy racing to see
// the per-algorithm unsafety discussed in EXPERIMENTS.md.
//
// With -campaign the sampled crash states are additionally perturbed
// by injected device faults (torn/dropped persists, transient write
// failures, media bit errors) and recovery runs in salvage mode, which
// must mask, salvage, or detect every fault. A failing campaign prints
// a minimized one-line repro; -replay takes that line and reproduces
// the failure deterministically.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/memory"
	"repro/internal/nvram"
	"repro/internal/observer"
	"repro/internal/pstm"
	"repro/internal/queue"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// options carries everything needed to rebuild a workload — from flags
// on a fresh run, or from a repro string's parameters on -replay.
type options struct {
	workload string
	design   queue.Design
	policy   queue.Policy
	model    core.Model
	threads  int
	inserts  int
	payload  int
	seed     int64
	breakBar bool
	omitComp bool

	designStr, policyStr string
}

// workloadRun is a traced execution plus its recovery adapters.
type workloadRun struct {
	tr       *trace.Trace
	rec      observer.RecoverFunc        // strict recovery (plain observer)
	checked  observer.CheckedRecoverFunc // salvage recovery + app invariants (campaigns)
	describe string
}

func main() {
	var (
		workload   = flag.String("workload", "queue", "queue, journal, or pstm")
		designStr  = flag.String("design", "cwl", "cwl or 2lc (queue only)")
		policyStr  = flag.String("policy", "epoch", "strict|epoch|racing|strand")
		modelStr   = flag.String("model", "", "persistency model (default: the policy's target model)")
		threads    = flag.Int("threads", 2, "simulated threads")
		inserts    = flag.Int("inserts", 16, "total inserts/transactions")
		samples    = flag.Int("samples", 500, "crash states to sample")
		seed       = flag.Int64("seed", 1, "interleaving + sampling seed")
		breakBar   = flag.Bool("break-barrier", false, "drop the data→head barrier (negative test)")
		omitComp   = flag.Bool("omit-completion-barrier", false, "drop 2LC's completion barrier (negative test)")
		payloadLen = flag.Int("payload", 64, "payload bytes (queue only)")
		campaign   = flag.Bool("campaign", false, "run a fault-injection campaign (salvage recovery)")
		scenarios  = flag.Int("scenarios", 1000, "campaign scenarios (cut × fault plan)")
		faults     = flag.Int("faults", 3, "max injected faults per scenario")
		replayStr  = flag.String("replay", "", "repro string from a failed campaign; replays it and exits")
		parallel   = flag.Int("parallel", 0, "cut/scenario evaluation workers; 0 means GOMAXPROCS, 1 forces sequential")
		traceCache = flag.Int("trace-cache", bench.DefaultCacheEntries, "workload trace cache capacity in traces; 0 disables (re-execute every workload)")
		metricsOut = flag.String("metrics-out", "", "write a metrics snapshot to this file (.prom/.txt: Prometheus text, else JSON)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}()

	if *replayStr != "" {
		os.Exit(replay(*replayStr))
	}

	design, err := parseDesign(*designStr)
	if err != nil {
		fatal(err)
	}
	policy, err := parsePolicy(*policyStr)
	if err != nil {
		fatal(err)
	}
	model := bench.ModelFor(policy)
	if *workload == "pstm" {
		model = bench.PSTMModelFor(pstmPolicy(policy))
	}
	if *modelStr != "" {
		model, err = parseModel(*modelStr)
		if err != nil {
			fatal(err)
		}
	}

	opts := options{
		workload: *workload, design: design, policy: policy, model: model,
		threads: *threads, inserts: *inserts, payload: *payloadLen, seed: *seed,
		breakBar: *breakBar, omitComp: *omitComp,
		designStr: *designStr, policyStr: *policyStr,
	}
	var cache *bench.TraceCache
	if *traceCache > 0 {
		cache = bench.NewTraceCache(*traceCache)
	}
	run, err := build(opts, cache)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload : %s\n", run.describe)
	fmt.Printf("model    : %v\n", model)
	if cache != nil {
		s := cache.Stats()
		fmt.Fprintf(os.Stderr, "trace cache: %d hits, %d misses, %.1f%% of %d events replayed\n",
			s.Hits, s.Misses, 100*s.ReplayRate(), s.EventsReplayed+s.EventsGenerated)
	}

	if *campaign {
		reg := telemetry.NewRegistry()
		wlabel := run.describe
		stop := reg.Timer(telemetry.Label("crashsim_campaign", "workload", wlabel)).Time()
		out, err := observer.Campaign(run.tr, core.Params{Model: model}, run.checked, observer.CampaignConfig{
			Scenarios: *scenarios,
			Seed:      *seed,
			Gen:       fault.GenConfig{MaxFaults: *faults},
			Params:    opts.params(),
			Device:    campaignDevice(),
			Sweep:     sweep.Config{Parallel: *parallel, Registry: reg},
			// Live progress: update the registry's campaign gauges and
			// print a running counter line to stderr.
			Progress: func(o observer.CampaignOutcome) {
				observer.ObserveCampaign(reg, wlabel, o)
				fmt.Fprintf(os.Stderr, "\rcampaign: %d/%d scenarios (%d masked, %d salvaged, %d corrupt)",
					o.Scenarios, *scenarios, o.Masked, o.Salvaged, o.AnnotationCorrupt+o.SilentCorrupt)
				if o.Scenarios == *scenarios {
					fmt.Fprintln(os.Stderr)
				}
			},
		})
		if err != nil {
			fatal(err)
		}
		stop()
		observer.ObserveCampaign(reg, wlabel, out)
		cache.Observe(reg)
		if *metricsOut != "" {
			if merr := writeMetrics(reg, *metricsOut); merr != nil {
				fatal(merr)
			}
		}
		fmt.Printf("campaign : %s\n", out)
		if out.SilentBitSeen > 0 {
			harmless := out.SilentBitSeen - out.SilentBitCaught - out.SilentBitMissed
			fmt.Printf("silent-bit detection: %d scenarios injected silent flips: %d caught by checksums, %d harmless, %d corrupted state undetected (the documented exception)\n",
				out.SilentBitSeen, out.SilentBitCaught, harmless, out.SilentBitMissed)
		}
		printCampaignJSON(out)
		if out.Clean() {
			fmt.Println("verdict  : every injected fault was masked, salvaged, or detected")
			return
		}
		fmt.Printf("verdict  : %v\n", out.FirstFailureClass)
		fmt.Printf("error    : %v\n", out.FirstError)
		fmt.Printf("repro    : %s\n", out.FirstFailure.Repro())
		os.Exit(2)
	}

	out, err := observer.CrashTest(run.tr, core.Params{Model: model}, run.rec, observer.Config{Samples: *samples, Seed: *seed, Sweep: sweep.Config{Parallel: *parallel}})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("observer : %s\n", out)
	if out.AllRecovered() {
		fmt.Println("verdict  : every sampled crash state recovered correctly")
	} else {
		fmt.Println("verdict  : RECOVERY CORRECTNESS VIOLATED — the dropped/missing constraint is load-bearing")
		os.Exit(2)
	}
}

// printCampaignJSON emits the machine-readable one-line campaign
// summary (the last stdout line before the verdict), so scripts can
// consume outcomes without parsing the human-oriented text.
func printCampaignJSON(out observer.CampaignOutcome) {
	b, err := json.Marshal(map[string]any{
		"model":              out.Model.String(),
		"persists":           out.Persists,
		"scenarios":          out.Scenarios,
		"masked":             out.Masked,
		"salvaged":           out.Salvaged,
		"silent_bit_missed":  out.SilentBitMissed,
		"annotation_corrupt": out.AnnotationCorrupt,
		"silent_corrupt":     out.SilentCorrupt,
		"silent_bit_seen":    out.SilentBitSeen,
		"silent_bit_caught":  out.SilentBitCaught,
		"retries":            out.Retries,
		"failed_persists":    out.FailedPersists,
		"clean":              out.Clean(),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s\n", b)
}

// writeMetrics snapshots the registry: Prometheus text for .prom/.txt
// paths, JSON otherwise.
func writeMetrics(reg *telemetry.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".prom") || strings.HasSuffix(path, ".txt") {
		return reg.WritePrometheus(f)
	}
	return reg.WriteJSON(f)
}

// campaignDevice is the timing model campaigns charge transient write
// failures against.
func campaignDevice() nvram.Config {
	return nvram.Config{Latency: 100 * time.Nanosecond, RetryBackoff: 50 * time.Nanosecond}
}

// params serializes the workload options into repro-string parameters,
// sufficient for replay to rebuild the identical trace.
func (o options) params() []fault.Param {
	ps := []fault.Param{
		{Key: "workload", Value: o.workload},
		{Key: "design", Value: o.designStr},
		{Key: "policy", Value: o.policyStr},
		{Key: "model", Value: o.model.String()},
		{Key: "threads", Value: strconv.Itoa(o.threads)},
		{Key: "inserts", Value: strconv.Itoa(o.inserts)},
		{Key: "payload", Value: strconv.Itoa(o.payload)},
		{Key: "seed", Value: strconv.FormatInt(o.seed, 10)},
	}
	if o.breakBar {
		ps = append(ps, fault.Param{Key: "break-barrier", Value: "1"})
	}
	if o.omitComp {
		ps = append(ps, fault.Param{Key: "omit-completion-barrier", Value: "1"})
	}
	return ps
}

// replay parses a repro string, rebuilds the recorded workload, and
// re-runs the recorded scenario. Exit status 2 means the corruption
// reproduced.
func replay(line string) int {
	s, err := fault.ParseRepro(line)
	if err != nil {
		fatal(err)
	}
	get := func(key, dflt string) string {
		if v, ok := s.Param(key); ok {
			return v
		}
		return dflt
	}
	atoi := func(key, dflt string) int {
		v, err := strconv.Atoi(get(key, dflt))
		if err != nil {
			fatal(fmt.Errorf("repro param %s: %v", key, err))
		}
		return v
	}
	design, err := parseDesign(get("design", "cwl"))
	if err != nil {
		fatal(err)
	}
	policy, err := parsePolicy(get("policy", "epoch"))
	if err != nil {
		fatal(err)
	}
	model, err := parseModel(get("model", "epoch"))
	if err != nil {
		fatal(err)
	}
	seed, err := strconv.ParseInt(get("seed", "1"), 10, 64)
	if err != nil {
		fatal(err)
	}
	opts := options{
		workload: get("workload", "queue"), design: design, policy: policy, model: model,
		threads: atoi("threads", "2"), inserts: atoi("inserts", "16"), payload: atoi("payload", "64"),
		seed:     seed,
		breakBar: get("break-barrier", "") == "1",
		omitComp: get("omit-completion-barrier", "") == "1",
	}
	run, err := build(opts, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload : %s\n", run.describe)
	fmt.Printf("scenario : cut %d nodes, plan [%s]\n", s.Cut.Size(), s.Plan.String())
	class, rerr := observer.Replay(run.tr, core.Params{Model: opts.model}, run.checked, s, campaignDevice())
	if rerr != nil && class == observer.Masked {
		// classify never produces Masked with an error; this is an
		// infrastructure failure (graph build or cut/workload mismatch).
		fatal(rerr)
	}
	fmt.Printf("class    : %v\n", class)
	if class.Failure() {
		fmt.Printf("verdict  : corruption reproduced (%v)\n", rerr)
		return 2
	}
	fmt.Println("verdict  : scenario handled (masked/salvaged/detected)")
	return 0
}

// build traces one workload run and wires up both recovery adapters. A
// non-nil cache memoizes the traced execution keyed by the full option
// set; on a hit only the (deterministic, cheap) setup pass re-runs to
// rebuild the recovery adapters, and the cached trace is adopted.
func build(o options, cache *bench.TraceCache) (*workloadRun, error) {
	if cache == nil {
		tr := &trace.Trace{}
		m := exec.NewMachine(exec.Config{Threads: o.threads, Seed: o.seed, Sink: tr})
		run, body, err := setup(o, m)
		if err != nil {
			return nil, err
		}
		m.Run(body)
		run.tr = tr
		return run, nil
	}
	tr, err := cache.Do(o, func() (*trace.Trace, error) {
		run, err := build(o, nil)
		if err != nil {
			return nil, err
		}
		return run.tr, nil
	})
	if err != nil {
		return nil, err
	}
	m := exec.NewMachine(exec.Config{Threads: o.threads, Seed: o.seed, Sink: trace.Discard})
	run, _, err := setup(o, m)
	if err != nil {
		return nil, err
	}
	run.tr = tr
	return run, nil
}

// setup constructs the workload's persistent structures on m (emitting
// their allocation/initialization events into m's sink) and returns the
// recovery adapters plus the per-thread body — everything build needs,
// without executing the threads.
func setup(o options, m *exec.Machine) (*workloadRun, func(*exec.Thread), error) {
	s := m.SetupThread()
	run := &workloadRun{}
	var body func(*exec.Thread)
	switch o.workload {
	case "queue":
		q, err := queue.New(s, queue.Config{
			DataBytes:             dataBytes(o.inserts, o.payload),
			Design:                o.design,
			Policy:                o.policy,
			MaxThreads:            o.threads,
			BreakDataHeadOrder:    o.breakBar,
			OmitCompletionBarrier: o.omitComp,
		})
		if err != nil {
			return nil, nil, err
		}
		meta := q.Meta()
		per := o.inserts / o.threads
		// Precomputed outside m.Run: simulated threads are goroutines,
		// and a shared map write inside them is a host-level data race.
		expect := make(map[string]bool)
		for tid := 0; tid < o.threads; tid++ {
			for i := 0; i < per; i++ {
				expect[string(queue.MakePayload(uint64(tid)<<32|uint64(i), o.payload))] = true
			}
		}
		body = func(t *exec.Thread) {
			for i := 0; i < per; i++ {
				q.Insert(t, queue.MakePayload(uint64(t.TID())<<32|uint64(i), o.payload))
			}
		}
		run.rec = func(im *memory.Image) error {
			_, err := queue.Recover(im, meta)
			return err
		}
		run.checked = func(im *memory.Image) (fault.RecoveryReport, error) {
			entries, rep, err := queue.RecoverSalvage(im, meta)
			if err != nil {
				return rep, err
			}
			return rep, checkQueueEntries(entries, expect)
		}
		run.describe = fmt.Sprintf("%v queue, %v annotations, %d threads, %d inserts", o.design, o.policy, o.threads, per*o.threads)
	case "journal":
		jpol, err := journalPolicy(o.policy)
		if err != nil {
			return nil, nil, err
		}
		st, err := journal.New(s, journal.Config{
			Blocks:       2 * o.threads,
			JournalBytes: 1 << 11, // small ring: checkpoints occur
			Policy:       jpol,
		})
		if err != nil {
			return nil, nil, err
		}
		meta := st.Meta()
		per := o.inserts / o.threads
		body = func(t *exec.Thread) {
			g := t.TID()
			for i := 0; i < per; i++ {
				tag := uint64(t.TID()*100000 + i + 1)
				st.Update(t, []journal.Write{
					{Block: 2 * g, Data: journal.MakeBlock(tag)},
					{Block: 2*g + 1, Data: journal.MakeBlock(tag)},
				})
			}
		}
		run.rec = func(im *memory.Image) error {
			state, err := journal.Recover(im, meta)
			if err != nil {
				return err
			}
			return checkJournalPairs(state, o.threads)
		}
		run.checked = func(im *memory.Image) (fault.RecoveryReport, error) {
			state, rep, err := journal.RecoverSalvage(im, meta)
			if err != nil {
				return rep, err
			}
			return rep, checkJournalPairs(state, o.threads)
		}
		run.describe = fmt.Sprintf("journal, %v annotations, %d threads, %d txns", o.policy, o.threads, per*o.threads)
	case "pstm":
		ppol := pstmPolicy(o.policy)
		h, err := pstm.New(s, pstm.Config{Words: 2 * o.threads, UndoCap: 8, Policy: ppol})
		if err != nil {
			return nil, nil, err
		}
		meta := h.Meta()
		per := o.inserts / o.threads
		body = func(t *exec.Thread) {
			g := t.TID()
			for i := 0; i < per; i++ {
				v := uint64(t.TID()*100000 + i + 1)
				h.Atomic(t, func(tx *pstm.Tx) {
					tx.Store(2*g, v)
					tx.Store(2*g+1, v)
				})
			}
		}
		run.rec = func(im *memory.Image) error {
			state, err := pstm.Recover(im, meta)
			if err != nil {
				return err
			}
			return checkPSTMPairs(state, o.threads)
		}
		run.checked = func(im *memory.Image) (fault.RecoveryReport, error) {
			state, rep, err := pstm.RecoverSalvage(im, meta)
			if err != nil {
				return rep, err
			}
			return rep, checkPSTMPairs(state, o.threads)
		}
		run.describe = fmt.Sprintf("pstm heap, %v annotations, %d threads, %d txns", ppol, o.threads, per*o.threads)
	default:
		return nil, nil, fmt.Errorf("unknown workload %q", o.workload)
	}
	return run, body, nil
}

// checkQueueEntries validates recovered entries against the insert set:
// in offset order and carrying only payloads that were really inserted.
func checkQueueEntries(entries []queue.Entry, expect map[string]bool) error {
	var lastOff uint64
	for i, e := range entries {
		if !expect[string(e.Payload)] {
			return fmt.Errorf("entry %d carries a payload never inserted", i)
		}
		if i > 0 && e.Offset <= lastOff {
			return fmt.Errorf("entry %d out of order", i)
		}
		lastOff = e.Offset
	}
	return nil
}

// checkJournalPairs validates the journal app invariant: each thread's
// block pair was updated atomically, so tags match and blocks are
// intact.
func checkJournalPairs(state *journal.State, threads int) error {
	for g := 0; g < threads; g++ {
		t0, ok0 := journal.BlockTag(state.Block(2 * g))
		t1, ok1 := journal.BlockTag(state.Block(2*g + 1))
		if !ok0 || !ok1 || t0 != t1 {
			return fmt.Errorf("group %d torn (tags %d/%d intact %v/%v)", g, t0, t1, ok0, ok1)
		}
	}
	return nil
}

// checkPSTMPairs validates the pstm app invariant: transactions store
// the same value to both words of a pair, so recovered pairs match.
func checkPSTMPairs(state *pstm.State, threads int) error {
	for g := 0; g < threads; g++ {
		if a, b := state.Words[2*g], state.Words[2*g+1]; a != b {
			return fmt.Errorf("pair %d torn (%d != %d)", g, a, b)
		}
	}
	return nil
}

func dataBytes(inserts, payload int) uint64 {
	n := uint64(inserts+2) * queue.SlotBytes(payload)
	return n + queue.SlotAlign
}

func parseDesign(s string) (queue.Design, error) {
	switch s {
	case "cwl":
		return queue.CWL, nil
	case "2lc":
		return queue.TwoLock, nil
	default:
		return 0, fmt.Errorf("unknown design %q", s)
	}
}

func parsePolicy(s string) (queue.Policy, error) {
	switch s {
	case "strict":
		return queue.PolicyStrict, nil
	case "epoch":
		return queue.PolicyEpoch, nil
	case "racing":
		return queue.PolicyRacingEpoch, nil
	case "strand":
		return queue.PolicyStrand, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

func journalPolicy(p queue.Policy) (journal.Policy, error) {
	switch p {
	case queue.PolicyStrict:
		return journal.PolicyStrict, nil
	case queue.PolicyEpoch:
		return journal.PolicyEpoch, nil
	case queue.PolicyRacingEpoch:
		return journal.PolicyRacingEpoch, nil
	case queue.PolicyStrand:
		return journal.PolicyStrand, nil
	default:
		return 0, fmt.Errorf("unknown policy %v", p)
	}
}

// pstmPolicy maps the shared -policy flag onto pstm's policy space
// (the enums are parallel).
func pstmPolicy(p queue.Policy) pstm.Policy {
	return pstm.Policy(p)
}

func parseModel(s string) (core.Model, error) {
	for _, m := range core.Models {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown model %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crashsim:", err)
	os.Exit(1)
}
