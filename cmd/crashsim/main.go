// Command crashsim exercises the recovery observer (§4): it traces a
// persistent-structure run, samples crash states (consistent cuts of
// the persist-order DAG) under a persistency model, runs recovery on
// each, and reports the outcome.
//
// Usage:
//
//	crashsim [-workload queue|journal|pstm] [-design cwl|2lc]
//	         [-policy strict|epoch|racing|strand]
//	         [-model strict|epoch|epoch-tso|strand] [-threads N]
//	         [-inserts N] [-samples N] [-seed S]
//	         [-break-barrier] [-omit-completion-barrier]
//	         [-break-commit] [-omit-strand-recipe]
//	         [-integrity]
//	         [-check]
//	         [-campaign] [-scenarios N] [-faults N] [-parallel N]
//	         [-fail-on-silent] [-replay REPRO]
//
// With -break-barrier the data→head barrier is dropped, and the
// observer demonstrates the resulting corruption — the ordering
// constraint made executable. The journal workload uses a small ring
// so checkpoint truncations occur; try it with -policy racing to see
// the per-algorithm unsafety discussed in EXPERIMENTS.md.
//
// With -check the static persistency checker (internal/persistcheck)
// analyzes the trace instead of sampling crash states: it reports
// epoch races, unpersisted publications, escaped §5.3 reads, and
// redundant barriers, each hazard with a replayable repro line. Exit
// status 2 means hazards were found.
//
// With -campaign the sampled crash states are additionally perturbed
// by injected device faults (torn/dropped persists, transient write
// failures, media bit errors) and recovery runs in salvage mode, which
// must mask, salvage, or detect every fault. A failing campaign prints
// a minimized one-line repro; -replay takes that line and reproduces
// the failure deterministically.
//
// With -integrity the structure is built with the corruption-detecting
// durable format (internal/durable): CRC-framed records, dual-copy
// pointer words behind corruption-detecting booleans, and shadow
// checksums. Campaigns then classify silent bit errors the checksums
// catch as detected-and-recovered instead of silently missed — the
// summary's detected-vs-silent column shows the difference.
// -fail-on-silent turns that column into a gate: exit status 2 if any
// silent flip corrupted state undetected (CI runs it with -integrity).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/nvram"
	"repro/internal/observer"
	"repro/internal/persistcheck"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	var (
		wl         = flag.String("workload", "queue", "queue, journal, or pstm")
		designStr  = flag.String("design", "cwl", "cwl or 2lc (queue only)")
		policyStr  = flag.String("policy", "epoch", "strict|epoch|racing|strand")
		modelStr   = flag.String("model", "", "persistency model (default: the policy's target model)")
		threads    = flag.Int("threads", 2, "simulated threads")
		inserts    = flag.Int("inserts", 16, "total inserts/transactions")
		samples    = flag.Int("samples", 500, "crash states to sample")
		seed       = flag.Int64("seed", 1, "interleaving + sampling seed")
		breakBar   = flag.Bool("break-barrier", false, "drop the data→head barrier (negative test)")
		omitComp   = flag.Bool("omit-completion-barrier", false, "drop 2LC's completion barrier (negative test)")
		breakCmt   = flag.Bool("break-commit", false, "drop the journal's records→commit barrier (negative test)")
		omitRcp    = flag.Bool("omit-strand-recipe", false, "drop the journal's §5.3 strand recipe (negative test)")
		integrity  = flag.Bool("integrity", false, "build with the corruption-detecting durable format (CRC frames, durable words, shadows)")
		check      = flag.Bool("check", false, "run the static persistency checker instead of sampling crash states")
		payloadLen = flag.Int("payload", 64, "payload bytes (queue only)")
		campaign   = flag.Bool("campaign", false, "run a fault-injection campaign (salvage recovery)")
		failSilent = flag.Bool("fail-on-silent", false, "campaign: exit 2 if any silent bit flip corrupted state undetected (the bar -integrity is expected to meet)")
		scenarios  = flag.Int("scenarios", 1000, "campaign scenarios (cut × fault plan)")
		faults     = flag.Int("faults", 3, "max injected faults per scenario")
		replayStr  = flag.String("replay", "", "repro string from a failed campaign; replays it and exits")
		parallel   = flag.Int("parallel", 0, "cut/scenario evaluation workers; 0 means GOMAXPROCS, 1 forces sequential")
		traceCache = flag.Int("trace-cache", bench.DefaultCacheEntries, "workload trace cache capacity in traces; 0 disables (re-execute every workload)")
		metricsOut = flag.String("metrics-out", "", "write a metrics snapshot to this file (.prom/.txt: Prometheus text, else JSON)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file")
		spansOut   = flag.String("spans-out", "", "write the harness wall-clock span trace (Chrome trace-event JSON) to this file")
	)
	flag.Parse()

	man := telemetry.NewManifest("crashsim").
		CaptureFlags(flag.CommandLine).
		Seed("seed", *seed)
	fmt.Fprintln(os.Stderr, man.String())

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}()

	if *replayStr != "" {
		os.Exit(replay(*replayStr))
	}

	design, err := workload.ParseDesign(*designStr)
	if err != nil {
		fatal(err)
	}
	policy, err := workload.ParsePolicy(*policyStr)
	if err != nil {
		fatal(err)
	}
	model := workload.ModelForPolicy(*wl, policy)
	if *modelStr != "" {
		model, err = workload.ParseModel(*modelStr)
		if err != nil {
			fatal(err)
		}
	}

	opts := workload.Options{
		Workload: *wl, Design: design, Policy: policy, Model: model,
		Threads: *threads, Inserts: *inserts, Payload: *payloadLen, Seed: *seed,
		BreakBar: *breakBar, OmitComp: *omitComp,
		BreakCommit: *breakCmt, OmitRecipe: *omitRcp,
		Integrity: *integrity,
		DesignStr: *designStr, PolicyStr: *policyStr,
	}
	man.ModelGrid(model)
	var spans *telemetry.SpanTracer
	var cache *bench.TraceCache
	if *traceCache > 0 {
		cache = bench.NewTraceCache(*traceCache)
	}
	run, err := workload.Build(opts, cache)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload : %s\n", run.Describe)
	fmt.Printf("model    : %v\n", model)
	if cache != nil {
		s := cache.Stats()
		fmt.Fprintf(os.Stderr, "trace cache: %d hits, %d misses, %.1f%% of %d events replayed\n",
			s.Hits, s.Misses, 100*s.ReplayRate(), s.EventsReplayed+s.EventsGenerated)
	}

	if *check {
		rep, err := persistcheck.Check(run.Trace, core.Params{Model: model}, run.Checks, persistcheck.Config{
			ReproParams: opts.Params(),
			SiteLabel:   run.SiteLabel,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep)
		if *metricsOut != "" {
			reg := telemetry.NewRegistry()
			persistcheck.Observe(reg, rep)
			if merr := telemetry.WriteMetrics(reg, man, *metricsOut); merr != nil {
				fatal(merr)
			}
		}
		if rep.Hazards() > 0 {
			fmt.Printf("verdict  : %d persistency hazard(s) found\n", rep.Hazards())
			os.Exit(2)
		}
		fmt.Println("verdict  : no persistency hazards found")
		return
	}

	if *campaign {
		reg := telemetry.NewRegistry()
		if *spansOut != "" {
			spans = telemetry.NewSpanTracer(reg)
		}
		wlabel := run.Describe
		tty := stderrIsTTY()
		stop := reg.Timer(telemetry.Label("crashsim_campaign", "workload", wlabel)).Time()
		out, err := observer.Campaign(run.Trace, core.Params{Model: model}, run.Checked, observer.CampaignConfig{
			Scenarios: *scenarios,
			Seed:      *seed,
			Gen:       fault.GenConfig{MaxFaults: *faults},
			Params:    opts.Params(),
			Device:    campaignDevice(),
			Sweep:     sweep.Config{Parallel: *parallel, Registry: reg, Spans: spans},
			Spans:     spans,
			// Live progress: update the registry's campaign gauges and
			// print a running counter to stderr. On a terminal the
			// counter rewrites itself in place; redirected to a file or
			// CI log it degrades to a periodic newline line so the log
			// stays readable instead of one \r-glued mega-line.
			Progress: func(o observer.CampaignOutcome) {
				observer.ObserveCampaign(reg, wlabel, o)
				done := o.Scenarios == *scenarios
				switch {
				case tty:
					fmt.Fprintf(os.Stderr, "\rcampaign: %d/%d scenarios (%d masked, %d salvaged, %d corrupt)",
						o.Scenarios, *scenarios, o.Masked, o.Salvaged, o.AnnotationCorrupt+o.SilentCorrupt)
					if done {
						fmt.Fprintln(os.Stderr)
					}
				case o.Scenarios%500 == 0 || done:
					fmt.Fprintf(os.Stderr, "campaign: %d/%d scenarios (%d masked, %d salvaged, %d corrupt)\n",
						o.Scenarios, *scenarios, o.Masked, o.Salvaged, o.AnnotationCorrupt+o.SilentCorrupt)
				}
			},
		})
		if err != nil {
			fatal(err)
		}
		stop()
		observer.ObserveCampaign(reg, wlabel, out)
		cache.Observe(reg)
		writeSpans(*spansOut, man, spans)
		if *metricsOut != "" {
			if merr := telemetry.WriteMetrics(reg, man, *metricsOut); merr != nil {
				fatal(merr)
			}
		}
		fmt.Printf("campaign : %s\n", out)
		if out.SilentBitSeen > 0 {
			harmless := out.SilentBitSeen - out.SilentBitCaught - out.SilentBitMissed
			fmt.Printf("silent-bit detection: %d scenarios injected silent flips: %d caught by checksums, %d harmless, %d corrupted state undetected (the documented exception)\n",
				out.SilentBitSeen, out.SilentBitCaught, harmless, out.SilentBitMissed)
			fmt.Printf("detected/silent: %d detected (%d recovered in full; crc %d, cdb %d), %d silent\n",
				out.SilentBitCaught, out.DetectedRecovered, out.CRCDetected, out.CDBDetected, out.SilentBitMissed)
		}
		printCampaignJSON(out, man)
		if *failSilent && out.SilentBitMissed > 0 {
			fmt.Printf("verdict  : %d silent bit flip(s) corrupted state undetected\n", out.SilentBitMissed)
			os.Exit(2)
		}
		if out.Clean() {
			fmt.Println("verdict  : every injected fault was masked, salvaged, or detected")
			return
		}
		fmt.Printf("verdict  : %v\n", out.FirstFailureClass)
		fmt.Printf("error    : %v\n", out.FirstError)
		fmt.Printf("repro    : %s\n", out.FirstFailure.Repro())
		os.Exit(2)
	}

	if *spansOut != "" {
		spans = telemetry.NewSpanTracer(nil)
	}
	out, err := observer.CrashTest(run.Trace, core.Params{Model: model}, run.Recover, observer.Config{Samples: *samples, Seed: *seed, Sweep: sweep.Config{Parallel: *parallel, Spans: spans}})
	if err != nil {
		fatal(err)
	}
	writeSpans(*spansOut, man, spans)
	fmt.Printf("observer : %s\n", out)
	if out.AllRecovered() {
		fmt.Println("verdict  : every sampled crash state recovered correctly")
	} else {
		fmt.Println("verdict  : RECOVERY CORRECTNESS VIOLATED — the dropped/missing constraint is load-bearing")
		os.Exit(2)
	}
}

// printCampaignJSON emits the machine-readable one-line campaign
// summary (the last stdout line before the verdict), so scripts can
// consume outcomes without parsing the human-oriented text.
func printCampaignJSON(out observer.CampaignOutcome, man *telemetry.Manifest) {
	b, err := json.Marshal(map[string]any{
		"manifest":           man,
		"model":              out.Model.String(),
		"persists":           out.Persists,
		"scenarios":          out.Scenarios,
		"masked":             out.Masked,
		"salvaged":           out.Salvaged,
		"detected_recovered": out.DetectedRecovered,
		"silent_bit_missed":  out.SilentBitMissed,
		"annotation_corrupt": out.AnnotationCorrupt,
		"silent_corrupt":     out.SilentCorrupt,
		"silent_bit_seen":    out.SilentBitSeen,
		"silent_bit_caught":  out.SilentBitCaught,
		"crc_detected":       out.CRCDetected,
		"cdb_detected":       out.CDBDetected,
		"discarded_records":  out.DiscardedRecords,
		"retries":            out.Retries,
		"failed_persists":    out.FailedPersists,
		"clean":              out.Clean(),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s\n", b)
}

// stderrIsTTY reports whether stderr is an interactive terminal, i.e.
// whether in-place \r progress rewriting renders sanely.
func stderrIsTTY() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// writeSpans exports the wall-clock span trace; a nil tracer or empty
// path is a no-op.
func writeSpans(path string, man *telemetry.Manifest, spans *telemetry.SpanTracer) {
	if path == "" || spans == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := telemetry.EncodeChromeTraceDoc(f, man, spans); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "crashsim: wrote %d wall-clock spans to %s\n", spans.Len(), path)
}

// campaignDevice is the timing model campaigns charge transient write
// failures against.
func campaignDevice() nvram.Config {
	return nvram.Config{Latency: 100 * time.Nanosecond, RetryBackoff: 50 * time.Nanosecond}
}

// replay parses a repro string, rebuilds the recorded workload (the
// queue/journal/pstm grid, or the sharded KV store for workload=kv
// lines such as kvbench -exhaustive counterexamples), and re-runs the
// recorded scenario. Exit status 2 means the corruption reproduced.
func replay(line string) int {
	s, err := fault.ParseRepro(line)
	if err != nil {
		fatal(err)
	}
	var run *workload.Run
	var model core.Model
	if wl, _ := s.Param("workload"); wl == "kv" {
		kvOpts, err := workload.KVFromScenario(s)
		if err != nil {
			fatal(err)
		}
		run, err = workload.BuildKV(kvOpts, nil)
		if err != nil {
			fatal(err)
		}
		pol, err := workload.ParsePolicy(kvOpts.PolicyStr)
		if err != nil {
			fatal(err)
		}
		model = workload.ModelForPolicy("kv", pol)
	} else {
		opts, err := workload.FromScenario(s)
		if err != nil {
			fatal(err)
		}
		run, err = workload.Build(opts, nil)
		if err != nil {
			fatal(err)
		}
		model = opts.Model
	}
	fmt.Printf("workload : %s\n", run.Describe)
	fmt.Printf("scenario : cut %d nodes, plan [%s]\n", s.Cut.Size(), s.Plan.String())
	class, rerr := observer.Replay(run.Trace, core.Params{Model: model}, run.Checked, s, campaignDevice())
	if rerr != nil && class == observer.Masked {
		// classify never produces Masked with an error; this is an
		// infrastructure failure (graph build or cut/workload mismatch).
		fatal(rerr)
	}
	fmt.Printf("class    : %v\n", class)
	if class.Failure() {
		fmt.Printf("verdict  : corruption reproduced (%v)\n", rerr)
		return 2
	}
	fmt.Println("verdict  : scenario handled (masked/salvaged/detected)")
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crashsim:", err)
	os.Exit(1)
}
