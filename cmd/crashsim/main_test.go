package main

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/workload"
)

// TestReplayKVDispatch pins the -replay workload dispatch: repro lines
// whose params carry workload=kv (emitted by kvbench -check/-exhaustive)
// rebuild through KVFromScenario/BuildKV rather than the queue/journal
// grid, and a fully-persisted cut replays clean.
func TestReplayKVDispatch(t *testing.T) {
	kvOpts := workload.KVOptions{
		Shards: 2, Keys: 8, Threads: 2, Ops: 8,
		ReadFrac: 0.5, Seed: 7, PolicyStr: "epoch",
	}
	pol, err := workload.ParsePolicy(kvOpts.PolicyStr)
	if err != nil {
		t.Fatal(err)
	}
	kvOpts.Policy, err = workload.JournalPolicy(pol)
	if err != nil {
		t.Fatal(err)
	}
	run, err := workload.BuildKV(kvOpts, nil)
	if err != nil {
		t.Fatal(err)
	}
	model := workload.ModelForPolicy("kv", pol)
	g, err := graph.Build(run.Trace, core.Params{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	full := graph.Cut{Included: make([]bool, g.Len())}
	for i := range full.Included {
		full.Included[i] = true
	}
	s := fault.Scenario{Params: kvOpts.Params(), Cut: full}
	if got := replay(s.Repro()); got != 0 {
		t.Errorf("replay of fully-persisted kv cut exited %d, want 0", got)
	}
}

// TestReplayQueueDispatch keeps the non-kv path covered: a queue repro
// line still rebuilds via FromScenario/Build.
func TestReplayQueueDispatch(t *testing.T) {
	o := workload.Options{
		Workload: "queue", Threads: 1, Inserts: 2, Payload: 16, Seed: 1,
		DesignStr: "cwl", PolicyStr: "epoch",
	}
	var err error
	o.Design, err = workload.ParseDesign(o.DesignStr)
	if err != nil {
		t.Fatal(err)
	}
	o.Policy, err = workload.ParsePolicy(o.PolicyStr)
	if err != nil {
		t.Fatal(err)
	}
	o.Model = workload.ModelForPolicy(o.Workload, o.Policy)
	run, err := workload.Build(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(run.Trace, core.Params{Model: o.Model})
	if err != nil {
		t.Fatal(err)
	}
	full := graph.Cut{Included: make([]bool, g.Len())}
	for i := range full.Included {
		full.Included[i] = true
	}
	s := fault.Scenario{Params: o.Params(), Cut: full}
	if got := replay(s.Repro()); got != 0 {
		t.Errorf("replay of fully-persisted queue cut exited %d, want 0", got)
	}
}
