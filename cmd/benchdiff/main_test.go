package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSuite(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseSuite = `{
  "suite": "core-microbench", "benchtime": "100x",
  "benchmarks": [
    {"name": "BenchmarkSimFeed/strict", "ns_per_op": 598429, "bytes_per_op": 1, "allocs_per_op": 0},
    {"name": "BenchmarkGraphBuild/epoch", "ns_per_op": 19349299, "bytes_per_op": 13138320, "allocs_per_op": 121311}
  ]
}`

// Identical inputs: exit 0, no table rows — the gate must never cry
// wolf on a clean run.
func TestIdenticalSuitesExitZeroEmptyTable(t *testing.T) {
	dir := t.TempDir()
	old := writeSuite(t, dir, "old.json", baseSuite)
	var out, errb strings.Builder
	code := run([]string{old, old}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr:\n%s", code, errb.String())
	}
	if strings.Contains(out.String(), "|") {
		t.Errorf("delta table not empty:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "No significant deltas") {
		t.Errorf("missing no-deltas line:\n%s", out.String())
	}
}

// An injected 25% ns/op regression must exit 1 and name the
// benchmark on both streams.
func TestInjectedRegressionExitsOneNamingBenchmark(t *testing.T) {
	dir := t.TempDir()
	old := writeSuite(t, dir, "old.json", baseSuite)
	regressed := strings.Replace(baseSuite, `"ns_per_op": 598429`, `"ns_per_op": 748036`, 1)
	neu := writeSuite(t, dir, "new.json", regressed)
	var out, errb strings.Builder
	code := run([]string{"-threshold", "0.20", old, neu}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	for _, stream := range []string{out.String(), errb.String()} {
		if !strings.Contains(stream, "BenchmarkSimFeed/strict") {
			t.Errorf("regressing benchmark not named:\n%s", stream)
		}
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("table missing REGRESSION verdict:\n%s", out.String())
	}
	if strings.Contains(out.String(), "BenchmarkGraphBuild/epoch") {
		t.Errorf("unchanged benchmark leaked into table:\n%s", out.String())
	}
}

// The same +25% delta must pass under CI's generous cross-machine
// threshold.
func TestGenerousThresholdTolerates(t *testing.T) {
	dir := t.TempDir()
	old := writeSuite(t, dir, "old.json", baseSuite)
	regressed := strings.Replace(baseSuite, `"ns_per_op": 598429`, `"ns_per_op": 748036`, 1)
	neu := writeSuite(t, dir, "new.json", regressed)
	var out, errb strings.Builder
	if code := run([]string{"-threshold", "3.0", "-alloc-threshold", "0.25", old, neu}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0 at generous threshold; stderr:\n%s", code, errb.String())
	}
}

// An injected B/op-only regression (same ns/op, same allocs/op) must
// trip the gate and name B/op; raising -bytes-threshold tolerates it.
func TestInjectedBytesRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeSuite(t, dir, "old.json", baseSuite)
	regressed := strings.Replace(baseSuite, `"bytes_per_op": 13138320`, `"bytes_per_op": 15766000`, 1)
	neu := writeSuite(t, dir, "new.json", regressed)
	var out, errb strings.Builder
	code := run([]string{old, neu}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "BenchmarkGraphBuild/epoch") || !strings.Contains(errb.String(), "B/op") {
		t.Errorf("bytes regression not attributed:\n%s", errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-bytes-threshold", "0.5", old, neu}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0 at -bytes-threshold 0.5; stderr:\n%s", code, errb.String())
	}
}

func TestHistoryAppendAndBaseline(t *testing.T) {
	dir := t.TempDir()
	neu := writeSuite(t, dir, "new.json", baseSuite)
	hist := filepath.Join(dir, "BENCH_history.jsonl")

	// Empty history: error (exit 2), nothing to compare against.
	var out, errb strings.Builder
	if code := run([]string{"-history", hist, neu}, &out, &errb); code != 2 {
		t.Fatalf("missing history: exit = %d, want 2", code)
	}

	if code := run([]string{"-append", "-history", hist, neu, neu}, &out, &errb); code != 2 {
		t.Fatalf("-history with two args: exit = %d, want 2 (usage)", code)
	}

	// Seed one record by hand, then the single-arg form must compare
	// against it and -append must add a manifest-stamped second line.
	var compact bytes.Buffer
	if err := json.Compact(&compact, []byte(baseSuite)); err != nil {
		t.Fatal(err)
	}
	rec := `{"manifest":{"tool":"seed","started":"2026-08-08T00:00:00Z","go_version":"go","os":"linux","arch":"amd64","cpus":1,"gomaxprocs":1,"args":[]},"suite":` + compact.String() + `}`
	if err := os.WriteFile(hist, []byte(rec+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-history", hist, "-append", neu}, &out, &errb); code != 0 {
		t.Fatalf("history compare: exit = %d, want 0; stderr:\n%s", code, errb.String())
	}
	data, err := os.ReadFile(hist)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("history has %d lines, want 2", len(lines))
	}
	var appended struct {
		Manifest map[string]any `json:"manifest"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &appended); err != nil {
		t.Fatal(err)
	}
	if appended.Manifest == nil || appended.Manifest["tool"] != "benchdiff" {
		t.Errorf("appended record manifest = %v, want tool=benchdiff", appended.Manifest)
	}
}

// -append against a missing/empty history seeds the first record
// instead of failing — the bootstrap path CI and fresh checkouts hit.
func TestHistoryBootstrapSeeding(t *testing.T) {
	dir := t.TempDir()
	neu := writeSuite(t, dir, "new.json", baseSuite)
	hist := filepath.Join(dir, "BENCH_history.jsonl")
	var out, errb strings.Builder
	if code := run([]string{"-history", hist, "-append", neu}, &out, &errb); code != 0 {
		t.Fatalf("bootstrap: exit = %d, want 0; stderr:\n%s", code, errb.String())
	}
	recs, err := os.ReadFile(hist)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(strings.TrimSpace(string(recs)), "\n")); n != 1 {
		t.Fatalf("history has %d lines, want 1", n)
	}
	// Second run now has a baseline: compares clean and appends.
	out.Reset()
	if code := run([]string{"-history", hist, "-append", neu}, &out, &errb); code != 0 {
		t.Fatalf("post-bootstrap: exit = %d; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "No significant deltas") {
		t.Errorf("expected clean compare:\n%s", out.String())
	}
}

func TestAppendRequiresHistory(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-append", "a.json", "b.json"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// -bench restricts the comparison: a regression outside the filter is
// invisible; inside it, the gate still fires. A filter matching
// nothing is a usage error.
func TestBenchFilterRestrictsComparison(t *testing.T) {
	dir := t.TempDir()
	old := writeSuite(t, dir, "old.json", baseSuite)
	// Regress SimFeed by 2x; GraphBuild unchanged.
	regressed := strings.Replace(baseSuite, `"ns_per_op": 598429`, `"ns_per_op": 1196858`, 1)
	neu := writeSuite(t, dir, "new.json", regressed)

	var out, errb strings.Builder
	code := run([]string{"-threshold", "0.20", "-bench", "BenchmarkGraphBuild", old, neu}, &out, &errb)
	if code != 0 {
		t.Fatalf("filtered run exit = %d, want 0; stderr:\n%s", code, errb.String())
	}
	if strings.Contains(out.String(), "BenchmarkSimFeed") {
		t.Errorf("filtered-out benchmark leaked into table:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	code = run([]string{"-threshold", "0.20", "-bench", "BenchmarkSimFeed", old, neu}, &out, &errb)
	if code != 1 {
		t.Fatalf("in-filter regression exit = %d, want 1; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(errb.String(), "BenchmarkSimFeed/strict") {
		t.Errorf("regressing benchmark not named:\n%s", errb.String())
	}

	out.Reset()
	errb.Reset()
	code = run([]string{"-bench", "BenchmarkNoSuchThing", old, neu}, &out, &errb)
	if code != 2 {
		t.Fatalf("empty filter exit = %d, want 2; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "matches no benchmark") {
		t.Errorf("missing empty-filter diagnostic:\n%s", errb.String())
	}

	out.Reset()
	errb.Reset()
	if code = run([]string{"-bench", "(", old, neu}, &out, &errb); code != 2 {
		t.Fatalf("bad regexp exit = %d, want 2", code)
	}
}
