// benchdiff is the statistical bench-regression gate: it pairs
// benchmarks across two BENCH_*.json suites (or a suite against the
// newest BENCH_history.jsonl record), applies a noise-aware
// significance test on top of relative thresholds, prints a markdown
// delta table, and exits nonzero when anything regressed — the CI
// hook that keeps the hot paths honest.
//
//	benchdiff OLD.json NEW.json            compare two suite files
//	benchdiff -history H.jsonl NEW.json    compare against the newest
//	                                       record of the same suite
//	benchdiff -history H.jsonl -append NEW.json
//	                                       also append NEW as a new
//	                                       manifest-stamped record
//
// Exit status: 0 clean, 1 regression detected, 2 usage or I/O error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"

	"repro/internal/benchdiff"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threshold      = fs.Float64("threshold", 0.10, "relative ns/op change below which a delta is never significant")
		allocThreshold = fs.Float64("alloc-threshold", 0.05, "relative allocs/op change below which a delta is never significant")
		bytesThreshold = fs.Float64("bytes-threshold", 0.05, "relative B/op change below which a delta is never significant")
		alpha          = fs.Float64("alpha", 0.05, "Mann-Whitney significance level (used when both sides have >=4 samples per benchmark)")
		all            = fs.Bool("all", false, "print every paired benchmark, not just significant deltas")
		history        = fs.String("history", "", "BENCH_history.jsonl to use as baseline (newest record) instead of an OLD.json argument")
		appendHist     = fs.Bool("append", false, "append NEW.json to -history as a manifest-stamped record after comparing")
		benchRe        = fs.String("bench", "", "regexp restricting the comparison to matching benchmark names (like go test -bench)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchdiff [flags] OLD.json NEW.json\n")
		fmt.Fprintf(stderr, "       benchdiff [flags] -history BENCH_history.jsonl [-append] NEW.json\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *appendHist && *history == "" {
		fmt.Fprintln(stderr, "benchdiff: -append requires -history")
		return 2
	}

	var oldS, newS *benchdiff.Suite
	var err error
	switch {
	case *history != "" && fs.NArg() == 1:
		newS, err = benchdiff.ReadSuite(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		recs, rerr := benchdiff.ReadHistory(*history)
		if rerr != nil && !os.IsNotExist(rerr) {
			fmt.Fprintf(stderr, "benchdiff: %v\n", rerr)
			return 2
		}
		// The baseline is the newest record of the SAME suite: history
		// files interleave records from different suites (core
		// microbenchmarks, kv-serving, ...), and cross-suite deltas are
		// meaningless.
		if rerr == nil {
			oldS, err = benchdiff.LatestBaseline(recs, newS.Suite)
		} else {
			err = fmt.Errorf("benchdiff: %v: %w", rerr, benchdiff.ErrNoBaseline)
		}
		if errors.Is(err, benchdiff.ErrNoBaseline) {
			if !*appendHist {
				fmt.Fprintf(stderr, "benchdiff: %v\n", err)
				return 2
			}
			// Bootstrap: first record of this suite; seed it and exit
			// clean — there is nothing to compare against yet.
			m := telemetry.NewManifest("benchdiff").CaptureFlags(fs)
			if err := benchdiff.AppendHistory(*history, newS, m); err != nil {
				fmt.Fprintf(stderr, "benchdiff: append: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "Seeded %s with %q (no baseline to compare yet).\n", *history, newS.Suite)
			return 0
		}
	case *history == "" && fs.NArg() == 2:
		if oldS, err = benchdiff.ReadSuite(fs.Arg(0)); err == nil {
			newS, err = benchdiff.ReadSuite(fs.Arg(1))
		}
	default:
		fs.Usage()
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}

	cmpOld, cmpNew := oldS, newS
	if *benchRe != "" {
		re, rerr := regexp.Compile(*benchRe)
		if rerr != nil {
			fmt.Fprintf(stderr, "benchdiff: bad -bench regexp: %v\n", rerr)
			return 2
		}
		cmpOld, cmpNew = oldS.Filter(re), newS.Filter(re)
		if len(cmpNew.Benchmarks) == 0 {
			fmt.Fprintf(stderr, "benchdiff: -bench %q matches no benchmark in %s\n", *benchRe, fs.Arg(fs.NArg()-1))
			return 2
		}
	}

	opts := benchdiff.Options{
		NsThreshold:    *threshold,
		AllocThreshold: *allocThreshold,
		BytesThreshold: *bytesThreshold,
		Alpha:          *alpha,
	}
	deltas := benchdiff.Compare(cmpOld, cmpNew, opts)
	if len(deltas) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no benchmarks in common")
		return 2
	}
	if err := benchdiff.WriteMarkdown(stdout, deltas, *all); err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}

	if *appendHist {
		m := telemetry.NewManifest("benchdiff").CaptureFlags(fs)
		if err := benchdiff.AppendHistory(*history, newS, m); err != nil {
			fmt.Fprintf(stderr, "benchdiff: append: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "benchdiff: appended %q record to %s\n", newS.Suite, *history)
	}

	if regs := benchdiff.Regressions(deltas); len(regs) > 0 {
		for _, d := range regs {
			fmt.Fprintf(stderr, "benchdiff: REGRESSION %s: %s\n", d.Name, d.Metric)
		}
		return 1
	}
	return 0
}
