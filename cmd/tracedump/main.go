// Command tracedump records a persistent-queue run as a memory trace
// and inspects it: per-kind event counts, the paper's insert-distance
// tracing validation (§7), optional binary trace output, and an event
// dump.
//
// Usage:
//
//	tracedump [-design cwl|2lc] [-policy ...] [-threads N] [-inserts N]
//	          [-seed S] [-o trace.bin] [-dump N] [-replay trace.bin]
//	          [-dot graph.dot] [-dot-model epoch]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/queue"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	var (
		designStr = flag.String("design", "cwl", "cwl or 2lc")
		policyStr = flag.String("policy", "epoch", "strict|epoch|racing|strand")
		threads   = flag.Int("threads", 4, "simulated threads")
		inserts   = flag.Int("inserts", 1000, "total inserts")
		seed      = flag.Int64("seed", 1, "interleaving seed")
		out       = flag.String("o", "", "write the binary trace to this file")
		dump      = flag.Int("dump", 0, "print the first N events")
		replay    = flag.String("replay", "", "read a binary trace instead of running a workload")
		dot       = flag.String("dot", "", "write the persist constraint graph (Graphviz) to this file")
		dotModel  = flag.String("dot-model", "epoch", "persistency model for -dot")
	)
	flag.Parse()

	man := telemetry.NewManifest("tracedump").
		CaptureFlags(flag.CommandLine).
		Seed("seed", *seed).
		ModelGrid(core.Models...)
	fmt.Fprintln(os.Stderr, man.String())

	var tr *trace.Trace
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err = trace.ReadAll(f)
		if err != nil {
			fatal(err)
		}
	} else {
		policy, err := parsePolicy(*policyStr)
		if err != nil {
			fatal(err)
		}
		design := queue.CWL
		if *designStr == "2lc" {
			design = queue.TwoLock
		} else if *designStr != "cwl" {
			fatal(fmt.Errorf("unknown design %q", *designStr))
		}
		tr, err = bench.Trace(bench.Workload{
			Design: design, Policy: policy, Threads: *threads,
			Inserts: *inserts, PayloadLen: 100, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
	}

	fmt.Println("== trace summary ==")
	fmt.Print(trace.Summarize(tr).String())

	// The paper's §7 performance validation: distribution of insert
	// distance (global completions between a thread's successive
	// inserts) — used to argue tracing does not perturb interleaving.
	distances := trace.WorkDistances(tr)
	if len(distances) > 0 {
		fmt.Println("\n== insert distance distribution (§7 validation) ==")
		h := stats.NewHistogram(1, 2, 4, 8, 16, 32, 64)
		h.AddAll(distances)
		fmt.Print(h.String())
		sum := stats.Summarize(stats.IntsToFloats(distances))
		fmt.Printf("mean %.2f  p50 %.0f  p90 %.0f  max %.0f\n", sum.Mean, sum.P50, sum.P90, sum.Max)
	}

	fmt.Println("\n== persist critical path per model ==")
	tbl := stats.NewTable("model", "critical-path", "placed", "coalesced")
	rs, err := core.SimulateAll(tr, core.Params{})
	if err != nil {
		fatal(err)
	}
	for _, r := range rs {
		tbl.AddRow(r.Model.String(), fmt.Sprint(r.CriticalPath), fmt.Sprint(r.Placed), fmt.Sprint(r.Coalesced))
	}
	fmt.Print(tbl.String())

	if *dump > 0 {
		fmt.Printf("\n== first %d events ==\n", *dump)
		n := min2(*dump, tr.Len())
		for i := 0; i < n; i++ {
			fmt.Println(tr.At(i).String())
		}
	}

	if *dot != "" {
		var model core.Model
		found := false
		for _, m := range core.Models {
			if m.String() == *dotModel {
				model, found = m, true
			}
		}
		if !found {
			fatal(fmt.Errorf("unknown -dot-model %q", *dotModel))
		}
		g, err := graph.Build(tr, core.Params{Model: model})
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*dot, []byte(g.DOT("persists")), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %d-node constraint graph (%v) to %s\n", g.Len(), model, *dot)
		fmt.Printf("frontier: %d ranges live, %d peak, %d splits, %d coalesces\n",
			g.Stats.FrontierRanges, g.Stats.PeakRanges, g.Stats.Splits, g.Stats.Coalesces)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteAll(f, tr); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %d events to %s\n", tr.Len(), *out)
	}
}

func parsePolicy(s string) (queue.Policy, error) {
	switch s {
	case "strict":
		return queue.PolicyStrict, nil
	case "epoch":
		return queue.PolicyEpoch, nil
	case "racing":
		return queue.PolicyRacingEpoch, nil
	case "strand":
		return queue.PolicyStrand, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracedump:", err)
	os.Exit(1)
}
