package main

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func opts(wl, design, policy string, threads, inserts int, mut func(*workload.Options)) workload.Options {
	d, _ := workload.ParseDesign(design)
	p, _ := workload.ParsePolicy(policy)
	o := workload.Options{
		Workload: wl, Design: d, Policy: p,
		Threads: threads, Inserts: inserts, Payload: 16, Seed: 1,
		DesignStr: design, PolicyStr: policy,
	}
	if mut != nil {
		mut(&o)
	}
	return o
}

// TestAllModelsDeterministicAcrossParallel pins the -all-models
// contract: the full rendered output — witness findings, repro lines,
// exhaustive verdicts and counterexamples — is byte-identical at any
// -parallel worker count.
func TestAllModelsDeterministicAcrossParallel(t *testing.T) {
	for _, tc := range []struct {
		name string
		o    workload.Options
	}{
		{"queue-break-barrier", opts("queue", "cwl", "epoch", 2, 6, func(o *workload.Options) { o.BreakBar = true })},
		{"journal-break-commit", opts("journal", "cwl", "epoch", 1, 2, func(o *workload.Options) {
			o.BreakCommit = true
			o.SparseBlocks = true
		})},
		{"pstm-racing", opts("pstm", "cwl", "racing", 2, 6, nil)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var first string
			for _, workers := range []int{1, 4, 8} {
				cfg := checkConfig{
					opts:       tc.o,
					models:     core.Models,
					exhaustive: true,
					parallel:   workers,
				}
				text, total, err := checkModels(cfg)
				if err != nil {
					t.Fatalf("parallel=%d: %v", workers, err)
				}
				if total.hazards == 0 {
					t.Fatalf("parallel=%d: broken fixture reported no witness hazards", workers)
				}
				if first == "" {
					first = text
					continue
				}
				if text != first {
					t.Errorf("output differs between -parallel 1 and %d:\n--- parallel=1\n%s\n--- parallel=%d\n%s",
						workers, first, workers, text)
				}
			}
			if !strings.Contains(first, "model    : strict\n") || !strings.Contains(first, "exhaustive:") {
				t.Errorf("output missing expected sections:\n%s", first)
			}
		})
	}
}
