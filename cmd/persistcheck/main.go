// Command persistcheck statically analyzes a recorded workload
// execution for persistency hazards — without running the crash
// simulator. It traces the selected workload, builds the persist-order
// constraint graph under the selected model, and runs the analyses
// from internal/persistcheck:
//
//   - epoch races: conflicting persists to the same block unordered
//     under the model but ordered under sequential consistency
//   - unpersisted publications: recovery-critical metadata (queue
//     head, journal commit record, PSTM seal) persisted without an
//     ordering path from the data it publishes
//   - unbound reads: §5.3's read-then-barrier contract violated — a
//     strand's persists not ordered after state the thread observed
//   - redundant barriers: annotations inducing no new constraint-graph
//     edge (pure persist-latency cost, reported with the telemetry
//     attribution site)
//   - unprotected recovery metadata: publication words and order-after
//     regions with no integrity protection (CRC frame, shadow
//     checksum, or durable word) — robustness findings, advisory by
//     default; -require-integrity turns them into failures
//
// -exhaustive additionally runs the bounded model checker
// (internal/persistcheck/exhaustive): it enumerates every reachable
// post-crash NVRAM image of the trace, classifies each through the
// structure's recovery, and reports the correctness condition met —
// durably-linearizable, detectably-recoverable, or hazardous with a
// minimized counterexample replayable via `crashsim -replay`.
//
// Usage:
//
//	persistcheck [-workload queue|journal|pstm] [-design cwl|2lc]
//	             [-policy strict|epoch|racing|strand]
//	             [-model strict|epoch|epoch-tso|strand] [-all-models]
//	             [-threads N] [-inserts N] [-payload N] [-seed S]
//	             [-break-barrier] [-omit-completion-barrier]
//	             [-break-commit] [-omit-strand-recipe]
//	             [-integrity] [-require-integrity] [-sparse-blocks]
//	             [-exhaustive] [-state-budget N] [-parallel N]
//	             [-limit N] [-metrics-out FILE]
//
// Without -model the checker uses the policy's natural target model
// (the Table 1 column pairing); -all-models checks every model in one
// run, in a deterministic order at any -parallel worker count. Hazard
// findings carry a one-line repro in the fault-campaign format: paste
// it into `crashsim -replay` (campaign hazards) or rerun crashsim with
// the printed parameters to watch the observer reach the divergent
// recovery state. Exit status 2 means hazards were found (witness-pair
// hazards, or a hazardous exhaustive verdict).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/persistcheck"
	"repro/internal/persistcheck/exhaustive"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// checkConfig is everything one checker invocation needs; main parses
// flags into it, tests construct it directly.
type checkConfig struct {
	opts        workload.Options // Model overridden per grid entry
	models      []core.Model
	exhaustive  bool
	stateBudget int
	parallel    int
	limit       int
	requireInt  bool
	reg         *telemetry.Registry
}

// modelOutput is one model's rendered report plus its tallies.
type modelOutput struct {
	text       string
	describe   string
	rep        *persistcheck.Report
	hazards    int
	robustness int
	exHazards  int
}

// checkModels runs the witness-pair checker (and optionally the
// exhaustive checker) for every model in the grid, fanning models out
// across sweep workers. Output is assembled in model order and findings
// are canonically sorted, so the result is byte-identical at any
// worker count.
func checkModels(cfg checkConfig) (string, *modelOutput, error) {
	outs := make([]*modelOutput, len(cfg.models))
	// With a single model the inner exhaustive sweep gets the workers;
	// with a model grid the models themselves fan out.
	inner, outer := 1, cfg.parallel
	if len(cfg.models) == 1 {
		inner, outer = cfg.parallel, 1
	}
	err := sweep.Run(len(cfg.models), sweep.Config{Parallel: outer, Name: "persistcheck-models"},
		func(i int) (*modelOutput, error) {
			model := cfg.models[i]
			opts := cfg.opts
			opts.Model = model
			run, err := workload.Build(opts, nil)
			if err != nil {
				return nil, err
			}
			var b strings.Builder
			fmt.Fprintf(&b, "model    : %v\n", model)
			rep, err := persistcheck.Check(run.Trace, core.Params{Model: model}, run.Checks, persistcheck.Config{
				Limit:       cfg.limit,
				ReproParams: opts.Params(),
				SiteLabel:   run.SiteLabel,
			})
			if err != nil {
				return nil, err
			}
			rep.SortFindings()
			fmt.Fprint(&b, rep)
			out := &modelOutput{
				describe:   run.Describe,
				rep:        rep,
				hazards:    rep.Hazards(),
				robustness: rep.RobustnessFindings(),
			}
			if cfg.exhaustive {
				res, err := exhaustive.Check(run.Trace, core.Params{Model: model}, run.Recover, run.Checked,
					exhaustive.Config{
						Budget:      cfg.stateBudget,
						ReproParams: opts.Params(),
						Sweep:       sweep.Config{Parallel: inner},
					})
				if err != nil {
					return nil, fmt.Errorf("model %v: %w", model, err)
				}
				fmt.Fprint(&b, res)
				out.exHazards = res.Hazards
			}
			out.text = b.String()
			return out, nil
		},
		func(i int, v *modelOutput) error {
			// Metrics are observed at merge time, in model order, so
			// snapshots are deterministic at any worker count.
			if cfg.reg != nil {
				persistcheck.Observe(cfg.reg, v.rep)
			}
			outs[i] = v
			return nil
		})
	if err != nil {
		return "", nil, err
	}
	var b strings.Builder
	total := &modelOutput{describe: outs[0].describe}
	for _, o := range outs {
		b.WriteString(o.text)
		total.hazards += o.hazards
		total.robustness += o.robustness
		total.exHazards += o.exHazards
	}
	return b.String(), total, nil
}

func main() {
	var (
		wl          = flag.String("workload", "queue", "queue, journal, or pstm")
		designStr   = flag.String("design", "cwl", "cwl or 2lc (queue only)")
		policyStr   = flag.String("policy", "epoch", "strict|epoch|racing|strand")
		modelStr    = flag.String("model", "", "persistency model (default: the policy's target model)")
		allModels   = flag.Bool("all-models", false, "check under every persistency model")
		threads     = flag.Int("threads", 2, "simulated threads")
		inserts     = flag.Int("inserts", 16, "total inserts/transactions")
		payloadLen  = flag.Int("payload", 64, "payload bytes (queue only)")
		seed        = flag.Int64("seed", 1, "interleaving seed")
		breakBar    = flag.Bool("break-barrier", false, "drop the data→head barrier (negative test)")
		omitComp    = flag.Bool("omit-completion-barrier", false, "drop 2LC's completion barrier (negative test)")
		breakCmt    = flag.Bool("break-commit", false, "drop the journal's records→commit barrier (negative test)")
		omitRcp     = flag.Bool("omit-strand-recipe", false, "drop the journal's §5.3 strand recipe (negative test)")
		integrity   = flag.Bool("integrity", false, "build with the corruption-detecting durable format (CRC frames, durable words, shadows)")
		requireInt  = flag.Bool("require-integrity", false, "fail (exit 2) on unprotected recovery metadata findings")
		sparse      = flag.Bool("sparse-blocks", false, "journal writes tag-word-only blocks (keeps -exhaustive state spaces tractable)")
		exhaustiveF = flag.Bool("exhaustive", false, "enumerate and classify every reachable crash state (bounded model checking)")
		stateBudget = flag.Int("state-budget", 0, "exhaustive checker state budget; exceeding it refuses the fixture (0 = 1<<20)")
		parallel    = flag.Int("parallel", 0, "sweep worker count; 0 means GOMAXPROCS, 1 forces sequential")
		limit       = flag.Int("limit", 0, "max stored findings per kind (0 = default)")
		metricsOut  = flag.String("metrics-out", "", "write a metrics snapshot to this file (.prom/.txt: Prometheus text, else JSON)")
	)
	flag.Parse()

	man := telemetry.NewManifest("persistcheck").
		CaptureFlags(flag.CommandLine).
		Seed("seed", *seed)
	fmt.Fprintln(os.Stderr, man.String())

	design, err := workload.ParseDesign(*designStr)
	if err != nil {
		fatal(err)
	}
	policy, err := workload.ParsePolicy(*policyStr)
	if err != nil {
		fatal(err)
	}
	models := []core.Model{workload.ModelForPolicy(*wl, policy)}
	switch {
	case *allModels:
		models = core.Models
	case *modelStr != "":
		m, err := workload.ParseModel(*modelStr)
		if err != nil {
			fatal(err)
		}
		models = []core.Model{m}
	}

	man.ModelGrid(models...)
	reg := telemetry.NewRegistry()
	cfg := checkConfig{
		opts: workload.Options{
			Workload: *wl, Design: design, Policy: policy,
			Threads: *threads, Inserts: *inserts, Payload: *payloadLen, Seed: *seed,
			BreakBar: *breakBar, OmitComp: *omitComp,
			BreakCommit: *breakCmt, OmitRecipe: *omitRcp,
			Integrity: *integrity, SparseBlocks: *sparse,
			DesignStr: *designStr, PolicyStr: *policyStr,
		},
		models:      models,
		exhaustive:  *exhaustiveF,
		stateBudget: *stateBudget,
		parallel:    *parallel,
		limit:       *limit,
		requireInt:  *requireInt,
		reg:         reg,
	}
	text, total, err := checkModels(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload : %s\n", total.describe)
	fmt.Print(text)
	if *metricsOut != "" {
		if err := telemetry.WriteMetrics(reg, man, *metricsOut); err != nil {
			fatal(err)
		}
	}
	switch {
	case total.hazards > 0 || total.exHazards > 0:
		fmt.Printf("verdict  : %d persistency hazard(s), %d hazardous crash state(s) found\n",
			total.hazards, total.exHazards)
		os.Exit(2)
	case *requireInt && total.robustness > 0:
		fmt.Printf("verdict  : %d unprotected recovery metadata finding(s) (-require-integrity)\n", total.robustness)
		os.Exit(2)
	}
	fmt.Println("verdict  : no persistency hazards found")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "persistcheck:", err)
	os.Exit(1)
}
