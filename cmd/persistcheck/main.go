// Command persistcheck statically analyzes a recorded workload
// execution for persistency hazards — without running the crash
// simulator. It traces the selected workload, builds the persist-order
// constraint graph under the selected model, and runs the four
// analyses from internal/persistcheck:
//
//   - epoch races: conflicting persists to the same block unordered
//     under the model but ordered under sequential consistency
//   - unpersisted publications: recovery-critical metadata (queue
//     head, journal commit record, PSTM seal) persisted without an
//     ordering path from the data it publishes
//   - unbound reads: §5.3's read-then-barrier contract violated — a
//     strand's persists not ordered after state the thread observed
//   - redundant barriers: annotations inducing no new constraint-graph
//     edge (pure persist-latency cost, reported with the telemetry
//     attribution site)
//   - unprotected recovery metadata: publication words and order-after
//     regions with no integrity protection (CRC frame, shadow
//     checksum, or durable word) — robustness findings, advisory by
//     default; -require-integrity turns them into failures
//
// Usage:
//
//	persistcheck [-workload queue|journal|pstm] [-design cwl|2lc]
//	             [-policy strict|epoch|racing|strand]
//	             [-model strict|epoch|epoch-tso|strand] [-all-models]
//	             [-threads N] [-inserts N] [-payload N] [-seed S]
//	             [-break-barrier] [-omit-completion-barrier]
//	             [-break-commit] [-omit-strand-recipe]
//	             [-integrity] [-require-integrity]
//	             [-limit N] [-metrics-out FILE]
//
// Without -model the checker uses the policy's natural target model
// (the Table 1 column pairing); -all-models checks every model in one
// run. Hazard findings carry a one-line repro in the fault-campaign
// format: paste it into `crashsim -replay` (campaign hazards) or rerun
// crashsim with the printed parameters to watch the observer reach the
// divergent recovery state. Exit status 2 means hazards were found.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/persistcheck"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	var (
		wl         = flag.String("workload", "queue", "queue, journal, or pstm")
		designStr  = flag.String("design", "cwl", "cwl or 2lc (queue only)")
		policyStr  = flag.String("policy", "epoch", "strict|epoch|racing|strand")
		modelStr   = flag.String("model", "", "persistency model (default: the policy's target model)")
		allModels  = flag.Bool("all-models", false, "check under every persistency model")
		threads    = flag.Int("threads", 2, "simulated threads")
		inserts    = flag.Int("inserts", 16, "total inserts/transactions")
		payloadLen = flag.Int("payload", 64, "payload bytes (queue only)")
		seed       = flag.Int64("seed", 1, "interleaving seed")
		breakBar   = flag.Bool("break-barrier", false, "drop the data→head barrier (negative test)")
		omitComp   = flag.Bool("omit-completion-barrier", false, "drop 2LC's completion barrier (negative test)")
		breakCmt   = flag.Bool("break-commit", false, "drop the journal's records→commit barrier (negative test)")
		omitRcp    = flag.Bool("omit-strand-recipe", false, "drop the journal's §5.3 strand recipe (negative test)")
		integrity  = flag.Bool("integrity", false, "build with the corruption-detecting durable format (CRC frames, durable words, shadows)")
		requireInt = flag.Bool("require-integrity", false, "fail (exit 2) on unprotected recovery metadata findings")
		limit      = flag.Int("limit", 0, "max stored findings per kind (0 = default)")
		metricsOut = flag.String("metrics-out", "", "write a metrics snapshot to this file (.prom/.txt: Prometheus text, else JSON)")
	)
	flag.Parse()

	man := telemetry.NewManifest("persistcheck").
		CaptureFlags(flag.CommandLine).
		Seed("seed", *seed)
	fmt.Fprintln(os.Stderr, man.String())

	design, err := workload.ParseDesign(*designStr)
	if err != nil {
		fatal(err)
	}
	policy, err := workload.ParsePolicy(*policyStr)
	if err != nil {
		fatal(err)
	}
	models := []core.Model{workload.ModelForPolicy(*wl, policy)}
	switch {
	case *allModels:
		models = core.Models
	case *modelStr != "":
		m, err := workload.ParseModel(*modelStr)
		if err != nil {
			fatal(err)
		}
		models = []core.Model{m}
	}

	man.ModelGrid(models...)
	reg := telemetry.NewRegistry()
	hazards := 0
	robustness := 0
	for i, model := range models {
		opts := workload.Options{
			Workload: *wl, Design: design, Policy: policy, Model: model,
			Threads: *threads, Inserts: *inserts, Payload: *payloadLen, Seed: *seed,
			BreakBar: *breakBar, OmitComp: *omitComp,
			BreakCommit: *breakCmt, OmitRecipe: *omitRcp,
			Integrity: *integrity,
			DesignStr: *designStr, PolicyStr: *policyStr,
		}
		run, err := workload.Build(opts, nil)
		if err != nil {
			fatal(err)
		}
		if i == 0 {
			fmt.Printf("workload : %s\n", run.Describe)
		}
		fmt.Printf("model    : %v\n", model)
		rep, err := persistcheck.Check(run.Trace, core.Params{Model: model}, run.Checks, persistcheck.Config{
			Limit:       *limit,
			ReproParams: opts.Params(),
			SiteLabel:   run.SiteLabel,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep)
		persistcheck.Observe(reg, rep)
		hazards += rep.Hazards()
		robustness += rep.RobustnessFindings()
	}
	if *metricsOut != "" {
		if err := telemetry.WriteMetrics(reg, man, *metricsOut); err != nil {
			fatal(err)
		}
	}
	if hazards > 0 {
		fmt.Printf("verdict  : %d persistency hazard(s) found\n", hazards)
		os.Exit(2)
	}
	if *requireInt && robustness > 0 {
		fmt.Printf("verdict  : %d unprotected recovery metadata finding(s) (-require-integrity)\n", robustness)
		os.Exit(2)
	}
	fmt.Println("verdict  : no persistency hazards found")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "persistcheck:", err)
	os.Exit(1)
}
