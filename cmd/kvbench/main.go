// Command kvbench sweeps the sharded persistent KV serving workload
// (internal/kv driven by the open-loop Zipfian generator in
// internal/workload) across annotation policies and persistency
// models, and maintains the BENCH_kv.json artifact.
//
// Usage:
//
//	kvbench [-shards N] [-keys N] [-threads N] [-ops N] [-read-frac F]
//	        [-zipf S] [-seed S] [-policies strict,epoch,racing,strand]
//	        [-integrity] [-parallel N] [-json] [-out FILE] [-history FILE]
//	        [-graph-dump FILE -graph-build serial|parallel -graph-workers N]
//	        [-check] [-exhaustive] [-state-budget N]
//
// -check skips the bench sweep and runs the witness-pair persistency
// checker over each policy's trace under its target model;
// -exhaustive additionally runs the bounded model checker from
// internal/persistcheck/exhaustive, classifying every reachable crash
// state (use small -shards/-keys/-ops grids: the checker refuses
// fixtures whose state space exceeds -state-budget). Both follow the
// persistcheck exit contract: status 2 means hazards were found.
//
// Every reported number is simulated and deterministic: the same
// flags produce the same bytes, so -out artifacts diff cleanly and
// the -graph-dump file is byte-identical between the serial and
// parallel graph builders (the CI cmp step relies on this).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/benchdiff"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/journal"
	"repro/internal/persistcheck"
	"repro/internal/persistcheck/exhaustive"
	"repro/internal/queue"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// row is one (policy, model) cell of the sweep: the serving metrics
// kvbench reports beyond the benchdiff suite core.
type row struct {
	Policy       string  `json:"policy"`
	Model        string  `json:"model"`
	Target       bool    `json:"target"` // model the policy's annotations aim at
	Events       int64   `json:"events"`
	Persists     int64   `json:"persists"`
	Placed       int64   `json:"placed"`
	Coalesced    int64   `json:"coalesced"`
	CriticalPath int64   `json:"critical_path"`
	PathPerOp    float64 `json:"path_per_op"`
	Ops          int     `json:"ops"`
}

// report is the BENCH_kv.json document: a benchdiff suite (so the
// regression gate and history tooling parse it directly — extra
// fields are ignored) plus the full serving-metric rows.
type report struct {
	benchdiff.Suite
	Config map[string]string `json:"config"`
	Rows   []row             `json:"rows"`
}

func main() {
	var (
		shards     = flag.Int("shards", 64, "shard count (one journaled table per shard)")
		keys       = flag.Uint64("keys", 1<<20, "dense key-space size")
		threads    = flag.Int("threads", 128, "simulated serving threads")
		ops        = flag.Int("ops", 1<<20, "total operations, split across threads")
		readFrac   = flag.Float64("read-frac", 0.9, "fraction of operations that are reads")
		zipfS      = flag.Float64("zipf", 1.1, "Zipf skew s (>1); 0 means uniform keys")
		seed       = flag.Int64("seed", 42, "generator and interleaving seed")
		policyStr  = flag.String("policies", "strict,epoch,racing,strand", "comma-separated annotation policies to sweep")
		integrity  = flag.Bool("integrity", false, "use the corruption-detecting durable format in every shard")
		parallel   = flag.Int("parallel", 0, "sweep worker count; 0 means GOMAXPROCS, 1 forces sequential")
		traceCache = flag.Int("trace-cache", bench.DefaultCacheEntries, "workload trace cache capacity in traces; 0 disables")
		jsonOut    = flag.Bool("json", false, "emit the report JSON to stdout instead of aligned tables")
		out        = flag.String("out", "", "write the report JSON to this file (e.g. BENCH_kv.json)")
		history    = flag.String("history", "", "append the suite to this BENCH_history.jsonl file")
		spansOut   = flag.String("spans-out", "", "write the harness wall-clock span trace (Chrome trace-event JSON) to this file")
		metricsOut = flag.String("metrics-out", "", "write a metrics snapshot to this file (.prom/.txt: Prometheus text, else JSON)")
		graphDump  = flag.String("graph-dump", "", "build the persist-order graph for the first policy and write a deterministic dump to this file")
		graphBuild = flag.String("graph-build", "serial", "graph builder for -graph-dump: serial|parallel")
		graphWkrs  = flag.Int("graph-workers", 4, "worker count for -graph-build parallel")
		checkF     = flag.Bool("check", false, "checks-only mode: run the persistency checker per policy instead of the bench sweep; exit 2 on hazards")
		exhaustF   = flag.Bool("exhaustive", false, "with -check sizes: also enumerate and classify every reachable crash state (implies -check)")
		stateBudgt = flag.Int("state-budget", 0, "exhaustive checker state budget; exceeding it refuses the fixture (0 = 1<<20)")
	)
	flag.Parse()

	man := telemetry.NewManifest("kvbench").
		CaptureFlags(flag.CommandLine).
		Seed("seed", *seed).
		ModelGrid(core.Models...)
	fmt.Fprintln(os.Stderr, man.String())

	reg := telemetry.NewRegistry()
	var spans *telemetry.SpanTracer
	if *spansOut != "" {
		spans = telemetry.NewSpanTracer(reg)
	}
	var cache *bench.TraceCache
	if *traceCache > 0 {
		cache = bench.NewTraceCache(*traceCache)
	}
	cache.SetSpans(spans)

	grid, err := parseGrid(*policyStr, *shards, *keys, *threads, *ops, *readFrac, *zipfS, *seed, *integrity)
	if err != nil {
		fatal(err)
	}

	if *checkF || *exhaustF {
		os.Exit(runChecks(grid, *exhaustF, *stateBudgt, *parallel, cache))
	}

	// Sweep: one grid item per policy. Each item traces (or replays) the
	// workload once and streams every persistency model over it in a
	// single walk; merge collects rows in grid order, so the report is
	// byte-identical at any -parallel.
	type itemOut struct {
		results []core.Result
		events  int64
	}
	rows := make([]row, 0, len(grid)*len(core.Models))
	sw := sweep.Config{Parallel: *parallel, Registry: reg, Spans: spans}.Named("kvbench")
	err = sweep.Run(len(grid), sw, func(i int) (itemOut, error) {
		run, err := workload.BuildKV(grid[i].opts, cache)
		if err != nil {
			return itemOut{}, err
		}
		res, err := core.SimulateAll(run.Trace, core.Params{})
		if err != nil {
			return itemOut{}, err
		}
		return itemOut{results: res, events: int64(run.Trace.Len())}, nil
	}, func(i int, v itemOut) error {
		target := workload.ModelForPolicy("journal", grid[i].qpol)
		for _, r := range v.results {
			telemetry.ObserveResult(reg, fmt.Sprintf("kv/%s/%v", grid[i].name, r.Model), r)
			rows = append(rows, row{
				Policy: grid[i].name, Model: r.Model.String(),
				Target: r.Model == target, Events: v.events,
				Persists: r.Persists, Placed: r.Placed, Coalesced: r.Coalesced,
				CriticalPath: r.CriticalPath, PathPerOp: r.PathPerWork(),
				Ops: grid[i].opts.Ops,
			})
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}

	rep := buildReport(man, rows, grid[0].opts)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		printTables(rows)
	}
	if *out != "" {
		if err := writeJSON(*out, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "kvbench: wrote %s\n", *out)
	}
	if *history != "" {
		if err := benchdiff.AppendHistory(*history, &rep.Suite, man); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "kvbench: appended suite to %s\n", *history)
	}

	if *graphDump != "" {
		if err := dumpGraph(*graphDump, *graphBuild, *graphWkrs, grid[0], cache, spans); err != nil {
			fatal(err)
		}
	}

	cache.Observe(reg)
	if cache != nil && !*jsonOut {
		s := cache.Stats()
		fmt.Printf("trace cache: %d hits, %d misses, %d evictions\n", s.Hits, s.Misses, s.Evictions)
	}
	if *spansOut != "" {
		f, err := os.Create(*spansOut)
		if err != nil {
			fatal(err)
		}
		if err := telemetry.EncodeChromeTraceDoc(f, man, spans); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "kvbench: wrote %d wall-clock spans to %s\n", spans.Len(), *spansOut)
	}
	if *metricsOut != "" {
		if err := telemetry.WriteMetrics(reg, man, *metricsOut); err != nil {
			fatal(err)
		}
	}
}

// gridItem pairs the policy's flag spelling with the built options;
// the queue-space enum is kept only to resolve the target model.
type gridItem struct {
	name string
	qpol queue.Policy
	opts workload.KVOptions
}

func parseGrid(policies string, shards int, keys uint64, threads, ops int, readFrac, zipfS float64, seed int64, integrity bool) ([]gridItem, error) {
	var grid []gridItem
	for _, name := range strings.Split(policies, ",") {
		name = strings.TrimSpace(name)
		qp, err := workload.ParsePolicy(name)
		if err != nil {
			return nil, err
		}
		jp, err := workload.JournalPolicy(qp)
		if err != nil {
			return nil, err
		}
		grid = append(grid, gridItem{
			name: name,
			qpol: qp,
			opts: workload.KVOptions{
				Shards: shards, Keys: keys, Threads: threads, Ops: ops,
				ReadFrac: readFrac, ZipfS: zipfS, Policy: jp,
				Integrity: integrity, Seed: seed, PolicyStr: name,
			},
		})
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("empty policy grid")
	}
	return grid, nil
}

// buildReport assembles the BENCH_kv.json document. The suite rows
// carry the deterministic simulated costs the regression gate tracks:
// ns_per_op holds the persist critical path per operation (the
// latency-side figure of merit), bytes_per_op the persist traffic per
// operation (64B per placed persist), allocs_per_op the raw persist
// count per operation.
func buildReport(man *telemetry.Manifest, rows []row, o workload.KVOptions) *report {
	rep := &report{
		Suite: benchdiff.Suite{Suite: "kv-serving", Manifest: man},
		Config: map[string]string{
			"shards":    strconv.Itoa(o.Shards),
			"keys":      strconv.FormatUint(o.Keys, 10),
			"threads":   strconv.Itoa(o.Threads),
			"ops":       strconv.Itoa(o.Ops),
			"read-frac": strconv.FormatFloat(o.ReadFrac, 'g', -1, 64),
			"zipf":      strconv.FormatFloat(o.ZipfS, 'g', -1, 64),
			"seed":      strconv.FormatInt(o.Seed, 10),
			"integrity": strconv.FormatBool(o.Integrity),
		},
		Rows: rows,
	}
	for _, r := range rows {
		rep.Benchmarks = append(rep.Benchmarks, benchdiff.Benchmark{
			Name:        fmt.Sprintf("kv/%s/%s", r.Policy, r.Model),
			NsPerOp:     r.PathPerOp,
			BytesPerOp:  float64(r.Placed*journal.BlockBytes) / float64(r.Ops),
			AllocsPerOp: float64(r.Persists) / float64(r.Ops),
		})
	}
	return rep
}

func printTables(rows []row) {
	tbl := stats.NewTable("policy", "model", "target", "events", "persists", "placed", "coalesced", "critical-path", "path/op")
	for _, r := range rows {
		mark := ""
		if r.Target {
			mark = "*"
		}
		tbl.AddRow(r.Policy, r.Model, mark,
			strconv.FormatInt(r.Events, 10), strconv.FormatInt(r.Persists, 10),
			strconv.FormatInt(r.Placed, 10), strconv.FormatInt(r.Coalesced, 10),
			strconv.FormatInt(r.CriticalPath, 10), fmt.Sprintf("%.3f", r.PathPerOp))
	}
	fmt.Println("sharded KV serving: persist-order metrics by annotation policy x persistency model")
	fmt.Println("(* marks the model each policy's annotations target)")
	fmt.Print(tbl.String())
}

// dumpGraph builds the persist-order constraint graph for the first
// grid policy under its target model and writes a deterministic
// line-oriented dump. Running once with -graph-build serial and once
// with -graph-build parallel must produce byte-identical files.
func dumpGraph(path, builder string, workers int, item gridItem, cache *bench.TraceCache, spans *telemetry.SpanTracer) error {
	run, err := workload.BuildKV(item.opts, cache)
	if err != nil {
		return err
	}
	p := core.Params{Model: workload.ModelForPolicy("journal", item.qpol)}
	sp := spans.Start("graph", "build").Arg("model", p.Model.String()).Arg("builder", builder)
	var g *graph.Graph
	switch builder {
	case "serial":
		g, err = graph.Build(run.Trace, p)
	case "parallel":
		g, err = graph.BuildParallel(run.Trace, p, workers)
	default:
		err = fmt.Errorf("unknown -graph-build %q (want serial|parallel)", builder)
	}
	if err == nil {
		sp.Arg("nodes", g.Len()).Arg("peak-ranges", g.Stats.PeakRanges)
	}
	sp.End()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "kvbench graph dump: policy %s model %v nodes %d stats %+v\n",
		item.name, p.Model, g.Len(), g.Stats)
	for _, n := range g.Nodes {
		fmt.Fprintf(w, "%d %d %d %x %d", n.ID, n.Event.TID, n.Event.Kind, n.Event.Addr, n.Event.Size)
		for _, e := range n.In {
			fmt.Fprintf(w, " %d:%d", e.From, e.Class)
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "kvbench: wrote %s graph dump (%d nodes) to %s\n", builder, g.Len(), path)
	return nil
}

// runChecks is the -check / -exhaustive mode: instead of the bench
// sweep, each policy's trace goes through the witness-pair persistency
// checker under its target model — and with -exhaustive through the
// bounded model checker too, which enumerates every reachable crash
// state and reports the correctness condition met. Policies run
// sequentially (the sweep workers go to the exhaustive enumeration),
// so output is deterministic at any -parallel. The exit contract
// matches cmd/persistcheck: 2 when any hazard or hazardous verdict was
// found, 0 when clean.
func runChecks(grid []gridItem, exhaustiveMode bool, stateBudget, parallel int, cache *bench.TraceCache) int {
	hazards, exHazards := 0, 0
	for _, item := range grid {
		run, err := workload.BuildKV(item.opts, cache)
		if err != nil {
			fatal(err)
		}
		model := workload.ModelForPolicy("kv", item.qpol)
		fmt.Printf("workload : %s\n", run.Describe)
		fmt.Printf("model    : %v\n", model)
		rep, err := persistcheck.Check(run.Trace, core.Params{Model: model}, run.Checks, persistcheck.Config{
			ReproParams: item.opts.Params(),
			SiteLabel:   run.SiteLabel,
		})
		if err != nil {
			fatal(err)
		}
		rep.SortFindings()
		fmt.Print(rep)
		hazards += rep.Hazards()
		if exhaustiveMode {
			res, err := exhaustive.Check(run.Trace, core.Params{Model: model}, run.Recover, run.Checked,
				exhaustive.Config{
					Budget:      stateBudget,
					ReproParams: item.opts.Params(),
					Sweep:       sweep.Config{Parallel: parallel},
				})
			if err != nil {
				fatal(fmt.Errorf("policy %s: %w", item.name, err))
			}
			fmt.Print(res)
			exHazards += res.Hazards
		}
	}
	if hazards > 0 || exHazards > 0 {
		fmt.Printf("verdict  : %d persistency hazard(s), %d hazardous crash state(s) found\n", hazards, exHazards)
		return 2
	}
	fmt.Println("verdict  : no persistency hazards found")
	return 0
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kvbench:", err)
	os.Exit(1)
}
