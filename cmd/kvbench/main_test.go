package main

import (
	"testing"
)

// TestRunChecksExitContract pins -check's exit codes to the
// persistcheck CLI contract: 0 when the grid is clean, 2 when any
// policy has witness hazards. The racing discipline drops the
// journal's inner barrier, which the epoch-race detector flags on a
// write-heavy mix, so it is the seeded-hazard fixture here.
func TestRunChecksExitContract(t *testing.T) {
	clean, err := parseGrid("strict,epoch,strand", 2, 8, 2, 8, 0.5, 1.1, 42, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := runChecks(clean, false, 0, 1, nil); got != 0 {
		t.Errorf("clean grid exited %d, want 0", got)
	}
	racing, err := parseGrid("racing", 2, 8, 2, 8, 0.5, 1.1, 42, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := runChecks(racing, false, 0, 1, nil); got != 2 {
		t.Errorf("racing grid exited %d, want 2", got)
	}
}

// TestRunChecksExhaustive pins the -exhaustive path: the clean grid's
// every reachable crash state classifies as recovered, so the verdict
// stays 0 with the bounded model checker on.
func TestRunChecksExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration in -short mode")
	}
	// read-frac 0.75 keeps the strand-model crash-state space inside
	// the default budget (46 persists, ~10k reduced states from ~36M
	// cuts); at 0.5 the 67-persist trace exceeds 4M states.
	grid, err := parseGrid("strict,epoch,strand", 2, 8, 2, 8, 0.75, 1.1, 42, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := runChecks(grid, true, 0, 0, nil); got != 0 {
		t.Errorf("clean grid with -exhaustive exited %d, want 0", got)
	}
}
