// Package locks provides spin locks implemented on the simulated
// machine's memory, so that all lock traffic appears in the memory
// trace exactly as pthread/MCS lock traffic appeared in the paper's PIN
// traces. The persistency models propagate persist ordering constraints
// through these volatile lock words; that propagation is the whole
// point of the paper's "Epoch" vs. "Racing Epochs" distinction, so the
// locks must be real memory algorithms, not Go mutexes.
//
// The paper's benchmarks use MCS queue locks (§7, [20]); MCS is the
// default here, with ticket and test-and-set locks for comparison.
// All locks live in the volatile address space, following the paper's
// guidance to "only place locks in the volatile address space" (§5.2).
package locks

import (
	"sync"

	"repro/internal/exec"
	"repro/internal/memory"
)

// Lock is a mutual-exclusion lock on simulated memory. Acquire and
// Release must be called from the owning simulated thread, in pairs.
type Lock interface {
	Acquire(t *exec.Thread)
	Release(t *exec.Thread)
}

// MCS is the Mellor-Crummey/Scott queue-based spin lock: threads
// enqueue a per-thread node and spin on their own cache line, giving
// FIFO order and local spinning.
//
// Layout: the lock itself is one volatile word holding the tail node
// address (0 = free). Each thread's node is two volatile words:
// next (+0) and locked (+8).
type MCS struct {
	tail memory.Addr
	// nodes maps TID -> node base. The engine serializes simulated
	// operations, but a thread's *first* node lookup can run before its
	// first operation (threads start concurrently), so the map needs a
	// host-level mutex. It guards only this Go map, not simulated state.
	mu    sync.Mutex
	nodes map[int]memory.Addr
}

const (
	mcsNext   = 0
	mcsLocked = 8
	mcsNode   = 16
)

// NewMCS allocates the lock word using t (a setup thread).
func NewMCS(t *exec.Thread) *MCS {
	l := &MCS{
		tail:  t.MallocVolatile(memory.WordSize, memory.DefaultAlign),
		nodes: make(map[int]memory.Addr),
	}
	t.Store8(l.tail, 0)
	return l
}

// node returns the calling thread's queue node, allocating on first use.
func (l *MCS) node(t *exec.Thread) memory.Addr {
	l.mu.Lock()
	n, ok := l.nodes[t.TID()]
	l.mu.Unlock()
	if ok {
		return n
	}
	n = t.MallocVolatile(mcsNode, memory.DefaultAlign)
	l.mu.Lock()
	l.nodes[t.TID()] = n
	l.mu.Unlock()
	return n
}

// Acquire takes the lock, spinning on the thread's own node. The
// fences order store visibility on relaxed-consistency (PSO) machines;
// under SC they are no-ops.
func (l *MCS) Acquire(t *exec.Thread) {
	n := l.node(t)
	t.Store8(n+mcsNext, 0)
	pred := t.Swap8(l.tail, uint64(n)) // atomics drain the store buffer
	if pred == 0 {
		return
	}
	t.Store8(n+mcsLocked, 1)
	// locked=1 must be visible before the predecessor can find us and
	// clear it, or the handoff is lost and we spin forever.
	t.Fence()
	t.Store8(memory.Addr(pred)+mcsNext, uint64(n))
	for t.Load8(n+mcsLocked) != 0 {
		t.Yield()
	}
}

// Release passes the lock to the queue successor, if any.
func (l *MCS) Release(t *exec.Thread) {
	n := l.node(t)
	if t.Load8(n+mcsNext) == 0 {
		if t.CAS8(l.tail, uint64(n), 0) {
			return
		}
		// A successor is enqueueing; wait for it to link itself.
		for t.Load8(n+mcsNext) == 0 {
			t.Yield()
		}
	}
	succ := memory.Addr(t.Load8(n + mcsNext))
	// Critical-section stores must be visible before the handoff.
	t.Fence()
	t.Store8(succ+mcsLocked, 0)
}

// Ticket is a FIFO ticket lock: two volatile words, next (+0) and
// serving (+8).
type Ticket struct {
	base memory.Addr
}

// NewTicket allocates the ticket lock using t.
func NewTicket(t *exec.Thread) *Ticket {
	l := &Ticket{base: t.MallocVolatile(16, memory.DefaultAlign)}
	t.Store8(l.base, 0)
	t.Store8(l.base+8, 0)
	return l
}

// Acquire draws a ticket and spins until served.
func (l *Ticket) Acquire(t *exec.Thread) {
	my := t.Add8(l.base, 1) - 1
	for t.Load8(l.base+8) != my {
		t.Yield()
	}
}

// Release serves the next ticket.
func (l *Ticket) Release(t *exec.Thread) {
	v := t.Load8(l.base + 8)
	t.Fence() // critical-section stores visible before the handoff
	t.Store8(l.base+8, v+1)
}

// TAS is a test-and-set spin lock on a single volatile word.
type TAS struct {
	word memory.Addr
}

// NewTAS allocates the lock word using t.
func NewTAS(t *exec.Thread) *TAS {
	l := &TAS{word: t.MallocVolatile(memory.WordSize, memory.DefaultAlign)}
	t.Store8(l.word, 0)
	return l
}

// Acquire spins with test-test-and-set.
func (l *TAS) Acquire(t *exec.Thread) {
	for {
		if t.Load8(l.word) == 0 && t.CAS8(l.word, 0, 1) {
			return
		}
		t.Yield()
	}
}

// Release clears the lock word.
func (l *TAS) Release(t *exec.Thread) {
	t.Fence() // critical-section stores visible before the handoff
	t.Store8(l.word, 0)
}
