package locks

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/memory"
	"repro/internal/trace"
)

// exerciseMutualExclusion runs a critical-section workload that would
// corrupt shared state under any mutual-exclusion violation: inside the
// section each thread writes its id into a guard word, does unrelated
// work, and verifies the guard is untouched before incrementing a
// counter non-atomically (load, work, store).
func exerciseMutualExclusion(t *testing.T, mk func(*exec.Thread) Lock, threads, iters int, seed int64) {
	t.Helper()
	m := exec.NewMachine(exec.Config{Threads: threads, Seed: seed, Slice: 3})
	s := m.SetupThread()
	var l Lock = mk(s)
	guard := s.MallocVolatile(8, 8)
	ctr := s.MallocVolatile(8, 8)
	violations := s.MallocVolatile(8, 8)
	m.Run(func(th *exec.Thread) {
		me := uint64(th.TID() + 1)
		for i := 0; i < iters; i++ {
			l.Acquire(th)
			th.Store8(guard, me)
			v := th.Load8(ctr) // non-atomic read-modify-write
			if th.Load8(guard) != me {
				th.Add8(violations, 1)
			}
			th.Store8(ctr, v+1)
			l.Release(th)
		}
	})
	s = m.SetupThread()
	if got := s.Load8(violations); got != 0 {
		t.Fatalf("%d mutual-exclusion violations", got)
	}
	if got := s.Load8(ctr); got != uint64(threads*iters) {
		t.Fatalf("counter = %d, want %d (lost updates)", got, threads*iters)
	}
}

func TestMCSMutualExclusion(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		exerciseMutualExclusion(t, func(s *exec.Thread) Lock { return NewMCS(s) }, 4, 100, seed)
	}
}

// exerciseMutualExclusionPSO repeats the torture test on a
// relaxed-consistency machine: the locks' internal fences must keep
// critical sections exclusive when store visibility reorders.
func exerciseMutualExclusionPSO(t *testing.T, mk func(*exec.Thread) Lock, seed int64) {
	t.Helper()
	m := exec.NewMachine(exec.Config{Threads: 4, Seed: seed, Slice: 3, Consistency: exec.PSO})
	s := m.SetupThread()
	l := mk(s)
	ctr := s.MallocVolatile(8, 8)
	m.Run(func(th *exec.Thread) {
		for i := 0; i < 60; i++ {
			l.Acquire(th)
			v := th.Load8(ctr)
			th.Store8(ctr, v+1)
			l.Release(th)
		}
	})
	if got := m.SetupThread().Load8(ctr); got != 4*60 {
		t.Fatalf("lost updates under PSO: %d", got)
	}
}

func TestLocksUnderPSO(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		exerciseMutualExclusionPSO(t, func(s *exec.Thread) Lock { return NewMCS(s) }, seed)
		exerciseMutualExclusionPSO(t, func(s *exec.Thread) Lock { return NewTicket(s) }, seed)
		exerciseMutualExclusionPSO(t, func(s *exec.Thread) Lock { return NewTAS(s) }, seed)
	}
}

func TestTicketMutualExclusion(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		exerciseMutualExclusion(t, func(s *exec.Thread) Lock { return NewTicket(s) }, 4, 100, seed)
	}
}

func TestTASMutualExclusion(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		exerciseMutualExclusion(t, func(s *exec.Thread) Lock { return NewTAS(s) }, 4, 100, seed)
	}
}

func TestMCSUncontended(t *testing.T) {
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	l := NewMCS(s)
	// Repeated acquire/release on one thread must not deadlock and must
	// reuse the same node allocation.
	before := m.VolHeap.LiveCount()
	l.Acquire(s)
	l.Release(s)
	after := m.VolHeap.LiveCount()
	l.Acquire(s)
	l.Release(s)
	if m.VolHeap.LiveCount() != after {
		t.Fatal("MCS should allocate one node per thread, not per acquire")
	}
	if after != before+1 {
		t.Fatalf("expected exactly one node allocation, got %d", after-before)
	}
}

func TestMCSHandoffOrder(t *testing.T) {
	// Under heavy contention MCS is FIFO per arrival; we verify at least
	// that every thread completes its sections (no starvation/deadlock).
	m := exec.NewMachine(exec.Config{Threads: 6, Seed: 11, Slice: 2})
	s := m.SetupThread()
	l := NewMCS(s)
	done := s.MallocVolatile(8*6, 8)
	m.Run(func(th *exec.Thread) {
		for i := 0; i < 50; i++ {
			l.Acquire(th)
			th.Add8(done+memory.Addr(8*th.TID()), 1)
			l.Release(th)
		}
	})
	s = m.SetupThread()
	for i := 0; i < 6; i++ {
		if got := s.Load8(done + memory.Addr(8*i)); got != 50 {
			t.Fatalf("thread %d completed %d/50 sections", i, got)
		}
	}
}

func TestLockTrafficIsTraced(t *testing.T) {
	tr := &trace.Trace{}
	m := exec.NewMachine(exec.Config{Threads: 2, Seed: 3, Sink: tr})
	s := m.SetupThread()
	l := NewMCS(s)
	m.Run(func(th *exec.Thread) {
		for i := 0; i < 5; i++ {
			l.Acquire(th)
			l.Release(th)
		}
	})
	sum := trace.Summarize(tr)
	if sum.ByKind[trace.RMW] == 0 {
		t.Fatal("lock swaps/CASes missing from trace")
	}
	if sum.Persists != 0 {
		t.Fatal("volatile locks must not generate persists")
	}
}

func TestLocksAreVolatile(t *testing.T) {
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	NewMCS(s)
	NewTicket(s)
	NewTAS(s)
	if m.PerHeap.LiveCount() != 0 {
		t.Fatal("locks allocated persistent memory")
	}
}
