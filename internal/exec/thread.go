package exec

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/trace"
)

// Thread is a simulated hardware thread. All methods must be called
// from the goroutine executing the thread's workload (or, for a
// SetupThread, from the caller's goroutine outside Run).
//
// Loads and stores are sequentially consistent: the scheduler serializes
// every operation machine-wide. Store and RMW to the persistent address
// space are persists. PersistBarrier, NewStrand, and PersistSync are the
// paper's persistency annotations; they have no effect on simulated
// execution, only on the downstream persistency-model analysis, exactly
// like the paper's trace annotations.
type Thread struct {
	m      *Machine
	tid    int32
	direct bool // SetupThread: execute without scheduler handoff
	grant  chan int
	budget int
	began  bool
	// buf is the PSO store buffer: stores issued but not yet visible.
	buf []bufStore
}

// bufStore is one buffered (not yet visible) store.
type bufStore struct {
	addr memory.Addr
	size int
	val  uint64
}

func overlaps(a memory.Addr, asz int, b memory.Addr, bsz int) bool {
	return a < b+memory.Addr(bsz) && b < a+memory.Addr(asz)
}

// TID returns the simulated thread id.
func (t *Thread) TID() int { return int(t.tid) }

// step performs the scheduler handshake for one operation, and under
// PSO gives buffered stores a chance to drain.
func (t *Thread) step() {
	if t.direct {
		if t.m.running {
			panic("exec: SetupThread used while Run is in progress")
		}
		return
	}
	if t.budget == 0 {
		if t.began {
			t.m.yield <- yieldMsg{tid: t.tid}
		}
		t.budget = <-t.grant
		t.began = true
	}
	t.budget--
	if len(t.buf) > 0 && t.m.rng.Intn(2) == 0 {
		t.drainOne()
	}
}

// pso reports whether this thread buffers stores.
func (t *Thread) pso() bool {
	return t.m.cfg.Consistency == PSO && !t.direct
}

// drainOne makes one randomly chosen buffered store visible: it writes
// memory and emits the Store event — the store's position in the
// visibility (trace) order.
func (t *Thread) drainOne() {
	i := t.m.rng.Intn(len(t.buf))
	s := t.buf[i]
	t.buf = append(t.buf[:i], t.buf[i+1:]...)
	t.m.storeRaw(s.addr, s.size, s.val)
	t.m.emit(trace.Event{TID: t.tid, Kind: trace.Store, Addr: s.addr, Size: uint8(s.size), Val: s.val})
}

// drainAll flushes the store buffer (fences, atomics, thread exit).
func (t *Thread) drainAll() {
	for len(t.buf) > 0 {
		t.drainOne()
	}
}

// drainThrough flushes buffered stores up to and including the last
// one overlapping [a, a+size) — used before a load so the thread reads
// coherent visible memory.
func (t *Thread) drainThrough(a memory.Addr, size int) {
	last := -1
	for i, s := range t.buf {
		if overlaps(a, size, s.addr, s.size) {
			last = i
		}
	}
	if last < 0 {
		return
	}
	// Drain a prefix containing every overlapping store: drain the
	// first `last+1` entries in random order (indices shift as entries
	// leave, so re-scan).
	for {
		idx := -1
		for i, s := range t.buf {
			if overlaps(a, size, s.addr, s.size) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return
		}
		s := t.buf[idx]
		t.buf = append(t.buf[:idx], t.buf[idx+1:]...)
		t.m.storeRaw(s.addr, s.size, s.val)
		t.m.emit(trace.Event{TID: t.tid, Kind: trace.Store, Addr: s.addr, Size: uint8(s.size), Val: s.val})
	}
}

// Fence drains the thread's store buffer: a consistency (store) fence.
// It is deliberately distinct from PersistBarrier — the paper separates
// consistency and persistency barriers (§4.2): persists may reorder
// across store fences and store visibility may reorder across persist
// barriers. Under SC it is a no-op.
func (t *Thread) Fence() {
	if !t.pso() || len(t.buf) == 0 {
		return
	}
	t.step()
	t.drainAll()
}

// Yield relinquishes the rest of the thread's scheduling quantum
// without emitting an event. Spin loops call it (the analogue of the
// PAUSE instruction) so waiters do not flood the trace with spin loads.
func (t *Thread) Yield() {
	if t.direct {
		return
	}
	t.budget = 0
}

// Load reads size bytes (1..8) at a and returns them zero-extended.
// Under PSO the thread first drains its own overlapping buffered
// stores, so every load reads coherent visible memory.
func (t *Thread) Load(a memory.Addr, size int) uint64 {
	t.step()
	if t.pso() {
		t.drainThrough(a, size)
	}
	v := t.m.loadRaw(a, size)
	t.m.emit(trace.Event{TID: t.tid, Kind: trace.Load, Addr: a, Size: uint8(size), Val: v})
	return v
}

// Store writes the low size bytes (1..8) of v at a. Under PSO the
// store enters the thread's store buffer and becomes visible (and is
// traced) at its later drain point.
func (t *Thread) Store(a memory.Addr, size int, v uint64) {
	t.step()
	if t.pso() {
		t.bufferStore(a, size, v)
		return
	}
	t.m.storeRaw(a, size, v)
	t.m.emit(trace.Event{TID: t.tid, Kind: trace.Store, Addr: a, Size: uint8(size), Val: v})
}

// bufferStore enqueues a PSO store: exact same-range rewrites merge in
// place (write combining, which also keeps per-address drain order);
// partial overlaps conservatively drain first; a full buffer drains to
// make room.
func (t *Thread) bufferStore(a memory.Addr, size int, v uint64) {
	if _, err := memory.CheckRange(a, size); err != nil {
		panic("exec: " + err.Error())
	}
	for i := len(t.buf) - 1; i >= 0; i-- {
		s := &t.buf[i]
		if s.addr == a && s.size == size {
			s.val = v
			return
		}
		if overlaps(a, size, s.addr, s.size) {
			t.drainThrough(a, size)
			break
		}
	}
	max := t.m.cfg.StoreBuffer
	if max <= 0 {
		max = 8
	}
	for len(t.buf) >= max {
		t.drainOne()
	}
	t.buf = append(t.buf, bufStore{addr: a, size: size, val: v})
}

// Load8 reads the 8-byte word at a.
func (t *Thread) Load8(a memory.Addr) uint64 { return t.Load(a, memory.WordSize) }

// Store8 writes the 8-byte word at a.
func (t *Thread) Store8(a memory.Addr, v uint64) { t.Store(a, memory.WordSize, v) }

// CAS8 atomically compares the word at a with old and, if equal, writes
// new. It reports whether the swap happened. A successful CAS is traced
// as an RMW (load and store semantics); a failed CAS as a Load, since it
// writes nothing.
func (t *Thread) CAS8(a memory.Addr, old, new uint64) bool {
	t.step()
	if t.pso() {
		t.drainAll() // atomics fence the store buffer
	}
	cur := t.m.loadRaw(a, memory.WordSize)
	if cur != old {
		t.m.emit(trace.Event{TID: t.tid, Kind: trace.Load, Addr: a, Size: memory.WordSize, Val: cur})
		return false
	}
	t.m.storeRaw(a, memory.WordSize, new)
	t.m.emit(trace.Event{TID: t.tid, Kind: trace.RMW, Addr: a, Size: memory.WordSize, Val: new})
	return true
}

// Swap8 atomically writes v at a and returns the previous word.
func (t *Thread) Swap8(a memory.Addr, v uint64) uint64 {
	t.step()
	if t.pso() {
		t.drainAll()
	}
	old := t.m.loadRaw(a, memory.WordSize)
	t.m.storeRaw(a, memory.WordSize, v)
	t.m.emit(trace.Event{TID: t.tid, Kind: trace.RMW, Addr: a, Size: memory.WordSize, Val: v})
	return old
}

// Add8 atomically adds delta to the word at a and returns the new value.
func (t *Thread) Add8(a memory.Addr, delta uint64) uint64 {
	t.step()
	if t.pso() {
		t.drainAll()
	}
	v := t.m.loadRaw(a, memory.WordSize) + delta
	t.m.storeRaw(a, memory.WordSize, v)
	t.m.emit(trace.Event{TID: t.tid, Kind: trace.RMW, Addr: a, Size: memory.WordSize, Val: v})
	return v
}

// StoreBytes writes b starting at a as a sequence of maximal
// word-aligned stores (how a memcpy of a queue entry appears in the
// trace). Each constituent store is a separate event, hence a separate
// potential persist.
func (t *Thread) StoreBytes(a memory.Addr, b []byte) {
	for len(b) > 0 {
		n := memory.WordSize - int(a%memory.WordSize) // to next word boundary
		if n > len(b) {
			n = len(b)
		}
		// Round down to a power-of-two access size so accesses look like
		// machine stores (8,4,2,1).
		for n&(n-1) != 0 {
			n &^= n & (-n) // clear lowest set bit
		}
		var v uint64
		for i := n - 1; i >= 0; i-- {
			v = v<<8 | uint64(b[i])
		}
		t.Store(a, n, v)
		a += memory.Addr(n)
		b = b[n:]
	}
}

// LoadBytes reads len(b) bytes starting at a into b using maximal
// word-aligned loads.
func (t *Thread) LoadBytes(a memory.Addr, b []byte) {
	for len(b) > 0 {
		n := memory.WordSize - int(a%memory.WordSize)
		if n > len(b) {
			n = len(b)
		}
		for n&(n-1) != 0 {
			n &^= n & (-n)
		}
		v := t.Load(a, n)
		for i := 0; i < n; i++ {
			b[i] = byte(v >> (8 * i))
		}
		a += memory.Addr(n)
		b = b[n:]
	}
}

// PersistBarrier emits a persist barrier (epoch and strand persistency;
// a no-op under strict persistency, which needs no annotations).
func (t *Thread) PersistBarrier() {
	t.step()
	t.m.emit(trace.Event{TID: t.tid, Kind: trace.PersistBarrier})
}

// NewStrand begins a new persist strand (strand persistency only).
func (t *Thread) NewStrand() {
	t.step()
	t.m.emit(trace.Event{TID: t.tid, Kind: trace.NewStrand})
}

// PersistSync drains outstanding persists under buffered strict
// persistency (§4.1) before execution proceeds.
func (t *Thread) PersistSync() {
	t.step()
	t.m.emit(trace.Event{TID: t.tid, Kind: trace.PersistSync})
}

// BeginWork brackets the start of logical operation id (a queue insert).
func (t *Thread) BeginWork(id uint64) {
	t.step()
	t.m.emit(trace.Event{TID: t.tid, Kind: trace.BeginWork, Val: id})
}

// EndWork brackets the end of logical operation id.
func (t *Thread) EndWork(id uint64) {
	t.step()
	t.m.emit(trace.Event{TID: t.tid, Kind: trace.EndWork, Val: id})
}

// MallocPersistent allocates from the persistent heap (traced, like the
// paper's instrumented persistent malloc). align 0 means the 64-byte
// default.
func (t *Thread) MallocPersistent(size int, align uint64) memory.Addr {
	return t.malloc(t.m.PerHeap, size, align)
}

// MallocVolatile allocates from the volatile heap (traced).
func (t *Thread) MallocVolatile(size int, align uint64) memory.Addr {
	return t.malloc(t.m.VolHeap, size, align)
}

func (t *Thread) malloc(h *memory.Heap, size int, align uint64) memory.Addr {
	t.step()
	a, err := h.Alloc(size, align)
	if err != nil {
		panic("exec: " + err.Error())
	}
	t.m.emit(trace.Event{TID: t.tid, Kind: trace.Malloc, Addr: a, Val: h.SizeOf(a)})
	return a
}

// FreeHeap releases an allocation from whichever heap owns a.
func (t *Thread) FreeHeap(a memory.Addr) {
	t.step()
	var h *memory.Heap
	switch memory.SpaceOf(a) {
	case memory.Persistent:
		h = t.m.PerHeap
	case memory.Volatile:
		h = t.m.VolHeap
	default:
		panic(fmt.Sprintf("exec: Free of unmapped address %#x", uint64(a)))
	}
	if err := h.Free(a); err != nil {
		panic("exec: " + err.Error())
	}
	t.m.emit(trace.Event{TID: t.tid, Kind: trace.Free, Addr: a})
}
