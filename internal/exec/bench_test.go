package exec

import (
	"testing"

	"repro/internal/trace"
)

// BenchmarkDirectOps measures raw simulated-memory operation throughput
// on a setup thread (no scheduler handoff, no sink).
func BenchmarkDirectOps(b *testing.B) {
	m := NewMachine(Config{})
	s := m.SetupThread()
	a := s.MallocPersistent(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Store8(a, uint64(i))
	}
}

// BenchmarkScheduledOps measures operation throughput including the
// cooperative scheduler handoff, across 4 threads.
func BenchmarkScheduledOps(b *testing.B) {
	m := NewMachine(Config{Threads: 4, Seed: 1})
	s := m.SetupThread()
	a := s.MallocVolatile(64, 64)
	per := b.N/4 + 1
	b.ResetTimer()
	m.Run(func(t *Thread) {
		for i := 0; i < per; i++ {
			t.Store8(a+8, uint64(i))
		}
	})
}

// BenchmarkTracedOps includes trace capture.
func BenchmarkTracedOps(b *testing.B) {
	tr := &trace.Trace{}
	m := NewMachine(Config{Sink: tr})
	s := m.SetupThread()
	a := s.MallocPersistent(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Store8(a, uint64(i))
	}
}

// BenchmarkStoreBytes measures entry-copy throughput (the queue's inner
// loop).
func BenchmarkStoreBytes(b *testing.B) {
	m := NewMachine(Config{})
	s := m.SetupThread()
	a := s.MallocPersistent(256, 64)
	payload := make([]byte, 100)
	b.SetBytes(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.StoreBytes(a, payload)
	}
}
