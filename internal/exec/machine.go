// Package exec is the reproduction's stand-in for the paper's PIN-based
// tracing framework (§7).
//
// The paper traces native pthread benchmarks with PIN, using a bank of
// locks to guarantee analysis atomicity so that "the traced memory order
// ... accurately reflect[s] execution's memory order"; the resulting
// trace observes sequential consistency. We achieve the same guarantee
// by construction: simulated threads are goroutines scheduled
// cooperatively, one memory operation at a time, by a seeded scheduler.
// Every operation appends one event to the trace sink, so the trace
// *is* the SC memory order. The seed varies thread interleavings the
// way rerunning a native benchmark would.
//
// Simulated programs perform all shared-state communication through the
// Machine's simulated memory (Thread's Load/Store/CAS/... operations).
// Plain Go variables captured by a workload closure must be thread-local.
package exec

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/intervals"
	"repro/internal/memory"
	"repro/internal/trace"
)

// Consistency selects the simulated machine's memory consistency
// model. The paper builds its persistency models on SC (§5) but
// discusses strict persistency over relaxed consistency in §4.1; the
// PSO mode makes that discussion executable.
type Consistency uint8

const (
	// SC is sequential consistency: every operation becomes visible in
	// the order executed (the default, and the paper's base model).
	SC Consistency = iota
	// PSO is a partial-store-order-style relaxed model: stores enter a
	// per-thread store buffer and drain to visible memory in a random
	// (seeded) order; loads forward from the issuing thread's buffer;
	// RMWs and Fence drain the buffer. Store visibility can therefore
	// reorder within a thread — exactly the hazard of Figure 1 — while
	// loads still execute in program order and store atomicity holds.
	PSO
)

// String names the consistency model.
func (c Consistency) String() string {
	switch c {
	case SC:
		return "sc"
	case PSO:
		return "pso"
	default:
		return fmt.Sprintf("consistency(%d)", uint8(c))
	}
}

// Config parameterizes a simulated machine.
type Config struct {
	// Threads is the number of simulated threads Run will spawn.
	Threads int
	// Seed drives the scheduler's interleaving choices. Equal seeds and
	// workloads produce byte-identical traces.
	Seed int64
	// Slice is the maximum number of operations a thread executes per
	// scheduling quantum. Zero means DefaultSlice. A slice of 1
	// interleaves at single-instruction granularity.
	Slice int
	// Sink receives the event stream; nil means trace.Discard.
	Sink trace.Sink
	// MaxOps aborts (panics) runaway workloads; zero means no limit.
	MaxOps uint64
	// Consistency selects SC (default) or PSO store visibility.
	Consistency Consistency
	// StoreBuffer caps the PSO per-thread store buffer; zero means 8.
	StoreBuffer int
}

// DefaultSlice is the default scheduling quantum in operations. Small
// enough to exercise fine interleavings, large enough to amortize
// scheduler handoffs.
const DefaultSlice = 8

// Machine is a simulated shared-memory multiprocessor with volatile and
// persistent address spaces. Create one with NewMachine, set up shared
// state through SetupThread, then execute a workload with Run. A
// Machine is single-use: after Run returns, read results out of the
// simulated memory with SetupThread and discard the Machine.
type Machine struct {
	cfg  Config
	sink trace.Sink
	rng  *rand.Rand

	// volWords/perWords store memory contents for the two address
	// spaces, in demand-allocated pages of word-aligned values. Paged
	// slices replace a per-word map: workloads touch addresses densely
	// from each space's base, so pages stay hot while absent pages read
	// as zero.
	volWords wordStore
	perWords wordStore

	// PerHeap and VolHeap allocate from the persistent and volatile
	// spaces. They are exported for direct inspection; allocation during
	// simulation should go through Thread.MallocPersistent/Volatile so
	// the trace records it.
	PerHeap *memory.Heap
	VolHeap *memory.Heap

	ops     uint64
	running bool
	yield   chan yieldMsg
	threads []*Thread
}

type yieldMsg struct {
	tid    int32
	exited bool
}

// Paged simulated memory: pages of pageWords 8-byte words, allocated on
// first store.
const (
	pageShift = 12
	// pageWords is the number of words per page (32 KiB of data).
	pageWords = 1 << pageShift
	pageMask  = pageWords - 1
)

// wordStore holds one address space's contents: an interval map from
// page index to demand-allocated page. Only touched pages have entries,
// so cost is proportional to resident data, not to the highest address
// written — a store at base+1TiB costs one entry and one page, where
// the former dense page-pointer slice would have materialized (and
// grown one nil at a time) a quarter-billion slots. The map's locality
// hint makes the repeated-page case (the hot path) a single compare.
type wordStore struct {
	base  memory.Addr
	pages *intervals.Map[uint64, *[pageWords]uint64]
}

func newWordStore(base memory.Addr) wordStore {
	// eq=nil: page entries are identity-valued and never coalesce, so
	// every entry spans exactly one page index.
	return wordStore{base: base, pages: intervals.NewMap[uint64, *[pageWords]uint64](nil)}
}

// load reads the word at the 8-byte-aligned address w; absent pages
// read as zero, matching the map semantics this replaces — loadRaw's
// cross-word slow path may probe one word past the end of an access's
// space.
func (ws *wordStore) load(w memory.Addr) uint64 {
	off := uint64(w-ws.base) / memory.WordSize
	page, ok := ws.pages.Get(off >> pageShift)
	if !ok {
		return 0
	}
	return page[off&pageMask]
}

// ptr returns the storage slot for the word at w, allocating its page
// on demand.
func (ws *wordStore) ptr(w memory.Addr) *uint64 {
	off := uint64(w-ws.base) / memory.WordSize
	p := off >> pageShift
	page, ok := ws.pages.Get(p)
	if !ok {
		page = new([pageWords]uint64)
		ws.pages.Set(p, p+1, page)
	}
	return &page[off&pageMask]
}

// resident reports the store's page count and extent count (maximal
// runs of contiguous resident pages).
func (ws *wordStore) resident() (pages, extents int) {
	next := uint64(0)
	ws.pages.EachAll(func(r intervals.Range[uint64], _ *[pageWords]uint64) bool {
		pages++
		if r.Lo != next || extents == 0 {
			extents++
		}
		next = r.Hi
		return true
	})
	return pages, extents
}

// wordsOf selects the store owning the word at w. Word addresses from
// the volatile space stay below PersistentBase even after the +8 probe
// of a cross-word access (the spaces are far apart).
func (m *Machine) wordsOf(w memory.Addr) *wordStore {
	if w >= memory.PersistentBase {
		return &m.perWords
	}
	return &m.volWords
}

// NewMachine creates a machine per cfg.
func NewMachine(cfg Config) *Machine {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Slice <= 0 {
		cfg.Slice = DefaultSlice
	}
	sink := cfg.Sink
	if sink == nil {
		sink = trace.Discard
	}
	return &Machine{
		cfg:      cfg,
		sink:     sink,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		volWords: newWordStore(memory.VolatileBase),
		perWords: newWordStore(memory.PersistentBase),
		PerHeap:  memory.NewHeap(memory.Persistent),
		VolHeap:  memory.NewHeap(memory.Volatile),
		yield:    make(chan yieldMsg, cfg.Threads+1),
	}
}

// Ops returns the number of trace operations executed so far.
func (m *Machine) Ops() uint64 { return m.ops }

// SetupThread returns a Thread bound to TID 0 that executes directly on
// the caller's goroutine. Use it before Run to allocate and initialize
// shared structures (those events belong in the trace: initialization
// persists are real persists) and after Run to read results back. It
// must not be used while Run is in progress.
func (m *Machine) SetupThread() *Thread {
	if m.running {
		panic("exec: SetupThread while Run is in progress")
	}
	return &Thread{m: m, tid: 0, direct: true}
}

// Workload is the body executed by each simulated thread.
type Workload func(t *Thread)

// Run spawns cfg.Threads simulated threads executing body and returns
// when all have finished. The caller's goroutine acts as the scheduler.
func (m *Machine) Run(body Workload) {
	if m.running {
		panic("exec: concurrent Run")
	}
	m.running = true
	defer func() { m.running = false }()

	m.threads = m.threads[:0]
	for i := 0; i < m.cfg.Threads; i++ {
		t := &Thread{
			m:     m,
			tid:   int32(i),
			grant: make(chan int, 1),
		}
		m.threads = append(m.threads, t)
	}
	for _, t := range m.threads {
		t := t
		go func() {
			defer func() {
				// The exiting thread still owns the machine (its exit
				// yield has not been sent), so its buffered stores can
				// drain safely.
				t.drainAll()
				m.yield <- yieldMsg{tid: t.tid, exited: true}
			}()
			body(t)
		}()
	}
	m.schedule()
}

// schedule runs the cooperative scheduler until every thread exits.
// Exactly one thread executes operations at any time, so the emitted
// event order is a sequentially consistent total order.
func (m *Machine) schedule() {
	live := len(m.threads)
	runnable := make([]*Thread, len(m.threads))
	copy(runnable, m.threads)
	active := int32(-1)
	for live > 0 {
		if active == -1 && len(runnable) > 0 {
			var t *Thread
			if len(runnable) == 1 && m.cfg.Consistency == SC {
				// Sole runnable thread under SC: every remaining
				// scheduling draw is Intn(1) (runnable never grows), so
				// the interleaving is already decided; grant one huge
				// slice instead of a handoff per quantum. SC consumes
				// randomness only for these grants (the store-buffer
				// draws fire only under PSO, where this path is
				// disabled), so the trace is byte-identical.
				t = runnable[0]
				active = t.tid
				t.grant <- 1 << 30
			} else {
				t = runnable[m.rng.Intn(len(runnable))]
				active = t.tid
				t.grant <- m.cfg.Slice
			}
		}
		msg := <-m.yield
		if msg.exited {
			live--
			for i, t := range runnable {
				if t.tid == msg.tid {
					runnable = append(runnable[:i], runnable[i+1:]...)
					break
				}
			}
		}
		if msg.tid == active {
			active = -1
		}
	}
}

// emit validates, counts, and forwards one event.
func (m *Machine) emit(e trace.Event) {
	if err := e.Validate(); err != nil {
		panic(fmt.Sprintf("exec: workload produced invalid event: %v", err))
	}
	m.ops++
	if m.cfg.MaxOps != 0 && m.ops > m.cfg.MaxOps {
		panic(fmt.Sprintf("exec: exceeded MaxOps=%d; runaway workload?", m.cfg.MaxOps))
	}
	m.sink.Emit(e)
}

// loadRaw reads size bytes at a from simulated memory (little-endian).
// Accesses may cross word boundaries; they are assembled bytewise.
func (m *Machine) loadRaw(a memory.Addr, size int) uint64 {
	if _, err := memory.CheckRange(a, size); err != nil {
		panic("exec: " + err.Error())
	}
	w := memory.AlignDown(a, memory.WordSize)
	ws := m.wordsOf(w)
	if a == w && size == memory.WordSize {
		return ws.load(w)
	}
	var buf [2 * memory.WordSize]byte
	binary.LittleEndian.PutUint64(buf[0:], ws.load(w))
	binary.LittleEndian.PutUint64(buf[8:], ws.load(w+memory.WordSize))
	off := int(a - w)
	var out [memory.WordSize]byte
	copy(out[:], buf[off:off+size])
	return binary.LittleEndian.Uint64(out[:])
}

// storeRaw writes the low size bytes of v at a (little-endian).
func (m *Machine) storeRaw(a memory.Addr, size int, v uint64) {
	if _, err := memory.CheckRange(a, size); err != nil {
		panic("exec: " + err.Error())
	}
	w := memory.AlignDown(a, memory.WordSize)
	ws := m.wordsOf(w)
	if a == w && size == memory.WordSize {
		*ws.ptr(w) = v
		return
	}
	var buf [2 * memory.WordSize]byte
	binary.LittleEndian.PutUint64(buf[0:], ws.load(w))
	binary.LittleEndian.PutUint64(buf[8:], ws.load(w+memory.WordSize))
	var src [memory.WordSize]byte
	binary.LittleEndian.PutUint64(src[:], v)
	off := int(a - w)
	copy(buf[off:off+size], src[:size])
	*ws.ptr(w) = binary.LittleEndian.Uint64(buf[0:])
	if off+size > memory.WordSize {
		// CheckRange guarantees the access stays in one space, so the
		// second word is a valid address of the same store.
		*ws.ptr(w+memory.WordSize) = binary.LittleEndian.Uint64(buf[8:])
	}
}

// PersistentImage captures current persistent-space contents as an
// Image (the "no failure" final state). The observer compares recovered
// states against prefixes of this.
func (m *Machine) PersistentImage() *memory.Image {
	im := memory.NewImage()
	m.perWords.pages.EachAll(func(r intervals.Range[uint64], page *[pageWords]uint64) bool {
		base := m.perWords.base + memory.Addr(r.Lo*pageWords*memory.WordSize)
		for si, w := range page {
			if w != 0 {
				im.WriteWord(base+memory.Addr(si*memory.WordSize), w)
			}
		}
		return true
	})
	return im
}

// MemStats describes the machine's resident simulated memory: what the
// sparse page index actually materialized, per address space. Bytes
// count page payloads (resident pages × page size); extents are maximal
// runs of contiguous pages, the fragmentation view the CLIs report.
type MemStats struct {
	VolPages, PerPages     int
	VolBytes, PerBytes     uint64
	VolExtents, PerExtents int
}

// MemStats snapshots resident-memory statistics.
func (m *Machine) MemStats() MemStats {
	const pageBytes = pageWords * memory.WordSize
	vp, ve := m.volWords.resident()
	pp, pe := m.perWords.resident()
	return MemStats{
		VolPages: vp, PerPages: pp,
		VolBytes: uint64(vp) * pageBytes, PerBytes: uint64(pp) * pageBytes,
		VolExtents: ve, PerExtents: pe,
	}
}
