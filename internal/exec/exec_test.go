package exec

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/memory"
	"repro/internal/trace"
)

func TestSetupThreadBasics(t *testing.T) {
	m := NewMachine(Config{})
	s := m.SetupThread()
	a := s.MallocPersistent(64, 64)
	s.Store8(a, 0x1234)
	if got := s.Load8(a); got != 0x1234 {
		t.Fatalf("Load8 = %#x", got)
	}
	if m.Ops() != 3 { // malloc + store + load
		t.Fatalf("Ops = %d", m.Ops())
	}
}

func TestSubWordAccess(t *testing.T) {
	m := NewMachine(Config{})
	s := m.SetupThread()
	a := s.MallocVolatile(64, 64)
	s.Store8(a, 0x1122334455667788)
	if got := s.Load(a, 4); got != 0x55667788 {
		t.Fatalf("4-byte load = %#x", got)
	}
	if got := s.Load(a+4, 4); got != 0x11223344 {
		t.Fatalf("high 4-byte load = %#x", got)
	}
	s.Store(a+2, 2, 0xbeef)
	if got := s.Load8(a); got != 0x11223344beef7788 {
		t.Fatalf("after 2-byte store = %#x", got)
	}
	s.Store(a+7, 1, 0xcc)
	if got := s.Load(a+7, 1); got != 0xcc {
		t.Fatalf("1-byte = %#x", got)
	}
}

func TestWordBoundaryCrossing(t *testing.T) {
	m := NewMachine(Config{})
	s := m.SetupThread()
	a := s.MallocVolatile(64, 64)
	// A 4-byte store at offset 6 crosses into the second word.
	s.Store(a+6, 4, 0xaabbccdd)
	if got := s.Load(a+6, 4); got != 0xaabbccdd {
		t.Fatalf("crossing load = %#x", got)
	}
	if got := s.Load8(a + 8); got&0xffff != 0xaabb {
		t.Fatalf("second word low bytes = %#x", got)
	}
}

func TestStoreLoadBytes(t *testing.T) {
	m := NewMachine(Config{Sink: &trace.Trace{}})
	tr := &trace.Trace{}
	m.sink = tr
	s := m.SetupThread()
	a := s.MallocPersistent(256, 64)
	msg := []byte("the quick brown fox jumps over the lazy dog, twice over!")
	s.StoreBytes(a+3, msg) // unaligned start
	out := make([]byte, len(msg))
	s.LoadBytes(a+3, out)
	if !bytes.Equal(msg, out) {
		t.Fatalf("round trip: %q", out)
	}
	// Every emitted access must be a power-of-two size ≤ 8 and must not
	// cross a word boundary misaligned for its size... (sizes 1,2,4,8).
	for e := range tr.All() {
		if !e.Kind.IsAccess() {
			continue
		}
		if e.Size != 1 && e.Size != 2 && e.Size != 4 && e.Size != 8 {
			t.Fatalf("non-power-of-two access size %d", e.Size)
		}
	}
}

func TestCASSemantics(t *testing.T) {
	tr := &trace.Trace{}
	m := NewMachine(Config{Sink: tr})
	s := m.SetupThread()
	a := s.MallocVolatile(8, 8)
	if !s.CAS8(a, 0, 5) {
		t.Fatal("CAS from zero should succeed")
	}
	if s.CAS8(a, 0, 9) {
		t.Fatal("CAS with stale expectation should fail")
	}
	if got := s.Load8(a); got != 5 {
		t.Fatalf("value = %d", got)
	}
	kinds := []trace.Kind{}
	for e := range tr.All() {
		if e.Kind.IsAccess() {
			kinds = append(kinds, e.Kind)
		}
	}
	want := []trace.Kind{trace.RMW, trace.Load, trace.Load}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("access kinds = %v, want %v", kinds, want)
	}
}

func TestSwapAndAdd(t *testing.T) {
	m := NewMachine(Config{})
	s := m.SetupThread()
	a := s.MallocVolatile(8, 8)
	if old := s.Swap8(a, 7); old != 0 {
		t.Fatalf("Swap8 old = %d", old)
	}
	if old := s.Swap8(a, 9); old != 7 {
		t.Fatalf("Swap8 old = %d", old)
	}
	if v := s.Add8(a, 3); v != 12 {
		t.Fatalf("Add8 = %d", v)
	}
}

func TestRunConcurrentCounter(t *testing.T) {
	const threads, perThread = 4, 200
	m := NewMachine(Config{Threads: threads, Seed: 1})
	s := m.SetupThread()
	ctr := s.MallocVolatile(8, 8)
	m.Run(func(th *Thread) {
		for i := 0; i < perThread; i++ {
			for { // CAS loop increment
				old := th.Load8(ctr)
				if th.CAS8(ctr, old, old+1) {
					break
				}
			}
		}
	})
	if got := m.SetupThread().Load8(ctr); got != threads*perThread {
		t.Fatalf("counter = %d, want %d", got, threads*perThread)
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func(seed int64) *trace.Trace {
		tr := &trace.Trace{}
		m := NewMachine(Config{Threads: 3, Seed: seed, Sink: tr})
		s := m.SetupThread()
		shared := s.MallocPersistent(64, 64)
		m.Run(func(th *Thread) {
			for i := 0; i < 50; i++ {
				th.Add8(shared, uint64(th.TID()+1))
				th.PersistBarrier()
			}
		})
		return tr
	}
	a, b := run(42), run(42)
	if !a.Equal(b) {
		t.Fatal("same seed must reproduce identical traces")
	}
	c := run(43)
	if a.Equal(c) {
		t.Fatal("different seeds should interleave differently")
	}
}

func TestRunInterleaves(t *testing.T) {
	tr := &trace.Trace{}
	m := NewMachine(Config{Threads: 2, Seed: 7, Slice: 4, Sink: tr})
	s := m.SetupThread()
	a := s.MallocVolatile(16, 8)
	m.Run(func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.Store8(a+memory.Addr(8*th.TID()), uint64(i))
		}
	})
	// The trace must contain events from both threads, interleaved (not
	// one thread fully before the other).
	firstTID := tr.At(1).TID // skip the setup malloc at index 0
	switched := false
	for i := 1; i < tr.Len(); i++ {
		if tr.At(i).TID != firstTID {
			switched = true
			break
		}
	}
	if !switched {
		t.Fatal("threads did not interleave")
	}
	if got := trace.Summarize(tr).Threads; got != 2 {
		t.Fatalf("threads in trace = %d", got)
	}
}

func TestSliceBoundsInterleaving(t *testing.T) {
	// With slice 1 every operation is a scheduling point; the run must
	// still produce correct results.
	m := NewMachine(Config{Threads: 3, Seed: 9, Slice: 1})
	s := m.SetupThread()
	ctr := s.MallocVolatile(8, 8)
	m.Run(func(th *Thread) {
		for i := 0; i < 30; i++ {
			th.Add8(ctr, 1)
		}
	})
	if got := m.SetupThread().Load8(ctr); got != 90 {
		t.Fatalf("counter = %d", got)
	}
}

func TestAnnotationsTraced(t *testing.T) {
	tr := &trace.Trace{}
	m := NewMachine(Config{Sink: tr})
	s := m.SetupThread()
	s.PersistBarrier()
	s.NewStrand()
	s.PersistSync()
	s.BeginWork(5)
	s.EndWork(5)
	sum := trace.Summarize(tr)
	if sum.Barriers != 1 || sum.Strands != 1 || sum.WorkItems != 1 {
		t.Fatalf("annotations missing: %+v", sum)
	}
	if sum.ByKind[trace.PersistSync] != 1 {
		t.Fatal("persist sync missing")
	}
}

func TestFreeHeap(t *testing.T) {
	tr := &trace.Trace{}
	m := NewMachine(Config{Sink: tr})
	s := m.SetupThread()
	p := s.MallocPersistent(64, 64)
	v := s.MallocVolatile(64, 64)
	s.FreeHeap(p)
	s.FreeHeap(v)
	if m.PerHeap.LiveCount() != 0 || m.VolHeap.LiveCount() != 0 {
		t.Fatal("allocations not freed")
	}
	if got := trace.Summarize(tr).ByKind[trace.Free]; got != 2 {
		t.Fatalf("free events = %d", got)
	}
}

func TestPersistentImage(t *testing.T) {
	m := NewMachine(Config{})
	s := m.SetupThread()
	p := s.MallocPersistent(64, 64)
	v := s.MallocVolatile(64, 64)
	s.Store8(p, 123)
	s.Store8(v, 456)
	im := m.PersistentImage()
	if im.ReadWord(p) != 123 {
		t.Fatal("persistent word missing from image")
	}
	if len(im.WrittenWords()) != 1 {
		t.Fatal("volatile data leaked into persistent image")
	}
}

func TestMaxOpsGuard(t *testing.T) {
	m := NewMachine(Config{MaxOps: 10})
	s := m.SetupThread()
	a := s.MallocVolatile(8, 8)
	defer func() {
		if recover() == nil {
			t.Error("MaxOps should panic")
		}
	}()
	for i := 0; i < 100; i++ {
		s.Store8(a, 1)
	}
}

func TestUnmappedAccessPanics(t *testing.T) {
	m := NewMachine(Config{})
	s := m.SetupThread()
	defer func() {
		if recover() == nil {
			t.Error("unmapped access should panic")
		}
	}()
	s.Load8(0x10)
}
