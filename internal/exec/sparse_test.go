package exec

import (
	"testing"

	"repro/internal/memory"
)

// TestSparseFarAddresses pins the fix for the dense page index: stores
// scattered across the full 1 TiB persistent space must cost memory
// proportional to the pages actually touched. Under the old
// pages []*[pageWords]uint64 representation, the first store near the
// top of the space materialized a quarter-billion nil page slots (and
// appended them one at a time); with the interval-indexed store each
// address below costs exactly one 32 KiB page and one index entry.
func TestSparseFarAddresses(t *testing.T) {
	m := NewMachine(Config{Threads: 1})
	s := m.SetupThread()
	addrs := []memory.Addr{
		memory.PersistentBase,
		memory.PersistentBase + 1<<21,
		memory.PersistentBase + 1<<32, // 4 GiB in: beyond the old 1 GiB space
		memory.PersistentBase + 513<<30,
		memory.PersistentBase + memory.Addr(memory.PersistentSize) - memory.WordSize,
	}
	for i, a := range addrs {
		s.Store8(a, uint64(i)+1)
	}
	for i, a := range addrs {
		if got := s.Load8(a); got != uint64(i)+1 {
			t.Fatalf("addr %#x: got %d, want %d", uint64(a), got, i+1)
		}
	}
	// A word the sparse store never touched reads as zero, even between
	// resident pages.
	if got := s.Load8(memory.PersistentBase + 1<<35); got != 0 {
		t.Fatalf("untouched word reads %d, want 0", got)
	}

	ms := m.MemStats()
	if ms.PerPages != len(addrs) {
		t.Fatalf("resident pages %d, want %d (one per touched address)", ms.PerPages, len(addrs))
	}
	if ms.PerExtents != len(addrs) {
		t.Fatalf("resident extents %d, want %d (all pages disjoint)", ms.PerExtents, len(addrs))
	}
	const pageBytes = pageWords * memory.WordSize
	if ms.PerBytes != uint64(len(addrs))*pageBytes {
		t.Fatalf("resident bytes %d, want %d", ms.PerBytes, uint64(len(addrs))*pageBytes)
	}

	// The final image contains exactly the touched words.
	im := m.PersistentImage()
	for i, a := range addrs {
		if got := im.ReadWord(a); got != uint64(i)+1 {
			t.Fatalf("image at %#x: got %d, want %d", uint64(a), got, i+1)
		}
	}

	// Touching a fresh far page allocates the page plus index bookkeeping
	// — a handful of allocations, not millions of slots.
	next := memory.PersistentBase + 800<<30
	n := testing.AllocsPerRun(1, func() {
		s.Store8(next, 7)
		next += pageBytes
	})
	if n > 8 {
		t.Fatalf("far-page store cost %v allocs, want a handful", n)
	}
}

// TestMemStatsExtents: adjacent pages merge into one extent.
func TestMemStatsExtents(t *testing.T) {
	m := NewMachine(Config{Threads: 1})
	s := m.SetupThread()
	const pageBytes = pageWords * memory.WordSize
	// Three adjacent pages, then a gap, then one more.
	for i := 0; i < 3; i++ {
		s.Store8(memory.PersistentBase+memory.Addr(i*pageBytes), 1)
	}
	s.Store8(memory.PersistentBase+100*pageBytes, 1)
	ms := m.MemStats()
	if ms.PerPages != 4 || ms.PerExtents != 2 {
		t.Fatalf("got %d pages in %d extents, want 4 in 2", ms.PerPages, ms.PerExtents)
	}
	if ms.VolPages != 0 || ms.VolExtents != 0 {
		t.Fatalf("volatile space unexpectedly resident: %+v", ms)
	}
}
