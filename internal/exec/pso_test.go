package exec

import (
	"reflect"
	"testing"

	"repro/internal/memory"
	"repro/internal/trace"
)

func TestPSOSetupThreadUnaffected(t *testing.T) {
	m := NewMachine(Config{Consistency: PSO})
	s := m.SetupThread()
	a := s.MallocVolatile(64, 64)
	s.Store8(a, 7)
	if got := s.Load8(a); got != 7 {
		t.Fatalf("setup thread must be SC: %d", got)
	}
}

func TestPSOSelfCoherence(t *testing.T) {
	// A thread always reads its own latest store (drain-on-overlap).
	m := NewMachine(Config{Threads: 1, Seed: 1, Consistency: PSO})
	s := m.SetupThread()
	a := s.MallocVolatile(64, 64)
	m.Run(func(th *Thread) {
		for i := uint64(0); i < 50; i++ {
			th.Store8(a, i)
			th.Store8(a+8, i*2)
			if th.Load8(a) != i || th.Load8(a+8) != i*2 {
				panic("self-coherence violated")
			}
		}
	})
}

func TestPSOFinalMemoryCorrect(t *testing.T) {
	// All buffered stores drain by the end of Run; final memory matches
	// program semantics regardless of drain order.
	m := NewMachine(Config{Threads: 2, Seed: 3, Consistency: PSO})
	s := m.SetupThread()
	a := s.MallocPersistent(256, 64)
	m.Run(func(th *Thread) {
		base := a + memory.Addr(th.TID()*128)
		for i := uint64(0); i < 16; i++ {
			th.Store8(base+memory.Addr(8*(i%8)), i+100)
		}
	})
	s = m.SetupThread()
	for tid := 0; tid < 2; tid++ {
		for w := uint64(0); w < 8; w++ {
			want := w + 8 + 100 // last write wins: i = w+8
			if got := s.Load8(a + memory.Addr(tid*128+int(w)*8)); got != want {
				t.Fatalf("t%d word %d = %d, want %d", tid, w, got, want)
			}
		}
	}
}

func TestPSOReordersStoreVisibility(t *testing.T) {
	// With some seed, two stores issued in program order must appear in
	// the trace (visibility order) reversed.
	reordered := false
	for seed := int64(0); seed < 20 && !reordered; seed++ {
		tr := &trace.Trace{}
		m := NewMachine(Config{Threads: 1, Seed: seed, Consistency: PSO, Sink: tr})
		s := m.SetupThread()
		a := s.MallocPersistent(64, 64)
		m.Run(func(th *Thread) {
			th.Store8(a, 1)
			th.Store8(a+8, 2)
		})
		var order []uint64
		for e := range tr.All() {
			if e.Kind == trace.Store && memory.IsPersistent(e.Addr) {
				order = append(order, e.Val)
			}
		}
		if len(order) != 2 {
			t.Fatalf("stores in trace: %v", order)
		}
		reordered = order[0] == 2
	}
	if !reordered {
		t.Fatal("PSO never reordered store visibility across 20 seeds")
	}
}

func TestPSOFenceOrders(t *testing.T) {
	// With a fence between them, the stores always appear in order.
	for seed := int64(0); seed < 20; seed++ {
		tr := &trace.Trace{}
		m := NewMachine(Config{Threads: 1, Seed: seed, Consistency: PSO, Sink: tr})
		s := m.SetupThread()
		a := s.MallocPersistent(64, 64)
		m.Run(func(th *Thread) {
			th.Store8(a, 1)
			th.Fence()
			th.Store8(a+8, 2)
		})
		var order []uint64
		for e := range tr.All() {
			if e.Kind == trace.Store && memory.IsPersistent(e.Addr) {
				order = append(order, e.Val)
			}
		}
		if !reflect.DeepEqual(order, []uint64{1, 2}) {
			t.Fatalf("seed %d: fenced stores out of order: %v", seed, order)
		}
	}
}

func TestPSOAtomicsDrain(t *testing.T) {
	// An RMW acts as a fence: earlier stores are visible before it.
	tr := &trace.Trace{}
	m := NewMachine(Config{Threads: 1, Seed: 2, Consistency: PSO, Sink: tr})
	s := m.SetupThread()
	a := s.MallocVolatile(64, 64)
	m.Run(func(th *Thread) {
		th.Store8(a, 1)
		th.Store8(a+8, 2)
		th.Add8(a+16, 3)
	})
	// The RMW must appear after both stores in the trace.
	rmwSeen := false
	stores := 0
	for e := range tr.All() {
		switch e.Kind {
		case trace.RMW:
			rmwSeen = true
			if stores != 2 {
				t.Fatalf("RMW drained only %d stores first", stores)
			}
		case trace.Store:
			if rmwSeen {
				t.Fatal("store drained after the RMW")
			}
			stores++
		}
	}
}

func TestPSOWriteMerging(t *testing.T) {
	// Repeated stores to the same word merge in the buffer: fewer store
	// events than issues.
	tr := &trace.Trace{}
	m := NewMachine(Config{Threads: 1, Seed: 4, Consistency: PSO, Sink: tr, Slice: 100})
	s := m.SetupThread()
	a := s.MallocVolatile(64, 64)
	m.Run(func(th *Thread) {
		for i := uint64(0); i < 20; i++ {
			th.Store8(a, i)
		}
	})
	n := 0
	var last uint64
	for e := range tr.All() {
		if e.Kind == trace.Store && e.Addr == a {
			n++
			last = e.Val
		}
	}
	if n >= 20 {
		t.Fatalf("no write merging: %d store events", n)
	}
	if last != 19 {
		t.Fatalf("final drained value %d", last)
	}
}

func TestPSODeterminism(t *testing.T) {
	run := func() *trace.Trace {
		tr := &trace.Trace{}
		m := NewMachine(Config{Threads: 3, Seed: 11, Consistency: PSO, Sink: tr})
		s := m.SetupThread()
		a := s.MallocPersistent(256, 64)
		m.Run(func(th *Thread) {
			for i := uint64(0); i < 20; i++ {
				th.Store8(a+memory.Addr(th.TID()*64), i)
				if i%5 == 0 {
					th.Fence()
				}
			}
		})
		return tr
	}
	if !run().Equal(run()) {
		t.Fatal("PSO runs with equal seeds must be identical")
	}
}

func TestPSOLocksStillExclude(t *testing.T) {
	// The fenced locks provide mutual exclusion under PSO; exercised
	// indirectly: unfenced increments under the lock must not be lost.
	// (The locks package has its own SC tests; this drives PSO.)
	m := NewMachine(Config{Threads: 4, Seed: 9, Consistency: PSO})
	s := m.SetupThread()
	word := s.MallocVolatile(8, 8)
	lockWord := s.MallocVolatile(8, 8)
	m.Run(func(th *Thread) {
		for i := 0; i < 50; i++ {
			for { // TAS-style acquire: CAS drains buffers
				if th.CAS8(lockWord, 0, 1) {
					break
				}
				th.Yield()
			}
			v := th.Load8(word)
			th.Store8(word, v+1)
			th.Fence() // release fence
			th.Store8(lockWord, 0)
		}
	})
	if got := m.SetupThread().Load8(word); got != 200 {
		t.Fatalf("lost updates under PSO: %d", got)
	}
}

func TestFenceNoOpUnderSC(t *testing.T) {
	tr := &trace.Trace{}
	m := NewMachine(Config{Sink: tr})
	s := m.SetupThread()
	s.Fence()
	if m.Ops() != 0 || tr.Len() != 0 {
		t.Fatal("Fence under SC should cost nothing")
	}
}

func TestConsistencyString(t *testing.T) {
	if SC.String() != "sc" || PSO.String() != "pso" || Consistency(9).String() == "" {
		t.Fatal("consistency names")
	}
}
