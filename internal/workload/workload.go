// Package workload builds the shipped persistent-structure workloads —
// the CWL/2LC queue, the journaled metadata store, the PSTM heap — as
// traced executions with their recovery adapters and persistency-check
// annotations attached. It is the single construction path shared by
// cmd/crashsim, cmd/persistcheck, and the cross-validation tests, so a
// repro string's parameters rebuild the identical trace everywhere.
package workload

import (
	"fmt"
	"strconv"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/memory"
	"repro/internal/observer"
	"repro/internal/persistcheck"
	"repro/internal/pstm"
	"repro/internal/queue"
	"repro/internal/trace"
)

// Options carries everything needed to rebuild a workload — from flags
// on a fresh run, or from a repro string's parameters on replay. The
// struct is comparable and keys the bench trace cache.
type Options struct {
	Workload string
	Design   queue.Design
	Policy   queue.Policy
	Model    core.Model
	Threads  int
	Inserts  int
	Payload  int
	Seed     int64
	// BreakBar drops the queue's data→head barrier (negative test).
	BreakBar bool
	// OmitComp drops 2LC's completion barrier (negative test).
	OmitComp bool
	// BreakCommit drops the journal's records→commit barrier (negative
	// test).
	BreakCommit bool
	// OmitRecipe drops the journal's §5.3 strand recipe (negative test).
	OmitRecipe bool
	// Integrity builds the structure with the corruption-detecting
	// durable format (internal/durable): CRC-framed records, dual-copy
	// pointer words, shadow checksums.
	Integrity bool
	// SparseBlocks makes the journal workload write tag-word-only
	// blocks (zeros elsewhere) instead of fully patterned ones. The
	// exhaustive checker needs this: a patterned 64-byte block is ~8
	// mutually unordered nonzero persists per block under epoch and
	// strand models, an irreducibly exponential image space, while
	// sparse blocks collapse to one image-changing persist each.
	SparseBlocks bool

	// DesignStr/PolicyStr preserve the flag spellings for repro params.
	DesignStr, PolicyStr string
}

// Run is a traced execution plus its recovery adapters and checker
// annotations.
type Run struct {
	Trace *trace.Trace
	// Recover is strict recovery (plain observer).
	Recover observer.RecoverFunc
	// Checked is salvage recovery plus app invariants (campaigns).
	Checked observer.CheckedRecoverFunc
	// Checks declares the structure's recovery-critical metadata for
	// the persistency checker.
	Checks persistcheck.Annotations
	// SiteLabel maps persist addresses to annotation-site labels, the
	// convention telemetry critical-path attribution uses.
	SiteLabel func(memory.Addr) string
	// Describe is the human-readable workload summary.
	Describe string
}

// Params serializes the options into repro-string parameters,
// sufficient for FromScenario to rebuild the identical trace.
func (o Options) Params() []fault.Param {
	ps := []fault.Param{
		{Key: "workload", Value: o.Workload},
		{Key: "design", Value: o.DesignStr},
		{Key: "policy", Value: o.PolicyStr},
		{Key: "model", Value: o.Model.String()},
		{Key: "threads", Value: strconv.Itoa(o.Threads)},
		{Key: "inserts", Value: strconv.Itoa(o.Inserts)},
		{Key: "payload", Value: strconv.Itoa(o.Payload)},
		{Key: "seed", Value: strconv.FormatInt(o.Seed, 10)},
	}
	if o.BreakBar {
		ps = append(ps, fault.Param{Key: "break-barrier", Value: "1"})
	}
	if o.OmitComp {
		ps = append(ps, fault.Param{Key: "omit-completion-barrier", Value: "1"})
	}
	if o.BreakCommit {
		ps = append(ps, fault.Param{Key: "break-commit", Value: "1"})
	}
	if o.OmitRecipe {
		ps = append(ps, fault.Param{Key: "omit-strand-recipe", Value: "1"})
	}
	if o.Integrity {
		ps = append(ps, fault.Param{Key: "integrity", Value: "1"})
	}
	if o.SparseBlocks {
		ps = append(ps, fault.Param{Key: "sparse-blocks", Value: "1"})
	}
	return ps
}

// FromScenario rebuilds options from a repro string's parameters,
// applying the same defaults as the crashsim flags.
func FromScenario(s *fault.Scenario) (Options, error) {
	get := func(key, dflt string) string {
		if v, ok := s.Param(key); ok {
			return v
		}
		return dflt
	}
	var firstErr error
	atoi := func(key, dflt string) int {
		v, err := strconv.Atoi(get(key, dflt))
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("repro param %s: %v", key, err)
		}
		return v
	}
	design, err := ParseDesign(get("design", "cwl"))
	if err != nil {
		return Options{}, err
	}
	policy, err := ParsePolicy(get("policy", "epoch"))
	if err != nil {
		return Options{}, err
	}
	model, err := ParseModel(get("model", "epoch"))
	if err != nil {
		return Options{}, err
	}
	seed, err := strconv.ParseInt(get("seed", "1"), 10, 64)
	if err != nil {
		return Options{}, err
	}
	o := Options{
		Workload: get("workload", "queue"), Design: design, Policy: policy, Model: model,
		Threads: atoi("threads", "2"), Inserts: atoi("inserts", "16"), Payload: atoi("payload", "64"),
		Seed:         seed,
		BreakBar:     get("break-barrier", "") == "1",
		OmitComp:     get("omit-completion-barrier", "") == "1",
		BreakCommit:  get("break-commit", "") == "1",
		OmitRecipe:   get("omit-strand-recipe", "") == "1",
		Integrity:    get("integrity", "") == "1",
		SparseBlocks: get("sparse-blocks", "") == "1",
		DesignStr:    get("design", "cwl"), PolicyStr: get("policy", "epoch"),
	}
	return o, firstErr
}

// Build traces one workload run and wires up the recovery adapters and
// checker annotations. A non-nil cache memoizes the traced execution
// keyed by the full option set; on a hit only the (deterministic,
// cheap) setup pass re-runs to rebuild the adapters, and the cached
// trace is adopted.
func Build(o Options, cache *bench.TraceCache) (*Run, error) {
	if cache == nil {
		tr := &trace.Trace{}
		m := exec.NewMachine(exec.Config{Threads: o.Threads, Seed: o.Seed, Sink: tr})
		run, body, err := setup(o, m)
		if err != nil {
			return nil, err
		}
		m.Run(body)
		run.Trace = tr
		return run, nil
	}
	tr, err := cache.Do(o, func() (*trace.Trace, error) {
		run, err := Build(o, nil)
		if err != nil {
			return nil, err
		}
		return run.Trace, nil
	})
	if err != nil {
		return nil, err
	}
	m := exec.NewMachine(exec.Config{Threads: o.Threads, Seed: o.Seed, Sink: trace.Discard})
	run, _, err := setup(o, m)
	if err != nil {
		return nil, err
	}
	run.Trace = tr
	return run, nil
}

// setup constructs the workload's persistent structures on m (emitting
// their allocation/initialization events into m's sink) and returns the
// run skeleton plus the per-thread body, without executing the threads.
func setup(o Options, m *exec.Machine) (*Run, func(*exec.Thread), error) {
	s := m.SetupThread()
	run := &Run{}
	var body func(*exec.Thread)
	switch o.Workload {
	case "queue":
		q, err := queue.New(s, queue.Config{
			DataBytes:             DataBytes(o.Inserts, o.Payload),
			Design:                o.Design,
			Policy:                o.Policy,
			MaxThreads:            o.Threads,
			BreakDataHeadOrder:    o.BreakBar,
			OmitCompletionBarrier: o.OmitComp,
			Integrity:             o.Integrity,
		})
		if err != nil {
			return nil, nil, err
		}
		meta := q.Meta()
		per := o.Inserts / o.Threads
		// Precomputed outside m.Run: simulated threads are goroutines,
		// and a shared map write inside them is a host-level data race.
		expect := make(map[string]bool)
		for tid := 0; tid < o.Threads; tid++ {
			for i := 0; i < per; i++ {
				expect[string(queue.MakePayload(uint64(tid)<<32|uint64(i), o.Payload))] = true
			}
		}
		body = func(t *exec.Thread) {
			for i := 0; i < per; i++ {
				q.Insert(t, queue.MakePayload(uint64(t.TID())<<32|uint64(i), o.Payload))
			}
		}
		run.Recover = func(im *memory.Image) error {
			_, err := queue.Recover(im, meta)
			return err
		}
		run.Checked = func(im *memory.Image) (fault.RecoveryReport, error) {
			entries, rep, err := queue.RecoverSalvage(im, meta)
			if err != nil {
				return rep, err
			}
			return rep, CheckQueueEntries(entries, expect)
		}
		run.Checks = meta.Checks()
		run.SiteLabel = bench.SiteLabel(meta)
		run.Describe = fmt.Sprintf("%v queue, %v annotations, %d threads, %d inserts", o.Design, o.Policy, o.Threads, per*o.Threads)
	case "journal":
		jpol, err := JournalPolicy(o.Policy)
		if err != nil {
			return nil, nil, err
		}
		st, err := journal.New(s, journal.Config{
			Blocks:                 2 * o.Threads,
			JournalBytes:           1 << 11, // small ring: checkpoints occur
			Policy:                 jpol,
			BreakRecordCommitOrder: o.BreakCommit,
			OmitStrandRecipe:       o.OmitRecipe,
			Integrity:              o.Integrity,
		})
		if err != nil {
			return nil, nil, err
		}
		meta := st.Meta()
		per := o.Inserts / o.Threads
		mkBlock := journal.MakeBlock
		tagOf := journal.BlockTag
		if o.SparseBlocks {
			mkBlock = journal.MakeSparseBlock
			tagOf = journal.SparseBlockTag
		}
		body = func(t *exec.Thread) {
			g := t.TID()
			for i := 0; i < per; i++ {
				tag := uint64(t.TID()*100000 + i + 1)
				st.Update(t, []journal.Write{
					{Block: 2 * g, Data: mkBlock(tag)},
					{Block: 2*g + 1, Data: mkBlock(tag)},
				})
			}
		}
		run.Recover = func(im *memory.Image) error {
			state, err := journal.Recover(im, meta)
			if err != nil {
				return err
			}
			return CheckJournalPairsBy(state, o.Threads, tagOf)
		}
		run.Checked = func(im *memory.Image) (fault.RecoveryReport, error) {
			state, rep, err := journal.RecoverSalvage(im, meta)
			if err != nil {
				return rep, err
			}
			return rep, CheckJournalPairsBy(state, o.Threads, tagOf)
		}
		run.Checks = meta.Checks()
		run.SiteLabel = meta.SiteLabel()
		run.Describe = fmt.Sprintf("journal, %v annotations, %d threads, %d txns", jpol, o.Threads, per*o.Threads)
	case "pstm":
		ppol := PSTMPolicy(o.Policy)
		h, err := pstm.New(s, pstm.Config{Words: 2 * o.Threads, UndoCap: 8, Policy: ppol, Integrity: o.Integrity})
		if err != nil {
			return nil, nil, err
		}
		meta := h.Meta()
		per := o.Inserts / o.Threads
		body = func(t *exec.Thread) {
			g := t.TID()
			for i := 0; i < per; i++ {
				v := uint64(t.TID()*100000 + i + 1)
				h.Atomic(t, func(tx *pstm.Tx) {
					tx.Store(2*g, v)
					tx.Store(2*g+1, v)
				})
			}
		}
		run.Recover = func(im *memory.Image) error {
			state, err := pstm.Recover(im, meta)
			if err != nil {
				return err
			}
			return CheckPSTMPairs(state, o.Threads)
		}
		run.Checked = func(im *memory.Image) (fault.RecoveryReport, error) {
			state, rep, err := pstm.RecoverSalvage(im, meta)
			if err != nil {
				return rep, err
			}
			return rep, CheckPSTMPairs(state, o.Threads)
		}
		run.Checks = meta.Checks()
		run.SiteLabel = meta.SiteLabel()
		run.Describe = fmt.Sprintf("pstm heap, %v annotations, %d threads, %d txns", ppol, o.Threads, per*o.Threads)
	default:
		return nil, nil, fmt.Errorf("unknown workload %q", o.Workload)
	}
	if o.Integrity {
		run.Describe += ", integrity format"
	}
	if o.SparseBlocks {
		run.Describe += ", sparse blocks"
	}
	return run, body, nil
}

// CheckQueueEntries validates recovered entries against the insert set:
// in offset order and carrying only payloads that were really inserted.
func CheckQueueEntries(entries []queue.Entry, expect map[string]bool) error {
	var lastOff uint64
	for i, e := range entries {
		if !expect[string(e.Payload)] {
			return fmt.Errorf("entry %d carries a payload never inserted", i)
		}
		if i > 0 && e.Offset <= lastOff {
			return fmt.Errorf("entry %d out of order", i)
		}
		lastOff = e.Offset
	}
	return nil
}

// CheckJournalPairs validates the journal app invariant: each thread's
// block pair was updated atomically, so tags match and blocks are
// intact.
func CheckJournalPairs(state *journal.State, threads int) error {
	return CheckJournalPairsBy(state, threads, journal.BlockTag)
}

// CheckJournalPairsBy is CheckJournalPairs with an explicit tag
// extractor, for workloads writing sparse blocks.
func CheckJournalPairsBy(state *journal.State, threads int, tagOf func([]byte) (uint64, bool)) error {
	for g := 0; g < threads; g++ {
		t0, ok0 := tagOf(state.Block(2 * g))
		t1, ok1 := tagOf(state.Block(2*g + 1))
		if !ok0 || !ok1 || t0 != t1 {
			return fmt.Errorf("group %d torn (tags %d/%d intact %v/%v)", g, t0, t1, ok0, ok1)
		}
	}
	return nil
}

// CheckPSTMPairs validates the pstm app invariant: transactions store
// the same value to both words of a pair, so recovered pairs match.
func CheckPSTMPairs(state *pstm.State, threads int) error {
	for g := 0; g < threads; g++ {
		if a, b := state.Words[2*g], state.Words[2*g+1]; a != b {
			return fmt.Errorf("pair %d torn (%d != %d)", g, a, b)
		}
	}
	return nil
}

// DataBytes sizes the queue's data segment so an insert-only run never
// wraps.
func DataBytes(inserts, payload int) uint64 {
	n := uint64(inserts+2) * queue.SlotBytes(payload)
	return n + queue.SlotAlign
}

// ParseDesign parses a -design flag value.
func ParseDesign(s string) (queue.Design, error) {
	switch s {
	case "cwl":
		return queue.CWL, nil
	case "2lc":
		return queue.TwoLock, nil
	default:
		return 0, fmt.Errorf("unknown design %q", s)
	}
}

// ParsePolicy parses a -policy flag value.
func ParsePolicy(s string) (queue.Policy, error) {
	switch s {
	case "strict":
		return queue.PolicyStrict, nil
	case "epoch":
		return queue.PolicyEpoch, nil
	case "racing":
		return queue.PolicyRacingEpoch, nil
	case "strand":
		return queue.PolicyStrand, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

// JournalPolicy maps the shared policy flag onto journal's policy
// space.
func JournalPolicy(p queue.Policy) (journal.Policy, error) {
	switch p {
	case queue.PolicyStrict:
		return journal.PolicyStrict, nil
	case queue.PolicyEpoch:
		return journal.PolicyEpoch, nil
	case queue.PolicyRacingEpoch:
		return journal.PolicyRacingEpoch, nil
	case queue.PolicyStrand:
		return journal.PolicyStrand, nil
	default:
		return 0, fmt.Errorf("unknown policy %v", p)
	}
}

// PSTMPolicy maps the shared policy flag onto pstm's policy space (the
// enums are parallel).
func PSTMPolicy(p queue.Policy) pstm.Policy {
	return pstm.Policy(p)
}

// ParseModel parses a -model flag value.
func ParseModel(s string) (core.Model, error) {
	for _, m := range core.Models {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown model %q", s)
}

// ModelForPolicy returns the natural model for a policy (the one the
// policy's annotations target), honoring the pstm policy space for the
// pstm workload.
func ModelForPolicy(workload string, p queue.Policy) core.Model {
	if workload == "pstm" {
		return bench.PSTMModelFor(PSTMPolicy(p))
	}
	return bench.ModelFor(p)
}
