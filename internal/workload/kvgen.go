package workload

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/bench"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/kv"
	"repro/internal/memory"
	"repro/internal/trace"
)

// Open-loop KV traffic generation. Each simulated thread owns an
// independent, deterministically seeded stream of operations — Zipfian
// keys, Bernoulli read/write mix — issued unconditionally in program
// order (open loop: the schedule never reacts to outcomes, so offered
// load is a pure function of the options). Schedules are precomputed
// outside the machine, making them inspectable by tests and keeping
// rng state out of the simulated threads.

// KVOp is one generated operation.
type KVOp struct {
	Read bool
	Key  uint64
}

// KVGen is the seeded open-loop generator. The zero ZipfS falls back
// to uniform keys; any s > 1 draws from rand.Zipf with that skew
// (P(rank k) ∝ 1/(1+k)^s over [0, Keys)).
type KVGen struct {
	Seed     int64
	Keys     uint64
	ZipfS    float64
	ReadFrac float64
}

// threadSeed derives a per-thread stream seed; the odd multiplier
// decorrelates adjacent thread ids without losing determinism.
func (g KVGen) threadSeed(tid int) int64 {
	return g.Seed ^ (int64(tid)+1)*-0x61c8864680b583eb
}

// Schedule returns thread tid's first n operations. Identical
// (Seed, Keys, ZipfS, ReadFrac, tid, n) always yield the identical
// schedule, independent of any other thread's.
func (g KVGen) Schedule(tid, n int) []KVOp {
	rng := rand.New(rand.NewSource(g.threadSeed(tid)))
	var zipf *rand.Zipf
	if g.ZipfS > 1 {
		zipf = rand.NewZipf(rng, g.ZipfS, 1, g.Keys-1)
	}
	ops := make([]KVOp, n)
	for i := range ops {
		var key uint64
		if zipf != nil {
			key = zipf.Uint64()
		} else {
			key = uint64(rng.Int63n(int64(g.Keys)))
		}
		ops[i] = KVOp{Read: rng.Float64() < g.ReadFrac, Key: key}
	}
	return ops
}

// KVOptions carries everything needed to rebuild a KV serving run.
// The struct is comparable and keys the bench trace cache.
type KVOptions struct {
	Shards    int
	Keys      uint64
	Threads   int
	Ops       int // total, split evenly across threads
	ReadFrac  float64
	ZipfS     float64
	Policy    journal.Policy
	Integrity bool
	Seed      int64

	// PolicyStr preserves the flag spelling for repro params.
	PolicyStr string
}

// Params serializes the options into repro-string parameters.
func (o KVOptions) Params() []fault.Param {
	ps := []fault.Param{
		{Key: "workload", Value: "kv"},
		{Key: "policy", Value: o.PolicyStr},
		{Key: "shards", Value: strconv.Itoa(o.Shards)},
		{Key: "keys", Value: strconv.FormatUint(o.Keys, 10)},
		{Key: "threads", Value: strconv.Itoa(o.Threads)},
		{Key: "ops", Value: strconv.Itoa(o.Ops)},
		{Key: "read-frac", Value: strconv.FormatFloat(o.ReadFrac, 'g', -1, 64)},
		{Key: "zipf", Value: strconv.FormatFloat(o.ZipfS, 'g', -1, 64)},
		{Key: "seed", Value: strconv.FormatInt(o.Seed, 10)},
	}
	if o.Integrity {
		ps = append(ps, fault.Param{Key: "integrity", Value: "1"})
	}
	return ps
}

// KVFromScenario rebuilds options from a repro string's parameters.
func KVFromScenario(s *fault.Scenario) (KVOptions, error) {
	get := func(key, dflt string) string {
		if v, ok := s.Param(key); ok {
			return v
		}
		return dflt
	}
	var firstErr error
	atoi := func(key, dflt string) int {
		v, err := strconv.Atoi(get(key, dflt))
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("repro param %s: %v", key, err)
		}
		return v
	}
	atof := func(key, dflt string) float64 {
		v, err := strconv.ParseFloat(get(key, dflt), 64)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("repro param %s: %v", key, err)
		}
		return v
	}
	pol, err := ParsePolicy(get("policy", "epoch"))
	if err != nil {
		return KVOptions{}, err
	}
	jpol, err := JournalPolicy(pol)
	if err != nil {
		return KVOptions{}, err
	}
	seed, err := strconv.ParseInt(get("seed", "1"), 10, 64)
	if err != nil {
		return KVOptions{}, err
	}
	keys, err := strconv.ParseUint(get("keys", "1024"), 10, 64)
	if err != nil {
		return KVOptions{}, err
	}
	o := KVOptions{
		Shards: atoi("shards", "8"), Keys: keys,
		Threads: atoi("threads", "4"), Ops: atoi("ops", "256"),
		ReadFrac: atof("read-frac", "0.9"), ZipfS: atof("zipf", "1.1"),
		Policy: jpol, Seed: seed,
		Integrity: get("integrity", "") == "1",
		PolicyStr: get("policy", "epoch"),
	}
	return o, firstErr
}

// ValFor is the deterministic value a generated Put writes for (key,
// tid, op-index); tests and recovery checks recompute it.
func ValFor(key uint64, tid, i int) uint64 {
	v := key*0x100000001b3 ^ uint64(tid)<<32 ^ uint64(i)
	return v | 1 // nonzero
}

// BuildKV traces one KV serving run and wires up the recovery
// adapters and checker annotations, following the same
// construction-path and cache contract as Build.
func BuildKV(o KVOptions, cache *bench.TraceCache) (*Run, error) {
	if cache == nil {
		tr := &trace.Trace{}
		m := exec.NewMachine(exec.Config{Threads: o.Threads, Seed: o.Seed, Sink: tr})
		run, body, err := setupKV(o, m)
		if err != nil {
			return nil, err
		}
		m.Run(body)
		run.Trace = tr
		return run, nil
	}
	tr, err := cache.Do(o, func() (*trace.Trace, error) {
		run, err := BuildKV(o, nil)
		if err != nil {
			return nil, err
		}
		return run.Trace, nil
	})
	if err != nil {
		return nil, err
	}
	m := exec.NewMachine(exec.Config{Threads: o.Threads, Seed: o.Seed, Sink: trace.Discard})
	run, _, err := setupKV(o, m)
	if err != nil {
		return nil, err
	}
	run.Trace = tr
	return run, nil
}

// setupKV constructs the sharded store and per-thread bodies without
// executing the threads.
func setupKV(o KVOptions, m *exec.Machine) (*Run, func(*exec.Thread), error) {
	if o.Threads <= 0 || o.Ops < o.Threads {
		return nil, nil, fmt.Errorf("kv workload: need ops >= threads > 0 (ops %d, threads %d)", o.Ops, o.Threads)
	}
	if o.Keys == 0 {
		return nil, nil, fmt.Errorf("kv workload: empty key space")
	}
	s := m.SetupThread()
	st, err := kv.New(s, kv.Config{
		Shards:    o.Shards,
		Keys:      o.Keys,
		Policy:    o.Policy,
		Integrity: o.Integrity,
	})
	if err != nil {
		return nil, nil, err
	}
	meta := st.Meta()
	per := o.Ops / o.Threads
	gen := KVGen{Seed: o.Seed, Keys: o.Keys, ZipfS: o.ZipfS, ReadFrac: o.ReadFrac}
	// Precomputed outside m.Run: simulated threads are goroutines, and
	// rng state shared between them would be a host-level data race.
	schedules := make([][]KVOp, o.Threads)
	for tid := range schedules {
		schedules[tid] = gen.Schedule(tid, per)
	}
	body := func(t *exec.Thread) {
		tid := t.TID()
		for i, op := range schedules[tid] {
			t.BeginWork(uint64(tid)<<32 | uint64(i))
			if op.Read {
				st.Get(t, op.Key)
			} else {
				st.Put(t, op.Key, ValFor(op.Key, tid, i), uint64(tid)<<32|uint64(i+1))
			}
			t.EndWork(uint64(tid)<<32 | uint64(i))
		}
	}
	run := &Run{
		Recover: func(im *memory.Image) error {
			_, err := kv.Recover(im, meta)
			return err
		},
		Checked: func(im *memory.Image) (fault.RecoveryReport, error) {
			_, rep, err := kv.RecoverSalvage(im, meta)
			return rep, err
		},
		Checks:    meta.Checks(),
		SiteLabel: meta.SiteLabel(),
		Describe: fmt.Sprintf("sharded kv, %v annotations, %d shards, %d keys, %d threads, %d ops (%.0f%% reads, zipf %.2f)",
			o.Policy, o.Shards, o.Keys, o.Threads, per*o.Threads, 100*o.ReadFrac, o.ZipfS),
	}
	if o.Integrity {
		run.Describe += ", integrity format"
	}
	return run, body, nil
}
