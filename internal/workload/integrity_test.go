package workload

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/observer"
	"repro/internal/persistcheck"
	"repro/internal/queue"
)

// integrityOpt builds the crashsim-default options for a workload with
// the corruption-detecting format toggled.
func integrityOpt(wl string, integrity bool) Options {
	return Options{
		Workload: wl, Design: queue.CWL, Policy: queue.PolicyEpoch,
		Model: core.Epoch, Threads: 2, Inserts: 16, Payload: 64, Seed: 1,
		DesignStr: "cwl", PolicyStr: "epoch", Integrity: integrity,
	}
}

// silentCampaign runs a campaign whose every plan is silent bit flips —
// the fault class only software checksums can catch.
func silentCampaign(t *testing.T, o Options, scenarios int, seed int64) observer.CampaignOutcome {
	t.Helper()
	run, err := Build(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := observer.Campaign(run.Trace, core.Params{Model: o.Model}, run.Checked, observer.CampaignConfig{
		Scenarios: scenarios, Seed: seed,
		Gen: fault.GenConfig{FlipSilentWeight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestIntegrityCampaignsCatchEverySilentFlip(t *testing.T) {
	// The tentpole bar: with the corruption-detecting format, a campaign
	// of pure silent bit flips reports zero undetected corruption for
	// every shipped structure — each flip is masked, salvaged with the
	// corruption disclosed, or detected and recovered in full.
	for _, wl := range []string{"queue", "journal", "pstm"} {
		t.Run(wl, func(t *testing.T) {
			out := silentCampaign(t, integrityOpt(wl, true), 300, 7)
			if !out.Clean() {
				t.Fatalf("campaign not clean: %s\nfirst: %v (%v)", out, out.FirstFailure, out.FirstError)
			}
			if out.SilentBitMissed != 0 {
				t.Fatalf("%d silent flips corrupted state undetected: %s", out.SilentBitMissed, out)
			}
			if out.SilentBitSeen == 0 {
				t.Fatalf("degenerate campaign, no silent flips injected: %s", out)
			}
			if out.DetectedRecovered == 0 {
				t.Fatalf("no scenario recovered in full with corruption detected: %s", out)
			}
			if out.CRCDetected+out.CDBDetected == 0 {
				t.Fatalf("integrity campaign saw no checksum detections: %s", out)
			}
		})
	}
}

func TestLegacyFormatsMissSilentFlips(t *testing.T) {
	// The negative direction: without the integrity format the same
	// campaigns reach undetected corrupt states — the documented
	// exception the durable formats exist to close. (Campaigns stay
	// Clean(): an undetected silent flip is reported as a detection-rate
	// statistic, not an annotation failure.) The queue is absent here:
	// its entries are CRC-framed in both formats, so random flips almost
	// never land on its two unprotected pointer words — the targeted
	// lint-repro test below covers it.
	for _, wl := range []string{"journal", "pstm"} {
		t.Run(wl, func(t *testing.T) {
			missed := 0
			for seed := int64(1); seed <= 5 && missed == 0; seed++ {
				out := silentCampaign(t, integrityOpt(wl, false), 300, seed)
				if !out.Clean() {
					t.Fatalf("legacy campaign misclassified silent flips: %s", out)
				}
				missed = out.SilentBitMissed
			}
			if missed == 0 {
				t.Fatalf("%s: legacy format caught every silent flip; the integrity layer would be unfalsifiable", wl)
			}
		})
	}
}

func TestUnprotectedLintReprosDemonstrateSilentCorruption(t *testing.T) {
	// Cross-validation of the unprotected-metadata lint, both ways: every
	// legacy structure is flagged, every finding carries a repro line
	// that rebuilds the identical workload and replays, and switching
	// the same workload to the integrity format clears every robustness
	// finding. (The silent *harm* — data loss and wrong data behind a
	// clean report — is demonstrated by the targeted per-structure tests
	// in internal/queue, internal/journal, and internal/pstm: the
	// campaign invariants here tolerate lost suffixes, so a full-cut
	// pointer flip classifies as masked or salvaged, not missed.)
	for _, wl := range []string{"queue", "journal", "pstm"} {
		t.Run(wl, func(t *testing.T) {
			o := integrityOpt(wl, false)
			run, err := Build(o, nil)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := persistcheck.Check(run.Trace, core.Params{Model: o.Model}, run.Checks, persistcheck.Config{
				ReproParams: o.Params(),
				SiteLabel:   run.SiteLabel,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.RobustnessFindings() == 0 {
				t.Fatalf("legacy %s has unframed recovery metadata but the lint is silent:\n%s", wl, rep)
			}
			replayed := 0
			for _, f := range rep.Findings {
				if f.Kind != persistcheck.UnprotectedMetadata {
					continue
				}
				if f.Repro == "" {
					t.Fatalf("finding %q has no repro line", f.Msg)
				}
				sc, err := fault.ParseRepro(f.Repro)
				if err != nil {
					t.Fatalf("finding repro %q does not parse: %v", f.Repro, err)
				}
				o2, err := FromScenario(sc)
				if err != nil {
					t.Fatal(err)
				}
				if o2 != o {
					t.Fatalf("repro rebuilds different options:\n got %+v\nwant %+v", o2, o)
				}
				run2, err := Build(o2, nil)
				if err != nil {
					t.Fatal(err)
				}
				class, rerr := observer.Replay(run2.Trace, core.Params{Model: o2.Model}, run2.Checked, sc,
					observer.CampaignConfig{}.Device)
				if rerr != nil && class == observer.Masked {
					t.Fatalf("repro %q does not replay against its own workload: %v", f.Repro, rerr)
				}
				replayed++
			}
			if replayed == 0 {
				t.Fatalf("no unprotected-metadata finding carried a repro for legacy %s", wl)
			}

			oi := integrityOpt(wl, true)
			runI, err := Build(oi, nil)
			if err != nil {
				t.Fatal(err)
			}
			repI, err := persistcheck.Check(runI.Trace, core.Params{Model: oi.Model}, runI.Checks, persistcheck.Config{
				ReproParams: oi.Params(),
				SiteLabel:   runI.SiteLabel,
			})
			if err != nil {
				t.Fatal(err)
			}
			if repI.RobustnessFindings() != 0 {
				t.Fatalf("integrity %s still flagged:\n%s", wl, repI)
			}
			if repI.Hazards() != 0 {
				t.Fatalf("integrity %s has ordering hazards:\n%s", wl, repI)
			}
		})
	}
}

func TestIntegrityOptionRoundTrips(t *testing.T) {
	// The integrity toggle must survive repro serialization so a
	// finding's repro line rebuilds the identical (framed) workload.
	o := integrityOpt("pstm", true)
	o2, err := FromScenario(&fault.Scenario{Params: o.Params()})
	if err != nil {
		t.Fatal(err)
	}
	if o2 != o {
		t.Fatalf("round trip:\n got %+v\nwant %+v", o2, o)
	}
}

func TestIntegrityDescribeAndOverhead(t *testing.T) {
	// The framed format must disclose itself in the description and cost
	// extra persists (frames, shadow checksums, dual-copy words) — the
	// overhead the benchmarks surface, never hidden.
	for _, wl := range []string{"queue", "journal", "pstm"} {
		plain, err := Build(integrityOpt(wl, false), nil)
		if err != nil {
			t.Fatal(err)
		}
		framed, err := Build(integrityOpt(wl, true), nil)
		if err != nil {
			t.Fatal(err)
		}
		if framed.Describe == plain.Describe {
			t.Fatalf("%s: integrity build describes itself as the plain one: %q", wl, framed.Describe)
		}
		if framed.Trace.Len() <= plain.Trace.Len() {
			t.Fatalf("%s: integrity trace not larger: %d vs %d events", wl, framed.Trace.Len(), plain.Trace.Len())
		}
	}
}

func TestIntegrityCrashSafeUnderTargetModels(t *testing.T) {
	// The framed structures keep the baseline crash-consistency bar on
	// fault-free cuts under every target model.
	for _, wl := range []string{"queue", "journal", "pstm"} {
		for _, policy := range []string{"strict", "epoch", "strand"} {
			t.Run(fmt.Sprintf("%s/%s", wl, policy), func(t *testing.T) {
				p, err := ParsePolicy(policy)
				if err != nil {
					t.Fatal(err)
				}
				o := integrityOpt(wl, true)
				o.Policy, o.PolicyStr = p, policy
				o.Model = ModelForPolicy(wl, p)
				run, err := Build(o, nil)
				if err != nil {
					t.Fatal(err)
				}
				out, err := observer.CrashTest(run.Trace, core.Params{Model: o.Model}, run.Recover,
					observer.Config{Samples: 120, Seed: 5})
				if err != nil {
					t.Fatal(err)
				}
				if !out.AllRecovered() {
					t.Fatalf("%v", out)
				}
			})
		}
	}
}
