package workload

import (
	"math"
	"sort"
	"testing"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/trace"
)

func TestKVGenDeterminism(t *testing.T) {
	g := KVGen{Seed: 11, Keys: 1 << 12, ZipfS: 1.2, ReadFrac: 0.8}
	a, b := g.Schedule(3, 500), g.Schedule(3, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs between identical schedules: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A schedule is a stream: asking for a prefix yields the prefix.
	p := g.Schedule(3, 100)
	for i := range p {
		if p[i] != a[i] {
			t.Fatalf("prefix op %d = %+v, full schedule has %+v", i, p[i], a[i])
		}
	}
	// Different threads and different seeds draw different streams.
	other := g.Schedule(4, 500)
	g2 := g
	g2.Seed = 12
	reseeded := g2.Schedule(3, 500)
	same := func(x []KVOp) bool {
		for i := range x {
			if x[i] != a[i] {
				return false
			}
		}
		return true
	}
	if same(other) {
		t.Fatal("threads 3 and 4 drew identical streams")
	}
	if same(reseeded) {
		t.Fatal("seeds 11 and 12 drew identical streams")
	}
}

func TestKVGenZipfRankFrequency(t *testing.T) {
	// Empirical rank-ordered frequencies must track the theoretical
	// Zipf mass p(r) ∝ 1/(1+r)^s. With n = 200k draws the head ranks
	// have tens of thousands of samples, so 15% relative tolerance is
	// loose enough to be flake-free and tight enough to catch a wrong
	// (or uniform) distribution.
	const n, s = 200000, 1.3
	g := KVGen{Seed: 42, Keys: 1 << 16, ZipfS: s, ReadFrac: 0.5}
	counts := map[uint64]int{}
	for _, op := range g.Schedule(0, n) {
		counts[op.Key]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))

	// Theoretical mass of rank r over the full key space.
	var norm float64
	for k := uint64(0); k < g.Keys; k++ {
		norm += math.Pow(1+float64(k), -s)
	}
	for r := 0; r < 8; r++ {
		want := math.Pow(1+float64(r), -s) / norm
		got := float64(freqs[r]) / n
		if rel := math.Abs(got-want) / want; rel > 0.15 {
			t.Fatalf("rank %d: empirical mass %.4f, theoretical %.4f (rel err %.2f)", r, got, want, rel)
		}
	}
	// Skew sanity: the hottest key dominates a uniform draw's share by
	// orders of magnitude.
	if uniform := float64(n) / float64(g.Keys); float64(freqs[0]) < 100*uniform {
		t.Fatalf("top key drew %d of %d — not Zipfian", freqs[0], n)
	}
}

func TestKVGenReadWriteMix(t *testing.T) {
	const n = 100000
	for _, frac := range []float64{0, 0.5, 0.9, 1} {
		g := KVGen{Seed: 7, Keys: 1024, ZipfS: 1.1, ReadFrac: frac}
		reads := 0
		for _, op := range g.Schedule(1, n) {
			if op.Read {
				reads++
			}
		}
		got := float64(reads) / n
		// Exact at the endpoints; within ±0.01 of the target otherwise
		// (3-sigma for n=100k is ~0.005).
		if frac == 0 || frac == 1 {
			if got != frac {
				t.Fatalf("frac %v: observed %v", frac, got)
			}
		} else if math.Abs(got-frac) > 0.01 {
			t.Fatalf("frac %v: observed %v", frac, got)
		}
	}
}

func TestKVOptionsParamsRoundTrip(t *testing.T) {
	o := KVOptions{
		Shards: 16, Keys: 1 << 20, Threads: 128, Ops: 1 << 20,
		ReadFrac: 0.9, ZipfS: 1.1, Policy: journal.PolicyStrand,
		Integrity: true, Seed: 31, PolicyStr: "strand",
	}
	o2, err := KVFromScenario(&fault.Scenario{Params: o.Params()})
	if err != nil {
		t.Fatal(err)
	}
	if o2 != o {
		t.Fatalf("round trip:\n got %+v\nwant %+v", o2, o)
	}
	if _, err := KVFromScenario(&fault.Scenario{Params: []fault.Param{{Key: "policy", Value: "bogus"}}}); err == nil {
		t.Fatal("bad policy accepted")
	}
	if _, err := KVFromScenario(&fault.Scenario{Params: []fault.Param{{Key: "ops", Value: "x"}}}); err == nil {
		t.Fatal("bad ops accepted")
	}
}

func TestBuildKVIsDeterministicAndCacheable(t *testing.T) {
	o := KVOptions{
		Shards: 4, Keys: 256, Threads: 3, Ops: 90,
		ReadFrac: 0.7, ZipfS: 1.1, Policy: journal.PolicyEpoch,
		Seed: 5, PolicyStr: "epoch",
	}
	direct, err := BuildKV(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	cache := bench.NewTraceCache(4)
	cached, err := BuildKV(o, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !cached.Trace.Equal(direct.Trace) {
		t.Fatal("cached build traces a different execution")
	}
	again, err := BuildKV(o, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Trace.Equal(direct.Trace) {
		t.Fatal("cache hit returned a different trace")
	}
	for _, run := range []*Run{direct, cached, again} {
		if run.Recover == nil || run.Checked == nil || run.SiteLabel == nil ||
			len(run.Checks.Pubs) == 0 || run.Describe == "" {
			t.Fatalf("run not fully wired: %+v", run)
		}
	}
	// Every scheduled op traces a completed work item, and the write
	// share of the mix reaches the journals as persists.
	sum := trace.Summarize(direct.Trace)
	if sum.WorkItems != o.Ops {
		t.Fatalf("traced %d work items, scheduled %d ops", sum.WorkItems, o.Ops)
	}
	if sum.Persists == 0 {
		t.Fatal("no persists traced")
	}
}

func TestBuildKVValidation(t *testing.T) {
	if _, err := BuildKV(KVOptions{Shards: 2, Keys: 8, Threads: 0, Ops: 8}, nil); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := BuildKV(KVOptions{Shards: 2, Keys: 8, Threads: 4, Ops: 2}, nil); err == nil {
		t.Fatal("ops < threads accepted")
	}
	if _, err := BuildKV(KVOptions{Shards: 2, Keys: 0, Threads: 2, Ops: 8}, nil); err == nil {
		t.Fatal("empty key space accepted")
	}
	if _, err := BuildKV(KVOptions{Shards: 0, Keys: 8, Threads: 2, Ops: 8}, nil); err == nil {
		t.Fatal("zero shards accepted")
	}
}
