package workload

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/queue"
)

func TestParamsRoundTrip(t *testing.T) {
	// Every option — including all four bug-fixture knobs — must survive
	// serialization into repro params and back, so a finding's repro line
	// rebuilds the identical workload.
	o := Options{
		Workload: "journal", Design: queue.CWL, Policy: queue.PolicyEpoch,
		Model: core.Epoch, Threads: 3, Inserts: 12, Payload: 32, Seed: 7,
		BreakBar: true, OmitComp: true, BreakCommit: true, OmitRecipe: true,
		DesignStr: "cwl", PolicyStr: "epoch",
	}
	o2, err := FromScenario(&fault.Scenario{Params: o.Params()})
	if err != nil {
		t.Fatal(err)
	}
	if o2 != o {
		t.Fatalf("round trip:\n got %+v\nwant %+v", o2, o)
	}
}

func TestFromScenarioDefaults(t *testing.T) {
	// An empty scenario yields the crashsim flag defaults.
	o, err := FromScenario(&fault.Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	want := Options{
		Workload: "queue", Design: queue.CWL, Policy: queue.PolicyEpoch,
		Model: core.Epoch, Threads: 2, Inserts: 16, Payload: 64, Seed: 1,
		DesignStr: "cwl", PolicyStr: "epoch",
	}
	if o != want {
		t.Fatalf("defaults:\n got %+v\nwant %+v", o, want)
	}
}

func TestBuildIsDeterministicAndCacheable(t *testing.T) {
	// The same options build the same trace, uncached or through the
	// bench trace cache (which only replays the cheap setup pass on a
	// hit), and the run's adapters come back wired either way.
	o := Options{
		Workload: "pstm", Design: queue.CWL, Policy: queue.PolicyEpoch,
		Model: core.Epoch, Threads: 2, Inserts: 8, Payload: 64, Seed: 3,
		DesignStr: "cwl", PolicyStr: "epoch",
	}
	direct, err := Build(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	cache := bench.NewTraceCache(4)
	cached, err := Build(o, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !cached.Trace.Equal(direct.Trace) {
		t.Fatal("cached build traces a different execution")
	}
	again, err := Build(o, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Trace.Equal(direct.Trace) {
		t.Fatal("cache hit returned a different trace")
	}
	for _, run := range []*Run{direct, cached, again} {
		if run.Recover == nil || run.Checked == nil || run.SiteLabel == nil ||
			len(run.Checks.Pubs) == 0 || run.Describe == "" {
			t.Fatalf("run not fully wired: %+v", run)
		}
	}
}

func TestBuildRejectsUnknownWorkload(t *testing.T) {
	_, err := Build(Options{Workload: "nope", Threads: 1, Inserts: 1, Payload: 8, Seed: 1}, nil)
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestModelForPolicy(t *testing.T) {
	cases := []struct {
		wl     string
		policy queue.Policy
		want   core.Model
	}{
		{"queue", queue.PolicyStrict, core.Strict},
		{"queue", queue.PolicyEpoch, core.Epoch},
		{"queue", queue.PolicyRacingEpoch, core.Epoch},
		{"queue", queue.PolicyStrand, core.Strand},
		{"pstm", queue.PolicyStrand, core.Strand},
		{"journal", queue.PolicyEpoch, core.Epoch},
	}
	for _, c := range cases {
		if got := ModelForPolicy(c.wl, c.policy); got != c.want {
			t.Fatalf("ModelForPolicy(%s, %v) = %v, want %v", c.wl, c.policy, got, c.want)
		}
	}
}

func TestParseHelpers(t *testing.T) {
	if _, err := ParseDesign("bogus"); err == nil {
		t.Fatal("bad design accepted")
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bad policy accepted")
	}
	if _, err := ParseModel("bogus"); err == nil {
		t.Fatal("bad model accepted")
	}
	for _, m := range core.Models {
		got, err := ParseModel(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseModel(%s) = %v, %v", m, got, err)
		}
	}
	if _, err := JournalPolicy(queue.Policy(99)); err == nil {
		t.Fatal("bad journal policy accepted")
	}
}
