// Fault campaigns: the observer's crash-state enumeration composed
// with device-fault injection (internal/fault).
//
// The plain observer asks "does recovery survive every reachable crash
// state?". A campaign asks the harsher question: "does recovery
// survive every reachable crash state *on a misbehaving device*?" —
// torn persists, dropped persists, transient write failures, and media
// bit errors layered onto each sampled cut. The correctness bar is
// fail-stop, not fail-free: every injected fault must be masked (no
// observable effect), salvaged (bounded data loss, disclosed in the
// RecoveryReport), or detected. The one documented exception is a
// silent bit flip that defeats the checksums; campaigns report those
// as a detection-rate statistic rather than a failure.
package observer

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/memory"
	"repro/internal/nvram"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// CheckedRecoverFunc is the campaign-side recovery contract: run the
// application's salvage recovery against a post-crash image, validate
// the recovered state against application invariants, and return what
// the recovery layer *reported* alongside what the validation *found*.
// A non-nil error with a clean report is the definition of silent
// corruption.
type CheckedRecoverFunc func(*memory.Image) (fault.RecoveryReport, error)

// Class classifies one campaign scenario.
type Class int

const (
	// Masked: recovery succeeded and reported nothing — the faults had
	// no observable effect.
	Masked Class = iota
	// Salvaged: recovery disclosed degradation (quarantined/dropped
	// entries, poisoned media) and the recovered state satisfied the
	// application's invariants for the surviving data.
	Salvaged
	// DetectedRecovered: the integrity layer (CRC frames,
	// corruption-detecting booleans, shadow checksums; internal/durable)
	// flagged injected corruption and recovery nonetheless returned a
	// fully correct state — detect-and-recover, the corruption-detecting
	// format's design goal.
	DetectedRecovered
	// SilentBitMissed: the scenario injected a silent bit flip that
	// defeated the checksums — the one documented hole in the
	// fail-stop guarantee (an 8-byte FNV keyed checksum is not ECC).
	SilentBitMissed
	// AnnotationCorrupt: the *fault-free* baseline for this cut already
	// fails recovery — a persist-ordering annotation bug, found exactly
	// as the plain observer finds it.
	AnnotationCorrupt
	// SilentCorrupt: recovery returned success with a clean report but
	// the application invariants do not hold, and no silent bit flip
	// excuses it. A campaign finding one of these is a harness failure.
	SilentCorrupt
)

func (c Class) String() string {
	switch c {
	case Masked:
		return "masked"
	case Salvaged:
		return "salvaged"
	case DetectedRecovered:
		return "detected-recovered"
	case SilentBitMissed:
		return "silent-bit-missed"
	case AnnotationCorrupt:
		return "annotation-corrupt"
	case SilentCorrupt:
		return "SILENT-CORRUPT"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Failure reports whether the class fails the campaign bar.
func (c Class) Failure() bool { return c == AnnotationCorrupt || c == SilentCorrupt }

// CampaignConfig parameterizes a fault campaign.
type CampaignConfig struct {
	// Scenarios is the number of (cut, plan) scenarios. 0 means 1000.
	Scenarios int
	// Seed drives cut sampling and plan generation when Rand is nil.
	Seed int64
	// Rand, when non-nil, supplies all campaign randomness; campaigns
	// with the same Rand stream are identical regardless of Seed. This
	// is what makes a repro string self-contained: replay needs no
	// state beyond the recorded cut and plan.
	Rand *rand.Rand
	// KeepProbs sweeps cut-inclusion probabilities as in Config.
	KeepProbs []float64
	// Gen parameterizes fault-plan generation.
	Gen fault.GenConfig
	// Params are workload parameters baked into emitted repro strings
	// (workload name, design, seed — whatever rebuilds the trace).
	Params []fault.Param
	// Device, when Latency > 0, charges each plan's transient write
	// failures into the nvram timing model and accumulates the cost.
	Device nvram.Config
	// MinimizeBudget caps recovery executions spent shrinking the first
	// failure. 0 means 2000; negative disables minimization.
	MinimizeBudget int
	// Progress, when non-nil, receives the running outcome every
	// ProgressEvery scenarios and after the last one — live campaign
	// telemetry for long runs. It is called synchronously from the
	// merge loop in scenario order (deterministic at any worker
	// count); a FirstFailure it observes is not yet minimized —
	// minimization runs once, after the sweep.
	Progress func(out CampaignOutcome)
	// ProgressEvery is the Progress stride in scenarios; 0 means 100.
	ProgressEvery int
	// Sweep controls parallel scenario evaluation; the zero value uses
	// GOMAXPROCS workers. rec must then be safe for concurrent calls.
	// Scenario generation stays sequential (one rng stream) and
	// verdicts merge in scenario order, so the outcome — tallies,
	// progress sequence, first failure, minimized repro — is identical
	// at any worker count.
	Sweep sweep.Config
	// Spans, when non-nil, records wall-clock spans for the campaign's
	// phases: graph build, scenario generation, per-scenario classify
	// (under category "campaign"), and failure minimization. Set
	// Sweep.Spans too to get per-item worker attribution.
	Spans *telemetry.SpanTracer
}

func (c *CampaignConfig) normalize() {
	if c.Scenarios == 0 {
		c.Scenarios = 1000
	}
	if len(c.KeepProbs) == 0 {
		c.KeepProbs = []float64{0.05, 0.25, 0.5, 0.75, 0.95, 0.999}
	}
	if c.MinimizeBudget == 0 {
		c.MinimizeBudget = 2000
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 100
	}
}

// CampaignOutcome tallies a campaign.
type CampaignOutcome struct {
	Model     core.Model
	Persists  int
	Scenarios int

	Masked            int
	Salvaged          int
	DetectedRecovered int
	SilentBitMissed   int
	AnnotationCorrupt int
	SilentCorrupt     int

	// Integrity-layer detection totals summed over all scenarios'
	// recovery reports (zero unless the workload runs with the
	// corruption-detecting format).
	CRCDetected      int
	CDBDetected      int
	DiscardedRecords int

	// SilentBitSeen / SilentBitCaught give the silent-flip detection
	// rate: scenarios whose plan carried a silent flip, and how many of
	// those recovery nonetheless flagged.
	SilentBitSeen   int
	SilentBitCaught int

	// FirstFailure is the minimized repro of the first failing
	// scenario (class.Failure()), nil when the campaign is clean.
	FirstFailure      *fault.Scenario
	FirstFailureClass Class
	FirstError        error

	// Aggregated nvram retry cost (Device.Latency > 0 only).
	Retries        int
	RetryTime      time.Duration
	FailedPersists int
}

// Clean reports whether the campaign met the bar: no annotation bugs,
// no silent corruption. Undetected silent bit flips do not fail it.
func (o CampaignOutcome) Clean() bool {
	return o.AnnotationCorrupt == 0 && o.SilentCorrupt == 0
}

func (o CampaignOutcome) String() string {
	s := fmt.Sprintf("model %v: %d persists, %d scenarios: %d masked, %d salvaged",
		o.Model, o.Persists, o.Scenarios, o.Masked, o.Salvaged)
	if o.DetectedRecovered > 0 || o.CRCDetected > 0 || o.CDBDetected > 0 {
		s += fmt.Sprintf(", %d detected-recovered (crc %d, cdb %d)",
			o.DetectedRecovered, o.CRCDetected, o.CDBDetected)
	}
	if o.SilentBitSeen > 0 {
		s += fmt.Sprintf(", silent bits %d/%d caught", o.SilentBitCaught, o.SilentBitSeen)
	}
	if o.Retries > 0 {
		s += fmt.Sprintf(", %d retries (+%v, %d abandoned)", o.Retries, o.RetryTime, o.FailedPersists)
	}
	if !o.Clean() {
		s += fmt.Sprintf("; %d ANNOTATION-CORRUPT, %d SILENT-CORRUPT", o.AnnotationCorrupt, o.SilentCorrupt)
	}
	return s
}

// effectivePlan resolves transient-failure abandonment into state
// effects: a Retry fault reaching MaxRetries on a frontier persist
// means the data never hit media — a drop. A non-frontier persist
// cannot have been abandoned (its dependents persisted, so the write
// eventually stuck), so there the retry stays timing-only.
func effectivePlan(g *graph.Graph, c graph.Cut, p fault.Plan, maxRetries int) fault.Plan {
	if maxRetries <= 0 {
		maxRetries = 8 // nvram.Config default
	}
	onFrontier := map[graph.NodeID]bool{}
	for _, n := range fault.Frontier(g, c) {
		onFrontier[n] = true
	}
	out := p
	for node, fails := range p.RetryProfile() {
		if fails >= maxRetries && onFrontier[node] {
			out = fault.Plan{Faults: append(append([]fault.Fault{}, out.Faults...),
				fault.Fault{Kind: fault.Drop, Node: node})}
		}
	}
	return out
}

// classify runs one scenario: the fault-free baseline first (isolating
// annotation bugs from device-fault handling bugs), then the faulted
// image. It also returns the faulted image's recovery report so
// campaigns can aggregate the integrity-layer detection counters.
func classify(g *graph.Graph, c graph.Cut, p fault.Plan, rec CheckedRecoverFunc, maxRetries int) (Class, fault.RecoveryReport, error) {
	baseRep, baseErr := rec(g.Materialize(c))
	if baseErr != nil || baseRep.Detected() {
		// The cut itself — no faults — fails or trips the salvage
		// detectors. Default-annotation workloads keep salvage reports
		// clean on every legal cut, so this is an ordering bug.
		if baseErr == nil {
			baseErr = fmt.Errorf("fault-free baseline not clean: %s", baseRep.String())
		}
		return AnnotationCorrupt, baseRep, baseErr
	}
	rep, err := rec(fault.Materialize(g, c, effectivePlan(g, c, p, maxRetries)))
	switch {
	case err == nil && !rep.Detected():
		return Masked, rep, nil
	case err == nil && rep.DetectedByIntegrity():
		return DetectedRecovered, rep, nil
	case rep.Detected():
		return Salvaged, rep, err
	case p.HasSilentFlip():
		return SilentBitMissed, rep, err
	default:
		if err == nil {
			err = fmt.Errorf("undetected corruption")
		}
		return SilentCorrupt, rep, err
	}
}

// Campaign sweeps Scenarios random (cut, fault-plan) pairs over the
// traced execution, classifies each, and minimizes the first failure
// into a replayable repro.
func Campaign(tr *trace.Trace, p core.Params, rec CheckedRecoverFunc, cfg CampaignConfig) (CampaignOutcome, error) {
	cfg.normalize()
	sp := cfg.Spans.Start("campaign", "graph-build").Arg("model", p.Model.String())
	g, err := graph.Build(tr, p)
	if err == nil {
		sp.Arg("frontier-ranges", g.Stats.FrontierRanges).Arg("peak-ranges", g.Stats.PeakRanges)
	}
	sp.End()
	if err != nil {
		return CampaignOutcome{}, err
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	out := CampaignOutcome{Model: p.Model, Persists: g.Len()}
	maxRetries := cfg.Device.MaxRetries

	// Adversarial prelude: the first scenarios use single-victim cuts
	// (everything persisted except one node and its dependents), which
	// deterministically expose any ordering hazard that hinges on one
	// persist — random cut sampling can miss narrow hazards. The
	// baseline check runs on every scenario's cut, so the prelude vets
	// annotations even while fault plans perturb the images.
	adversarial := g.Len()
	if adversarial > cfg.Scenarios/2 {
		adversarial = cfg.Scenarios / 2
	}

	// Phase 1, sequential: scenario generation consumes the rng stream
	// in exactly the order the sequential campaign always did, so equal
	// seeds yield equal (cut, plan) grids at any worker count.
	type scenario struct {
		c    graph.Cut
		plan fault.Plan
	}
	genSpan := cfg.Spans.Start("campaign", "scenario-gen").Arg("scenarios", cfg.Scenarios)
	scens := make([]scenario, cfg.Scenarios)
	for i := 0; i < cfg.Scenarios; i++ {
		var c graph.Cut
		if i < adversarial {
			c = g.DropCut(graph.NodeID(i))
		} else {
			keep := cfg.KeepProbs[i%len(cfg.KeepProbs)]
			c = g.SampleCut(rng, keep)
		}
		words := g.Materialize(c).WrittenWords()
		scens[i] = scenario{c: c, plan: fault.GenPlan(rng, g, c, words, cfg.Gen)}
	}
	genSpan.End()

	// Phase 2, parallel: classification and device scheduling only read
	// the shared graph; verdicts merge back in scenario order, keeping
	// the tallies, progress sequence, and first failure deterministic.
	type verdict struct {
		class   Class
		rep     fault.RecoveryReport
		cerr    error
		res     nvram.Result
		haveRes bool
	}
	firstIdx := -1
	err = sweep.Run(cfg.Scenarios, cfg.Sweep.Named("campaign"),
		func(i int) (verdict, error) {
			csp := cfg.Spans.Start("campaign", "classify").Arg("scenario", i)
			class, rep, cerr := classify(g, scens[i].c, scens[i].plan, rec, maxRetries)
			csp.End()
			v := verdict{class: class, rep: rep, cerr: cerr}
			if cfg.Device.Latency > 0 {
				if prof := scens[i].plan.RetryProfile(); len(prof) > 0 {
					res, serr := nvram.ScheduleWithFaults(g, cfg.Device, prof)
					if serr != nil {
						return verdict{}, serr
					}
					v.res, v.haveRes = res, true
				}
			}
			return v, nil
		},
		func(i int, v verdict) error {
			out.Scenarios++
			if scens[i].plan.HasSilentFlip() {
				out.SilentBitSeen++
				if v.class == Salvaged || v.class == DetectedRecovered {
					out.SilentBitCaught++
				}
			}
			out.CRCDetected += v.rep.CRCDetected
			out.CDBDetected += v.rep.CDBDetected
			out.DiscardedRecords += v.rep.DiscardedRecords
			switch v.class {
			case Masked:
				out.Masked++
			case Salvaged:
				out.Salvaged++
			case DetectedRecovered:
				out.DetectedRecovered++
			case SilentBitMissed:
				out.SilentBitMissed++
			case AnnotationCorrupt:
				out.AnnotationCorrupt++
			case SilentCorrupt:
				out.SilentCorrupt++
			}
			if v.class.Failure() && firstIdx < 0 {
				firstIdx = i
				out.FirstFailure = &fault.Scenario{Params: cfg.Params, Cut: scens[i].c, Plan: scens[i].plan}
				out.FirstFailureClass = v.class
				out.FirstError = v.cerr
			}
			if v.haveRes {
				out.Retries += v.res.Retries
				out.RetryTime += v.res.RetryTime
				out.FailedPersists += v.res.FailedPersists
			}
			if cfg.Progress != nil && (out.Scenarios%cfg.ProgressEvery == 0 || out.Scenarios == cfg.Scenarios) {
				cfg.Progress(out)
			}
			return nil
		})
	if err != nil {
		return out, err
	}

	// Phase 3, sequential: shrink the first failure into a replayable
	// repro. Running it after the sweep keeps the minimizer's greedy
	// recovery executions off the worker pool; the merge order above
	// guarantees this is the same failure the sequential campaign
	// would have minimized.
	if firstIdx >= 0 {
		msp := cfg.Spans.Start("campaign", "minimize").Arg("scenario", firstIdx)
		class := out.FirstFailureClass
		mc, mp := scens[firstIdx].c, scens[firstIdx].plan
		if class == AnnotationCorrupt {
			mp = fault.Plan{} // the empty plan already fails
		}
		if cfg.MinimizeBudget > 0 {
			mc, mp = MinimizeScenario(g, mc, mp, func(c2 graph.Cut, p2 fault.Plan) bool {
				cl, _, _ := classify(g, c2, p2, rec, maxRetries)
				return cl == class
			}, cfg.MinimizeBudget)
		}
		out.FirstFailure = &fault.Scenario{Params: cfg.Params, Cut: mc, Plan: mp}
		msp.End()
	}
	return out, nil
}

// MinimizeScenario greedily shrinks a failing scenario while bad()
// keeps returning true: first removes faults one at a time, then
// excludes frontier nodes from the cut (frontier removal keeps the cut
// downward-closed, so every intermediate scenario stays a reachable
// crash state), looping until a fixpoint or the budget runs out. The
// result is never larger than the input — faults and cut nodes are
// only ever removed.
func MinimizeScenario(g *graph.Graph, c graph.Cut, p fault.Plan, bad func(graph.Cut, fault.Plan) bool, budget int) (graph.Cut, fault.Plan) {
	spend := func() bool { budget--; return budget >= 0 }
	changed := true
	for changed {
		changed = false
		// Pass 1: drop faults that are not needed for the failure.
		for i := 0; i < p.Len(); {
			q := p.Without(i)
			if !spend() {
				return c, p
			}
			if bad(c, q) {
				p = q
				changed = true
			} else {
				i++
			}
		}
		// Pass 2: shrink the cut one frontier node at a time.
		for {
			shrunk := false
			for _, n := range fault.Frontier(g, c) {
				c2 := graph.Cut{Included: append([]bool{}, c.Included...)}
				c2.Included[n] = false
				if !spend() {
					return c, p
				}
				if bad(c2, p) {
					c, shrunk, changed = c2, true, true
					break // frontier changed; recompute
				}
			}
			if !shrunk {
				break
			}
		}
	}
	return c, p
}

// Replay re-runs a parsed repro scenario against a freshly rebuilt
// trace and returns its classification. The caller must rebuild the
// workload with the same parameters recorded in the scenario (the
// graph's node count is checked as a cheap guard against mismatched
// workloads).
func Replay(tr *trace.Trace, p core.Params, rec CheckedRecoverFunc, s *fault.Scenario, dev nvram.Config) (Class, error) {
	g, err := graph.Build(tr, p)
	if err != nil {
		return Masked, err
	}
	if g.Len() != len(s.Cut.Included) {
		return Masked, fmt.Errorf("observer: repro cut covers %d persists but workload produced %d (wrong parameters?)",
			len(s.Cut.Included), g.Len())
	}
	if !g.Valid(s.Cut) {
		return Masked, fmt.Errorf("observer: repro cut is not downward-closed for this workload")
	}
	return ReplayOnGraph(g, rec, s, dev)
}

// ReplayOnGraph is Replay against an already-built graph.
func ReplayOnGraph(g *graph.Graph, rec CheckedRecoverFunc, s *fault.Scenario, dev nvram.Config) (Class, error) {
	class, _, err := classify(g, s.Cut, s.Plan, rec, dev.MaxRetries)
	return class, err
}
