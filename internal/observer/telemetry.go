package observer

import "repro/internal/telemetry"

// ObserveCampaign records a fault-injection campaign's running (or
// final) outcome as gauges — called from CampaignConfig.Progress, the
// series track the live campaign state. (It lives here rather than in
// telemetry because telemetry sits below the sweep pool the campaign
// runs on, and importing observer from there would be a cycle.)
func ObserveCampaign(reg *telemetry.Registry, label string, out CampaignOutcome) {
	reg.SetHelp("campaign_scenarios", "fault-injection scenarios classified so far")
	reg.SetHelp("campaign_outcomes", "scenario outcomes by class")
	reg.SetHelp("campaign_retries_total", "transient write failures charged to the device model")
	lbl := func(name string, kv ...string) string {
		return telemetry.Label(name, append([]string{"workload", label}, kv...)...)
	}
	reg.Gauge(lbl("campaign_scenarios")).Set(float64(out.Scenarios))
	for _, c := range []struct {
		class string
		n     int
	}{
		{"masked", out.Masked},
		{"salvaged", out.Salvaged},
		{"detected-recovered", out.DetectedRecovered},
		{"silent-bit-missed", out.SilentBitMissed},
		{"annotation-corrupt", out.AnnotationCorrupt},
		{"silent-corrupt", out.SilentCorrupt},
	} {
		reg.Gauge(lbl("campaign_outcomes", "class", c.class)).Set(float64(c.n))
	}
	reg.Gauge(lbl("campaign_retries_total")).Set(float64(out.Retries))
}
