package observer_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/memory"
	"repro/internal/observer"
	"repro/internal/queue"
	"repro/internal/trace"
)

// ExampleCrashTest traces a few queue inserts and verifies that every
// sampled crash state recovers.
func ExampleCrashTest() {
	tr := &trace.Trace{}
	m := exec.NewMachine(exec.Config{Threads: 1, Seed: 1, Sink: tr})
	s := m.SetupThread()
	q := queue.MustNew(s, queue.Config{DataBytes: 4096, Design: queue.CWL, Policy: queue.PolicyEpoch})
	meta := q.Meta()
	m.Run(func(t *exec.Thread) {
		for i := uint64(0); i < 4; i++ {
			q.Insert(t, queue.MakePayload(i, 40))
		}
	})

	rec := func(im *memory.Image) error {
		_, err := queue.Recover(im, meta)
		return err
	}
	out, err := observer.CrashTest(tr, core.Params{Model: core.Epoch}, rec, observer.Config{Samples: 50, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("all recovered:", out.AllRecovered())
	// Output:
	// all recovered: true
}
