package observer

import (
	"testing"

	"repro/internal/core"
	"repro/internal/queue"
)

func TestAdversarialCleanOnCorrectQueue(t *testing.T) {
	for _, pol := range queue.Policies {
		tr, rec := traceQueue(t, queue.Config{DataBytes: 1 << 13, Design: queue.CWL, Policy: pol}, 2, 5, 7)
		out, err := Adversarial(tr, core.Params{Model: modelFor(pol)}, rec)
		if err != nil {
			t.Fatal(err)
		}
		if !out.AllRecovered() {
			t.Errorf("%v: %v", pol, out)
		}
		if out.Cuts != out.Persists+2 {
			t.Errorf("cut count %d for %d persists", out.Cuts, out.Persists)
		}
	}
}

func TestAdversarialFindsBrokenBarrierDeterministically(t *testing.T) {
	// Random sampling can miss narrow hazards; the adversarial sweep
	// cannot miss a single-persist ordering violation. The data→head
	// break must be caught on the FIRST seed.
	tr, rec := traceQueue(t, queue.Config{
		DataBytes: 1 << 13, Design: queue.CWL, Policy: queue.PolicyEpoch,
		BreakDataHeadOrder: true,
	}, 1, 4, 0)
	out, err := Adversarial(tr, core.Params{Model: core.Epoch}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if out.AllRecovered() {
		t.Fatal("adversarial sweep missed the broken barrier")
	}
	if !queue.IsCorruption(out.FirstCorruption) {
		t.Fatalf("unexpected corruption type: %v", out.FirstCorruption)
	}
}

func TestAdversarialFindsCompletionBarrierHazard(t *testing.T) {
	// The 2LC completion-barrier hazard needs a non-oldest insert; the
	// sweep finds it across a handful of seeds without tuning sample
	// counts.
	found := false
	for seed := int64(0); seed < 6 && !found; seed++ {
		tr, rec := traceQueue(t, queue.Config{
			DataBytes: 1 << 13, Design: queue.TwoLock, Policy: queue.PolicyEpoch,
			OmitCompletionBarrier: true,
		}, 3, 4, seed)
		out, err := Adversarial(tr, core.Params{Model: core.Epoch}, rec)
		if err != nil {
			t.Fatal(err)
		}
		found = !out.AllRecovered()
	}
	if !found {
		t.Fatal("adversarial sweep missed the completion-barrier hazard")
	}
}
