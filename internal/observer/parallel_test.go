package observer

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/queue"
	"repro/internal/sweep"
)

// The campaign-level determinism contract: equal seeds must yield
// identical outcomes — tallies, progress sequence, first failure, and
// minimized repro — at any worker count.

func TestCampaignParallelMatchesSequential(t *testing.T) {
	run := func(parallel int) (CampaignOutcome, []string) {
		tr, rec := traceQueueChecked(t, queue.Config{
			DataBytes: 1 << 13, Design: queue.CWL, Policy: queue.PolicyEpoch, MaxThreads: 2,
		}, 2, 6, 11)
		var progress []string
		out, err := Campaign(tr, core.Params{Model: core.Epoch}, rec, CampaignConfig{
			Scenarios: 300, Seed: 7,
			ProgressEvery: 50,
			Progress: func(o CampaignOutcome) {
				progress = append(progress, o.String())
			},
			Sweep: sweep.Config{Parallel: parallel},
		})
		if err != nil {
			t.Fatal(err)
		}
		return out, progress
	}
	seq, seqProg := run(1)
	par, parProg := run(8)
	if seq.String() != par.String() {
		t.Fatalf("-parallel 8 campaign differs from sequential:\n%s\n%s", par.String(), seq.String())
	}
	if fmt.Sprint(seqProg) != fmt.Sprint(parProg) {
		t.Fatalf("progress sequences differ:\nseq: %v\npar: %v", seqProg, parProg)
	}
	if len(seqProg) != 300/50 {
		t.Fatalf("progress fired %d times, want %d", len(seqProg), 300/50)
	}
}

func TestCampaignFailureReproParallelMatchesSequential(t *testing.T) {
	run := func(parallel int) CampaignOutcome {
		tr, rec := traceQueueChecked(t, queue.Config{
			DataBytes: 1 << 13, Design: queue.CWL, Policy: queue.PolicyEpoch,
			BreakDataHeadOrder: true,
		}, 1, 8, 5)
		out, err := Campaign(tr, core.Params{Model: core.Epoch}, rec, CampaignConfig{
			Scenarios: 400, Seed: 2,
			Sweep: sweep.Config{Parallel: parallel},
		})
		if err != nil {
			t.Fatal(err)
		}
		if out.FirstFailure == nil {
			t.Fatal("broken barrier not found")
		}
		return out
	}
	seq, par := run(1), run(8)
	if seq.FirstFailureClass != par.FirstFailureClass {
		t.Fatalf("first-failure class differs: %v vs %v", seq.FirstFailureClass, par.FirstFailureClass)
	}
	// The minimized repro string is the strongest determinism check: it
	// encodes the exact cut and plan the minimizer converged to.
	if sr, pr := seq.FirstFailure.Repro(), par.FirstFailure.Repro(); sr != pr {
		t.Fatalf("minimized repros differ:\nseq: %s\npar: %s", sr, pr)
	}
	if seq.String() != par.String() {
		t.Fatalf("outcomes differ:\n%s\n%s", seq.String(), par.String())
	}
}

func TestCrashTestParallelMatchesSequential(t *testing.T) {
	run := func(parallel int) Outcome {
		tr, checked := traceQueueChecked(t, queue.Config{
			DataBytes: 1 << 13, Design: queue.CWL, Policy: queue.PolicyEpoch,
		}, 1, 8, 3)
		out, err := CrashTest(tr, core.Params{Model: core.Epoch}, func(im *memory.Image) error {
			_, e := checked(im)
			return e
		}, Config{Samples: 200, Seed: 9, Sweep: sweep.Config{Parallel: parallel}})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq, par := run(1), run(8)
	if seq.String() != par.String() {
		t.Fatalf("-parallel 8 crash test differs from sequential:\n%s\n%s", par.String(), seq.String())
	}
	if seq.Cuts != 202 {
		t.Fatalf("tested %d cuts, want 202", seq.Cuts)
	}
}
