// Package observer implements the paper's *recovery observer*
// abstraction (§4) as an executable failure-injection harness.
//
// The paper reasons "about failure as a recovery observer that
// atomically reads all of persistent memory at the moment of failure";
// the set of states the observer may see is exactly the set of
// downward-closed cuts of the persist-order constraint graph. This
// package samples (or exhaustively enumerates) those cuts for a traced
// execution under a chosen persistency model, materializes each cut
// into an NVRAM image, runs the application's recovery procedure on it,
// and tallies successes and corruption.
//
// Used positively, it verifies that a correctly annotated data
// structure recovers from *every* reachable crash state; used
// negatively (with a deliberately dropped persist barrier), it
// demonstrates that the ordering constraint was load-bearing by finding
// a reachable corrupt state.
package observer

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/memory"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// RecoverFunc runs an application's recovery procedure against a
// post-crash NVRAM image, returning an error when the image is
// unrecoverable (corrupt).
type RecoverFunc func(*memory.Image) error

// Config parameterizes crash sampling.
type Config struct {
	// Samples is the number of random cuts to test. Zero means 100.
	Samples int
	// Seed drives cut sampling.
	Seed int64
	// Rand, when non-nil, supplies the sampling randomness instead of
	// Seed, letting callers share one stream across sweeps and replay
	// them exactly.
	Rand *rand.Rand
	// KeepProbs are the inclusion probabilities to sweep; crashes near
	// the end of execution (keep→1) and near the beginning (keep→0)
	// exercise different recovery paths. Nil means {0.05, 0.25, 0.5,
	// 0.75, 0.95, 0.999}.
	KeepProbs []float64
	// Sweep controls parallel cut evaluation; the zero value uses
	// GOMAXPROCS workers. rec must then be safe for concurrent calls
	// (recovery closures over read-only state are). Outcomes merge in
	// sampling order, so results are identical at any worker count.
	Sweep sweep.Config
}

func (c *Config) normalize() {
	if c.Samples <= 0 {
		c.Samples = 100
	}
	if len(c.KeepProbs) == 0 {
		c.KeepProbs = []float64{0.05, 0.25, 0.5, 0.75, 0.95, 0.999}
	}
}

// Outcome summarizes a crash-testing run.
type Outcome struct {
	// Model echoes the persistency model tested.
	Model core.Model
	// Persists is the node count of the persist DAG.
	Persists int
	// Cuts is the number of crash states tested (including the full and
	// empty cuts, always tested).
	Cuts int
	// Recovered counts crash states whose recovery succeeded.
	Recovered int
	// Corrupt counts crash states whose recovery failed.
	Corrupt int
	// FirstCorruption carries the first recovery error observed, if any.
	FirstCorruption error
}

// AllRecovered reports whether no crash state was corrupt.
func (o Outcome) AllRecovered() bool { return o.Corrupt == 0 }

// String summarizes the outcome for logs.
func (o Outcome) String() string {
	status := "all recovered"
	if o.Corrupt > 0 {
		status = fmt.Sprintf("%d CORRUPT (first: %v)", o.Corrupt, o.FirstCorruption)
	}
	return fmt.Sprintf("model %v: %d persists, %d crash states: %s", o.Model, o.Persists, o.Cuts, status)
}

// CrashTest samples random crash states of the traced execution under
// model parameters p and verifies recovery on each.
func CrashTest(tr *trace.Trace, p core.Params, rec RecoverFunc, cfg Config) (Outcome, error) {
	cfg.normalize()
	g, err := graph.Build(tr, p)
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{Model: p.Model, Persists: g.Len()}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	// Cuts are sampled sequentially — one rng stream, consumed in the
	// same order as ever — then evaluated on the sweep pool. Tallies
	// merge in sampling order, so the outcome (including which
	// corruption is "first") is identical at any worker count.
	cuts := make([]graph.Cut, 0, cfg.Samples+2)
	// The no-failure and nothing-persisted states are always reachable.
	cuts = append(cuts, g.Full(), g.Empty())
	for i := 0; i < cfg.Samples; i++ {
		keep := cfg.KeepProbs[i%len(cfg.KeepProbs)]
		cuts = append(cuts, g.SampleCut(rng, keep))
	}
	err = sweep.Run(len(cuts), cfg.Sweep.Named("crash-cuts"),
		func(i int) (error, error) {
			return rec(g.Materialize(cuts[i])), nil
		},
		func(_ int, recErr error) error {
			out.Cuts++
			if recErr != nil {
				out.Corrupt++
				if out.FirstCorruption == nil {
					out.FirstCorruption = recErr
				}
			} else {
				out.Recovered++
			}
			return nil
		})
	if err != nil {
		return Outcome{}, err
	}
	return out, nil
}

// Exhaustive tests every consistent cut; it refuses graphs with more
// than limit persists (the cut count is exponential). limit <= 0 means
// 24.
func Exhaustive(tr *trace.Trace, p core.Params, rec RecoverFunc, limit int) (Outcome, error) {
	if limit <= 0 {
		limit = 24
	}
	g, err := graph.Build(tr, p)
	if err != nil {
		return Outcome{}, err
	}
	if g.Len() > limit {
		return Outcome{}, fmt.Errorf("observer: %d persists exceeds exhaustive limit %d", g.Len(), limit)
	}
	out := Outcome{Model: p.Model, Persists: g.Len()}
	g.EnumerateCuts(func(c graph.Cut) bool {
		out.Cuts++
		if err := rec(g.Materialize(c)); err != nil {
			out.Corrupt++
			if out.FirstCorruption == nil {
				out.FirstCorruption = err
			}
		} else {
			out.Recovered++
		}
		return true
	})
	return out, nil
}

// FindCorruption hunts for a reachable corrupt state, sampling up to
// cfg.Samples cuts, and returns the first corruption error found (nil
// if none surfaced). It is the negative-testing entry point: a dropped
// barrier is proven load-bearing by a non-nil result.
func FindCorruption(tr *trace.Trace, p core.Params, rec RecoverFunc, cfg Config) (error, error) {
	out, err := CrashTest(tr, p, rec, cfg)
	if err != nil {
		return nil, err
	}
	return out.FirstCorruption, nil
}

// Adversarial runs the deterministic single-victim crash sweep: for
// every persist p, it tests the *latest* crash at which p has not yet
// persisted (everything except p and its dependents). Any recovery
// invariant that hinges on one persist being ordered before others is
// violated by exactly one of these cuts, so — unlike random sampling —
// a clean sweep is a strong statement. The cost is one graph walk and
// one recovery per persist.
func Adversarial(tr *trace.Trace, p core.Params, rec RecoverFunc) (Outcome, error) {
	g, err := graph.Build(tr, p)
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{Model: p.Model, Persists: g.Len()}
	try := func(c graph.Cut) {
		out.Cuts++
		if err := rec(g.Materialize(c)); err != nil {
			out.Corrupt++
			if out.FirstCorruption == nil {
				out.FirstCorruption = err
			}
		} else {
			out.Recovered++
		}
	}
	try(g.Full())
	try(g.Empty())
	for v := 0; v < g.Len(); v++ {
		try(g.DropCut(graph.NodeID(v)))
	}
	return out, nil
}
