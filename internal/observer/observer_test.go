package observer

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/memory"
	"repro/internal/queue"
	"repro/internal/trace"
)

// traceQueue runs a queue workload and returns the trace + recovery
// adapter.
func traceQueue(t *testing.T, cfg queue.Config, threads, perThread int, seed int64) (*trace.Trace, RecoverFunc) {
	t.Helper()
	tr := &trace.Trace{}
	m := exec.NewMachine(exec.Config{Threads: threads, Seed: seed, Sink: tr})
	s := m.SetupThread()
	q, err := queue.New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	meta := q.Meta()
	m.Run(func(th *exec.Thread) {
		for i := 0; i < perThread; i++ {
			id := uint64(th.TID())*1000 + uint64(i)
			q.Insert(th, queue.MakePayload(id, 48))
		}
	})
	return tr, func(im *memory.Image) error {
		_, err := queue.Recover(im, meta)
		return err
	}
}

// modelFor maps an annotation policy to the persistency model it
// targets.
func modelFor(p queue.Policy) core.Model {
	switch p {
	case queue.PolicyStrict:
		return core.Strict
	case queue.PolicyStrand:
		return core.Strand
	default:
		return core.Epoch
	}
}

func TestAllPoliciesRecoverUnderTheirModel(t *testing.T) {
	for _, d := range []queue.Design{queue.CWL, queue.TwoLock} {
		for _, pol := range queue.Policies {
			for _, threads := range []int{1, 3} {
				tr, rec := traceQueue(t, queue.Config{DataBytes: 1 << 13, Design: d, Policy: pol}, threads, 6, 11)
				out, err := CrashTest(tr, core.Params{Model: modelFor(pol)}, rec, Config{Samples: 120, Seed: 1})
				if err != nil {
					t.Fatal(err)
				}
				if !out.AllRecovered() {
					t.Errorf("%v/%v/%dT: %v", d, pol, threads, out)
				}
				if out.Cuts < 100 {
					t.Errorf("too few cuts tested: %d", out.Cuts)
				}
			}
		}
	}
}

func TestBrokenDataHeadOrderIsCaught(t *testing.T) {
	// Dropping Algorithm 1's line-8 barrier must expose a crash state
	// where the head pointer covers unpersisted data.
	tr, rec := traceQueue(t, queue.Config{
		DataBytes: 1 << 13, Design: queue.CWL, Policy: queue.PolicyEpoch,
		BreakDataHeadOrder: true,
	}, 1, 8, 3)
	corr, err := FindCorruption(tr, core.Params{Model: core.Epoch}, rec, Config{Samples: 400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if corr == nil {
		t.Fatal("removing the data→head barrier should be catchable")
	}
	if !queue.IsCorruption(corr) {
		t.Fatalf("unexpected error type: %v", corr)
	}
}

func TestBrokenOrderHarmlessUnderStrict(t *testing.T) {
	// The same mis-annotated queue is still safe under *strict*
	// persistency: SC ordering alone protects it. This is the paper's
	// core trade-off in executable form.
	tr, rec := traceQueue(t, queue.Config{
		DataBytes: 1 << 13, Design: queue.CWL, Policy: queue.PolicyEpoch,
		BreakDataHeadOrder: true,
	}, 1, 8, 3)
	out, err := CrashTest(tr, core.Params{Model: core.Strict}, rec, Config{Samples: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllRecovered() {
		t.Fatalf("strict persistency should tolerate missing barriers: %v", out)
	}
}

func TestStrictAnnotationsUnsafeUnderEpoch(t *testing.T) {
	// Running the unannotated (strict-policy) queue under epoch
	// persistency must be unsafe: relaxation requires annotation.
	tr, rec := traceQueue(t, queue.Config{
		DataBytes: 1 << 13, Design: queue.CWL, Policy: queue.PolicyStrict,
	}, 1, 8, 5)
	corr, err := FindCorruption(tr, core.Params{Model: core.Epoch}, rec, Config{Samples: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if corr == nil {
		t.Fatal("epoch persistency without barriers should corrupt")
	}
}

func TestTwoLockCompletionBarrierIsLoadBearing(t *testing.T) {
	// Algorithm 1 as printed has no barrier between a 2LC entry copy and
	// its insert-list completion; this reproduction adds one (see
	// queue.Config.OmitCompletionBarrier). Verify it is load-bearing:
	// without it, a multi-threaded run reaches a corrupt crash state.
	found := false
	for seed := int64(0); seed < 10 && !found; seed++ {
		tr, rec := traceQueue(t, queue.Config{
			DataBytes: 1 << 13, Design: queue.TwoLock, Policy: queue.PolicyEpoch,
			OmitCompletionBarrier: true,
		}, 3, 6, seed)
		corr, err := FindCorruption(tr, core.Params{Model: core.Epoch}, rec, Config{Samples: 600, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		found = corr != nil
	}
	if !found {
		t.Fatal("omitting the 2LC completion barrier should be catchable")
	}
}

func TestExhaustiveSmallQueue(t *testing.T) {
	tr, rec := traceQueue(t, queue.Config{DataBytes: 1 << 12, Design: queue.CWL, Policy: queue.PolicyEpoch}, 1, 2, 1)
	out, err := Exhaustive(tr, core.Params{Model: core.Epoch}, rec, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllRecovered() {
		t.Fatalf("exhaustive: %v", out)
	}
	if out.Cuts < 4 {
		t.Fatalf("suspiciously few cuts: %d", out.Cuts)
	}
}

func TestExhaustiveRefusesLargeGraphs(t *testing.T) {
	tr, rec := traceQueue(t, queue.Config{DataBytes: 1 << 13, Design: queue.CWL, Policy: queue.PolicyEpoch}, 1, 10, 1)
	if _, err := Exhaustive(tr, core.Params{Model: core.Epoch}, rec, 10); err == nil {
		t.Fatal("exhaustive should refuse large graphs")
	}
}

func TestInsertRemoveCrashSafety(t *testing.T) {
	// Interleaved producers and a consumer: any crash state must still
	// recover cleanly (a lost tail persist re-delivers an entry — at
	// least once — but never corrupts).
	tr := &trace.Trace{}
	m := exec.NewMachine(exec.Config{Threads: 3, Seed: 21, Sink: tr})
	s := m.SetupThread()
	q, err := queue.New(s, queue.Config{DataBytes: 1 << 13, Design: queue.CWL, Policy: queue.PolicyEpoch})
	if err != nil {
		t.Fatal(err)
	}
	meta := q.Meta()
	m.Run(func(th *exec.Thread) {
		if th.TID() == 2 {
			for i := 0; i < 12; i++ {
				q.Remove(th) // may be empty; that's fine
			}
			return
		}
		for i := 0; i < 8; i++ {
			q.Insert(th, queue.MakePayload(uint64(th.TID())*1000+uint64(i), 48))
		}
	})
	rec := func(im *memory.Image) error {
		_, err := queue.Recover(im, meta)
		return err
	}
	out, err := CrashTest(tr, core.Params{Model: core.Epoch}, rec, Config{Samples: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllRecovered() {
		t.Fatalf("insert/remove crash safety: %v", out)
	}
}

func TestStrandInsertRemoveCrashSafety(t *testing.T) {
	// Strand persistency with buffer reuse: inserts overwrite slots
	// freed by removes, so the entry and head persists must be ordered
	// after the tail persist (§5.3's read-then-barrier recipe in
	// queue.strandOrderingRead). A small buffer forces reuse.
	tr := &trace.Trace{}
	m := exec.NewMachine(exec.Config{Threads: 2, Seed: 31, Sink: tr})
	s := m.SetupThread()
	q, err := queue.New(s, queue.Config{DataBytes: 512, Design: queue.CWL, Policy: queue.PolicyStrand})
	if err != nil {
		t.Fatal(err)
	}
	meta := q.Meta()
	m.Run(func(th *exec.Thread) {
		for i := 0; i < 12; i++ {
			if th.TID() == 0 {
				q.Insert(th, queue.MakePayload(uint64(i), 48))
			} else {
				q.Remove(th)
			}
		}
	})
	rec := func(im *memory.Image) error {
		_, err := queue.Recover(im, meta)
		return err
	}
	out, err := CrashTest(tr, core.Params{Model: core.Strand}, rec, Config{Samples: 400, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllRecovered() {
		t.Fatalf("strand insert/remove: %v", out)
	}
}

func TestTwoLockUnsafeUnderEpochTSO(t *testing.T) {
	// BPFS-style conflict detection (EpochTSO) cannot see conflicts on
	// volatile addresses, so Two-Lock Concurrent's insert-list handoff
	// no longer orders a non-oldest thread's entry persists before the
	// covering head persist: a reachable corruption, and exactly the
	// kind of gap the paper's §5.2 discussion of BPFS warns about.
	found := false
	for seed := int64(0); seed < 12 && !found; seed++ {
		tr, rec := traceQueue(t, queue.Config{
			DataBytes: 1 << 13, Design: queue.TwoLock, Policy: queue.PolicyEpoch,
		}, 3, 6, seed)
		corr, err := FindCorruption(tr, core.Params{Model: core.EpochTSO}, rec, Config{Samples: 600, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		found = corr != nil
	}
	if !found {
		t.Fatal("2LC under TSO-style conflict detection should reach corruption")
	}
	// CWL is safe even under EpochTSO: each entry's head persist is
	// issued by the inserting thread itself, so only thread-local
	// barriers and strong persist atomicity — both still enforced —
	// protect recovery.
	tr, rec := traceQueue(t, queue.Config{DataBytes: 1 << 13, Design: queue.CWL, Policy: queue.PolicyEpoch}, 3, 6, 4)
	out, err := CrashTest(tr, core.Params{Model: core.EpochTSO}, rec, Config{Samples: 400, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllRecovered() {
		t.Fatalf("CWL under EpochTSO should stay safe: %v", out)
	}
}

func TestFullCutMatchesMachineImage(t *testing.T) {
	// Materializing the full cut of the persist DAG must reproduce the
	// machine's final persistent image exactly — the DAG captures every
	// persist with its value.
	tr := &trace.Trace{}
	m := exec.NewMachine(exec.Config{Threads: 2, Seed: 13, Sink: tr})
	s := m.SetupThread()
	q, err := queue.New(s, queue.Config{DataBytes: 1 << 13, Design: queue.CWL, Policy: queue.PolicyEpoch})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(func(th *exec.Thread) {
		for i := 0; i < 5; i++ {
			q.Insert(th, queue.MakePayload(uint64(th.TID()*100+i), 72))
		}
	})
	g, err := graph.Build(tr, core.Params{Model: core.Epoch})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Materialize(g.Full()).Equal(m.PersistentImage()) {
		t.Fatal("full-cut image differs from the machine's persistent memory")
	}
}

func TestOutcomeString(t *testing.T) {
	o := Outcome{Model: core.Epoch, Persists: 3, Cuts: 10, Recovered: 10}
	if o.String() == "" || !o.AllRecovered() {
		t.Fatal("outcome formatting")
	}
	o.Corrupt = 1
	o.FirstCorruption = &queue.CorruptionError{Offset: 1, Reason: "x"}
	if o.AllRecovered() {
		t.Fatal("AllRecovered with corrupt > 0")
	}
	if o.String() == "" {
		t.Fatal("corrupt outcome formatting")
	}
}
