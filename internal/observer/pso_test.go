package observer

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/memory"
	"repro/internal/queue"
	"repro/internal/trace"
)

// The §4.1/§4.2 interaction, executable: on a relaxed-consistency (PSO)
// machine, store *visibility* can reorder across persist barriers, so
// persistency annotations alone no longer guarantee recovery — the
// programmer must add consistency fences too ("the programmer is now
// responsible for inserting the correct memory barriers", §4.1).

func tracePSOQueue(t *testing.T, fences bool, policy queue.Policy, seed int64) (*trace.Trace, RecoverFunc) {
	t.Helper()
	tr := &trace.Trace{}
	m := exec.NewMachine(exec.Config{Threads: 2, Seed: seed, Sink: tr, Consistency: exec.PSO})
	s := m.SetupThread()
	q, err := queue.New(s, queue.Config{
		DataBytes: 1 << 13, Design: queue.CWL, Policy: policy, Fences: fences,
	})
	if err != nil {
		t.Fatal(err)
	}
	meta := q.Meta()
	m.Run(func(th *exec.Thread) {
		for i := 0; i < 6; i++ {
			q.Insert(th, queue.MakePayload(uint64(th.TID())*100+uint64(i), 48))
		}
	})
	return tr, func(im *memory.Image) error {
		_, err := queue.Recover(im, meta)
		return err
	}
}

func TestPSOFencedQueueRecovers(t *testing.T) {
	for _, pol := range []queue.Policy{queue.PolicyStrict, queue.PolicyEpoch, queue.PolicyStrand} {
		model := modelFor(pol)
		tr, rec := tracePSOQueue(t, true, pol, 5)
		out, err := CrashTest(tr, core.Params{Model: model}, rec, Config{Samples: 300, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !out.AllRecovered() {
			t.Errorf("PSO + fences + %v: %v", pol, out)
		}
	}
}

func TestPSOUnfencedQueueCorrupts(t *testing.T) {
	// Without fences, the head store can become visible (and persist)
	// before the entry's stores — even under strict persistency, whose
	// ordering IS the visible order. The corruption must be reachable
	// for both strict and epoch targets.
	for _, pol := range []queue.Policy{queue.PolicyStrict, queue.PolicyEpoch} {
		model := modelFor(pol)
		found := false
		for seed := int64(0); seed < 15 && !found; seed++ {
			tr, rec := tracePSOQueue(t, false, pol, seed)
			corr, err := FindCorruption(tr, core.Params{Model: model}, rec, Config{Samples: 500, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			found = corr != nil
		}
		if !found {
			t.Errorf("PSO without fences should corrupt under %v", pol)
		}
	}
}

func TestPSOQueueRuntimeStillCorrect(t *testing.T) {
	// Even unfenced, the *runtime* queue semantics hold (the engine's
	// drain-on-overlap and lock fences preserve program semantics);
	// only crash states are endangered. The full-run image recovers.
	tr, rec := tracePSOQueue(t, false, queue.PolicyEpoch, 3)
	g := tr.Persists()
	if len(g) == 0 {
		t.Fatal("no persists traced")
	}
	// Full image = materialization of all persists; recovery succeeds.
	out, err := CrashTest(tr, core.Params{Model: core.Epoch}, rec, Config{Samples: 0, Seed: 1, KeepProbs: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	_ = out // the full cut is always included; reaching here without panic suffices
}
