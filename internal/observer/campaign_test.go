package observer

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/memory"
	"repro/internal/queue"
	"repro/internal/trace"
)

// traceQueueChecked runs a queue workload and returns the trace plus a
// campaign-grade recovery adapter: salvage recovery followed by
// application-invariant validation (every surviving payload must be
// one the workload actually inserted, in offset order, no duplicates).
func traceQueueChecked(t *testing.T, cfg queue.Config, threads, perThread int, seed int64) (*trace.Trace, CheckedRecoverFunc) {
	t.Helper()
	tr := &trace.Trace{}
	m := exec.NewMachine(exec.Config{Threads: threads, Seed: seed, Sink: tr})
	s := m.SetupThread()
	q, err := queue.New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	meta := q.Meta()
	// Precomputed outside m.Run: simulated threads are goroutines, and
	// a shared map write inside them is a (host-level) data race.
	expect := make(map[string]bool)
	for tid := 0; tid < threads; tid++ {
		for i := 0; i < perThread; i++ {
			expect[string(queue.MakePayload(uint64(tid)*1000+uint64(i), 48))] = true
		}
	}
	m.Run(func(th *exec.Thread) {
		for i := 0; i < perThread; i++ {
			id := uint64(th.TID())*1000 + uint64(i)
			q.Insert(th, queue.MakePayload(id, 48))
		}
	})
	return tr, func(im *memory.Image) (fault.RecoveryReport, error) {
		entries, rep, err := queue.RecoverSalvage(im, meta)
		if err != nil {
			return rep, err
		}
		var lastOff uint64
		for i, e := range entries {
			if !expect[string(e.Payload)] {
				return rep, fmt.Errorf("entry %d carries a payload never inserted", i)
			}
			if i > 0 && e.Offset <= lastOff {
				return rep, fmt.Errorf("entry %d out of order", i)
			}
			lastOff = e.Offset
		}
		return rep, nil
	}
}

func TestCampaignQueueCleanUnderFaults(t *testing.T) {
	for _, d := range []queue.Design{queue.CWL, queue.TwoLock} {
		tr, rec := traceQueueChecked(t, queue.Config{
			DataBytes: 1 << 13, Design: d, Policy: queue.PolicyEpoch, MaxThreads: 2,
		}, 2, 6, 11)
		out, err := Campaign(tr, core.Params{Model: core.Epoch}, rec, CampaignConfig{
			Scenarios: 300, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Clean() {
			t.Fatalf("design %v: campaign not clean: %s\nfirst: %v (%v)",
				d, out.String(), out.FirstFailure, out.FirstError)
		}
		if out.Masked == 0 || out.Salvaged == 0 {
			t.Fatalf("design %v: degenerate campaign (no masked or no salvaged): %s", d, out.String())
		}
		if out.Scenarios != 300 {
			t.Fatalf("ran %d scenarios, want 300", out.Scenarios)
		}
	}
}

func TestCampaignDeterministicFromSeed(t *testing.T) {
	run := func() CampaignOutcome {
		tr, rec := traceQueueChecked(t, queue.Config{
			DataBytes: 1 << 13, Design: queue.CWL, Policy: queue.PolicyEpoch,
		}, 1, 8, 3)
		out, err := Campaign(tr, core.Params{Model: core.Epoch}, rec, CampaignConfig{Scenarios: 120, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.String() != b.String() {
		t.Fatalf("same seed, different campaigns:\n%s\n%s", a.String(), b.String())
	}
}

func TestCampaignFindsBrokenBarrierAndReplays(t *testing.T) {
	build := func() (*trace.Trace, CheckedRecoverFunc) {
		return traceQueueChecked(t, queue.Config{
			DataBytes: 1 << 13, Design: queue.CWL, Policy: queue.PolicyEpoch,
			BreakDataHeadOrder: true,
		}, 1, 8, 5)
	}
	tr, rec := build()
	out, err := Campaign(tr, core.Params{Model: core.Epoch}, rec, CampaignConfig{Scenarios: 400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.AnnotationCorrupt == 0 || out.FirstFailure == nil {
		t.Fatalf("broken barrier not found: %s", out.String())
	}
	if out.FirstFailureClass != AnnotationCorrupt {
		t.Fatalf("first failure class %v, want annotation-corrupt", out.FirstFailureClass)
	}
	// The minimized repro must survive a text round trip and reproduce
	// the failure deterministically on a freshly rebuilt workload.
	line := out.FirstFailure.Repro()
	parsed, err := fault.ParseRepro(line)
	if err != nil {
		t.Fatalf("emitted repro %q does not parse: %v", line, err)
	}
	tr2, rec2 := build()
	class, rerr := Replay(tr2, core.Params{Model: core.Epoch}, rec2, parsed, CampaignConfig{}.Device)
	if rerr == nil || class != AnnotationCorrupt {
		t.Fatalf("replay of %q = %v (%v), want annotation-corrupt with error", line, class, rerr)
	}
}

// TestMinimizeScenarioNeverGrows pins the minimizer guarantee: the
// minimized plan and cut are never larger than what the campaign
// sampled, and the minimized scenario still fails.
func TestMinimizeScenarioNeverGrows(t *testing.T) {
	tr, _ := traceQueueChecked(t, queue.Config{
		DataBytes: 1 << 13, Design: queue.CWL, Policy: queue.PolicyEpoch,
	}, 1, 6, 17)
	g, err := graph.Build(tr, core.Params{Model: core.Epoch})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Full()
	p := fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Retry, Node: 1, Attempts: 2},
		{Kind: fault.Drop, Node: fault.Frontier(g, c)[0]},
		{Kind: fault.FlipSilent, Addr: memory.PersistentBase, Bit: 3},
	}}
	// Synthetic failure predicate: the scenario "fails" while it keeps
	// a Drop fault and node 0 in the cut.
	bad := func(c2 graph.Cut, p2 fault.Plan) bool {
		hasDrop := false
		for _, f := range p2.Faults {
			hasDrop = hasDrop || f.Kind == fault.Drop
		}
		return hasDrop && c2.Included[0]
	}
	mc, mp := MinimizeScenario(g, c, p, bad, 10000)
	if !bad(mc, mp) {
		t.Fatal("minimized scenario no longer fails")
	}
	if mp.Len() > p.Len() || mc.Size() > c.Size() {
		t.Fatalf("minimization grew the scenario: plan %d→%d, cut %d→%d",
			p.Len(), mp.Len(), c.Size(), mc.Size())
	}
	if mp.Len() != 1 {
		t.Fatalf("minimized plan has %d faults, want exactly the load-bearing drop", mp.Len())
	}
	// The cut should have shrunk substantially: only node 0's downward
	// closure is load-bearing.
	if mc.Size() >= c.Size() {
		t.Fatalf("cut did not shrink: %d of %d nodes", mc.Size(), c.Size())
	}
	// Budget exhaustion degrades to the unminimized scenario, never an
	// invalid one.
	bc, bp := MinimizeScenario(g, c, p, bad, 1)
	if !bad(bc, bp) || bp.Len() > p.Len() {
		t.Fatal("budgeted minimization broke the scenario")
	}
}
