package core

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestDetectEpochRacesBasics(t *testing.T) {
	// T0: persist A in an epoch that also touches a shared volatile
	// flag; T1 reads the flag in an epoch with its own persist: a
	// persist-epoch race.
	var b tb
	b.store(0, paddr(0))
	b.store(0, vaddr(0)) // flag write (same epoch as A's persist)
	b.load(1, vaddr(0))  // racing read
	b.store(1, paddr(1)) // T1's epoch persists too
	rep, err := DetectEpochRaces(&b.tr, RaceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 1 || len(rep.Races) != 1 {
		t.Fatalf("races = %+v", rep)
	}
	r := rep.Races[0]
	if r.FirstTID != 0 || r.SecondTID != 1 || r.Addr != vaddr(0) {
		t.Fatalf("race details: %+v", r)
	}
	if !strings.Contains(r.String(), "persist-epoch race") {
		t.Fatal("race string")
	}
}

func TestNoRaceWhenBarriersSeparate(t *testing.T) {
	// The paper's race-free discipline: barriers around the
	// synchronization accesses put them in epochs without persists.
	var b tb
	b.store(0, paddr(0))
	b.barrier(0)
	b.store(0, vaddr(0)) // flag write: its epoch has no persist
	b.load(1, vaddr(0))
	b.barrier(1)
	b.store(1, paddr(1))
	rep, err := DetectEpochRaces(&b.tr, RaceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 0 {
		t.Fatalf("expected no races, got %+v", rep)
	}
}

func TestNoRaceWithoutPersists(t *testing.T) {
	var b tb
	b.store(0, vaddr(0))
	b.load(1, vaddr(0))
	b.store(1, vaddr(0))
	rep, err := DetectEpochRaces(&b.tr, RaceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 0 {
		t.Fatalf("volatile-only trace raced: %+v", rep)
	}
}

func TestSameThreadIsNotARace(t *testing.T) {
	var b tb
	b.store(0, paddr(0))
	b.store(0, vaddr(0))
	b.load(0, vaddr(0))
	b.store(0, paddr(1))
	rep, err := DetectEpochRaces(&b.tr, RaceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 0 {
		t.Fatalf("same-thread accesses raced: %+v", rep)
	}
}

func TestRaceLimit(t *testing.T) {
	var b tb
	for i := 0; i < 40; i++ {
		tid := int32(i % 2)
		b.store(tid, paddr(uint64(10+i)))
		b.rmw(tid, vaddr(0))
	}
	rep, err := DetectEpochRaces(&b.tr, RaceConfig{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) != 5 {
		t.Fatalf("limit not applied: %d", len(rep.Races))
	}
	if rep.Total <= 5 {
		t.Fatalf("total should exceed limit: %d", rep.Total)
	}
}

func TestRaceConfigValidation(t *testing.T) {
	var b tb
	b.store(0, paddr(0))
	if _, err := DetectEpochRaces(&b.tr, RaceConfig{TrackingGranularity: 12}); err == nil {
		t.Fatal("bad granularity accepted")
	}
}

func TestRaceGranularityFalseSharing(t *testing.T) {
	// Disjoint addresses in one 64-byte block race only under coarse
	// tracking.
	var b tb
	b.tr.Emit(trace.Event{TID: 0, Kind: trace.Store, Addr: paddr(0), Size: 8, Val: 1})
	b.tr.Emit(trace.Event{TID: 0, Kind: trace.Store, Addr: paddr(0) + 0, Size: 8, Val: 1})
	// T1 writes 8 bytes beyond T0's word but within its 64B block, and
	// both epochs persist.
	b.tr.Emit(trace.Event{TID: 1, Kind: trace.Store, Addr: paddr(0) + 8, Size: 8, Val: 1})
	fine, err := DetectEpochRaces(&b.tr, RaceConfig{TrackingGranularity: 8})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := DetectEpochRaces(&b.tr, RaceConfig{TrackingGranularity: 64})
	if err != nil {
		t.Fatal(err)
	}
	if fine.Total != 0 {
		t.Fatalf("fine tracking raced: %+v", fine)
	}
	if coarse.Total == 0 {
		t.Fatal("coarse tracking should flag the false-shared race")
	}
}
