package core

import (
	"math/rand"
	"testing"

	"repro/internal/memory"
)

func randCtx(rng *rand.Rand) Ctx {
	lvl := int64(rng.Intn(10))
	if lvl == 0 {
		return zeroCtx
	}
	var src memory.BlockID
	if rng.Intn(4) == 0 {
		src = memory.NoBlock
	} else {
		src = memory.BlockID(rng.Intn(4))
	}
	c := Ctx{Lvl: lvl, Src: src}
	if src == memory.NoBlock {
		c.Lvl2 = lvl
	} else {
		c.Lvl2 = int64(rng.Intn(int(lvl + 1)))
	}
	return c
}

func TestZeroCtxValid(t *testing.T) {
	if !zeroCtx.valid() {
		t.Fatal("zeroCtx invalid")
	}
	if zeroCtx.Lvl != 0 || zeroCtx.Excluding(3) != 0 {
		t.Fatal("zeroCtx should contribute nothing")
	}
}

func TestPersistCtx(t *testing.T) {
	c := persistCtx(5, 2)
	if !c.valid() || c.Lvl != 5 || c.Src != 2 || c.Lvl2 != 0 {
		t.Fatalf("persistCtx wrong: %+v", c)
	}
	if c.Excluding(2) != 0 {
		t.Fatal("excluding own block should drop the level")
	}
	if c.Excluding(3) != 5 {
		t.Fatal("excluding another block should keep the level")
	}
}

func TestMergeBasics(t *testing.T) {
	a := persistCtx(5, 1)
	b := persistCtx(3, 2)
	m := merge(a, b)
	if m.Lvl != 5 || m.Src != 1 || m.Lvl2 != 3 {
		t.Fatalf("merge = %+v", m)
	}
	if m.Excluding(1) != 3 {
		t.Fatalf("Excluding(1) = %d", m.Excluding(1))
	}
	if m.Excluding(2) != 5 {
		t.Fatalf("Excluding(2) = %d", m.Excluding(2))
	}
}

func TestMergeTieDistinctSources(t *testing.T) {
	m := merge(persistCtx(4, 1), persistCtx(4, 2))
	if m.Src != memory.NoBlock || m.Lvl != 4 || m.Lvl2 != 4 {
		t.Fatalf("tie merge = %+v", m)
	}
	if m.Excluding(1) != 4 || m.Excluding(2) != 4 {
		t.Fatal("tie must not be excludable by either source")
	}
}

func TestMergeTieSameSource(t *testing.T) {
	m := merge(Ctx{Lvl: 4, Src: 1, Lvl2: 2}, Ctx{Lvl: 4, Src: 1, Lvl2: 3})
	if m.Src != 1 || m.Lvl != 4 || m.Lvl2 != 3 {
		t.Fatalf("same-source tie merge = %+v", m)
	}
}

func TestMergeWithZero(t *testing.T) {
	a := Ctx{Lvl: 7, Src: 2, Lvl2: 1}
	if merge(a, zeroCtx) != a || merge(zeroCtx, a) != a {
		t.Fatal("merge with zero should be identity")
	}
}

func TestMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		a, b := randCtx(rng), randCtx(rng)
		m := merge(a, b)
		if !m.valid() {
			t.Fatalf("merge(%+v,%+v) = %+v invalid", a, b, m)
		}
		// Commutativity.
		if m != merge(b, a) {
			t.Fatalf("merge not commutative for %+v, %+v", a, b)
		}
		// Lvl is the max.
		want := a.Lvl
		if b.Lvl > want {
			want = b.Lvl
		}
		if m.Lvl != want {
			t.Fatalf("merge Lvl = %d, want %d", m.Lvl, want)
		}
		// Soundness: Excluding never drops a constraint either input
		// held — for every block, merged exclusion >= each input's.
		for blk := memory.BlockID(0); blk < 5; blk++ {
			if m.Excluding(blk) < a.Excluding(blk) || m.Excluding(blk) < b.Excluding(blk) {
				t.Fatalf("merge(%+v,%+v).Excluding(%d) = %d under-approximates (%d, %d)",
					a, b, blk, m.Excluding(blk), a.Excluding(blk), b.Excluding(blk))
			}
		}
		// Idempotence.
		if merge(a, a) != a {
			t.Fatalf("merge not idempotent for %+v", a)
		}
	}
}

func TestMergeAll(t *testing.T) {
	if mergeAll() != zeroCtx {
		t.Fatal("empty mergeAll should be zero")
	}
	m := mergeAll(persistCtx(1, 0), persistCtx(3, 1), persistCtx(2, 2))
	if m.Lvl != 3 || m.Src != 1 || m.Lvl2 != 2 {
		t.Fatalf("mergeAll = %+v", m)
	}
}
