package core

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/trace"
)

// Persist-epoch race detection (§5.2): "We define a persist-epoch race
// as persist epochs from two or more threads that include memory
// accesses that race (to volatile or persistent memory), including
// synchronization races, and at least two epochs include persist
// operations." Races are legal — the paper's "Racing Epochs"
// configuration introduces them deliberately to buy concurrency — but
// they are exactly where epoch persistency's "astonishing" orderings
// live, so software wants a detector for them.
//
// The detector replays the trace through the epoch-persistency state
// machine and flags conflicts that actually leave persists unordered
// (not merely syntactic conflicts, which also occur in properly
// barrier-synchronized code):
//
//   - receiver-side: a conflicting access imports persist-ordering
//     context that the receiving thread has not yet bound (it will bind
//     only at the next barrier), while the receiving epoch itself
//     persists — those persists race with the imported ones;
//   - exporter-side: a store exports while its epoch holds persists that
//     are not yet bound into the thread's exported context (they sit in
//     epochMax until the next barrier) — a conflicting reader's
//     persisting epoch races with them.
//
// It is a detector, not a verifier: contexts summarize dependence
// levels, so exotic chains can in principle over- or under-flag; the
// queue workloads and tests pin the behaviors that matter.

// Race describes one detected persist-epoch race.
type Race struct {
	// First/Second are the trace sequence numbers of the conflicting
	// accesses (First earlier).
	First, Second uint64
	// Addr is the conflicting address.
	Addr memory.Addr
	// FirstTID/SecondTID are the racing threads.
	FirstTID, SecondTID int32
	// FirstEpoch/SecondEpoch are per-thread epoch indexes.
	FirstEpoch, SecondEpoch int
}

// String renders the race for reports.
func (r Race) String() string {
	return fmt.Sprintf("persist-epoch race on %#x: t%d/e%d (#%d) vs t%d/e%d (#%d)",
		uint64(r.Addr), r.FirstTID, r.FirstEpoch, r.First, r.SecondTID, r.SecondEpoch, r.Second)
}

// RaceReport summarizes detection over a trace.
type RaceReport struct {
	// Races holds up to Limit examples.
	Races []Race
	// Total counts all racing conflict pairs (may exceed len(Races)).
	Total int
	// Epochs counts persist epochs examined.
	Epochs int
}

// RaceConfig parameterizes detection.
type RaceConfig struct {
	// TrackingGranularity for conflicts; 0 means 8.
	TrackingGranularity uint64
	// Limit caps stored examples; 0 means 16.
	Limit int
}

type epochKey struct {
	tid   int32
	epoch int
}

// exportMark remembers the last conflicting exporter of a block.
type exportMark struct {
	seq      uint64
	tid      int32
	epoch    int
	residual bool // exporter's epoch held unbound persists at export
}

// DetectEpochRaces scans the trace for persist-epoch races under epoch
// persistency.
func DetectEpochRaces(tr *trace.Trace, cfg RaceConfig) (RaceReport, error) {
	if cfg.TrackingGranularity == 0 {
		cfg.TrackingGranularity = memory.WordSize
	}
	if !memory.IsPowerOfTwo(cfg.TrackingGranularity) {
		return RaceReport{}, fmt.Errorf("core: bad tracking granularity %d", cfg.TrackingGranularity)
	}
	if cfg.Limit <= 0 {
		cfg.Limit = 16
	}

	// Pass 1: which (thread, epoch) contain persists?
	persistsIn := make(map[epochKey]bool)
	epochOf := make(map[int32]int)
	bump := func(e trace.Event) bool {
		if e.Kind == trace.PersistBarrier || e.Kind == trace.PersistSync || e.Kind == trace.NewStrand {
			epochOf[e.TID]++
			return true
		}
		return false
	}
	for e := range tr.All() {
		if bump(e) {
			continue
		}
		if e.IsPersist() {
			persistsIn[epochKey{e.TID, epochOf[e.TID]}] = true
		}
	}
	report := RaceReport{Epochs: len(persistsIn)}

	// Pass 2: replay through the epoch state machine, checking each
	// conflicting access before feeding it to the simulator.
	sim := MustNewSim(Params{Model: Epoch, TrackingGranularity: cfg.TrackingGranularity})
	type blockMarks struct {
		write, read exportMark
		hasW, hasR  bool
	}
	marks := make(map[memory.BlockID]*blockMarks)
	epochOf = make(map[int32]int)
	note := func(m exportMark, e trace.Event) {
		report.Total++
		if len(report.Races) < cfg.Limit {
			report.Races = append(report.Races, Race{
				First: m.seq, Second: e.Seq, Addr: e.Addr,
				FirstTID: m.tid, SecondTID: e.TID,
				FirstEpoch: m.epoch, SecondEpoch: epochOf[e.TID],
			})
		}
	}
	for e := range tr.All() {
		if bump(e) {
			if err := sim.Feed(e); err != nil {
				return RaceReport{}, err
			}
			continue
		}
		if !e.Kind.IsAccess() {
			if err := sim.Feed(e); err != nil {
				return RaceReport{}, err
			}
			continue
		}
		t := sim.thread(e.TID)
		me := epochKey{e.TID, epochOf[e.TID]}
		first, last := memory.BlockSpan(e.Addr, int(e.Size), cfg.TrackingGranularity)
		check := func(m exportMark, incoming Ctx, e trace.Event) {
			if m.tid == e.TID {
				return
			}
			// Receiver-side: imported context not yet bound, this epoch
			// persists, and the exporter's epoch persisted.
			receiverRaces := persistsIn[me] && incoming.Lvl > t.active.Lvl && persistsIn[epochKey{m.tid, m.epoch}]
			// Exporter-side: the exporter left unbound persists behind.
			exporterRaces := persistsIn[me] && m.residual && persistsIn[epochKey{m.tid, m.epoch}]
			if receiverRaces || exporterRaces {
				note(m, e)
			}
		}
		for b := first; b <= last; b++ {
			bs := sim.block(b)
			bm := marks[b]
			if bm == nil {
				continue
			}
			// Conflict with the last store (store→load or store→store).
			if bm.hasW {
				check(bm.write, bs.writer, e)
			}
			// Load-before-store conflict.
			if bm.hasR && e.Kind.HasStoreSemantics() {
				check(bm.read, bs.reader, e)
			}
		}
		// Record this access as the blocks' latest potential exporter.
		mark := exportMark{seq: e.Seq, tid: e.TID, epoch: epochOf[e.TID], residual: t.epochMax.Lvl > 0}
		for b := first; b <= last; b++ {
			bm := marks[b]
			if bm == nil {
				bm = &blockMarks{}
				marks[b] = bm
			}
			if e.Kind.HasStoreSemantics() {
				bm.write, bm.hasW = mark, true
				bm.hasR = false
			} else {
				bm.read, bm.hasR = mark, true
			}
		}
		if err := sim.Feed(e); err != nil {
			return RaceReport{}, err
		}
	}
	return report, nil
}
