package core

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/trace"
)

// Sim is the persist-timing simulator (§7 "Persist Timing Simulation").
// It consumes one SC-ordered trace event at a time — it implements
// trace.Sink, so it can observe an internal/exec run live, and several
// Sims (one per model) can share one execution through a trace.Tee.
//
// Per the paper: "Persist times are tracked per address (both
// persistent and volatile) as well as per thread according to the
// persistency model. ... [E]ach persist occurs after or coalesces with
// the most recent persists observed through (1) each load operand, (2)
// the last store to the address being overwritten, and (3) any persists
// observed by previous instructions on the same thread", with
// load-before-store conflicts additionally tracked to realize SC rather
// than TSO conflict ordering. "Persists' ability to coalesce is
// similarly propagated through memory and thread state."
type Sim struct {
	params Params
	spec   spec

	threads map[int32]*threadState
	blocks  map[memory.BlockID]*blockState
	// atoms tracks each atomic block's open (most recent) persist: its
	// level, and the global placement sequence when it opened (for the
	// finite coalescing window).
	atoms map[memory.BlockID]openPersist

	res Result
	err error
	// lastWorkPath is the critical path at the previous EndWork (for
	// Params.TrackWorkPath).
	lastWorkPath int64
}

// openPersist is an atomic block's most recent NVRAM write: candidates
// coalesce into it while it is still buffered.
type openPersist struct {
	lvl int64
	seq int64 // global placement number when opened
}

// threadState is the per-thread dependence state.
type threadState struct {
	// active holds dependences that bind new persists immediately:
	// under strict persistency everything lands here; under epoch and
	// strand persistency it advances only at persist barriers.
	active Ctx
	// pending holds conflict-observed dependences within the current
	// epoch; they bind persists only after the next barrier (§5.2:
	// same-epoch persists after a conflicting load are *not* ordered —
	// the "astonishing" semantics racing epochs exploit).
	pending Ctx
	// epochMax accumulates levels of persists issued in the current
	// epoch; program order across a barrier orders them before the next
	// epoch's persists.
	epochMax Ctx
}

// blockState is the per-tracking-block dependence state.
type blockState struct {
	// writer is the persist context made visible by stores to this
	// block: a conflicting later access is ordered after these persists.
	writer Ctx
	// reader accumulates contexts of threads that loaded this block
	// since the last store; a subsequent store conflicts with those
	// loads (load-before-store, the SC-vs-TSO distinction).
	reader Ctx
	// lastP is the most recent persist to this tracking block (level +
	// atomic block): strong persist atomicity orders same-block persists
	// under every model, and coarse tracking makes this false sharing.
	lastP Ctx
}

// NewSim constructs a simulator; Params are validated here.
func NewSim(p Params) (*Sim, error) {
	if err := p.normalize(); err != nil {
		return nil, err
	}
	return &Sim{
		params:  p,
		spec:    p.Model.spec(),
		threads: make(map[int32]*threadState),
		blocks:  make(map[memory.BlockID]*blockState),
		atoms:   make(map[memory.BlockID]openPersist),
		res:     Result{Model: p.Model, Params: p},
	}, nil
}

// MustNewSim is NewSim for static parameters.
func MustNewSim(p Params) *Sim {
	s, err := NewSim(p)
	if err != nil {
		panic(err)
	}
	return s
}

// Err returns the first event-processing error, if any.
func (s *Sim) Err() error { return s.err }

// Result finalizes and returns the simulation outcome.
func (s *Sim) Result() Result { return s.res }

// Emit implements trace.Sink.
func (s *Sim) Emit(e trace.Event) {
	if s.err != nil {
		return
	}
	if err := s.Feed(e); err != nil {
		s.err = err
	}
}

func (s *Sim) thread(tid int32) *threadState {
	t, ok := s.threads[tid]
	if !ok {
		t = &threadState{active: zeroCtx, pending: zeroCtx, epochMax: zeroCtx}
		s.threads[tid] = t
	}
	return t
}

func (s *Sim) block(b memory.BlockID) *blockState {
	bs, ok := s.blocks[b]
	if !ok {
		bs = &blockState{writer: zeroCtx, reader: zeroCtx, lastP: zeroCtx}
		s.blocks[b] = bs
	}
	return bs
}

// Feed processes one event in SC order.
func (s *Sim) Feed(e trace.Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	s.res.Events++
	switch e.Kind {
	case trace.Load:
		s.load(e)
	case trace.Store, trace.RMW:
		// An RMW has load semantics too, but its store semantics absorb
		// a superset of what the load would (reader and writer contexts
		// both), so one path covers it.
		if memory.IsPersistent(e.Addr) {
			s.persist(e)
		} else {
			s.volatileStore(e)
		}
	case trace.PersistBarrier:
		if s.spec.barriers {
			s.barrier(s.thread(e.TID))
		}
	case trace.NewStrand:
		if s.spec.strands {
			t := s.thread(e.TID)
			t.active, t.pending, t.epochMax = zeroCtx, zeroCtx, zeroCtx
		}
	case trace.PersistSync:
		// Buffered strict persistency's sync (§4.1): execution waits for
		// all of the thread's outstanding persists, so everything the
		// thread has observed binds immediately under every model.
		t := s.thread(e.TID)
		s.barrier(t)
		s.res.Syncs++
	case trace.EndWork:
		s.res.WorkItems++
		if s.params.TrackWorkPath {
			s.res.WorkPathDeltas = append(s.res.WorkPathDeltas, s.res.CriticalPath-s.lastWorkPath)
			s.lastWorkPath = s.res.CriticalPath
		}
	case trace.BeginWork, trace.Malloc, trace.Free:
		// No ordering significance. (Reusing freed persistent memory
		// legitimately inherits the old block's persist state: addresses
		// are physical.)
	default:
		return fmt.Errorf("core: unhandled event kind %v", e.Kind)
	}
	return nil
}

// barrier folds the epoch state into the active dependence set.
func (s *Sim) barrier(t *threadState) {
	t.active = mergeAll(t.active, t.pending, t.epochMax)
	t.pending = zeroCtx
	t.epochMax = zeroCtx
}

// trackingBlocks iterates the tracking blocks spanned by an access.
func (s *Sim) trackingBlocks(e trace.Event, fn func(*blockState)) {
	first, last := memory.BlockSpan(e.Addr, int(e.Size), s.params.TrackingGranularity)
	for b := first; b <= last; b++ {
		fn(s.block(b))
	}
}

// load propagates the writer context of each touched block into the
// thread (immediately under strict, pending-until-barrier otherwise)
// and records the reader context for later load-before-store conflicts.
func (s *Sim) load(e trace.Event) {
	if !s.spec.volatileConflicts && !memory.IsPersistent(e.Addr) {
		return
	}
	t := s.thread(e.TID)
	s.trackingBlocks(e, func(bs *blockState) {
		if s.spec.immediate {
			t.active = merge(t.active, bs.writer)
		} else {
			t.pending = merge(t.pending, bs.writer)
		}
		if s.spec.loadBeforeStore {
			bs.reader = merge(bs.reader, t.active)
		}
	})
}

// volatileStore handles stores and RMWs to the volatile space: they
// create no persist but conflict with earlier accesses, propagating
// persist ordering through memory (this is how lock-protected persists
// become ordered across threads under strict and non-racing epoch).
func (s *Sim) volatileStore(e trace.Event) {
	if !s.spec.volatileConflicts {
		return
	}
	t := s.thread(e.TID)
	s.trackingBlocks(e, func(bs *blockState) {
		inherit := merge(bs.writer, bs.reader)
		if s.spec.immediate {
			t.active = merge(t.active, inherit)
		} else {
			t.pending = merge(t.pending, inherit)
		}
		// Export: what later conflicting accesses are ordered after.
		// Prior writer/reader contexts stay folded in for transitivity.
		bs.writer = mergeAll(bs.writer, bs.reader, t.active)
		bs.reader = zeroCtx
	})
}

// persist handles stores and RMWs to the persistent space. Each atomic
// block fragment of the access is one persist operation; it coalesces
// with the open persist of its atomic block when every dependence not
// already part of that open persist is strictly older, else it is
// placed at a new level.
func (s *Sim) persist(e trace.Event) {
	t := s.thread(e.TID)

	// Gather the dependence context across all spanned tracking blocks,
	// and remember them for the post-placement update.
	dep := t.active
	var touched []*blockState
	s.trackingBlocks(e, func(bs *blockState) {
		dep = mergeAll(dep, bs.writer, bs.reader, bs.lastP)
		touched = append(touched, bs)
	})

	// Place (or coalesce) one persist per spanned atomic block.
	firstA, lastA := memory.BlockSpan(e.Addr, int(e.Size), s.params.AtomicGranularity)
	placedCtx := zeroCtx
	for ab := firstA; ab <= lastA; ab++ {
		s.res.Persists++
		open, isOpen := s.atoms[ab]
		stillBuffered := isOpen &&
			(s.params.CoalesceWindow == 0 || s.res.Placed-open.seq <= s.params.CoalesceWindow)
		var lvl int64
		if !s.params.NoCoalescing && stillBuffered && dep.Excluding(ab) < open.lvl {
			// Coalesce: the write joins the open persist of this atomic
			// block; every other dependence persists strictly earlier.
			lvl = open.lvl
			s.res.Coalesced++
		} else {
			lvl = dep.Lvl + 1
			if isOpen && open.lvl >= lvl {
				lvl = open.lvl + 1
			}
			s.res.Placed++
			s.atoms[ab] = openPersist{lvl: lvl, seq: s.res.Placed}
			if lvl > s.res.CriticalPath {
				s.res.CriticalPath = lvl
			}
		}
		placedCtx = merge(placedCtx, persistCtx(lvl, ab))
	}

	// The thread observes its own persist: immediately under strict
	// (program order orders subsequent persists), at the next barrier
	// under epoch/strand.
	if s.spec.immediate {
		t.active = merge(t.active, placedCtx)
	} else {
		t.epochMax = merge(t.epochMax, placedCtx)
		t.pending = merge(t.pending, dep)
	}

	// Update the tracking blocks. The placed persist was ordered after
	// every dependence the block carried, so it alone is the block's
	// new dependence frontier — keeping the context single-sourced,
	// which maximizes later same-block coalescing (the head-pointer
	// coalescing the paper notes in §6).
	for _, bs := range touched {
		bs.writer = placedCtx
		bs.reader = zeroCtx
		bs.lastP = placedCtx
	}
}

// Simulate runs a complete in-memory trace through a fresh simulator.
func Simulate(tr *trace.Trace, p Params) (Result, error) {
	s, err := NewSim(p)
	if err != nil {
		return Result{}, err
	}
	for _, e := range tr.Events {
		if err := s.Feed(e); err != nil {
			return Result{}, err
		}
	}
	return s.Result(), nil
}

// SimulateAll runs one trace through every model in Models with shared
// granularity parameters, returning results in Models order.
func SimulateAll(tr *trace.Trace, base Params) ([]Result, error) {
	out := make([]Result, 0, len(Models))
	for _, m := range Models {
		p := base
		p.Model = m
		r, err := Simulate(tr, p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
