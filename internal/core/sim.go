package core

import (
	"fmt"
	"sync"

	"repro/internal/memory"
	"repro/internal/trace"
)

// Sim is the persist-timing simulator (§7 "Persist Timing Simulation").
// It consumes one SC-ordered trace event at a time — it implements
// trace.Sink, so it can observe an internal/exec run live, and several
// Sims (one per model) can share one execution through a trace.Tee.
//
// Per the paper: "Persist times are tracked per address (both
// persistent and volatile) as well as per thread according to the
// persistency model. ... [E]ach persist occurs after or coalesces with
// the most recent persists observed through (1) each load operand, (2)
// the last store to the address being overwritten, and (3) any persists
// observed by previous instructions on the same thread", with
// load-before-store conflicts additionally tracked to realize SC rather
// than TSO conflict ordering. "Persists' ability to coalesce is
// similarly propagated through memory and thread state."
type Sim struct {
	params Params
	spec   spec
	// gen stamps the dense state tables below: an entry is live iff its
	// stamp equals gen. Reset bumps gen, invalidating all per-run state
	// in O(1) without clearing or reallocating the tables.
	gen uint64

	// threads is dense per-thread state indexed by TID (the execution
	// engine numbers threads from zero).
	threads []threadState
	// trackV/trackP hold per-tracking-block state for the volatile and
	// persistent address spaces, indexed by block-id offset from each
	// space's base block. Heaps allocate first-fit from the space base,
	// so offsets stay small and dense.
	trackV, trackP blockTable
	// atoms tracks each atomic block's open (most recent) persist: its
	// level, and the global placement sequence when it opened (for the
	// finite coalescing window). Persists exist only in the persistent
	// space, so one table suffices.
	atoms atomTable

	// touched is per-persist scratch: the tracking blocks spanned by the
	// access, revisited after placement.
	touched []*blockState

	res Result
	err error
	// lastWorkPath is the critical path at the previous EndWork (for
	// Params.TrackWorkPath).
	lastWorkPath int64
	// probe, when non-nil, observes the persist timeline (telemetry).
	probe Probe
}

// openPersist is an atomic block's most recent NVRAM write: candidates
// coalesce into it while it is still buffered.
type openPersist struct {
	lvl int64
	seq int64 // global placement number when opened
	id  int64 // placed-persist id (provenance)
}

// Alongside every Ctx the simulator keeps a provenance id: the placed
// persist (0-based placement order) that supplies the context's Lvl, or
// -1 when none does. The pair satisfies the invariant that a
// non-negative src always names a persist whose level equals Ctx.Lvl,
// so a probe can reconstruct the exact constraint chain behind the
// scalar critical path — and verifying that reconstruction against
// Result.CriticalPath cross-checks the timing model.

// srcOf returns the provenance of merge(a, b): the source supplying the
// higher level, preferring a known source on ties.
func srcOf(a Ctx, aSrc int64, b Ctx, bSrc int64) int64 {
	if b.Lvl > a.Lvl || (b.Lvl == a.Lvl && aSrc < 0) {
		return bSrc
	}
	return aSrc
}

// threadState is the per-thread dependence state.
type threadState struct {
	// active holds dependences that bind new persists immediately:
	// under strict persistency everything lands here; under epoch and
	// strand persistency it advances only at persist barriers.
	active Ctx
	// pending holds conflict-observed dependences within the current
	// epoch; they bind persists only after the next barrier (§5.2:
	// same-epoch persists after a conflicting load are *not* ordered —
	// the "astonishing" semantics racing epochs exploit).
	pending Ctx
	// epochMax accumulates levels of persists issued in the current
	// epoch; program order across a barrier orders them before the next
	// epoch's persists.
	epochMax Ctx
	// Provenance ids for the three contexts (see srcOf).
	activeSrc, pendingSrc, epochMaxSrc int64
	// epoch and strand count the thread's annotation marks (for probes;
	// maintained regardless of model so timelines show the annotation
	// structure even where the model ignores it).
	epoch, strand int64
}

// blockEntry is a blockTable slot: tracking-block state plus the
// generation stamp that says whether it belongs to the current run.
type blockEntry struct {
	blockState
	gen uint64
}

// blockTable is a growable dense table of tracking-block state for one
// address space, indexed by block-id offset from the space's base.
type blockTable struct {
	base    memory.BlockID
	entries []blockEntry
}

// ensure grows the table to cover index idx. Growing reallocates, so
// callers that retain entry pointers must ensure the full span they
// will touch before taking any pointer.
func (tb *blockTable) ensure(idx int) {
	if idx < len(tb.entries) {
		return
	}
	n := idx + 1
	if m := 2 * len(tb.entries); n < m {
		n = m
	}
	ne := make([]blockEntry, n)
	copy(ne, tb.entries)
	tb.entries = ne
}

// get returns the live state for block b, lazily reinitializing a slot
// left over from an earlier generation.
func (tb *blockTable) get(b memory.BlockID, gen uint64) *blockState {
	idx := int(b - tb.base)
	tb.ensure(idx)
	e := &tb.entries[idx]
	if e.gen != gen {
		e.gen = gen
		e.blockState = blockState{
			writer: zeroCtx, reader: zeroCtx, lastP: zeroCtx,
			writerSrc: -1, readerSrc: -1, lastPSrc: -1,
		}
	}
	return &e.blockState
}

// atomEntry and atomTable are the same dense-plus-generation scheme for
// atomic persist blocks; a stale stamp doubles as "no open persist".
type atomEntry struct {
	openPersist
	gen uint64
}

type atomTable struct {
	base    memory.BlockID
	entries []atomEntry
}

func (tb *atomTable) ensure(idx int) {
	if idx < len(tb.entries) {
		return
	}
	n := idx + 1
	if m := 2 * len(tb.entries); n < m {
		n = m
	}
	ne := make([]atomEntry, n)
	copy(ne, tb.entries)
	tb.entries = ne
}

// at returns the slot for block b; the caller must have ensured idx.
func (tb *atomTable) at(b memory.BlockID) *atomEntry {
	return &tb.entries[int(b-tb.base)]
}

// blockState is the per-tracking-block dependence state.
type blockState struct {
	// writer is the persist context made visible by stores to this
	// block: a conflicting later access is ordered after these persists.
	writer Ctx
	// reader accumulates contexts of threads that loaded this block
	// since the last store; a subsequent store conflicts with those
	// loads (load-before-store, the SC-vs-TSO distinction).
	reader Ctx
	// lastP is the most recent persist to this tracking block (level +
	// atomic block): strong persist atomicity orders same-block persists
	// under every model, and coarse tracking makes this false sharing.
	lastP Ctx
	// Provenance ids for the three contexts (see srcOf).
	writerSrc, readerSrc, lastPSrc int64
}

// NewSim constructs a simulator; Params are validated here.
func NewSim(p Params) (*Sim, error) {
	s := &Sim{}
	if err := s.Reset(p); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset reinitializes the simulator for a fresh run under p, retaining
// the allocated state tables so one Sim can replay many traces without
// churning the allocator. Invalidation is O(1): the generation stamp is
// bumped and stale entries reinitialize lazily on first touch. Any
// attached probe is detached.
func (s *Sim) Reset(p Params) error {
	if err := p.normalize(); err != nil {
		return err
	}
	s.params = p
	s.spec = p.Model.spec()
	s.gen++
	s.threads = s.threads[:0]
	s.trackV.base = memory.BlockOf(memory.VolatileBase, p.TrackingGranularity)
	s.trackP.base = memory.BlockOf(memory.PersistentBase, p.TrackingGranularity)
	s.atoms.base = memory.BlockOf(memory.PersistentBase, p.AtomicGranularity)
	s.touched = s.touched[:0]
	s.res = Result{Model: p.Model, Params: p}
	s.err = nil
	s.lastWorkPath = 0
	s.probe = nil
	return nil
}

// MustNewSim is NewSim for static parameters.
func MustNewSim(p Params) *Sim {
	s, err := NewSim(p)
	if err != nil {
		panic(err)
	}
	return s
}

// Err returns the first event-processing error, if any.
func (s *Sim) Err() error { return s.err }

// Result finalizes and returns the simulation outcome.
func (s *Sim) Result() Result { return s.res }

// Emit implements trace.Sink.
func (s *Sim) Emit(e trace.Event) {
	if s.err != nil {
		return
	}
	if err := s.Feed(e); err != nil {
		s.err = err
	}
}

// thread returns thread tid's state, growing the dense table on first
// sight. The returned pointer is valid until the next thread call,
// which may grow the backing slice.
func (s *Sim) thread(tid int32) *threadState {
	for int(tid) >= len(s.threads) {
		s.threads = append(s.threads, threadState{
			active: zeroCtx, pending: zeroCtx, epochMax: zeroCtx,
			activeSrc: -1, pendingSrc: -1, epochMaxSrc: -1,
		})
	}
	return &s.threads[tid]
}

// block returns the tracking-block state for id b, which must be at the
// configured tracking granularity. The returned pointer is valid until
// the next block or trackingBlocks call, which may grow the table.
func (s *Sim) block(b memory.BlockID) *blockState {
	if b >= s.trackP.base {
		return s.trackP.get(b, s.gen)
	}
	return s.trackV.get(b, s.gen)
}

// Feed validates and processes one event in SC order.
func (s *Sim) Feed(e trace.Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	return s.feed(e)
}

// feed processes one already-validated event. MultiSim validates each
// event once and fans it out here; the dense state indexers rely on
// Validate's range checks, so unvalidated events must never reach feed.
func (s *Sim) feed(e trace.Event) error {
	s.res.Events++
	switch e.Kind {
	case trace.Load:
		s.load(e)
	case trace.Store, trace.RMW:
		// An RMW has load semantics too, but its store semantics absorb
		// a superset of what the load would (reader and writer contexts
		// both), so one path covers it.
		if memory.IsPersistent(e.Addr) {
			s.persist(e)
		} else {
			s.volatileStore(e)
		}
	case trace.PersistBarrier:
		t := s.thread(e.TID)
		if s.spec.barriers {
			s.barrier(t)
		}
		t.epoch++
		if s.probe != nil {
			s.probe.EpochMark(e.TID, s.res.Events-1, t.epoch, false)
		}
	case trace.NewStrand:
		t := s.thread(e.TID)
		if s.spec.strands {
			t.active, t.pending, t.epochMax = zeroCtx, zeroCtx, zeroCtx
			t.activeSrc, t.pendingSrc, t.epochMaxSrc = -1, -1, -1
		}
		t.strand++
		if s.probe != nil {
			s.probe.StrandMark(e.TID, s.res.Events-1, t.strand)
		}
	case trace.PersistSync:
		// Buffered strict persistency's sync (§4.1): execution waits for
		// all of the thread's outstanding persists, so everything the
		// thread has observed binds immediately under every model.
		t := s.thread(e.TID)
		s.barrier(t)
		s.res.Syncs++
		t.epoch++
		if s.probe != nil {
			s.probe.EpochMark(e.TID, s.res.Events-1, t.epoch, true)
		}
	case trace.EndWork:
		s.res.WorkItems++
		if s.params.TrackWorkPath {
			s.res.WorkPathDeltas = append(s.res.WorkPathDeltas, s.res.CriticalPath-s.lastWorkPath)
			s.lastWorkPath = s.res.CriticalPath
		}
		if s.probe != nil {
			s.probe.WorkMark(e.TID, s.res.Events-1, e.Val, false)
		}
	case trace.BeginWork:
		if s.probe != nil {
			s.probe.WorkMark(e.TID, s.res.Events-1, e.Val, true)
		}
	case trace.Malloc, trace.Free:
		// No ordering significance. (Reusing freed persistent memory
		// legitimately inherits the old block's persist state: addresses
		// are physical.)
	default:
		return fmt.Errorf("core: unhandled event kind %v", e.Kind)
	}
	return nil
}

// barrier folds the epoch state into the active dependence set.
func (s *Sim) barrier(t *threadState) {
	src := srcOf(t.active, t.activeSrc, t.pending, t.pendingSrc)
	ap := merge(t.active, t.pending)
	t.activeSrc = srcOf(ap, src, t.epochMax, t.epochMaxSrc)
	t.active = merge(ap, t.epochMax)
	t.pending, t.pendingSrc = zeroCtx, -1
	t.epochMax, t.epochMaxSrc = zeroCtx, -1
}

// trackingBlocks iterates the tracking blocks spanned by an access. The
// whole span lies in one address space (Event.Validate checks the
// range), and the table is pre-grown over it, so the pointers handed to
// fn remain valid for the full iteration.
func (s *Sim) trackingBlocks(e trace.Event, fn func(*blockState)) {
	first, last := memory.BlockSpan(e.Addr, int(e.Size), s.params.TrackingGranularity)
	tb := &s.trackV
	if first >= s.trackP.base {
		tb = &s.trackP
	}
	tb.ensure(int(last - tb.base))
	for b := first; b <= last; b++ {
		fn(tb.get(b, s.gen))
	}
}

// load propagates the writer context of each touched block into the
// thread (immediately under strict, pending-until-barrier otherwise)
// and records the reader context for later load-before-store conflicts.
func (s *Sim) load(e trace.Event) {
	if !s.spec.volatileConflicts && !memory.IsPersistent(e.Addr) {
		return
	}
	t := s.thread(e.TID)
	s.trackingBlocks(e, func(bs *blockState) {
		if s.spec.immediate {
			t.activeSrc = srcOf(t.active, t.activeSrc, bs.writer, bs.writerSrc)
			t.active = merge(t.active, bs.writer)
		} else {
			t.pendingSrc = srcOf(t.pending, t.pendingSrc, bs.writer, bs.writerSrc)
			t.pending = merge(t.pending, bs.writer)
		}
		if s.spec.loadBeforeStore {
			bs.readerSrc = srcOf(bs.reader, bs.readerSrc, t.active, t.activeSrc)
			bs.reader = merge(bs.reader, t.active)
		}
	})
}

// volatileStore handles stores and RMWs to the volatile space: they
// create no persist but conflict with earlier accesses, propagating
// persist ordering through memory (this is how lock-protected persists
// become ordered across threads under strict and non-racing epoch).
func (s *Sim) volatileStore(e trace.Event) {
	if !s.spec.volatileConflicts {
		return
	}
	t := s.thread(e.TID)
	s.trackingBlocks(e, func(bs *blockState) {
		inheritSrc := srcOf(bs.writer, bs.writerSrc, bs.reader, bs.readerSrc)
		inherit := merge(bs.writer, bs.reader)
		if s.spec.immediate {
			t.activeSrc = srcOf(t.active, t.activeSrc, inherit, inheritSrc)
			t.active = merge(t.active, inherit)
		} else {
			t.pendingSrc = srcOf(t.pending, t.pendingSrc, inherit, inheritSrc)
			t.pending = merge(t.pending, inherit)
		}
		// Export: what later conflicting accesses are ordered after.
		// Prior writer/reader contexts stay folded in for transitivity.
		bs.writerSrc = srcOf(inherit, inheritSrc, t.active, t.activeSrc)
		bs.writer = merge(inherit, t.active)
		bs.reader, bs.readerSrc = zeroCtx, -1
	})
}

// persist handles stores and RMWs to the persistent space. Each atomic
// block fragment of the access is one persist operation; it coalesces
// with the open persist of its atomic block when every dependence not
// already part of that open persist is strictly older, else it is
// placed at a new level.
func (s *Sim) persist(e trace.Event) {
	t := s.thread(e.TID)

	// Gather the dependence context across all spanned tracking blocks,
	// and remember them for the post-placement update. Alongside the
	// scalar merge, track which persist supplies the maximum level and
	// through which channel it arrived — the channel is the constraint's
	// class (program order from the thread, conflict from writer/reader
	// contexts, atomicity from the block's last persist).
	dep := t.active
	depSrc, depClass := t.activeSrc, DepProgramOrder
	absorb := func(c Ctx, src int64, class DepClass) {
		if c.Lvl > dep.Lvl || (c.Lvl == dep.Lvl && depSrc < 0 && src >= 0) {
			depSrc, depClass = src, class
		}
		dep = merge(dep, c)
	}
	s.touched = s.touched[:0]
	s.trackingBlocks(e, func(bs *blockState) {
		absorb(bs.writer, bs.writerSrc, DepConflict)
		absorb(bs.reader, bs.readerSrc, DepConflict)
		absorb(bs.lastP, bs.lastPSrc, DepAtomicity)
		s.touched = append(s.touched, bs)
	})
	if depSrc < 0 {
		depClass = DepNone
	}

	// Place (or coalesce) one persist per spanned atomic block.
	firstA, lastA := memory.BlockSpan(e.Addr, int(e.Size), s.params.AtomicGranularity)
	s.atoms.ensure(int(lastA - s.atoms.base))
	placedCtx := zeroCtx
	placedSrc := int64(-1)
	for ab := firstA; ab <= lastA; ab++ {
		s.res.Persists++
		ae := s.atoms.at(ab)
		open, isOpen := ae.openPersist, ae.gen == s.gen
		stillBuffered := isOpen &&
			(s.params.CoalesceWindow == 0 || s.res.Placed-open.seq <= s.params.CoalesceWindow)
		var lvl, id int64
		coalesced := false
		if !s.params.NoCoalescing && stillBuffered && dep.Excluding(ab) < open.lvl {
			// Coalesce: the write joins the open persist of this atomic
			// block; every other dependence persists strictly earlier.
			lvl, id = open.lvl, open.id
			coalesced = true
			s.res.Coalesced++
		} else {
			lvl = dep.Lvl + 1
			pSrc, pClass := depSrc, depClass
			if isOpen && open.lvl >= lvl {
				// Same-block serialization: the new NVRAM write is ordered
				// behind the block's open persist (strong persist
				// atomicity), which here is the binding constraint.
				lvl = open.lvl + 1
				pSrc, pClass = open.id, DepAtomicity
			}
			s.res.Placed++
			id = s.res.Placed - 1
			ae.openPersist = openPersist{lvl: lvl, seq: s.res.Placed, id: id}
			ae.gen = s.gen
			if lvl > s.res.CriticalPath {
				s.res.CriticalPath = lvl
			}
			if s.probe != nil {
				s.probe.PersistPlaced(PersistRecord{
					EventIndex: s.res.Events - 1,
					TID:        e.TID, Addr: e.Addr, Size: e.Size, Block: ab,
					ID: id, Level: lvl,
					DepID: pSrc, DepClass: pClass, DepLevel: lvl - 1,
					Epoch: t.epoch, Strand: t.strand,
				})
			}
		}
		if coalesced && s.probe != nil {
			s.probe.PersistPlaced(PersistRecord{
				EventIndex: s.res.Events - 1,
				TID:        e.TID, Addr: e.Addr, Size: e.Size, Block: ab,
				ID: id, Level: lvl, Coalesced: true,
				DepID: -1, DepClass: DepNone, DepLevel: dep.Lvl,
				Epoch: t.epoch, Strand: t.strand,
			})
		}
		pc := persistCtx(lvl, ab)
		placedSrc = srcOf(placedCtx, placedSrc, pc, id)
		placedCtx = merge(placedCtx, pc)
	}

	// The thread observes its own persist: immediately under strict
	// (program order orders subsequent persists), at the next barrier
	// under epoch/strand.
	if s.spec.immediate {
		t.activeSrc = srcOf(t.active, t.activeSrc, placedCtx, placedSrc)
		t.active = merge(t.active, placedCtx)
	} else {
		t.epochMaxSrc = srcOf(t.epochMax, t.epochMaxSrc, placedCtx, placedSrc)
		t.epochMax = merge(t.epochMax, placedCtx)
		t.pendingSrc = srcOf(t.pending, t.pendingSrc, dep, depSrc)
		t.pending = merge(t.pending, dep)
	}

	// Update the tracking blocks. The placed persist was ordered after
	// every dependence the block carried, so it alone is the block's
	// new dependence frontier — keeping the context single-sourced,
	// which maximizes later same-block coalescing (the head-pointer
	// coalescing the paper notes in §6).
	for _, bs := range s.touched {
		bs.writer, bs.writerSrc = placedCtx, placedSrc
		bs.reader, bs.readerSrc = zeroCtx, -1
		bs.lastP, bs.lastPSrc = placedCtx, placedSrc
	}
}

// simPool recycles simulators across Simulate calls: sweeps replay the
// same trace under thousands of parameter combinations, and the dense
// state tables are the dominant allocation of each run.
var simPool = sync.Pool{New: func() any { return &Sim{} }}

// AcquireSim returns a pooled simulator reset to p — the streaming
// equivalent of Simulate for callers that feed events live (via Emit or
// as a trace.Sink) rather than replaying a stored trace. Pass the
// simulator to ReleaseSim when its Result has been taken; the caller
// must not retain it afterwards.
func AcquireSim(p Params) (*Sim, error) {
	s := simPool.Get().(*Sim)
	if err := s.Reset(p); err != nil {
		simPool.Put(s)
		return nil, err
	}
	return s, nil
}

// ReleaseSim recycles a simulator obtained from AcquireSim.
func ReleaseSim(s *Sim) {
	if s != nil {
		simPool.Put(s)
	}
}

// Simulate runs a complete in-memory trace through a pooled simulator.
func Simulate(tr *trace.Trace, p Params) (Result, error) {
	s := simPool.Get().(*Sim)
	defer simPool.Put(s)
	if err := s.Reset(p); err != nil {
		return Result{}, err
	}
	for _, c := range tr.Chunks() {
		for i := 0; i < c.Len(); i++ {
			if err := s.Feed(c.Event(i)); err != nil {
				return Result{}, err
			}
		}
	}
	return s.Result(), nil
}

// SimulateAll runs one trace through every model in Models with shared
// granularity parameters, returning results in Models order. The trace
// is walked once: each event is decoded and validated a single time and
// fanned out to all models' simulators (see MultiSim), rather than
// replaying the trace once per model.
func SimulateAll(tr *trace.Trace, base Params) ([]Result, error) {
	ms, err := NewMultiSim(base, Models...)
	if err != nil {
		return nil, err
	}
	for _, c := range tr.Chunks() {
		for i := 0; i < c.Len(); i++ {
			if err := ms.Feed(c.Event(i)); err != nil {
				return nil, err
			}
		}
	}
	return ms.Results(), nil
}
