package core

import "repro/internal/trace"

// MultiSim drives several persistency-model simulators through one walk
// of a trace. The paper's evaluation compares every model on the same
// execution (§7: one trace per workload, simulated under each model);
// feeding all models from a single pass shares the per-event work that
// does not depend on the model — the trace walk itself and event
// validation — while each model keeps fully independent dependence
// state.
//
// Shared-walk invariants: simulators never communicate; each observes
// the identical SC event sequence it would see from a solo Simulate
// run, and no simulator reads Event.Seq, so results are byte-identical
// to per-model simulation (TestMultiSimEquivalence pins this). The one
// shared step is validation — events are validated once here and fed to
// the models' unvalidated fast path.
type MultiSim struct {
	sims []*Sim
	err  error
}

// NewMultiSim constructs one simulator per model, all sharing base's
// granularity parameters (base.Model is ignored). With no models given
// it defaults to Models.
func NewMultiSim(base Params, models ...Model) (*MultiSim, error) {
	if len(models) == 0 {
		models = Models
	}
	m := &MultiSim{sims: make([]*Sim, 0, len(models))}
	for _, mod := range models {
		p := base
		p.Model = mod
		s, err := NewSim(p)
		if err != nil {
			return nil, err
		}
		m.sims = append(m.sims, s)
	}
	return m, nil
}

// Feed validates e once and feeds it to every model's simulator.
func (m *MultiSim) Feed(e trace.Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	for _, s := range m.sims {
		if err := s.feed(e); err != nil {
			return err
		}
	}
	return nil
}

// Emit implements trace.Sink, so a MultiSim can observe an execution
// live in place of a per-model Tee of Sims.
func (m *MultiSim) Emit(e trace.Event) {
	if m.err != nil {
		return
	}
	if err := m.Feed(e); err != nil {
		m.err = err
	}
}

// Err returns the first event-processing error, if any.
func (m *MultiSim) Err() error { return m.err }

// Sims exposes the per-model simulators, in the order the models were
// given — e.g. to attach telemetry probes before feeding.
func (m *MultiSim) Sims() []*Sim { return m.sims }

// Results finalizes and returns each model's outcome, in model order.
func (m *MultiSim) Results() []Result {
	out := make([]Result, len(m.sims))
	for i, s := range m.sims {
		out[i] = s.Result()
	}
	return out
}
