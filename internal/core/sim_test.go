package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/memory"
	"repro/internal/trace"
)

// Trace-building helpers. Addresses are spaced 64 bytes apart so that
// at the default 8-byte granularities no two logical variables share a
// block, unless a test says otherwise.
func paddr(i uint64) memory.Addr { return memory.PersistentBase + memory.Addr(i*64) }
func vaddr(i uint64) memory.Addr { return memory.VolatileBase + memory.Addr(i*64) }

type tb struct{ tr trace.Trace }

func (b *tb) store(tid int32, a memory.Addr) {
	b.tr.Emit(trace.Event{TID: tid, Kind: trace.Store, Addr: a, Size: 8, Val: 1})
}
func (b *tb) load(tid int32, a memory.Addr) {
	b.tr.Emit(trace.Event{TID: tid, Kind: trace.Load, Addr: a, Size: 8})
}
func (b *tb) rmw(tid int32, a memory.Addr) {
	b.tr.Emit(trace.Event{TID: tid, Kind: trace.RMW, Addr: a, Size: 8, Val: 1})
}
func (b *tb) barrier(tid int32)   { b.tr.Emit(trace.Event{TID: tid, Kind: trace.PersistBarrier}) }
func (b *tb) newStrand(tid int32) { b.tr.Emit(trace.Event{TID: tid, Kind: trace.NewStrand}) }
func (b *tb) sync(tid int32)      { b.tr.Emit(trace.Event{TID: tid, Kind: trace.PersistSync}) }
func (b *tb) work(tid int32, id uint64) {
	b.tr.Emit(trace.Event{TID: tid, Kind: trace.BeginWork, Val: id})
	b.tr.Emit(trace.Event{TID: tid, Kind: trace.EndWork, Val: id})
}

func mustSim(t *testing.T, tr *trace.Trace, p Params) Result {
	t.Helper()
	r, err := Simulate(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestStrictSerializesProgramOrder(t *testing.T) {
	var b tb
	b.store(0, paddr(0))
	b.store(0, paddr(1))
	b.store(0, paddr(2))
	r := mustSim(t, &b.tr, Params{Model: Strict})
	if r.CriticalPath != 3 {
		t.Fatalf("strict critical path = %d, want 3", r.CriticalPath)
	}
	if r.Persists != 3 || r.Placed != 3 || r.Coalesced != 0 {
		t.Fatalf("counts wrong: %+v", r)
	}
}

func TestEpochConcurrentWithinEpoch(t *testing.T) {
	var b tb
	b.store(0, paddr(0))
	b.store(0, paddr(1))
	b.store(0, paddr(2))
	r := mustSim(t, &b.tr, Params{Model: Epoch})
	if r.CriticalPath != 1 {
		t.Fatalf("epoch critical path = %d, want 1", r.CriticalPath)
	}
}

func TestEpochBarrierOrders(t *testing.T) {
	var b tb
	b.store(0, paddr(0))
	b.barrier(0)
	b.store(0, paddr(1))
	b.store(0, paddr(2))
	b.barrier(0)
	b.store(0, paddr(3))
	r := mustSim(t, &b.tr, Params{Model: Epoch})
	if r.CriticalPath != 3 {
		t.Fatalf("epoch critical path = %d, want 3", r.CriticalPath)
	}
	// Strict ignores barriers but orders everything anyway.
	r = mustSim(t, &b.tr, Params{Model: Strict})
	if r.CriticalPath != 4 {
		t.Fatalf("strict critical path = %d, want 4", r.CriticalPath)
	}
}

func TestStrongPersistAtomicityCoalesces(t *testing.T) {
	// Same-address persists in one epoch coalesce into one NVRAM write.
	var b tb
	b.store(0, paddr(0))
	b.store(0, paddr(0))
	b.store(0, paddr(0))
	r := mustSim(t, &b.tr, Params{Model: Epoch})
	if r.CriticalPath != 1 || r.Coalesced != 2 || r.Placed != 1 {
		t.Fatalf("coalescing wrong: %+v", r)
	}
	// Without coalescing, strong persist atomicity serializes them.
	r = mustSim(t, &b.tr, Params{Model: Epoch, NoCoalescing: true})
	if r.CriticalPath != 3 || r.Coalesced != 0 {
		t.Fatalf("no-coalescing wrong: %+v", r)
	}
}

func TestStrictCoalescingLargeAtomicPersists(t *testing.T) {
	// Figure 4's mechanism: under strict persistency, consecutive
	// persists to one large atomic block coalesce, shrinking the
	// critical path; with 8-byte atomic persists they serialize.
	var b tb
	for i := 0; i < 8; i++ {
		b.tr.Emit(trace.Event{TID: 0, Kind: trace.Store, Addr: memory.PersistentBase + memory.Addr(8*i), Size: 8, Val: 1})
	}
	r8 := mustSim(t, &b.tr, Params{Model: Strict, AtomicGranularity: 8})
	if r8.CriticalPath != 8 {
		t.Fatalf("strict@8B = %d, want 8", r8.CriticalPath)
	}
	r64 := mustSim(t, &b.tr, Params{Model: Strict, AtomicGranularity: 64})
	if r64.CriticalPath != 1 {
		t.Fatalf("strict@64B = %d, want 1 (all coalesce)", r64.CriticalPath)
	}
	if r64.Coalesced != 7 {
		t.Fatalf("strict@64B coalesced = %d, want 7", r64.Coalesced)
	}
	// Epoch was already concurrent; large atomic persists don't help.
	e8 := mustSim(t, &b.tr, Params{Model: Epoch, AtomicGranularity: 8})
	e64 := mustSim(t, &b.tr, Params{Model: Epoch, AtomicGranularity: 64})
	if e8.CriticalPath != 1 || e64.CriticalPath != 1 {
		t.Fatalf("epoch paths: %d, %d; want 1, 1", e8.CriticalPath, e64.CriticalPath)
	}
}

func TestStrictCoalesceBlockedByInterveningDependence(t *testing.T) {
	// A(block0) then B(block1) then A2(block0): A2 depends on B at the
	// open level's successor, so A2 must NOT coalesce back into A.
	g := uint64(8)
	a0 := memory.PersistentBase
	a1 := memory.PersistentBase + 64
	var b tb
	b.tr.Emit(trace.Event{TID: 0, Kind: trace.Store, Addr: a0, Size: 8, Val: 1})
	b.tr.Emit(trace.Event{TID: 0, Kind: trace.Store, Addr: a1, Size: 8, Val: 1})
	b.tr.Emit(trace.Event{TID: 0, Kind: trace.Store, Addr: a0, Size: 8, Val: 2})
	r := mustSim(t, &b.tr, Params{Model: Strict, AtomicGranularity: g})
	if r.CriticalPath != 3 || r.Coalesced != 0 {
		t.Fatalf("want serialized 3 with no coalescing, got %+v", r)
	}
}

func TestCrossThreadConflictStrict(t *testing.T) {
	// T0 persists A then raises a volatile flag; T1 reads the flag and
	// persists B. Under strict persistency B is ordered after A.
	var b tb
	b.store(0, paddr(0))
	b.store(0, vaddr(0))
	b.load(1, vaddr(0))
	b.store(1, paddr(1))
	r := mustSim(t, &b.tr, Params{Model: Strict})
	if r.CriticalPath != 2 {
		t.Fatalf("strict cross-thread path = %d, want 2", r.CriticalPath)
	}
}

func TestEpochSameEpochRaceIsConcurrent(t *testing.T) {
	// The paper's "astonishing" semantics (§5.2): synchronization inside
	// a persist epoch orders the stores but NOT the persists. T0:
	// persist A, barrier, raise flag. T1: see flag, persist B in the
	// same epoch -> concurrent with A; after a barrier, persist C ->
	// ordered after A.
	var b tb
	b.store(0, paddr(0)) // A, level 1
	b.barrier(0)
	b.store(0, vaddr(0)) // flag: exports level 1
	b.load(1, vaddr(0))  // T1 observes, pending only
	b.store(1, paddr(1)) // B: same epoch, level 1 (concurrent with A)
	b.barrier(1)
	b.store(1, paddr(2)) // C: level 2
	r := mustSim(t, &b.tr, Params{Model: Epoch})
	if r.CriticalPath != 2 {
		t.Fatalf("epoch path = %d, want 2", r.CriticalPath)
	}
	// Strict orders B after A as well: A=1, B=2, C=3.
	r = mustSim(t, &b.tr, Params{Model: Strict})
	if r.CriticalPath != 3 {
		t.Fatalf("strict path = %d, want 3", r.CriticalPath)
	}
}

func TestLoadBeforeStoreConflict(t *testing.T) {
	// SC conflict ordering that BPFS (TSO detection) misses: T0 persists
	// A (bound), loads X; T1 stores X, then persists B after a barrier.
	// Under Epoch (SC detection) B is ordered after A; under EpochTSO it
	// is not.
	var b tb
	b.store(0, paddr(0)) // A
	b.barrier(0)
	b.load(0, vaddr(0)) // T0 reads X with A bound in active
	b.store(1, vaddr(0))
	b.barrier(1)
	b.store(1, paddr(1)) // B
	r := mustSim(t, &b.tr, Params{Model: Epoch})
	if r.CriticalPath != 2 {
		t.Fatalf("epoch (SC conflicts) path = %d, want 2", r.CriticalPath)
	}
	r = mustSim(t, &b.tr, Params{Model: EpochTSO})
	if r.CriticalPath != 1 {
		t.Fatalf("epoch-tso path = %d, want 1", r.CriticalPath)
	}
}

func TestEpochTSOIgnoresVolatileConflicts(t *testing.T) {
	// BPFS tracks conflicts only on the persistent space: a volatile
	// flag handoff does not order persists under EpochTSO, but a
	// persistent flag handoff does.
	mk := func(flag memory.Addr) *trace.Trace {
		var b tb
		b.store(0, paddr(0))
		b.barrier(0)
		b.tr.Emit(trace.Event{TID: 0, Kind: trace.Store, Addr: flag, Size: 8, Val: 1})
		b.tr.Emit(trace.Event{TID: 1, Kind: trace.Load, Addr: flag, Size: 8})
		b.barrier(1)
		b.store(1, paddr(2))
		return &b.tr
	}
	rv := mustSim(t, mk(vaddr(1)), Params{Model: EpochTSO})
	if rv.CriticalPath != 1 {
		t.Fatalf("volatile flag under epoch-tso: path = %d, want 1", rv.CriticalPath)
	}
	rp := mustSim(t, mk(paddr(1)), Params{Model: EpochTSO})
	if rp.CriticalPath != 3 {
		// flag itself is a persist: A=1, flag=2 (after barrier), B=3.
		t.Fatalf("persistent flag under epoch-tso: path = %d, want 3", rp.CriticalPath)
	}
}

func TestStrandClearsDependence(t *testing.T) {
	var b tb
	b.store(0, paddr(0)) // level 1
	b.barrier(0)
	b.store(0, paddr(1)) // level 2
	b.newStrand(0)
	b.store(0, paddr(2)) // fresh strand: level 1
	r := mustSim(t, &b.tr, Params{Model: Strand})
	if r.CriticalPath != 2 {
		t.Fatalf("strand path = %d, want 2", r.CriticalPath)
	}
	// Epoch ignores NewStrand: path 3... barrier separated only once;
	// paddr(1) and paddr(2) share the second epoch: path 2 as well, so
	// add a barrier-equivalent check: strict = 3.
	r = mustSim(t, &b.tr, Params{Model: Strict})
	if r.CriticalPath != 3 {
		t.Fatalf("strict path = %d, want 3", r.CriticalPath)
	}
}

func TestStrandStrongAtomicityStillOrders(t *testing.T) {
	// Persists to the same address are ordered across strands; with
	// coalescing they merge into the open persist instead.
	var b tb
	b.store(0, paddr(0))
	b.barrier(0)
	b.store(0, paddr(1)) // level 2
	b.newStrand(0)
	b.store(0, paddr(1)) // same address: coalesces into level 2
	r := mustSim(t, &b.tr, Params{Model: Strand})
	if r.CriticalPath != 2 || r.Coalesced != 1 {
		t.Fatalf("strand coalesce: %+v", r)
	}
	r = mustSim(t, &b.tr, Params{Model: Strand, NoCoalescing: true})
	if r.CriticalPath != 3 {
		t.Fatalf("strand no-coalesce path = %d, want 3", r.CriticalPath)
	}
}

func TestStrandReadToOrder(t *testing.T) {
	// §5.3: "a persist strand begins by reading persisted memory
	// locations after which new persists must be ordered", then a
	// persist barrier. The read + barrier creates the intended order.
	var b tb
	b.store(0, paddr(0)) // A, level 1
	b.barrier(0)
	b.newStrand(0)
	b.load(0, paddr(0)) // read A's location
	b.barrier(0)
	b.store(0, paddr(1)) // must be ordered after A: level 2
	r := mustSim(t, &b.tr, Params{Model: Strand})
	if r.CriticalPath != 2 {
		t.Fatalf("strand read-to-order path = %d, want 2", r.CriticalPath)
	}
	// Without the read, the persist is concurrent with A.
	var c tb
	c.store(0, paddr(0))
	c.barrier(0)
	c.newStrand(0)
	c.barrier(0)
	c.store(0, paddr(1))
	r = mustSim(t, &c.tr, Params{Model: Strand})
	if r.CriticalPath != 1 {
		t.Fatalf("strand without read path = %d, want 1", r.CriticalPath)
	}
}

func TestFalseSharingCoarseTracking(t *testing.T) {
	// Figure 5's mechanism: with 64-byte tracking, persists to disjoint
	// 8-byte words in the same 64-byte block are (falsely) ordered under
	// epoch persistency; with 8-byte tracking they are concurrent.
	a0 := memory.PersistentBase
	a1 := memory.PersistentBase + 8
	var b tb
	b.tr.Emit(trace.Event{TID: 0, Kind: trace.Store, Addr: a0, Size: 8, Val: 1})
	b.tr.Emit(trace.Event{TID: 0, Kind: trace.Store, Addr: a1, Size: 8, Val: 1})
	fine := mustSim(t, &b.tr, Params{Model: Epoch, TrackingGranularity: 8})
	if fine.CriticalPath != 1 {
		t.Fatalf("fine tracking path = %d, want 1", fine.CriticalPath)
	}
	coarse := mustSim(t, &b.tr, Params{Model: Epoch, TrackingGranularity: 64})
	if coarse.CriticalPath != 2 {
		t.Fatalf("coarse tracking path = %d, want 2", coarse.CriticalPath)
	}
	// Strict is already serialized; coarse tracking changes nothing.
	s8 := mustSim(t, &b.tr, Params{Model: Strict, TrackingGranularity: 8})
	s64 := mustSim(t, &b.tr, Params{Model: Strict, TrackingGranularity: 64})
	if s8.CriticalPath != s64.CriticalPath {
		t.Fatalf("strict affected by tracking: %d vs %d", s8.CriticalPath, s64.CriticalPath)
	}
}

func TestPersistentRMWIsPersist(t *testing.T) {
	var b tb
	b.rmw(0, paddr(0))
	r := mustSim(t, &b.tr, Params{Model: Epoch})
	if r.Persists != 1 || r.CriticalPath != 1 {
		t.Fatalf("persistent RMW: %+v", r)
	}
}

func TestVolatileRMWPropagates(t *testing.T) {
	// Lock-style handoff through a volatile RMW with barriers around it
	// (the paper's non-racing epoch discipline) orders persists across
	// threads.
	var b tb
	b.store(0, paddr(0)) // A
	b.barrier(0)
	b.rmw(0, vaddr(0)) // unlock-ish
	b.rmw(1, vaddr(0)) // lock-ish: conflicts
	b.barrier(1)
	b.store(1, paddr(1)) // B: ordered after A
	r := mustSim(t, &b.tr, Params{Model: Epoch})
	if r.CriticalPath != 2 {
		t.Fatalf("RMW handoff path = %d, want 2", r.CriticalPath)
	}
}

func TestPersistSyncBindsEpochState(t *testing.T) {
	var b tb
	b.store(0, paddr(0))
	b.sync(0)
	b.store(0, paddr(1))
	r := mustSim(t, &b.tr, Params{Model: Epoch})
	if r.CriticalPath != 2 || r.Syncs != 1 {
		t.Fatalf("persist sync: %+v", r)
	}
}

func TestThreadsAreConcurrentWithoutConflicts(t *testing.T) {
	// Unsynchronized threads persist concurrently even under strict
	// persistency ("such models can still facilitate persist concurrency
	// by relying on thread concurrency", §4.1).
	var b tb
	for i := 0; i < 5; i++ {
		b.store(0, paddr(uint64(i)))
		b.store(1, paddr(uint64(100+i)))
	}
	r := mustSim(t, &b.tr, Params{Model: Strict})
	if r.CriticalPath != 5 {
		t.Fatalf("independent threads path = %d, want 5", r.CriticalPath)
	}
}

func TestWorkItemsAndRates(t *testing.T) {
	var b tb
	b.work(0, 1)
	b.store(0, paddr(0))
	b.work(0, 2)
	r := mustSim(t, &b.tr, Params{Model: Strict})
	if r.WorkItems != 2 {
		t.Fatalf("work items = %d", r.WorkItems)
	}
	if got := r.PathPerWork(); got != 0.5 {
		t.Fatalf("PathPerWork = %v", got)
	}
	// 2 items / (1 × 500ns) = 4e6/s.
	if got := r.PersistBoundRate(500 * time.Nanosecond); math.Abs(got-4e6) > 1 {
		t.Fatalf("PersistBoundRate = %v", got)
	}
}

func TestTrackWorkPath(t *testing.T) {
	var b tb
	// Item 1: one persist (delta 1). Item 2: barrier + persist (delta
	// 1). Item 3: no persists (delta 0).
	b.tr.Emit(trace.Event{TID: 0, Kind: trace.BeginWork, Val: 1})
	b.store(0, paddr(0))
	b.tr.Emit(trace.Event{TID: 0, Kind: trace.EndWork, Val: 1})
	b.barrier(0)
	b.tr.Emit(trace.Event{TID: 0, Kind: trace.BeginWork, Val: 2})
	b.store(0, paddr(1))
	b.tr.Emit(trace.Event{TID: 0, Kind: trace.EndWork, Val: 2})
	b.work(0, 3)
	r := mustSim(t, &b.tr, Params{Model: Epoch, TrackWorkPath: true})
	want := []int64{1, 1, 0}
	if len(r.WorkPathDeltas) != len(want) {
		t.Fatalf("deltas = %v", r.WorkPathDeltas)
	}
	var sum int64
	for i, d := range r.WorkPathDeltas {
		if d != want[i] {
			t.Fatalf("deltas = %v, want %v", r.WorkPathDeltas, want)
		}
		sum += d
	}
	if sum != r.CriticalPath {
		t.Fatalf("deltas sum %d != critical path %d", sum, r.CriticalPath)
	}
	// Disabled by default.
	r = mustSim(t, &b.tr, Params{Model: Epoch})
	if r.WorkPathDeltas != nil {
		t.Fatal("deltas tracked without the flag")
	}
}

func TestPersistBoundRateInfiniteWhenNoPersists(t *testing.T) {
	var b tb
	b.work(0, 1)
	r := mustSim(t, &b.tr, Params{Model: Strict})
	if !math.IsInf(r.PersistBoundRate(time.Microsecond), 1) {
		t.Fatal("no persists should mean infinite persist-bound rate")
	}
}

func TestCoalesceWindow(t *testing.T) {
	// Repeated persists to one address with interleaved persists
	// elsewhere: unbounded window coalesces all head-like persists into
	// one; window 2 forces periodic re-placement.
	var b tb
	for i := uint64(0); i < 12; i++ {
		b.store(0, paddr(1+i)) // fresh block each time
		b.store(0, paddr(0))   // same block every time ("head")
	}
	unbounded := mustSim(t, &b.tr, Params{Model: Epoch})
	// Epoch, no barriers: fresh-block persists all level 1; head
	// coalesces into its first persist forever.
	if unbounded.CriticalPath != 1 || unbounded.Coalesced != 11 {
		t.Fatalf("unbounded: %+v", unbounded)
	}
	windowed := mustSim(t, &b.tr, Params{Model: Epoch, CoalesceWindow: 2})
	if windowed.Coalesced >= unbounded.Coalesced {
		t.Fatalf("window should reduce coalescing: %d vs %d", windowed.Coalesced, unbounded.Coalesced)
	}
	if windowed.CriticalPath <= unbounded.CriticalPath {
		t.Fatalf("window should lengthen the path: %d vs %d", windowed.CriticalPath, unbounded.CriticalPath)
	}
}

func TestParamsValidation(t *testing.T) {
	if _, err := NewSim(Params{TrackingGranularity: 12}); err == nil {
		t.Error("non-power-of-two tracking accepted")
	}
	if _, err := NewSim(Params{AtomicGranularity: 4}); err == nil {
		t.Error("sub-word atomic granularity accepted")
	}
	s, err := NewSim(Params{})
	if err != nil {
		t.Fatal(err)
	}
	if s.params.TrackingGranularity != 8 || s.params.AtomicGranularity != 8 {
		t.Fatal("defaults not applied")
	}
}

func TestSimAsSinkAndErr(t *testing.T) {
	s := MustNewSim(Params{Model: Epoch})
	s.Emit(trace.Event{TID: 0, Kind: trace.Store, Addr: paddr(0), Size: 8})
	s.Emit(trace.Event{TID: 0, Kind: trace.Store, Addr: 0x4, Size: 8}) // unmapped
	if s.Err() == nil {
		t.Fatal("invalid event should set Err")
	}
	// Further events are ignored after an error.
	s.Emit(trace.Event{TID: 0, Kind: trace.Store, Addr: paddr(1), Size: 8})
	if s.Result().Events != 1 {
		t.Fatalf("events after error counted: %d", s.Result().Events)
	}
}

func TestSimulateAll(t *testing.T) {
	var b tb
	b.store(0, paddr(0))
	b.barrier(0)
	b.store(0, paddr(1))
	rs, err := SimulateAll(&b.tr, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(Models) {
		t.Fatalf("got %d results", len(rs))
	}
	for i, r := range rs {
		if r.Model != Models[i] {
			t.Fatalf("result %d has model %v", i, r.Model)
		}
	}
}

func TestModelStrings(t *testing.T) {
	for _, m := range Models {
		if m.String() == "" {
			t.Fatalf("model %d has empty name", m)
		}
	}
	if Model(99).String() != "model(99)" {
		t.Fatal("unknown model string")
	}
}

// TestRelaxationHierarchy: on any trace annotated with barriers and
// strands, critical paths must satisfy strand <= epoch <= strict, since
// each model's constraint set is a subset of the next (on these
// workload shapes).
func TestRelaxationHierarchy(t *testing.T) {
	var b tb
	// A small pseudo-workload: two threads, locks via volatile RMW,
	// persists with barriers and strands.
	for i := uint64(0); i < 20; i++ {
		tid := int32(i % 2)
		b.barrier(tid)
		b.rmw(tid, vaddr(0)) // acquire-ish
		b.newStrand(tid)
		b.store(tid, paddr(10+i))
		b.store(tid, paddr(40+i))
		b.barrier(tid)
		b.store(tid, paddr(0)) // shared "head"
		b.barrier(tid)
		b.rmw(tid, vaddr(0)) // release-ish
	}
	strict := mustSim(t, &b.tr, Params{Model: Strict})
	epoch := mustSim(t, &b.tr, Params{Model: Epoch})
	strand := mustSim(t, &b.tr, Params{Model: Strand})
	if !(strand.CriticalPath <= epoch.CriticalPath && epoch.CriticalPath <= strict.CriticalPath) {
		t.Fatalf("hierarchy violated: strand %d, epoch %d, strict %d",
			strand.CriticalPath, epoch.CriticalPath, strict.CriticalPath)
	}
	if strict.CriticalPath <= 20 {
		t.Fatalf("strict should serialize most persists, got %d", strict.CriticalPath)
	}
}
