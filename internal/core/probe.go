package core

import (
	"fmt"

	"repro/internal/memory"
)

// DepClass labels the constraint that set a persist's dependence level —
// the probe-side analogue of graph.EdgeClass, classified the same way:
// by the channel that delivered the dominating dependence at placement
// time (§5's three sources of persist order).
type DepClass uint8

const (
	// DepNone: the persist has no dependence (a level-1 root).
	DepNone DepClass = iota
	// DepProgramOrder: the issuing thread's own order (active set):
	// every preceding persist under strict persistency, the previous
	// epoch's persists under epoch/strand.
	DepProgramOrder
	// DepConflict: a conflicting access propagated the dependence
	// through memory (block writer/reader context).
	DepConflict
	// DepAtomicity: strong persist atomicity — the previous persist to
	// the same tracking block (§4.3).
	DepAtomicity
)

// String names the class as in the attribution reports.
func (c DepClass) String() string {
	switch c {
	case DepNone:
		return "root"
	case DepProgramOrder:
		return "program-order"
	case DepConflict:
		return "conflict"
	case DepAtomicity:
		return "atomicity"
	default:
		return fmt.Sprintf("dep-class(%d)", uint8(c))
	}
}

// DepClasses lists the classes in presentation order.
var DepClasses = []DepClass{DepNone, DepProgramOrder, DepConflict, DepAtomicity}

// PersistRecord describes one persist operation (one atomic-block
// fragment of a store/RMW to NVRAM) as the simulator placed it. It is
// the per-persist provenance the paper's methodology leaves implicit:
// who issued it, where it landed, which level the ordering constraints
// forced, and which constraint was binding.
type PersistRecord struct {
	// EventIndex is the position of the originating event in the fed
	// stream (equals trace Seq when feeding a complete trace).
	EventIndex int64
	// TID is the issuing simulated thread.
	TID int32
	// Addr and Size locate the access; Block is the atomic persist
	// block this fragment belongs to.
	Addr  memory.Addr
	Size  uint8
	Block memory.BlockID
	// ID identifies the NVRAM write: placed persists get sequential ids
	// from 0; a coalesced persist carries the id of the open persist it
	// merged into.
	ID int64
	// Level is the persist's dependence level (critical-path depth).
	Level int64
	// Coalesced reports whether this fragment merged into an already
	// open persist instead of placing a new NVRAM write.
	Coalesced bool
	// DepID is the id of the persist supplying the binding dependence
	// (the critical constraint edge's source), or -1 for a root persist.
	// Coalesced records carry -1: they add no constraint edge.
	DepID int64
	// DepClass classifies the binding constraint.
	DepClass DepClass
	// DepLevel is the dependence level the constraint imposed (the
	// source persist's level; Level == DepLevel+1 for placed persists
	// unless same-block serialization bumped it higher).
	DepLevel int64
	// Epoch and Strand are the issuing thread's annotation indices
	// (counted from the trace's PersistBarrier/NewStrand events,
	// independent of whether the model honors them).
	Epoch  int64
	Strand int64
}

// Probe observes the simulator's persist timeline. All callbacks arrive
// in SC (fed-event) order from Sim.Feed; implementations must not block.
// The epoch/strand/work marks reflect the trace's annotations regardless
// of the model under simulation, so a timeline view shows the annotation
// structure even for models that ignore it.
type Probe interface {
	// PersistPlaced reports one persist fragment, placed or coalesced.
	PersistPlaced(PersistRecord)
	// EpochMark reports a persist barrier (sync=false) or a PersistSync
	// (sync=true) on tid; epoch is the thread's new epoch index.
	EpochMark(tid int32, eventIndex int64, epoch int64, sync bool)
	// StrandMark reports a NewStrand on tid; strand is the thread's new
	// strand index.
	StrandMark(tid int32, eventIndex int64, strand int64)
	// WorkMark reports a BeginWork (begin=true) or EndWork bracket.
	WorkMark(tid int32, eventIndex int64, id uint64, begin bool)
}

// SetProbe attaches a persist-timeline probe. It must be called before
// any event is fed; a nil probe detaches.
func (s *Sim) SetProbe(p Probe) {
	if s.res.Events > 0 {
		panic("core: SetProbe after events were fed")
	}
	s.probe = p
}
