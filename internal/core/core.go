// Package core implements the paper's primary contribution: memory
// persistency models and the trace-driven persist-ordering timing
// simulation used to evaluate them (§4–§7).
//
// A memory persistency model prescribes which NVRAM writes (persists)
// must become durable before which others, from the perspective of a
// *recovery observer* that atomically reads all of persistent memory at
// the moment of failure. Package core consumes a sequentially
// consistent memory trace (produced by internal/exec) and computes, for
// each persistency model, the *persist ordering constraint critical
// path*: the length of the longest chain of ordered persists. Following
// the paper's methodology (§7), the memory system is assumed to have
// infinite bandwidth and banks but finite persist latency, so this
// critical path is a best-case, implementation-independent measure of
// persist concurrency, and
//
//	persist-bound throughput = work items / (critical path × latency).
//
// The simulation also models persist coalescing (§3): persists within
// one atomically persistable memory block merge into a single NVRAM
// write when no ordering constraint is violated, and dependence
// (conflict) tracking at configurable granularity, which introduces
// persist false sharing when coarse (§8.2).
package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/memory"
)

// Model selects a memory persistency model (§5).
type Model uint8

const (
	// Strict couples persistency to the consistency model (§5.1): the
	// recovery observer participates in SC like an extra processor, so
	// every happens-before edge of volatile memory order also orders
	// persists. Persist barriers and strands are ignored. The critical
	// path computed for Strict corresponds to *buffered* strict
	// persistency (§4.1), the paper's best case for the model; the
	// unbuffered variant additionally stalls execution (see
	// bench.UnbufferedTime).
	Strict Model = iota
	// Epoch is epoch persistency (§5.2), the BPFS-inspired model with
	// the paper's corrections: persist barriers divide each thread into
	// epochs; persists within an epoch are concurrent; conflicting
	// accesses (including load-before-store, i.e. SC rather than TSO
	// conflict ordering) propagate persist order between threads; strong
	// persist atomicity orders persists to the same address.
	Epoch
	// EpochTSO is the BPFS ablation (§5.2 discussion): like Epoch but
	// load-before-store conflicts are invisible (TSO conflict ordering)
	// and only conflicts on the persistent address space propagate
	// dependence.
	EpochTSO
	// Strand is strand persistency (§5.3), the paper's new model:
	// NewStrand clears all previously observed persist dependences on
	// the issuing thread, so strands order only through persist barriers
	// within the strand and strong persist atomicity across everything.
	Strand
)

// String names the model as in the paper's tables.
func (m Model) String() string {
	switch m {
	case Strict:
		return "strict"
	case Epoch:
		return "epoch"
	case EpochTSO:
		return "epoch-tso"
	case Strand:
		return "strand"
	default:
		return fmt.Sprintf("model(%d)", uint8(m))
	}
}

// Models lists the evaluated models in presentation order.
var Models = []Model{Strict, Epoch, EpochTSO, Strand}

// spec captures the behavioral switches distinguishing the models.
type spec struct {
	// immediate: conflicts and own persists bind the thread's active
	// dependence immediately (strict persistency couples persistency to
	// SC program order). When false, they bind at the next barrier.
	immediate bool
	// barriers: persist barriers separate epochs (epoch/strand).
	barriers bool
	// strands: NewStrand clears thread dependence state.
	strands bool
	// loadBeforeStore: track reader contexts so a store after a remote
	// load is ordered (SC conflict ordering). BPFS cannot (§5.2).
	loadBeforeStore bool
	// volatileConflicts: conflicts on volatile addresses propagate
	// persist order. BPFS tracks only the persistent space (§5.2).
	volatileConflicts bool
}

func (m Model) spec() spec {
	switch m {
	case Strict:
		return spec{immediate: true, loadBeforeStore: true, volatileConflicts: true}
	case Epoch:
		return spec{barriers: true, loadBeforeStore: true, volatileConflicts: true}
	case EpochTSO:
		return spec{barriers: true}
	case Strand:
		return spec{barriers: true, strands: true, loadBeforeStore: true, volatileConflicts: true}
	default:
		panic("core: unknown model " + m.String())
	}
}

// Params configures a simulation.
type Params struct {
	// Model is the persistency model to apply.
	Model Model
	// TrackingGranularity is the block size in bytes at which conflicts
	// (persist ordering constraints) propagate through memory; coarse
	// tracking introduces persist false sharing (§8.2, Figure 5).
	// Power of two, ≥ 8. Zero means 8.
	TrackingGranularity uint64
	// AtomicGranularity is the atomic persist size in bytes: the unit
	// within which persists coalesce (§8.2, Figure 4). Power of two,
	// ≥ 8. Zero means 8.
	AtomicGranularity uint64
	// NoCoalescing disables persist coalescing entirely (ablation).
	NoCoalescing bool
	// TrackWorkPath records, for every completed work item, how much
	// the global critical path grew while it was the latest completion
	// (Result.WorkPathDeltas). Costs one slice append per work item.
	TrackWorkPath bool
	// CoalesceWindow bounds how long a placed persist stays open for
	// coalescing, measured in subsequently placed persists — a model of
	// a finite persist buffer: a write can only merge into a persist
	// that is still buffered, not one that drained long ago. 0 means
	// unbounded (the paper's idealized assumption). Small windows bound
	// the otherwise unbounded head-pointer coalescing that strand
	// persistency enjoys on the queue (§6).
	CoalesceWindow int64
}

func (p *Params) normalize() error {
	if p.TrackingGranularity == 0 {
		p.TrackingGranularity = memory.WordSize
	}
	if p.AtomicGranularity == 0 {
		p.AtomicGranularity = memory.WordSize
	}
	if !memory.IsPowerOfTwo(p.TrackingGranularity) || p.TrackingGranularity < memory.WordSize {
		return fmt.Errorf("core: tracking granularity %d must be a power of two >= %d", p.TrackingGranularity, memory.WordSize)
	}
	if !memory.IsPowerOfTwo(p.AtomicGranularity) || p.AtomicGranularity < memory.WordSize {
		return fmt.Errorf("core: atomic persist granularity %d must be a power of two >= %d", p.AtomicGranularity, memory.WordSize)
	}
	return nil
}

// Result reports a simulation's outcome.
type Result struct {
	// Model and Params echo the configuration.
	Model  Model
	Params Params
	// Events is the number of trace events consumed.
	Events int64
	// Persists is the number of persist operations issued (stores/RMWs
	// to the persistent space, counted per atomic-block fragment).
	Persists int64
	// Placed is the number of distinct NVRAM writes after coalescing.
	Placed int64
	// Coalesced is Persists − Placed.
	Coalesced int64
	// CriticalPath is the length of the longest chain of ordered
	// persists, in persists (multiply by persist latency for time).
	CriticalPath int64
	// WorkItems is the number of completed BeginWork/EndWork brackets
	// (queue inserts).
	WorkItems int64
	// Syncs is the number of PersistSync operations observed.
	Syncs int64
	// WorkPathDeltas (with Params.TrackWorkPath) holds the critical-path
	// growth attributed to each completed work item, in completion
	// order. Their sum equals CriticalPath; the distribution shows
	// whether ordering cost is uniform (strict: every insert pays) or
	// bursty (strand: only coalescing-window closures pay).
	WorkPathDeltas []int64
}

// PathPerWork is the average persist critical path contributed per work
// item — the y-axis of the paper's Figures 4 and 5.
func (r Result) PathPerWork() float64 {
	if r.WorkItems == 0 {
		return float64(r.CriticalPath)
	}
	return float64(r.CriticalPath) / float64(r.WorkItems)
}

// PersistBoundRate returns the work-item throughput (items/second)
// permitted by persist ordering constraints alone, for a given persist
// latency: items / (criticalPath × latency). +Inf when the critical
// path is zero.
func (r Result) PersistBoundRate(latency time.Duration) float64 {
	if latency <= 0 {
		panic("core: PersistBoundRate requires positive latency")
	}
	t := float64(r.CriticalPath) * latency.Seconds()
	if t == 0 {
		return math.Inf(1)
	}
	return float64(r.WorkItems) / t
}
