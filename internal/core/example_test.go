package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/trace"
)

// ExampleSimulate shows the essence of the paper in eight events: three
// persists with a barrier. Strict persistency serializes all of them;
// epoch persistency orders only across the barrier; strand persistency
// (with a NewStrand after the barrier) unorders everything.
func ExampleSimulate() {
	tr := &trace.Trace{}
	a := memory.PersistentBase
	tr.Emit(trace.Event{Kind: trace.Store, Addr: a, Size: 8, Val: 1})
	tr.Emit(trace.Event{Kind: trace.Store, Addr: a + 64, Size: 8, Val: 2})
	tr.Emit(trace.Event{Kind: trace.PersistBarrier})
	tr.Emit(trace.Event{Kind: trace.NewStrand})
	tr.Emit(trace.Event{Kind: trace.Store, Addr: a + 128, Size: 8, Val: 3})

	for _, m := range []core.Model{core.Strict, core.Epoch, core.Strand} {
		r, err := core.Simulate(tr, core.Params{Model: m})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-6s critical path %d\n", m, r.CriticalPath)
	}
	// Output:
	// strict critical path 3
	// epoch  critical path 2
	// strand critical path 1
}

// ExampleResult_PersistBoundRate converts a critical path into the
// paper's persist-bound throughput metric.
func ExampleResult_PersistBoundRate() {
	tr := &trace.Trace{}
	for i := 0; i < 4; i++ {
		tr.Emit(trace.Event{Kind: trace.BeginWork, Val: uint64(i)})
		tr.Emit(trace.Event{Kind: trace.Store, Addr: memory.PersistentBase + memory.Addr(64*i), Size: 8, Val: 1})
		tr.Emit(trace.Event{Kind: trace.PersistBarrier})
		tr.Emit(trace.Event{Kind: trace.EndWork, Val: uint64(i)})
	}
	r, _ := core.Simulate(tr, core.Params{Model: core.Epoch})
	fmt.Printf("path/work = %.0f\n", r.PathPerWork())
	// Output:
	// path/work = 1
}
