package core

import (
	"math/rand"
	"testing"

	"repro/internal/memory"
	"repro/internal/trace"
)

// synthTrace builds a synthetic mixed trace for simulator throughput
// measurement.
func synthTrace(n int) *trace.Trace {
	rng := rand.New(rand.NewSource(1))
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		tid := int32(i % 4)
		switch rng.Intn(10) {
		case 0:
			tr.Emit(trace.Event{TID: tid, Kind: trace.PersistBarrier})
		case 1:
			tr.Emit(trace.Event{TID: tid, Kind: trace.Load, Addr: memory.PersistentBase + memory.Addr(rng.Intn(1<<12)*8), Size: 8})
		case 2, 3:
			tr.Emit(trace.Event{TID: tid, Kind: trace.Store, Addr: memory.VolatileBase + memory.Addr(rng.Intn(64)*8), Size: 8, Val: 1})
		default:
			tr.Emit(trace.Event{TID: tid, Kind: trace.Store, Addr: memory.PersistentBase + memory.Addr(rng.Intn(1<<12)*8), Size: 8, Val: 1})
		}
	}
	return tr
}

// BenchmarkSimFeed measures event-processing throughput per model.
func BenchmarkSimFeed(b *testing.B) {
	tr := synthTrace(10000)
	for _, m := range Models {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(tr, Params{Model: m}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tr.Len()), "events/run")
		})
	}
}

// BenchmarkSimulateAll measures the single-pass multi-model walk: one
// trace decode feeding every model's simulator (the MultiSim path).
func BenchmarkSimulateAll(b *testing.B) {
	tr := synthTrace(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateAll(tr, Params{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len()*len(Models)), "simevents/run")
}

// TestSimulateAllocsPerEvent guards the allocation-lean replay path:
// once the pooled simulator is warm, replaying a trace must not
// allocate per event — only a bounded per-run residue (result bookkeeping,
// pool slot churn) is allowed, for both the strict and epoch hot paths.
func TestSimulateAllocsPerEvent(t *testing.T) {
	tr := synthTrace(10000)
	for _, m := range []Model{Strict, Epoch} {
		// Warm the sim pool and the dense block tables.
		if _, err := Simulate(tr, Params{Model: m}); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := Simulate(tr, Params{Model: m}); err != nil {
				t.Fatal(err)
			}
		})
		perEvent := allocs / float64(tr.Len())
		if perEvent > 0.01 {
			t.Errorf("%v: %.1f allocs per 10k-event replay (%.4f/event), want ~0/event",
				m, allocs, perEvent)
		}
	}
}

// BenchmarkCtxMerge measures the dependence-context lattice.
func BenchmarkCtxMerge(b *testing.B) {
	a := Ctx{Lvl: 10, Src: 3, Lvl2: 7}
	c := Ctx{Lvl: 9, Src: 5, Lvl2: 8}
	for i := 0; i < b.N; i++ {
		a = merge(a, c)
	}
	_ = a
}
