package core

import (
	"math/rand"
	"testing"

	"repro/internal/memory"
	"repro/internal/trace"
)

// synthTrace builds a synthetic mixed trace for simulator throughput
// measurement.
func synthTrace(n int) *trace.Trace {
	rng := rand.New(rand.NewSource(1))
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		tid := int32(i % 4)
		switch rng.Intn(10) {
		case 0:
			tr.Emit(trace.Event{TID: tid, Kind: trace.PersistBarrier})
		case 1:
			tr.Emit(trace.Event{TID: tid, Kind: trace.Load, Addr: memory.PersistentBase + memory.Addr(rng.Intn(1<<12)*8), Size: 8})
		case 2, 3:
			tr.Emit(trace.Event{TID: tid, Kind: trace.Store, Addr: memory.VolatileBase + memory.Addr(rng.Intn(64)*8), Size: 8, Val: 1})
		default:
			tr.Emit(trace.Event{TID: tid, Kind: trace.Store, Addr: memory.PersistentBase + memory.Addr(rng.Intn(1<<12)*8), Size: 8, Val: 1})
		}
	}
	return tr
}

// BenchmarkSimFeed measures event-processing throughput per model.
func BenchmarkSimFeed(b *testing.B) {
	tr := synthTrace(10000)
	for _, m := range Models {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(tr, Params{Model: m}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tr.Len()), "events/run")
		})
	}
}

// BenchmarkCtxMerge measures the dependence-context lattice.
func BenchmarkCtxMerge(b *testing.B) {
	a := Ctx{Lvl: 10, Src: 3, Lvl2: 7}
	c := Ctx{Lvl: 9, Src: 5, Lvl2: 8}
	for i := 0; i < b.N; i++ {
		a = merge(a, c)
	}
	_ = a
}
