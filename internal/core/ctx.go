package core

import "repro/internal/memory"

// Ctx is a persist dependence context: a compact summary of the set of
// persists that some program point is ordered after in persistent
// memory order. The timing simulation only needs two questions
// answered:
//
//  1. What is the latest level this point depends on? (Lvl)
//  2. What is the latest level excluding persists that coalesced into
//     a given atomic persist block's open persist? (Excluding)
//
// Question 2 decides persist coalescing (§3, "persist coalescing"): a
// persist may merge into the open persist of its atomic block only if
// everything else it depends on persists strictly earlier. To answer it
// without materializing dependence sets, Ctx tracks the atomic block
// that sourced the maximum level (Src) and the maximum level
// contributed by everything else (Lvl2). The summary is conservative:
// Excluding never underestimates, so coalescing is never unsound; at
// worst a legal coalesce is missed when several sources tie.
//
// Levels are persist critical-path depths: a persist at level L
// completes no earlier than L persist-latencies after the start of
// execution. Level 0 means "no dependence".
type Ctx struct {
	// Lvl is the maximum dependence level.
	Lvl int64
	// Src is the atomic persist block whose persist provides Lvl, or
	// memory.NoBlock when no single block does (ties, merges).
	Src memory.BlockID
	// Lvl2 is the maximum level among contributions not from Src.
	// Invariant: Lvl2 <= Lvl, and Src == memory.NoBlock implies
	// Lvl2 == Lvl.
	Lvl2 int64
}

// zeroCtx is the empty dependence context.
var zeroCtx = Ctx{Src: memory.NoBlock}

// persistCtx returns the context contributed by a persist at level lvl
// in atomic block src. Its Lvl2 is 0 because a persist's own
// dependences are strictly below its level by construction.
func persistCtx(lvl int64, src memory.BlockID) Ctx {
	return Ctx{Lvl: lvl, Src: src}
}

// merge combines two dependence contexts. It is commutative and
// order-insensitive in the properties that matter (see TestCtxMerge*).
func merge(a, b Ctx) Ctx {
	if a.Lvl < b.Lvl {
		a, b = b, a
	}
	// a.Lvl >= b.Lvl from here on.
	if a.Lvl == b.Lvl && a.Src != b.Src {
		// Two distinct top sources at the same level: no unique source.
		return Ctx{Lvl: a.Lvl, Src: memory.NoBlock, Lvl2: a.Lvl}
	}
	out := Ctx{Lvl: a.Lvl, Src: a.Src, Lvl2: a.Lvl2}
	other := b.Lvl
	if b.Src == a.Src {
		other = b.Lvl2
	}
	if other > out.Lvl2 {
		out.Lvl2 = other
	}
	return out
}

// mergeAll folds merge over any number of contexts.
func mergeAll(cs ...Ctx) Ctx {
	out := zeroCtx
	for _, c := range cs {
		out = merge(out, c)
	}
	return out
}

// Excluding returns the maximum dependence level ignoring contributions
// sourced from atomic block b. It may overestimate (safe) but never
// underestimates.
func (c Ctx) Excluding(b memory.BlockID) int64 {
	if c.Src == b && c.Src != memory.NoBlock {
		return c.Lvl2
	}
	return c.Lvl
}

// valid reports whether the context's invariants hold (tests only).
func (c Ctx) valid() bool {
	if c.Lvl2 > c.Lvl {
		return false
	}
	if c.Src == memory.NoBlock && c.Lvl2 != c.Lvl {
		return false
	}
	return c.Lvl >= 0 && c.Lvl2 >= 0
}
