package core_test

import (
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/queue"
	"repro/internal/telemetry"
)

// TestMultiSimEquivalence pins the shared-walk invariant: feeding one
// trace walk into every model simultaneously produces results
// byte-identical (including WorkPathDeltas) to running each model's
// simulator over the trace on its own — across all models, both queue
// designs, and several interleavings.
func TestMultiSimEquivalence(t *testing.T) {
	for _, design := range []queue.Design{queue.CWL, queue.TwoLock} {
		for _, seed := range []int64{1, 7, 42} {
			w := bench.Workload{
				Design: design, Policy: queue.PolicyEpoch,
				Threads: 2, Inserts: 120, Seed: seed,
			}
			tr, err := bench.Trace(w)
			if err != nil {
				t.Fatal(err)
			}
			base := core.Params{TrackWorkPath: true}
			got, err := core.SimulateAll(tr, base)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(core.Models) {
				t.Fatalf("SimulateAll returned %d results, want %d", len(got), len(core.Models))
			}
			for i, m := range core.Models {
				p := base
				p.Model = m
				want, err := core.Simulate(tr, p)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got[i]) {
					t.Errorf("%v seed %d %v: multi-sim result differs from solo\nsolo:  %+v\nmulti: %+v",
						design, seed, m, want, got[i])
				}
			}
		}
	}
}

// TestMultiSimProbeEquivalence attaches persist-timeline tracers to the
// per-model simulators inside a MultiSim and checks each tracer against
// both its own result and a solo probed run: same critical path, same
// attribution report.
func TestMultiSimProbeEquivalence(t *testing.T) {
	w := bench.Workload{Design: queue.CWL, Policy: queue.PolicyEpoch, Threads: 2, Inserts: 80, Seed: 5}
	tr, err := bench.Trace(w)
	if err != nil {
		t.Fatal(err)
	}
	models := []core.Model{core.Strict, core.Epoch, core.Strand}
	ms, err := core.NewMultiSim(core.Params{}, models...)
	if err != nil {
		t.Fatal(err)
	}
	multiTracers := make([]*telemetry.Tracer, len(models))
	for i, s := range ms.Sims() {
		multiTracers[i] = telemetry.NewTracer(models[i], "probe")
		s.SetProbe(multiTracers[i])
	}
	for e := range tr.All() {
		if err := ms.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	rs := ms.Results()
	for i, m := range models {
		if err := multiTracers[i].Verify(rs[i]); err != nil {
			t.Fatalf("%v: multi-sim tracer inconsistent with result: %v", m, err)
		}
		solo, err := core.NewSim(core.Params{Model: m})
		if err != nil {
			t.Fatal(err)
		}
		soloTracer := telemetry.NewTracer(m, "probe")
		solo.SetProbe(soloTracer)
		for e := range tr.All() {
			if err := solo.Feed(e); err != nil {
				t.Fatal(err)
			}
		}
		sr := solo.Result()
		if err := soloTracer.Verify(sr); err != nil {
			t.Fatalf("%v: solo tracer inconsistent: %v", m, err)
		}
		if a, b := soloTracer.CriticalPath(), multiTracers[i].CriticalPath(); a != b {
			t.Errorf("%v: probe critical path differs: solo %d, multi %d", m, a, b)
		}
		if a, b := soloTracer.Attribute(3).Render(), multiTracers[i].Attribute(3).Render(); a != b {
			t.Errorf("%v: attribution report differs\nsolo:\n%s\nmulti:\n%s", m, a, b)
		}
	}
}

// TestMultiSimEmit drives a MultiSim as a live trace.Sink and checks it
// matches the replayed walk.
func TestMultiSimEmit(t *testing.T) {
	w := bench.Workload{Design: queue.TwoLock, Policy: queue.PolicyStrand, Threads: 2, Inserts: 60, Seed: 9}
	tr, err := bench.Trace(w)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.SimulateAll(tr, core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := core.NewMultiSim(core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bench.Run(w, ms); err != nil {
		t.Fatal(err)
	}
	if err := ms.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, ms.Results()) {
		t.Fatal("live-streamed MultiSim results differ from trace replay")
	}
}
