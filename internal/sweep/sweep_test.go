package sweep

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestRunMergesInGridOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		const n = 200
		var got []int
		err := Run(n, Config{Parallel: workers}, func(i int) (int, error) {
			// Reverse-staggered sleep: later items complete first, so an
			// unordered merge would reverse the sequence.
			time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
			return i * i, nil
		}, func(i, v int) error {
			if v != i*i {
				t.Fatalf("workers=%d: merge(%d) got %d", workers, i, v)
			}
			got = append(got, i)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: merged %d of %d items", workers, len(got), n)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: merge order broken at %d: %v", workers, i, got[:i+1])
			}
		}
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	// Indices 3 and 7 both fail; index 3 slowest. The sequential loop
	// would report index 3, so parallel runs must too.
	for _, workers := range []int{1, 4, 16} {
		var merged []int
		err := Run(10, Config{Parallel: workers}, func(i int) (int, error) {
			switch i {
			case 3:
				time.Sleep(20 * time.Millisecond)
				return 0, fmt.Errorf("boom at 3")
			case 7:
				return 0, fmt.Errorf("boom at 7")
			}
			return i, nil
		}, func(i, v int) error {
			merged = append(merged, i)
			return nil
		})
		if err == nil || err.Error() != "boom at 3" {
			t.Fatalf("workers=%d: err = %v, want boom at 3", workers, err)
		}
		for _, i := range merged {
			if i >= 3 {
				t.Fatalf("workers=%d: merged index %d past the error", workers, i)
			}
		}
	}
}

func TestRunCancelsOnError(t *testing.T) {
	// With 1 worker the error at index 2 must prevent all later fn
	// calls — exactly the sequential contract.
	var calls atomic.Int64
	err := Run(100, Config{Parallel: 1}, func(i int) (int, error) {
		calls.Add(1)
		if i == 2 {
			return 0, errors.New("stop")
		}
		return 0, nil
	}, nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("fn ran %d times, want 3", got)
	}

	// Parallel workers stop claiming new items after the error; with a
	// slow tail the claimed count stays well below n.
	calls.Store(0)
	err = Run(10000, Config{Parallel: 2}, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, errors.New("stop")
		}
		time.Sleep(time.Millisecond)
		return 0, nil
	}, nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if got := calls.Load(); got >= 10000 {
		t.Fatalf("no cancellation: fn ran %d times", got)
	}
}

func TestRunMergeErrorStops(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var merges int
		err := Run(50, Config{Parallel: workers}, func(i int) (int, error) {
			return i, nil
		}, func(i, v int) error {
			merges++
			if i == 5 {
				return errors.New("merge boom")
			}
			return nil
		})
		if err == nil || err.Error() != "merge boom" {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if merges != 6 {
			t.Fatalf("workers=%d: merge ran %d times, want 6", workers, merges)
		}
	}
}

func TestRunEmptyAndNilMerge(t *testing.T) {
	if err := Run(0, Config{}, func(i int) (int, error) { return 0, nil }, nil); err != nil {
		t.Fatal(err)
	}
	if err := Run(5, Config{Parallel: 3}, func(i int) (int, error) { return i, nil }, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	const n = 40
	err := Run(n, Config{Parallel: 4, Name: "unit", Registry: reg}, func(i int) (int, error) {
		time.Sleep(time.Millisecond)
		return i, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`sweep_items_total{sweep="unit"}`]; got != n {
		t.Fatalf("items counter = %d, want %d", got, n)
	}
	if got := snap.Gauges[`sweep_workers_busy{sweep="unit"}`]; got != 0 {
		t.Fatalf("busy gauge = %v after completion, want 0", got)
	}
	h, ok := snap.Histograms[`sweep_queue_depth{sweep="unit"}`]
	if !ok || h.Count != n {
		t.Fatalf("queue depth histogram = %+v, want %d observations", h, n)
	}
}

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	if (Config{}).Workers() <= 0 {
		t.Fatal("default worker count must be positive")
	}
	if got := (Config{Parallel: 3}).Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
}

func TestNamedKeepsExplicitName(t *testing.T) {
	if got := (Config{}).Named("x").Name; got != "x" {
		t.Fatalf("Named gave %q", got)
	}
	if got := (Config{Name: "cli"}).Named("x").Name; got != "cli" {
		t.Fatalf("Named overwrote explicit name: %q", got)
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	// The determinism contract at the package level: an order-sensitive
	// aggregation (here a rolling hash) is identical for any worker
	// count because merges happen in grid order.
	agg := func(workers int) uint64 {
		var h uint64 = 1469598103934665603
		err := Run(500, Config{Parallel: workers}, func(i int) (uint64, error) {
			return uint64(i)*0x9e3779b97f4a7c15 + 1, nil
		}, func(i int, v uint64) error {
			h = (h ^ v) * 1099511628211
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	want := agg(1)
	for _, w := range []int{2, 3, 8, 32} {
		if got := agg(w); got != want {
			t.Fatalf("workers=%d: aggregate %x != sequential %x", w, got, want)
		}
	}
}
