// Package sweep is the bounded worker pool behind every experiment
// grid: pqbench's (seed × design × policy × config) sweeps, the
// observer's crash-cut sampling, and fault campaigns all fan their
// work items out through Run.
//
// The pool's contract is *deterministic aggregation*: fn evaluates
// grid items concurrently (bounded by Config.Parallel workers), but
// merge is called on the caller's goroutine in strict grid order —
// item i merges only after items 0..i-1 — regardless of completion
// order. A grid whose items are independent and deterministic
// therefore produces byte-identical aggregated reports at any worker
// count, which is what keeps the golden seed-stability tests and
// campaign repro strings meaningful under parallelism.
//
// Error semantics mirror a sequential loop: the first error (by grid
// index, not completion time) wins, merging stops before the erroring
// index, and in-flight work is canceled — workers finish their
// current item and exit.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Config parameterizes a sweep.
type Config struct {
	// Parallel is the worker count; 0 or negative means GOMAXPROCS
	// (the -parallel CLI flag plumbs straight into this field).
	Parallel int
	// Name labels this sweep's telemetry series; "" means "sweep".
	Name string
	// Registry, when non-nil, receives per-sweep telemetry: a
	// sweep_workers_busy gauge, a sweep_queue_depth histogram
	// (items still unclaimed at each dequeue), and a
	// sweep_items_total counter, all labeled {sweep="Name"}.
	Registry *telemetry.Registry
	// Spans, when non-nil, records one wall-clock span per grid item
	// (category "sweep", name Name, worker attribution, item index) —
	// per-worker span totals reconcile with the Registry's items/busy
	// telemetry.
	Spans *telemetry.SpanTracer
}

// Workers resolves the effective worker count.
func (c Config) Workers() int {
	if c.Parallel > 0 {
		return c.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// Named returns a copy of c with Name defaulted to name — callers pass
// a CLI-provided Config through while labeling each sweep they run.
func (c Config) Named(name string) Config {
	if c.Name == "" {
		c.Name = name
	}
	return c
}

// QueueDepthBounds are the sweep_queue_depth histogram buckets.
var QueueDepthBounds = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}

// gauges bundles the optional telemetry series of one sweep.
type gauges struct {
	busy  *telemetry.Gauge
	depth *telemetry.Histogram
	items *telemetry.Counter
}

func (c Config) gauges() gauges {
	if c.Registry == nil {
		return gauges{}
	}
	name := c.Name
	if name == "" {
		name = "sweep"
	}
	return gauges{
		busy:  c.Registry.Gauge(telemetry.Label("sweep_workers_busy", "sweep", name)),
		depth: c.Registry.Histogram(telemetry.Label("sweep_queue_depth", "sweep", name), QueueDepthBounds...),
		items: c.Registry.Counter(telemetry.Label("sweep_items_total", "sweep", name)),
	}
}

// result carries one completed grid item to the merge loop.
type result[T any] struct {
	i   int
	v   T
	err error
}

// Run evaluates fn(i) for every i in [0, n) on a bounded worker pool
// and feeds results to merge in strict index order on the caller's
// goroutine. fn must be safe for concurrent invocation and must not
// depend on the results of other grid items; merge needs no locking.
// A nil merge discards results. Run returns the lowest-index error
// from fn or merge (identical to what a sequential loop would return
// for independent items), canceling remaining work on failure.
func Run[T any](n int, cfg Config, fn func(i int) (T, error), merge func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	workers := cfg.Workers()
	if workers > n {
		workers = n
	}
	g := cfg.gauges()

	spanName := cfg.Name
	if spanName == "" {
		spanName = "sweep"
	}

	if workers <= 1 {
		for i := 0; i < n; i++ {
			if g.depth != nil {
				g.depth.Observe(float64(n - i - 1))
			}
			sp := cfg.Spans.Start("sweep", spanName).Worker(0).Arg("item", i)
			v, err := fn(i)
			sp.End()
			if g.items != nil {
				g.items.Inc()
			}
			if err != nil {
				return err
			}
			if merge != nil {
				if err := merge(i, v); err != nil {
					return err
				}
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		stopped atomic.Bool
		busy    atomic.Int64
		wg      sync.WaitGroup
	)
	ch := make(chan result[T], workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for !stopped.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if g.depth != nil {
					g.depth.Observe(float64(n - i - 1))
				}
				if g.busy != nil {
					g.busy.Set(float64(busy.Add(1)))
				}
				sp := cfg.Spans.Start("sweep", spanName).Worker(worker).Arg("item", i)
				v, err := fn(i)
				sp.End()
				if g.busy != nil {
					g.busy.Set(float64(busy.Add(-1)))
				}
				if g.items != nil {
					g.items.Inc()
				}
				if err != nil {
					stopped.Store(true)
				}
				ch <- result[T]{i, v, err}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()

	// Ordered merge: buffer out-of-order completions, advance a merge
	// cursor. An fn error at index e never enters the buffer, so the
	// cursor can never pass e — items after an error are dropped just
	// as a sequential loop would never have computed them. Indices are
	// claimed in order, so by the time any index errors, every lower
	// index is already in flight and will still report; the
	// lowest-index error therefore matches the sequential one.
	pending := make(map[int]result[T])
	nextMerge := 0
	var fnErr, mergeErr error
	errIndex := n
	for r := range ch {
		if r.err != nil {
			if r.i < errIndex {
				errIndex, fnErr = r.i, r.err
			}
			continue
		}
		pending[r.i] = r
		for mergeErr == nil && nextMerge < errIndex {
			q, ok := pending[nextMerge]
			if !ok {
				break
			}
			delete(pending, nextMerge)
			if merge != nil {
				if err := merge(nextMerge, q.v); err != nil {
					mergeErr = err
					stopped.Store(true)
				}
			}
			nextMerge++
		}
	}
	if g.busy != nil {
		g.busy.Set(0)
	}
	if mergeErr != nil {
		// A merge at index m only runs once fn(0..m) all succeeded, so
		// any fn error sits above m and the sequential loop would have
		// surfaced the merge error first.
		return mergeErr
	}
	return fnErr
}
