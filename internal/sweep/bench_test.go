package sweep

import (
	"runtime"
	"testing"
)

// spin is a CPU-bound grid item (~0.5 ms on current hardware): the
// shape of one pqbench simulation or campaign scenario.
func spin(i int) (uint64, error) {
	h := uint64(i) + 0x9e3779b97f4a7c15
	for j := 0; j < 200_000; j++ {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
	}
	return h, nil
}

// benchmarkSweep measures wall-clock time of a 64-item CPU-bound grid
// at a given worker count; comparing the sequential and parallel
// variants gives the sweep engine's speedup on this host.
func benchmarkSweep(b *testing.B, workers int) {
	var sink uint64
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if err := Run(64, Config{Parallel: workers}, spin, func(_ int, v uint64) error {
			sink ^= v
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	_ = sink
}

func BenchmarkSweepSequential(b *testing.B) { benchmarkSweep(b, 1) }

func BenchmarkSweepParallel4(b *testing.B) { benchmarkSweep(b, 4) }

func BenchmarkSweepParallelMax(b *testing.B) { benchmarkSweep(b, runtime.GOMAXPROCS(0)) }
