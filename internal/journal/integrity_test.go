package journal

import (
	"testing"

	"repro/internal/durable"
	"repro/internal/exec"
	"repro/internal/memory"
)

// buildImageFmt applies a few committed transactions under the chosen
// format and returns the quiescent image + meta.
func buildImageFmt(t *testing.T, integrity bool) (*memory.Image, Meta) {
	t.Helper()
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	st, err := New(s, Config{Blocks: 4, JournalBytes: 1 << 11, Policy: PolicyEpoch, Integrity: integrity})
	if err != nil {
		t.Fatal(err)
	}
	for tag := uint64(1); tag <= 3; tag++ {
		st.Update(s, groupWrites(0, tag))
		st.Update(s, groupWrites(1, tag))
	}
	return m.PersistentImage(), st.Meta()
}

func TestIntegrityJournalRoundTrip(t *testing.T) {
	im, meta := buildImageFmt(t, true)
	state, err := Recover(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkGroups(state.Table); err != nil {
		t.Fatal(err)
	}
	_, rep, err := RecoverSalvage(im, meta)
	if err != nil || rep.Detected() {
		t.Fatalf("salvage on clean image: detected=%v, err=%v\n%+v", rep.Detected(), err, rep)
	}
}

func TestTableBlockFlipSilentLegacyDetectedWithIntegrity(t *testing.T) {
	// A silent flip in an applied table block whose redo records the
	// checkpoint already truncated — recovery must trust the in-place
	// copy. The legacy format has nothing covering in-place blocks, so
	// it serves the corrupt block with a clean report; the
	// shadow-checksum array catches it.
	build := func(integrity bool) (*memory.Image, Meta) {
		m := exec.NewMachine(exec.Config{})
		s := m.SetupThread()
		// A small ring: the group-1 updates push the checkpoint past
		// group 0's records, leaving block 0 in-place only.
		st, err := New(s, Config{Blocks: 4, JournalBytes: 1 << 10, Policy: PolicyEpoch, Integrity: integrity})
		if err != nil {
			t.Fatal(err)
		}
		st.Update(s, groupWrites(0, 1))
		for tag := uint64(2); tag <= 9; tag++ {
			st.Update(s, groupWrites(1, tag))
		}
		return m.PersistentImage(), st.Meta()
	}
	flip := func(im *memory.Image, meta Meta) {
		a := meta.Table + memory.Addr(BlockBytes/2)
		im.WriteWord(a, im.ReadWord(a)^(1<<22))
	}

	im, meta := build(false)
	flip(im, meta)
	_, rep, err := RecoverSalvage(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected() {
		t.Fatalf("legacy block flip unexpectedly detected: %+v", rep)
	}

	im, meta = build(true)
	flip(im, meta)
	if _, err := Recover(im, meta); !IsCorruption(err) {
		t.Fatalf("strict integrity recovery accepted a corrupt block: %v", err)
	}
	_, rep, err = RecoverSalvage(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CRCDetected == 0 || rep.Quarantined == 0 {
		t.Fatalf("block flip not disclosed: %+v", rep)
	}
}

func TestIntegrityCommitPointerFlipDetected(t *testing.T) {
	// Corrupting the active copy of the committed-head durable word
	// fails its CRC; salvage falls back and reports the detection.
	im, meta := buildImageFmt(t, true)
	active, ok := durable.DecodeCDB(im.ReadWord(meta.CommittedHead))
	if !ok {
		t.Fatal("quiescent CDB does not decode")
	}
	valOff := memory.Addr(8)
	if active {
		valOff = 24
	}
	a := meta.CommittedHead + valOff
	im.WriteWord(a, im.ReadWord(a)^(1<<7))
	if _, err := Recover(im, meta); !IsCorruption(err) {
		t.Fatalf("strict recovery accepted a corrupt commit pointer: %v", err)
	}
	_, rep, err := RecoverSalvage(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CRCDetected == 0 {
		t.Fatalf("commit pointer flip not detected: %+v", rep)
	}
}
