package journal

import (
	"testing"

	"repro/internal/memory"
)

func salvageMeta() Meta {
	return Meta{
		Table:         memory.PersistentBase,
		Blocks:        4,
		Journal:       memory.PersistentBase + 4*BlockBytes,
		JournalBytes:  512, // 4 record slots
		CommittedHead: memory.PersistentBase + 4096,
		Checkpoint:    memory.PersistentBase + 4104,
	}
}

// writeSalvageRecord serializes one valid redo record at monotonic
// offset pos and returns the next offset.
func writeSalvageRecord(im *memory.Image, meta Meta, pos, txn, blk uint64, data []byte) uint64 {
	base := meta.Journal + memory.Addr(pos%meta.JournalBytes)
	im.WriteWord(base, kindData)
	im.WriteWord(base+8, txn)
	im.WriteWord(base+16, blk)
	im.WriteBytes(base+24, data)
	im.WriteWord(base+24+BlockBytes, recordChecksum(pos, txn, blk, data))
	return pos + recordBytes
}

// salvageImage builds an image with n committed records (txn i writes
// block i%Blocks with a tagged pattern).
func salvageImage(n int) (*memory.Image, Meta) {
	meta := salvageMeta()
	im := memory.NewImage()
	for i := 0; i < meta.Blocks; i++ {
		im.WriteBytes(meta.Table+memory.Addr(i*BlockBytes), MakeBlock(uint64(100+i)))
	}
	pos := uint64(0)
	for i := 0; i < n; i++ {
		blk := uint64(i % meta.Blocks)
		pos = writeSalvageRecord(im, meta, pos, uint64(i+1), blk, MakeBlock(uint64(i+1)))
	}
	im.WriteWord(meta.CommittedHead, pos)
	im.WriteWord(meta.Checkpoint, 0)
	return im, meta
}

func TestJournalSalvageTable(t *testing.T) {
	cases := []struct {
		name       string
		corrupt    func(im *memory.Image, meta Meta)
		recovered  int
		quarantine int
		header     bool
		detected   bool
		// wantTag, if non-zero, asserts table block wantBlk carries
		// txn id wantTag after replay.
		wantBlk int
		wantTag uint64
	}{
		{
			name:      "clean image replays all records",
			corrupt:   func(*memory.Image, Meta) {},
			recovered: 3,
			wantBlk:   2, wantTag: 3,
		},
		{
			name: "bit-flipped record quarantined, replay continues",
			corrupt: func(im *memory.Image, meta Meta) {
				// Flip one data bit inside record 1 (offset 128).
				im.FlipBit(meta.Journal+128+24+8, 3)
			},
			recovered:  2,
			quarantine: 1,
			detected:   true,
			// Block 1's redo was lost; block stays at its checkpointed tag.
			wantBlk: 1, wantTag: 101,
		},
		{
			name: "poisoned record quarantined",
			corrupt: func(im *memory.Image, meta Meta) {
				im.Poison(meta.Journal + 128 + 24)
			},
			recovered:  2,
			quarantine: 1,
			detected:   true,
		},
		{
			name: "record kind clobbered",
			corrupt: func(im *memory.Image, meta Meta) {
				im.WriteWord(meta.Journal+128, 0x1234)
			},
			recovered:  2,
			quarantine: 1,
			detected:   true,
		},
		{
			name: "implausible commit pointer quarantines header",
			corrupt: func(im *memory.Image, meta Meta) {
				im.WriteWord(meta.Checkpoint, 4096) // checkpoint beyond committed
			},
			header:   true,
			detected: true,
		},
		{
			name: "poisoned commit pointer quarantines header",
			corrupt: func(im *memory.Image, meta Meta) {
				im.Poison(meta.CommittedHead)
			},
			header:   true,
			detected: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			im, meta := salvageImage(3)
			tc.corrupt(im, meta)
			st, rep, err := RecoverSalvage(im, meta)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Recovered != tc.recovered || rep.Quarantined != tc.quarantine ||
				rep.HeaderQuarantined != tc.header {
				t.Fatalf("report %s, want recovered=%d quarantined=%d header=%v",
					rep.String(), tc.recovered, tc.quarantine, tc.header)
			}
			if rep.Detected() != tc.detected {
				t.Fatalf("Detected() = %v, want %v (%s)", rep.Detected(), tc.detected, rep.String())
			}
			if tc.wantTag != 0 {
				got, intact := BlockTag(st.Table[tc.wantBlk])
				if got != tc.wantTag || !intact {
					t.Fatalf("block %d tag = %d (intact %v), want %d",
						tc.wantBlk, got, intact, tc.wantTag)
				}
			}
		})
	}
}

// TestJournalSalvageMatchesRecoverOnCleanImages pins the baseline-clean
// invariant: wherever strict Recover succeeds, salvage replays the same
// table with a clean report.
func TestJournalSalvageMatchesRecoverOnCleanImages(t *testing.T) {
	im, meta := salvageImage(3)
	strict, err := Recover(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	soft, rep, err := RecoverSalvage(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected() {
		t.Fatalf("clean image produced dirty report: %s", rep.String())
	}
	if strict.Records != soft.Records || strict.Txns != soft.Txns {
		t.Fatalf("strict %+v vs salvage %+v", strict, soft)
	}
	for i := range strict.Table {
		if string(strict.Table[i]) != string(soft.Table[i]) {
			t.Fatalf("table block %d differs", i)
		}
	}
}
