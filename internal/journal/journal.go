// Package journal implements the paper's second motivating workload
// class: journaled metadata updates ("file systems must constrain the
// order of disk operations to metadata to preserve a consistent file
// system image", §9; WAL-style redo journaling per ARIES).
//
// A Store holds a table of fixed-size metadata blocks in persistent
// memory plus a redo journal ring. A transaction updates several
// blocks atomically:
//
//  1. append one redo record per block to the journal    (persists)
//  2. persist barrier                                     — records before commit
//  3. advance the persistent CommittedHead word           (persist: commit point)
//  4. persist barrier                                     — commit before in-place
//  5. apply the new values in place to the table          (persists)
//  6. persist barrier; advance the checkpoint when the ring fills
//
// The commit point is a single persistent word, so strong persist
// atomicity serializes commits under *every* model — the same design
// trick as the queue's head pointer (§6). Recovery redoes all records
// between the checkpoint and CommittedHead; anything beyond is an
// uncommitted tail that, by construction, never touched the table.
//
// Unlike the queue, the *racing epochs* discipline is NOT safe for
// this structure: checkpoint truncation must be ordered after other
// threads' in-place applies, which only the barriers around the lock
// provide. The crash tests demonstrate the reachable corruption —
// an executable illustration that relaxed-persistency annotation is a
// per-algorithm contract, not a global switch.
package journal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/durable"
	"repro/internal/exec"
	"repro/internal/locks"
	"repro/internal/memory"
)

// Policy selects the annotation discipline, mirroring Algorithm 1's
// options for this structure.
type Policy uint8

const (
	// PolicyStrict emits no annotations (strict persistency).
	PolicyStrict Policy = iota
	// PolicyEpoch surrounds the lock with barriers and keeps the
	// record/commit/apply stages in separate epochs.
	PolicyEpoch
	// PolicyRacingEpoch drops the barriers around the lock. Unsafe for
	// this structure (see the package comment); provided for the
	// negative crash tests.
	PolicyRacingEpoch
	// PolicyStrand begins a new strand per transaction after the
	// checkpoint bookkeeping.
	PolicyStrand
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyStrict:
		return "strict"
	case PolicyEpoch:
		return "epoch"
	case PolicyRacingEpoch:
		return "racing-epochs"
	case PolicyStrand:
		return "strand"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Policies lists the annotation disciplines.
var Policies = []Policy{PolicyStrict, PolicyEpoch, PolicyRacingEpoch, PolicyStrand}

const (
	// BlockBytes is the metadata block size (one cache line).
	BlockBytes = 64
	// recordBytes is a redo record slot: kind, txn, block index,
	// payload, checksum, padded to two lines.
	recordBytes = 128
	// kindData marks a redo record slot.
	kindData = 0xda7a
	// wrapKind marks a skipped ring tail.
	wrapKind = ^uint64(0)
	// recordPayloadBytes is the integrity-mode frame payload: txn id,
	// block index, block data. The frame (96 bytes) fits the 128-byte
	// record slot; its length word doubles as the wrap-marker word.
	recordPayloadBytes = 16 + BlockBytes
)

// Config parameterizes a Store.
type Config struct {
	// Blocks is the metadata table size in blocks.
	Blocks int
	// JournalBytes is the redo ring capacity (multiple of 64).
	JournalBytes uint64
	// Policy selects annotations.
	Policy Policy
	// BreakRecordCommitOrder omits the barrier between the redo records
	// and the commit persist (stage 1 → stage 2). For negative testing
	// only: under relaxed persistency the commit record can then persist
	// before its payload, so recovery redoes garbage.
	BreakRecordCommitOrder bool
	// OmitStrandRecipe omits §5.3's read-then-barrier recipe after
	// NewStrand under PolicyStrand. For negative testing only: the
	// transaction's persists are then unordered after the checkpoint
	// truncation the thread observed, so a crash can expose a stale
	// checkpoint alongside newer ring contents.
	OmitStrandRecipe bool
	// Integrity hardens the durable format (internal/durable): the
	// commit point and checkpoint become dual-copy durable words,
	// redo records become CRC64 frames bound to their ring offset, and
	// every in-place apply maintains a per-block shadow checksum, so
	// recovery detects silent media corruption anywhere it reads.
	Integrity bool
}

// Meta locates the Store's persistent structures for recovery.
type Meta struct {
	Table        memory.Addr
	Blocks       int
	Journal      memory.Addr
	JournalBytes uint64
	// CommittedHead is the persistent commit point: a monotonic ring
	// offset covering all committed records. With Integrity it is the
	// base of a 40-byte durable word.
	CommittedHead memory.Addr
	// Checkpoint is the persistent truncation point: records below it
	// are already applied in place. With Integrity it is the base of a
	// 40-byte durable word.
	Checkpoint memory.Addr
	// Integrity marks the hardened layout (durable-word pointers,
	// CRC-framed records, per-block shadow checksums).
	Integrity bool
	// BlockCRC is the shadow checksum array (one word per table block),
	// maintained alongside every in-place apply. Zero unless Integrity.
	BlockCRC memory.Addr
}

// Store is the journaled metadata store.
type Store struct {
	cfg  Config
	meta Meta
	lock locks.Lock
	// headV is the volatile journal append cursor (monotonic).
	headV memory.Addr
	// txnSeq is the volatile transaction id counter.
	txnSeq memory.Addr
}

// New allocates and initializes a Store via a setup thread.
func New(s *exec.Thread, cfg Config) (*Store, error) {
	if cfg.Blocks <= 0 {
		return nil, fmt.Errorf("journal: need at least one block")
	}
	if cfg.JournalBytes == 0 || cfg.JournalBytes%64 != 0 {
		return nil, fmt.Errorf("journal: JournalBytes %d must be a positive multiple of 64", cfg.JournalBytes)
	}
	if cfg.JournalBytes < 4*recordBytes {
		return nil, fmt.Errorf("journal: ring too small")
	}
	st := &Store{cfg: cfg}
	ptrBytes := 8
	if cfg.Integrity {
		ptrBytes = durable.WordBytes
	}
	st.meta = Meta{
		Table:         s.MallocPersistent(cfg.Blocks*BlockBytes, 64),
		Blocks:        cfg.Blocks,
		Journal:       s.MallocPersistent(int(cfg.JournalBytes), 64),
		JournalBytes:  cfg.JournalBytes,
		CommittedHead: s.MallocPersistent(ptrBytes, 64),
		Checkpoint:    s.MallocPersistent(ptrBytes, 64),
		Integrity:     cfg.Integrity,
	}
	if cfg.Integrity {
		st.meta.BlockCRC = s.MallocPersistent(cfg.Blocks*8, 64)
		durable.Word{Base: st.meta.CommittedHead}.Init(s, 0)
		durable.Word{Base: st.meta.Checkpoint}.Init(s, 0)
	} else {
		s.Store8(st.meta.CommittedHead, 0)
		s.Store8(st.meta.Checkpoint, 0)
	}
	s.PersistBarrier()
	st.lock = locks.NewMCS(s)
	st.headV = s.MallocVolatile(8, 64)
	st.txnSeq = s.MallocVolatile(8, 64)
	s.Store8(st.headV, 0)
	s.Store8(st.txnSeq, 0)
	return st, nil
}

// MustNew is New that panics on config errors.
func MustNew(s *exec.Thread, cfg Config) *Store {
	st, err := New(s, cfg)
	if err != nil {
		panic(err)
	}
	return st
}

// Meta returns the persistent layout for recovery.
func (st *Store) Meta() Meta { return st.meta }

func (st *Store) barrierOuter(t *exec.Thread) {
	if st.cfg.Policy != PolicyStrict {
		t.PersistBarrier()
	}
}

func (st *Store) barrierInner(t *exec.Thread) {
	if st.cfg.Policy == PolicyEpoch || st.cfg.Policy == PolicyStrand {
		t.PersistBarrier()
	}
}

func (st *Store) barrierStage(t *exec.Thread) {
	if st.cfg.Policy != PolicyStrict {
		t.PersistBarrier()
	}
}

// Pointer accessors: integrity mode stores the commit point and the
// checkpoint in dual-copy durable words whose commit point is the CDB
// flip at the word's base address — the same address the plain layout
// uses, so the strand recipe's Load8 keeps importing the right
// dependence either way.

func (st *Store) relaxed() bool { return st.cfg.Policy != PolicyStrict }

func (st *Store) loadCheckpoint(t *exec.Thread) uint64 {
	if st.cfg.Integrity {
		return durable.Word{Base: st.meta.Checkpoint}.Load(t)
	}
	return t.Load8(st.meta.Checkpoint)
}

func (st *Store) storeCheckpoint(t *exec.Thread, v uint64) {
	if st.cfg.Integrity {
		durable.Word{Base: st.meta.Checkpoint}.Store(t, v, st.relaxed())
		return
	}
	t.Store8(st.meta.Checkpoint, v)
}

func (st *Store) storeCommitted(t *exec.Thread, v uint64) {
	if st.cfg.Integrity {
		durable.Word{Base: st.meta.CommittedHead}.Store(t, v, st.relaxed())
		return
	}
	t.Store8(st.meta.CommittedHead, v)
}

// Write is one block update within a transaction.
type Write struct {
	// Block is the table index.
	Block int
	// Data is exactly BlockBytes of new content.
	Data []byte
}

// Update applies a multi-block transaction atomically with respect to
// failure. It returns the transaction id.
func (st *Store) Update(t *exec.Thread, writes []Write) uint64 {
	if len(writes) == 0 {
		panic("journal: empty transaction")
	}
	need := uint64(len(writes)+1) * recordBytes // +1 slot of wrap slack
	if need > st.cfg.JournalBytes/2 {
		panic("journal: transaction larger than half the ring")
	}
	for _, w := range writes {
		if w.Block < 0 || w.Block >= st.cfg.Blocks {
			panic(fmt.Sprintf("journal: block %d out of range", w.Block))
		}
		if len(w.Data) != BlockBytes {
			panic(fmt.Sprintf("journal: block data must be %d bytes, got %d", BlockBytes, len(w.Data)))
		}
	}

	st.barrierOuter(t)
	st.lock.Acquire(t)
	txn := t.Add8(st.txnSeq, 1)
	head := t.Load8(st.headV)
	ckpt := st.loadCheckpoint(t)
	st.barrierInner(t)

	// Make room before starting a new strand. Truncation must stay
	// ordered after prior transactions' in-place applies; the inner
	// barrier just bound them (every prior transaction bound its
	// applies before releasing the lock), which is why the racing
	// discipline — which drops that barrier — is unsafe for this
	// structure (the crash tests demonstrate it).
	if head+need-ckpt > st.cfg.JournalBytes {
		st.storeCheckpoint(t, head)
		st.barrierStage(t)
	}

	if st.cfg.Policy == PolicyStrand {
		t.NewStrand()
		if !st.cfg.OmitStrandRecipe {
			// §5.3's recipe: "a persist strand begins by reading persisted
			// memory locations after which new persists must be ordered",
			// followed by a persist barrier. Every persist of this
			// transaction — the records overwrite freed ring slots, and the
			// commit word widens the live window — must follow the latest
			// checkpoint truncation, or a crash can expose a stale
			// checkpoint alongside newer ring contents.
			t.Load8(st.meta.Checkpoint)
			t.PersistBarrier()
		}
	}

	// Stage 1: redo records (concurrent persists within the epoch).
	for _, w := range writes {
		head = st.appendRecord(t, head, txn, uint64(w.Block), w.Data)
	}
	if !st.cfg.BreakRecordCommitOrder {
		st.barrierStage(t) // records before commit
	}

	// Stage 2: commit — a single word; strong persist atomicity
	// serializes commits under every model. (In integrity mode the
	// CDB flip plays that single-word role.)
	st.storeCommitted(t, head)
	st.barrierStage(t) // commit before in-place applies

	// Stage 3: in-place applies (redone at recovery if torn). With
	// integrity each apply refreshes the block's shadow checksum in the
	// same epoch, so truncation retires a block's redo records only
	// after both content and shadow are bound.
	for _, w := range writes {
		addr := st.meta.Table + memory.Addr(w.Block*BlockBytes)
		t.StoreBytes(addr, w.Data)
		if st.cfg.Integrity {
			t.Store8(st.meta.BlockCRC+memory.Addr(w.Block*8), durable.Checksum(uint64(addr), w.Data))
		}
	}
	st.barrierInner(t) // applies bound before the lock release exports

	t.Store8(st.headV, head)
	st.lock.Release(t)
	st.barrierOuter(t)
	return txn
}

// appendRecord persists one redo record at monotonic offset pos and
// returns the next offset, skipping the ring tail with a wrap marker
// when the slot would straddle the end.
func (st *Store) appendRecord(t *exec.Thread, pos uint64, txn, blk uint64, data []byte) uint64 {
	idx := pos % st.cfg.JournalBytes
	if idx+recordBytes > st.cfg.JournalBytes {
		t.Store8(st.meta.Journal+memory.Addr(idx), wrapKind)
		pos += st.cfg.JournalBytes - idx
		idx = 0
	}
	base := st.meta.Journal + memory.Addr(idx)
	if st.cfg.Integrity {
		// CRC64 frame bound to the ring offset: [len | txn blk data | crc].
		payload := make([]byte, recordPayloadBytes)
		binary.LittleEndian.PutUint64(payload[0:8], txn)
		binary.LittleEndian.PutUint64(payload[8:16], blk)
		copy(payload[16:], data)
		durable.SealFrame(t, base, pos, payload)
		return pos + recordBytes
	}
	t.Store8(base, kindData)
	t.Store8(base+8, txn)
	t.Store8(base+16, blk)
	t.StoreBytes(base+24, data)
	t.Store8(base+24+BlockBytes, recordChecksum(pos, txn, blk, data))
	return pos + recordBytes
}

// Read returns the current content of a table block (runtime read, not
// recovery).
func (st *Store) Read(t *exec.Thread, block int) []byte {
	out := make([]byte, BlockBytes)
	t.LoadBytes(st.meta.Table+memory.Addr(block*BlockBytes), out)
	return out
}

// recordChecksum binds a journal slot to its monotonic offset and
// content, so stale ring eras and partial writes are detectable.
func recordChecksum(pos, txn, blk uint64, data []byte) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(pos)
	mix(txn)
	mix(blk)
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}
