package journal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/durable"
	"repro/internal/fault"
	"repro/internal/memory"
)

// RecoverSalvage is the fault-tolerant counterpart of Recover.
//
// Recover fails on the first invalid record below CommittedHead — the
// right contract when crash states are clean cuts and any invalid
// committed record proves an annotation bug. On a faulty device a
// record can be torn or bit-rotted individually; records are
// fixed-size, so the scan resynchronizes trivially at the next slot.
// A quarantined record leaves its table block un-redone (possibly
// stale or torn in place) — that degradation is exactly what the
// report discloses; a later valid record for the same block heals it.
func RecoverSalvage(im *memory.Image, meta Meta) (*State, fault.RecoveryReport, error) {
	var rep fault.RecoveryReport
	if meta.Blocks <= 0 || meta.JournalBytes == 0 || meta.JournalBytes%64 != 0 {
		return nil, rep, fmt.Errorf("journal: bad recovery metadata")
	}
	st := &State{Table: make([][]byte, meta.Blocks)}
	for i := 0; i < meta.Blocks; i++ {
		b := make([]byte, BlockBytes)
		base := meta.Table + memory.Addr(i*BlockBytes)
		im.ReadBytes(base, b)
		st.Table[i] = b
		if im.RangePoisoned(base, BlockBytes) {
			rep.PoisonedWords++
			rep.Note("table block %d poisoned", i)
		}
	}
	rep.BytesScanned += uint64(meta.Blocks * BlockBytes)

	var committed, ckpt uint64
	if meta.Integrity {
		// Durable-word pointers: detections land in the report; a
		// fallback read (older value) still anchors a safe redo — the
		// window only shrinks, and shadow checksums cover what a
		// regressed commit point leaves un-redone.
		hr := durable.ReadWord(im, meta.CommittedHead)
		cr := durable.ReadWord(im, meta.Checkpoint)
		hr.Absorb(&rep, "committed-head")
		cr.Absorb(&rep, "checkpoint")
		committed, ckpt = hr.Val, cr.Val
		if !hr.OK || !cr.OK {
			rep.HeaderQuarantined = true
			rep.Note("committed/checkpoint unrecoverable")
		}
	} else {
		committed = im.ReadWord(meta.CommittedHead)
		ckpt = im.ReadWord(meta.Checkpoint)
		if im.Poisoned(meta.CommittedHead) || im.Poisoned(meta.Checkpoint) {
			if im.Poisoned(meta.CommittedHead) {
				rep.PoisonedWords++
			}
			if im.Poisoned(meta.Checkpoint) {
				rep.PoisonedWords++
			}
			rep.HeaderQuarantined = true
			rep.Note("committed/checkpoint poisoned")
		}
	}
	// Both pointers advance in record-slot steps, so they stay
	// word-aligned; a torn persist of either shows up as misalignment
	// or an implausible window.
	if committed%memory.WordSize != 0 || ckpt%memory.WordSize != 0 ||
		ckpt > committed || committed-ckpt > meta.JournalBytes {
		rep.HeaderQuarantined = true
		rep.Note("implausible committed %d / checkpoint %d", committed, ckpt)
	}
	if rep.HeaderQuarantined {
		// Without a trustworthy redo window nothing can be replayed;
		// the table is returned as-is, disclosed as degraded.
		return st, rep, nil
	}

	txns := make(map[uint64]bool)
	redone := make(map[uint64]bool)
	for pos := ckpt; pos < committed; {
		idx := pos % meta.JournalBytes
		base := meta.Journal + memory.Addr(idx)
		if idx+recordBytes > meta.JournalBytes {
			// Writers always wrap here; the marker's actual value only
			// tells us whether the wrap word itself survived.
			if !im.Poisoned(base) && im.ReadWord(base) != wrapKind {
				rep.Quarantined++
				rep.Note("corrupt wrap marker at offset %d", pos)
			} else if im.Poisoned(base) {
				rep.PoisonedWords++
			}
			rep.BytesScanned += memory.WordSize
			pos += meta.JournalBytes - idx
			continue
		}
		rep.BytesScanned += recordBytes
		quarantine := func(reason string) {
			rep.Quarantined++
			rep.Note("record at offset %d: %s", pos, reason)
			pos += recordBytes
		}
		if im.RangePoisoned(base, recordBytes) {
			rep.PoisonedWords++
			quarantine("poisoned")
			continue
		}
		kind := im.ReadWord(base)
		if kind == wrapKind {
			// A wrap marker where a record fits: the writer never does
			// that, so the slot is corrupt; skip one record slot.
			quarantine("unexpected wrap marker")
			continue
		}
		if meta.Integrity {
			payload, ok := durable.OpenFrame(im, base, pos, recordPayloadBytes)
			if !ok || len(payload) != recordPayloadBytes {
				rep.CRCDetected++
				quarantine("frame CRC mismatch")
				continue
			}
			txn := binary.LittleEndian.Uint64(payload[0:8])
			blk := binary.LittleEndian.Uint64(payload[8:16])
			if blk >= uint64(meta.Blocks) {
				quarantine(fmt.Sprintf("block %d out of range", blk))
				continue
			}
			copy(st.Table[blk], payload[16:])
			redone[blk] = true
			st.Records++
			rep.Recovered++
			txns[txn] = true
			pos += recordBytes
			continue
		}
		if kind != kindData {
			quarantine(fmt.Sprintf("bad kind %#x", kind))
			continue
		}
		txn := im.ReadWord(base + 8)
		blk := im.ReadWord(base + 16)
		data := make([]byte, BlockBytes)
		im.ReadBytes(base+24, data)
		if im.ReadWord(base+24+BlockBytes) != recordChecksum(pos, txn, blk, data) {
			quarantine("checksum mismatch")
			continue
		}
		if blk >= uint64(meta.Blocks) {
			quarantine(fmt.Sprintf("block %d out of range", blk))
			continue
		}
		copy(st.Table[blk], data)
		st.Records++
		rep.Recovered++
		txns[txn] = true
		redone[blk] = true
		pos += recordBytes
	}
	st.Txns = len(txns)
	if meta.Integrity {
		// Blocks outside the redo window: content and shadow were both
		// bound before truncation retired their records, so a mismatch
		// is detected media corruption (the redo above already restored
		// every block the window covers).
		for i := 0; i < meta.Blocks; i++ {
			if redone[uint64(i)] || im.RangePoisoned(meta.Table+memory.Addr(i*BlockBytes), BlockBytes) {
				continue
			}
			if shadowMismatch(im, meta, i) {
				rep.CRCDetected++
				rep.Quarantined++
				rep.Note("table block %d shadow checksum mismatch", i)
			}
		}
		// Detect-and-discard: count frames past the commit point that
		// sealed fully before the crash — an uncommitted tail recovery
		// deliberately leaves behind. Bounded by the ring; the scan
		// stops at the first slot that fails to open at its offset
		// (never-written space or a torn seal).
		for pos := committed; pos < ckpt+meta.JournalBytes; {
			idx := pos % meta.JournalBytes
			base := meta.Journal + memory.Addr(idx)
			if idx+recordBytes > meta.JournalBytes {
				if im.Poisoned(base) || im.ReadWord(base) != wrapKind {
					break
				}
				pos += meta.JournalBytes - idx
				continue
			}
			if im.RangePoisoned(base, recordBytes) {
				break
			}
			payload, ok := durable.OpenFrame(im, base, pos, recordPayloadBytes)
			if !ok || len(payload) != recordPayloadBytes {
				break
			}
			rep.DiscardedRecords++
			pos += recordBytes
		}
	}
	return st, rep, nil
}
