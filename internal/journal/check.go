package journal

import (
	"repro/internal/durable"
	"repro/internal/memory"
	"repro/internal/persistcheck"
)

// Checks declares the store's recovery-critical metadata for the
// persistency checker (internal/persistcheck).
//
// CommittedHead publishes by value: recovery redoes journal records in
// [checkpoint, committed-head), so a persisted commit value v covers
// every record persist below ring offset v — which is why stage 1's
// records must be bound before the stage 2 commit persist (the barrier
// Config.BreakRecordCommitOrder removes).
//
// The checkpoint is a cross-thread (AllThreads) publication over the
// table: truncating retires redo records, so the truncation persist
// must be ordered after every in-place apply those records would have
// redone — including other threads' (the barriers around the lock
// provide the ordering, which is why the racing-epochs discipline is
// unsafe for this structure). The checkpoint word is also the §5.3
// OrderAfter region: a transaction's records overwrite ring slots the
// truncation retired, so its persists must stay ordered after the
// checkpoint persist the thread observed (the strand recipe
// Config.OmitStrandRecipe removes).
func (m Meta) Checks() persistcheck.Annotations {
	// The checkpoint's §5.3 contract governs only this store's own
	// persists (its ring, table, and pointer words); scoping the region
	// keeps the escape check exact when stores compose (the sharded kv
	// observes many checkpoints but each obligates only its shard).
	covers := []persistcheck.Extent{
		{Addr: m.Journal, Size: m.JournalBytes},
		{Addr: m.Table, Size: uint64(m.Blocks) * BlockBytes},
		{Addr: m.CommittedHead, Size: ptrBytes(m.Integrity)},
		{Addr: m.Checkpoint, Size: ptrBytes(m.Integrity)},
	}
	if !m.Integrity {
		return persistcheck.Annotations{
			Pubs: []persistcheck.Publication{{
				Name:        "committed-head",
				Word:        m.CommittedHead,
				Data:        []persistcheck.Extent{{Addr: m.Journal, Size: m.JournalBytes}},
				ValueCovers: true,
			}, {
				Name:       "checkpoint",
				Word:       m.Checkpoint,
				Data:       []persistcheck.Extent{{Addr: m.Table, Size: uint64(m.Blocks) * BlockBytes}},
				AllThreads: true,
			}},
			OrderAfter: []persistcheck.Region{{
				Name:   "checkpoint",
				Addr:   m.Checkpoint,
				Size:   8,
				Covers: covers,
			}},
		}
	}
	// Integrity layout: both pointer words are dual-copy durable words
	// whose copies inherit the publication obligation; the checkpoint's
	// scope widens to the shadow array (truncation retires a block's
	// redo records only once content AND shadow are bound). Everything
	// recovery reads is declared Protected.
	cw := durable.Word{Base: m.CommittedHead}
	kw := durable.Word{Base: m.Checkpoint}
	pubs := cw.Checks("committed-head", []persistcheck.Extent{{Addr: m.Journal, Size: m.JournalBytes}}, true, false)
	pubs = append(pubs, kw.Checks("checkpoint", []persistcheck.Extent{
		{Addr: m.Table, Size: uint64(m.Blocks) * BlockBytes},
		{Addr: m.BlockCRC, Size: uint64(m.Blocks) * 8},
	}, false, true)...)
	covers = append(covers, persistcheck.Extent{Addr: m.BlockCRC, Size: uint64(m.Blocks) * 8})
	return persistcheck.Annotations{
		Pubs: pubs,
		OrderAfter: []persistcheck.Region{{
			Name:   "checkpoint",
			Addr:   m.Checkpoint,
			Size:   8,
			Covers: covers,
		}},
		Protected: []persistcheck.Extent{
			cw.Extent(),
			kw.Extent(),
			{Addr: m.Journal, Size: m.JournalBytes},
			{Addr: m.Table, Size: uint64(m.Blocks) * BlockBytes},
			{Addr: m.BlockCRC, Size: uint64(m.Blocks) * 8},
		},
	}
}

// ptrBytes is the persisted span of a pointer word: a bare word, or
// the dual-copy durable layout with integrity.
func ptrBytes(integrity bool) uint64 {
	if integrity {
		return durable.WordBytes
	}
	return 8
}

// SiteLabel maps persist addresses to the store's annotation sites,
// following the telemetry attribution convention.
func (m Meta) SiteLabel() func(memory.Addr) string {
	ptrSpan := memory.Addr(8)
	if m.Integrity {
		ptrSpan = durable.WordBytes
	}
	return func(a memory.Addr) string {
		switch {
		case a >= m.Table && a < m.Table+memory.Addr(m.Blocks*BlockBytes):
			return "table"
		case a >= m.Journal && a < m.Journal+memory.Addr(m.JournalBytes):
			return "journal"
		case a >= m.CommittedHead && a < m.CommittedHead+ptrSpan:
			return "committed-head"
		case a >= m.Checkpoint && a < m.Checkpoint+ptrSpan:
			return "checkpoint"
		case m.Integrity && a >= m.BlockCRC && a < m.BlockCRC+memory.Addr(m.Blocks*8):
			return "block-crc"
		default:
			return "other"
		}
	}
}
