package journal_test

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/journal"
)

// ExampleStore_Update applies an atomic two-block metadata update and
// recovers it from the NVRAM image.
func ExampleStore_Update() {
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	st := journal.MustNew(s, journal.Config{
		Blocks:       4,
		JournalBytes: 4096,
		Policy:       journal.PolicyEpoch,
	})

	st.Update(s, []journal.Write{
		{Block: 0, Data: journal.MakeBlock(7)},
		{Block: 1, Data: journal.MakeBlock(7)},
	})

	state, err := journal.Recover(m.PersistentImage(), st.Meta())
	if err != nil {
		panic(err)
	}
	t0, _ := journal.BlockTag(state.Block(0))
	t1, _ := journal.BlockTag(state.Block(1))
	fmt.Printf("txns=%d tags=%d,%d\n", state.Txns, t0, t1)
	// Output:
	// txns=1 tags=7,7
}
