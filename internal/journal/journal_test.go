package journal

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/exec"
	"repro/internal/memory"
	"repro/internal/trace"
)

// groupWrites builds a transaction updating the two blocks of group g
// with the given tag (tags make atomicity checkable).
func groupWrites(g int, tag uint64) []Write {
	return []Write{
		{Block: 2 * g, Data: MakeBlock(tag)},
		{Block: 2*g + 1, Data: MakeBlock(tag)},
	}
}

// checkGroups verifies transaction atomicity: each 2-block group must
// carry one intact tag.
func checkGroups(table [][]byte) error {
	for g := 0; g < len(table)/2; g++ {
		t0, ok0 := BlockTag(table[2*g])
		t1, ok1 := BlockTag(table[2*g+1])
		if !ok0 || !ok1 {
			return fmt.Errorf("group %d: torn block", g)
		}
		if t0 != t1 {
			return fmt.Errorf("group %d: mixed tags %d and %d", g, t0, t1)
		}
	}
	return nil
}

func TestUpdateReadRecover(t *testing.T) {
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	st := MustNew(s, Config{Blocks: 8, JournalBytes: 1 << 12, Policy: PolicyEpoch})
	st.Update(s, groupWrites(0, 7))
	st.Update(s, groupWrites(1, 9))
	st.Update(s, groupWrites(0, 11)) // overwrite group 0

	// Runtime reads see the latest values.
	if tag, ok := BlockTag(st.Read(s, 0)); !ok || tag != 11 {
		t.Fatalf("runtime read: tag %d ok %v", tag, ok)
	}
	// Recovery from the full image matches.
	state, err := Recover(m.PersistentImage(), st.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if err := checkGroups(state.Table); err != nil {
		t.Fatal(err)
	}
	if tag, _ := BlockTag(state.Block(0)); tag != 11 {
		t.Fatalf("recovered tag %d", tag)
	}
	if tag, _ := BlockTag(state.Block(2)); tag != 9 {
		t.Fatalf("recovered tag %d", tag)
	}
	if state.Txns != 3 || state.Records != 6 {
		t.Fatalf("replay stats: %+v", state)
	}
}

func TestAllPoliciesMultiThread(t *testing.T) {
	for _, pol := range Policies {
		for _, threads := range []int{1, 3} {
			t.Run(fmt.Sprintf("%v/%dT", pol, threads), func(t *testing.T) {
				m := exec.NewMachine(exec.Config{Threads: threads, Seed: 5})
				s := m.SetupThread()
				st := MustNew(s, Config{Blocks: 2 * threads * 2, JournalBytes: 1 << 13, Policy: pol})
				m.Run(func(th *exec.Thread) {
					for i := 0; i < 10; i++ {
						g := th.TID() // one group per thread: no write conflicts
						st.Update(th, groupWrites(g, uint64(th.TID()*1000+i+1)))
					}
				})
				state, err := Recover(m.PersistentImage(), st.Meta())
				if err != nil {
					t.Fatal(err)
				}
				if err := checkGroups(state.Table); err != nil {
					t.Fatal(err)
				}
				for g := 0; g < threads; g++ {
					if tag, _ := BlockTag(state.Block(2 * g)); tag != uint64(g*1000+10) {
						t.Fatalf("group %d final tag %d", g, tag)
					}
				}
			})
		}
	}
}

func TestRingWrapAndCheckpoint(t *testing.T) {
	// A small ring forces many checkpoints; everything must stay
	// recoverable throughout.
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	st := MustNew(s, Config{Blocks: 4, JournalBytes: 1 << 10, Policy: PolicyEpoch}) // 1 KiB: ~3 txns per ring
	for i := uint64(1); i <= 50; i++ {
		st.Update(s, groupWrites(int(i%2), i))
		if i%7 == 0 {
			state, err := Recover(m.PersistentImage(), st.Meta())
			if err != nil {
				t.Fatalf("txn %d: %v", i, err)
			}
			if err := checkGroups(state.Table); err != nil {
				t.Fatalf("txn %d: %v", i, err)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	if _, err := New(s, Config{Blocks: 0, JournalBytes: 1 << 10}); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := New(s, Config{Blocks: 4, JournalBytes: 100}); err == nil {
		t.Error("unaligned journal accepted")
	}
	if _, err := New(s, Config{Blocks: 4, JournalBytes: 128}); err == nil {
		t.Error("tiny journal accepted")
	}
}

func TestUpdateValidation(t *testing.T) {
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	st := MustNew(s, Config{Blocks: 4, JournalBytes: 1 << 12, Policy: PolicyEpoch})
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty txn", func() { st.Update(s, nil) })
	mustPanic("bad block", func() { st.Update(s, []Write{{Block: 9, Data: MakeBlock(1)}}) })
	mustPanic("bad size", func() { st.Update(s, []Write{{Block: 0, Data: []byte("short")}}) })
}

func TestRecoverDetectsCorruption(t *testing.T) {
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	st := MustNew(s, Config{Blocks: 4, JournalBytes: 1 << 12, Policy: PolicyEpoch})
	st.Update(s, groupWrites(0, 5))
	meta := st.Meta()

	// Checksum damage below the committed head.
	im := m.PersistentImage()
	im.WriteWord(meta.Journal+24, 0xbad)
	if _, err := Recover(im, meta); !IsCorruption(err) {
		t.Fatalf("want corruption, got %v", err)
	}
	// Checkpoint beyond committed head.
	im = m.PersistentImage()
	im.WriteWord(meta.Checkpoint, im.ReadWord(meta.CommittedHead)+64)
	if _, err := Recover(im, meta); !IsCorruption(err) {
		t.Fatalf("want corruption, got %v", err)
	}
	// Oversized window.
	im = m.PersistentImage()
	im.WriteWord(meta.CommittedHead, meta.JournalBytes*3)
	if _, err := Recover(im, meta); !IsCorruption(err) {
		t.Fatalf("want corruption, got %v", err)
	}
	// Bad metadata.
	if _, err := Recover(memory.NewImage(), Meta{}); err == nil {
		t.Fatal("bad meta accepted")
	}
}

func TestUncommittedTailIgnored(t *testing.T) {
	// Simulate a crash that persisted records but not the commit word:
	// write records directly, leave CommittedHead at 0.
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	st := MustNew(s, Config{Blocks: 4, JournalBytes: 1 << 12, Policy: PolicyEpoch})
	st.appendRecord(s, 0, 1, 0, MakeBlock(42))
	state, err := Recover(m.PersistentImage(), st.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if state.Records != 0 {
		t.Fatalf("uncommitted record replayed: %+v", state)
	}
	if tag, _ := BlockTag(state.Block(0)); tag != 0 {
		t.Fatal("table affected by uncommitted record")
	}
}

func TestBlockTagHelpers(t *testing.T) {
	b := MakeBlock(77)
	if tag, ok := BlockTag(b); !ok || tag != 77 {
		t.Fatalf("round trip: %d %v", tag, ok)
	}
	b[30] ^= 1
	if _, ok := BlockTag(b); ok {
		t.Fatal("torn block reported intact")
	}
	if tag, ok := BlockTag(make([]byte, BlockBytes)); !ok || tag != 0 {
		t.Fatal("zero block should be intact with tag 0")
	}
	if _, ok := BlockTag([]byte("short")); ok {
		t.Fatal("wrong-size block accepted")
	}
	if !bytes.Equal(MakeBlock(5), MakeBlock(5)) {
		t.Fatal("MakeBlock not deterministic")
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range Policies {
		if p.String() == "" {
			t.Fatal("empty policy name")
		}
	}
	if Policy(9).String() != "policy(9)" {
		t.Fatal("unknown policy string")
	}
}

func TestAnnotationCounts(t *testing.T) {
	count := func(pol Policy) (barriers, strands int) {
		tr := &trace.Trace{}
		m := exec.NewMachine(exec.Config{Sink: tr})
		s := m.SetupThread()
		st := MustNew(s, Config{Blocks: 4, JournalBytes: 1 << 12, Policy: pol})
		st.Update(s, groupWrites(0, 1))
		sum := trace.Summarize(tr)
		return sum.Barriers, sum.Strands
	}
	// Setup emits one barrier. Per txn without checkpoint: outer(2) +
	// inner(2) + stage(2) for epoch/strand; stage(2) + outer(2) for
	// racing; none for strict.
	if b, s := count(PolicyStrict); b != 1 || s != 0 {
		t.Errorf("strict: %d barriers %d strands", b, s)
	}
	if b, _ := count(PolicyEpoch); b != 1+6 {
		t.Errorf("epoch: %d barriers", b)
	}
	if b, _ := count(PolicyRacingEpoch); b != 1+4 {
		t.Errorf("racing: %d barriers", b)
	}
	// Strand adds the §5.3 ordering-read barrier after NewStrand.
	if b, s := count(PolicyStrand); b != 1+7 || s != 1 {
		t.Errorf("strand: %d barriers %d strands", b, s)
	}
}
