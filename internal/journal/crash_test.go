package journal

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/memory"
	"repro/internal/observer"
	"repro/internal/trace"
)

// traceJournal runs a multi-group transaction workload and returns the
// trace plus a recovery-and-invariant checker.
func traceJournal(t *testing.T, cfg Config, threads, txnsPerThread int, seed int64) (*trace.Trace, observer.RecoverFunc) {
	t.Helper()
	tr := &trace.Trace{}
	m := exec.NewMachine(exec.Config{Threads: threads, Seed: seed, Sink: tr})
	s := m.SetupThread()
	st, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	meta := st.Meta()
	m.Run(func(th *exec.Thread) {
		for i := 0; i < txnsPerThread; i++ {
			g := th.TID()
			st.Update(th, groupWrites(g, uint64(th.TID()*1000+i+1)))
		}
	})
	return tr, func(im *memory.Image) error {
		state, err := Recover(im, meta)
		if err != nil {
			return err
		}
		return checkGroups(state.Table)
	}
}

func modelFor(p Policy) core.Model {
	switch p {
	case PolicyStrict:
		return core.Strict
	case PolicyStrand:
		return core.Strand
	default:
		return core.Epoch
	}
}

func TestCrashSafetyUnderTargetModels(t *testing.T) {
	// Strict, epoch, and strand annotations must make every crash state
	// transaction-atomic under their models, including with checkpoint
	// pressure (a small ring).
	for _, pol := range []Policy{PolicyStrict, PolicyEpoch, PolicyStrand} {
		for _, threads := range []int{1, 3} {
			t.Run(fmt.Sprintf("%v/%dT", pol, threads), func(t *testing.T) {
				cfg := Config{Blocks: 2 * 3, JournalBytes: 1 << 11, Policy: pol} // ring wraps
				tr, rec := traceJournal(t, cfg, threads, 6, 13)
				out, err := observer.CrashTest(tr, core.Params{Model: modelFor(pol)}, rec, observer.Config{Samples: 150, Seed: 3})
				if err != nil {
					t.Fatal(err)
				}
				if !out.AllRecovered() {
					t.Fatalf("%v", out)
				}
			})
		}
	}
}

func TestRacingEpochsUnsafeForJournal(t *testing.T) {
	// The journal's checkpoint truncation requires the barriers around
	// the lock; with racing-epoch annotations a crash can truncate the
	// journal while another thread's in-place applies are still
	// buffered. (Contrast with the queue, where racing epochs are safe —
	// the paper's point that relaxed annotation is per-algorithm.)
	found := false
	for seed := int64(0); seed < 12 && !found; seed++ {
		cfg := Config{Blocks: 2 * 3, JournalBytes: 1 << 11, Policy: PolicyRacingEpoch}
		tr, rec := traceJournal(t, cfg, 3, 6, seed)
		corr, err := observer.FindCorruption(tr, core.Params{Model: core.Epoch}, rec, observer.Config{Samples: 500, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		found = corr != nil
	}
	if !found {
		t.Fatal("racing-epoch journal should reach a corrupt crash state")
	}
}

func TestRacingEpochsUnsafeAdversarially(t *testing.T) {
	// The truncation hazard under racing epochs, found deterministically
	// by the single-victim sweep rather than random sampling.
	found := false
	for seed := int64(0); seed < 6 && !found; seed++ {
		cfg := Config{Blocks: 2 * 3, JournalBytes: 1 << 11, Policy: PolicyRacingEpoch}
		tr, rec := traceJournal(t, cfg, 3, 6, seed)
		out, err := observer.Adversarial(tr, core.Params{Model: core.Epoch}, rec)
		if err != nil {
			t.Fatal(err)
		}
		found = !out.AllRecovered()
	}
	if !found {
		t.Fatal("adversarial sweep missed the racing truncation hazard")
	}
}

func TestBrokenRecordCommitOrderIsLoadBearing(t *testing.T) {
	// The records→commit barrier (stage 1 → stage 2) is the journal's
	// publication ordering: with BreakRecordCommitOrder the commit can
	// persist before the redo records it covers, and recovery redoes
	// garbage. The observer must reach a corrupt state — the fixture the
	// persistency checker flags statically.
	found := false
	for seed := int64(0); seed < 8 && !found; seed++ {
		cfg := Config{Blocks: 2 * 3, JournalBytes: 1 << 11, Policy: PolicyEpoch, BreakRecordCommitOrder: true}
		tr, rec := traceJournal(t, cfg, 3, 6, seed)
		corr, err := observer.FindCorruption(tr, core.Params{Model: core.Epoch}, rec, observer.Config{Samples: 500, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		found = corr != nil
	}
	if !found {
		t.Fatal("broken record→commit order never corrupted")
	}
}

func TestOmitStrandRecipeIsLoadBearing(t *testing.T) {
	// The §5.3 strand recipe (read the checkpoint, then barrier) binds a
	// new strand's record persists after the truncation they overwrite;
	// without it a crash can persist records into ring space the
	// checkpoint still covers. The observer must reach a corrupt state —
	// the fixture the checker's escape analysis flags.
	found := false
	for seed := int64(0); seed < 8 && !found; seed++ {
		cfg := Config{Blocks: 2 * 3, JournalBytes: 1 << 11, Policy: PolicyStrand, OmitStrandRecipe: true}
		tr, rec := traceJournal(t, cfg, 3, 6, seed)
		corr, err := observer.FindCorruption(tr, core.Params{Model: core.Strand}, rec, observer.Config{Samples: 500, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		found = corr != nil
	}
	if !found {
		t.Fatal("omitted strand recipe never corrupted")
	}
}

func TestAdversarialCleanJournal(t *testing.T) {
	// The correctly annotated journal survives the deterministic sweep
	// under each target model, with checkpoint pressure.
	for _, pol := range []Policy{PolicyStrict, PolicyEpoch, PolicyStrand} {
		cfg := Config{Blocks: 2 * 3, JournalBytes: 1 << 11, Policy: pol}
		tr, rec := traceJournal(t, cfg, 3, 5, 2)
		out, err := observer.Adversarial(tr, core.Params{Model: modelFor(pol)}, rec)
		if err != nil {
			t.Fatal(err)
		}
		if !out.AllRecovered() {
			t.Errorf("%v: %v", pol, out)
		}
	}
}

func TestJournalPersistConcurrency(t *testing.T) {
	// The relaxation hierarchy holds for the journal workload too.
	cp := func(pol Policy) int64 {
		tr, _ := traceJournal(t, Config{Blocks: 2 * 2, JournalBytes: 1 << 13, Policy: pol}, 2, 10, 4)
		r, err := core.Simulate(tr, core.Params{Model: modelFor(pol)})
		if err != nil {
			t.Fatal(err)
		}
		return r.CriticalPath
	}
	strict := cp(PolicyStrict)
	epoch := cp(PolicyEpoch)
	strand := cp(PolicyStrand)
	if !(strand <= epoch && epoch < strict) {
		t.Fatalf("hierarchy: strict %d, epoch %d, strand %d", strict, epoch, strand)
	}
}
