package journal

import (
	"errors"
	"fmt"

	"repro/internal/memory"
)

// Recovery: rebuilding the metadata table from a post-crash image by
// redoing all journal records between the checkpoint and the
// persistent CommittedHead. Everything below CommittedHead must parse
// and verify — the commit point only advances after its records
// persisted — so any invalid record in that window is a recovery
// correctness violation.

// State is the recovered store.
type State struct {
	// Table holds the recovered blocks.
	Table [][]byte
	// Records counts redo records replayed.
	Records int
	// Txns counts distinct transactions replayed.
	Txns int
}

// Block returns block i's recovered content.
func (s *State) Block(i int) []byte { return s.Table[i] }

// CorruptionError reports a recovery-correctness violation.
type CorruptionError struct {
	Offset uint64
	Reason string
}

// Error implements error.
func (e *CorruptionError) Error() string {
	return fmt.Sprintf("journal: corrupt at offset %d: %s", e.Offset, e.Reason)
}

// IsCorruption reports whether err is a journal corruption.
func IsCorruption(err error) bool {
	var ce *CorruptionError
	return errors.As(err, &ce)
}

// Recover rebuilds the table from a post-crash image.
func Recover(im *memory.Image, meta Meta) (*State, error) {
	if meta.Blocks <= 0 || meta.JournalBytes == 0 || meta.JournalBytes%64 != 0 {
		return nil, fmt.Errorf("journal: bad recovery metadata")
	}
	st := &State{Table: make([][]byte, meta.Blocks)}
	for i := 0; i < meta.Blocks; i++ {
		b := make([]byte, BlockBytes)
		im.ReadBytes(meta.Table+memory.Addr(i*BlockBytes), b)
		st.Table[i] = b
	}

	committed := im.ReadWord(meta.CommittedHead)
	pos := im.ReadWord(meta.Checkpoint)
	if pos > committed {
		return nil, &CorruptionError{Offset: pos, Reason: fmt.Sprintf("checkpoint %d beyond committed head %d", pos, committed)}
	}
	if committed-pos > meta.JournalBytes {
		return nil, &CorruptionError{Offset: committed, Reason: fmt.Sprintf("live journal window %d exceeds ring %d", committed-pos, meta.JournalBytes)}
	}

	txns := make(map[uint64]bool)
	for pos < committed {
		idx := pos % meta.JournalBytes
		base := meta.Journal + memory.Addr(idx)
		kind := im.ReadWord(base)
		if kind == wrapKind {
			pos += meta.JournalBytes - idx
			continue
		}
		if kind != kindData {
			return nil, &CorruptionError{Offset: pos, Reason: fmt.Sprintf("bad record kind %#x below committed head", kind)}
		}
		if idx+recordBytes > meta.JournalBytes {
			return nil, &CorruptionError{Offset: pos, Reason: "record straddles the ring end"}
		}
		txn := im.ReadWord(base + 8)
		blk := im.ReadWord(base + 16)
		data := make([]byte, BlockBytes)
		im.ReadBytes(base+24, data)
		if im.ReadWord(base+24+BlockBytes) != recordChecksum(pos, txn, blk, data) {
			return nil, &CorruptionError{Offset: pos, Reason: "record checksum mismatch below committed head"}
		}
		if blk >= uint64(meta.Blocks) {
			return nil, &CorruptionError{Offset: pos, Reason: fmt.Sprintf("record block %d out of range", blk)}
		}
		copy(st.Table[blk], data)
		st.Records++
		txns[txn] = true
		pos += recordBytes
	}
	st.Txns = len(txns)
	return st, nil
}
