package journal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/durable"
	"repro/internal/memory"
)

// Recovery: rebuilding the metadata table from a post-crash image by
// redoing all journal records between the checkpoint and the
// persistent CommittedHead. Everything below CommittedHead must parse
// and verify — the commit point only advances after its records
// persisted — so any invalid record in that window is a recovery
// correctness violation.

// State is the recovered store.
type State struct {
	// Table holds the recovered blocks.
	Table [][]byte
	// Records counts redo records replayed.
	Records int
	// Txns counts distinct transactions replayed.
	Txns int
}

// Block returns block i's recovered content.
func (s *State) Block(i int) []byte { return s.Table[i] }

// CorruptionError reports a recovery-correctness violation.
type CorruptionError struct {
	Offset uint64
	Reason string
}

// Error implements error.
func (e *CorruptionError) Error() string {
	return fmt.Sprintf("journal: corrupt at offset %d: %s", e.Offset, e.Reason)
}

// IsCorruption reports whether err is a journal corruption.
func IsCorruption(err error) bool {
	var ce *CorruptionError
	return errors.As(err, &ce)
}

// Recover rebuilds the table from a post-crash image.
func Recover(im *memory.Image, meta Meta) (*State, error) {
	if meta.Blocks <= 0 || meta.JournalBytes == 0 || meta.JournalBytes%64 != 0 {
		return nil, fmt.Errorf("journal: bad recovery metadata")
	}
	st := &State{Table: make([][]byte, meta.Blocks)}
	for i := 0; i < meta.Blocks; i++ {
		b := make([]byte, BlockBytes)
		im.ReadBytes(meta.Table+memory.Addr(i*BlockBytes), b)
		st.Table[i] = b
	}

	var committed, pos uint64
	if meta.Integrity {
		// Strict recovery verifies clean crash states: any integrity
		// detection in the pointer words is itself a violation here.
		hr := durable.ReadWord(im, meta.CommittedHead)
		cr := durable.ReadWord(im, meta.Checkpoint)
		if !hr.OK || hr.Detected() {
			return nil, &CorruptionError{Offset: 0, Reason: "committed-head word corrupt"}
		}
		if !cr.OK || cr.Detected() {
			return nil, &CorruptionError{Offset: 0, Reason: "checkpoint word corrupt"}
		}
		committed, pos = hr.Val, cr.Val
	} else {
		committed = im.ReadWord(meta.CommittedHead)
		pos = im.ReadWord(meta.Checkpoint)
	}
	if pos > committed {
		return nil, &CorruptionError{Offset: pos, Reason: fmt.Sprintf("checkpoint %d beyond committed head %d", pos, committed)}
	}
	if committed-pos > meta.JournalBytes {
		return nil, &CorruptionError{Offset: committed, Reason: fmt.Sprintf("live journal window %d exceeds ring %d", committed-pos, meta.JournalBytes)}
	}

	txns := make(map[uint64]bool)
	redone := make(map[uint64]bool)
	for pos < committed {
		idx := pos % meta.JournalBytes
		base := meta.Journal + memory.Addr(idx)
		kind := im.ReadWord(base)
		if kind == wrapKind {
			pos += meta.JournalBytes - idx
			continue
		}
		if idx+recordBytes > meta.JournalBytes {
			return nil, &CorruptionError{Offset: pos, Reason: "record straddles the ring end"}
		}
		var txn, blk uint64
		var data []byte
		if meta.Integrity {
			payload, ok := durable.OpenFrame(im, base, pos, recordPayloadBytes)
			if !ok || len(payload) != recordPayloadBytes {
				return nil, &CorruptionError{Offset: pos, Reason: "record frame CRC mismatch below committed head"}
			}
			txn = binary.LittleEndian.Uint64(payload[0:8])
			blk = binary.LittleEndian.Uint64(payload[8:16])
			data = payload[16:]
		} else {
			if kind != kindData {
				return nil, &CorruptionError{Offset: pos, Reason: fmt.Sprintf("bad record kind %#x below committed head", kind)}
			}
			txn = im.ReadWord(base + 8)
			blk = im.ReadWord(base + 16)
			data = make([]byte, BlockBytes)
			im.ReadBytes(base+24, data)
			if im.ReadWord(base+24+BlockBytes) != recordChecksum(pos, txn, blk, data) {
				return nil, &CorruptionError{Offset: pos, Reason: "record checksum mismatch below committed head"}
			}
		}
		if blk >= uint64(meta.Blocks) {
			return nil, &CorruptionError{Offset: pos, Reason: fmt.Sprintf("record block %d out of range", blk)}
		}
		copy(st.Table[blk], data)
		st.Records++
		txns[txn] = true
		redone[blk] = true
		pos += recordBytes
	}
	st.Txns = len(txns)
	if meta.Integrity {
		// Blocks outside the redo window must match their shadow
		// checksums: their last apply and shadow write were both bound
		// before the truncation that retired their records. (Blocks
		// inside the window may be mid-apply; the redo above already
		// restored them from verified records.)
		for i := 0; i < meta.Blocks; i++ {
			if redone[uint64(i)] {
				continue
			}
			if shadowMismatch(im, meta, i) {
				return nil, &CorruptionError{Offset: uint64(i), Reason: fmt.Sprintf("table block %d shadow checksum mismatch", i)}
			}
		}
	}
	return st, nil
}

// shadowMismatch reports whether table block i's in-place content
// fails its shadow checksum. All-zero content with a zero shadow word
// is the never-written initial state and passes.
func shadowMismatch(im *memory.Image, meta Meta, i int) bool {
	addr := meta.Table + memory.Addr(i*BlockBytes)
	b := make([]byte, BlockBytes)
	im.ReadBytes(addr, b)
	shadow := im.ReadWord(meta.BlockCRC + memory.Addr(i*8))
	if shadow == 0 {
		for _, c := range b {
			if c != 0 {
				return true
			}
		}
		return false
	}
	return shadow != durable.Checksum(uint64(addr), b)
}
