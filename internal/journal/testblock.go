package journal

import "encoding/binary"

// Deterministic block contents for tests, benchmarks, and examples: a
// tag word followed by a keyed pattern, so a recovered block can be
// both attributed to its writing transaction and checked for tearing.

// MakeBlock builds a BlockBytes-sized block carrying tag.
func MakeBlock(tag uint64) []byte {
	b := make([]byte, BlockBytes)
	binary.LittleEndian.PutUint64(b, tag)
	x := tag*2654435761 + 0x9e3779b97f4a7c15
	for i := 8; i < BlockBytes; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b[i] = byte(x)
	}
	return b
}

// MakeSparseBlock builds a BlockBytes-sized block carrying tag in its
// first word and zeros elsewhere. Exhaustive model checking uses sparse
// blocks: zero stores to never-written words leave the crash image
// unchanged, so the reachable state space stays tractable while torn
// multi-block transactions remain visible through mismatched tags.
func MakeSparseBlock(tag uint64) []byte {
	b := make([]byte, BlockBytes)
	binary.LittleEndian.PutUint64(b, tag)
	return b
}

// SparseBlockTag extracts the tag of a block built by MakeSparseBlock
// and reports whether the block is intact (tag word plus zeros).
func SparseBlockTag(b []byte) (tag uint64, intact bool) {
	if len(b) != BlockBytes {
		return 0, false
	}
	for _, c := range b[8:] {
		if c != 0 {
			return binary.LittleEndian.Uint64(b), false
		}
	}
	return binary.LittleEndian.Uint64(b), true
}

// BlockTag extracts the tag of a block built by MakeBlock and reports
// whether the block is intact (matches MakeBlock(tag) exactly). An
// all-zero block is intact with tag 0 (never-written NVRAM).
func BlockTag(b []byte) (tag uint64, intact bool) {
	if len(b) != BlockBytes {
		return 0, false
	}
	zero := true
	for _, c := range b {
		if c != 0 {
			zero = false
			break
		}
	}
	if zero {
		return 0, true
	}
	tag = binary.LittleEndian.Uint64(b)
	want := MakeBlock(tag)
	for i := range b {
		if b[i] != want[i] {
			return tag, false
		}
	}
	return tag, true
}
