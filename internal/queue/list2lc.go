package queue

import (
	"repro/internal/exec"
	"repro/internal/memory"
)

// insertList is Two-Lock Concurrent's volatile bookkeeping (§6): it
// tracks in-flight inserts so head-pointer updates never expose holes.
// The paper keeps it in volatile memory; so do we — in the *simulated*
// volatile space, so its accesses appear in the trace and participate
// in conflict-based persist ordering exactly like the rest of the
// algorithm's memory traffic.
//
// Layout (volatile words):
//
//	+0  front : index of the oldest in-flight insert (monotonic)
//	+8  back  : index one past the newest (monotonic)
//	+16 slots : capacity × { end offset, done flag }
//
// append runs under the reserve lock (mutates back); remove runs under
// the update lock (mutates front and flags). Capacity must exceed the
// maximum number of concurrent inserters.
type insertList struct {
	base memory.Addr
	cap  uint64
}

const (
	listFront   = 0
	listBack    = 8
	listSlots   = 16
	slotStride  = 16
	slotEndOff  = 0
	slotDoneOff = 8
)

func newInsertList(s *exec.Thread, capacity int) *insertList {
	if capacity < 2 {
		capacity = 2
	}
	l := &insertList{cap: uint64(capacity)}
	l.base = s.MallocVolatile(listSlots+capacity*slotStride, SlotAlign)
	s.Store8(l.base+listFront, 0)
	s.Store8(l.base+listBack, 0)
	return l
}

func (l *insertList) slot(i uint64) memory.Addr {
	return l.base + listSlots + memory.Addr((i%l.cap)*slotStride)
}

// append registers an in-flight insert ending at offset end and returns
// its node index. Caller holds the reserve lock.
//
// The ring applies backpressure when full: completed-but-unpopped nodes
// accumulate behind a descheduled oldest inserter, so the appender
// waits for the front to advance. Progress is guaranteed — the oldest
// inserter needs only the update lock, which the waiter does not hold.
// (The paper's listing hints at the equivalent hazard with its
// "double-checked lock may acquire reservelock" comment.)
func (l *insertList) append(t *exec.Thread, end uint64) uint64 {
	var back uint64
	for {
		back = t.Load8(l.base + listBack)
		front := t.Load8(l.base + listFront)
		if back-front < l.cap {
			break
		}
		t.Yield()
	}
	s := l.slot(back)
	t.Store8(s+slotEndOff, end)
	t.Store8(s+slotDoneOff, 0)
	t.Store8(l.base+listBack, back+1)
	return back
}

// remove marks node done and reports whether it was the oldest
// in-flight insert; if so it pops the contiguous completed prefix and
// returns the new head offset covering it (Algorithm 1 line 24). Caller
// holds the update lock.
func (l *insertList) remove(t *exec.Thread, node uint64) (oldest bool, newHead uint64) {
	t.Store8(l.slot(node)+slotDoneOff, 1)
	front := t.Load8(l.base + listFront)
	if node != front {
		return false, 0
	}
	back := t.Load8(l.base + listBack)
	for front < back && t.Load8(l.slot(front)+slotDoneOff) == 1 {
		newHead = t.Load8(l.slot(front) + slotEndOff)
		front++
	}
	t.Store8(l.base+listFront, front)
	return true, newHead
}
