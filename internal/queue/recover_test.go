package queue

import (
	"testing"
	"testing/quick"

	"repro/internal/exec"
	"repro/internal/memory"
)

// buildImage runs a few inserts and returns the final image + meta.
func buildImage(t *testing.T) (*memory.Image, Meta) {
	t.Helper()
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	q := MustNew(s, Config{DataBytes: 1 << 14, Design: CWL, Policy: PolicyEpoch})
	for i := uint64(0); i < 5; i++ {
		q.Insert(s, MakePayload(i, 100))
	}
	return m.PersistentImage(), q.Meta()
}

func TestRecoverDetectsBadLength(t *testing.T) {
	im, meta := buildImage(t)
	// Zero out the third entry's length word.
	im.WriteWord(meta.Data+memory.Addr(2*SlotBytes(100)), 0)
	if _, err := Recover(im, meta); !IsCorruption(err) {
		t.Fatalf("want corruption, got %v", err)
	}
}

func TestRecoverDetectsChecksumMismatch(t *testing.T) {
	im, meta := buildImage(t)
	// Flip a payload byte of the second entry.
	a := meta.Data + memory.Addr(SlotBytes(100)) + headerBytes + 10
	var b [1]byte
	im.ReadBytes(a, b[:])
	b[0] ^= 0xff
	im.WriteBytes(a, b[:])
	if _, err := Recover(im, meta); !IsCorruption(err) {
		t.Fatalf("want corruption, got %v", err)
	}
}

func TestRecoverDetectsTailBeyondHead(t *testing.T) {
	im, meta := buildImage(t)
	im.WriteWord(meta.Tail, im.ReadWord(meta.Head)+64)
	if _, err := Recover(im, meta); !IsCorruption(err) {
		t.Fatalf("want corruption, got %v", err)
	}
}

func TestRecoverDetectsOversizedLiveRegion(t *testing.T) {
	im, meta := buildImage(t)
	im.WriteWord(meta.Head, meta.DataBytes*2)
	if _, err := Recover(im, meta); !IsCorruption(err) {
		t.Fatalf("want corruption, got %v", err)
	}
}

func TestRecoverDetectsEntryPastHead(t *testing.T) {
	im, meta := buildImage(t)
	// Head in the middle of the second entry.
	im.WriteWord(meta.Head, SlotBytes(100)+8)
	if _, err := Recover(im, meta); !IsCorruption(err) {
		t.Fatalf("want corruption, got %v", err)
	}
}

func TestRecoverEmptyQueue(t *testing.T) {
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	q := MustNew(s, Config{DataBytes: 1 << 12, Design: CWL, Policy: PolicyEpoch})
	entries, err := Recover(m.PersistentImage(), q.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("empty queue recovered %d entries", len(entries))
	}
}

func TestRecoverBadMeta(t *testing.T) {
	im := memory.NewImage()
	if _, err := Recover(im, Meta{DataBytes: 100}); err == nil {
		t.Fatal("unaligned meta accepted")
	}
}

func TestIsCorruption(t *testing.T) {
	err := &CorruptionError{Offset: 4, Reason: "x"}
	if !IsCorruption(err) {
		t.Fatal("IsCorruption(corruption) = false")
	}
	if IsCorruption(nil) {
		t.Fatal("IsCorruption(nil) = true")
	}
	if err.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestChecksumDiscriminates(t *testing.T) {
	p := MakePayload(1, 64)
	base := Checksum(0, p)
	if Checksum(64, p) == base {
		t.Error("checksum must bind the offset")
	}
	q := MakePayload(2, 64)
	if Checksum(0, q) == base {
		t.Error("checksum must bind the payload")
	}
}

func TestChecksumProperty(t *testing.T) {
	f := func(off uint64, data []byte, flip uint16) bool {
		if len(data) == 0 {
			return true
		}
		c := Checksum(off, data)
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[int(flip)%len(mut)] ^= 1
		return Checksum(off, mut) != c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMakePayloadDeterministic(t *testing.T) {
	a := MakePayload(42, 128)
	b := MakePayload(42, 128)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("MakePayload not deterministic")
		}
	}
	c := MakePayload(43, 128)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different ids should give different payloads")
	}
}

func TestSlotBytes(t *testing.T) {
	if SlotBytes(100) != 128 {
		t.Fatalf("SlotBytes(100) = %d", SlotBytes(100))
	}
	if SlotBytes(1) != 64 {
		t.Fatalf("SlotBytes(1) = %d", SlotBytes(1))
	}
	if SlotBytes(48) != 64 {
		t.Fatalf("SlotBytes(48) = %d", SlotBytes(48))
	}
	if SlotBytes(49) != 128 {
		t.Fatalf("SlotBytes(49) = %d", SlotBytes(49))
	}
}

func TestNativeMatchesSimulatedOffsets(t *testing.T) {
	// The native and simulated queues must lay entries out identically.
	for _, d := range []Design{CWL, TwoLock} {
		n, err := NewNative(Config{DataBytes: 1 << 14, Design: d})
		if err != nil {
			t.Fatal(err)
		}
		m := exec.NewMachine(exec.Config{})
		s := m.SetupThread()
		q := MustNew(s, Config{DataBytes: 1 << 14, Design: d, Policy: PolicyEpoch})
		for i := uint64(0); i < 12; i++ {
			p := MakePayload(i, 100)
			if no, so := n.Insert(p), q.Insert(s, p); no != so {
				t.Fatalf("%v: native offset %d != simulated %d", d, no, so)
			}
		}
		if n.Head() != s.Load8(q.Meta().Head) {
			t.Fatalf("%v: heads differ", d)
		}
	}
}
