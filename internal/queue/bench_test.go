package queue

import (
	"fmt"
	"testing"

	"repro/internal/exec"
)

// BenchmarkNativeInsert measures the instruction execution rate of the
// native queue twins — the measurement behind Table 1's normalization.
func BenchmarkNativeInsert(b *testing.B) {
	for _, d := range []Design{CWL, TwoLock} {
		b.Run(d.String(), func(b *testing.B) {
			q, err := NewNative(Config{DataBytes: 1 << 20, Design: d})
			if err != nil {
				b.Fatal(err)
			}
			payload := MakePayload(1, 100)
			b.SetBytes(100)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Insert(payload)
			}
		})
	}
}

// BenchmarkSimulatedInsert measures the simulated queue (engine + trace
// discarded), to size trace-generation costs.
func BenchmarkSimulatedInsert(b *testing.B) {
	for _, d := range []Design{CWL, TwoLock} {
		b.Run(d.String(), func(b *testing.B) {
			m := exec.NewMachine(exec.Config{})
			s := m.SetupThread()
			q := MustNew(s, Config{DataBytes: 1 << 22, Design: d, Policy: PolicyEpoch, Overwrite: true})
			payload := MakePayload(1, 100)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Insert(s, payload)
			}
		})
	}
}

func BenchmarkChecksum(b *testing.B) {
	p := MakePayload(1, 100)
	b.SetBytes(100)
	for i := 0; i < b.N; i++ {
		Checksum(uint64(i), p)
	}
}

func BenchmarkRecover(b *testing.B) {
	for _, entries := range []int{10, 100} {
		b.Run(fmt.Sprintf("%dentries", entries), func(b *testing.B) {
			m := exec.NewMachine(exec.Config{})
			s := m.SetupThread()
			q := MustNew(s, Config{DataBytes: uint64(entries+2) * SlotBytes(100), Design: CWL, Policy: PolicyEpoch})
			for i := 0; i < entries; i++ {
				q.Insert(s, MakePayload(uint64(i), 100))
			}
			im := m.PersistentImage()
			meta := q.Meta()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Recover(im, meta); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
