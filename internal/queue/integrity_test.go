package queue

import (
	"testing"

	"repro/internal/durable"
	"repro/internal/exec"
	"repro/internal/memory"
)

// buildImageFmt runs n same-size inserts under the chosen format and
// returns the quiescent image + meta.
func buildImageFmt(t *testing.T, n int, integrity bool) (*memory.Image, Meta) {
	t.Helper()
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	q := MustNew(s, Config{DataBytes: 1 << 14, Design: CWL, Policy: PolicyEpoch, Integrity: integrity})
	for i := uint64(0); i < uint64(n); i++ {
		q.Insert(s, MakePayload(i, 24))
	}
	return m.PersistentImage(), q.Meta()
}

func TestIntegrityQueueRoundTrip(t *testing.T) {
	im, meta := buildImageFmt(t, 5, true)
	entries, err := Recover(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("recovered %d entries, want 5", len(entries))
	}
	salvaged, rep, err := RecoverSalvage(im, meta)
	if err != nil || rep.Detected() || len(salvaged) != 5 {
		t.Fatalf("salvage on clean image: %d entries, detected=%v, err=%v", len(salvaged), rep.Detected(), err)
	}
}

func TestLegacyHeadFlipIsSilentDataLoss(t *testing.T) {
	// The failure mode the durable-word pointers close: the legacy head
	// is a bare offset, and flipping the bit worth one slot re-frames
	// the ring onto a shorter-but-valid prefix. An entry vanishes and
	// the report is clean — silent data loss, exactly what the
	// unprotected-metadata lint flags.
	im, meta := buildImageFmt(t, 5, false)
	stride := SlotBytes(24)
	if stride&(stride-1) != 0 {
		t.Fatalf("test needs a power-of-two slot, got %d", stride)
	}
	im.WriteWord(meta.Head, im.ReadWord(meta.Head)^stride)
	entries, rep, err := RecoverSalvage(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected() {
		t.Fatalf("legacy head flip was detected (%+v); the lint premise no longer holds", rep)
	}
	if len(entries) != 4 {
		t.Fatalf("recovered %d entries, want the silent loss of exactly one (4)", len(entries))
	}
}

func TestIntegrityHeadCopyFlipDetected(t *testing.T) {
	// The same single-bit flip against the framed format: corrupting the
	// active copy's value fails its CRC, recovery falls back to the
	// other copy, and the report discloses the detection.
	im, meta := buildImageFmt(t, 5, true)
	active, ok := durable.DecodeCDB(im.ReadWord(meta.Head))
	if !ok {
		t.Fatal("quiescent CDB does not decode")
	}
	valOff := memory.Addr(8) // copy A value
	if active {
		valOff = 24 // copy B value
	}
	a := meta.Head + valOff
	im.WriteWord(a, im.ReadWord(a)^SlotBytes(24))
	if _, err := Recover(im, meta); !IsCorruption(err) {
		t.Fatalf("strict recovery accepted a corrupt head copy: %v", err)
	}
	entries, rep, err := RecoverSalvage(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CRCDetected == 0 {
		t.Fatalf("copy flip not detected: %+v", rep)
	}
	// The fallback copy holds the previous head: one entry older, never
	// silently re-framed.
	if len(entries) != 4 {
		t.Fatalf("fallback recovered %d entries, want 4", len(entries))
	}
}

func TestIntegrityHeadCDBFlipDetected(t *testing.T) {
	// A flip in the CDB itself: both copies still validate, recovery
	// prefers the larger (monotonic) value and reports the corrupt CDB.
	im, meta := buildImageFmt(t, 5, true)
	im.WriteWord(meta.Head, im.ReadWord(meta.Head)^(1<<13))
	entries, rep, err := RecoverSalvage(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CDBDetected == 0 {
		t.Fatalf("CDB flip not detected: %+v", rep)
	}
	if len(entries) != 5 {
		t.Fatalf("recovered %d entries, want all 5 via the larger copy", len(entries))
	}
}
