package queue

// Checksum and deterministic payload generation. Entries carry an
// FNV-1a checksum bound to the entry's monotonic queue offset, so
// recovery distinguishes a fully persisted entry from stale or
// partially persisted bytes — the mechanical check behind the paper's
// recovery-correctness argument.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Checksum hashes the entry's monotonic offset, length, and payload.
func Checksum(offset uint64, payload []byte) uint64 {
	h := uint64(fnvOffset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime
			v >>= 8
		}
	}
	mix(offset)
	mix(uint64(len(payload)))
	for _, b := range payload {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// MakePayload produces a deterministic payload of the given size for
// insert id — an xorshift stream seeded by the id, so tests and
// recovery can regenerate and compare entry contents exactly.
func MakePayload(id uint64, size int) []byte {
	out := make([]byte, size)
	x := id*2654435761 + 0x9e3779b97f4a7c15
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x)
	}
	return out
}
