package queue

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Native is the non-simulated twin of Queue: the same algorithms
// executing directly on host memory with Go synchronization and
// annotations compiled to nothing. The benchmark harness times it to
// obtain the *instruction execution rate* that the paper measured on a
// Xeon E5645 (§7) — the numerator against which persist-bound rates are
// normalized in Table 1.
//
// The paper uses MCS spin locks; on this reproduction's host spinning
// across time-sliced goroutines would measure the scheduler, not the
// algorithm, so Native uses sync.Mutex (documented substitution in
// DESIGN.md). The memory access pattern — entry copy, head update, 2LC
// reservation and insert list — matches the simulated version.
type Native struct {
	cfg  Config
	data []byte
	head uint64
	tail uint64

	// CWL.
	queueMu sync.Mutex
	// 2LC.
	reserveMu sync.Mutex
	updateMu  sync.Mutex
	headV     uint64
	list      nativeList
}

// nativeList mirrors insertList on host memory. front and back are
// atomics because append (under the reserve mutex) and remove (under
// the update mutex) read each other's cursor for backpressure.
type nativeList struct {
	front, back atomic.Uint64
	slots       []nativeNode
}

type nativeNode struct {
	end  uint64
	done bool
}

// NewNative builds a native queue with the same Config validation as
// New.
func NewNative(cfg Config) (*Native, error) {
	if cfg.DataBytes == 0 || cfg.DataBytes%SlotAlign != 0 {
		return nil, fmt.Errorf("queue: DataBytes %d must be a positive multiple of %d", cfg.DataBytes, SlotAlign)
	}
	if cfg.MaxThreads <= 0 {
		cfg.MaxThreads = 16
	}
	return &Native{
		cfg:  cfg,
		data: make([]byte, cfg.DataBytes),
		list: nativeList{slots: make([]nativeNode, 2*cfg.MaxThreads)},
	}, nil
}

// Insert appends payload, mirroring the simulated Insert.
func (q *Native) Insert(payload []byte) uint64 {
	if q.cfg.Design == CWL {
		return q.insertCWL(payload)
	}
	return q.insert2LC(payload)
}

// Head returns the current head offset.
func (q *Native) Head() uint64 {
	q.updateLockFor().Lock()
	defer q.updateLockFor().Unlock()
	return q.head
}

func (q *Native) updateLockFor() *sync.Mutex {
	if q.cfg.Design == CWL {
		return &q.queueMu
	}
	return &q.updateMu
}

func (q *Native) insertCWL(payload []byte) uint64 {
	slot := SlotBytes(len(payload))
	q.queueMu.Lock()
	pos := q.skipWrap(q.head, slot)
	q.writeEntry(pos, payload)
	q.head = pos + slot
	q.queueMu.Unlock()
	return pos
}

func (q *Native) insert2LC(payload []byte) uint64 {
	slot := SlotBytes(len(payload))

	q.reserveMu.Lock()
	start := q.skipWrap(q.headV, slot)
	q.headV = start + slot
	node := q.list.append(q.headV)
	q.reserveMu.Unlock()

	q.writeEntry(start, payload)

	q.updateMu.Lock()
	if oldest, newHead := q.list.remove(node); oldest {
		q.head = newHead
	}
	q.updateMu.Unlock()
	return start
}

func (q *Native) skipWrap(pos, slot uint64) uint64 {
	idx := pos % q.cfg.DataBytes
	if idx+slot <= q.cfg.DataBytes {
		return pos
	}
	binary.LittleEndian.PutUint64(q.data[idx:], wrapMarker)
	return pos + (q.cfg.DataBytes - idx)
}

func (q *Native) writeEntry(pos uint64, payload []byte) {
	idx := pos % q.cfg.DataBytes
	binary.LittleEndian.PutUint64(q.data[idx:], uint64(len(payload)))
	copy(q.data[idx+headerBytes:], payload)
	binary.LittleEndian.PutUint64(q.data[idx+checksumOffset(len(payload)):], Checksum(pos, payload))
}

func (l *nativeList) append(end uint64) uint64 {
	// Backpressure mirrors the simulated list: wait for the front to
	// advance. The oldest inserter needs only the update mutex, which
	// this caller (holding the reserve mutex) does not hold.
	for l.back.Load()-l.front.Load() >= uint64(len(l.slots)) {
		runtime.Gosched()
	}
	i := l.back.Load()
	l.slots[i%uint64(len(l.slots))] = nativeNode{end: end}
	l.back.Store(i + 1)
	return i
}

func (l *nativeList) remove(node uint64) (oldest bool, newHead uint64) {
	n := uint64(len(l.slots))
	l.slots[node%n].done = true
	front := l.front.Load()
	if node != front {
		return false, 0
	}
	back := l.back.Load()
	for front < back && l.slots[front%n].done {
		newHead = l.slots[front%n].end
		front++
	}
	l.front.Store(front)
	return true, newHead
}
