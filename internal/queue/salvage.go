package queue

import (
	"fmt"

	"repro/internal/durable"
	"repro/internal/fault"
	"repro/internal/memory"
)

// Salvage recovery: the fault-tolerant counterpart of Recover.
//
// Recover treats any invalid entry under the head pointer as a
// recovery-correctness violation and fails — the right contract for
// verifying *annotations* against clean crash states. On faulty
// devices (torn persists, bit rot), corrupt entries are expected, and
// failing outright would lose every intact entry behind them.
// RecoverSalvage instead degrades gracefully: it recovers every entry
// it can prove intact (checksums bound to the monotonic offset),
// quarantines entries it can prove corrupt, resynchronizes on the
// 64-byte slot grid past corrupt regions, and reports everything in a
// fault.RecoveryReport. Poisoned words (detectable-uncorrectable media
// errors) are never trusted.

// entry-parse status codes for salvageParse.
const (
	entOK = iota
	entWrap
	entBad
)

// salvageParse examines the slot at monotonic offset pos. When
// trustedHead is true, head bounds the entry's end. On entOK it
// returns the entry and the next offset; on entWrap only the next
// offset; on entBad the caller quarantines and resynchronizes.
// poisoned reports whether the failure involved poisoned media;
// crcFail reports an integrity-layer CRC mismatch specifically.
func salvageParse(im *memory.Image, meta Meta, pos, head uint64, trustedHead bool) (e Entry, next uint64, status int, poisoned, crcFail bool) {
	idx := pos % meta.DataBytes
	base := meta.Data + memory.Addr(idx)
	if im.Poisoned(base) {
		return Entry{}, 0, entBad, true, false
	}
	length := im.ReadWord(base)
	if length == wrapMarker {
		return Entry{}, pos + (meta.DataBytes - idx), entWrap, false, false
	}
	if length == 0 || length > MaxPayload {
		return Entry{}, 0, entBad, false, false
	}
	slot := SlotBytes(int(length))
	if idx+slot > meta.DataBytes {
		return Entry{}, 0, entBad, false, false
	}
	if trustedHead && pos+slot > head {
		return Entry{}, 0, entBad, false, false
	}
	if im.RangePoisoned(base, int(slot)) {
		return Entry{}, 0, entBad, true, false
	}
	if meta.Integrity {
		payload, ok := durable.OpenFrame(im, base, pos, MaxPayload)
		if !ok {
			return Entry{}, 0, entBad, false, true
		}
		return Entry{Offset: pos, Payload: payload}, pos + slot, entOK, false, false
	}
	payload := make([]byte, length)
	im.ReadBytes(base+headerBytes, payload)
	if im.ReadWord(base+memory.Addr(checksumOffset(int(length)))) != Checksum(pos, payload) {
		return Entry{}, 0, entBad, false, false
	}
	return Entry{Offset: pos, Payload: payload}, pos + slot, entOK, false, false
}

// RecoverSalvage parses as much of the queue as the image supports,
// returning the intact entries in order plus a report of what was
// quarantined. The error is non-nil only for unusable metadata;
// corruption — even of the head/tail words themselves — degrades the
// scan instead of failing it.
func RecoverSalvage(im *memory.Image, meta Meta) ([]Entry, fault.RecoveryReport, error) {
	var rep fault.RecoveryReport
	if meta.DataBytes == 0 || meta.DataBytes%SlotAlign != 0 {
		return nil, rep, fmt.Errorf("queue: bad recovery metadata: data bytes %d", meta.DataBytes)
	}
	var head, tail uint64
	var headUsable, tailUsable bool
	if meta.Integrity {
		// Durable-word pointers: CRC-validated copies behind a CDB.
		// Detections land in the report; a fallback read still anchors
		// the scan (the older value is safe — head/tail only grow).
		hr := durable.ReadWord(im, meta.Head)
		tr := durable.ReadWord(im, meta.Tail)
		hr.Absorb(&rep, "head")
		tr.Absorb(&rep, "tail")
		head, tail = hr.Val, tr.Val
		headUsable = hr.OK && head%SlotAlign == 0
		tailUsable = tr.OK && tail%SlotAlign == 0
	} else {
		head = im.ReadWord(meta.Head)
		tail = im.ReadWord(meta.Tail)
		// Both pointers only ever hold slot-aligned offsets; a torn persist
		// of either word shows up as misalignment or implausible distance.
		headUsable = !im.Poisoned(meta.Head) && head%SlotAlign == 0
		tailUsable = !im.Poisoned(meta.Tail) && tail%SlotAlign == 0
		if im.Poisoned(meta.Head) {
			rep.PoisonedWords++
		}
		if im.Poisoned(meta.Tail) {
			rep.PoisonedWords++
		}
	}
	trusted := headUsable && tailUsable
	if !trusted {
		rep.Note("head/tail unusable (poisoned or torn)")
	} else if tail > head || head-tail > meta.DataBytes {
		trusted = false
		rep.Note("implausible head %d / tail %d", head, tail)
	}
	if !trusted {
		rep.HeaderQuarantined = true
	}
	if !tailUsable {
		// Without even a tail there is no scan anchor: any offset guess
		// would misbind every offset-keyed checksum. Recover nothing,
		// loudly.
		rep.Note("no scan anchor; entries unrecoverable")
		return nil, rep, nil
	}

	// With untrusted pointers, scan from tail while entries validate —
	// checksums are bound to the monotonic offset, so stale ring eras
	// cannot masquerade — and stop at the first invalid slot (without a
	// head there is no telling live data from never-written space).
	limit := head
	if !trusted {
		limit = tail + meta.DataBytes
	}

	var out []Entry
	pos := tail
	for pos < limit {
		e, next, status, poisoned, crcFail := salvageParse(im, meta, pos, head, trusted)
		switch status {
		case entOK:
			out = append(out, e)
			rep.Recovered++
			rep.BytesScanned += next - pos
			pos = next
		case entWrap:
			rep.BytesScanned += memory.WordSize
			pos = next
		default: // entBad
			if poisoned {
				rep.PoisonedWords++
			}
			if crcFail {
				rep.CRCDetected++
			}
			rep.BytesScanned += memory.WordSize
			if !trusted {
				// End of provable data. A nonzero length word here is a
				// record the scan deliberately leaves behind (torn tail or
				// unreachable era) — visible, not corruption by itself.
				if im.ReadWord(meta.Data+memory.Addr(pos%meta.DataBytes)) != 0 {
					rep.DiscardedRecords++
				}
				return out, rep, nil
			}
			rep.Quarantined++
			// Resynchronize on the slot grid: entries and wrap markers
			// always start on SlotAlign boundaries.
			resynced := false
			for q := pos + SlotAlign; q < head; q += SlotAlign {
				rep.BytesScanned += memory.WordSize
				if _, _, st, _, _ := salvageParse(im, meta, q, head, trusted); st != entBad {
					rep.Dropped += int((q-pos)/SlotAlign) - 1
					pos, resynced = q, true
					break
				}
			}
			if !resynced {
				if lost := int((head-pos)/SlotAlign) - 1; lost > 0 {
					rep.Dropped += lost
				}
				rep.Note("no resync before head (offset %d)", pos)
				return out, rep, nil
			}
			rep.Note("resynced at offset %d", pos)
		}
	}
	return out, rep, nil
}
