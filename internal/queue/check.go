package queue

import "repro/internal/persistcheck"

// Checks declares the queue's recovery-critical metadata for the
// persistency checker (internal/persistcheck).
//
// The head word publishes by value: recovery scans entries in
// [tail, head), so a persisted head value v covers every data persist
// below offset v — including other threads' entries under Two-Lock
// Concurrent, where the oldest inserter publishes the whole completed
// prefix (Algorithm 1 line 28). The tail word is the §5.3 OrderAfter
// region: an insert reuses slots freed by a tail advance, so its
// persists must stay ordered after the tail persist it observed (the
// strand recipe in strandOrderingRead exists for exactly this).
func (m Meta) Checks() persistcheck.Annotations {
	return persistcheck.Annotations{
		Pubs: []persistcheck.Publication{{
			Name:        "head",
			Word:        m.Head,
			Data:        []persistcheck.Extent{{Addr: m.Data, Size: m.DataBytes}},
			ValueCovers: true,
		}},
		OrderAfter: []persistcheck.Region{{
			Name: "tail",
			Addr: m.Tail,
			Size: 8,
		}},
	}
}
