package queue

import (
	"repro/internal/durable"
	"repro/internal/persistcheck"
)

// Checks declares the queue's recovery-critical metadata for the
// persistency checker (internal/persistcheck).
//
// The head word publishes by value: recovery scans entries in
// [tail, head), so a persisted head value v covers every data persist
// below offset v — including other threads' entries under Two-Lock
// Concurrent, where the oldest inserter publishes the whole completed
// prefix (Algorithm 1 line 28). The tail word is the §5.3 OrderAfter
// region: an insert reuses slots freed by a tail advance, so its
// persists must stay ordered after the tail persist it observed (the
// strand recipe in strandOrderingRead exists for exactly this).
//
// With integrity on, the pointers are dual-copy durable words: both
// value copies inherit the head's publication obligation, the CDB flip
// is itself a publication over the copies it activates, and the whole
// metadata footprint (plus the CRC-framed data segment) is declared
// Protected — the unprotected-metadata lint flags the plain layout's
// pointers, whose silent corruption recovery cannot detect.
func (m Meta) Checks() persistcheck.Annotations {
	if !m.Integrity {
		return persistcheck.Annotations{
			Pubs: []persistcheck.Publication{{
				Name:        "head",
				Word:        m.Head,
				Data:        []persistcheck.Extent{{Addr: m.Data, Size: m.DataBytes}},
				ValueCovers: true,
			}},
			OrderAfter: []persistcheck.Region{{
				Name: "tail",
				Addr: m.Tail,
				Size: 8,
			}},
		}
	}
	hw := durable.Word{Base: m.Head}
	tw := durable.Word{Base: m.Tail}
	return persistcheck.Annotations{
		Pubs: hw.Checks("head", []persistcheck.Extent{{Addr: m.Data, Size: m.DataBytes}}, true, false),
		OrderAfter: []persistcheck.Region{{
			// The CDB word at the base is the tail's commit point.
			Name: "tail",
			Addr: m.Tail,
			Size: 8,
		}},
		Protected: []persistcheck.Extent{
			hw.Extent(),
			tw.Extent(),
			{Addr: m.Data, Size: m.DataBytes},
		},
	}
}
