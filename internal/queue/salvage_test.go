package queue

import (
	"testing"

	"repro/internal/memory"
)

// salvageMeta lays out a small hand-crafted queue region.
func salvageMeta() Meta {
	return Meta{
		Head:      memory.PersistentBase,
		Tail:      memory.PersistentBase + 8,
		Data:      memory.PersistentBase + 64,
		DataBytes: 512,
	}
}

// writeSalvageEntry serializes one valid entry at monotonic offset pos
// and returns the next offset.
func writeSalvageEntry(im *memory.Image, meta Meta, pos uint64, payload []byte) uint64 {
	base := meta.Data + memory.Addr(pos%meta.DataBytes)
	im.WriteWord(base, uint64(len(payload)))
	im.WriteBytes(base+headerBytes, payload)
	im.WriteWord(base+memory.Addr(checksumOffset(len(payload))), Checksum(pos, payload))
	return pos + SlotBytes(len(payload))
}

// salvageImage builds an image holding n valid entries from offset 0
// with head/tail set, returning the image and head offset.
func salvageImage(n int) (*memory.Image, Meta, uint64) {
	meta := salvageMeta()
	im := memory.NewImage()
	pos := uint64(0)
	for i := 0; i < n; i++ {
		pos = writeSalvageEntry(im, meta, pos, MakePayload(uint64(i+1), 24))
	}
	im.WriteWord(meta.Head, pos)
	im.WriteWord(meta.Tail, 0)
	return im, meta, pos
}

func TestQueueSalvageTable(t *testing.T) {
	// Each entry in the default image occupies one 64-byte slot.
	cases := []struct {
		name       string
		corrupt    func(im *memory.Image, meta Meta)
		recovered  int
		quarantine int
		dropped    int
		header     bool
		detected   bool
	}{
		{
			name:      "clean image is untouched",
			corrupt:   func(*memory.Image, Meta) {},
			recovered: 3,
		},
		{
			name: "torn payload quarantined with resync",
			corrupt: func(im *memory.Image, meta Meta) {
				// Clobber one payload word of entry 1 (slot at 64).
				im.WriteWord(meta.Data+64+headerBytes, 0xdeadbeef)
			},
			recovered:  2,
			quarantine: 1,
			detected:   true,
		},
		{
			name: "poisoned length word quarantined",
			corrupt: func(im *memory.Image, meta Meta) {
				im.Poison(meta.Data + 64)
			},
			recovered:  2,
			quarantine: 1,
			detected:   true,
		},
		{
			name: "two adjacent torn slots drop the gap",
			corrupt: func(im *memory.Image, meta Meta) {
				im.WriteWord(meta.Data, 3) // entry 0 length lies
				im.WriteWord(meta.Data+64, MaxPayload+1)
			},
			recovered:  1,
			quarantine: 1, // one quarantine event; resync skips slot 1
			dropped:    1,
			detected:   true,
		},
		{
			name: "poisoned head falls back to untrusted scan",
			corrupt: func(im *memory.Image, meta Meta) {
				im.Poison(meta.Head)
			},
			recovered: 3,
			header:    true,
			detected:  true,
		},
		{
			name: "untrusted scan stops at first invalid slot",
			corrupt: func(im *memory.Image, meta Meta) {
				im.Poison(meta.Head)
				im.WriteWord(meta.Data+64+headerBytes, 0xdeadbeef)
			},
			recovered: 1,
			header:    true,
			detected:  true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			im, meta, _ := salvageImage(3)
			tc.corrupt(im, meta)
			got, rep, err := RecoverSalvage(im, meta)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != tc.recovered || rep.Recovered != tc.recovered {
				t.Fatalf("recovered %d entries (report %d), want %d\nreport: %s",
					len(got), rep.Recovered, tc.recovered, rep.String())
			}
			if rep.Quarantined != tc.quarantine || rep.Dropped != tc.dropped ||
				rep.HeaderQuarantined != tc.header {
				t.Fatalf("report %s, want quarantined=%d dropped=%d header=%v",
					rep.String(), tc.quarantine, tc.dropped, tc.header)
			}
			if rep.Detected() != tc.detected {
				t.Fatalf("Detected() = %v, want %v (%s)", rep.Detected(), tc.detected, rep.String())
			}
		})
	}
}

// TestQueueSalvageMatchesRecoverOnCleanImages pins the baseline-clean
// invariant the fault campaign relies on: wherever strict Recover
// succeeds, salvage recovers the same entries with a clean report.
func TestQueueSalvageMatchesRecoverOnCleanImages(t *testing.T) {
	im, meta, _ := salvageImage(5)
	strict, err := Recover(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	soft, rep, err := RecoverSalvage(im, meta)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected() {
		t.Fatalf("clean image produced dirty report: %s", rep.String())
	}
	if len(strict) != len(soft) {
		t.Fatalf("strict recovered %d, salvage %d", len(strict), len(soft))
	}
	for i := range strict {
		if strict[i].Offset != soft[i].Offset || string(strict[i].Payload) != string(soft[i].Payload) {
			t.Fatalf("entry %d differs", i)
		}
	}
}
