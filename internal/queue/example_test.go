package queue_test

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/queue"
)

// ExampleQueue shows the basic persistent-queue lifecycle on the
// simulated machine: insert, remove, and post-crash recovery.
func ExampleQueue() {
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	q := queue.MustNew(s, queue.Config{
		DataBytes: 4096,
		Design:    queue.CWL,
		Policy:    queue.PolicyEpoch,
	})

	q.Insert(s, []byte("first"))
	q.Insert(s, []byte("second"))
	if payload, ok := q.Remove(s); ok {
		fmt.Printf("removed %q\n", payload)
	}

	// Recovery reads the live entries straight out of the NVRAM image.
	entries, err := queue.Recover(m.PersistentImage(), q.Meta())
	if err != nil {
		panic(err)
	}
	for _, e := range entries {
		fmt.Printf("recovered %q\n", e.Payload)
	}
	// Output:
	// removed "first"
	// recovered "second"
}
