// Package queue implements the paper's motivating microbenchmark: a
// thread-safe persistent queue (§6, Algorithm 1), in both designs —
// Copy While Locked (CWL) and Two-Lock Concurrent (2LC) — annotated for
// each persistency model, plus the recovery procedure and a native
// (non-simulated) variant used to measure instruction execution rate.
//
// The queue is a circular buffer in the persistent address space with
// persistent head and tail pointers holding monotonically increasing
// byte offsets. An entry occupies a 64-byte-aligned slot (the paper
// pads inserts to 64 bytes to avoid false sharing, §7):
//
//	[ length 8B | payload … | checksum 8B | pad to 64B ]
//
// The checksum (FNV-1a over the monotonic offset, length, and payload)
// is this reproduction's addition: the recovery observer uses it to
// *detect* states that violate recovery correctness, which the paper
// argues about but does not mechanically check. An entry is recoverable
// iff the head pointer encompasses its slot — exactly the paper's
// recovery rule ("an entry is not valid and recoverable until the head
// pointer encompasses the associated portion of the data segment").
package queue

import (
	"fmt"

	"repro/internal/durable"
	"repro/internal/exec"
	"repro/internal/locks"
	"repro/internal/memory"
)

// Design selects the queue implementation from §6.
type Design uint8

const (
	// CWL is Copy While Locked: one lock serializes inserts; each
	// insert persists the entry then the head pointer.
	CWL Design = iota
	// TwoLock is Two-Lock Concurrent: a reserve lock allocates data
	// segment space, entries persist outside any lock, and an update
	// lock orders head-pointer advancement via a volatile insert list.
	TwoLock
)

// String names the design as in the paper.
func (d Design) String() string {
	switch d {
	case CWL:
		return "copy-while-locked"
	case TwoLock:
		return "two-lock-concurrent"
	default:
		return fmt.Sprintf("design(%d)", uint8(d))
	}
}

// Policy selects the annotation discipline from Algorithm 1. The same
// queue code runs under every persistency model; only the annotations
// differ, exactly as in the paper.
type Policy uint8

const (
	// PolicyStrict emits no annotations: strict persistency derives all
	// ordering from SC itself.
	PolicyStrict Policy = iota
	// PolicyEpoch surrounds lock operations with persist barriers so
	// epochs never race: persists are ordered across critical sections
	// (the paper's "Epoch" configuration).
	PolicyEpoch
	// PolicyRacingEpoch omits the barriers inside the critical section
	// (Algorithm 1 lines 5 and 11, marked "removing allows race"),
	// intentionally allowing persist-epoch races; head-pointer persists
	// stay ordered through strong persist atomicity (the paper's
	// "Racing Epochs" configuration).
	PolicyRacingEpoch
	// PolicyStrand additionally begins a new persist strand per insert
	// (Algorithm 1 lines 6 and 21), making inserts independent except
	// where strong persist atomicity orders them.
	PolicyStrand
)

// String names the policy as in the paper's Table 1 columns.
func (p Policy) String() string {
	switch p {
	case PolicyStrict:
		return "strict"
	case PolicyEpoch:
		return "epoch"
	case PolicyRacingEpoch:
		return "racing-epochs"
	case PolicyStrand:
		return "strand"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Policies lists the annotation policies in Table 1 order.
var Policies = []Policy{PolicyStrict, PolicyEpoch, PolicyRacingEpoch, PolicyStrand}

const (
	// SlotAlign is the entry slot alignment (§7: 64-byte padding).
	SlotAlign = 64
	// headerBytes is the entry length word.
	headerBytes = 8
	// checksumBytes trails the payload.
	checksumBytes = 8
	// wrapMarker in a length word tells recovery the writer skipped to
	// the start of the buffer because the entry would have straddled the
	// wrap point.
	wrapMarker = ^uint64(0)
	// MaxPayload bounds payload length (keeps length words sane for
	// recovery validation).
	MaxPayload = 1 << 20
)

// checksumOffset returns the entry-relative offset of the checksum
// word. It is 8-byte aligned so the checksum persist never shares a
// word with the payload's tail — word sharing would order the two
// persists through strong persist atomicity, an avoidable intra-entry
// false dependence (§8.2's false-sharing effect at layout scale).
func checksumOffset(payloadLen int) uint64 {
	return uint64(memory.AlignUp(memory.Addr(headerBytes+payloadLen), memory.WordSize))
}

// SlotBytes returns the aligned slot size for a payload length.
func SlotBytes(payloadLen int) uint64 {
	return uint64(memory.AlignUp(memory.Addr(checksumOffset(payloadLen)+checksumBytes), SlotAlign))
}

// Config parameterizes a queue.
type Config struct {
	// DataBytes is the data segment capacity; multiple of SlotAlign.
	DataBytes uint64
	// Design selects CWL or TwoLock.
	Design Design
	// Policy selects the annotation discipline.
	Policy Policy
	// MaxThreads bounds concurrent inserters (sizes the 2LC insert
	// list). Zero means 16.
	MaxThreads int
	// BreakDataHeadOrder omits the data→head persist barrier
	// (Algorithm 1 lines 8 and 27). For negative testing only: under
	// relaxed persistency the recovery observer can then see a head
	// pointer covering an entry that never persisted.
	BreakDataHeadOrder bool
	// Fences emits a store-visibility fence (exec.Thread.Fence) at each
	// annotation point. Required for recovery correctness on
	// relaxed-consistency (PSO) machines: persist barriers constrain
	// persists with respect to *visible* store order (§4.2), so a head
	// store that becomes visible before the entry's stores defeats the
	// barrier. No-ops under SC.
	Fences bool
	// Overwrite runs the queue as an unbounded log, as the paper's
	// insert-only evaluation does (100M inserts through a circular
	// buffer): the capacity check is skipped and old entries are
	// overwritten once the buffer wraps. Remove and Recover are only
	// meaningful while head−tail ≤ DataBytes, so overwrite mode is for
	// throughput benchmarking, not crash testing.
	Overwrite bool
	// OmitCompletionBarrier omits the completion barrier this
	// reproduction adds to Two-Lock Concurrent between the entry copy
	// and the update-lock acquisition. Algorithm 1 as printed has no
	// barrier there, but without one a *non-oldest* insert's data
	// persists are never bound into persistent memory order before its
	// insert-list "done" store, so another thread's head persist can
	// cover the entry while its data is still buffered — a reachable
	// corruption our crash tests demonstrate (see EXPERIMENTS.md).
	OmitCompletionBarrier bool
	// Integrity hardens the durable format against media corruption
	// (internal/durable): head and tail become dual-copy durable words
	// behind corruption-detecting booleans, and entries become
	// CRC64-framed records. Recovery then *detects* silent bit errors
	// instead of trusting them. Costs extra persists per pointer update
	// (the copy + CDB flip) and per entry (CRC64 vs the light checksum);
	// the simulator's persist counts expose the overhead.
	Integrity bool
}

// Meta locates a queue's persistent structures; recovery needs it after
// a crash (a real system would store it at a well-known NVRAM address).
// With Integrity set, Head and Tail are the bases of 40-byte durable
// words (dual copies behind a CDB) rather than plain 8-byte offsets,
// and entries carry CRC64 frame checksums.
type Meta struct {
	Head      memory.Addr
	Tail      memory.Addr
	Data      memory.Addr
	DataBytes uint64
	Integrity bool
}

// Queue is the simulated-machine persistent queue.
type Queue struct {
	cfg  Config
	meta Meta

	// CWL lock.
	queueLock locks.Lock
	// 2LC locks and volatile insert list.
	reserveLock locks.Lock
	updateLock  locks.Lock
	list        *insertList
	// headV is the 2LC volatile head reservation cursor.
	headV memory.Addr
}

// New allocates and initializes a queue using a setup thread. The
// initializing persists (head and tail zero) are part of the trace.
func New(s *exec.Thread, cfg Config) (*Queue, error) {
	if cfg.DataBytes == 0 || cfg.DataBytes%SlotAlign != 0 {
		return nil, fmt.Errorf("queue: DataBytes %d must be a positive multiple of %d", cfg.DataBytes, SlotAlign)
	}
	if cfg.DataBytes < 2*SlotAlign {
		return nil, fmt.Errorf("queue: DataBytes %d too small", cfg.DataBytes)
	}
	if cfg.MaxThreads <= 0 {
		cfg.MaxThreads = 16
	}
	q := &Queue{cfg: cfg}
	ptrBytes := int(memory.WordSize)
	if cfg.Integrity {
		ptrBytes = durable.WordBytes
	}
	q.meta = Meta{
		Head:      s.MallocPersistent(ptrBytes, SlotAlign),
		Tail:      s.MallocPersistent(ptrBytes, SlotAlign),
		Data:      s.MallocPersistent(int(cfg.DataBytes), SlotAlign),
		DataBytes: cfg.DataBytes,
		Integrity: cfg.Integrity,
	}
	if cfg.Integrity {
		durable.Word{Base: q.meta.Head}.Init(s, 0)
		durable.Word{Base: q.meta.Tail}.Init(s, 0)
	} else {
		s.Store8(q.meta.Head, 0)
		s.Store8(q.meta.Tail, 0)
	}
	s.PersistBarrier()
	switch cfg.Design {
	case CWL:
		q.queueLock = locks.NewMCS(s)
	case TwoLock:
		q.reserveLock = locks.NewMCS(s)
		q.updateLock = locks.NewMCS(s)
		q.list = newInsertList(s, 2*cfg.MaxThreads)
		q.headV = s.MallocVolatile(memory.WordSize, SlotAlign)
		s.Store8(q.headV, 0)
	default:
		return nil, fmt.Errorf("queue: unknown design %v", cfg.Design)
	}
	return q, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(s *exec.Thread, cfg Config) *Queue {
	q, err := New(s, cfg)
	if err != nil {
		panic(err)
	}
	return q
}

// Meta returns the queue's persistent layout for recovery.
func (q *Queue) Meta() Meta { return q.meta }

// Config returns the queue's configuration.
func (q *Queue) Config() Config { return q.cfg }

// annotation helpers: which Algorithm 1 barriers each policy emits.
// With Fences set, each annotation point also fences store visibility
// (needed on PSO machines; strict persistency relies on the fences
// alone there, since visible order is all it has).

func (q *Queue) fence(t *exec.Thread) {
	if q.cfg.Fences {
		t.Fence()
	}
}

func (q *Queue) barrierOuter(t *exec.Thread) { // lines 3 and 13
	q.fence(t)
	if q.cfg.Policy != PolicyStrict {
		t.PersistBarrier()
	}
}

func (q *Queue) barrierInner(t *exec.Thread) { // lines 5 and 11 ("removing allows race")
	q.fence(t)
	if q.cfg.Policy == PolicyEpoch || q.cfg.Policy == PolicyStrand {
		t.PersistBarrier()
	}
}

func (q *Queue) barrierMid(t *exec.Thread) { // lines 8 and 27 (data → head)
	q.fence(t)
	if q.cfg.Policy != PolicyStrict && !q.cfg.BreakDataHeadOrder {
		t.PersistBarrier()
	}
}

func (q *Queue) barrierCompletion(t *exec.Thread) { // 2LC, between lines 22 and 23
	q.fence(t)
	if q.cfg.Policy != PolicyStrict && !q.cfg.OmitCompletionBarrier {
		t.PersistBarrier()
	}
}

func (q *Queue) newStrand(t *exec.Thread) { // lines 6 and 21
	if q.cfg.Policy == PolicyStrand {
		t.NewStrand()
	}
}

// Pointer accessors: with integrity enabled, head and tail live in
// dual-copy durable words whose commit point is the CDB flip at the
// word's base — the same address the plain layout keeps the offset at,
// so the strand-ordering read below needs no dispatch. The durable
// store emits its own internal barriers under every non-strict policy
// (including racing-epochs, whose entries otherwise rely on same-word
// persist atomicity that a multi-word pointer no longer has).

func (q *Queue) relaxed() bool { return q.cfg.Policy != PolicyStrict }

func (q *Queue) loadHead(t *exec.Thread) uint64 {
	if q.cfg.Integrity {
		return durable.Word{Base: q.meta.Head}.Load(t)
	}
	return t.Load8(q.meta.Head)
}

func (q *Queue) storeHead(t *exec.Thread, v uint64) {
	if q.cfg.Integrity {
		durable.Word{Base: q.meta.Head}.Store(t, v, q.relaxed())
		return
	}
	t.Store8(q.meta.Head, v)
}

func (q *Queue) loadTail(t *exec.Thread) uint64 {
	if q.cfg.Integrity {
		return durable.Word{Base: q.meta.Tail}.Load(t)
	}
	return t.Load8(q.meta.Tail)
}

func (q *Queue) storeTail(t *exec.Thread, v uint64) {
	if q.cfg.Integrity {
		durable.Word{Base: q.meta.Tail}.Store(t, v, q.relaxed())
		return
	}
	t.Store8(q.meta.Tail, v)
}

// strandOrderingRead applies §5.3's recipe after NewStrand: every
// persist of this insert — the entry overwrites slots freed by Remove,
// and the head pointer widens the live window — must stay ordered
// after the tail persist whose space it reuses, or a crash can expose
// head−tail beyond the buffer capacity or stale-tail scans over
// overwritten slots. The read imports the dependence; the barrier
// binds it before the entry's persists.
func (q *Queue) strandOrderingRead(t *exec.Thread) {
	if q.cfg.Policy == PolicyStrand {
		t.Load8(q.meta.Tail)
		t.PersistBarrier()
	}
}

// Insert appends payload to the queue, following Algorithm 1 for the
// configured design. It returns the entry's monotonic offset. Insert
// panics if the queue is full (callers size DataBytes for the
// workload; a bounded-blocking variant would simply retry).
func (q *Queue) Insert(t *exec.Thread, payload []byte) uint64 {
	if len(payload) == 0 || len(payload) > MaxPayload {
		panic(fmt.Sprintf("queue: bad payload length %d", len(payload)))
	}
	switch q.cfg.Design {
	case CWL:
		return q.insertCWL(t, payload)
	default:
		return q.insert2LC(t, payload)
	}
}

// insertCWL is Algorithm 1's InsertCWL. The head read and the capacity
// check run between the lock acquire and the inner barrier — a
// non-persisting epoch — so the persist-ordering context they import
// binds at the line 5 barrier and the insert stays free of
// persist-epoch races under the non-racing discipline (core's race
// detector verifies this).
func (q *Queue) insertCWL(t *exec.Thread, payload []byte) uint64 {
	q.barrierOuter(t)      // line 3
	q.queueLock.Acquire(t) // line 4
	head := q.loadHead(t)
	pos := q.skipWrap(t, head, SlotBytes(len(payload)), false)
	newHead := pos + SlotBytes(len(payload))
	q.checkCapacity(t, newHead)
	q.barrierInner(t) // line 5
	q.newStrand(t)    // line 6
	q.strandOrderingRead(t)
	if pos != head {
		// Persist the wrap marker alongside the entry's persists.
		t.Store8(q.meta.Data+memory.Addr(head%q.cfg.DataBytes), wrapMarker)
	}
	q.writeEntryAt(t, pos, payload) // line 7: COPY(data[head], ...)
	q.barrierMid(t)                 // line 8
	q.storeHead(t, newHead)         // line 9: head persist
	q.barrierInner(t)               // line 11
	q.queueLock.Release(t)          // line 12
	q.barrierOuter(t)               // line 13
	return pos
}

// insert2LC is Algorithm 1's Insert2LC.
func (q *Queue) insert2LC(t *exec.Thread, payload []byte) uint64 {
	slot := SlotBytes(len(payload))

	q.reserveLock.Acquire(t) // line 17
	start := t.Load8(q.headV)
	// Pre-skip the wrap filler while reserving so offsets stay exact.
	start = q.skipWrap(t, start, slot, true)
	end := start + slot
	t.Store8(q.headV, end) // line 18
	node := q.list.append(t, end)
	q.checkCapacity(t, end)
	q.reserveLock.Release(t) // line 20

	q.newStrand(t) // line 21
	q.strandOrderingRead(t)
	q.writeEntryAt(t, start, payload) // line 22
	q.barrierCompletion(t)            // binds this entry's persists before "done"

	q.updateLock.Acquire(t) // line 23
	oldest, newHead := q.list.remove(t, node)
	if oldest { // line 26
		q.barrierMid(t)         // line 27
		q.storeHead(t, newHead) // line 28
	}
	q.updateLock.Release(t) // line 31
	return start
}

// checkCapacity panics when an insert would overwrite live entries
// (unless the queue runs as an overwriting log).
func (q *Queue) checkCapacity(t *exec.Thread, newHead uint64) {
	if q.cfg.Overwrite {
		return
	}
	tail := q.loadTail(t)
	if newHead-tail > q.cfg.DataBytes {
		panic(fmt.Sprintf("queue: full (head %d, tail %d, capacity %d)", newHead, tail, q.cfg.DataBytes))
	}
}

// skipWrap advances pos past the buffer end when an entry of slot bytes
// would straddle it, writing a wrap marker for recovery. When persist
// is false the marker store is skipped (the caller only reserves).
func (q *Queue) skipWrap(t *exec.Thread, pos, slot uint64, persist bool) uint64 {
	idx := pos % q.cfg.DataBytes
	if idx+slot <= q.cfg.DataBytes {
		return pos
	}
	if persist {
		t.Store8(q.meta.Data+memory.Addr(idx), wrapMarker)
	}
	return pos + (q.cfg.DataBytes - idx)
}

// writeEntryAt persists one entry at monotonic offset pos: length word,
// payload bytes, checksum word.
func (q *Queue) writeEntryAt(t *exec.Thread, pos uint64, payload []byte) {
	base := q.meta.Data + memory.Addr(pos%q.cfg.DataBytes)
	if q.cfg.Integrity {
		// Same layout (durable.CRCOffset == checksumOffset), CRC64 trailer
		// bound to the monotonic offset.
		durable.SealFrame(t, base, pos, payload)
		return
	}
	t.Store8(base, uint64(len(payload)))
	t.StoreBytes(base+headerBytes, payload)
	t.Store8(base+memory.Addr(checksumOffset(len(payload))), Checksum(pos, payload))
}

// Remove dequeues the oldest entry, returning its payload, or ok=false
// when the queue is empty. The tail persist is ordered after the entry
// is consumed via a persist barrier (under non-strict policies), so a
// crash can only duplicate, never lose, a delivery.
func (q *Queue) Remove(t *exec.Thread) (payload []byte, ok bool) {
	lock := q.queueLock
	if q.cfg.Design == TwoLock {
		lock = q.updateLock
	}
	lock.Acquire(t)
	defer lock.Release(t)
	tail := q.loadTail(t)
	head := q.loadHead(t)
	if tail >= head {
		return nil, false
	}
	idx := tail % q.cfg.DataBytes
	length := t.Load8(q.meta.Data + memory.Addr(idx))
	if length == wrapMarker {
		tail += q.cfg.DataBytes - idx
		idx = 0
		length = t.Load8(q.meta.Data + memory.Addr(idx))
	}
	if length == 0 || length > MaxPayload {
		panic(fmt.Sprintf("queue: corrupt length %d at offset %d", length, tail))
	}
	payload = make([]byte, length)
	t.LoadBytes(q.meta.Data+memory.Addr(idx)+headerBytes, payload)
	q.barrierMid(t)
	q.storeTail(t, tail+SlotBytes(int(length)))
	return payload, true
}
