package queue

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/exec"
	"repro/internal/trace"
)

// runInserts executes a queue workload: threads × perThread inserts of
// payloadLen bytes, payload ids tid*1000000+i. Returns the machine, the
// queue, and the trace.
func runInserts(t *testing.T, cfg Config, threads, perThread, payloadLen int, seed int64) (*exec.Machine, *Queue, *trace.Trace) {
	t.Helper()
	tr := &trace.Trace{}
	m := exec.NewMachine(exec.Config{Threads: threads, Seed: seed, Sink: tr})
	s := m.SetupThread()
	q, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(func(th *exec.Thread) {
		for i := 0; i < perThread; i++ {
			id := uint64(th.TID())*1000000 + uint64(i)
			th.BeginWork(id)
			q.Insert(th, MakePayload(id, payloadLen))
			th.EndWork(id)
		}
	})
	return m, q, tr
}

func recoveredIDs(t *testing.T, entries []Entry, payloadLen int) map[uint64]bool {
	t.Helper()
	ids := make(map[uint64]bool)
	for _, e := range entries {
		if len(e.Payload) != payloadLen {
			t.Fatalf("entry at %d has length %d", e.Offset, len(e.Payload))
		}
		// Identify the payload by brute-force match against the id space
		// used by runInserts (cheap for test sizes).
		found := false
		for tid := uint64(0); tid < 16 && !found; tid++ {
			for i := uint64(0); i < 512 && !found; i++ {
				id := tid*1000000 + i
				if bytes.Equal(e.Payload, MakePayload(id, payloadLen)) {
					ids[id] = true
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("entry at %d matches no known payload", e.Offset)
		}
	}
	return ids
}

func TestCWLSingleThreadInsertRecover(t *testing.T) {
	m, q, _ := runInserts(t, Config{DataBytes: 1 << 16, Design: CWL, Policy: PolicyEpoch}, 1, 20, 100, 1)
	entries, err := Recover(m.PersistentImage(), q.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 20 {
		t.Fatalf("recovered %d entries, want 20", len(entries))
	}
	ids := recoveredIDs(t, entries, 100)
	for i := uint64(0); i < 20; i++ {
		if !ids[i] {
			t.Fatalf("entry %d missing", i)
		}
	}
	// Single-thread CWL preserves insertion order.
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Offset >= entries[i].Offset {
			t.Fatal("entries out of order")
		}
	}
}

func TestQueueAllDesignsAllPolicies(t *testing.T) {
	for _, d := range []Design{CWL, TwoLock} {
		for _, p := range Policies {
			for _, threads := range []int{1, 4} {
				name := fmt.Sprintf("%v/%v/%dT", d, p, threads)
				t.Run(name, func(t *testing.T) {
					m, q, _ := runInserts(t, Config{DataBytes: 1 << 16, Design: d, Policy: p}, threads, 25, 100, 7)
					entries, err := Recover(m.PersistentImage(), q.Meta())
					if err != nil {
						t.Fatal(err)
					}
					want := threads * 25
					if len(entries) != want {
						t.Fatalf("recovered %d entries, want %d", len(entries), want)
					}
					ids := recoveredIDs(t, entries, 100)
					if len(ids) != want {
						t.Fatalf("distinct ids %d, want %d", len(ids), want)
					}
				})
			}
		}
	}
}

func TestRemoveFIFO(t *testing.T) {
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	q := MustNew(s, Config{DataBytes: 1 << 14, Design: CWL, Policy: PolicyEpoch})
	var want [][]byte
	for i := uint64(0); i < 10; i++ {
		p := MakePayload(i, 50)
		want = append(want, p)
		q.Insert(s, p)
	}
	for i := 0; i < 10; i++ {
		got, ok := q.Remove(s)
		if !ok {
			t.Fatalf("Remove %d: empty", i)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("Remove %d: wrong payload", i)
		}
	}
	if _, ok := q.Remove(s); ok {
		t.Fatal("Remove from empty queue should report not-ok")
	}
}

func TestWrapAround(t *testing.T) {
	// Buffer of 4 slots (payload 100 -> slot 128): insert/remove in a
	// pattern that forces wraps, including a non-dividing entry size.
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	q := MustNew(s, Config{DataBytes: 512, Design: CWL, Policy: PolicyEpoch})
	seq := uint64(0)
	for round := 0; round < 10; round++ {
		sizes := []int{100, 40, 150} // 150 -> slot 192: forces misaligned wraps
		var want [][]byte
		for _, sz := range sizes {
			p := MakePayload(seq, sz)
			seq++
			want = append(want, p)
			q.Insert(s, p)
		}
		// Recovery must see exactly the live entries.
		entries, err := Recover(m.PersistentImage(), q.Meta())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(entries) != len(sizes) {
			t.Fatalf("round %d: recovered %d, want %d", round, len(entries), len(sizes))
		}
		for i := range want {
			got, ok := q.Remove(s)
			if !ok || !bytes.Equal(got, want[i]) {
				t.Fatalf("round %d entry %d mismatch", round, i)
			}
		}
	}
}

func TestQueueFullPanics(t *testing.T) {
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	q := MustNew(s, Config{DataBytes: 256, Design: CWL, Policy: PolicyEpoch})
	defer func() {
		if recover() == nil {
			t.Error("overfilling the queue should panic")
		}
	}()
	for i := uint64(0); i < 10; i++ {
		q.Insert(s, MakePayload(i, 100))
	}
}

func TestConfigValidation(t *testing.T) {
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	if _, err := New(s, Config{DataBytes: 100, Design: CWL}); err == nil {
		t.Error("unaligned DataBytes accepted")
	}
	if _, err := New(s, Config{DataBytes: 0, Design: CWL}); err == nil {
		t.Error("zero DataBytes accepted")
	}
	if _, err := New(s, Config{DataBytes: 1 << 12, Design: Design(9)}); err == nil {
		t.Error("unknown design accepted")
	}
}

func TestAnnotationCounts(t *testing.T) {
	// Verify the Algorithm 1 barrier placement per policy for CWL.
	const inserts = 10
	counts := func(p Policy) (barriers, strands int) {
		_, _, tr := runInserts(t, Config{DataBytes: 1 << 16, Design: CWL, Policy: p}, 1, inserts, 100, 3)
		s := trace.Summarize(tr)
		return s.Barriers, s.Strands
	}
	// Setup emits one barrier after initializing head/tail.
	if b, s := counts(PolicyStrict); b != 1 || s != 0 {
		t.Errorf("strict: %d barriers %d strands", b, s)
	}
	if b, s := counts(PolicyEpoch); b != 1+5*inserts || s != 0 {
		t.Errorf("epoch: %d barriers, want %d", b, 1+5*inserts)
		_ = s
	}
	if b, _ := counts(PolicyRacingEpoch); b != 1+3*inserts {
		t.Errorf("racing: %d barriers, want %d", b, 1+3*inserts)
	}
	// Strand adds the §5.3 ordering-read barrier after each NewStrand.
	if b, s := counts(PolicyStrand); b != 1+6*inserts || s != inserts {
		t.Errorf("strand: %d barriers %d strands", b, s)
	}
}

func TestTwoLockInsertList(t *testing.T) {
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	l := newInsertList(s, 4)
	n0 := l.append(s, 100)
	n1 := l.append(s, 200)
	n2 := l.append(s, 300)
	// Completing out of order: n1 first -> not oldest, no head motion.
	if oldest, _ := l.remove(s, n1); oldest {
		t.Fatal("n1 should not be oldest")
	}
	// n0 completes: pops n0 and the already-done n1 -> head 200.
	oldest, newHead := l.remove(s, n0)
	if !oldest || newHead != 200 {
		t.Fatalf("n0 removal: oldest=%v head=%d", oldest, newHead)
	}
	// n2 completes: pops itself -> head 300.
	oldest, newHead = l.remove(s, n2)
	if !oldest || newHead != 300 {
		t.Fatalf("n2 removal: oldest=%v head=%d", oldest, newHead)
	}
}

func TestTwoLockListBackpressure(t *testing.T) {
	// A tiny insert list (MaxThreads 1 -> capacity 2) with more threads
	// than capacity: appenders must wait for the front to advance, and
	// the run must still complete with every entry recoverable.
	m, q, _ := runInserts(t, Config{DataBytes: 1 << 15, Design: TwoLock, Policy: PolicyEpoch, MaxThreads: 1}, 4, 15, 64, 9)
	entries, err := Recover(m.PersistentImage(), q.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 60 {
		t.Fatalf("recovered %d entries, want 60", len(entries))
	}
}

func TestOverwriteLogMode(t *testing.T) {
	// An overwriting log accepts many times its capacity of inserts
	// without panicking; the head offset keeps growing monotonically.
	m := exec.NewMachine(exec.Config{})
	s := m.SetupThread()
	q := MustNew(s, Config{DataBytes: 512, Design: CWL, Policy: PolicyEpoch, Overwrite: true})
	for i := uint64(0); i < 100; i++ {
		q.Insert(s, MakePayload(i, 100))
	}
	head := s.Load8(q.Meta().Head)
	if head < 100*SlotBytes(100) {
		t.Fatalf("head = %d, expected monotonic growth", head)
	}
}

func TestDesignPolicyStrings(t *testing.T) {
	if CWL.String() == "" || TwoLock.String() == "" || Design(7).String() == "" {
		t.Error("design strings")
	}
	for _, p := range Policies {
		if p.String() == "" {
			t.Error("policy string empty")
		}
	}
}
