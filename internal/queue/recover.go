package queue

import (
	"errors"
	"fmt"

	"repro/internal/durable"
	"repro/internal/memory"
)

// Recovery: reading the queue back out of a post-crash NVRAM image.
//
// The rule is the paper's (§6): an entry is valid iff the head pointer
// encompasses its slot. Every entry between tail and head must
// therefore be fully intact; anything else means the persistency
// model's ordering constraints were violated (or mis-annotated), and
// Recover reports it as corruption.

// Entry is one recovered queue entry.
type Entry struct {
	// Offset is the entry's monotonic byte offset in the queue.
	Offset uint64
	// Payload is the entry body.
	Payload []byte
}

// CorruptionError describes a recovery-correctness violation: the head
// pointer encompasses data that never fully persisted.
type CorruptionError struct {
	Offset uint64
	Reason string
}

// Error implements error.
func (e *CorruptionError) Error() string {
	return fmt.Sprintf("queue: corrupt entry at offset %d: %s", e.Offset, e.Reason)
}

// IsCorruption reports whether err is a recovery corruption.
func IsCorruption(err error) bool {
	var ce *CorruptionError
	return errors.As(err, &ce)
}

// Recover parses the live entries ([tail, head)) out of a post-crash
// image. It returns the recovered entries in order, or a
// CorruptionError if the image violates recovery correctness.
func Recover(im *memory.Image, meta Meta) ([]Entry, error) {
	if meta.DataBytes == 0 || meta.DataBytes%SlotAlign != 0 {
		return nil, fmt.Errorf("queue: bad recovery metadata: data bytes %d", meta.DataBytes)
	}
	var head, tail uint64
	if meta.Integrity {
		// Strict recovery verifies annotations against clean crash
		// states: any integrity detection in the pointer words is itself
		// a violation here (the salvage path is where fallback belongs).
		hr := durable.ReadWord(im, meta.Head)
		tr := durable.ReadWord(im, meta.Tail)
		if !hr.OK || hr.Detected() {
			return nil, &CorruptionError{Offset: 0, Reason: "head word corrupt"}
		}
		if !tr.OK || tr.Detected() {
			return nil, &CorruptionError{Offset: 0, Reason: "tail word corrupt"}
		}
		head, tail = hr.Val, tr.Val
	} else {
		head = im.ReadWord(meta.Head)
		tail = im.ReadWord(meta.Tail)
	}
	if tail > head {
		return nil, &CorruptionError{Offset: tail, Reason: fmt.Sprintf("tail %d beyond head %d", tail, head)}
	}
	if head-tail > meta.DataBytes {
		return nil, &CorruptionError{Offset: head, Reason: fmt.Sprintf("live region %d exceeds capacity %d", head-tail, meta.DataBytes)}
	}
	var out []Entry
	pos := tail
	for pos < head {
		idx := pos % meta.DataBytes
		length := im.ReadWord(meta.Data + memory.Addr(idx))
		if length == wrapMarker {
			pos += meta.DataBytes - idx
			continue
		}
		if length == 0 || length > MaxPayload {
			return nil, &CorruptionError{Offset: pos, Reason: fmt.Sprintf("implausible length %d", length)}
		}
		slot := SlotBytes(int(length))
		if pos+slot > head {
			return nil, &CorruptionError{Offset: pos, Reason: "entry extends past head"}
		}
		if idx+slot > meta.DataBytes {
			return nil, &CorruptionError{Offset: pos, Reason: "entry straddles wrap point"}
		}
		if meta.Integrity {
			payload, ok := durable.OpenFrame(im, meta.Data+memory.Addr(idx), pos, MaxPayload)
			if !ok {
				return nil, &CorruptionError{Offset: pos, Reason: "frame CRC mismatch"}
			}
			out = append(out, Entry{Offset: pos, Payload: payload})
			pos += slot
			continue
		}
		payload := make([]byte, length)
		im.ReadBytes(meta.Data+memory.Addr(idx)+headerBytes, payload)
		sum := im.ReadWord(meta.Data + memory.Addr(idx) + memory.Addr(checksumOffset(int(length))))
		if sum != Checksum(pos, payload) {
			return nil, &CorruptionError{Offset: pos, Reason: "checksum mismatch"}
		}
		out = append(out, Entry{Offset: pos, Payload: payload})
		pos += slot
	}
	return out, nil
}
