package epochhw

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/memory"
	"repro/internal/queue"
	"repro/internal/trace"
)

func paddr(i uint64) memory.Addr { return memory.PersistentBase + memory.Addr(i*64) }
func vaddr(i uint64) memory.Addr { return memory.VolatileBase + memory.Addr(i*64) }

type tb struct{ tr trace.Trace }

func (b *tb) store(tid int32, a memory.Addr) {
	b.tr.Emit(trace.Event{TID: tid, Kind: trace.Store, Addr: a, Size: 8, Val: 1})
}
func (b *tb) load(tid int32, a memory.Addr) {
	b.tr.Emit(trace.Event{TID: tid, Kind: trace.Load, Addr: a, Size: 8})
}
func (b *tb) barrier(tid int32) { b.tr.Emit(trace.Event{TID: tid, Kind: trace.PersistBarrier}) }

func run(t *testing.T, tr *trace.Trace) Result {
	t.Helper()
	r, err := Run(tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{LineBytes: 12}); err == nil {
		t.Error("bad line size accepted")
	}
	if _, err := New(Config{LineBytes: 4}); err == nil {
		t.Error("sub-word line accepted")
	}
	c, err := New(Config{})
	if err != nil || c.cfg.LineBytes != 64 {
		t.Error("default line size")
	}
}

func TestSameThreadEpochOrder(t *testing.T) {
	var b tb
	b.store(0, paddr(0))
	b.barrier(0)
	b.store(0, paddr(1))
	r := run(t, &b.tr)
	if len(r.Writes) != 2 {
		t.Fatalf("writes = %d", len(r.Writes))
	}
	if r.Writes[0].Seqs[0] != 0 || r.Writes[1].Seqs[0] != 2 {
		t.Fatalf("epoch order violated: %+v", r.Writes)
	}
	if r.EpochsDrained != 2 || r.ForcedDrains != 0 {
		t.Fatalf("drain stats: %+v", r)
	}
}

func TestCoalescingInCache(t *testing.T) {
	var b tb
	b.store(0, paddr(0))
	b.store(0, paddr(0))                                                                   // same line, same epoch
	b.tr.Emit(trace.Event{TID: 0, Kind: trace.Store, Addr: paddr(0) + 8, Size: 8, Val: 2}) // same 64B line
	r := run(t, &b.tr)
	if len(r.Writes) != 1 {
		t.Fatalf("writes = %d, want 1 coalesced line", len(r.Writes))
	}
	if r.Coalesced != 2 {
		t.Fatalf("coalesced = %d", r.Coalesced)
	}
	if len(r.Writes[0].Seqs) != 3 {
		t.Fatalf("line seqs = %v", r.Writes[0].Seqs)
	}
}

func TestCrossThreadStoreConflictForcesDrain(t *testing.T) {
	var b tb
	b.store(0, paddr(0)) // T0's in-flight line
	b.store(1, paddr(0)) // T1 writes it: T0's epoch must drain first
	r := run(t, &b.tr)
	if r.ForcedDrains != 1 {
		t.Fatalf("forced drains = %d", r.ForcedDrains)
	}
	pos := r.DrainPos()
	if !(pos[0] < pos[1]) {
		t.Fatalf("conflict order violated: %+v", r.Writes)
	}
}

func TestCrossThreadLoadForcesDrain(t *testing.T) {
	var b tb
	b.store(0, paddr(0))
	b.load(1, paddr(0)) // reading another thread's in-flight line drains it
	b.store(1, paddr(1))
	r := run(t, &b.tr)
	if r.ForcedDrains != 1 {
		t.Fatalf("forced drains = %d", r.ForcedDrains)
	}
	pos := r.DrainPos()
	if !(pos[0] < pos[2]) {
		t.Fatalf("order: %v", pos)
	}
}

func TestOwnOlderEpochStoreDrains(t *testing.T) {
	var b tb
	b.store(0, paddr(0))
	b.barrier(0)
	b.store(0, paddr(0)) // same line, newer epoch: older epoch drains
	r := run(t, &b.tr)
	if r.ForcedDrains != 1 {
		t.Fatalf("forced drains = %d", r.ForcedDrains)
	}
	pos := r.DrainPos()
	if !(pos[0] < pos[2]) {
		t.Fatalf("same-line epoch order violated")
	}
}

func TestVolatileTrafficInvisible(t *testing.T) {
	var b tb
	b.store(0, paddr(0))
	b.store(1, vaddr(0))
	b.load(0, vaddr(0))
	r := run(t, &b.tr)
	if r.ForcedDrains != 0 || len(r.Writes) != 1 {
		t.Fatalf("volatile traffic affected the hardware: %+v", r)
	}
}

// validateAgainstModel checks that the hardware's write order satisfies
// every constraint of the abstract EpochTSO model at the hardware's
// line granularity, and that each persist drains exactly once.
func validateAgainstModel(t *testing.T, tr *trace.Trace, lineBytes uint64) {
	t.Helper()
	r, err := Run(tr, Config{LineBytes: lineBytes})
	if err != nil {
		t.Fatal(err)
	}
	pos := r.DrainPos()
	// Exactly-once.
	count := 0
	for _, w := range r.Writes {
		count += len(w.Seqs)
	}
	persists := tr.Persists()
	if count != len(persists) {
		t.Fatalf("hardware drained %d persists, trace has %d", count, len(persists))
	}
	for _, p := range persists {
		if _, ok := pos[p.Seq]; !ok {
			t.Fatalf("persist #%d never drained", p.Seq)
		}
	}
	// Model constraints.
	g, err := graph.Build(tr, core.Params{Model: core.EpochTSO, TrackingGranularity: lineBytes})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes {
		for _, e := range n.In {
			from := g.Nodes[e.From].Event.Seq
			to := n.Event.Seq
			if pos[from] > pos[to] {
				t.Fatalf("hardware violated %v constraint: #%d (pos %d) must persist before #%d (pos %d)",
					e.Class, from, pos[from], to, pos[to])
			}
		}
	}
}

func TestHardwareEnforcesModelOnStructuredTraces(t *testing.T) {
	// Barriered multi-thread workload with shared persistent head-like
	// word and disjoint data.
	var b tb
	for i := uint64(0); i < 30; i++ {
		tid := int32(i % 3)
		b.store(tid, paddr(10+i))
		b.store(tid, paddr(10+i))
		b.barrier(tid)
		b.store(tid, paddr(0)) // shared
		b.barrier(tid)
	}
	validateAgainstModel(t, &b.tr, 64)
}

func TestHardwareEnforcesModelOnQueueWorkloads(t *testing.T) {
	for _, pol := range []queue.Policy{queue.PolicyEpoch, queue.PolicyRacingEpoch} {
		for _, threads := range []int{1, 3} {
			tr, err := bench.Trace(bench.Workload{
				Design: queue.CWL, Policy: pol, Threads: threads,
				Inserts: 60, PayloadLen: 100, Seed: 17,
			})
			if err != nil {
				t.Fatal(err)
			}
			validateAgainstModel(t, tr, 64)
		}
	}
}

func TestHardwareForcedDrainsReflectSharing(t *testing.T) {
	// The shared head pointer forces drains under multi-threaded CWL;
	// a single thread with per-insert barriers needs none beyond its
	// own same-line epoch handoffs.
	multi, err := bench.Trace(bench.Workload{Design: queue.CWL, Policy: queue.PolicyEpoch, Threads: 4, Inserts: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(multi, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.ForcedDrains == 0 {
		t.Fatal("shared head should force drains")
	}
}

func TestHardwareEnforcesModelOnRandomTraces(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var b tb
		for i := 0; i < 200; i++ {
			tid := int32(rng.Intn(3))
			switch rng.Intn(8) {
			case 0:
				b.barrier(tid)
			case 1:
				b.load(tid, paddr(uint64(rng.Intn(6))))
			case 2:
				b.store(tid, vaddr(uint64(rng.Intn(3))))
			default:
				b.store(tid, paddr(uint64(rng.Intn(6))))
			}
		}
		validateAgainstModel(t, &b.tr, 64)
		validateAgainstModel(t, &b.tr, 8)
	}
}
