// Package epochhw models the cache-hierarchy hardware the paper
// sketches for epoch persistency (§5.2 "Implementation"), following
// BPFS's design: each thread buffers its in-flight persist epochs in
// the cache; every cache line carries a tag identifying the last
// thread and epoch to persist to it; and an access that hits a line
// belonging to another thread's (or an older own) in-flight epoch
// forces those epochs to drain to NVRAM, in order, before execution
// proceeds.
//
// The module turns the paper's claim — that such hardware *enforces*
// the persistency model — into a testable statement: feeding a trace
// through the hardware produces a concrete NVRAM write order, and the
// differential tests check that this order satisfies every constraint
// of the abstract EpochTSO model (BPFS hardware detects conflicts only
// on the persistent address space and only through its line tags, i.e.
// TSO-style — exactly the EpochTSO ablation in internal/core).
//
// A hardware buffer generation is not one-to-one with a software
// epoch: a conflict can force the current epoch to drain mid-way, and
// its remaining persists then occupy a fresh buffer generation. That
// split is legal — persists within an epoch are unordered — but the
// generations must drain in order, so threads track them with a
// monotonic uid.
package epochhw

import (
	"fmt"

	"repro/internal/memory"
	"repro/internal/trace"
)

// Config describes the hardware.
type Config struct {
	// LineBytes is the cache line size: the granularity of epoch tags
	// and thus of hardware conflict detection. Power of two ≥ 8;
	// 0 means 64 (the usual line size, also what BPFS assumes).
	LineBytes uint64
}

// Write is one NVRAM write issued by the hardware: a drained cache
// line version carrying the trace events coalesced into it.
type Write struct {
	// Seqs are the trace sequence numbers of the persists merged into
	// this line write (same line, same buffer generation), in trace
	// order.
	Seqs []uint64
	// TID identifies the owning thread.
	TID int32
}

// Result reports a hardware run.
type Result struct {
	// Writes is the NVRAM write sequence, in drain order.
	Writes []Write
	// ForcedDrains counts conflict-triggered generation flushes.
	ForcedDrains int
	// EpochsDrained counts buffer generations written back.
	EpochsDrained int
	// Coalesced counts persists merged into an already-buffered line.
	Coalesced int
}

// DrainPos returns a map from trace seq to position in the write
// order; persists coalesced into one line write share a position.
func (r Result) DrainPos() map[uint64]int {
	pos := make(map[uint64]int)
	for i, w := range r.Writes {
		for _, s := range w.Seqs {
			pos[s] = i
		}
	}
	return pos
}

// lineTag marks the last in-flight buffer generation to persist to a
// line.
type lineTag struct {
	tid int32
	uid int
}

// hwEpoch is one buffered generation: its dirty lines in write order.
type hwEpoch struct {
	uid   int
	order []memory.BlockID
	lines map[memory.BlockID]*Write
	// openSeq orders generations globally for the final drain.
	openSeq int
}

// hwThread is one core's buffer-generation queue.
type hwThread struct {
	tid     int32
	nextUID int
	openUID int        // uid of the open generation, or -1
	queue   []*hwEpoch // in-flight generations, oldest first
	drained int        // generations with uid <= drained left the cache
}

// Cache is the simulated epoch-ordering hardware. Feed it a trace in
// SC order; Finish drains the remainder.
type Cache struct {
	cfg     Config
	tags    map[memory.BlockID]lineTag
	threads map[int32]*hwThread
	res     Result
	opens   int
}

// New builds the hardware simulator.
func New(cfg Config) (*Cache, error) {
	if cfg.LineBytes == 0 {
		cfg.LineBytes = 64
	}
	if !memory.IsPowerOfTwo(cfg.LineBytes) || cfg.LineBytes < memory.WordSize {
		return nil, fmt.Errorf("epochhw: bad line size %d", cfg.LineBytes)
	}
	return &Cache{
		cfg:     cfg,
		tags:    make(map[memory.BlockID]lineTag),
		threads: make(map[int32]*hwThread),
	}, nil
}

func (c *Cache) thread(tid int32) *hwThread {
	t, ok := c.threads[tid]
	if !ok {
		t = &hwThread{tid: tid, openUID: -1, drained: -1}
		c.threads[tid] = t
	}
	return t
}

// openEpoch returns the thread's open buffer generation, creating one
// if the previous generation was closed by a barrier or forced drain.
func (c *Cache) openEpoch(t *hwThread) *hwEpoch {
	if t.openUID >= 0 {
		return t.queue[len(t.queue)-1]
	}
	e := &hwEpoch{uid: t.nextUID, lines: make(map[memory.BlockID]*Write), openSeq: c.opens}
	t.nextUID++
	t.openUID = e.uid
	c.opens++
	t.queue = append(t.queue, e)
	return e
}

// drainThrough writes back t's in-flight generations with uid ≤ upto,
// oldest first.
func (c *Cache) drainThrough(t *hwThread, upto int, forced bool) {
	for len(t.queue) > 0 && t.queue[0].uid <= upto {
		e := t.queue[0]
		t.queue = t.queue[1:]
		for _, line := range e.order {
			c.res.Writes = append(c.res.Writes, *e.lines[line])
		}
		c.res.EpochsDrained++
		if forced {
			c.res.ForcedDrains++
		}
		if e.uid > t.drained {
			t.drained = e.uid
		}
		if t.openUID == e.uid {
			t.openUID = -1 // the current epoch drained mid-way
		}
	}
	if upto > t.drained {
		t.drained = upto
	}
}

// resolveConflict enforces the BPFS rule: touching a line that belongs
// to another thread's — or an older own — in-flight generation drains
// those generations first.
func (c *Cache) resolveConflict(line memory.BlockID, t *hwThread, isStore bool) {
	tag, dirty := c.tags[line]
	if !dirty {
		return
	}
	owner := c.thread(tag.tid)
	if tag.uid <= owner.drained {
		return // already clean
	}
	if tag.tid == t.tid {
		// Same thread: a store into a line dirty in an older generation
		// would merge two generations in one line version; drain the
		// older ones first. (A load of one's own dirty line just hits;
		// a store into the open generation coalesces.)
		if isStore && tag.uid != t.openUID {
			c.drainThrough(owner, tag.uid, true)
		}
		return
	}
	c.drainThrough(owner, tag.uid, true)
}

// Feed processes one trace event. Volatile traffic is invisible to the
// hardware (BPFS tracks only the persistent address space).
func (c *Cache) Feed(e trace.Event) error {
	switch e.Kind {
	case trace.PersistBarrier, trace.PersistSync, trace.NewStrand:
		// The hardware implements barriers; strands fall back to
		// barrier behavior (no strand hardware exists; §5.3 calls
		// efficient strand tracking an open research challenge).
		c.thread(e.TID).openUID = -1
		return nil
	case trace.Load, trace.Store, trace.RMW:
		if !memory.IsPersistent(e.Addr) {
			return nil
		}
	default:
		return nil
	}
	t := c.thread(e.TID)
	first, last := memory.BlockSpan(e.Addr, int(e.Size), c.cfg.LineBytes)
	for line := first; line <= last; line++ {
		c.resolveConflict(line, t, e.Kind.HasStoreSemantics())
		if !e.Kind.HasStoreSemantics() {
			continue
		}
		ep := c.openEpoch(t)
		if w, ok := ep.lines[line]; ok {
			// Same line, same generation: coalesce in the cache.
			w.Seqs = append(w.Seqs, e.Seq)
			c.res.Coalesced++
			continue
		}
		w := &Write{Seqs: []uint64{e.Seq}, TID: e.TID}
		ep.lines[line] = w
		ep.order = append(ep.order, line)
		c.tags[line] = lineTag{tid: e.TID, uid: ep.uid}
	}
	return nil
}

// Finish drains all remaining in-flight generations (globally by
// generation age, a legal completion order) and returns the result.
func (c *Cache) Finish() Result {
	for {
		var best *hwThread
		for _, t := range c.threads {
			if len(t.queue) == 0 {
				continue
			}
			if best == nil || t.queue[0].openSeq < best.queue[0].openSeq {
				best = t
			}
		}
		if best == nil {
			break
		}
		c.drainThrough(best, best.queue[0].uid, false)
	}
	return c.res
}

// Run feeds an entire trace and finishes.
func Run(tr *trace.Trace, cfg Config) (Result, error) {
	c, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	for e := range tr.All() {
		if err := c.Feed(e); err != nil {
			return Result{}, err
		}
	}
	return c.Finish(), nil
}
