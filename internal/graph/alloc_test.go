package graph

import (
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestGrowAdditiveAllocs pins the fix for Grow discarding live slab
// capacity: a second Grow that fits in the remaining capacity of the
// first must not allocate, and node storage for the whole sequence is
// the two slices of the initial Grow. Before the fix every Grow call
// replaced the node slab unconditionally, so this counted one extra
// allocation per extra Grow.
func TestGrowAdditiveAllocs(t *testing.T) {
	var ev trace.Event
	n := testing.AllocsPerRun(10, func() {
		g := &Graph{}
		g.Grow(8) // one slab + one Nodes allocation
		for i := 0; i < 4; i++ {
			g.AddNode("n", ev)
		}
		g.Grow(4) // spare capacity remains: must be free
		for i := 0; i < 4; i++ {
			g.AddNode("n", ev)
		}
	})
	if n > 2 {
		t.Fatalf("incremental Grow sequence allocated %v times, want ≤ 2", n)
	}

	// Node pointers taken before an additive Grow stay valid after it.
	g := &Graph{}
	g.Grow(4)
	id := g.AddNode("keep", ev)
	p := g.Nodes[id]
	g.Grow(2)
	g.AddNode("more", ev)
	if g.Nodes[id] != p || p.Label != "keep" {
		t.Fatal("additive Grow invalidated an existing node")
	}
	// A Grow exceeding the remaining capacity still works (fresh slab).
	g.Grow(100)
	for i := 0; i < 100; i++ {
		g.AddNode("bulk", ev)
	}
	if g.Len() != 102 {
		t.Fatalf("got %d nodes, want 102", g.Len())
	}
}

// TestGraphBuildAllocs guards the builder's allocation behavior: the
// interval-frontier rewrite dropped BenchmarkGraphBuild from 104815
// (strict) / 121311 (epoch) allocs per 20k-event build to double
// digits / low hundreds. The budgets below sit far under the old
// counts' fifth (≈21k / ≈24k) while leaving headroom over the observed
// 63 / 166, so a regression reintroducing per-event allocation fails
// loudly.
func TestGraphBuildAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tr := benchTrace(20000)
	for _, tc := range []struct {
		model  core.Model
		budget float64
	}{
		{core.Strict, 1000},
		{core.Epoch, 4000},
	} {
		p := core.Params{Model: tc.model}
		got := testing.AllocsPerRun(2, func() {
			if _, err := Build(tr, p); err != nil {
				t.Fatal(err)
			}
		})
		if got > tc.budget {
			t.Errorf("%v: %v allocs per build, budget %v", tc.model, got, tc.budget)
		}
	}
}

// TestBuildStatsPopulated: trace builds report the frontier shape.
func TestBuildStatsPopulated(t *testing.T) {
	tr := benchTrace(2000)
	g, err := Build(tr, core.Params{Model: core.Epoch})
	if err != nil {
		t.Fatal(err)
	}
	s := g.Stats
	if s.FrontierRanges <= 0 || s.PeakRanges < s.FrontierRanges {
		t.Fatalf("implausible frontier stats: %+v", s)
	}
}
