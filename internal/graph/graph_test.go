package graph

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/trace"
)

func paddr(i uint64) memory.Addr { return memory.PersistentBase + memory.Addr(i*64) }
func vaddr(i uint64) memory.Addr { return memory.VolatileBase + memory.Addr(i*64) }

type tb struct{ tr trace.Trace }

func (b *tb) store(tid int32, a memory.Addr, v uint64) {
	b.tr.Emit(trace.Event{TID: tid, Kind: trace.Store, Addr: a, Size: 8, Val: v})
}
func (b *tb) load(tid int32, a memory.Addr) {
	b.tr.Emit(trace.Event{TID: tid, Kind: trace.Load, Addr: a, Size: 8})
}
func (b *tb) barrier(tid int32)   { b.tr.Emit(trace.Event{TID: tid, Kind: trace.PersistBarrier}) }
func (b *tb) newStrand(tid int32) { b.tr.Emit(trace.Event{TID: tid, Kind: trace.NewStrand}) }

func mustBuild(t *testing.T, tr *trace.Trace, p core.Params) *Graph {
	t.Helper()
	g, err := Build(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildStrictChain(t *testing.T) {
	var b tb
	b.store(0, paddr(0), 1)
	b.store(0, paddr(1), 2)
	b.store(0, paddr(2), 3)
	g := mustBuild(t, &b.tr, core.Params{Model: core.Strict})
	if g.Len() != 3 {
		t.Fatalf("nodes = %d", g.Len())
	}
	if g.CriticalPath() != 3 {
		t.Fatalf("critical path = %d", g.CriticalPath())
	}
	counts := g.EdgeCounts()
	if counts[ProgramOrder] != 2 {
		t.Fatalf("program-order edges = %d, want 2", counts[ProgramOrder])
	}
	if g.FindCycle() != nil {
		t.Fatal("trace-built graph must be acyclic")
	}
}

func TestBuildEpochConcurrent(t *testing.T) {
	var b tb
	b.store(0, paddr(0), 1)
	b.store(0, paddr(1), 2)
	b.barrier(0)
	b.store(0, paddr(2), 3)
	g := mustBuild(t, &b.tr, core.Params{Model: core.Epoch})
	if g.CriticalPath() != 2 {
		t.Fatalf("critical path = %d", g.CriticalPath())
	}
	// Node 2 depends on both epoch-0 persists via program order.
	if len(g.Nodes[2].In) != 2 {
		t.Fatalf("node 2 in-edges = %v", g.Nodes[2].In)
	}
}

func TestBuildAtomicityEdges(t *testing.T) {
	var b tb
	b.store(0, paddr(0), 1)
	b.store(1, paddr(0), 2) // same address, other thread, no sync
	g := mustBuild(t, &b.tr, core.Params{Model: core.Epoch})
	counts := g.EdgeCounts()
	if counts[Atomicity] != 1 {
		t.Fatalf("atomicity edges = %d, want 1", counts[Atomicity])
	}
	if g.CriticalPath() != 2 {
		t.Fatalf("critical path = %d", g.CriticalPath())
	}
}

func TestBuildConflictEdges(t *testing.T) {
	var b tb
	b.store(0, paddr(0), 1)
	b.barrier(0)
	b.store(0, vaddr(0), 1) // flag
	b.load(1, vaddr(0))
	b.barrier(1)
	b.store(1, paddr(1), 2)
	g := mustBuild(t, &b.tr, core.Params{Model: core.Epoch})
	counts := g.EdgeCounts()
	if counts[ProgramOrder] != 1 {
		// The persist on T1 is ordered after T0's persist, observed via
		// the conflict on the flag; the dependence binds at T1's barrier
		// so it arrives as a ProgramOrder (post-barrier) edge.
		t.Fatalf("edges: %v", counts)
	}
	if g.CriticalPath() != 2 {
		t.Fatalf("critical path = %d", g.CriticalPath())
	}
}

// TestGraphMatchesSimWithoutCoalescing cross-validates the DAG builder
// against the streaming simulator: with coalescing disabled they must
// compute identical critical paths on the same trace, for every model.
func TestGraphMatchesSimWithoutCoalescing(t *testing.T) {
	var b tb
	// A gnarly two-thread workload with barriers, strands, same-address
	// persists, volatile flags, and reads.
	for i := uint64(0); i < 12; i++ {
		tid := int32(i % 2)
		b.barrier(tid)
		b.store(tid, paddr(5+i), i)
		b.store(tid, paddr(5+i), i+1) // same-address re-persist
		b.load(tid, paddr(0))
		b.barrier(tid)
		b.store(tid, paddr(0), i) // shared head
		if i%3 == 0 {
			b.newStrand(tid)
		}
		b.store(tid, vaddr(0), i)
		b.load(int32((i+1)%2), vaddr(0))
	}
	for _, m := range core.Models {
		p := core.Params{Model: m, NoCoalescing: true}
		r, err := core.Simulate(&b.tr, p)
		if err != nil {
			t.Fatal(err)
		}
		g := mustBuild(t, &b.tr, core.Params{Model: m})
		if got, want := g.CriticalPath(), r.CriticalPath; got != want {
			t.Errorf("%v: graph critical path %d != sim %d", m, got, want)
		}
	}
}

func TestFigure1Cycle(t *testing.T) {
	// The paper's Figure 1: thread 1 persists A then B (persist barrier
	// between), thread 2 persists B then A (barrier between). Thread 1's
	// store *visibility* reorders, so coherence serializes B as
	// (T1's B) -> (T2's B) and A as (T2's A) -> (T1's A). Persist
	// barriers plus strong persist atomicity then form a cycle,
	// demonstrating that store visibility cannot reorder across persist
	// barriers while keeping strong persist atomicity.
	var g Graph
	t1A := g.AddNode("T1: persist A", trace.Event{})
	t1B := g.AddNode("T1: persist B", trace.Event{})
	t2B := g.AddNode("T2: persist B", trace.Event{})
	t2A := g.AddNode("T2: persist A", trace.Event{})
	g.AddEdge(t1A, t1B, ProgramOrder) // T1 barrier
	g.AddEdge(t2B, t2A, ProgramOrder) // T2 barrier
	g.AddEdge(t1B, t2B, Atomicity)    // B coherence order
	g.AddEdge(t2A, t1A, Atomicity)    // A coherence order
	cyc := g.FindCycle()
	if cyc == nil {
		t.Fatal("Figure 1 constraints must form a cycle")
	}
	if len(cyc) != 4 {
		t.Fatalf("cycle length = %d, want 4", len(cyc))
	}
	// Resolution 1 (paper): couple persist and store barriers — the
	// visibility order then matches program order, flipping the B edge.
	var g2 Graph
	a1 := g2.AddNode("T1: persist A", trace.Event{})
	b1 := g2.AddNode("T1: persist B", trace.Event{})
	b2 := g2.AddNode("T2: persist B", trace.Event{})
	a2 := g2.AddNode("T2: persist A", trace.Event{})
	g2.AddEdge(a1, b1, ProgramOrder)
	g2.AddEdge(b2, a2, ProgramOrder)
	g2.AddEdge(b2, b1, Atomicity) // T2's B first now
	g2.AddEdge(a2, a1, Atomicity)
	if g2.FindCycle() != nil {
		t.Fatal("coupled barriers must resolve the cycle")
	}
	// Resolution 2 (paper): relax strong persist atomicity — drop the
	// atomicity edges.
	var g3 Graph
	x1 := g3.AddNode("T1: persist A", trace.Event{})
	y1 := g3.AddNode("T1: persist B", trace.Event{})
	y2 := g3.AddNode("T2: persist B", trace.Event{})
	x2 := g3.AddNode("T2: persist A", trace.Event{})
	g3.AddEdge(x1, y1, ProgramOrder)
	g3.AddEdge(y2, x2, ProgramOrder)
	if g3.FindCycle() != nil {
		t.Fatal("dropping atomicity must resolve the cycle")
	}
}

func TestEdgeClassStrings(t *testing.T) {
	if ProgramOrder.String() == "" || Atomicity.String() == "" || Conflict.String() == "" {
		t.Fatal("edge class names empty")
	}
	if EdgeClass(9).String() != "class(9)" {
		t.Fatal("unknown class string")
	}
}

func TestDOT(t *testing.T) {
	var b tb
	b.store(0, paddr(0), 1)
	b.store(0, paddr(0), 2)
	g := mustBuild(t, &b.tr, core.Params{Model: core.Epoch})
	dot := g.DOT("example")
	for _, want := range []string{"digraph", "n0", "n1", "color=red", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Manual labels render.
	var m Graph
	m.AddNode("T1: persist A", trace.Event{})
	if !strings.Contains(m.DOT("fig1"), "T1: persist A") {
		t.Fatal("manual label missing")
	}
}

func TestDuplicateEdgeIgnored(t *testing.T) {
	var g Graph
	a := g.AddNode("a", trace.Event{})
	b := g.AddNode("b", trace.Event{})
	g.AddEdge(a, b, ProgramOrder)
	g.AddEdge(a, b, ProgramOrder)
	g.AddEdge(a, b, Atomicity) // different class: kept
	if len(g.Nodes[b].In) != 2 {
		t.Fatalf("in edges = %v", g.Nodes[b].In)
	}
}
