package graph

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/memory"
	"repro/internal/trace"
)

// requireIdenticalGraph asserts exact equality — same nodes, same edge
// slices in the same order, same Stats — not just the edge-set
// equality requireSameGraph checks. BuildParallel promises
// byte-identical output at any worker count; the CI dump-and-cmp step
// relies on it.
func requireIdenticalGraph(t *testing.T, ctx string, got, want *Graph) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d nodes, serial has %d", ctx, got.Len(), want.Len())
	}
	for i := range want.Nodes {
		gn, wn := got.Nodes[i], want.Nodes[i]
		if gn.Event != wn.Event {
			t.Fatalf("%s: node %d event %+v, serial %+v", ctx, i, gn.Event, wn.Event)
		}
		if len(gn.In) != len(wn.In) {
			t.Fatalf("%s: node %d has %d edges, serial %d\n got: %v\nwant: %v",
				ctx, i, len(gn.In), len(wn.In), gn.In, wn.In)
		}
		for j := range wn.In {
			if gn.In[j] != wn.In[j] {
				t.Fatalf("%s: node %d edge %d = %v, serial %v (order must match exactly)\n got: %v\nwant: %v",
					ctx, i, j, gn.In[j], wn.In[j], gn.In, wn.In)
			}
		}
	}
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats %+v, serial %+v", ctx, got.Stats, want.Stats)
	}
}

// TestParallelBuilderMatchesSerial is the tentpole differential test
// for BuildParallel: on random traces across every model, both
// granularities, and several worker counts, the parallel builder must
// reproduce Build's graph exactly (same edge order, same stats) and
// the reference builder's edge sets.
func TestParallelBuilderMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 200)
		for _, m := range core.Models {
			for _, gran := range []uint64{0, 32} {
				p := core.Params{Model: m, TrackingGranularity: gran}
				want, err := Build(tr, p)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := refBuild(tr, p)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 2, 4, 7} {
					ctx := fmt.Sprintf("seed %d model %v gran %d workers %d", seed, m, gran, workers)
					got, err := BuildParallel(tr, p, workers)
					if err != nil {
						t.Fatal(err)
					}
					requireIdenticalGraph(t, ctx, got, want)
					requireSameGraph(t, ctx, got, ref)
					if gc, wc := got.CriticalPath(), want.CriticalPath(); gc != wc {
						t.Fatalf("%s: critical path %d, serial %d", ctx, gc, wc)
					}
				}
			}
		}
	}
}

// TestParallelBuilderMatchesSerialOnPSO repeats the check on
// machine-generated PSO-reordered traces with multi-word stores
// crossing block boundaries at coarse granularity.
func TestParallelBuilderMatchesSerialOnPSO(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		tr := &trace.Trace{}
		m := exec.NewMachine(exec.Config{Threads: 3, Seed: seed, Sink: tr, Consistency: exec.PSO})
		s := m.SetupThread()
		base := s.MallocPersistent(1024, 64)
		flag := s.MallocVolatile(8, 8)
		m.Run(func(th *exec.Thread) {
			for i := uint64(0); i < 30; i++ {
				th.Store8(base+memory.Addr(th.TID()*256)+memory.Addr((i%4)*8), i)
				if i%5 == 0 {
					th.PersistBarrier()
				}
				if i%7 == 0 {
					th.Fence()
					th.Add8(flag, 1)
				}
			}
		})
		for _, mo := range core.Models {
			for _, gran := range []uint64{0, 32} {
				p := core.Params{Model: mo, TrackingGranularity: gran}
				want, err := Build(tr, p)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 4} {
					ctx := fmt.Sprintf("pso seed %d model %v gran %d workers %d", seed, mo, gran, workers)
					got, err := BuildParallel(tr, p, workers)
					if err != nil {
						t.Fatal(err)
					}
					requireIdenticalGraph(t, ctx, got, want)
				}
			}
		}
	}
}

// TestParallelBuilderErrors pins the error path: an invalid event must
// abort the build (workers drained, no panic) with the same error the
// serial builder reports.
func TestParallelBuilderErrors(t *testing.T) {
	tr := &trace.Trace{}
	tr.Emit(trace.Event{TID: 0, Kind: trace.Store, Addr: memory.PersistentBase, Size: 8, Val: 1})
	tr.Emit(trace.Event{TID: 0, Kind: trace.Store, Addr: memory.PersistentBase + 8, Size: 0, Val: 1}) // bad size
	_, serr := Build(tr, core.Params{Model: core.Epoch})
	if serr == nil {
		t.Fatal("serial build accepted invalid event")
	}
	for _, workers := range []int{1, 4} {
		_, perr := BuildParallel(tr, core.Params{Model: core.Epoch}, workers)
		if perr == nil {
			t.Fatalf("workers=%d: parallel build accepted invalid event", workers)
		}
		if perr.Error() != serr.Error() {
			t.Fatalf("workers=%d: error %q, serial %q", workers, perr, serr)
		}
	}
	_, err := BuildParallel(tr, core.Params{Model: core.Model(99)}, 4)
	if err == nil {
		t.Fatal("parallel build accepted unknown model")
	}
}
