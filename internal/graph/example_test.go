package graph_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/trace"
)

// ExampleGraph_FindCycle reproduces the paper's Figure 1 argument: if
// store visibility reorders across persist barriers while strong
// persist atomicity holds, the persist-order constraints form a cycle.
func ExampleGraph_FindCycle() {
	var g graph.Graph
	t1A := g.AddNode("T1: persist A", trace.Event{})
	t1B := g.AddNode("T1: persist B", trace.Event{})
	t2B := g.AddNode("T2: persist B", trace.Event{})
	t2A := g.AddNode("T2: persist A", trace.Event{})
	g.AddEdge(t1A, t1B, graph.ProgramOrder) // T1's persist barrier
	g.AddEdge(t2B, t2A, graph.ProgramOrder) // T2's persist barrier
	g.AddEdge(t1B, t2B, graph.Atomicity)    // B coherence (T1's store visible first)
	g.AddEdge(t2A, t1A, graph.Atomicity)    // A coherence (T2's store visible first)

	fmt.Println("cycle:", g.FindCycle() != nil)
	// Output:
	// cycle: true
}
