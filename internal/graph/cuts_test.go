package graph

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/trace"
)

func chainGraph(n int) *Graph {
	var b tb
	for i := 0; i < n; i++ {
		b.store(0, paddr(uint64(i)), uint64(i+1))
	}
	g, err := Build(&b.tr, core.Params{Model: core.Strict})
	if err != nil {
		panic(err)
	}
	return g
}

func TestFullAndEmptyCuts(t *testing.T) {
	g := chainGraph(5)
	if !g.Valid(g.Full()) || g.Full().Size() != 5 {
		t.Fatal("full cut invalid")
	}
	if !g.Valid(g.Empty()) || g.Empty().Size() != 0 {
		t.Fatal("empty cut invalid")
	}
}

func TestValidRejectsNonClosedCut(t *testing.T) {
	g := chainGraph(3)
	c := g.Empty()
	c.Included[2] = true // include the chain tail without its ancestors
	if g.Valid(c) {
		t.Fatal("non-downward-closed cut accepted")
	}
	if g.Valid(Cut{Included: []bool{true}}) {
		t.Fatal("wrong-length cut accepted")
	}
}

func TestChainCutsArePrefixes(t *testing.T) {
	g := chainGraph(4)
	// A strict chain has exactly n+1 consistent cuts: the prefixes.
	if got := g.CountCuts(); got != 5 {
		t.Fatalf("chain cuts = %d, want 5", got)
	}
	g.EnumerateCuts(func(c Cut) bool {
		// Every enumerated cut must be valid and a prefix.
		if !g.Valid(c) {
			t.Fatal("enumerated invalid cut")
		}
		seenFalse := false
		for _, in := range c.Included {
			if !in {
				seenFalse = true
			} else if seenFalse {
				t.Fatalf("non-prefix cut on a chain: %v", c.Included)
			}
		}
		return true
	})
}

func TestIndependentNodesCutCount(t *testing.T) {
	// Two unsynchronized threads with 2 persists each (to distinct
	// addresses): cuts = prefixes per thread = 3 × 3.
	var b tb
	b.store(0, paddr(0), 1)
	b.store(0, paddr(1), 2)
	b.store(1, paddr(10), 3)
	b.store(1, paddr(11), 4)
	g := mustBuild(t, &b.tr, core.Params{Model: core.Strict})
	if got := g.CountCuts(); got != 9 {
		t.Fatalf("independent cuts = %d, want 9", got)
	}
	// Epoch with no barriers: all four persists mutually unordered
	// within each thread too -> 2^2 per thread? No: same thread persists
	// share an epoch, concurrent: every subset is consistent -> 16.
	ge := mustBuild(t, &b.tr, core.Params{Model: core.Epoch})
	if got := ge.CountCuts(); got != 16 {
		t.Fatalf("epoch cuts = %d, want 16", got)
	}
}

func TestSampleCutAlwaysValid(t *testing.T) {
	var b tb
	for i := uint64(0); i < 10; i++ {
		tid := int32(i % 2)
		b.store(tid, paddr(i), i)
		if i%2 == 0 {
			b.barrier(tid)
		}
		b.store(tid, paddr(0), i)
	}
	g := mustBuild(t, &b.tr, core.Params{Model: core.Epoch})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		keep := rng.Float64()
		c := g.SampleCut(rng, keep)
		if !g.Valid(c) {
			t.Fatalf("sampled invalid cut (keep=%f)", keep)
		}
	}
}

func TestSampleCutExtremes(t *testing.T) {
	g := chainGraph(6)
	rng := rand.New(rand.NewSource(1))
	if got := g.SampleCut(rng, 1.0).Size(); got != 6 {
		t.Fatalf("keep=1 cut size = %d", got)
	}
	if got := g.SampleCut(rng, 0.0).Size(); got != 0 {
		t.Fatalf("keep=0 cut size = %d", got)
	}
}

func TestMaterialize(t *testing.T) {
	var b tb
	b.store(0, paddr(0), 0x1111)
	b.store(0, paddr(0), 0x2222) // overwrite, ordered by atomicity
	b.store(0, paddr(1), 0x3333)
	g := mustBuild(t, &b.tr, core.Params{Model: core.Epoch})
	// Full cut: final values.
	im := g.Materialize(g.Full())
	if im.ReadWord(paddr(0)) != 0x2222 || im.ReadWord(paddr(1)) != 0x3333 {
		t.Fatalf("full image wrong: %#x %#x", im.ReadWord(paddr(0)), im.ReadWord(paddr(1)))
	}
	// Cut with only the first persist: intermediate value.
	c := g.Empty()
	c.Included[0] = true
	if !g.Valid(c) {
		t.Fatal("prefix cut should be valid")
	}
	im = g.Materialize(c)
	if im.ReadWord(paddr(0)) != 0x1111 {
		t.Fatalf("partial image wrong: %#x", im.ReadWord(paddr(0)))
	}
	if im.ReadWord(paddr(1)) != 0 {
		t.Fatal("excluded persist leaked into image")
	}
}

func TestMaterializeSubWord(t *testing.T) {
	var b tb
	b.tr.Emit(trace.Event{TID: 0, Kind: trace.Store, Addr: memory.PersistentBase, Size: 8, Val: 0xffffffffffffffff})
	b.tr.Emit(trace.Event{TID: 0, Kind: trace.Store, Addr: memory.PersistentBase + 2, Size: 2, Val: 0xabcd})
	g := mustBuild(t, &b.tr, core.Params{Model: core.Epoch})
	im := g.Materialize(g.Full())
	if got := im.ReadWord(memory.PersistentBase); got != 0xffffffffabcdffff {
		t.Fatalf("sub-word materialization: %#x", got)
	}
}

func TestDropCut(t *testing.T) {
	// Chain a -> b -> c: dropping b excludes b and c, keeps a.
	g := chainGraph(3)
	c := g.DropCut(1)
	if !g.Valid(c) {
		t.Fatal("drop cut not downward-closed")
	}
	want := []bool{true, false, false}
	for i, w := range want {
		if c.Included[i] != w {
			t.Fatalf("DropCut(1) = %v", c.Included)
		}
	}
	// Independent nodes: dropping one keeps the others.
	var b tb
	b.store(0, paddr(0), 1)
	b.store(1, paddr(10), 2)
	b.store(0, paddr(1), 3)
	ge := mustBuild(t, &b.tr, core.Params{Model: core.Epoch})
	c = ge.DropCut(1)
	if !ge.Valid(c) || c.Size() != 2 || c.Included[1] {
		t.Fatalf("independent DropCut = %v", c.Included)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	g := chainGraph(10)
	n := 0
	g.EnumerateCuts(func(Cut) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop failed: %d", n)
	}
}
