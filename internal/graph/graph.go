// Package graph materializes persist-order constraint graphs.
//
// Where internal/core summarizes persist ordering as scalar critical-path
// levels (fast, streaming, used for the throughput experiments), package
// graph builds the explicit DAG of persists and labeled ordering edges
// for moderate-sized traces. The explicit form supports:
//
//   - classifying constraints (program-order/barrier, strong persist
//     atomicity, cross-thread conflict) to reproduce the structure of the
//     paper's Figure 2;
//   - enumerating and sampling *consistent cuts* — downward-closed sets
//     of persists — which are exactly the NVRAM states a failure may
//     expose to the recovery observer (used by internal/observer);
//   - cycle detection over manually constructed graphs, reproducing the
//     paper's Figure 1 impossibility argument.
//
// The graph deliberately ignores persist coalescing: coalescing merges
// NVRAM writes but never adds ordering, so the un-coalesced DAG admits a
// superset of the recovery states — the conservative direction for
// verifying recovery correctness.
package graph

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/intervals"
	"repro/internal/memory"
	"repro/internal/trace"
)

// EdgeClass labels why a persist-order constraint exists.
type EdgeClass uint8

const (
	// ProgramOrder edges come from the issuing thread's own order:
	// every preceding persist under strict persistency, epoch
	// boundaries under epoch/strand persistency.
	ProgramOrder EdgeClass = iota
	// Atomicity edges come from strong persist atomicity: persists to
	// the same (tracking-granularity) address serialize (§4.3).
	Atomicity
	// Conflict edges propagate across threads through conflicting
	// accesses (the recovery observer's happens-before, §4).
	Conflict
)

// String names the edge class.
func (c EdgeClass) String() string {
	switch c {
	case ProgramOrder:
		return "program-order"
	case Atomicity:
		return "atomicity"
	case Conflict:
		return "conflict"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// NodeID indexes a persist node within its graph.
type NodeID int

// Edge is a directed constraint: the owning node persists only after
// node From.
type Edge struct {
	From  NodeID
	Class EdgeClass
}

// Node is one persist (one store/RMW event targeting NVRAM), or a
// manually declared persist in a hand-built graph.
type Node struct {
	ID NodeID
	// Event is the originating trace event (zero for manual nodes).
	Event trace.Event
	// Label names manual nodes (Figure 1 style examples).
	Label string
	// In holds incoming constraint edges (dependences), deduplicated.
	In []Edge
}

// Graph is a persist-order constraint graph. Nodes added by Build are
// topologically ordered by construction (every edge points backward);
// manually built graphs may contain cycles, which FindCycle exposes.
type Graph struct {
	Nodes []*Node
	// Stats describes the interval dependence frontier of a trace build
	// (zero for manual graphs); see BuildStats.
	Stats BuildStats
	// slab is preallocated node storage (see Grow): AddNode takes slots
	// from it while capacity lasts, so a trace build with a known persist
	// count performs one node allocation instead of one per persist.
	slab []Node
}

// Grow preallocates storage for n additional nodes. Nodes already added
// are unaffected. Grow is additive: a second call only replaces the
// node slab (or re-sizes Nodes) when the remaining capacity from the
// first call cannot hold n more nodes, so incremental builds that grow
// in steps don't pay a fresh allocation-and-copy per call.
func (g *Graph) Grow(n int) {
	if n <= 0 {
		return
	}
	if cap(g.slab)-len(g.slab) < n {
		g.slab = make([]Node, 0, n)
	}
	if cap(g.Nodes)-len(g.Nodes) < n {
		ns := make([]*Node, len(g.Nodes), len(g.Nodes)+n)
		copy(ns, g.Nodes)
		g.Nodes = ns
	}
}

// AddNode appends a node and returns its id.
func (g *Graph) AddNode(label string, ev trace.Event) NodeID {
	id := NodeID(len(g.Nodes))
	var n *Node
	if len(g.slab) < cap(g.slab) {
		// The slab never grows (only Grow replaces it), so taken
		// pointers stay valid.
		g.slab = g.slab[:len(g.slab)+1]
		n = &g.slab[len(g.slab)-1]
		*n = Node{ID: id, Label: label, Event: ev}
	} else {
		n = &Node{ID: id, Label: label, Event: ev}
	}
	g.Nodes = append(g.Nodes, n)
	return id
}

// AddEdge adds a constraint: to persists only after from. Duplicate
// (from, class) pairs on one node are ignored. The scan is linear;
// the trace builder uses its own O(1) dedup and only calls this on
// fresh pairs.
func (g *Graph) AddEdge(from, to NodeID, class EdgeClass) {
	n := g.Nodes[to]
	for _, e := range n.In {
		if e.From == from && e.Class == class {
			return
		}
	}
	n.In = append(n.In, Edge{From: from, Class: class})
}

// Len returns the node count.
func (g *Graph) Len() int { return len(g.Nodes) }

// EdgeCounts tallies constraint edges by class — the quantitative view
// of Figure 2: relaxing the model removes classes of edges.
func (g *Graph) EdgeCounts() map[EdgeClass]int {
	out := make(map[EdgeClass]int)
	for _, n := range g.Nodes {
		for _, e := range n.In {
			out[e.Class]++
		}
	}
	return out
}

// CriticalPath returns the longest dependence chain length (number of
// nodes on it). It must agree with core.Sim's level computation when
// coalescing is disabled; tests cross-validate the two. Panics on
// cyclic graphs.
func (g *Graph) CriticalPath() int64 {
	if cyc := g.FindCycle(); cyc != nil {
		panic("graph: CriticalPath on cyclic graph")
	}
	depth := make([]int64, len(g.Nodes))
	var longest int64
	// Nodes are in topological order for trace-built graphs; manual
	// acyclic graphs may be out of order, so iterate to fixpoint-free
	// via DFS memoization instead.
	var visit func(NodeID) int64
	visiting := make([]bool, len(g.Nodes))
	visited := make([]bool, len(g.Nodes))
	visit = func(id NodeID) int64 {
		if visited[id] {
			return depth[id]
		}
		visiting[id] = true
		d := int64(1)
		for _, e := range g.Nodes[id].In {
			if dd := visit(e.From) + 1; dd > d {
				d = dd
			}
		}
		visiting[id] = false
		visited[id] = true
		depth[id] = d
		return d
	}
	for i := range g.Nodes {
		if d := visit(NodeID(i)); d > longest {
			longest = d
		}
	}
	return longest
}

// FindCycle returns the node ids of one directed cycle, or nil if the
// graph is acyclic. Edges are interpreted as From → node.
func (g *Graph) FindCycle() []NodeID {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.Nodes))
	parent := make([]NodeID, len(g.Nodes))
	// succ lists for forward traversal.
	succ := make([][]NodeID, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, e := range n.In {
			succ[e.From] = append(succ[e.From], n.ID)
		}
	}
	var cycle []NodeID
	var dfs func(NodeID) bool
	dfs = func(u NodeID) bool {
		color[u] = gray
		for _, v := range succ[u] {
			if color[v] == gray {
				// Found a back edge v ... u -> v: reconstruct.
				cycle = []NodeID{v}
				for x := u; x != v; x = parent[x] {
					cycle = append(cycle, x)
				}
				// Reverse into forward order v -> ... -> u.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
			if color[v] == white {
				parent[v] = u
				if dfs(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for i := range g.Nodes {
		if color[i] == white && dfs(NodeID(i)) {
			return cycle
		}
	}
	return nil
}

// DOT renders the constraint graph in Graphviz format: persists as
// nodes (labeled with thread and address, or the manual label), edges
// colored by class (program-order black, atomicity red, conflict
// blue). Intended for small graphs — a few dozen inserts already make
// a poster.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", name)
	for _, n := range g.Nodes {
		label := n.Label
		if label == "" {
			label = fmt.Sprintf("#%d t%d\\n%#x", n.Event.Seq, n.Event.TID, uint64(n.Event.Addr))
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", n.ID, label)
	}
	color := map[EdgeClass]string{
		ProgramOrder: "black",
		Atomicity:    "red",
		Conflict:     "blue",
	}
	for _, n := range g.Nodes {
		for _, e := range n.In {
			fmt.Fprintf(&b, "  n%d -> n%d [color=%s];\n", e.From, n.ID, color[e.Class])
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Build constructs the persist-order DAG of a trace under a persistency
// model. Parameters follow core.Params (granularities; coalescing is
// intentionally not modeled — see the package comment). The state
// machine mirrors core.Sim but carries dependence *frontiers* (sets of
// node ids) instead of scalar levels, keyed by address interval rather
// than per block (see frontier.go).
func Build(tr *trace.Trace, p core.Params) (*Graph, error) {
	b, err := newBuilder(p)
	if err != nil {
		return nil, err
	}
	// Pre-pass: one graph node per persist event, so the node slab can
	// be sized exactly before building (a planes-only SoA walk).
	b.g.Grow(tr.CountPersists())
	for _, c := range tr.Chunks() {
		for i := 0; i < c.Len(); i++ {
			if err := b.feed(c.Event(i)); err != nil {
				return nil, err
			}
		}
	}
	b.g.Stats = b.statsOf()
	return b.g, nil
}

type nodeSet map[NodeID]struct{}

func (s nodeSet) add(ids ...NodeID) nodeSet {
	if s == nil {
		s = make(nodeSet)
	}
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

func (s nodeSet) union(o nodeSet) nodeSet {
	if len(o) == 0 {
		return s
	}
	if s == nil {
		s = make(nodeSet)
	}
	for id := range o {
		s[id] = struct{}{}
	}
	return s
}

func (s nodeSet) clone() nodeSet {
	c := make(nodeSet, len(s))
	for id := range s {
		c[id] = struct{}{}
	}
	return c
}

type gThread struct {
	active   nodeSet
	pending  nodeSet
	epochMax nodeSet
}

type builder struct {
	g        *Graph
	p        core.Params
	strict   bool
	barriers bool
	strands  bool
	lbs      bool // load-before-store conflicts
	volc     bool // volatile conflicts
	threads  map[int32]*gThread
	// blocks is the interval-keyed dependence frontier: byte ranges
	// (always aligned to the tracking granularity) mapped to the
	// frontier state future persists of that range depend on. Untouched
	// space has no entry at all.
	blocks     *intervals.Map[memory.Addr, blockState]
	peakRanges int
	// Per-persist scratch and slabs, reused across events.
	seen     []NodeID
	edgeBuf  []Edge
	tiles    []blockState
	tmp      []NodeID
	idSlab   []NodeID
	edgeSlab []Edge
}

func newBuilder(p core.Params) (*builder, error) {
	if p.TrackingGranularity == 0 {
		p.TrackingGranularity = memory.WordSize
	}
	if !memory.IsPowerOfTwo(p.TrackingGranularity) {
		return nil, fmt.Errorf("graph: bad tracking granularity %d", p.TrackingGranularity)
	}
	b := &builder{
		g:       &Graph{},
		p:       p,
		threads: make(map[int32]*gThread),
		blocks:  newFrontier(),
	}
	switch p.Model {
	case core.Strict:
		b.strict, b.lbs, b.volc = true, true, true
	case core.Epoch:
		b.barriers, b.lbs, b.volc = true, true, true
	case core.EpochTSO:
		b.barriers = true
	case core.Strand:
		b.barriers, b.strands, b.lbs, b.volc = true, true, true, true
	default:
		return nil, fmt.Errorf("graph: unknown model %v", p.Model)
	}
	return b, nil
}

func (b *builder) thread(tid int32) *gThread {
	t, ok := b.threads[tid]
	if !ok {
		t = &gThread{}
		b.threads[tid] = t
	}
	return t
}

// span returns the tracking-granularity-aligned byte range the event's
// access covers: the interval-map key range standing in for the block
// ids the per-block builder enumerated. Event sizes are 1..8 and
// validated, so the range is never empty.
func (b *builder) span(e trace.Event) (lo, hi memory.Addr) {
	g := b.p.TrackingGranularity
	lo = memory.AlignDown(e.Addr, g)
	hi = memory.AlignDown(e.Addr+memory.Addr(e.Size)-1, g) + memory.Addr(g)
	return lo, hi
}

// trackPeak records the frontier's high-water mark after a mutation.
func (b *builder) trackPeak() {
	if n := b.blocks.Len(); n > b.peakRanges {
		b.peakRanges = n
	}
}

func (b *builder) feed(e trace.Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	switch e.Kind {
	case trace.Load:
		if !b.volc && !memory.IsPersistent(e.Addr) {
			return nil
		}
		t := b.thread(e.TID)
		lo, hi := b.span(e)
		b.blocks.Update(lo, hi, func(_ intervals.Range[memory.Addr], bs blockState, ok bool) (blockState, bool) {
			if !ok {
				bs.lastP = -1
			}
			if b.strict {
				t.active = intoSet(t.active, bs.writer)
			} else {
				t.pending = intoSet(t.pending, bs.writer)
			}
			if b.lbs {
				bs.reader = b.vecAddSet(bs.reader, t.active)
			}
			// An absent range stays absent unless it gained readers:
			// empty frontier state is equivalent to no state.
			return bs, ok || len(bs.reader) > 0
		})
		b.trackPeak()
	case trace.Store, trace.RMW:
		if memory.IsPersistent(e.Addr) {
			b.persist(e)
		} else if b.volc {
			t := b.thread(e.TID)
			lo, hi := b.span(e)
			b.blocks.Update(lo, hi, func(_ intervals.Range[memory.Addr], bs blockState, ok bool) (blockState, bool) {
				if !ok {
					bs.lastP = -1
				}
				// The store inherits the range's dependences...
				if b.strict {
					t.active = intoSet(intoSet(t.active, bs.writer), bs.reader)
				} else {
					t.pending = intoSet(intoSet(t.pending, bs.writer), bs.reader)
				}
				// ...and becomes, with them, the range's write frontier.
				bs.writer = b.vecAddSet(vecUnion(bs.writer, bs.reader), t.active)
				bs.reader = nil
				return bs, ok || len(bs.writer) > 0
			})
			b.trackPeak()
		}
	case trace.PersistBarrier:
		if b.barriers {
			b.bindEpoch(b.thread(e.TID))
		}
	case trace.NewStrand:
		if b.strands {
			t := b.thread(e.TID)
			t.active, t.pending, t.epochMax = nil, nil, nil
		}
	case trace.PersistSync:
		b.bindEpoch(b.thread(e.TID))
	case trace.Malloc, trace.Free, trace.BeginWork, trace.EndWork:
		// No ordering significance.
	}
	return nil
}

func (b *builder) bindEpoch(t *gThread) {
	if len(t.epochMax) > 0 {
		// Every persist of the closing epoch carries edges from the old
		// active set, so the old set is dominated and can be dropped —
		// the frontier pruning that keeps dependence sets bounded. The
		// old set's storage is reused (nothing aliases it: unions copy
		// elements out), so a barrier allocates only on set growth.
		act := t.active
		if act == nil {
			act = make(nodeSet, len(t.pending)+len(t.epochMax))
		} else {
			clear(act)
		}
		for id := range t.pending {
			act[id] = struct{}{}
		}
		for id := range t.epochMax {
			act[id] = struct{}{}
		}
		t.active = act
	} else {
		t.active = t.active.union(t.pending)
	}
	// Keep pending's and epochMax's storage too: the next epoch refills
	// them.
	clear(t.pending)
	clear(t.epochMax)
}

func (b *builder) persist(e trace.Event) {
	t := b.thread(e.TID)
	id := b.g.AddNode("", e)
	lo, hi := b.span(e)

	// Deduplicated edge insertion: sources accumulate in a reusable
	// list; in-degrees are small, so a linear scan beats a fresh map
	// per persist. Edges stage in edgeBuf and commit as one exact-size
	// slab slice below.
	b.seen = b.seen[:0]
	b.edgeBuf = b.edgeBuf[:0]
	addEdge := func(from NodeID, class EdgeClass) {
		for _, s := range b.seen {
			if s == from {
				return
			}
		}
		b.seen = append(b.seen, from)
		b.edgeBuf = append(b.edgeBuf, Edge{From: from, Class: class})
	}

	// One edge per distinct source; when a source orders this persist
	// for several reasons, the most specific class wins (atomicity,
	// then conflict, then program order), matching Figure 2's
	// classification. The frontier walk is read-only and visits ranges
	// in ascending address order; tile states are staged in scratch so
	// the conflict phase (which must run after every atomicity edge)
	// doesn't pay a second ordered lookup.
	b.tiles = b.tiles[:0]
	b.blocks.Each(lo, hi, func(_ intervals.Range[memory.Addr], bs blockState) bool {
		// Strong persist atomicity.
		if bs.lastP >= 0 {
			addEdge(bs.lastP, Atomicity)
		}
		b.tiles = append(b.tiles, bs)
		return true
	})
	for _, bs := range b.tiles {
		// Cross-thread (and self) conflict dependences through memory.
		for _, from := range bs.writer {
			addEdge(from, Conflict)
		}
		for _, from := range bs.reader {
			addEdge(from, Conflict)
		}
	}
	// Program-order / barrier dependences. t.active is a map, so sort
	// this segment (tiny; insertion sort, no allocation) to keep edge
	// order deterministic.
	po := len(b.edgeBuf)
	for from := range t.active {
		addEdge(from, ProgramOrder)
	}
	if tail := b.edgeBuf[po:]; len(tail) > 1 {
		for i := 1; i < len(tail); i++ {
			for j := i; j > 0 && tail[j].From < tail[j-1].From; j-- {
				tail[j], tail[j-1] = tail[j-1], tail[j]
			}
		}
	}
	n := b.g.Nodes[id]
	n.In = b.allocEdges(len(b.edgeBuf))
	copy(n.In, b.edgeBuf)

	if b.strict {
		// The new persist subsumes everything it depends on. Reuse the
		// thread's set: nothing aliases it (unions copy elements out).
		if t.active == nil {
			t.active = make(nodeSet, 1)
		} else {
			clear(t.active)
		}
		t.active[id] = struct{}{}
	} else {
		t.epochMax = t.epochMax.add(id)
		// Everything this persist directly depends on is now dominated
		// by it; scrub those nodes from pending rather than adding the
		// block contexts (they would only produce redundant edges).
		for _, from := range b.seen {
			delete(t.pending, from)
		}
	}
	// The persist has edges from every prior dependence of its whole
	// footprint, so it alone is the new dependence frontier: one
	// uniform range entry, regardless of how many blocks the store
	// spanned or how fragmented the space was before.
	b.blocks.Set(lo, hi, blockState{writer: b.single(id), lastP: id})
	b.trackPeak()
}
