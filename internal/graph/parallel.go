package graph

import (
	"slices"
	"sync"

	"repro/internal/core"
	"repro/internal/intervals"
	"repro/internal/memory"
	"repro/internal/trace"
)

// Parallel graph construction.
//
// Build's cost splits into two unequal halves: a stateful walk over the
// trace that evolves the interval dependence frontier (inherently
// serial — every event reads state the previous one wrote), and the
// per-persist edge materialization (dedup scan, class assignment, slab
// copy) that only *reads* frontier values. The frontier stores node
// sets as immutable copy-on-write vecs (see frontier.go), so the walk
// can capture, per persist, references to the exact vecs the serial
// builder would have iterated — the tile list in ascending address
// order plus the thread's program-order frontier — and hand edge
// materialization to worker goroutines. Workers own disjoint nodes and
// read only immutable vecs, so any worker count yields the same graph.
//
// Three invariants of the serial builder make the captured records
// sufficient:
//
//   - frontier vecs are immutable once stored: vecUnion/mergeVecs/single
//     never append to a published slice, so a captured reference is a
//     snapshot;
//   - in non-strict models a thread's active set only changes at
//     barrier/sync/strand events, so the walker can keep it as one
//     sorted vec and share the reference across an epoch's records;
//   - the serial edge order is reproducible from the records: atomicity
//     sources in ascending tile order, then conflict sources per tile
//     (writer before reader, each vec sorted), then the program-order
//     segment ascending — exactly what iterating the captured vecs
//     yields, with the same first-source-wins dedup.
//
// Pending-set pruning (serial: `pending -= seen` at every persist) is
// order-sensitive — a pruned node re-added by a later load must
// survive — so the walker prunes tile sources eagerly and defers the
// active-set portion to the next pending read or write: between a
// persist and the next pending access the set is untouched, so the
// deferred deletion observes the same state the serial builder did,
// while a run of consecutive persists pays the O(active) sweep once.
type wThread struct {
	// active is the program-order frontier as a sorted immutable vec.
	active nodeVec
	// pending holds unbound cross-thread dependences (non-strict only).
	pending nodeSet
	// epochMax collects this epoch's persists; ids are assigned in
	// trace order, so per-thread appends keep it sorted.
	epochMax []NodeID
	// prune defers the active-set deletion from pending (see above).
	prune bool
}

func (t *wThread) flushPrune() {
	if !t.prune {
		return
	}
	t.prune = false
	for _, id := range t.active {
		delete(t.pending, id)
	}
}

// tileRec is one frontier range a persist covered, in ascending
// address order. The vecs are shared with the live frontier and
// immutable.
type tileRec struct {
	lastP  NodeID
	writer nodeVec
	reader nodeVec
}

// persistRec captures everything edge materialization needs for one
// persist: its node id, the thread's program-order frontier at persist
// time, and the [t0,t1) window into the block's tile slab.
type persistRec struct {
	id     NodeID
	active nodeVec
	t0, t1 int32
}

// recBlock batches persist records so channel traffic is amortized.
type recBlock struct {
	recs  []persistRec
	tiles []tileRec
}

const recBlockSize = 256

var recBlockPool = sync.Pool{
	New: func() any {
		return &recBlock{
			recs:  make([]persistRec, 0, recBlockSize),
			tiles: make([]tileRec, 0, 4*recBlockSize),
		}
	},
}

func (b *recBlock) reset() *recBlock {
	b.recs = b.recs[:0]
	b.tiles = b.tiles[:0]
	return b
}

// walker is the serial half of BuildParallel: the same frontier state
// machine as builder.feed, but with thread sets held as sorted vecs
// and edge materialization replaced by record capture.
type walker struct {
	g        *Graph
	p        core.Params
	strict   bool
	barriers bool
	strands  bool
	lbs      bool
	volc     bool
	threads  map[int32]*wThread
	blocks   *intervals.Map[memory.Addr, blockState]

	peakRanges int
	nextID     NodeID
	idSlab     []NodeID
	blk        *recBlock
	out        func(*recBlock)
}

func newWalker(p core.Params, out func(*recBlock)) (*walker, error) {
	b, err := newBuilder(p) // reuse model validation and flag decoding
	if err != nil {
		return nil, err
	}
	return &walker{
		g:        b.g,
		p:        b.p,
		strict:   b.strict,
		barriers: b.barriers,
		strands:  b.strands,
		lbs:      b.lbs,
		volc:     b.volc,
		threads:  make(map[int32]*wThread),
		blocks:   newFrontier(),
		blk:      recBlockPool.Get().(*recBlock).reset(),
		out:      out,
	}, nil
}

func (w *walker) thread(tid int32) *wThread {
	t, ok := w.threads[tid]
	if !ok {
		t = &wThread{}
		w.threads[tid] = t
	}
	return t
}

func (w *walker) span(e trace.Event) (lo, hi memory.Addr) {
	g := w.p.TrackingGranularity
	lo = memory.AlignDown(e.Addr, g)
	hi = memory.AlignDown(e.Addr+memory.Addr(e.Size)-1, g) + memory.Addr(g)
	return lo, hi
}

func (w *walker) trackPeak() {
	if n := w.blocks.Len(); n > w.peakRanges {
		w.peakRanges = n
	}
}

// single mirrors builder.single: a slab-backed immutable singleton vec.
func (w *walker) single(id NodeID) nodeVec {
	if len(w.idSlab) == cap(w.idSlab) {
		w.idSlab = make([]NodeID, 0, 1024)
	}
	w.idSlab = append(w.idSlab, id)
	n := len(w.idSlab)
	return nodeVec(w.idSlab[n-1 : n : n])
}

func (w *walker) feed(e trace.Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	switch e.Kind {
	case trace.Load:
		if !w.volc && !memory.IsPersistent(e.Addr) {
			return nil
		}
		t := w.thread(e.TID)
		if !w.strict {
			t.flushPrune()
		}
		lo, hi := w.span(e)
		w.blocks.Update(lo, hi, func(_ intervals.Range[memory.Addr], bs blockState, ok bool) (blockState, bool) {
			if !ok {
				bs.lastP = -1
			}
			if w.strict {
				t.active = vecUnion(t.active, bs.writer)
			} else {
				t.pending = intoSet(t.pending, bs.writer)
			}
			if w.lbs {
				bs.reader = vecUnion(bs.reader, t.active)
			}
			return bs, ok || len(bs.reader) > 0
		})
		w.trackPeak()
	case trace.Store, trace.RMW:
		if memory.IsPersistent(e.Addr) {
			w.persist(e)
		} else if w.volc {
			t := w.thread(e.TID)
			if !w.strict {
				t.flushPrune()
			}
			lo, hi := w.span(e)
			w.blocks.Update(lo, hi, func(_ intervals.Range[memory.Addr], bs blockState, ok bool) (blockState, bool) {
				if !ok {
					bs.lastP = -1
				}
				if w.strict {
					t.active = vecUnion(vecUnion(t.active, bs.writer), bs.reader)
				} else {
					t.pending = intoSet(intoSet(t.pending, bs.writer), bs.reader)
				}
				bs.writer = vecUnion(vecUnion(bs.writer, bs.reader), t.active)
				bs.reader = nil
				return bs, ok || len(bs.writer) > 0
			})
			w.trackPeak()
		}
	case trace.PersistBarrier:
		if w.barriers {
			w.bindEpoch(w.thread(e.TID))
		}
	case trace.NewStrand:
		if w.strands {
			t := w.thread(e.TID)
			t.active = nil
			t.epochMax = t.epochMax[:0]
			clear(t.pending)
			t.prune = false
		}
	case trace.PersistSync:
		w.bindEpoch(w.thread(e.TID))
	case trace.Malloc, trace.Free, trace.BeginWork, trace.EndWork:
	}
	return nil
}

func (w *walker) bindEpoch(t *wThread) {
	t.flushPrune()
	var sp nodeVec
	if len(t.pending) > 0 {
		sp = make(nodeVec, 0, len(t.pending))
		for id := range t.pending {
			sp = append(sp, id)
		}
		slices.Sort(sp)
	}
	if len(t.epochMax) > 0 {
		t.active = mergeVecs(sp, t.epochMax)
		t.epochMax = t.epochMax[:0]
	} else {
		t.active = vecUnion(t.active, sp)
	}
	clear(t.pending)
}

func (w *walker) persist(e trace.Event) {
	t := w.thread(e.TID)
	id := w.nextID
	w.nextID++
	lo, hi := w.span(e)

	blk := w.blk
	t0 := len(blk.tiles)
	w.blocks.Each(lo, hi, func(_ intervals.Range[memory.Addr], bs blockState) bool {
		blk.tiles = append(blk.tiles, tileRec{lastP: bs.lastP, writer: bs.writer, reader: bs.reader})
		return true
	})
	// Capture the record before the frontier reset below mutates
	// anything; t.active is immutable, so the reference is a snapshot.
	blk.recs = append(blk.recs, persistRec{id: id, active: t.active, t0: int32(t0), t1: int32(len(blk.tiles))})

	if w.strict {
		t.active = w.single(id)
	} else {
		t.epochMax = append(t.epochMax, id)
		// Eager tile-source pruning; the active-set portion is deferred
		// (see wThread.prune).
		for i := t0; i < len(blk.tiles); i++ {
			tl := &blk.tiles[i]
			if tl.lastP >= 0 {
				delete(t.pending, tl.lastP)
			}
			for _, x := range tl.writer {
				delete(t.pending, x)
			}
			for _, x := range tl.reader {
				delete(t.pending, x)
			}
		}
		t.prune = true
	}
	w.blocks.Set(lo, hi, blockState{writer: w.single(id), lastP: id})
	w.trackPeak()

	if len(blk.recs) == cap(blk.recs) {
		w.ship()
	}
}

func (w *walker) ship() {
	if len(w.blk.recs) == 0 {
		return
	}
	w.out(w.blk)
	w.blk = recBlockPool.Get().(*recBlock).reset()
}

func (w *walker) statsOf() BuildStats {
	return BuildStats{
		FrontierRanges: w.blocks.Len(),
		PeakRanges:     w.peakRanges,
		Splits:         w.blocks.Splits,
		Coalesces:      w.blocks.Coalesces,
	}
}

// mat materializes edges from persist records. Each worker owns one;
// workers touch disjoint nodes and share no mutable state.
type mat struct {
	g        *Graph
	seen     []NodeID
	edgeBuf  []Edge
	edgeSlab []Edge
}

func (m *mat) addEdge(from NodeID, class EdgeClass) {
	for _, s := range m.seen {
		if s == from {
			return
		}
	}
	m.seen = append(m.seen, from)
	m.edgeBuf = append(m.edgeBuf, Edge{From: from, Class: class})
}

func (m *mat) allocEdges(n int) []Edge {
	if n == 0 {
		return nil
	}
	if cap(m.edgeSlab)-len(m.edgeSlab) < n {
		c := 4096
		if n > c {
			c = n
		}
		m.edgeSlab = make([]Edge, 0, c)
	}
	s := m.edgeSlab[len(m.edgeSlab) : len(m.edgeSlab)+n : len(m.edgeSlab)+n]
	m.edgeSlab = m.edgeSlab[:len(m.edgeSlab)+n]
	return s
}

// run materializes one block. Edge order per node reproduces the serial
// builder exactly: atomicity sources in ascending tile order, conflict
// sources per tile (writer before reader), then the program-order
// segment — already ascending because rec.active is sorted — with
// first-source-wins dedup across the phases.
func (m *mat) run(blk *recBlock) {
	for ri := range blk.recs {
		rec := &blk.recs[ri]
		m.seen = m.seen[:0]
		m.edgeBuf = m.edgeBuf[:0]
		tiles := blk.tiles[rec.t0:rec.t1]
		for i := range tiles {
			if tiles[i].lastP >= 0 {
				m.addEdge(tiles[i].lastP, Atomicity)
			}
		}
		for i := range tiles {
			for _, x := range tiles[i].writer {
				m.addEdge(x, Conflict)
			}
			for _, x := range tiles[i].reader {
				m.addEdge(x, Conflict)
			}
		}
		for _, x := range rec.active {
			m.addEdge(x, ProgramOrder)
		}
		n := m.g.Nodes[rec.id]
		n.In = m.allocEdges(len(m.edgeBuf))
		copy(n.In, m.edgeBuf)
	}
}

// BuildParallel constructs the same persist-order DAG as Build —
// node-for-node, edge-for-edge, in the same order — using `workers`
// goroutines for edge materialization. workers <= 1 materializes
// inline with no goroutines. The graph and its Stats are identical at
// any worker count; differential tests assert exact equality against
// both Build and the retained reference builder.
func BuildParallel(tr *trace.Trace, p core.Params, workers int) (*Graph, error) {
	var inline *mat
	var ch chan *recBlock
	var wg sync.WaitGroup

	out := func(blk *recBlock) {
		if ch != nil {
			ch <- blk
		} else {
			inline.run(blk)
			recBlockPool.Put(blk)
		}
	}
	w, err := newWalker(p, out)
	if err != nil {
		return nil, err
	}
	// Pre-create every node so g.Nodes is fully formed (and immutable)
	// before any worker reads it: workers index g.Nodes concurrently
	// with the walker, which must therefore not append.
	w.g.Grow(tr.CountPersists())
	for _, c := range tr.Chunks() {
		for i := 0; i < c.Len(); i++ {
			if e := c.Event(i); e.IsPersist() {
				w.g.AddNode("", e)
			}
		}
	}

	if workers > 1 {
		ch = make(chan *recBlock, 2*workers)
		wg.Add(workers - 1)
		for i := 0; i < workers-1; i++ {
			go func() {
				defer wg.Done()
				m := &mat{g: w.g}
				for blk := range ch {
					m.run(blk)
					recBlockPool.Put(blk)
				}
			}()
		}
	} else {
		inline = &mat{g: w.g}
	}
	finish := func() {
		if ch != nil {
			close(ch)
			wg.Wait()
		}
	}

	for _, c := range tr.Chunks() {
		for i := 0; i < c.Len(); i++ {
			if err := w.feed(c.Event(i)); err != nil {
				finish()
				return nil, err
			}
		}
	}
	w.ship()
	recBlockPool.Put(w.blk)
	finish()
	w.g.Stats = w.statsOf()
	return w.g, nil
}
