package graph

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/memory"
	"repro/internal/trace"
)

// This file retains the pre-interval per-block builder verbatim as a
// test-only reference implementation. The production builder keeps its
// dependence frontiers in one ordered interval map (frontier.go); the
// reference keeps a map[BlockID]*refBlock with nodeSet frontiers, the
// way the builder worked before. The differential tests below assert
// the two produce semantically identical graphs — same nodes, same
// deduplicated (From, Class) edge sets, same critical paths, same cut
// spaces — across the full model matrix, random traces, PSO machine
// traces, and coarse tracking granularities.

type refThread struct {
	active   nodeSet
	pending  nodeSet
	epochMax nodeSet
}

type refBlock struct {
	writer nodeSet
	reader nodeSet
	lastP  NodeID // -1 when none
}

type refBuilder struct {
	g        *Graph
	p        core.Params
	strict   bool
	barriers bool
	strands  bool
	lbs      bool
	volc     bool
	threads  map[int32]*refThread
	blocks   map[memory.BlockID]*refBlock
	seen     []NodeID
	touched  []*refBlock
}

func newRefBuilder(p core.Params) (*refBuilder, error) {
	if p.TrackingGranularity == 0 {
		p.TrackingGranularity = memory.WordSize
	}
	if !memory.IsPowerOfTwo(p.TrackingGranularity) {
		return nil, fmt.Errorf("graph: bad tracking granularity %d", p.TrackingGranularity)
	}
	b := &refBuilder{
		g:       &Graph{},
		p:       p,
		threads: make(map[int32]*refThread),
		blocks:  make(map[memory.BlockID]*refBlock),
	}
	switch p.Model {
	case core.Strict:
		b.strict, b.lbs, b.volc = true, true, true
	case core.Epoch:
		b.barriers, b.lbs, b.volc = true, true, true
	case core.EpochTSO:
		b.barriers = true
	case core.Strand:
		b.barriers, b.strands, b.lbs, b.volc = true, true, true, true
	default:
		return nil, fmt.Errorf("graph: unknown model %v", p.Model)
	}
	return b, nil
}

func refBuild(tr *trace.Trace, p core.Params) (*Graph, error) {
	b, err := newRefBuilder(p)
	if err != nil {
		return nil, err
	}
	b.g.Grow(tr.CountPersists())
	for _, c := range tr.Chunks() {
		for i := 0; i < c.Len(); i++ {
			if err := b.feed(c.Event(i)); err != nil {
				return nil, err
			}
		}
	}
	return b.g, nil
}

func (b *refBuilder) thread(tid int32) *refThread {
	t, ok := b.threads[tid]
	if !ok {
		t = &refThread{}
		b.threads[tid] = t
	}
	return t
}

func (b *refBuilder) block(id memory.BlockID) *refBlock {
	bs, ok := b.blocks[id]
	if !ok {
		bs = &refBlock{lastP: -1}
		b.blocks[id] = bs
	}
	return bs
}

func (b *refBuilder) eachBlock(e trace.Event, fn func(*refBlock)) {
	first, last := memory.BlockSpan(e.Addr, int(e.Size), b.p.TrackingGranularity)
	for blk := first; blk <= last; blk++ {
		fn(b.block(blk))
	}
}

func (b *refBuilder) feed(e trace.Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	switch e.Kind {
	case trace.Load:
		if !b.volc && !memory.IsPersistent(e.Addr) {
			return nil
		}
		t := b.thread(e.TID)
		b.eachBlock(e, func(bs *refBlock) {
			if b.strict {
				t.active = t.active.union(bs.writer)
			} else {
				t.pending = t.pending.union(bs.writer)
			}
			if b.lbs {
				bs.reader = bs.reader.union(t.active)
			}
		})
	case trace.Store, trace.RMW:
		if memory.IsPersistent(e.Addr) {
			b.persist(e)
		} else if b.volc {
			t := b.thread(e.TID)
			b.eachBlock(e, func(bs *refBlock) {
				inherit := bs.writer.clone().union(bs.reader)
				if b.strict {
					t.active = t.active.union(inherit)
				} else {
					t.pending = t.pending.union(inherit)
				}
				bs.writer = bs.writer.union(bs.reader).union(t.active)
				bs.reader = nil
			})
		}
	case trace.PersistBarrier:
		if b.barriers {
			b.bindEpoch(b.thread(e.TID))
		}
	case trace.NewStrand:
		if b.strands {
			t := b.thread(e.TID)
			t.active, t.pending, t.epochMax = nil, nil, nil
		}
	case trace.PersistSync:
		b.bindEpoch(b.thread(e.TID))
	case trace.Malloc, trace.Free, trace.BeginWork, trace.EndWork:
	}
	return nil
}

func (b *refBuilder) bindEpoch(t *refThread) {
	if len(t.epochMax) > 0 {
		t.active = t.pending.clone().union(t.epochMax)
	} else {
		t.active = t.active.union(t.pending)
	}
	t.pending = nil
	t.epochMax = nil
}

func (b *refBuilder) persist(e trace.Event) {
	t := b.thread(e.TID)
	id := b.g.AddNode("", e)

	b.seen = b.seen[:0]
	addEdge := func(from NodeID, class EdgeClass) {
		for _, s := range b.seen {
			if s == from {
				return
			}
		}
		b.seen = append(b.seen, from)
		n := b.g.Nodes[id]
		n.In = append(n.In, Edge{From: from, Class: class})
	}

	b.touched = b.touched[:0]
	b.eachBlock(e, func(bs *refBlock) {
		if bs.lastP >= 0 {
			addEdge(bs.lastP, Atomicity)
		}
		b.touched = append(b.touched, bs)
	})
	for _, bs := range b.touched {
		for from := range bs.writer {
			addEdge(from, Conflict)
		}
		for from := range bs.reader {
			addEdge(from, Conflict)
		}
	}
	for from := range t.active {
		addEdge(from, ProgramOrder)
	}

	if b.strict {
		t.active = nodeSet{}.add(id)
	} else {
		t.epochMax = t.epochMax.add(id)
		for _, from := range b.seen {
			delete(t.pending, from)
		}
	}
	for _, bs := range b.touched {
		bs.writer = nodeSet{}.add(id)
		bs.reader = nil
		bs.lastP = id
	}
}

// sortedEdges returns a node's In edges sorted by (From, Class). Both
// builders emit at most one edge per source, so equality of the sorted
// slices is edge-set equality.
func sortedEdges(n *Node) []Edge {
	es := append([]Edge(nil), n.In...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].Class < es[j].Class
	})
	return es
}

// requireSameGraph asserts semantic graph identity: node-for-node equal
// events and equal deduplicated edge sets (order-insensitive — the
// reference builder's map iteration made its edge order random).
func requireSameGraph(t *testing.T, ctx string, got, want *Graph) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d nodes, reference has %d", ctx, got.Len(), want.Len())
	}
	for i := range want.Nodes {
		gn, wn := got.Nodes[i], want.Nodes[i]
		if gn.Event != wn.Event {
			t.Fatalf("%s: node %d event %+v, reference %+v", ctx, i, gn.Event, wn.Event)
		}
		ge, we := sortedEdges(gn), sortedEdges(wn)
		if len(ge) != len(we) {
			t.Fatalf("%s: node %d has %d edges, reference %d\n got: %v\nwant: %v",
				ctx, i, len(ge), len(we), ge, we)
		}
		for j := range we {
			if ge[j] != we[j] {
				t.Fatalf("%s: node %d edge %d = %v, reference %v\n got: %v\nwant: %v",
					ctx, i, j, ge[j], we[j], ge, we)
			}
		}
	}
}

// TestIntervalBuilderMatchesReference is the tentpole differential
// test: on random traces across every model and at both word and
// coarse tracking granularity, the interval-frontier builder and the
// retained per-block reference builder must produce identical graphs,
// critical paths, and sampled cuts.
func TestIntervalBuilderMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 200)
		for _, m := range core.Models {
			for _, gran := range []uint64{0, 32} {
				p := core.Params{Model: m, TrackingGranularity: gran}
				ctx := fmt.Sprintf("seed %d model %v gran %d", seed, m, gran)
				want, err := refBuild(tr, p)
				if err != nil {
					t.Fatal(err)
				}
				got, err := Build(tr, p)
				if err != nil {
					t.Fatal(err)
				}
				requireSameGraph(t, ctx, got, want)
				if gc, wc := got.CriticalPath(), want.CriticalPath(); gc != wc {
					t.Fatalf("%s: critical path %d, reference %d", ctx, gc, wc)
				}
				// Equal edge sets imply equal cut spaces; sample both
				// with one seed as a belt-and-suspenders check (SampleCut
				// is edge-order-insensitive).
				r1 := rand.New(rand.NewSource(seed))
				r2 := rand.New(rand.NewSource(seed))
				for _, keep := range []float64{0.2, 0.8} {
					c1, c2 := got.SampleCut(r1, keep), want.SampleCut(r2, keep)
					for i := range c1.Included {
						if c1.Included[i] != c2.Included[i] {
							t.Fatalf("%s keep=%v: cut diverges at node %d", ctx, keep, i)
						}
					}
					if !want.Valid(c1) || !got.Valid(c2) {
						t.Fatalf("%s keep=%v: cut invalid under the other builder", ctx, keep)
					}
				}
			}
		}
	}
}

// TestIntervalBuilderMatchesReferenceOnPSO repeats the differential
// check on machine-generated traces whose store visibility was
// reordered by the PSO consistency model, including multi-word stores
// crossing block boundaries at coarse granularity.
func TestIntervalBuilderMatchesReferenceOnPSO(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		tr := &trace.Trace{}
		m := exec.NewMachine(exec.Config{Threads: 3, Seed: seed, Sink: tr, Consistency: exec.PSO})
		s := m.SetupThread()
		base := s.MallocPersistent(1024, 64)
		flag := s.MallocVolatile(8, 8)
		m.Run(func(th *exec.Thread) {
			for i := uint64(0); i < 30; i++ {
				th.Store8(base+memory.Addr(th.TID()*256)+memory.Addr((i%4)*8), i)
				if i%5 == 0 {
					th.PersistBarrier()
				}
				if i%7 == 0 {
					th.Fence()
					th.Add8(flag, 1)
				}
			}
		})
		for _, mo := range core.Models {
			for _, gran := range []uint64{0, 32} {
				p := core.Params{Model: mo, TrackingGranularity: gran}
				ctx := fmt.Sprintf("pso seed %d model %v gran %d", seed, mo, gran)
				want, err := refBuild(tr, p)
				if err != nil {
					t.Fatal(err)
				}
				got, err := Build(tr, p)
				if err != nil {
					t.Fatal(err)
				}
				requireSameGraph(t, ctx, got, want)
				if gc, wc := got.CriticalPath(), want.CriticalPath(); gc != wc {
					t.Fatalf("%s: critical path %d, reference %d", ctx, gc, wc)
				}
			}
		}
	}
}

// TestIntervalBuilderCutSpace exhaustively enumerates the consistent
// cuts of both builders' graphs on small traces and asserts the cut
// spaces are identical (count and membership).
func TestIntervalBuilderCutSpace(t *testing.T) {
	for seed := int64(50); seed < 58; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 40)
		for _, m := range core.Models {
			p := core.Params{Model: m}
			want, err := refBuild(tr, p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Build(tr, p)
			if err != nil {
				t.Fatal(err)
			}
			if want.Len() > 18 {
				continue // keep enumeration tractable
			}
			key := func(c Cut) string {
				b := make([]byte, len(c.Included))
				for i, in := range c.Included {
					if in {
						b[i] = '1'
					} else {
						b[i] = '0'
					}
				}
				return string(b)
			}
			wcuts := map[string]bool{}
			want.EnumerateCuts(func(c Cut) bool { wcuts[key(c)] = true; return true })
			n := 0
			got.EnumerateCuts(func(c Cut) bool {
				n++
				if !wcuts[key(c)] {
					t.Fatalf("seed %d model %v: cut %s not in reference space", seed, m, key(c))
				}
				return true
			})
			if n != len(wcuts) {
				t.Fatalf("seed %d model %v: %d cuts, reference %d", seed, m, n, len(wcuts))
			}
		}
	}
}
