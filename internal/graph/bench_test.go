package graph

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/trace"
)

// benchTrace builds a persist-heavy multi-threaded trace with barriers
// and cross-thread conflicts — the shape graph.Build sees from real
// workloads.
func benchTrace(n int) *trace.Trace {
	rng := rand.New(rand.NewSource(3))
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		tid := int32(i % 4)
		switch rng.Intn(8) {
		case 0:
			tr.Emit(trace.Event{TID: tid, Kind: trace.PersistBarrier})
		case 1:
			// Conflicting block shared across threads.
			tr.Emit(trace.Event{TID: tid, Kind: trace.Store, Addr: memory.PersistentBase + memory.Addr(rng.Intn(8)*64), Size: 8, Val: 1})
		default:
			tr.Emit(trace.Event{TID: tid, Kind: trace.Store, Addr: memory.PersistentBase + memory.Addr(rng.Intn(1<<10)*64), Size: 8, Val: 1})
		}
	}
	return tr
}

// BenchmarkGraphBuild measures constraint-DAG construction over the
// slab-allocated node and reused scratch storage, per model, for the
// serial builder and BuildParallel at several worker counts.
func BenchmarkGraphBuild(b *testing.B) {
	tr := benchTrace(20000)
	for _, m := range []core.Model{core.Strict, core.Epoch} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := Build(tr, core.Params{Model: m})
				if err != nil {
					b.Fatal(err)
				}
				if g.Len() == 0 {
					b.Fatal("empty graph")
				}
			}
			b.ReportMetric(float64(tr.Len()), "events/op")
		})
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s-parallel%d", m, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					g, err := BuildParallel(tr, core.Params{Model: m}, workers)
					if err != nil {
						b.Fatal(err)
					}
					if g.Len() == 0 {
						b.Fatal("empty graph")
					}
				}
				b.ReportMetric(float64(tr.Len()), "events/op")
			})
		}
	}
}
