package graph

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/memory"
	"repro/internal/trace"
)

// randomTrace generates a random but valid multi-threaded trace mixing
// persists, volatile traffic, barriers, and strands over a small
// address pool (to provoke conflicts and same-address chains).
func randomTrace(rng *rand.Rand, events int) *trace.Trace {
	tr := &trace.Trace{}
	paddrs := make([]memory.Addr, 6)
	for i := range paddrs {
		paddrs[i] = memory.PersistentBase + memory.Addr(i*8)
	}
	vaddrs := make([]memory.Addr, 3)
	for i := range vaddrs {
		vaddrs[i] = memory.VolatileBase + memory.Addr(i*8)
	}
	threads := 1 + rng.Intn(3)
	for i := 0; i < events; i++ {
		tid := int32(rng.Intn(threads))
		switch rng.Intn(12) {
		case 0:
			tr.Emit(trace.Event{TID: tid, Kind: trace.PersistBarrier})
		case 1:
			tr.Emit(trace.Event{TID: tid, Kind: trace.NewStrand})
		case 2:
			tr.Emit(trace.Event{TID: tid, Kind: trace.PersistSync})
		case 3, 4:
			tr.Emit(trace.Event{TID: tid, Kind: trace.Load, Addr: paddrs[rng.Intn(len(paddrs))], Size: 8})
		case 5:
			tr.Emit(trace.Event{TID: tid, Kind: trace.Load, Addr: vaddrs[rng.Intn(len(vaddrs))], Size: 8})
		case 6:
			tr.Emit(trace.Event{TID: tid, Kind: trace.Store, Addr: vaddrs[rng.Intn(len(vaddrs))], Size: 8, Val: rng.Uint64()})
		case 7:
			tr.Emit(trace.Event{TID: tid, Kind: trace.RMW, Addr: vaddrs[rng.Intn(len(vaddrs))], Size: 8, Val: rng.Uint64()})
		case 8:
			tr.Emit(trace.Event{TID: tid, Kind: trace.RMW, Addr: paddrs[rng.Intn(len(paddrs))], Size: 8, Val: rng.Uint64()})
		default:
			tr.Emit(trace.Event{TID: tid, Kind: trace.Store, Addr: paddrs[rng.Intn(len(paddrs))], Size: 8, Val: rng.Uint64()})
		}
	}
	return tr
}

// TestDifferentialGraphVsSim cross-validates the two independent
// implementations of the persistency models — the streaming scalar
// simulator (internal/core) and the explicit DAG builder — on random
// traces: with coalescing disabled their critical paths must agree
// exactly, for every model.
func TestDifferentialGraphVsSim(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 150)
		for _, m := range core.Models {
			r, err := core.Simulate(tr, core.Params{Model: m, NoCoalescing: true})
			if err != nil {
				t.Fatal(err)
			}
			g, err := Build(tr, core.Params{Model: m})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := g.CriticalPath(), r.CriticalPath; got != want {
				t.Errorf("seed %d model %v: graph CP %d != sim CP %d", seed, m, got, want)
			}
		}
	}
}

// TestDifferentialTrackingGranularity repeats the cross-validation at a
// coarse tracking granularity (false-sharing paths).
func TestDifferentialTrackingGranularity(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 120)
		for _, m := range core.Models {
			p := core.Params{Model: m, NoCoalescing: true, TrackingGranularity: 32}
			r, err := core.Simulate(tr, p)
			if err != nil {
				t.Fatal(err)
			}
			g, err := Build(tr, core.Params{Model: m, TrackingGranularity: 32})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := g.CriticalPath(), r.CriticalPath; got != want {
				t.Errorf("seed %d model %v @32B: graph CP %d != sim CP %d", seed, m, got, want)
			}
		}
	}
}

// TestCoalescingNeverLengthensPath: on random traces, enabling
// coalescing must never increase the critical path, and the unbounded
// window must be at least as good as any finite window.
func TestCoalescingNeverLengthensPath(t *testing.T) {
	for seed := int64(200); seed < 215; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 150)
		for _, m := range core.Models {
			off, err := core.Simulate(tr, core.Params{Model: m, NoCoalescing: true})
			if err != nil {
				t.Fatal(err)
			}
			on, err := core.Simulate(tr, core.Params{Model: m})
			if err != nil {
				t.Fatal(err)
			}
			win, err := core.Simulate(tr, core.Params{Model: m, CoalesceWindow: 8})
			if err != nil {
				t.Fatal(err)
			}
			if on.CriticalPath > off.CriticalPath {
				t.Errorf("seed %d %v: coalescing lengthened path %d > %d", seed, m, on.CriticalPath, off.CriticalPath)
			}
			if on.CriticalPath > win.CriticalPath {
				t.Errorf("seed %d %v: unbounded window worse than finite: %d > %d", seed, m, on.CriticalPath, win.CriticalPath)
			}
			if win.CriticalPath > off.CriticalPath {
				t.Errorf("seed %d %v: windowed coalescing worse than none: %d > %d", seed, m, win.CriticalPath, off.CriticalPath)
			}
		}
	}
}

// TestDifferentialOnPSOTraces repeats the cross-validation on traces
// whose store visibility was reordered by the PSO machine: the
// downstream analyses are consistency-model-agnostic (they consume any
// visibility order), so the two implementations must still agree.
func TestDifferentialOnPSOTraces(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		tr := &trace.Trace{}
		m := exec.NewMachine(exec.Config{Threads: 3, Seed: seed, Sink: tr, Consistency: exec.PSO})
		s := m.SetupThread()
		base := s.MallocPersistent(1024, 64)
		flag := s.MallocVolatile(8, 8)
		m.Run(func(th *exec.Thread) {
			for i := uint64(0); i < 25; i++ {
				th.Store8(base+memory.Addr(th.TID()*256)+memory.Addr((i%4)*8), i)
				if i%5 == 0 {
					th.PersistBarrier()
				}
				if i%7 == 0 {
					th.Fence()
					th.Add8(flag, 1)
				}
			}
		})
		for _, mo := range core.Models {
			r, err := core.Simulate(tr, core.Params{Model: mo, NoCoalescing: true})
			if err != nil {
				t.Fatal(err)
			}
			g, err := Build(tr, core.Params{Model: mo})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := g.CriticalPath(), r.CriticalPath; got != want {
				t.Errorf("seed %d model %v: graph %d != sim %d", seed, mo, got, want)
			}
		}
	}
}

// TestModelRelaxationOnRandomTraces: per-model constraint sets are
// ordered strict ⊇ epoch ⊇ strand on annotated traces, so critical
// paths must satisfy strand ≤ epoch ≤ strict and epoch-tso ≤ epoch.
func TestModelRelaxationOnRandomTraces(t *testing.T) {
	cp := func(tr *trace.Trace, m core.Model) int64 {
		r, err := core.Simulate(tr, core.Params{Model: m, NoCoalescing: true})
		if err != nil {
			t.Fatal(err)
		}
		return r.CriticalPath
	}
	for seed := int64(300); seed < 330; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 150)
		strict := cp(tr, core.Strict)
		epoch := cp(tr, core.Epoch)
		tso := cp(tr, core.EpochTSO)
		strand := cp(tr, core.Strand)
		if !(strand <= epoch && epoch <= strict && tso <= epoch) {
			t.Errorf("seed %d: relaxation violated: strict %d epoch %d tso %d strand %d",
				seed, strict, epoch, tso, strand)
		}
	}
}
