package graph

import (
	"repro/internal/core"
	"repro/internal/trace"
)

// BarrierInfo describes the effect one persistency annotation event had
// on the constraint graph under the model it was built for. It is the
// input to the persistency checker's redundant-barrier lint: an
// annotation that binds nothing changes no dependence frontier, so
// removing it leaves the constraint graph's edge set identical — the
// barrier is pure overhead under that model.
type BarrierInfo struct {
	// Seq is the annotation event's position in the SC order.
	Seq uint64
	// TID is the issuing thread.
	TID int32
	// Kind is the annotation kind (PersistBarrier, NewStrand,
	// PersistSync).
	Kind trace.Kind
	// Epoch is the thread's epoch index after this annotation (counted
	// over all annotation kinds, matching core.PersistRecord.Epoch).
	Epoch int64
	// Redundant reports that the annotation changed no builder state:
	// for a barrier, the thread had no unbound persists and no imported
	// dependences outside its active frontier; for NewStrand, the thread
	// had no dependence state to clear. Models that ignore the
	// annotation kind entirely (e.g. barriers under strict persistency)
	// make it trivially redundant.
	Redundant bool
}

// BuildWithBarriers is Build plus a per-annotation effect report, in
// trace order. The graph is identical to Build's.
func BuildWithBarriers(tr *trace.Trace, p core.Params) (*Graph, []BarrierInfo, error) {
	b, err := newBuilder(p)
	if err != nil {
		return nil, nil, err
	}
	b.g.Grow(tr.CountPersists())
	var infos []BarrierInfo
	epochs := make(map[int32]int64)
	for _, c := range tr.Chunks() {
		for i := 0; i < c.Len(); i++ {
			e := c.Event(i)
			if e.Kind.IsAnnotation() {
				epochs[e.TID]++
				infos = append(infos, BarrierInfo{
					Seq:       e.Seq,
					TID:       e.TID,
					Kind:      e.Kind,
					Epoch:     epochs[e.TID],
					Redundant: b.annotationRedundant(e),
				})
			}
			if err := b.feed(e); err != nil {
				return nil, nil, err
			}
		}
	}
	return b.g, infos, nil
}

// annotationRedundant reports whether feeding e would change no builder
// state. It must be called immediately before feed(e).
func (b *builder) annotationRedundant(e trace.Event) bool {
	t := b.threads[e.TID]
	switch e.Kind {
	case trace.PersistBarrier:
		if !b.barriers {
			// The model ignores barriers (strict persistency).
			return true
		}
	case trace.NewStrand:
		if !b.strands {
			return true
		}
		// Clearing is a no-op only when there is nothing to clear.
		return t == nil || (len(t.active) == 0 && len(t.pending) == 0 && len(t.epochMax) == 0)
	case trace.PersistSync:
		// PersistSync binds under every model, like a barrier.
	}
	// A barrier/sync binds pending and epochMax into active. It is a
	// no-op iff the thread holds no unbound persists (epochMax empty)
	// and every imported dependence is already active. (When epochMax is
	// non-empty the frontier is rebuilt, which future persists observe.)
	if t == nil || len(t.epochMax) > 0 {
		return t == nil
	}
	for id := range t.pending {
		if _, ok := t.active[id]; !ok {
			return false
		}
	}
	return true
}
