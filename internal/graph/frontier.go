package graph

import (
	"repro/internal/intervals"
	"repro/internal/memory"
)

// Interval-keyed dependence frontiers.
//
// The builder's per-address state — which nodes last wrote/read each
// tracking-granularity block, and which persist last targeted it — is
// kept in one ordered interval map over byte addresses instead of a
// map[BlockID]*gBlock. A store spanning N blocks updates one range
// entry; a persist stamps its whole footprint with a single uniform
// frontier value that coalesces with nothing-or-everything; and
// untouched address space (the overwhelming majority of a
// gigabyte-scale heap) is never materialized at all. Range boundaries
// are always multiples of the tracking granularity, so block-uniform
// semantics are preserved exactly: an interval can only split at block
// edges.
//
// Frontier node sets are stored as nodeVec — sorted, immutable,
// copy-on-write slices. Sharing is safe because no operation mutates a
// published vec in place; singletons (the dominant case: a block just
// persisted) are carved from a chunked slab so the per-persist
// frontier reset allocates nothing in steady state.

// nodeVec is a sorted set of node ids. The empty vec is nil. Vecs are
// immutable once stored in a frontier: operations return new (or
// shared) slices, never append in place.
type nodeVec []NodeID

// has reports membership (linear scan: frontiers are small).
func (v nodeVec) has(id NodeID) bool {
	for _, x := range v {
		if x == id {
			return true
		}
		if x > id {
			return false
		}
	}
	return false
}

// vecEq reports set equality. Shared backing is the fast path: a
// coalescing check between two halves of a split range compares the
// same slice header.
func vecEq(a, b nodeVec) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true
	}
	if &a[0] == &b[0] {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// blockState is the per-range dependence frontier: the nodes whose
// persists/reads future persists of this range must order after.
type blockState struct {
	writer nodeVec
	reader nodeVec
	lastP  NodeID // last persist targeting the range; -1 when none
}

// blockEq is the interval map's coalescing predicate: adjacent ranges
// whose frontiers are identical merge into one entry.
func blockEq(a, b blockState) bool {
	return a.lastP == b.lastP && vecEq(a.writer, b.writer) && vecEq(a.reader, b.reader)
}

// single returns a slab-backed immutable singleton vec. The full-slice
// expression caps the result so a stray append could never clobber the
// slab.
func (b *builder) single(id NodeID) nodeVec {
	if len(b.idSlab) == cap(b.idSlab) {
		b.idSlab = make([]NodeID, 0, 1024)
	}
	b.idSlab = append(b.idSlab, id)
	n := len(b.idSlab)
	return nodeVec(b.idSlab[n-1 : n : n])
}

// allocEdges carves an exact-size In slice from the chunked edge slab.
// Later AddEdge calls on the node fall back to ordinary append (the
// slice is at capacity), copying out of the slab safely.
func (b *builder) allocEdges(n int) []Edge {
	if n == 0 {
		return nil
	}
	if cap(b.edgeSlab)-len(b.edgeSlab) < n {
		c := 4096
		if n > c {
			c = n
		}
		b.edgeSlab = make([]Edge, 0, c)
	}
	s := b.edgeSlab[len(b.edgeSlab) : len(b.edgeSlab)+n : len(b.edgeSlab)+n]
	b.edgeSlab = b.edgeSlab[:len(b.edgeSlab)+n]
	return s
}

// intoSet inserts every element of v into s in place, creating the map
// on first use.
func intoSet(s nodeSet, v nodeVec) nodeSet {
	if len(v) == 0 {
		return s
	}
	if s == nil {
		s = make(nodeSet, len(v))
	}
	for _, id := range v {
		s[id] = struct{}{}
	}
	return s
}

// vecAddSet returns v ∪ s, sharing v when s adds nothing.
func (b *builder) vecAddSet(v nodeVec, s nodeSet) nodeVec {
	if len(s) == 0 {
		return v
	}
	b.tmp = b.tmp[:0]
	for id := range s {
		if !v.has(id) {
			b.tmp = append(b.tmp, id)
		}
	}
	if len(b.tmp) == 0 {
		return v
	}
	// Insertion-sort the additions (tiny), then merge.
	for i := 1; i < len(b.tmp); i++ {
		for j := i; j > 0 && b.tmp[j] < b.tmp[j-1]; j-- {
			b.tmp[j], b.tmp[j-1] = b.tmp[j-1], b.tmp[j]
		}
	}
	return mergeVecs(v, b.tmp)
}

// vecUnion returns a ∪ b, sharing an input when it already contains
// the other.
func vecUnion(a, b nodeVec) nodeVec {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	missing := 0
	for _, id := range b {
		if !a.has(id) {
			missing++
		}
	}
	if missing == 0 {
		return a
	}
	return mergeVecs(a, b)
}

// mergeVecs merges two sorted id slices into a fresh sorted set.
func mergeVecs(a, b nodeVec) nodeVec {
	out := make(nodeVec, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// BuildStats summarizes the interval frontier's shape after a trace
// build — the stats the CLIs report alongside graph sizes.
type BuildStats struct {
	// FrontierRanges is the number of live interval entries at the end
	// of the build; PeakRanges the high-water mark. Both are bounded by
	// touched blocks, not address-space size.
	FrontierRanges int
	PeakRanges     int
	// Splits and Coalesces count interval boundary cuts and
	// equal-frontier merges over the whole build.
	Splits    uint64
	Coalesces uint64
}

// statsOf snapshots the frontier-shape stats from the interval map.
func (b *builder) statsOf() BuildStats {
	return BuildStats{
		FrontierRanges: b.blocks.Len(),
		PeakRanges:     b.peakRanges,
		Splits:         b.blocks.Splits,
		Coalesces:      b.blocks.Coalesces,
	}
}

// newFrontier constructs the interval map with frontier coalescing.
func newFrontier() *intervals.Map[memory.Addr, blockState] {
	return intervals.NewMap[memory.Addr, blockState](blockEq)
}
