package graph

import (
	"math/rand"

	"repro/internal/memory"
)

// A Cut is a downward-closed set of persist nodes: exactly the subsets
// of persists a failure may expose, under the model that produced the
// graph. Included[i] reports whether node i persisted before the crash.
type Cut struct {
	Included []bool
}

// Full returns the cut containing every node (no failure).
func (g *Graph) Full() Cut {
	inc := make([]bool, len(g.Nodes))
	for i := range inc {
		inc[i] = true
	}
	return Cut{Included: inc}
}

// Empty returns the cut containing no nodes (failure before any
// persist).
func (g *Graph) Empty() Cut {
	return Cut{Included: make([]bool, len(g.Nodes))}
}

// Valid reports whether the cut is downward-closed: every dependence of
// an included node is included.
func (g *Graph) Valid(c Cut) bool {
	if len(c.Included) != len(g.Nodes) {
		return false
	}
	for i, n := range g.Nodes {
		if !c.Included[i] {
			continue
		}
		for _, e := range n.In {
			if !c.Included[e.From] {
				return false
			}
		}
	}
	return true
}

// Size returns the number of included nodes.
func (c Cut) Size() int {
	n := 0
	for _, in := range c.Included {
		if in {
			n++
		}
	}
	return n
}

// SampleCut draws a random consistent cut. Nodes are visited in
// topological (trace) order; a node whose dependences are all included
// is included with probability keep. keep near 1 biases toward
// late crashes, keep near 0 toward early ones; the observer sweeps keep
// to cover both regimes. The graph must be acyclic with edges pointing
// to earlier nodes (true for Build output).
func (g *Graph) SampleCut(rng *rand.Rand, keep float64) Cut {
	c := Cut{Included: make([]bool, len(g.Nodes))}
	for i, n := range g.Nodes {
		ok := true
		for _, e := range n.In {
			if !c.Included[e.From] {
				ok = false
				break
			}
		}
		if ok && rng.Float64() < keep {
			c.Included[i] = true
		}
	}
	return c
}

// PrefixCut returns the cut containing the first k nodes in trace
// order — the crash state of a device whose persist queue drains
// in order. It is always downward-closed because trace-built graphs'
// edges point backward.
func (g *Graph) PrefixCut(k int) Cut {
	c := Cut{Included: make([]bool, len(g.Nodes))}
	if k > len(g.Nodes) {
		k = len(g.Nodes)
	}
	for i := 0; i < k; i++ {
		c.Included[i] = true
	}
	return c
}

// DropCut returns the cut containing every node except `victim` and
// its descendants (nodes ordered after it). It is the adversarial
// crash for a single persist: the latest possible failure point at
// which victim still has not persisted. The result is downward-closed:
// excluded nodes are exactly the up-closure of victim, so no included
// node depends on an excluded one.
func (g *Graph) DropCut(victim NodeID) Cut {
	c := g.Full()
	c.Included[victim] = false
	// Propagate forward: any node with an excluded dependence is
	// excluded. Nodes are in topological order for trace-built graphs.
	for i := int(victim) + 1; i < len(g.Nodes); i++ {
		for _, e := range g.Nodes[i].In {
			if !c.Included[e.From] {
				c.Included[i] = false
				break
			}
		}
	}
	return c
}

// EnumerateCuts visits every consistent cut of a small graph (the count
// is exponential; callers bound graph size). fn returning false stops
// the enumeration early. Enumeration proceeds over nodes in index
// order, choosing include/exclude; excluding a node forces exclusion of
// its dependents, which the downward-closure check handles naturally.
func (g *Graph) EnumerateCuts(fn func(Cut) bool) {
	inc := make([]bool, len(g.Nodes))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(g.Nodes) {
			snapshot := make([]bool, len(inc))
			copy(snapshot, inc)
			return fn(Cut{Included: snapshot})
		}
		// Option 1: exclude node i.
		inc[i] = false
		if !rec(i + 1) {
			return false
		}
		// Option 2: include node i if its dependences are included.
		for _, e := range g.Nodes[i].In {
			if !inc[e.From] {
				return true
			}
		}
		inc[i] = true
		ok := rec(i + 1)
		inc[i] = false
		return ok
	}
	rec(0)
}

// CountCuts returns the number of consistent cuts (for tests; only
// feasible on small graphs).
func (g *Graph) CountCuts() int {
	n := 0
	g.EnumerateCuts(func(Cut) bool { n++; return true })
	return n
}

// Materialize applies the writes of the cut's persists, in trace order,
// to an empty NVRAM image: the state the recovery observer reads after
// the crash. Manual nodes (no event) are skipped.
func (g *Graph) Materialize(c Cut) *memory.Image {
	im := memory.NewImage()
	for i, n := range g.Nodes {
		if !c.Included[i] || !n.Event.Kind.IsAccess() {
			continue
		}
		var b [memory.WordSize]byte
		for j := 0; j < int(n.Event.Size); j++ {
			b[j] = byte(n.Event.Val >> (8 * j))
		}
		im.WriteBytes(n.Event.Addr, b[:n.Event.Size])
	}
	return im
}
