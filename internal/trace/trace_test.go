package trace

import (
	"strings"
	"testing"

	"repro/internal/memory"
)

func pa(off uint64) memory.Addr { return memory.PersistentBase + memory.Addr(off) }
func va(off uint64) memory.Addr { return memory.VolatileBase + memory.Addr(off) }

func TestKindPredicates(t *testing.T) {
	cases := []struct {
		k                  Kind
		access, load, stor bool
	}{
		{Load, true, true, false},
		{Store, true, false, true},
		{RMW, true, true, true},
		{PersistBarrier, false, false, false},
		{NewStrand, false, false, false},
		{Malloc, false, false, false},
	}
	for _, c := range cases {
		if c.k.IsAccess() != c.access || c.k.HasLoadSemantics() != c.load || c.k.HasStoreSemantics() != c.stor {
			t.Errorf("%v predicates wrong", c.k)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := Load; k <= EndWork; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "invalid") {
			t.Errorf("kind %d has bad string %q", k, s)
		}
	}
	if !strings.HasPrefix(Kind(200).String(), "invalid") {
		t.Error("unknown kind should stringify as invalid")
	}
}

func TestIsPersist(t *testing.T) {
	if !(Event{Kind: Store, Addr: pa(0), Size: 8}).IsPersist() {
		t.Error("persistent store should be a persist")
	}
	if !(Event{Kind: RMW, Addr: pa(8), Size: 8}).IsPersist() {
		t.Error("persistent RMW should be a persist")
	}
	if (Event{Kind: Store, Addr: va(0), Size: 8}).IsPersist() {
		t.Error("volatile store is not a persist")
	}
	if (Event{Kind: Load, Addr: pa(0), Size: 8}).IsPersist() {
		t.Error("load is not a persist")
	}
}

func TestEventValidate(t *testing.T) {
	good := []Event{
		{Kind: Load, Addr: pa(0), Size: 8},
		{Kind: Store, Addr: va(8), Size: 1},
		{Kind: PersistBarrier},
		{Kind: Malloc, Addr: pa(0), Val: 64},
		{Kind: BeginWork, Val: 3},
	}
	for _, e := range good {
		if err := e.Validate(); err != nil {
			t.Errorf("%v should validate: %v", e, err)
		}
	}
	bad := []Event{
		{Kind: Load, Addr: pa(0), Size: 0},
		{Kind: Load, Addr: pa(0), Size: 9},
		{Kind: Store, Addr: 0, Size: 8},
		{Kind: Malloc, Addr: 12, Val: 64},
		{Kind: Invalid},
		{Kind: PersistBarrier, TID: -1},
	}
	for _, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("%v should not validate", e)
		}
	}
}

func TestTraceEmitAssignsSeq(t *testing.T) {
	tr := &Trace{}
	tr.Emit(Event{Kind: Load, Addr: pa(0), Size: 8, Seq: 999})
	tr.Emit(Event{Kind: Store, Addr: pa(8), Size: 8})
	if tr.At(0).Seq != 0 || tr.At(1).Seq != 1 {
		t.Fatalf("Seq not assigned: %v, %v", tr.At(0), tr.At(1))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceThreadsAndFilters(t *testing.T) {
	tr := &Trace{}
	tr.Emit(Event{Kind: Store, TID: 0, Addr: pa(0), Size: 8})
	tr.Emit(Event{Kind: Store, TID: 2, Addr: va(0), Size: 8})
	tr.Emit(Event{Kind: Load, TID: 1, Addr: pa(0), Size: 8})
	if tr.Threads() != 3 {
		t.Fatalf("Threads = %d", tr.Threads())
	}
	if got := len(tr.Persists()); got != 1 {
		t.Fatalf("Persists = %d", got)
	}
	loads := tr.Filter(func(e Event) bool { return e.Kind == Load })
	if len(loads) != 1 || loads[0].TID != 1 {
		t.Fatalf("Filter wrong: %v", loads)
	}
}

func TestTeeAndDiscard(t *testing.T) {
	a, b := &Trace{}, &Trace{}
	tee := Tee{a, b, Discard}
	tee.Emit(Event{Kind: PersistBarrier})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatal("Tee did not forward to all sinks")
	}
}

func TestSplitByThread(t *testing.T) {
	tr := &Trace{}
	tr.Emit(Event{Kind: Store, TID: 0, Addr: pa(0), Size: 8})
	tr.Emit(Event{Kind: Store, TID: 1, Addr: pa(8), Size: 8})
	tr.Emit(Event{Kind: Load, TID: 0, Addr: pa(0), Size: 8})
	split := tr.SplitByThread()
	if len(split) != 2 || len(split[0]) != 2 || len(split[1]) != 1 {
		t.Fatalf("split = %v", split)
	}
	// Program order and global seq both preserved.
	if split[0][0].Seq != 0 || split[0][1].Seq != 2 {
		t.Fatalf("thread 0 seqs: %v", split[0])
	}
}

func TestSlice(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Kind: PersistBarrier, TID: int32(i)})
	}
	s := tr.Slice(1, 3)
	if s.Len() != 2 || s.At(0).TID != 1 || s.At(0).Seq != 0 {
		t.Fatalf("slice = %v, %v", s.At(0), s.At(1))
	}
	if tr.Slice(4, 99).Len() != 1 {
		t.Fatal("clamping to end failed")
	}
	if tr.Slice(9, 2).Len() != 0 {
		t.Fatal("inverted bounds should be empty")
	}
}

func TestEventString(t *testing.T) {
	samples := []Event{
		{Kind: Store, Addr: pa(0), Size: 8, Val: 7},
		{Kind: Malloc, Addr: pa(0), Val: 64},
		{Kind: Free, Addr: pa(0)},
		{Kind: BeginWork, Val: 12},
		{Kind: NewStrand},
	}
	for _, e := range samples {
		if e.String() == "" {
			t.Errorf("empty String for %v", e.Kind)
		}
	}
}
