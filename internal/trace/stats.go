package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/memory"
)

// Summary aggregates per-kind and per-space event counts for a trace;
// cmd/tracedump prints it.
type Summary struct {
	Total          int
	ByKind         map[Kind]int
	Loads          int // data loads incl. RMW reads
	Stores         int // data stores incl. RMW writes
	Persists       int // stores to the persistent space
	VolatileStores int
	Threads        int
	Barriers       int
	Strands        int
	WorkItems      int // completed BeginWork/EndWork pairs
}

// Summarize computes a Summary over the trace.
func Summarize(t *Trace) Summary {
	s := Summary{ByKind: make(map[Kind]int), Threads: t.Threads(), Total: t.Len()}
	open := make(map[uint64]bool)
	for e := range t.All() {
		s.ByKind[e.Kind]++
		if e.Kind.HasLoadSemantics() {
			s.Loads++
		}
		if e.Kind.HasStoreSemantics() {
			s.Stores++
			if memory.IsPersistent(e.Addr) {
				s.Persists++
			} else {
				s.VolatileStores++
			}
		}
		switch e.Kind {
		case PersistBarrier:
			s.Barriers++
		case NewStrand:
			s.Strands++
		case BeginWork:
			open[e.Val] = true
		case EndWork:
			if open[e.Val] {
				delete(open, e.Val)
				s.WorkItems++
			}
		}
	}
	return s
}

// String renders the summary as an aligned table.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events           %10d\n", s.Total)
	fmt.Fprintf(&b, "threads          %10d\n", s.Threads)
	fmt.Fprintf(&b, "loads            %10d\n", s.Loads)
	fmt.Fprintf(&b, "stores           %10d\n", s.Stores)
	fmt.Fprintf(&b, "  persists       %10d\n", s.Persists)
	fmt.Fprintf(&b, "  volatile       %10d\n", s.VolatileStores)
	fmt.Fprintf(&b, "persist barriers %10d\n", s.Barriers)
	fmt.Fprintf(&b, "new strands      %10d\n", s.Strands)
	fmt.Fprintf(&b, "work items       %10d\n", s.WorkItems)
	kinds := make([]Kind, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(&b, "kind %-16s %8d\n", k.String(), s.ByKind[k])
	}
	return b.String()
}

// WorkDistances computes, for each completed work item after the first
// on its thread, how many work items completed globally since the same
// thread last completed one. The paper uses this "insert distance"
// distribution to validate that tracing does not perturb thread
// interleaving (§7). Returned values are ≥ 1; a single-threaded trace
// yields all 1s.
func WorkDistances(t *Trace) []int {
	var distances []int
	completed := 0
	lastByThread := make(map[int32]int) // thread -> global completion index of its last work item
	for e := range t.All() {
		if e.Kind != EndWork {
			continue
		}
		completed++
		if prev, ok := lastByThread[e.TID]; ok {
			distances = append(distances, completed-prev)
		}
		lastByThread[e.TID] = completed
	}
	return distances
}
