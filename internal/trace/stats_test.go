package trace

import (
	"strings"
	"testing"
)

func buildSampleTrace() *Trace {
	tr := &Trace{}
	tr.Emit(Event{Kind: Malloc, TID: 0, Addr: pa(0), Val: 128})
	tr.Emit(Event{Kind: BeginWork, TID: 0, Val: 1})
	tr.Emit(Event{Kind: Store, TID: 0, Addr: pa(0), Size: 8, Val: 1})
	tr.Emit(Event{Kind: PersistBarrier, TID: 0})
	tr.Emit(Event{Kind: Store, TID: 0, Addr: va(0), Size: 8, Val: 2})
	tr.Emit(Event{Kind: EndWork, TID: 0, Val: 1})
	tr.Emit(Event{Kind: BeginWork, TID: 1, Val: 2})
	tr.Emit(Event{Kind: RMW, TID: 1, Addr: pa(8), Size: 8, Val: 3})
	tr.Emit(Event{Kind: Load, TID: 1, Addr: pa(0), Size: 8})
	tr.Emit(Event{Kind: NewStrand, TID: 1})
	tr.Emit(Event{Kind: EndWork, TID: 1, Val: 2})
	return tr
}

func TestSummarize(t *testing.T) {
	s := Summarize(buildSampleTrace())
	if s.Total != 11 {
		t.Errorf("Total = %d", s.Total)
	}
	if s.Threads != 2 {
		t.Errorf("Threads = %d", s.Threads)
	}
	if s.Loads != 2 { // Load + RMW
		t.Errorf("Loads = %d", s.Loads)
	}
	if s.Stores != 3 { // 2 stores + RMW
		t.Errorf("Stores = %d", s.Stores)
	}
	if s.Persists != 2 { // persistent store + persistent RMW
		t.Errorf("Persists = %d", s.Persists)
	}
	if s.VolatileStores != 1 {
		t.Errorf("VolatileStores = %d", s.VolatileStores)
	}
	if s.Barriers != 1 || s.Strands != 1 {
		t.Errorf("Barriers=%d Strands=%d", s.Barriers, s.Strands)
	}
	if s.WorkItems != 2 {
		t.Errorf("WorkItems = %d", s.WorkItems)
	}
}

func TestSummaryString(t *testing.T) {
	out := Summarize(buildSampleTrace()).String()
	for _, want := range []string{"events", "persists", "work items", "kind store"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestWorkDistancesSingleThread(t *testing.T) {
	tr := &Trace{}
	for i := uint64(1); i <= 5; i++ {
		tr.Emit(Event{Kind: BeginWork, TID: 0, Val: i})
		tr.Emit(Event{Kind: EndWork, TID: 0, Val: i})
	}
	d := WorkDistances(tr)
	if len(d) != 4 {
		t.Fatalf("want 4 distances, got %d", len(d))
	}
	for _, v := range d {
		if v != 1 {
			t.Fatalf("single-thread distances must be 1, got %v", d)
		}
	}
}

func TestWorkDistancesInterleaved(t *testing.T) {
	tr := &Trace{}
	// Completion order: t0, t1, t0, t1 -> each repeat is distance 2.
	tr.Emit(Event{Kind: EndWork, TID: 0, Val: 1})
	tr.Emit(Event{Kind: EndWork, TID: 1, Val: 2})
	tr.Emit(Event{Kind: EndWork, TID: 0, Val: 3})
	tr.Emit(Event{Kind: EndWork, TID: 1, Val: 4})
	d := WorkDistances(tr)
	if len(d) != 2 || d[0] != 2 || d[1] != 2 {
		t.Fatalf("want [2 2], got %v", d)
	}
}
