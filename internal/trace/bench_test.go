package trace

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/memory"
)

func BenchmarkCodecEncode(b *testing.B) {
	e := Event{TID: 1, Kind: Store, Addr: memory.PersistentBase, Size: 8, Val: 42}
	w := NewWriter(io.Discard)
	b.SetBytes(recordSize)
	for i := 0; i < b.N; i++ {
		w.Emit(e)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkCodecDecode(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10000; i++ {
		w.Emit(Event{TID: 1, Kind: Store, Addr: memory.PersistentBase, Size: 8, Val: uint64(i)})
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(recordSize)
	b.ResetTimer()
	n := 0
	for n < b.N {
		r := NewReader(bytes.NewReader(data))
		for {
			if _, err := r.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
			n++
			if n >= b.N {
				break
			}
		}
	}
}

func BenchmarkTraceEmit(b *testing.B) {
	tr := &Trace{}
	e := Event{TID: 0, Kind: Store, Addr: memory.PersistentBase, Size: 8}
	for i := 0; i < b.N; i++ {
		tr.Emit(e)
	}
}

// BenchmarkTraceReplay measures a full walk over chunked storage — the
// loop every simulator replay pays per model (or once, under MultiSim).
func BenchmarkTraceReplay(b *testing.B) {
	tr := &Trace{}
	for i := 0; i < 100000; i++ {
		tr.Emit(Event{TID: int32(i % 4), Kind: Store, Addr: memory.PersistentBase + memory.Addr(i%4096*8), Size: 8, Val: uint64(i)})
	}
	b.SetBytes(int64(tr.Len()) * 30)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		for _, c := range tr.Chunks() {
			for _, v := range c.Vals() {
				sink += v
			}
		}
	}
	_ = sink
	b.ReportMetric(float64(tr.Len()), "events/op")
}

// TestTraceReplayAllocs pins replay allocation behavior: walking a
// trace via Chunks must not allocate at all, and the All iterator may
// only pay its fixed closure setup.
func TestTraceReplayAllocs(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 20000; i++ {
		tr.Emit(Event{TID: int32(i % 2), Kind: Store, Addr: memory.PersistentBase + memory.Addr(i%512*8), Size: 8})
	}
	var sink uint64
	if allocs := testing.AllocsPerRun(10, func() {
		for _, c := range tr.Chunks() {
			for _, v := range c.Vals() {
				sink += v
			}
		}
	}); allocs != 0 {
		t.Errorf("Chunks walk allocated %.1f times, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		for e := range tr.All() {
			sink += e.Val
		}
	}); allocs > 4 {
		t.Errorf("All walk allocated %.1f times, want <= 4 (fixed iterator setup)", allocs)
	}
	_ = sink
}

// TestTraceEmitAllocs pins the amortized emit cost: with the chunk pool
// warm, building and releasing a trace costs a bounded number of
// allocations regardless of event count (chunks are recycled).
func TestTraceEmitAllocs(t *testing.T) {
	const events = 3 * chunkCap
	// Warm the chunk pool.
	warm := &Trace{}
	for i := 0; i < events; i++ {
		warm.Emit(Event{Kind: Store, Addr: memory.PersistentBase, Size: 8})
	}
	warm.Release()
	allocs := testing.AllocsPerRun(20, func() {
		tr := &Trace{}
		for i := 0; i < events; i++ {
			tr.Emit(Event{Kind: Store, Addr: memory.PersistentBase, Size: 8})
		}
		tr.Release()
	})
	// Allowed residue: the Trace itself, the chunks slice headers, and
	// occasional pool misses under GC; not per-event or per-chunk-body
	// storage.
	if allocs > 12 {
		t.Errorf("emit+release of %d events allocated %.1f times, want <= 12", events, allocs)
	}
}
