package trace

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/memory"
)

func BenchmarkCodecEncode(b *testing.B) {
	e := Event{TID: 1, Kind: Store, Addr: memory.PersistentBase, Size: 8, Val: 42}
	w := NewWriter(io.Discard)
	b.SetBytes(recordSize)
	for i := 0; i < b.N; i++ {
		w.Emit(e)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkCodecDecode(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10000; i++ {
		w.Emit(Event{TID: 1, Kind: Store, Addr: memory.PersistentBase, Size: 8, Val: uint64(i)})
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(recordSize)
	b.ResetTimer()
	n := 0
	for n < b.N {
		r := NewReader(bytes.NewReader(data))
		for {
			if _, err := r.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
			n++
			if n >= b.N {
				break
			}
		}
	}
}

func BenchmarkTraceEmit(b *testing.B) {
	tr := &Trace{}
	e := Event{TID: 0, Kind: Store, Addr: memory.PersistentBase, Size: 8}
	for i := 0; i < b.N; i++ {
		tr.Emit(e)
	}
}
