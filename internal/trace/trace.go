// Package trace defines the memory-access event model that the rest of
// the reproduction is built around.
//
// The paper instruments its queue benchmarks with PIN to produce memory
// access traces that observe sequential consistency, annotated with
// persist barriers and persistent malloc/free (§7). Package trace is the
// Go-side equivalent of that trace format: a totally ordered sequence of
// Events (the SC order), produced by internal/exec and consumed by the
// persistency-model timing simulator in internal/core and by the
// recovery observer in internal/observer.
package trace

import (
	"fmt"
	"iter"
	"sync"

	"repro/internal/memory"
)

// Kind enumerates memory-trace event types.
type Kind uint8

const (
	// Invalid is the zero Kind; it never appears in valid traces.
	Invalid Kind = iota
	// Load is a data read of up to eight bytes.
	Load
	// Store is a data write of up to eight bytes. A Store to the
	// persistent address space is a persist in the paper's terminology.
	Store
	// RMW is a successful atomic read-modify-write (compare-and-swap,
	// swap, fetch-and-add). It has both load and store semantics for
	// conflict detection; a failed CAS is traced as a plain Load.
	RMW
	// PersistBarrier divides a thread's execution into persist epochs
	// (§5.2). Under strand persistency it orders persists within the
	// current strand (§5.3). Strict persistency ignores it.
	PersistBarrier
	// NewStrand begins a new persist strand (§5.3): it clears all
	// previously observed persist dependences on the issuing thread.
	NewStrand
	// PersistSync synchronizes instruction execution with persistent
	// state under buffered strict persistency (§4.1): all prior persists
	// must complete before execution proceeds.
	PersistSync
	// Malloc records a heap allocation; Addr is the base and Val the
	// reserved size. Allocations in the persistent space delimit the
	// persistent data structures, as in the paper's tracing framework.
	Malloc
	// Free records a heap release of the allocation based at Addr.
	Free
	// BeginWork and EndWork bracket one logical operation (one queue
	// insert); Val carries the operation id. The harness uses them for
	// per-insert critical-path accounting and for the paper's
	// insert-distance tracing validation (§7).
	BeginWork
	// EndWork closes the bracket opened by BeginWork.
	EndWork
)

// String returns the event-kind name used in dumps.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case RMW:
		return "rmw"
	case PersistBarrier:
		return "persist-barrier"
	case NewStrand:
		return "new-strand"
	case PersistSync:
		return "persist-sync"
	case Malloc:
		return "malloc"
	case Free:
		return "free"
	case BeginWork:
		return "begin-work"
	case EndWork:
		return "end-work"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(k))
	}
}

// IsAccess reports whether the kind reads or writes memory.
func (k Kind) IsAccess() bool { return k == Load || k == Store || k == RMW }

// IsAnnotation reports whether the kind is a persistency annotation
// (PersistBarrier, NewStrand, PersistSync): an event with no memory
// effect that only constrains the downstream persist-order analysis.
func (k Kind) IsAnnotation() bool {
	return k == PersistBarrier || k == NewStrand || k == PersistSync
}

// HasStoreSemantics reports whether the kind writes memory (Store, RMW).
func (k Kind) HasStoreSemantics() bool { return k == Store || k == RMW }

// HasLoadSemantics reports whether the kind reads memory (Load, RMW).
func (k Kind) HasLoadSemantics() bool { return k == Load || k == RMW }

// Event is one entry of a memory trace. Events are totally ordered by
// Seq; because the execution engine serializes simulated instructions,
// this total order is the trace's sequentially consistent memory order.
type Event struct {
	// Seq is the event's position in the SC total order, assigned by the
	// sink. The first event of a trace has Seq 0.
	Seq uint64
	// TID identifies the issuing simulated thread, starting at 0.
	TID int32
	// Kind is the event type.
	Kind Kind
	// Size is the access width in bytes (1..8) for Load/Store/RMW;
	// 0 otherwise.
	Size uint8
	// Addr is the accessed address for Load/Store/RMW, the allocation
	// base for Malloc/Free, and 0 otherwise.
	Addr memory.Addr
	// Val is the value written (Store/RMW), the reserved size (Malloc),
	// or the operation id (BeginWork/EndWork).
	Val uint64
}

// IsPersist reports whether the event durably writes NVRAM: a store or
// RMW targeting the persistent address space.
func (e Event) IsPersist() bool {
	return e.Kind.HasStoreSemantics() && memory.IsPersistent(e.Addr)
}

// String renders the event for dumps and test failures.
func (e Event) String() string {
	switch {
	case e.Kind.IsAccess():
		return fmt.Sprintf("#%d t%d %s %#x/%d = %#x", e.Seq, e.TID, e.Kind, uint64(e.Addr), e.Size, e.Val)
	case e.Kind == Malloc:
		return fmt.Sprintf("#%d t%d malloc %#x size %d", e.Seq, e.TID, uint64(e.Addr), e.Val)
	case e.Kind == Free:
		return fmt.Sprintf("#%d t%d free %#x", e.Seq, e.TID, uint64(e.Addr))
	case e.Kind == BeginWork || e.Kind == EndWork:
		return fmt.Sprintf("#%d t%d %s op %d", e.Seq, e.TID, e.Kind, e.Val)
	default:
		return fmt.Sprintf("#%d t%d %s", e.Seq, e.TID, e.Kind)
	}
}

// Validate checks structural invariants of a single event.
func (e Event) Validate() error {
	switch {
	case e.Kind.IsAccess():
		if e.Size == 0 || e.Size > memory.WordSize {
			return fmt.Errorf("trace: %s with size %d", e.Kind, e.Size)
		}
		if _, err := memory.CheckRange(e.Addr, int(e.Size)); err != nil {
			return fmt.Errorf("trace: %s: %w", e.Kind, err)
		}
	case e.Kind == Malloc, e.Kind == Free:
		if memory.SpaceOf(e.Addr) == memory.Unmapped {
			return fmt.Errorf("trace: %s of unmapped address %#x", e.Kind, uint64(e.Addr))
		}
	case e.Kind == Invalid:
		return fmt.Errorf("trace: invalid event kind")
	}
	if e.TID < 0 {
		return fmt.Errorf("trace: negative thread id %d", e.TID)
	}
	return nil
}

// Sink receives trace events in SC order. Implementations must not
// retain the event beyond the call (it is a value type, so copying is
// free anyway).
type Sink interface {
	Emit(Event)
}

// Discard is a Sink that drops all events; the execution engine uses it
// when only native-speed execution is wanted.
var Discard Sink = discardSink{}

type discardSink struct{}

func (discardSink) Emit(Event) {}

// Chunked structure-of-arrays event storage. Traces routinely hold
// millions of events; a single flat []Event pays a reallocation-and-copy
// tax every time it grows, leaves the allocator with one huge object
// per trace, and — at 32 bytes per AoS event, padding included — drags
// every analysis pass through fields it never reads. Instead events
// live in fixed-capacity column chunks (one plane per field: op, size,
// thread, address, value) recycled through a sync.Pool, so growth never
// copies, sweep-style pipelines reuse the same memory, and kernels that
// only need one or two planes (persist counting reads op+addr; epoch
// segmentation reads op+thread) walk dense slabs at ~22 B/event.
//
// Seq is not stored at all: for traces built through Emit it equals the
// event's position, so each chunk carries only its base. The one caller
// that pushes events with explicit sequence numbers (codec.ReadAll,
// preserving decoded streams) triggers a rare per-chunk overflow plane.
const (
	chunkShift = 13
	// chunkCap is the number of events per chunk (~176 KiB of planes).
	chunkCap  = 1 << chunkShift
	chunkMask = chunkCap - 1
)

// Chunk is one fixed-capacity block of column storage. All planes share
// one length; every chunk of a trace except the last is full. Callers
// must treat the planes as read-only; they remain owned by the trace.
type Chunk struct {
	n    int
	base uint64 // Seq of element 0 (the chunk's position in the trace)
	kind *[chunkCap]Kind
	size *[chunkCap]uint8
	tid  *[chunkCap]int32
	addr *[chunkCap]memory.Addr
	val  *[chunkCap]uint64
	// seq overrides the implicit base+i sequence numbers; nil (always,
	// for machine-emitted traces) means implicit.
	seq []uint64
}

// Len returns the number of events in the chunk.
func (c *Chunk) Len() int { return c.n }

// Kinds returns the op plane (event kinds), one entry per event.
func (c *Chunk) Kinds() []Kind { return c.kind[:c.n] }

// Sizes returns the access-size plane.
func (c *Chunk) Sizes() []uint8 { return c.size[:c.n] }

// TIDs returns the thread plane.
func (c *Chunk) TIDs() []int32 { return c.tid[:c.n] }

// Addrs returns the address plane.
func (c *Chunk) Addrs() []memory.Addr { return c.addr[:c.n] }

// Vals returns the value plane.
func (c *Chunk) Vals() []uint64 { return c.val[:c.n] }

// Event assembles the i'th event of the chunk from its planes.
func (c *Chunk) Event(i int) Event {
	e := Event{
		Seq:  c.base + uint64(i),
		TID:  c.tid[i],
		Kind: c.kind[i],
		Size: c.size[i],
		Addr: c.addr[i],
		Val:  c.val[i],
	}
	if c.seq != nil {
		e.Seq = c.seq[i]
	}
	return e
}

var chunkPool sync.Pool // of *Chunk with all planes allocated

func newChunk(base uint64) *Chunk {
	if c, ok := chunkPool.Get().(*Chunk); ok {
		c.n, c.base, c.seq = 0, base, nil
		return c
	}
	return &Chunk{
		base: base,
		kind: new([chunkCap]Kind),
		size: new([chunkCap]uint8),
		tid:  new([chunkCap]int32),
		addr: new([chunkCap]memory.Addr),
		val:  new([chunkCap]uint64),
	}
}

// Trace is an in-memory event sequence. The zero value is an empty
// trace ready to use.
//
// Storage is chunked SoA (see Chunk): every chunk except the last holds
// exactly chunkCap events, which keeps At O(1) and lets hot loops walk
// Chunks directly.
type Trace struct {
	chunks []*Chunk
	n      int
}

// push appends an event, preserving an explicit Seq that differs from
// the event's position (decoded streams only).
func (t *Trace) push(e Event) {
	c := t.emit(e)
	if e.Seq != uint64(t.n-1) && c.seq == nil {
		// Materialize the override plane for the whole chunk.
		c.seq = make([]uint64, c.n-1, chunkCap)
		for i := range c.seq {
			c.seq[i] = c.base + uint64(i)
		}
	}
	if c.seq != nil {
		c.seq = append(c.seq, e.Seq)
	}
}

// emit appends an event's planes and returns the receiving chunk.
func (t *Trace) emit(e Event) *Chunk {
	k := len(t.chunks)
	if k == 0 || t.chunks[k-1].n == chunkCap {
		t.chunks = append(t.chunks, newChunk(uint64(t.n)))
		k++
	}
	c := t.chunks[k-1]
	i := c.n
	c.kind[i] = e.Kind
	c.size[i] = e.Size
	c.tid[i] = e.TID
	c.addr[i] = e.Addr
	c.val[i] = e.Val
	c.n++
	t.n++
	return c
}

// Emit appends an event, assigning its Seq; Trace implements Sink.
func (t *Trace) Emit(e Event) {
	c := t.emit(e)
	if c.seq != nil {
		c.seq = append(c.seq, uint64(t.n-1))
	}
}

// Len returns the number of events.
func (t *Trace) Len() int { return t.n }

// At returns the event at position i (which equals its Seq for traces
// built through Emit).
func (t *Trace) At(i int) Event {
	return t.chunks[i>>chunkShift].Event(i & chunkMask)
}

// All iterates the events in SC order.
func (t *Trace) All() iter.Seq[Event] {
	return func(yield func(Event) bool) {
		for _, c := range t.chunks {
			for i := 0; i < c.n; i++ {
				if !yield(c.Event(i)) {
					return
				}
			}
		}
	}
}

// Chunks exposes the underlying SoA storage for hot replay loops:
// events in order, grouped into contiguous column blocks. Callers must
// treat the planes as read-only; they remain owned by the trace.
func (t *Trace) Chunks() []*Chunk { return t.chunks }

// Release returns the trace's storage to the chunk pool and empties the
// trace. Only an exclusive owner may call it: any plane or chunk view
// previously obtained from the trace becomes invalid.
func (t *Trace) Release() {
	for i, c := range t.chunks {
		chunkPool.Put(c)
		t.chunks[i] = nil
	}
	t.chunks = nil
	t.n = 0
}

// Equal reports whether two traces hold identical event sequences.
func (t *Trace) Equal(o *Trace) bool {
	if t.n != o.n {
		return false
	}
	for i := 0; i < t.n; i++ {
		if t.At(i) != o.At(i) {
			return false
		}
	}
	return true
}

// Validate checks every event and the Seq numbering.
func (t *Trace) Validate() error {
	i := 0
	for e := range t.All() {
		if e.Seq != uint64(i) {
			return fmt.Errorf("trace: event %d has seq %d", i, e.Seq)
		}
		if err := e.Validate(); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		i++
	}
	return nil
}

// Threads returns the number of distinct thread ids (max TID + 1).
func (t *Trace) Threads() int {
	max := int32(-1)
	for e := range t.All() {
		if e.TID > max {
			max = e.TID
		}
	}
	return int(max + 1)
}

// Filter returns the events satisfying keep, preserving order.
func (t *Trace) Filter(keep func(Event) bool) []Event {
	var out []Event
	for e := range t.All() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Persists returns the events that durably write NVRAM.
func (t *Trace) Persists() []Event {
	return t.Filter(Event.IsPersist)
}

// CountPersists returns the number of events that durably write NVRAM,
// touching only the op and address planes.
func (t *Trace) CountPersists() int {
	n := 0
	for _, c := range t.chunks {
		kinds, addrs := c.Kinds(), c.Addrs()
		for i, k := range kinds {
			if k.HasStoreSemantics() && memory.IsPersistent(addrs[i]) {
				n++
			}
		}
	}
	return n
}

// SplitByThread partitions the trace into per-thread subsequences
// (program orders), indexed by TID. Events keep their global Seq so
// positions in the SC order remain recoverable.
func (t *Trace) SplitByThread() map[int32][]Event {
	out := make(map[int32][]Event)
	for e := range t.All() {
		out[e.TID] = append(out[e.TID], e)
	}
	return out
}

// Slice returns the events with Seq in [from, to) as a new Trace with
// renumbered Seqs — a window for scoped analysis. Bounds are clamped.
func (t *Trace) Slice(from, to uint64) *Trace {
	if to > uint64(t.n) {
		to = uint64(t.n)
	}
	if from > to {
		from = to
	}
	out := &Trace{}
	for i := from; i < to; i++ {
		out.Emit(t.At(int(i)))
	}
	return out
}

// Tee is a Sink that forwards every event to all of its children.
type Tee []Sink

// Emit forwards e to each child sink.
func (t Tee) Emit(e Event) {
	for _, s := range t {
		s.Emit(e)
	}
}
