package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/memory"
)

// Binary trace format. The paper's tracing framework writes traces to
// disk for offline timing simulation; this codec provides the same
// workflow (cmd/tracedump records, the simulator can replay).
//
// Layout: an 8-byte magic header, then fixed 30-byte little-endian
// records:
//
//	seq  uint64
//	tid  int32
//	kind uint8
//	size uint8
//	addr uint64
//	val  uint64
//
// Fixed-size records keep the codec trivially seekable and make the
// property tests exact.

const (
	// Magic identifies trace files; "MEMPERS1" as little-endian bytes.
	Magic = "MEMPERS1"
	// recordSize is the encoded size of one event.
	recordSize = 8 + 4 + 1 + 1 + 8 + 8
)

// ErrBadMagic reports a reader positioned at data that is not a trace.
var ErrBadMagic = errors.New("trace: bad magic; not a trace stream")

// Writer streams events to an io.Writer in the binary format. It
// implements Sink; Close must be called to flush.
type Writer struct {
	bw    *bufio.Writer
	n     uint64
	err   error
	wrote bool
}

// NewWriter returns a Writer targeting w. The magic header is written
// lazily on the first event (or at Close for an empty trace).
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

func (w *Writer) header() {
	if !w.wrote {
		w.wrote = true
		if _, err := w.bw.WriteString(Magic); err != nil {
			w.err = err
		}
	}
}

// Emit encodes one event. Seq is assigned from the writer's own
// counter, so Writer can be used directly as the engine's sink.
func (w *Writer) Emit(e Event) {
	if w.err != nil {
		return
	}
	w.header()
	e.Seq = w.n
	w.n++
	var buf [recordSize]byte
	binary.LittleEndian.PutUint64(buf[0:], e.Seq)
	binary.LittleEndian.PutUint32(buf[8:], uint32(e.TID))
	buf[12] = byte(e.Kind)
	buf[13] = e.Size
	binary.LittleEndian.PutUint64(buf[14:], uint64(e.Addr))
	binary.LittleEndian.PutUint64(buf[22:], e.Val)
	if _, err := w.bw.Write(buf[:]); err != nil {
		w.err = err
	}
}

// Count returns the number of events emitted so far.
func (w *Writer) Count() uint64 { return w.n }

// Close flushes buffered records and reports any deferred write error.
func (w *Writer) Close() error {
	w.header()
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Reader decodes a binary trace stream.
type Reader struct {
	br     *bufio.Reader
	header bool
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r)}
}

// Next returns the next event, or io.EOF at the end of the stream.
func (r *Reader) Next() (Event, error) {
	if !r.header {
		var m [len(Magic)]byte
		if _, err := io.ReadFull(r.br, m[:]); err != nil {
			if err == io.EOF {
				return Event{}, io.EOF
			}
			return Event{}, fmt.Errorf("trace: reading magic: %w", err)
		}
		if string(m[:]) != Magic {
			return Event{}, ErrBadMagic
		}
		r.header = true
	}
	var buf [recordSize]byte
	if _, err := io.ReadFull(r.br, buf[:]); err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	e := Event{
		Seq:  binary.LittleEndian.Uint64(buf[0:]),
		TID:  int32(binary.LittleEndian.Uint32(buf[8:])),
		Kind: Kind(buf[12]),
		Size: buf[13],
		Addr: memory.Addr(binary.LittleEndian.Uint64(buf[14:])),
		Val:  binary.LittleEndian.Uint64(buf[22:]),
	}
	return e, nil
}

// ReadAll decodes an entire stream into a Trace. Decoded Seq values are
// preserved as stored.
func ReadAll(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	rd := NewReader(r)
	for {
		e, err := rd.Next()
		if err == io.EOF {
			return tr, nil
		}
		if err != nil {
			return nil, err
		}
		tr.push(e)
	}
}

// encBufPool recycles whole-chunk encode buffers so bulk writes neither
// re-allocate per call nor pay a per-record Write.
var encBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, chunkCap*recordSize)
		return &b
	},
}

// WriteAll encodes an entire Trace to w, one pooled buffer write per
// storage chunk. Seq is reassigned from the record position, matching
// Writer's streaming behavior.
func WriteAll(w io.Writer, tr *Trace) error {
	if _, err := io.WriteString(w, Magic); err != nil {
		return err
	}
	bp := encBufPool.Get().(*[]byte)
	defer encBufPool.Put(bp)
	var seq uint64
	for _, c := range tr.Chunks() {
		buf := (*bp)[:0]
		kinds, sizes, tids, addrs, vals := c.Kinds(), c.Sizes(), c.TIDs(), c.Addrs(), c.Vals()
		for i := range kinds {
			var rec [recordSize]byte
			binary.LittleEndian.PutUint64(rec[0:], seq)
			seq++
			binary.LittleEndian.PutUint32(rec[8:], uint32(tids[i]))
			rec[12] = byte(kinds[i])
			rec[13] = sizes[i]
			binary.LittleEndian.PutUint64(rec[14:], uint64(addrs[i]))
			binary.LittleEndian.PutUint64(rec[22:], vals[i])
			buf = append(buf, rec[:]...)
		}
		*bp = buf[:0]
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
