package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memory"
)

func randomEvent(rng *rand.Rand) Event {
	kinds := []Kind{Load, Store, RMW, PersistBarrier, NewStrand, PersistSync, Malloc, Free, BeginWork, EndWork}
	k := kinds[rng.Intn(len(kinds))]
	e := Event{TID: int32(rng.Intn(8)), Kind: k}
	if k.IsAccess() {
		e.Size = uint8(1 + rng.Intn(8))
		if rng.Intn(2) == 0 {
			e.Addr = memory.PersistentBase + memory.Addr(rng.Intn(1<<16)*8)
		} else {
			e.Addr = memory.VolatileBase + memory.Addr(rng.Intn(1<<16)*8)
		}
		e.Val = rng.Uint64()
	}
	if k == Malloc || k == Free {
		e.Addr = memory.PersistentBase + memory.Addr(rng.Intn(1<<16)*64)
		e.Val = uint64(rng.Intn(1024))
	}
	return e
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := &Trace{}
	for i := 0; i < 1000; i++ {
		tr.Emit(randomEvent(rng))
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(got) {
		t.Fatal("round trip mismatch")
	}
}

func TestCodecEmpty(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty trace decoded with %d events", got.Len())
	}
}

func TestCodecBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOTATRACEFILE................")))
	if _, err := r.Next(); err != ErrBadMagic {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestCodecTruncated(t *testing.T) {
	var buf bytes.Buffer
	tr := &Trace{}
	tr.Emit(Event{Kind: Store, Addr: memory.PersistentBase, Size: 8})
	tr.Emit(Event{Kind: Store, Addr: memory.PersistentBase + 8, Size: 8})
	if err := WriteAll(&buf, tr); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	r := NewReader(bytes.NewReader(cut))
	if _, err := r.Next(); err != nil {
		t.Fatalf("first record should decode: %v", err)
	}
	// No more full records; the partial tail must error, not EOF-silently.
	if _, err := r.Next(); err == io.EOF || err == nil {
		t.Fatalf("truncated record should be an error, got %v", err)
	}
}

func TestWriterAssignsSeq(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(Event{Kind: PersistBarrier, Seq: 42})
	w.Emit(Event{Kind: PersistBarrier, Seq: 42})
	if w.Count() != 2 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.At(0).Seq != 0 || tr.At(1).Seq != 1 {
		t.Fatalf("writer did not reassign Seq: %v, %v", tr.At(0), tr.At(1))
	}
}

// Property: encode/decode round trip preserves any single event's fields
// (with Seq rewritten to 0).
func TestCodecProperty(t *testing.T) {
	f := func(tid int32, kind uint8, size uint8, addr, val uint64) bool {
		e := Event{
			TID:  tid & 0x7fffffff,
			Kind: Kind(kind),
			Size: size,
			Addr: memory.Addr(addr),
			Val:  val,
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.Emit(e)
		if err := w.Close(); err != nil {
			return false
		}
		tr, err := ReadAll(&buf)
		if err != nil || tr.Len() != 1 {
			return false
		}
		e.Seq = 0
		return tr.At(0) == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
