// Package nvram models the NVRAM device's timing.
//
// The paper's headline methodology deliberately abstracts the device
// away: infinite bandwidth and banks, finite persist latency, so
// throughput is bounded by the persist ordering constraint critical
// path alone (§7). That case needs no device model — core.Result and a
// latency suffice.
//
// The paper also notes that "at worst, constraints within the memory
// system limit persist rate, such as bank conflicts or bandwidth
// limitations" (§3). Package nvram quantifies that caveat: it schedules
// a persist-order DAG (from internal/graph) onto a device with a finite
// number of banks (persists to the same bank serialize) and a finite
// number of write channels (a global concurrency cap), reporting the
// makespan. With Banks = Channels = 0 (infinite) the makespan equals
// criticalPath × latency, recovering the paper's assumption; the
// benches sweep banks to show where device limits, not ordering
// constraints, become the bottleneck. It also tracks per-block write
// counts, the quantity NVRAM wear-leveling work cares about (§2.1).
package nvram

import (
	"container/heap"
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/memory"
)

// Config describes the simulated device.
type Config struct {
	// Latency is the time one persist occupies the device.
	Latency time.Duration
	// Banks is the number of independent banks; persists to the same
	// bank serialize. Banks are selected by hashing the persist's
	// atomic block. 0 means infinite (the paper's assumption).
	Banks int
	// Channels caps device-wide persist concurrency. 0 means infinite.
	Channels int
	// AtomicGranularity maps addresses to banks and wear blocks;
	// 0 means 8 bytes.
	AtomicGranularity uint64
	// MLCSlowFraction models multi-level-cell write asymmetry (§2.1:
	// MLC cells "require iterative writes to change the cell value"):
	// this fraction of writes (selected by a deterministic hash of the
	// persist's block and sequence) takes MLCFactor × Latency. Zero
	// disables the effect.
	MLCSlowFraction float64
	// MLCFactor is the slow-write multiplier; 0 means 4.
	MLCFactor int
	// MaxRetries bounds write attempts per persist when a fault
	// profile injects transient failures (ScheduleWithFaults): a
	// persist still failing after MaxRetries attempts is abandoned and
	// counted in Result.FailedPersists. 0 means 8.
	MaxRetries int
	// RetryBackoff is the device-side wait before re-attempting a
	// failed write; the k-th failed attempt (1-based) waits
	// RetryBackoff << (k-1), the usual bounded exponential backoff.
	// 0 means no backoff (immediate retry).
	RetryBackoff time.Duration
}

func (c *Config) normalize() error {
	if c.Latency <= 0 {
		return fmt.Errorf("nvram: non-positive latency %v", c.Latency)
	}
	if c.AtomicGranularity == 0 {
		c.AtomicGranularity = memory.WordSize
	}
	if !memory.IsPowerOfTwo(c.AtomicGranularity) {
		return fmt.Errorf("nvram: atomic granularity %d not a power of two", c.AtomicGranularity)
	}
	if c.Banks < 0 || c.Channels < 0 {
		return fmt.Errorf("nvram: negative banks/channels")
	}
	if c.MLCSlowFraction < 0 || c.MLCSlowFraction > 1 {
		return fmt.Errorf("nvram: MLC slow fraction %v out of [0,1]", c.MLCSlowFraction)
	}
	if c.MLCFactor == 0 {
		c.MLCFactor = 4
	}
	if c.MLCFactor < 1 {
		return fmt.Errorf("nvram: MLC factor %d must be >= 1", c.MLCFactor)
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.MaxRetries < 0 || c.RetryBackoff < 0 {
		return fmt.Errorf("nvram: negative retry parameters")
	}
	return nil
}

// writeLatency returns the service time of one persist, applying the
// MLC asymmetry deterministically (a seeded hash of block and order,
// so schedules are reproducible).
func (c *Config) writeLatency(blk memory.BlockID, n int) time.Duration {
	if c.MLCSlowFraction <= 0 {
		return c.Latency
	}
	h := (uint64(blk)*0x9e3779b97f4a7c15 + uint64(n)*0xbf58476d1ce4e5b9) >> 11
	if float64(h%1000)/1000.0 < c.MLCSlowFraction {
		return time.Duration(c.MLCFactor) * c.Latency
	}
	return c.Latency
}

// Result reports a device schedule.
type Result struct {
	// Makespan is the completion time of the last persist.
	Makespan time.Duration
	// Persists is the number of NVRAM writes scheduled.
	Persists int
	// IdealMakespan is criticalPathDepth × base latency (infinite
	// device, fast cells).
	IdealMakespan time.Duration
	// DeviceBound reports whether device effects (banks, channels, MLC
	// slow writes), rather than ordering constraints alone, set the
	// makespan.
	DeviceBound bool
	// WearMax is the largest per-block write count.
	WearMax int
	// WearBlocks is the number of distinct blocks written.
	WearBlocks int
	// Retries is the total number of failed write attempts injected by
	// the fault profile (each re-attempt also wears its block).
	Retries int
	// RetryTime is the extra device occupancy transient failures cost:
	// re-attempt service time plus backoff waits. An abandoned persist
	// (all attempts failed) charges its full occupancy — there is no
	// successful attempt to exclude.
	RetryTime time.Duration
	// FailedPersists counts persists abandoned after MaxRetries
	// attempts; their data never reached media (the campaign layer
	// models the state-space side as a dropped persist).
	FailedPersists int
	// BankBusy is each bank's total service time (nil with infinite
	// banks); BankBusy[b] / Makespan is bank b's occupancy, the
	// load-balance view of the §3 bank-conflict caveat.
	BankBusy []time.Duration
}

// channelHeap is a min-heap of channel free times.
type channelHeap []time.Duration

func (h channelHeap) Len() int            { return len(h) }
func (h channelHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h channelHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *channelHeap) Push(x interface{}) { *h = append(*h, x.(time.Duration)) }
func (h *channelHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// FaultProfile assigns injected transient write failures to persist
// nodes: the value is the number of attempts that fail before the
// write sticks (fault.Plan.RetryProfile produces one). Attempts beyond
// Config.MaxRetries mean the persist is abandoned.
type FaultProfile map[graph.NodeID]int

// Schedule lays the persist DAG onto the device and returns timing and
// wear statistics. Nodes must be in topological order with edges
// pointing backward (true for graph.Build output).
func Schedule(g *graph.Graph, cfg Config) (Result, error) {
	return ScheduleWithFaults(g, cfg, nil)
}

// ScheduleWithFaults is Schedule with transient write failures charged
// into the timing model: a persist with k injected failures occupies
// its bank/channel for k+1 service times plus the bounded exponential
// backoff between attempts, and wears its block once per attempt.
func ScheduleWithFaults(g *graph.Graph, cfg Config, faults FaultProfile) (Result, error) {
	if err := cfg.normalize(); err != nil {
		return Result{}, err
	}
	n := g.Len()
	finish := make([]time.Duration, n)
	depth := make([]int64, n)
	bankFree := make([]time.Duration, cfg.Banks)
	bankBusy := make([]time.Duration, cfg.Banks)
	var channels channelHeap
	if cfg.Channels > 0 {
		channels = make(channelHeap, cfg.Channels)
		heap.Init(&channels)
	}
	wear := make(map[memory.BlockID]int)

	var res Result
	var maxDepth int64
	for i, node := range g.Nodes {
		if !node.Event.Kind.IsAccess() {
			continue
		}
		res.Persists++
		var ready time.Duration
		var d int64
		for _, e := range node.In {
			if f := finish[e.From]; f > ready {
				ready = f
			}
			if dd := depth[e.From]; dd > d {
				d = dd
			}
		}
		depth[i] = d + 1
		if depth[i] > maxDepth {
			maxDepth = depth[i]
		}
		start := ready
		blk := memory.BlockOf(node.Event.Addr, cfg.AtomicGranularity)
		lat := cfg.writeLatency(blk, res.Persists)
		// Transient failures: k failed attempts then (usually) success.
		// The persist occupies its bank/channel for every attempt plus
		// the backoff waits, and each attempt wears the block.
		attempts := 1
		abandoned := false
		if fails := faults[graph.NodeID(i)]; fails > 0 {
			if fails >= cfg.MaxRetries {
				// Abandoned: MaxRetries attempts, all failed.
				fails = cfg.MaxRetries
				attempts = fails
				abandoned = true
				res.FailedPersists++
			} else {
				attempts = fails + 1
			}
			res.Retries += fails
		}
		service := time.Duration(attempts) * lat
		for k := 1; k < attempts; k++ {
			service += cfg.RetryBackoff << uint(k-1)
		}
		if abandoned {
			// No attempt succeeded: the whole occupancy is retry cost.
			res.RetryTime += service
		} else {
			res.RetryTime += service - lat
		}
		// Resolve the start time against *both* resources before
		// committing either: a bank is only free once the persist
		// actually finishes on it, which the channel constraint may
		// push later than the bank constraint alone implies.
		bank := -1
		if cfg.Banks > 0 {
			bank = int(uint64(blk) % uint64(cfg.Banks))
			if bankFree[bank] > start {
				start = bankFree[bank]
			}
		}
		if cfg.Channels > 0 {
			// The earliest-free channel.
			if channels[0] > start {
				start = channels[0]
			}
		}
		if bank >= 0 {
			bankFree[bank] = start + service
			bankBusy[bank] += service
		}
		if cfg.Channels > 0 {
			channels[0] = start + service
			heap.Fix(&channels, 0)
		}
		finish[i] = start + service
		if finish[i] > res.Makespan {
			res.Makespan = finish[i]
		}
		wear[blk] += attempts
		if wear[blk] > res.WearMax {
			res.WearMax = wear[blk]
		}
	}
	res.WearBlocks = len(wear)
	if cfg.Banks > 0 {
		res.BankBusy = bankBusy
	}
	res.IdealMakespan = time.Duration(maxDepth) * cfg.Latency
	res.DeviceBound = res.Makespan > res.IdealMakespan
	return res, nil
}
