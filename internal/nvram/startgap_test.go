package nvram

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/memory"
	"repro/internal/trace"
)

func TestStartGapValidation(t *testing.T) {
	if _, err := NewStartGap(0, 10); err == nil {
		t.Error("zero lines accepted")
	}
	if _, err := NewStartGap(10, 0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestStartGapIdentityBeforeMoves(t *testing.T) {
	sg, err := NewStartGap(8, 100)
	if err != nil {
		t.Fatal(err)
	}
	for la := 0; la < 8; la++ {
		if sg.Map(la) != la {
			t.Fatalf("initial map not identity: %d -> %d", la, sg.Map(la))
		}
	}
}

func TestStartGapRotation(t *testing.T) {
	sg, err := NewStartGap(4, 1) // move the gap on every write
	if err != nil {
		t.Fatal(err)
	}
	// After enough writes the mapping must differ from identity while
	// staying a bijection.
	changed := false
	for i := 0; i < 20; i++ {
		sg.RecordWrite(i % 4)
		if err := sg.checkBijection(); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		for la := 0; la < 4; la++ {
			if sg.Map(la) != la {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("gap rotation never changed the mapping")
	}
	if sg.GapMoves() != 20 {
		t.Fatalf("gap moves = %d", sg.GapMoves())
	}
}

func TestStartGapFullCycleRestoresBijection(t *testing.T) {
	sg, err := NewStartGap(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5*6*10; i++ { // many full gap cycles
		sg.RecordWrite(rng.Intn(5))
	}
	if err := sg.checkBijection(); err != nil {
		t.Fatal(err)
	}
}

func TestStartGapOutOfRangePanics(t *testing.T) {
	sg, _ := NewStartGap(4, 10)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Map should panic")
		}
	}()
	sg.Map(9)
}

// hotspotGraph persists the same address repeatedly plus light
// background traffic — the queue's head-pointer pattern.
func hotspotGraph(t *testing.T, writes int) *graph.Graph {
	t.Helper()
	tr := &trace.Trace{}
	for i := 0; i < writes; i++ {
		tr.Emit(trace.Event{TID: 0, Kind: trace.Store, Addr: memory.PersistentBase, Size: 8, Val: uint64(i)})
		tr.Emit(trace.Event{TID: 0, Kind: trace.Store, Addr: memory.PersistentBase + memory.Addr(64+64*(i%8)), Size: 8, Val: 1})
	}
	g, err := graph.Build(tr, core.Params{Model: core.Epoch})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMeasureWearWithoutLeveling(t *testing.T) {
	g := hotspotGraph(t, 500)
	p, err := MeasureWear(g, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxLine != 500 {
		t.Fatalf("hot line wear = %d, want 500", p.MaxLine)
	}
	if p.Imbalance() < 4 {
		t.Fatalf("hotspot should be imbalanced: %.2f", p.Imbalance())
	}
}

func TestMeasureWearWithStartGap(t *testing.T) {
	g := hotspotGraph(t, 500)
	raw, err := MeasureWear(g, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := NewStartGap(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	leveled, err := MeasureWear(g, 64, sg)
	if err != nil {
		t.Fatal(err)
	}
	if leveled.MaxLine >= raw.MaxLine {
		t.Fatalf("leveling should cut max wear: %d vs %d", leveled.MaxLine, raw.MaxLine)
	}
	if leveled.LinesTouched <= raw.LinesTouched {
		t.Fatalf("leveling should spread writes: %d vs %d lines", leveled.LinesTouched, raw.LinesTouched)
	}
	if leveled.GapMoves == 0 {
		t.Fatal("no gap moves recorded")
	}
}

func TestMeasureWearErrors(t *testing.T) {
	g := hotspotGraph(t, 10)
	if _, err := MeasureWear(g, 60, nil); err == nil {
		t.Error("bad line size accepted")
	}
	sg, _ := NewStartGap(2, 8) // too small for the graph's lines
	if _, err := MeasureWear(g, 64, sg); err == nil {
		t.Error("undersized leveler accepted")
	}
}
