package nvram

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/memory"
	"repro/internal/trace"
)

func paddr(i uint64) memory.Addr { return memory.PersistentBase + memory.Addr(i*64) }

// buildDAG makes a graph from a simple event script.
func buildDAG(t *testing.T, model core.Model, build func(*trace.Trace)) *graph.Graph {
	t.Helper()
	tr := &trace.Trace{}
	build(tr)
	g, err := graph.Build(tr, core.Params{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func store(tr *trace.Trace, tid int32, a memory.Addr) {
	tr.Emit(trace.Event{TID: tid, Kind: trace.Store, Addr: a, Size: 8, Val: 1})
}

func TestInfiniteDeviceMatchesCriticalPath(t *testing.T) {
	// A strict chain of 5 persists: makespan = 5 × latency.
	g := buildDAG(t, core.Strict, func(tr *trace.Trace) {
		for i := uint64(0); i < 5; i++ {
			store(tr, 0, paddr(i))
		}
	})
	r, err := Schedule(g, Config{Latency: 100 * time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 500*time.Nanosecond {
		t.Fatalf("makespan = %v", r.Makespan)
	}
	if r.Makespan != r.IdealMakespan || r.DeviceBound {
		t.Fatalf("infinite device should be ordering-bound: %+v", r)
	}
	if r.Persists != 5 {
		t.Fatalf("persists = %d", r.Persists)
	}
}

func TestConcurrentPersistsOverlapOnInfiniteDevice(t *testing.T) {
	// Epoch, one epoch, 8 persists: all concurrent -> one latency.
	g := buildDAG(t, core.Epoch, func(tr *trace.Trace) {
		for i := uint64(0); i < 8; i++ {
			store(tr, 0, paddr(i))
		}
	})
	r, err := Schedule(g, Config{Latency: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != time.Microsecond {
		t.Fatalf("makespan = %v", r.Makespan)
	}
}

func TestSingleChannelSerializesEverything(t *testing.T) {
	g := buildDAG(t, core.Epoch, func(tr *trace.Trace) {
		for i := uint64(0); i < 8; i++ {
			store(tr, 0, paddr(i))
		}
	})
	r, err := Schedule(g, Config{Latency: time.Microsecond, Channels: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 8*time.Microsecond {
		t.Fatalf("makespan = %v", r.Makespan)
	}
	if !r.DeviceBound {
		t.Fatal("single channel should be device-bound")
	}
}

func TestChannelsScaleThroughput(t *testing.T) {
	g := buildDAG(t, core.Epoch, func(tr *trace.Trace) {
		for i := uint64(0); i < 8; i++ {
			store(tr, 0, paddr(i))
		}
	})
	r2, err := Schedule(g, Config{Latency: time.Microsecond, Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Makespan != 4*time.Microsecond {
		t.Fatalf("2 channels makespan = %v", r2.Makespan)
	}
	r4, err := Schedule(g, Config{Latency: time.Microsecond, Channels: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r4.Makespan != 2*time.Microsecond {
		t.Fatalf("4 channels makespan = %v", r4.Makespan)
	}
}

func TestBankConflictsSerialize(t *testing.T) {
	// 8 concurrent persists that all hash to the same bank of a
	// 1-bank device serialize; on a many-banked device they overlap.
	g := buildDAG(t, core.Epoch, func(tr *trace.Trace) {
		for i := uint64(0); i < 8; i++ {
			store(tr, 0, paddr(i))
		}
	})
	r1, err := Schedule(g, Config{Latency: time.Microsecond, Banks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != 8*time.Microsecond || !r1.DeviceBound {
		t.Fatalf("1 bank: %+v", r1)
	}
	// With banks selected by 64-byte block, the 64-byte-strided
	// addresses hit 8 distinct banks. (At 8-byte granularity they would
	// alias onto one bank: stride 64 ≡ 0 mod 8 blocks.)
	r8, err := Schedule(g, Config{Latency: time.Microsecond, Banks: 8, AtomicGranularity: 64})
	if err != nil {
		t.Fatal(err)
	}
	if r8.Makespan != time.Microsecond {
		t.Fatalf("8 banks makespan = %v", r8.Makespan)
	}
}

func TestWearCounting(t *testing.T) {
	g := buildDAG(t, core.Epoch, func(tr *trace.Trace) {
		store(tr, 0, paddr(0))
		store(tr, 0, paddr(0))
		store(tr, 0, paddr(0))
		store(tr, 0, paddr(1))
	})
	r, err := Schedule(g, Config{Latency: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if r.WearMax != 3 || r.WearBlocks != 2 {
		t.Fatalf("wear: %+v", r)
	}
}

func TestConfigValidation(t *testing.T) {
	g := &graph.Graph{}
	if _, err := Schedule(g, Config{Latency: 0}); err == nil {
		t.Error("zero latency accepted")
	}
	if _, err := Schedule(g, Config{Latency: time.Microsecond, Banks: -1}); err == nil {
		t.Error("negative banks accepted")
	}
	if _, err := Schedule(g, Config{Latency: time.Microsecond, AtomicGranularity: 12}); err == nil {
		t.Error("bad granularity accepted")
	}
}

func TestMLCAsymmetry(t *testing.T) {
	// A chain of persists with every write slow: makespan = factor ×
	// ideal.
	g := buildDAG(t, core.Strict, func(tr *trace.Trace) {
		for i := uint64(0); i < 5; i++ {
			store(tr, 0, paddr(i))
		}
	})
	r, err := Schedule(g, Config{Latency: time.Microsecond, MLCSlowFraction: 1.0, MLCFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 15*time.Microsecond {
		t.Fatalf("all-slow makespan = %v", r.Makespan)
	}
	if !r.DeviceBound {
		t.Fatal("MLC slowdown should be device-bound")
	}
	// A fractional mix lands between the extremes and is deterministic.
	a, err := Schedule(g, Config{Latency: time.Microsecond, MLCSlowFraction: 0.5, MLCFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(g, Config{Latency: time.Microsecond, MLCSlowFraction: 0.5, MLCFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatal("MLC schedule not deterministic")
	}
	if a.Makespan < 5*time.Microsecond || a.Makespan > 15*time.Microsecond {
		t.Fatalf("mixed makespan = %v", a.Makespan)
	}
}

func TestMLCValidation(t *testing.T) {
	g := &graph.Graph{}
	if _, err := Schedule(g, Config{Latency: time.Microsecond, MLCSlowFraction: 1.5}); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := Schedule(g, Config{Latency: time.Microsecond, MLCFactor: -1}); err == nil {
		t.Error("negative factor accepted")
	}
}

func TestDependencesRespectBanks(t *testing.T) {
	// Chain of 3 with a 1-bank device: still 3 × latency (no worse).
	g := buildDAG(t, core.Strict, func(tr *trace.Trace) {
		store(tr, 0, paddr(0))
		store(tr, 0, paddr(1))
		store(tr, 0, paddr(2))
	})
	r, err := Schedule(g, Config{Latency: time.Microsecond, Banks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 3*time.Microsecond {
		t.Fatalf("makespan = %v", r.Makespan)
	}
	if r.DeviceBound {
		t.Fatal("chain on one bank is ordering-bound, not device-bound")
	}
}

func TestRetryAccounting(t *testing.T) {
	// A strict chain of 3 persists; the middle one fails twice.
	g := buildDAG(t, core.Strict, func(tr *trace.Trace) {
		for i := uint64(0); i < 3; i++ {
			store(tr, 0, paddr(i))
		}
	})
	lat := 100 * time.Nanosecond
	backoff := 10 * time.Nanosecond
	cfg := Config{Latency: lat, RetryBackoff: backoff}
	r, err := ScheduleWithFaults(g, cfg, FaultProfile{1: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Retries != 2 || r.FailedPersists != 0 {
		t.Fatalf("Retries = %d, FailedPersists = %d", r.Retries, r.FailedPersists)
	}
	// Extra cost: 2 more attempts + backoffs 10ns and 20ns.
	wantExtra := 2*lat + backoff + backoff<<1
	if r.RetryTime != wantExtra {
		t.Fatalf("RetryTime = %v, want %v", r.RetryTime, wantExtra)
	}
	if want := 3*lat + wantExtra; r.Makespan != want {
		t.Fatalf("Makespan = %v, want %v", r.Makespan, want)
	}
	// The failing block wears once per attempt.
	if r.WearMax != 3 {
		t.Fatalf("WearMax = %d, want 3", r.WearMax)
	}
	// No profile reproduces plain Schedule exactly.
	plain, err := Schedule(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Retries != 0 || plain.RetryTime != 0 || plain.Makespan != 3*lat {
		t.Fatalf("plain schedule perturbed: %+v", plain)
	}
}

func TestRetryAbandonsAfterMaxRetries(t *testing.T) {
	g := buildDAG(t, core.Strict, func(tr *trace.Trace) {
		store(tr, 0, paddr(0))
	})
	cfg := Config{Latency: 100 * time.Nanosecond, MaxRetries: 3}
	r, err := ScheduleWithFaults(g, cfg, FaultProfile{0: 99})
	if err != nil {
		t.Fatal(err)
	}
	if r.FailedPersists != 1 {
		t.Fatalf("FailedPersists = %d, want 1", r.FailedPersists)
	}
	// Charged exactly MaxRetries attempts, all failed.
	if r.Retries != 3 || r.WearMax != 3 {
		t.Fatalf("Retries = %d, WearMax = %d, want 3, 3", r.Retries, r.WearMax)
	}
}

func TestRetryConfigValidation(t *testing.T) {
	g := buildDAG(t, core.Strict, func(tr *trace.Trace) { store(tr, 0, paddr(0)) })
	if _, err := Schedule(g, Config{Latency: time.Microsecond, MaxRetries: -1}); err == nil {
		t.Error("negative MaxRetries should fail")
	}
	if _, err := Schedule(g, Config{Latency: time.Microsecond, RetryBackoff: -time.Nanosecond}); err == nil {
		t.Error("negative RetryBackoff should fail")
	}
}

func TestBankCommitSeesChannelDelay(t *testing.T) {
	// Regression: bankFree must be committed from the *final* start
	// time, after the channel constraint has pushed it. Four
	// independent persists, 2 banks (64-byte blocks: A,B on one bank,
	// C,D on the other), 2 channels, and one retry on C making its
	// service 2×lat:
	//
	//	A: [0, lat)   bank X, channel 1
	//	B: [lat, 2l)  bank X (serialized by the bank), channel 2
	//	C: [lat, 3l)  bank Y — channel-delayed to lat, 2-lat service
	//	D: [3l, 4l)   bank Y — must wait for C's *actual* finish
	//
	// The pre-fix code recorded bank Y free at 2·lat (C's start before
	// the channel delay, plus service), letting D overlap C on the same
	// bank and understating the makespan as 3·lat.
	g := buildDAG(t, core.Epoch, func(tr *trace.Trace) {
		store(tr, 0, paddr(0)) // A: bank 0
		store(tr, 0, paddr(2)) // B: bank 0
		store(tr, 0, paddr(1)) // C: bank 1
		store(tr, 0, paddr(3)) // D: bank 1
	})
	lat := 100 * time.Nanosecond
	cfg := Config{Latency: lat, Banks: 2, Channels: 2, AtomicGranularity: 64}
	r, err := ScheduleWithFaults(g, cfg, FaultProfile{2: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * lat; r.Makespan != want {
		t.Fatalf("Makespan = %v, want %v (same-bank persists under-serialized)", r.Makespan, want)
	}
	// Bank busy time is unaffected by where persists sit in time.
	if got := r.BankBusy[0] + r.BankBusy[1]; got != 5*lat {
		t.Fatalf("total BankBusy = %v, want %v", got, 5*lat)
	}
}

func TestBankAndChannelSerializeTogether(t *testing.T) {
	// Two independent persists on a 1-bank, 1-channel device must
	// serialize to exactly 2× the service time whichever resource
	// binds first.
	g := buildDAG(t, core.Epoch, func(tr *trace.Trace) {
		store(tr, 0, paddr(0))
		store(tr, 0, paddr(1))
	})
	lat := 100 * time.Nanosecond
	r, err := Schedule(g, Config{Latency: lat, Banks: 1, Channels: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * lat; r.Makespan != want {
		t.Fatalf("Makespan = %v, want %v", r.Makespan, want)
	}
	if r.BankBusy[0] != 2*lat {
		t.Fatalf("BankBusy = %v, want %v", r.BankBusy[0], 2*lat)
	}
}

func TestRetryTimeChargesFullServiceWhenAbandoned(t *testing.T) {
	// Regression: an abandoned persist has no successful attempt, so
	// RetryTime must charge its full service time, not service − lat.
	g := buildDAG(t, core.Strict, func(tr *trace.Trace) {
		store(tr, 0, paddr(0))
	})
	lat := 100 * time.Nanosecond
	backoff := 10 * time.Nanosecond
	cfg := Config{Latency: lat, MaxRetries: 3, RetryBackoff: backoff}
	r, err := ScheduleWithFaults(g, cfg, FaultProfile{0: 99})
	if err != nil {
		t.Fatal(err)
	}
	if r.FailedPersists != 1 || r.Retries != 3 {
		t.Fatalf("FailedPersists = %d, Retries = %d", r.FailedPersists, r.Retries)
	}
	// 3 failed attempts + backoffs 10ns and 20ns, all of it retry cost.
	want := 3*lat + backoff + backoff<<1
	if r.RetryTime != want {
		t.Fatalf("RetryTime = %v, want %v (abandoned persists have no successful attempt to exclude)", r.RetryTime, want)
	}
	if r.Makespan != want {
		t.Fatalf("Makespan = %v, want %v", r.Makespan, want)
	}
}
