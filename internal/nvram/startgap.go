package nvram

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/memory"
)

// Start-Gap wear leveling (Qureshi et al., MICRO 2009 — the paper's
// [24]): the paper sets write endurance aside because "previous work
// suggests efficient hardware to mitigate write-endurance concerns"
// (§2.1). This file provides that mitigation for the simulated device,
// so the wear numbers nvram reports reflect a realistic NVRAM rather
// than a raw array: one spare line plus a gap that rotates through the
// physical lines every psi writes, gradually shifting the
// logical-to-physical mapping so hot lines (the queue's head pointer!)
// spread their writes.
//
// The implementation keeps an explicit permutation rather than
// Start-Gap's algebraic map; the behavior — gap walks backward one line
// every psi writes, one line of data copied per move — is identical,
// and the simulator favors verifiability.

// StartGap is a rotating-gap wear leveler over a line-addressed region.
type StartGap struct {
	// phys[la] is the physical line currently backing logical line la.
	phys []int
	// gap is the currently unmapped physical line.
	gap int
	// psi is the gap-move interval in writes.
	psi    int
	writes int
	moves  int
	// owner[pa] is the logical line mapped to physical line pa, or -1
	// for the gap (the inverse permutation, to move lines in O(1)).
	owner []int
}

// NewStartGap creates a leveler for lines logical lines (physical
// capacity lines+1) moving the gap every psi writes.
func NewStartGap(lines, psi int) (*StartGap, error) {
	if lines <= 0 {
		return nil, fmt.Errorf("nvram: start-gap needs at least one line")
	}
	if psi <= 0 {
		return nil, fmt.Errorf("nvram: start-gap interval must be positive")
	}
	s := &StartGap{
		phys:  make([]int, lines),
		owner: make([]int, lines+1),
		gap:   lines, // the spare line starts as the gap
		psi:   psi,
	}
	for la := 0; la < lines; la++ {
		s.phys[la] = la
		s.owner[la] = la
	}
	s.owner[lines] = -1
	return s, nil
}

// Lines returns the logical line count.
func (s *StartGap) Lines() int { return len(s.phys) }

// GapMoves returns how many gap rotations have occurred.
func (s *StartGap) GapMoves() int { return s.moves }

// Map translates a logical line to its current physical line.
func (s *StartGap) Map(la int) int {
	if la < 0 || la >= len(s.phys) {
		panic(fmt.Sprintf("nvram: start-gap logical line %d out of range", la))
	}
	return s.phys[la]
}

// RecordWrite translates a write to logical line la, counts it, and
// rotates the gap when the interval elapses. It returns the physical
// line actually written.
func (s *StartGap) RecordWrite(la int) int {
	pa := s.Map(la)
	s.writes++
	if s.writes%s.psi == 0 {
		s.moveGap()
	}
	return pa
}

// moveGap moves the gap to its cyclic predecessor: the line before the
// gap is copied into the gap (one extra device write in real hardware),
// and that line becomes the new gap.
func (s *StartGap) moveGap() {
	n := len(s.owner)
	prev := (s.gap - 1 + n) % n
	if la := s.owner[prev]; la >= 0 {
		s.phys[la] = s.gap
		s.owner[s.gap] = la
	} else {
		s.owner[s.gap] = -1
	}
	s.owner[prev] = -1
	s.gap = prev
	s.moves++
}

// checkBijection verifies the permutation invariants (tests).
func (s *StartGap) checkBijection() error {
	seen := make(map[int]bool)
	for la, pa := range s.phys {
		if pa < 0 || pa >= len(s.owner) {
			return fmt.Errorf("logical %d maps out of range: %d", la, pa)
		}
		if pa == s.gap {
			return fmt.Errorf("logical %d maps to the gap", la)
		}
		if seen[pa] {
			return fmt.Errorf("physical line %d mapped twice", pa)
		}
		seen[pa] = true
		if s.owner[pa] != la {
			return fmt.Errorf("owner inverse broken at %d", pa)
		}
	}
	if s.owner[s.gap] != -1 {
		return fmt.Errorf("gap %d has an owner", s.gap)
	}
	return nil
}

// WearProfile summarizes per-line write counts.
type WearProfile struct {
	// Writes is the total writes recorded.
	Writes int
	// MaxLine is the hottest line's write count.
	MaxLine int
	// LinesTouched is the number of distinct physical lines written.
	LinesTouched int
	// GapMoves counts leveling rotations (each costs one device write).
	GapMoves int
}

// Imbalance is MaxLine / (Writes / LinesTouched): 1.0 means perfectly
// even wear over the touched lines.
func (p WearProfile) Imbalance() float64 {
	if p.Writes == 0 || p.LinesTouched == 0 {
		return 0
	}
	return float64(p.MaxLine) / (float64(p.Writes) / float64(p.LinesTouched))
}

// MeasureWear replays a persist DAG's writes through an optional
// Start-Gap leveler (nil = no leveling) at the given line granularity
// and reports the wear profile. Only the relative line addresses within
// the persistent space matter.
func MeasureWear(g *graph.Graph, lineBytes uint64, sg *StartGap) (WearProfile, error) {
	if !memory.IsPowerOfTwo(lineBytes) {
		return WearProfile{}, fmt.Errorf("nvram: line size %d not a power of two", lineBytes)
	}
	wear := make(map[int]int)
	var p WearProfile
	for _, n := range g.Nodes {
		if !n.Event.Kind.IsAccess() {
			continue
		}
		la := int(uint64(n.Event.Addr-memory.PersistentBase) / lineBytes)
		pa := la
		if sg != nil {
			if la >= sg.Lines() {
				return WearProfile{}, fmt.Errorf("nvram: line %d beyond leveler capacity %d", la, sg.Lines())
			}
			pa = sg.RecordWrite(la)
		}
		wear[pa]++
		p.Writes++
		if wear[pa] > p.MaxLine {
			p.MaxLine = wear[pa]
		}
	}
	p.LinesTouched = len(wear)
	if sg != nil {
		p.GapMoves = sg.GapMoves()
	}
	return p, nil
}
