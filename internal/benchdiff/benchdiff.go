// Package benchdiff pairs benchmarks across two BENCH_*.json suites
// (the scripts/bench_core.sh output format) and decides, per
// benchmark, whether the new run regressed. The decision is
// noise-aware: when both sides carry repeated measurements of the
// same benchmark (go test -count N leaves repeated names, which the
// parser groups into per-iteration samples), a Mann-Whitney U test
// must agree with the threshold before a delta counts; with single
// measurements only the relative threshold applies. The comparison
// renders as a markdown delta table — empty when nothing significant
// moved — and the package also maintains BENCH_history.jsonl, an
// append-only log of manifest-stamped suite records for tracking
// drift across commits.
package benchdiff

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// Benchmark is one measured benchmark in a suite document.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Suite is one BENCH_*.json document. Repeated benchmark names (from
// go test -count N) are legal and become per-iteration samples.
type Suite struct {
	Suite      string              `json:"suite"`
	Benchtime  string              `json:"benchtime,omitempty"`
	Manifest   *telemetry.Manifest `json:"manifest,omitempty"`
	Benchmarks []Benchmark         `json:"benchmarks"`
}

// ReadSuite parses a suite document from disk.
func ReadSuite(path string) (*Suite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Suite
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchdiff: %s: no benchmarks", path)
	}
	return &s, nil
}

// Filter returns a copy of the suite keeping only benchmarks whose
// name matches re (nil keeps everything). Comparing a focused subset —
// one hot path against its history — uses the same records as a full
// comparison, just restricted.
func (s *Suite) Filter(re *regexp.Regexp) *Suite {
	if re == nil {
		return s
	}
	out := &Suite{Suite: s.Suite, Benchtime: s.Benchtime, Manifest: s.Manifest}
	for _, b := range s.Benchmarks {
		if re.MatchString(b.Name) {
			out.Benchmarks = append(out.Benchmarks, b)
		}
	}
	return out
}

// Series is every measurement of one benchmark name in a suite, in
// document order.
type Series struct {
	Ns     []float64
	Bytes  []float64
	Allocs []float64
}

// Mean of the ns/op samples.
func (s Series) MeanNs() float64 { return mean(s.Ns) }

// Mean of the B/op samples.
func (s Series) MeanBytes() float64 { return mean(s.Bytes) }

// Mean of the allocs/op samples.
func (s Series) MeanAllocs() float64 { return mean(s.Allocs) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Samples groups a suite's benchmarks by name into per-iteration
// sample series.
func (s *Suite) Samples() map[string]*Series {
	out := make(map[string]*Series, len(s.Benchmarks))
	for _, b := range s.Benchmarks {
		sr := out[b.Name]
		if sr == nil {
			sr = &Series{}
			out[b.Name] = sr
		}
		sr.Ns = append(sr.Ns, b.NsPerOp)
		sr.Bytes = append(sr.Bytes, b.BytesPerOp)
		sr.Allocs = append(sr.Allocs, b.AllocsPerOp)
	}
	return out
}

// Options tune the comparison.
type Options struct {
	// NsThreshold is the minimum relative ns/op change that counts;
	// 0 means 0.10 (10%).
	NsThreshold float64
	// AllocThreshold is the minimum relative allocs/op change that
	// counts; 0 means 0.05 (5%).
	AllocThreshold float64
	// BytesThreshold is the minimum relative B/op change that counts;
	// 0 means 0.05 (5%). Bytes regressions matter independently of
	// allocation count: one alloc that doubles in size is invisible to
	// allocs/op.
	BytesThreshold float64
	// Alpha is the Mann-Whitney significance level used when both
	// sides have at least minSamples measurements; 0 means 0.05.
	Alpha float64
}

func (o *Options) normalize() {
	if o.NsThreshold == 0 {
		o.NsThreshold = 0.10
	}
	if o.AllocThreshold == 0 {
		o.AllocThreshold = 0.05
	}
	if o.BytesThreshold == 0 {
		o.BytesThreshold = 0.05
	}
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
}

// minSamples is the per-side sample count below which the
// Mann-Whitney test has no power at alpha=0.05 (the smallest
// two-sided p with 3v3 is ~0.1) and the comparison falls back to the
// threshold alone.
const minSamples = 4

// Delta is one benchmark's old-vs-new comparison.
type Delta struct {
	Name      string
	OldNs     float64 // mean over samples
	NewNs     float64
	NsRatio   float64 // (new-old)/old; +Inf when old == 0 and new > 0
	OldBytes  float64
	NewBytes  float64
	// BytesRatio is (new-old)/old for B/op; NaN when old == 0 and
	// new == 0, +Inf when old == 0 and new > 0.
	BytesRatio float64
	OldAllocs  float64
	NewAllocs  float64
	// AllocRatio is (new-old)/old for allocs/op; NaN when old == 0
	// and new == 0, +Inf when old == 0 and new > 0.
	AllocRatio float64
	// P is the Mann-Whitney two-sided p-value over the ns/op samples,
	// or NaN when either side has fewer than minSamples measurements
	// (threshold-only decision).
	P float64
	// Samples reports the per-side ns/op sample counts as "old/new".
	Samples string
	// Regression and Improvement mark significant moves; Metric names
	// the series that triggered ("ns/op", "allocs/op", or "B/op").
	Regression  bool
	Improvement bool
	Metric      string
}

func ratio(old, new float64) float64 {
	switch {
	case old != 0:
		return (new - old) / old
	case new != 0:
		return math.Inf(1)
	default:
		return math.NaN()
	}
}

// exceeds reports whether r is a significant move beyond threshold in
// either direction (NaN never is, +Inf always is).
func exceeds(r, threshold float64) bool {
	return !math.IsNaN(r) && math.Abs(r) > threshold
}

// Compare pairs benchmarks by name and returns one Delta per name
// present in both suites, sorted by name. Benchmarks present on only
// one side are ignored (suites evolve; adding a benchmark is not a
// regression).
func Compare(oldS, newS *Suite, opts Options) []Delta {
	opts.normalize()
	oldM, newM := oldS.Samples(), newS.Samples()
	names := make([]string, 0, len(oldM))
	for name := range oldM {
		if _, ok := newM[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	out := make([]Delta, 0, len(names))
	for _, name := range names {
		o, n := oldM[name], newM[name]
		d := Delta{
			Name:      name,
			OldNs:     o.MeanNs(),
			NewNs:     n.MeanNs(),
			OldBytes:  o.MeanBytes(),
			NewBytes:  n.MeanBytes(),
			OldAllocs: o.MeanAllocs(),
			NewAllocs: n.MeanAllocs(),
			P:         math.NaN(),
			Samples:   fmt.Sprintf("%d/%d", len(o.Ns), len(n.Ns)),
		}
		d.NsRatio = ratio(d.OldNs, d.NewNs)
		d.BytesRatio = ratio(d.OldBytes, d.NewBytes)
		d.AllocRatio = ratio(d.OldAllocs, d.NewAllocs)

		nsMove := exceeds(d.NsRatio, opts.NsThreshold)
		if nsMove && len(o.Ns) >= minSamples && len(n.Ns) >= minSamples {
			d.P = MannWhitneyP(o.Ns, n.Ns)
			if d.P >= opts.Alpha {
				nsMove = false // large-looking delta, but within run-to-run noise
			}
		}
		allocMove := exceeds(d.AllocRatio, opts.AllocThreshold)
		bytesMove := exceeds(d.BytesRatio, opts.BytesThreshold)

		switch {
		case nsMove:
			d.Metric = "ns/op"
			d.Regression = d.NsRatio > 0
			d.Improvement = !d.Regression
		case allocMove:
			d.Metric = "allocs/op"
			d.Regression = d.AllocRatio > 0
			d.Improvement = !d.Regression
		case bytesMove:
			d.Metric = "B/op"
			d.Regression = d.BytesRatio > 0
			d.Improvement = !d.Regression
		}
		out = append(out, d)
	}
	return out
}

// Regressions filters deltas down to significant regressions.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

func fmtRatio(r float64) string {
	switch {
	case math.IsNaN(r):
		return "~"
	case math.IsInf(r, 1):
		return "+inf"
	default:
		return fmt.Sprintf("%+.1f%%", 100*r)
	}
}

func fmtP(p float64) string {
	if math.IsNaN(p) {
		return "-"
	}
	return fmt.Sprintf("%.3f", p)
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.3gms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.3gµs", ns/1e3)
	default:
		return fmt.Sprintf("%.3gns", ns)
	}
}

// WriteMarkdown renders the delta table. Only significant rows
// (regressions and improvements) appear unless all is set; with no
// rows to show it writes a single "no significant deltas" line and no
// table at all, so an identical-input comparison reads as exactly
// that.
func WriteMarkdown(w io.Writer, deltas []Delta, all bool) error {
	rows := deltas
	if !all {
		rows = nil
		for _, d := range deltas {
			if d.Regression || d.Improvement {
				rows = append(rows, d)
			}
		}
	}
	if len(rows) == 0 {
		_, err := fmt.Fprintf(w, "No significant deltas across %d paired benchmarks.\n", len(deltas))
		return err
	}
	var b strings.Builder
	b.WriteString("| benchmark | old ns/op | new ns/op | Δns | p | B Δ | allocs Δ | samples | verdict |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	for _, d := range rows {
		verdict := "ok"
		if d.Regression {
			verdict = "**REGRESSION** (" + d.Metric + ")"
		} else if d.Improvement {
			verdict = "improvement (" + d.Metric + ")"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %s | %s | %s |\n",
			d.Name, fmtNs(d.OldNs), fmtNs(d.NewNs), fmtRatio(d.NsRatio),
			fmtP(d.P), fmtRatio(d.BytesRatio), fmtRatio(d.AllocRatio), d.Samples, verdict)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
