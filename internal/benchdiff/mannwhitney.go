package benchdiff

import (
	"math"
	"sort"
)

// MannWhitneyP returns the two-sided p-value of the Mann-Whitney U
// test (Wilcoxon rank-sum) comparing samples a and b: the probability
// of seeing a rank separation at least this extreme if both came from
// the same distribution. It uses the normal approximation with
// midranks for ties, the tie-corrected variance, and a 0.5 continuity
// correction — standard for the small-n regime benchmark runs live in
// (the approximation is conventionally accepted from n≈8 and is only
// used here as a noise gate, never as the sole regression signal).
// Degenerate inputs (either side empty, or all values identical)
// return 1: no evidence of a shift.
func MannWhitneyP(a, b []float64) float64 {
	n1, n2 := float64(len(a)), float64(len(b))
	if n1 == 0 || n2 == 0 {
		return 1
	}

	type obs struct {
		v     float64
		fromA bool
	}
	all := make([]obs, 0, len(a)+len(b))
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midrank assignment: each tie group of size t spanning ranks
	// [i+1, i+t] gets the average rank; the group also contributes
	// t³-t to the tie correction term.
	var rankSumA, tieSum float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		t := float64(j - i)
		midrank := (float64(i+1) + float64(j)) / 2
		for k := i; k < j; k++ {
			if all[k].fromA {
				rankSumA += midrank
			}
		}
		tieSum += t*t*t - t
		i = j
	}

	u := rankSumA - n1*(n1+1)/2
	mu := n1 * n2 / 2
	nTot := n1 + n2
	variance := n1 * n2 / 12 * (nTot + 1 - tieSum/(nTot*(nTot-1)))
	if variance <= 0 {
		return 1 // every value tied with every other
	}
	z := u - mu
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= math.Sqrt(variance)
	return math.Erfc(math.Abs(z) / math.Sqrt2)
}
