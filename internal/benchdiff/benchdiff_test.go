package benchdiff

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func suite(marks ...Benchmark) *Suite {
	return &Suite{Suite: "core-microbench", Benchtime: "100x", Benchmarks: marks}
}

func TestCompareIdenticalIsEmpty(t *testing.T) {
	s := suite(
		Benchmark{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 10},
		Benchmark{Name: "BenchmarkB", NsPerOp: 500, AllocsPerOp: 0},
	)
	deltas := Compare(s, s, Options{})
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
	for _, d := range deltas {
		if d.Regression || d.Improvement {
			t.Errorf("%s flagged on identical input: %+v", d.Name, d)
		}
	}
	var md strings.Builder
	if err := WriteMarkdown(&md, deltas, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(md.String(), "|") {
		t.Errorf("identical input produced table rows:\n%s", md.String())
	}
	if !strings.Contains(md.String(), "No significant deltas") {
		t.Errorf("missing no-deltas line:\n%s", md.String())
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	oldS := suite(Benchmark{Name: "BenchmarkSlow", NsPerOp: 1000}, Benchmark{Name: "BenchmarkOK", NsPerOp: 1000})
	newS := suite(Benchmark{Name: "BenchmarkSlow", NsPerOp: 1250}, Benchmark{Name: "BenchmarkOK", NsPerOp: 1010})
	deltas := Compare(oldS, newS, Options{NsThreshold: 0.10})
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Name != "BenchmarkSlow" {
		t.Fatalf("want BenchmarkSlow regression, got %+v", regs)
	}
	if regs[0].Metric != "ns/op" {
		t.Errorf("metric = %q, want ns/op", regs[0].Metric)
	}
	var md strings.Builder
	if err := WriteMarkdown(&md, deltas, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "BenchmarkSlow") || !strings.Contains(md.String(), "REGRESSION") {
		t.Errorf("markdown missing regression row:\n%s", md.String())
	}
	if strings.Contains(md.String(), "BenchmarkOK") {
		t.Errorf("markdown includes insignificant row:\n%s", md.String())
	}
}

func TestCompareFlagsImprovementAndAllocs(t *testing.T) {
	oldS := suite(Benchmark{Name: "BenchmarkFast", NsPerOp: 1000},
		Benchmark{Name: "BenchmarkAlloc", NsPerOp: 1000, AllocsPerOp: 100})
	newS := suite(Benchmark{Name: "BenchmarkFast", NsPerOp: 700},
		Benchmark{Name: "BenchmarkAlloc", NsPerOp: 1010, AllocsPerOp: 120})
	deltas := Compare(oldS, newS, Options{})
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["BenchmarkFast"]; !d.Improvement || d.Regression {
		t.Errorf("BenchmarkFast: %+v, want improvement", d)
	}
	if d := byName["BenchmarkAlloc"]; !d.Regression || d.Metric != "allocs/op" {
		t.Errorf("BenchmarkAlloc: %+v, want allocs/op regression", d)
	}
}

// A suite pair where only B/op regresses — ns/op and allocs/op flat —
// must be flagged on the bytes series alone, and the same move below
// the bytes threshold must pass clean.
func TestCompareFlagsBytesRegression(t *testing.T) {
	oldS := suite(
		Benchmark{Name: "BenchmarkBytes", NsPerOp: 1000, BytesPerOp: 4096, AllocsPerOp: 10},
		Benchmark{Name: "BenchmarkOK", NsPerOp: 1000, BytesPerOp: 4096, AllocsPerOp: 10},
	)
	newS := suite(
		// One allocation doubled in size: invisible to allocs/op.
		Benchmark{Name: "BenchmarkBytes", NsPerOp: 1005, BytesPerOp: 8192, AllocsPerOp: 10},
		Benchmark{Name: "BenchmarkOK", NsPerOp: 1005, BytesPerOp: 4200, AllocsPerOp: 10},
	)
	deltas := Compare(oldS, newS, Options{})
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Name != "BenchmarkBytes" {
		t.Fatalf("want only BenchmarkBytes regression, got %+v", regs)
	}
	if regs[0].Metric != "B/op" {
		t.Errorf("metric = %q, want B/op", regs[0].Metric)
	}
	if regs[0].OldBytes != 4096 || regs[0].NewBytes != 8192 {
		t.Errorf("bytes means: %+v", regs[0])
	}
	var md strings.Builder
	if err := WriteMarkdown(&md, deltas, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "REGRESSION** (B/op)") {
		t.Errorf("markdown missing B/op regression:\n%s", md.String())
	}

	// A generous threshold tolerates the same move.
	if regs := Regressions(Compare(oldS, newS, Options{BytesThreshold: 1.5})); len(regs) != 0 {
		t.Fatalf("bytes move above threshold 1.5: %+v", regs)
	}
	// A bytes improvement is reported as such, not as a regression.
	if d := Compare(newS, oldS, Options{})[0]; !d.Improvement || d.Metric != "B/op" {
		t.Errorf("reverse compare: %+v, want B/op improvement", d)
	}
}

// A large-looking ns/op delta whose samples overlap completely must
// be suppressed by the significance test; the same delta with cleanly
// separated samples must survive it.
func TestMannWhitneyGatesNoisyDeltas(t *testing.T) {
	noisyOld := suite(
		Benchmark{Name: "BenchmarkN", NsPerOp: 500}, Benchmark{Name: "BenchmarkN", NsPerOp: 1500},
		Benchmark{Name: "BenchmarkN", NsPerOp: 600}, Benchmark{Name: "BenchmarkN", NsPerOp: 1400},
	)
	noisyNew := suite(
		Benchmark{Name: "BenchmarkN", NsPerOp: 1500}, Benchmark{Name: "BenchmarkN", NsPerOp: 550},
		Benchmark{Name: "BenchmarkN", NsPerOp: 1450}, Benchmark{Name: "BenchmarkN", NsPerOp: 1300},
	)
	deltas := Compare(noisyOld, noisyNew, Options{NsThreshold: 0.10})
	if d := deltas[0]; d.Regression {
		t.Errorf("overlapping samples flagged as regression: %+v", d)
	}
	if math.IsNaN(deltas[0].P) {
		t.Errorf("p-value not computed for 4v4 samples: %+v", deltas[0])
	}

	sepOld := suite(
		Benchmark{Name: "BenchmarkS", NsPerOp: 1000}, Benchmark{Name: "BenchmarkS", NsPerOp: 1010},
		Benchmark{Name: "BenchmarkS", NsPerOp: 990}, Benchmark{Name: "BenchmarkS", NsPerOp: 1005},
	)
	sepNew := suite(
		Benchmark{Name: "BenchmarkS", NsPerOp: 1300}, Benchmark{Name: "BenchmarkS", NsPerOp: 1310},
		Benchmark{Name: "BenchmarkS", NsPerOp: 1290}, Benchmark{Name: "BenchmarkS", NsPerOp: 1305},
	)
	deltas = Compare(sepOld, sepNew, Options{NsThreshold: 0.10})
	if d := deltas[0]; !d.Regression {
		t.Errorf("separated +30%% samples not flagged: %+v", d)
	}
}

func TestMannWhitneyP(t *testing.T) {
	same := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if p := MannWhitneyP(same, same); p < 0.9 {
		t.Errorf("identical samples: p = %v, want ~1", p)
	}
	lo := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	hi := []float64{101, 102, 103, 104, 105, 106, 107, 108}
	if p := MannWhitneyP(lo, hi); p > 0.01 {
		t.Errorf("disjoint samples: p = %v, want < 0.01", p)
	}
	if p := MannWhitneyP(nil, hi); p != 1 {
		t.Errorf("empty side: p = %v, want 1", p)
	}
	if p := MannWhitneyP([]float64{5, 5, 5}, []float64{5, 5, 5}); p != 1 {
		t.Errorf("all tied: p = %v, want 1", p)
	}
}

func TestRatioEdgeCases(t *testing.T) {
	oldS := suite(Benchmark{Name: "BenchmarkZ", NsPerOp: 100, AllocsPerOp: 0})
	newS := suite(Benchmark{Name: "BenchmarkZ", NsPerOp: 100, AllocsPerOp: 3})
	deltas := Compare(oldS, newS, Options{})
	if d := deltas[0]; !d.Regression || d.Metric != "allocs/op" || !math.IsInf(d.AllocRatio, 1) {
		t.Errorf("0→3 allocs: %+v, want +inf allocs/op regression", d)
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	s := suite(Benchmark{Name: "BenchmarkA", NsPerOp: 1000})
	m := telemetry.NewManifest("benchdiff-test")
	if err := AppendHistory(path, s, m); err != nil {
		t.Fatal(err)
	}
	s2 := suite(Benchmark{Name: "BenchmarkA", NsPerOp: 1100})
	if err := AppendHistory(path, s2, m); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	for i, rec := range recs {
		if rec.Manifest == nil || rec.Manifest.Tool != "benchdiff-test" {
			t.Errorf("record %d manifest = %+v, want stamped", i, rec.Manifest)
		}
	}
	base, err := LatestBaseline(recs, "core-microbench")
	if err != nil {
		t.Fatal(err)
	}
	if got := base.Benchmarks[0].NsPerOp; got != 1100 {
		t.Errorf("baseline ns/op = %v, want newest record (1100)", got)
	}
}

func TestLatestBaselineIsSuiteAware(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.jsonl")
	m := telemetry.NewManifest("benchdiff-test")
	core := suite(Benchmark{Name: "BenchmarkA", NsPerOp: 1000})
	kv := &Suite{Suite: "kv-serving", Benchmarks: []Benchmark{{Name: "kv/epoch/epoch", NsPerOp: 0.05}}}
	// Interleave: core, kv, so the newest record overall is the wrong
	// suite for a core comparison.
	for _, s := range []*Suite{core, kv} {
		if err := AppendHistory(path, s, m); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	base, err := LatestBaseline(recs, "core-microbench")
	if err != nil {
		t.Fatal(err)
	}
	if base.Suite != "core-microbench" || base.Benchmarks[0].Name != "BenchmarkA" {
		t.Errorf("core baseline = %q/%q, want newest core-microbench record", base.Suite, base.Benchmarks[0].Name)
	}
	base, err = LatestBaseline(recs, "kv-serving")
	if err != nil {
		t.Fatal(err)
	}
	if base.Suite != "kv-serving" {
		t.Errorf("kv baseline suite = %q, want kv-serving", base.Suite)
	}
	// Empty suite name keeps the legacy newest-overall behavior.
	base, err = LatestBaseline(recs, "")
	if err != nil {
		t.Fatal(err)
	}
	if base.Suite != "kv-serving" {
		t.Errorf("unfiltered baseline suite = %q, want newest overall (kv-serving)", base.Suite)
	}
	// An unknown suite is a bootstrap signal, not a generic failure.
	if _, err = LatestBaseline(recs, "nope"); !errors.Is(err, ErrNoBaseline) {
		t.Errorf("unknown suite err = %v, want ErrNoBaseline", err)
	}
}

func TestReadSuiteRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(path, []byte(`{"suite":"x","benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSuite(path); err == nil {
		t.Error("empty suite accepted")
	}
}
