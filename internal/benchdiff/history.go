package benchdiff

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/telemetry"
)

// BENCH_history.jsonl: an append-only log of benchmark suites, one
// JSON record per line, each stamped with the run manifest that
// produced it. benchdiff -history compares a fresh suite against the
// newest record of the same suite name (records from different suites
// interleave freely); -append adds the fresh suite as a new record, so CI
// and local runs accumulate a machine-lineage of the hot paths.

// HistoryRecord is one line of BENCH_history.jsonl.
type HistoryRecord struct {
	Manifest *telemetry.Manifest `json:"manifest,omitempty"`
	Suite    Suite               `json:"suite"`
}

// ReadHistory parses every record in a history file, oldest first.
func ReadHistory(path string) ([]HistoryRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []HistoryRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec HistoryRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("benchdiff: %s:%d: %w", path, line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", path, err)
	}
	return out, nil
}

// LatestBaseline returns the newest record's suite whose name matches
// suite, for use as the comparison baseline. History files hold
// interleaved records from different suites (core-microbench,
// kv-serving, ...), and a baseline is only meaningful within one
// suite. An empty suite name matches any record (newest overall).
// ErrNoBaseline reports that the history holds no record of the
// requested suite — the caller may treat that as a bootstrap.
func LatestBaseline(recs []HistoryRecord, suite string) (*Suite, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("benchdiff: history is empty: %w", ErrNoBaseline)
	}
	for i := len(recs) - 1; i >= 0; i-- {
		if suite != "" && recs[i].Suite.Suite != suite {
			continue
		}
		s := recs[i].Suite
		if s.Manifest == nil {
			s.Manifest = recs[i].Manifest
		}
		return &s, nil
	}
	return nil, fmt.Errorf("benchdiff: history has no record for suite %q: %w", suite, ErrNoBaseline)
}

// ErrNoBaseline is wrapped by LatestBaseline when the history file has
// no record usable as a baseline for the requested suite.
var ErrNoBaseline = errors.New("no baseline record")

// AppendHistory appends one record to the history file, creating it
// if needed. The suite's embedded manifest is hoisted to the record;
// when the suite has none (bench_core.sh output carries no manifest),
// m stamps the record instead, so every history line has provenance.
func AppendHistory(path string, s *Suite, m *telemetry.Manifest) error {
	rec := HistoryRecord{Manifest: s.Manifest, Suite: *s}
	if rec.Manifest == nil {
		rec.Manifest = m
	}
	rec.Suite.Manifest = nil // lives on the record, not duplicated inside
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
