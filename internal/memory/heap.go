package memory

import (
	"fmt"
	"sort"
)

// Heap is a first-fit free-list allocator over one address space. The
// paper's tracing framework instruments "persistent malloc/free to
// distinguish volatile and persistent address spaces" (§7); Heap is that
// allocator. It is not safe for concurrent use; the execution engine
// serializes all simulated-machine operations, so that is the natural
// locking domain.
//
// The benchmarks allocate with 64-byte alignment because the paper pads
// objects and queue inserts "to provide 64-byte alignment to prevent
// false sharing" (§7); DefaultAlign captures that.
type Heap struct {
	space Space
	base  Addr
	limit Addr // one past the last usable address

	// free holds disjoint, address-sorted free extents.
	free []extent
	// live maps allocation base -> size for Free validation and stats.
	live map[Addr]uint64

	allocated uint64 // bytes currently allocated
	peak      uint64 // high-water mark of allocated
}

type extent struct {
	base Addr
	size uint64
}

// DefaultAlign is the allocation alignment used by the paper's
// benchmarks to avoid false sharing (§7).
const DefaultAlign = 64

// NewHeap returns a heap managing the full extent of the given space.
func NewHeap(space Space) *Heap {
	var base Addr
	var size uint64
	switch space {
	case Volatile:
		base, size = VolatileBase, VolatileSize
	case Persistent:
		base, size = PersistentBase, PersistentSize
	default:
		panic("memory: NewHeap of unmapped space")
	}
	return &Heap{
		space: space,
		base:  base,
		limit: base + Addr(size),
		free:  []extent{{base: base, size: size}},
		live:  make(map[Addr]uint64),
	}
}

// Space returns the address space this heap allocates from.
func (h *Heap) Space() Space { return h.space }

// Alloc reserves size bytes aligned to align (a power of two; 0 means
// DefaultAlign) and returns the base address. The allocator rounds the
// reservation up to a multiple of the alignment so that consecutive
// allocations never share an aligned block, mirroring the paper's
// padding discipline.
func (h *Heap) Alloc(size int, align uint64) (Addr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("memory: Alloc of non-positive size %d", size)
	}
	if align == 0 {
		align = DefaultAlign
	}
	if !IsPowerOfTwo(align) {
		return 0, fmt.Errorf("memory: Alloc alignment %d is not a power of two", align)
	}
	need := uint64(AlignUp(Addr(size), align))
	for i, e := range h.free {
		start := AlignUp(e.base, align)
		pad := uint64(start - e.base)
		if e.size < pad+need {
			continue
		}
		// Split the extent: [e.base, start) stays free as leading pad,
		// [start, start+need) is allocated, remainder stays free.
		var repl []extent
		if pad > 0 {
			repl = append(repl, extent{base: e.base, size: pad})
		}
		if rem := e.size - pad - need; rem > 0 {
			repl = append(repl, extent{base: start + Addr(need), size: rem})
		}
		h.free = append(h.free[:i], append(repl, h.free[i+1:]...)...)
		h.live[start] = need
		h.allocated += need
		if h.allocated > h.peak {
			h.peak = h.allocated
		}
		return start, nil
	}
	return 0, fmt.Errorf("memory: %s heap exhausted allocating %d bytes (align %d)", h.space, size, align)
}

// MustAlloc is Alloc that panics on failure; the simulated heaps are
// 1 GiB, so exhaustion in a benchmark is a programming error.
func (h *Heap) MustAlloc(size int, align uint64) Addr {
	a, err := h.Alloc(size, align)
	if err != nil {
		panic(err)
	}
	return a
}

// Free releases a previous allocation, coalescing adjacent free extents.
func (h *Heap) Free(a Addr) error {
	size, ok := h.live[a]
	if !ok {
		return fmt.Errorf("memory: Free of %#x which is not a live allocation", uint64(a))
	}
	delete(h.live, a)
	h.allocated -= size

	// Insert in address order, then coalesce with neighbors.
	i := sort.Search(len(h.free), func(i int) bool { return h.free[i].base >= a })
	h.free = append(h.free, extent{})
	copy(h.free[i+1:], h.free[i:])
	h.free[i] = extent{base: a, size: size}
	// Coalesce with successor first so index i stays valid.
	if i+1 < len(h.free) && h.free[i].base+Addr(h.free[i].size) == h.free[i+1].base {
		h.free[i].size += h.free[i+1].size
		h.free = append(h.free[:i+1], h.free[i+2:]...)
	}
	if i > 0 && h.free[i-1].base+Addr(h.free[i-1].size) == h.free[i].base {
		h.free[i-1].size += h.free[i].size
		h.free = append(h.free[:i], h.free[i+1:]...)
	}
	return nil
}

// SizeOf returns the reserved size of the live allocation at a, or 0 if
// a is not a live allocation base.
func (h *Heap) SizeOf(a Addr) uint64 { return h.live[a] }

// Allocated returns the number of bytes currently reserved.
func (h *Heap) Allocated() uint64 { return h.allocated }

// Peak returns the allocation high-water mark in bytes.
func (h *Heap) Peak() uint64 { return h.peak }

// LiveCount returns the number of live allocations.
func (h *Heap) LiveCount() int { return len(h.live) }

// checkInvariants verifies free-list ordering, disjointness, and
// accounting; it is exported to tests via export_test.go.
func (h *Heap) checkInvariants() error {
	var freeBytes uint64
	for i, e := range h.free {
		if e.size == 0 {
			return fmt.Errorf("empty free extent at %d", i)
		}
		if e.base < h.base || e.base+Addr(e.size) > h.limit {
			return fmt.Errorf("free extent %d out of bounds", i)
		}
		if i > 0 {
			prev := h.free[i-1]
			if prev.base+Addr(prev.size) > e.base {
				return fmt.Errorf("free extents %d,%d overlap or are unsorted", i-1, i)
			}
			if prev.base+Addr(prev.size) == e.base {
				return fmt.Errorf("free extents %d,%d not coalesced", i-1, i)
			}
		}
		freeBytes += e.size
	}
	var liveBytes uint64
	for _, s := range h.live {
		liveBytes += s
	}
	if liveBytes != h.allocated {
		return fmt.Errorf("allocated accounting mismatch: %d vs %d", liveBytes, h.allocated)
	}
	total := uint64(h.limit - h.base)
	if freeBytes+liveBytes != total {
		return fmt.Errorf("bytes leak: free %d + live %d != %d", freeBytes, liveBytes, total)
	}
	return nil
}
