package memory

// CheckInvariants exposes heap invariant checking to tests.
func (h *Heap) CheckInvariants() error { return h.checkInvariants() }

// FreeExtents returns the number of free-list extents, for coalescing
// tests.
func (h *Heap) FreeExtents() int { return len(h.free) }
