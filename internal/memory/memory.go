// Package memory models the simulated machine's address spaces.
//
// The paper assumes a system that "provides both volatile and persistent
// address spaces" (§2.1). We model both as ranges of a single 64-bit
// simulated address space. Nothing in this package stores data; it only
// defines addressing, alignment, and block arithmetic used by the trace,
// execution, and persistency-simulation layers, plus a heap allocator
// (persistent malloc/free is one of the annotations the paper's tracing
// framework records, §7) and Image, a byte-accurate snapshot of the
// persistent space used to materialize post-crash states.
package memory

import "fmt"

// Addr is a simulated memory address. Addresses are byte-granular.
type Addr uint64

// Space identifies which address space an address belongs to.
type Space uint8

const (
	// Unmapped marks addresses outside both simulated spaces.
	Unmapped Space = iota
	// Volatile is the DRAM-like space: contents are lost on failure.
	Volatile
	// Persistent is the NVRAM space: stores to it are persists.
	Persistent
)

// String returns the conventional lower-case name of the space.
func (s Space) String() string {
	switch s {
	case Volatile:
		return "volatile"
	case Persistent:
		return "persistent"
	default:
		return "unmapped"
	}
}

// Address-space layout. The bases are arbitrary but far apart; keeping
// them fixed makes traces reproducible and lets tools classify addresses
// without carrying a layout around.
const (
	// VolatileBase is the first address of the volatile space.
	VolatileBase Addr = 0x0000_0000_1000_0000
	// VolatileSize is the extent of the volatile space.
	VolatileSize uint64 = 1 << 30
	// PersistentBase is the first address of the persistent space.
	PersistentBase Addr = 0x0000_0001_0000_0000
	// PersistentSize is the extent of the persistent space: 1 TiB, far
	// more than any workload materializes. The execution layer's memory
	// cost is proportional to *touched* data (interval-indexed sparse
	// pages), so a huge space is free; it exists so workloads can spread
	// structures across distant addresses the way real NVRAM mappings
	// do.
	PersistentSize uint64 = 1 << 40
)

// WordSize is the machine word size in bytes. The paper assumes NVRAM
// "persists atomically to at least eight-byte (pointer-sized) blocks"
// (§8.2); eight bytes is also the minimum persist and tracking
// granularity throughout.
const WordSize = 8

// SpaceOf classifies an address.
func SpaceOf(a Addr) Space {
	switch {
	case a >= VolatileBase && uint64(a-VolatileBase) < VolatileSize:
		return Volatile
	case a >= PersistentBase && uint64(a-PersistentBase) < PersistentSize:
		return Persistent
	default:
		return Unmapped
	}
}

// IsPersistent reports whether a lies in the persistent address space.
func IsPersistent(a Addr) bool { return SpaceOf(a) == Persistent }

// IsVolatile reports whether a lies in the volatile address space.
func IsVolatile(a Addr) bool { return SpaceOf(a) == Volatile }

// AlignDown rounds a down to a multiple of align, which must be a power
// of two.
func AlignDown(a Addr, align uint64) Addr {
	return a &^ Addr(align-1)
}

// AlignUp rounds a up to a multiple of align, which must be a power of
// two.
func AlignUp(a Addr, align uint64) Addr {
	return (a + Addr(align-1)) &^ Addr(align-1)
}

// IsPowerOfTwo reports whether v is a positive power of two.
func IsPowerOfTwo(v uint64) bool { return v != 0 && v&(v-1) == 0 }

// BlockID identifies an aligned block of a given granularity. Block ids
// of different granularities live in different namespaces; callers must
// not mix them.
type BlockID uint64

// NoBlock is a sentinel BlockID meaning "no block" (used by persist
// contexts to mean a dependence that has no single source block).
const NoBlock BlockID = ^BlockID(0)

// BlockOf maps an address to its enclosing block id at granularity gran
// (a power of two ≥ WordSize).
func BlockOf(a Addr, gran uint64) BlockID {
	return BlockID(uint64(a) / gran)
}

// BlockBase returns the first address of block b at granularity gran.
func BlockBase(b BlockID, gran uint64) Addr {
	return Addr(uint64(b) * gran)
}

// BlockSpan returns the ids of the first and last blocks (inclusive) at
// granularity gran touched by the byte range [a, a+size).
func BlockSpan(a Addr, size int, gran uint64) (first, last BlockID) {
	if size <= 0 {
		b := BlockOf(a, gran)
		return b, b
	}
	return BlockOf(a, gran), BlockOf(a+Addr(size)-1, gran)
}

// CheckRange validates that [a, a+size) lies entirely within one address
// space and does not wrap. It returns the space on success.
func CheckRange(a Addr, size int) (Space, error) {
	if size <= 0 {
		return Unmapped, fmt.Errorf("memory: non-positive access size %d at %#x", size, uint64(a))
	}
	s := SpaceOf(a)
	if s == Unmapped {
		return Unmapped, fmt.Errorf("memory: access to unmapped address %#x", uint64(a))
	}
	end := a + Addr(size) - 1
	if SpaceOf(end) != s {
		return Unmapped, fmt.Errorf("memory: access [%#x,%#x] crosses out of the %s space", uint64(a), uint64(end), s)
	}
	return s, nil
}
