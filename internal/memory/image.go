package memory

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Image is a byte-accurate, sparse snapshot of the persistent address
// space. The recovery observer materializes an Image by replaying the
// subset of persists contained in a consistent cut of the persist-order
// DAG; recovery procedures then read the queue (or other structure) back
// out of the Image exactly as post-failure software would read NVRAM.
//
// Storage is a map of aligned 8-byte words; untouched words read as
// zero, matching NVRAM that was never written. Image is not safe for
// concurrent use.
//
// An Image additionally carries a *poison set*: words the simulated
// device reports as detectable-uncorrectable media errors (the ECC
// fired but could not correct). Reads of poisoned words still return
// the stored — possibly corrupted — bytes; fault-tolerant recovery
// routines consult Poisoned/RangePoisoned and must quarantine, not
// trust, such data. Silent media errors (flips the ECC misses) are
// modeled by FlipBit without a poison mark.
type Image struct {
	words  map[Addr]uint64
	poison map[Addr]struct{}

	// Optional access hooks (nil unless Observe was called). onRead
	// fires once per word loaded with the value returned; onWrite once
	// per word stored. The exhaustive checker uses them to memoize
	// recovery outcomes by the exact word set a recovery read.
	onRead  func(a Addr, v uint64)
	onWrite func(a Addr)
}

// NewImage returns an empty persistent-space snapshot.
func NewImage() *Image {
	return &Image{words: make(map[Addr]uint64)}
}

// Clone returns a deep copy of the image, poison marks included.
func (im *Image) Clone() *Image {
	c := NewImage()
	for a, w := range im.words {
		c.words[a] = w
	}
	if len(im.poison) > 0 {
		c.poison = make(map[Addr]struct{}, len(im.poison))
		for a := range im.poison {
			c.poison[a] = struct{}{}
		}
	}
	return c
}

// Observe installs word-granular access hooks: onRead fires once per
// word loaded (with the value returned), onWrite once per word stored.
// Either may be nil. Hooks are not copied by Clone. Observed reads see
// the image as recovery does — a read of a never-written word reports
// value zero.
func (im *Image) Observe(onRead func(a Addr, v uint64), onWrite func(a Addr)) {
	im.onRead = onRead
	im.onWrite = onWrite
}

// FlipBit inverts one bit of the byte at address a (bit in 0..7),
// modeling a media bit error. The word containing a need not have been
// written: never-written NVRAM can rot too.
func (im *Image) FlipBit(a Addr, bit uint8) {
	if bit > 7 {
		panic(fmt.Sprintf("memory: FlipBit bit %d out of range", bit))
	}
	w := AlignDown(a, WordSize)
	im.words[w] ^= 1 << (8*uint(a-w) + uint(bit))
}

// Poison marks the word containing a as a detectable-uncorrectable
// media error.
func (im *Image) Poison(a Addr) {
	if im.poison == nil {
		im.poison = make(map[Addr]struct{})
	}
	im.poison[AlignDown(a, WordSize)] = struct{}{}
}

// Poisoned reports whether the word containing a carries a detectable
// media error.
func (im *Image) Poisoned(a Addr) bool {
	_, ok := im.poison[AlignDown(a, WordSize)]
	return ok
}

// RangePoisoned reports whether any word overlapping [a, a+size)
// carries a detectable media error.
func (im *Image) RangePoisoned(a Addr, size int) bool {
	if len(im.poison) == 0 || size <= 0 {
		return false
	}
	for w := AlignDown(a, WordSize); w < a+Addr(size); w += WordSize {
		if _, ok := im.poison[w]; ok {
			return true
		}
	}
	return false
}

// PoisonedWords returns the number of words marked poisoned.
func (im *Image) PoisonedWords() int { return len(im.poison) }

// WriteWord stores an 8-byte value at an 8-byte-aligned persistent
// address. It panics on misalignment or a non-persistent address:
// persists are produced by the simulator, which must have validated
// them already.
func (im *Image) WriteWord(a Addr, v uint64) {
	if a%WordSize != 0 {
		panic(fmt.Sprintf("memory: Image.WriteWord misaligned address %#x", uint64(a)))
	}
	if !IsPersistent(a) {
		panic(fmt.Sprintf("memory: Image.WriteWord to non-persistent address %#x", uint64(a)))
	}
	im.words[a] = v
	if im.onWrite != nil {
		im.onWrite(a)
	}
}

// ReadWord loads the 8-byte value at an aligned persistent address;
// never-written words read as zero.
func (im *Image) ReadWord(a Addr) uint64 {
	if a%WordSize != 0 {
		panic(fmt.Sprintf("memory: Image.ReadWord misaligned address %#x", uint64(a)))
	}
	v := im.words[a]
	if im.onRead != nil {
		im.onRead(a, v)
	}
	return v
}

// WriteBytes stores an arbitrary byte range (read-modify-write of the
// covering words). The simulator issues only word-sized persists, but
// recovery helpers and tests use byte granularity.
func (im *Image) WriteBytes(a Addr, b []byte) {
	last := Addr(1) // impossible word address (words are 8-aligned)
	for i := 0; i < len(b); i++ {
		addr := a + Addr(i)
		w := AlignDown(addr, WordSize)
		word := im.words[w]
		var buf [WordSize]byte
		binary.LittleEndian.PutUint64(buf[:], word)
		buf[addr-w] = b[i]
		im.words[w] = binary.LittleEndian.Uint64(buf[:])
		if im.onWrite != nil && w != last {
			im.onWrite(w)
			last = w
		}
	}
}

// ReadBytes fills b with the contents at address a.
func (im *Image) ReadBytes(a Addr, b []byte) {
	last := Addr(1)
	for i := 0; i < len(b); i++ {
		addr := a + Addr(i)
		w := AlignDown(addr, WordSize)
		word := im.words[w]
		var buf [WordSize]byte
		binary.LittleEndian.PutUint64(buf[:], word)
		b[i] = buf[addr-w]
		if im.onRead != nil && w != last {
			im.onRead(w, word)
			last = w
		}
	}
}

// WrittenWords returns the addresses of all explicitly written words in
// ascending order. Tests use it to compare images.
func (im *Image) WrittenWords() []Addr {
	out := make([]Addr, 0, len(im.words))
	for a := range im.words {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports whether two images contain identical content (treating
// unwritten words as zero). Poison marks are metadata, not content, and
// are ignored.
func (im *Image) Equal(other *Image) bool {
	for a, w := range im.words {
		if other.words[a] != w {
			return false
		}
	}
	for a, w := range other.words {
		if im.words[a] != w {
			return false
		}
	}
	return true
}
