package memory

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Image is a byte-accurate, sparse snapshot of the persistent address
// space. The recovery observer materializes an Image by replaying the
// subset of persists contained in a consistent cut of the persist-order
// DAG; recovery procedures then read the queue (or other structure) back
// out of the Image exactly as post-failure software would read NVRAM.
//
// Storage is a map of aligned 8-byte words; untouched words read as
// zero, matching NVRAM that was never written. Image is not safe for
// concurrent use.
type Image struct {
	words map[Addr]uint64
}

// NewImage returns an empty persistent-space snapshot.
func NewImage() *Image {
	return &Image{words: make(map[Addr]uint64)}
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	c := NewImage()
	for a, w := range im.words {
		c.words[a] = w
	}
	return c
}

// WriteWord stores an 8-byte value at an 8-byte-aligned persistent
// address. It panics on misalignment or a non-persistent address:
// persists are produced by the simulator, which must have validated
// them already.
func (im *Image) WriteWord(a Addr, v uint64) {
	if a%WordSize != 0 {
		panic(fmt.Sprintf("memory: Image.WriteWord misaligned address %#x", uint64(a)))
	}
	if !IsPersistent(a) {
		panic(fmt.Sprintf("memory: Image.WriteWord to non-persistent address %#x", uint64(a)))
	}
	im.words[a] = v
}

// ReadWord loads the 8-byte value at an aligned persistent address;
// never-written words read as zero.
func (im *Image) ReadWord(a Addr) uint64 {
	if a%WordSize != 0 {
		panic(fmt.Sprintf("memory: Image.ReadWord misaligned address %#x", uint64(a)))
	}
	return im.words[a]
}

// WriteBytes stores an arbitrary byte range (read-modify-write of the
// covering words). The simulator issues only word-sized persists, but
// recovery helpers and tests use byte granularity.
func (im *Image) WriteBytes(a Addr, b []byte) {
	for i := 0; i < len(b); i++ {
		addr := a + Addr(i)
		w := AlignDown(addr, WordSize)
		word := im.words[w]
		var buf [WordSize]byte
		binary.LittleEndian.PutUint64(buf[:], word)
		buf[addr-w] = b[i]
		im.words[w] = binary.LittleEndian.Uint64(buf[:])
	}
}

// ReadBytes fills b with the contents at address a.
func (im *Image) ReadBytes(a Addr, b []byte) {
	for i := 0; i < len(b); i++ {
		addr := a + Addr(i)
		w := AlignDown(addr, WordSize)
		var buf [WordSize]byte
		binary.LittleEndian.PutUint64(buf[:], im.words[w])
		b[i] = buf[addr-w]
	}
}

// WrittenWords returns the addresses of all explicitly written words in
// ascending order. Tests use it to compare images.
func (im *Image) WrittenWords() []Addr {
	out := make([]Addr, 0, len(im.words))
	for a := range im.words {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports whether two images contain identical content (treating
// unwritten words as zero).
func (im *Image) Equal(other *Image) bool {
	for a, w := range im.words {
		if other.words[a] != w {
			return false
		}
	}
	for a, w := range other.words {
		if im.words[a] != w {
			return false
		}
	}
	return true
}
