package memory

import (
	"testing"
	"testing/quick"
)

func TestSpaceOf(t *testing.T) {
	cases := []struct {
		a    Addr
		want Space
	}{
		{0, Unmapped},
		{VolatileBase, Volatile},
		{VolatileBase + Addr(VolatileSize) - 1, Volatile},
		{VolatileBase + Addr(VolatileSize), Unmapped},
		{PersistentBase, Persistent},
		{PersistentBase + Addr(PersistentSize) - 1, Persistent},
		{PersistentBase + Addr(PersistentSize), Unmapped},
		{VolatileBase - 1, Unmapped},
	}
	for _, c := range cases {
		if got := SpaceOf(c.a); got != c.want {
			t.Errorf("SpaceOf(%#x) = %v, want %v", uint64(c.a), got, c.want)
		}
	}
}

func TestSpaceString(t *testing.T) {
	if Volatile.String() != "volatile" || Persistent.String() != "persistent" || Unmapped.String() != "unmapped" {
		t.Fatalf("Space.String wrong: %v %v %v", Volatile, Persistent, Unmapped)
	}
}

func TestIsPersistentIsVolatile(t *testing.T) {
	if !IsPersistent(PersistentBase + 8) {
		t.Error("PersistentBase+8 should be persistent")
	}
	if IsPersistent(VolatileBase) {
		t.Error("VolatileBase should not be persistent")
	}
	if !IsVolatile(VolatileBase + 100) {
		t.Error("VolatileBase+100 should be volatile")
	}
}

func TestAlignment(t *testing.T) {
	if AlignDown(0x1007, 8) != 0x1000 {
		t.Errorf("AlignDown wrong: %#x", uint64(AlignDown(0x1007, 8)))
	}
	if AlignUp(0x1001, 8) != 0x1008 {
		t.Errorf("AlignUp wrong: %#x", uint64(AlignUp(0x1001, 8)))
	}
	if AlignUp(0x1000, 8) != 0x1000 {
		t.Error("AlignUp should be identity on aligned addresses")
	}
}

func TestAlignProperties(t *testing.T) {
	f := func(a uint64, shift uint8) bool {
		align := uint64(1) << (shift % 12)
		ad := AlignDown(Addr(a), align)
		au := AlignUp(Addr(a%(1<<60)), align)
		if uint64(ad)%align != 0 || uint64(au)%align != 0 {
			return false
		}
		if ad > Addr(a) {
			return false
		}
		if au < Addr(a%(1<<60)) {
			return false
		}
		return uint64(au)-(a%(1<<60)) < align && a-uint64(ad) < align
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, v := range []uint64{1, 2, 4, 8, 64, 1 << 30} {
		if !IsPowerOfTwo(v) {
			t.Errorf("%d should be a power of two", v)
		}
	}
	for _, v := range []uint64{0, 3, 6, 12, 100, 1<<30 + 1} {
		if IsPowerOfTwo(v) {
			t.Errorf("%d should not be a power of two", v)
		}
	}
}

func TestBlockArithmetic(t *testing.T) {
	a := PersistentBase + 100
	b := BlockOf(a, 64)
	if base := BlockBase(b, 64); base > a || a-base >= 64 {
		t.Errorf("BlockBase/BlockOf inconsistent: addr %#x base %#x", uint64(a), uint64(base))
	}
	first, last := BlockSpan(PersistentBase, 64, 64)
	if first != last {
		t.Errorf("64-byte access aligned to a 64-byte block should span one block, got %d..%d", first, last)
	}
	first, last = BlockSpan(PersistentBase+32, 64, 64)
	if last != first+1 {
		t.Errorf("straddling access should span two blocks, got %d..%d", first, last)
	}
	first, last = BlockSpan(PersistentBase, 0, 64)
	if first != last {
		t.Error("zero-size span should be a single block")
	}
}

func TestCheckRange(t *testing.T) {
	if _, err := CheckRange(PersistentBase, 8); err != nil {
		t.Errorf("valid range rejected: %v", err)
	}
	if _, err := CheckRange(PersistentBase, 0); err == nil {
		t.Error("zero-size range accepted")
	}
	if _, err := CheckRange(0, 8); err == nil {
		t.Error("unmapped range accepted")
	}
	if _, err := CheckRange(PersistentBase+Addr(PersistentSize)-4, 8); err == nil {
		t.Error("range crossing out of space accepted")
	}
	if s, err := CheckRange(VolatileBase+8, 16); err != nil || s != Volatile {
		t.Errorf("volatile range: %v %v", s, err)
	}
}
