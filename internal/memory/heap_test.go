package memory

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHeapAllocBasics(t *testing.T) {
	h := NewHeap(Persistent)
	a, err := h.Alloc(100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !IsPersistent(a) {
		t.Fatalf("allocation %#x not in persistent space", uint64(a))
	}
	if uint64(a)%64 != 0 {
		t.Fatalf("allocation %#x not 64-byte aligned", uint64(a))
	}
	if h.SizeOf(a) != 128 {
		t.Fatalf("100 bytes at align 64 should reserve 128, got %d", h.SizeOf(a))
	}
	if h.Allocated() != 128 || h.LiveCount() != 1 {
		t.Fatalf("accounting wrong: %d bytes, %d live", h.Allocated(), h.LiveCount())
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapDefaultAlign(t *testing.T) {
	h := NewHeap(Volatile)
	a := h.MustAlloc(8, 0)
	if uint64(a)%DefaultAlign != 0 {
		t.Fatalf("default alignment not applied: %#x", uint64(a))
	}
}

func TestHeapAllocErrors(t *testing.T) {
	h := NewHeap(Volatile)
	if _, err := h.Alloc(0, 8); err == nil {
		t.Error("Alloc(0) should fail")
	}
	if _, err := h.Alloc(-5, 8); err == nil {
		t.Error("Alloc(-5) should fail")
	}
	if _, err := h.Alloc(8, 3); err == nil {
		t.Error("non-power-of-two alignment should fail")
	}
	if _, err := h.Alloc(int(VolatileSize)+1, 8); err == nil {
		t.Error("oversized allocation should fail")
	}
}

func TestHeapFreeErrors(t *testing.T) {
	h := NewHeap(Volatile)
	if err := h.Free(VolatileBase); err == nil {
		t.Error("Free of never-allocated address should fail")
	}
	a := h.MustAlloc(64, 64)
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err == nil {
		t.Error("double Free should fail")
	}
}

func TestHeapAllocationsDisjoint(t *testing.T) {
	h := NewHeap(Persistent)
	type span struct{ base, end Addr }
	var spans []span
	for i := 0; i < 100; i++ {
		size := 1 + i*7%200
		a := h.MustAlloc(size, 8)
		spans = append(spans, span{a, a + Addr(size)})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].base < spans[j].end && spans[j].base < spans[i].end {
				t.Fatalf("allocations %d and %d overlap", i, j)
			}
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapCoalescing(t *testing.T) {
	h := NewHeap(Volatile)
	var addrs []Addr
	for i := 0; i < 10; i++ {
		addrs = append(addrs, h.MustAlloc(64, 64))
	}
	// Free everything; all extents must coalesce back into one.
	for _, a := range addrs {
		if err := h.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	if h.FreeExtents() != 1 {
		t.Fatalf("heap not fully coalesced: %d extents", h.FreeExtents())
	}
	if h.Allocated() != 0 {
		t.Fatalf("bytes leaked: %d", h.Allocated())
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapPeak(t *testing.T) {
	h := NewHeap(Volatile)
	a := h.MustAlloc(64, 64)
	b := h.MustAlloc(64, 64)
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(b); err != nil {
		t.Fatal(err)
	}
	if h.Peak() != 128 {
		t.Fatalf("peak should be 128, got %d", h.Peak())
	}
}

// TestHeapRandomizedInvariants drives a random alloc/free sequence and
// checks the structural invariants after every operation.
func TestHeapRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHeap(Persistent)
	var live []Addr
	for step := 0; step < 2000; step++ {
		if len(live) == 0 || rng.Intn(2) == 0 {
			size := 1 + rng.Intn(512)
			align := uint64(8) << rng.Intn(4)
			a, err := h.Alloc(size, align)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if uint64(a)%align != 0 {
				t.Fatalf("step %d: misaligned %#x %% %d", step, uint64(a), align)
			}
			live = append(live, a)
		} else {
			i := rng.Intn(len(live))
			if err := h.Free(live[i]); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			live = append(live[:i], live[i+1:]...)
		}
		if step%97 == 0 {
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	for _, a := range live {
		if err := h.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.FreeExtents() != 1 {
		t.Fatalf("after freeing all, %d extents", h.FreeExtents())
	}
}

// Property: an allocation of any size/alignment combination either fails
// or yields an aligned, in-space address.
func TestHeapAllocProperty(t *testing.T) {
	h := NewHeap(Volatile)
	f := func(sz uint16, shift uint8) bool {
		size := int(sz%4096) + 1
		align := uint64(8) << (shift % 5)
		a, err := h.Alloc(size, align)
		if err != nil {
			return true // exhaustion is acceptable
		}
		defer h.Free(a)
		return uint64(a)%align == 0 && IsVolatile(a) && IsVolatile(a+Addr(size)-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
