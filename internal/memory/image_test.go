package memory

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestImageWordRoundTrip(t *testing.T) {
	im := NewImage()
	a := PersistentBase + 128
	im.WriteWord(a, 0xdeadbeefcafef00d)
	if got := im.ReadWord(a); got != 0xdeadbeefcafef00d {
		t.Fatalf("ReadWord = %#x", got)
	}
	if got := im.ReadWord(a + 8); got != 0 {
		t.Fatalf("unwritten word should read zero, got %#x", got)
	}
}

func TestImageMisalignedPanics(t *testing.T) {
	im := NewImage()
	defer func() {
		if recover() == nil {
			t.Error("misaligned WriteWord should panic")
		}
	}()
	im.WriteWord(PersistentBase+4, 1)
}

func TestImageNonPersistentPanics(t *testing.T) {
	im := NewImage()
	defer func() {
		if recover() == nil {
			t.Error("WriteWord to volatile space should panic")
		}
	}()
	im.WriteWord(VolatileBase, 1)
}

func TestImageBytes(t *testing.T) {
	im := NewImage()
	a := PersistentBase + 3 // deliberately unaligned
	src := []byte("memory persistency!")
	im.WriteBytes(a, src)
	dst := make([]byte, len(src))
	im.ReadBytes(a, dst)
	if !bytes.Equal(src, dst) {
		t.Fatalf("byte round trip: %q != %q", dst, src)
	}
}

func TestImageBytesPreserveNeighbors(t *testing.T) {
	im := NewImage()
	base := PersistentBase + 64
	im.WriteWord(base, 0x1111111111111111)
	im.WriteBytes(base+2, []byte{0xff})
	var buf [8]byte
	im.ReadBytes(base, buf[:])
	want := [8]byte{0x11, 0x11, 0xff, 0x11, 0x11, 0x11, 0x11, 0x11}
	if buf != want {
		t.Fatalf("neighbor bytes clobbered: % x", buf)
	}
}

func TestImageCloneAndEqual(t *testing.T) {
	im := NewImage()
	im.WriteWord(PersistentBase, 7)
	c := im.Clone()
	if !im.Equal(c) {
		t.Fatal("clone should be equal")
	}
	c.WriteWord(PersistentBase+8, 9)
	if im.Equal(c) {
		t.Fatal("diverged clone should not be equal")
	}
	// Zero-valued explicit writes equal implicit zeros.
	d := NewImage()
	d.WriteWord(PersistentBase+16, 0)
	if !d.Equal(NewImage()) {
		t.Fatal("explicit zero should equal unwritten zero")
	}
}

func TestImageWrittenWordsSorted(t *testing.T) {
	im := NewImage()
	im.WriteWord(PersistentBase+24, 1)
	im.WriteWord(PersistentBase+8, 1)
	im.WriteWord(PersistentBase+16, 1)
	ws := im.WrittenWords()
	for i := 1; i < len(ws); i++ {
		if ws[i-1] >= ws[i] {
			t.Fatalf("WrittenWords unsorted: %v", ws)
		}
	}
	if len(ws) != 3 {
		t.Fatalf("want 3 words, got %d", len(ws))
	}
}

func TestImageFlipBit(t *testing.T) {
	im := NewImage()
	a := PersistentBase + 40
	im.WriteWord(a, 0)
	im.FlipBit(a+3, 5) // byte 3, bit 5
	if got, want := im.ReadWord(a), uint64(1)<<(8*3+5); got != want {
		t.Fatalf("FlipBit: got %#x want %#x", got, want)
	}
	im.FlipBit(a+3, 5) // flipping twice restores
	if got := im.ReadWord(a); got != 0 {
		t.Fatalf("double flip should restore zero, got %#x", got)
	}
	// Flipping an unwritten word materializes it.
	im.FlipBit(PersistentBase+1024, 0)
	if got := im.ReadWord(PersistentBase + 1024); got != 1 {
		t.Fatalf("flip of unwritten word: got %#x", got)
	}
}

func TestImagePoison(t *testing.T) {
	im := NewImage()
	a := PersistentBase + 64
	if im.Poisoned(a) || im.RangePoisoned(a, 64) {
		t.Fatal("fresh image should not be poisoned")
	}
	im.Poison(a + 5) // marks the containing word
	if !im.Poisoned(a) {
		t.Fatal("word containing poisoned byte should report poisoned")
	}
	if im.Poisoned(a + 8) {
		t.Fatal("neighbor word should not be poisoned")
	}
	if !im.RangePoisoned(a-16, 24) {
		t.Fatal("range overlapping the poisoned word should report poisoned")
	}
	if im.RangePoisoned(a-16, 16) {
		t.Fatal("range short of the poisoned word should be clean")
	}
	if im.PoisonedWords() != 1 {
		t.Fatalf("PoisonedWords = %d", im.PoisonedWords())
	}
	// Clone carries poison; Equal ignores it.
	c := im.Clone()
	if !c.Poisoned(a) {
		t.Fatal("clone should carry poison marks")
	}
	if !c.Equal(im) {
		t.Fatal("poison marks must not affect Equal")
	}
}

// Property: WriteBytes then ReadBytes is identity for any offset/content.
func TestImageByteProperty(t *testing.T) {
	f := func(off uint16, data []byte) bool {
		if len(data) > 256 {
			data = data[:256]
		}
		if len(data) == 0 {
			return true
		}
		im := NewImage()
		a := PersistentBase + Addr(off)
		im.WriteBytes(a, data)
		out := make([]byte, len(data))
		im.ReadBytes(a, out)
		return bytes.Equal(data, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
