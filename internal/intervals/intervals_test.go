package intervals

import (
	"math/rand"
	"testing"
)

// checkInvariants asserts the structural invariants of the sorted
// slab: entries non-empty, strictly ordered, disjoint, and (when
// coalescing is on) no adjacent equal-valued entries sharing an edge.
func checkInvariants(t *testing.T, m *Map[uint64, int]) {
	t.Helper()
	for i, e := range m.ents {
		if e.hi <= e.lo {
			t.Fatalf("entry %d empty: [%d,%d)", i, e.lo, e.hi)
		}
		if i > 0 {
			p := m.ents[i-1]
			if p.hi > e.lo {
				t.Fatalf("entries %d,%d overlap or unsorted: [%d,%d) [%d,%d)", i-1, i, p.lo, p.hi, e.lo, e.hi)
			}
			if m.eq != nil && p.hi == e.lo && m.eq(p.v, e.v) {
				t.Fatalf("uncoalesced adjacent equal entries at %d: [%d,%d)=%d [%d,%d)=%d", i, p.lo, p.hi, p.v, e.lo, e.hi, e.v)
			}
		}
	}
}

// contents flattens the map to per-key values for reference
// comparison.
func contents(m *Map[uint64, int], span uint64) map[uint64]int {
	out := map[uint64]int{}
	m.EachAll(func(r Range[uint64], v int) bool {
		for k := r.Lo; k < r.Hi; k++ {
			if k < span {
				out[k] = v
			}
		}
		return true
	})
	return out
}

func intEq(a, b int) bool { return a == b }

func TestMapBasic(t *testing.T) {
	m := NewMap[uint64, int](intEq)
	m.Set(10, 20, 1)
	m.Set(30, 40, 2)
	if v, ok := m.Get(15); !ok || v != 1 {
		t.Fatalf("Get(15) = %d,%v", v, ok)
	}
	if _, ok := m.Get(25); ok {
		t.Fatal("Get(25) should miss")
	}
	if !m.Overlaps(5, 11) || m.Overlaps(20, 30) || !m.Overlaps(39, 50) {
		t.Fatal("Overlaps wrong")
	}
	// Split: overwrite the middle of [10,20).
	m.Set(13, 16, 7)
	want := []struct {
		lo, hi uint64
		v      int
	}{{10, 13, 1}, {13, 16, 7}, {16, 20, 1}, {30, 40, 2}}
	var got []struct {
		lo, hi uint64
		v      int
	}
	m.EachAll(func(r Range[uint64], v int) bool {
		got = append(got, struct {
			lo, hi uint64
			v      int
		}{r.Lo, r.Hi, v})
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("entries = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Coalesce: restoring the middle merges all three back.
	m.Set(13, 16, 1)
	if m.Len() != 2 {
		t.Fatalf("after coalescing Len = %d, want 2", m.Len())
	}
	r, v, ok := m.Find(19)
	if !ok || v != 1 || r.Lo != 10 || r.Hi != 20 {
		t.Fatalf("Find(19) = %v %d %v", r, v, ok)
	}
	// Each clips to the query range.
	m.Each(15, 35, func(r Range[uint64], v int) bool {
		if r.Lo < 15 || r.Hi > 35 {
			t.Fatalf("unclipped range %v", r)
		}
		return true
	})
	// Delete splits.
	m.Delete(12, 18)
	if _, ok := m.Get(15); ok {
		t.Fatal("deleted key still present")
	}
	if v, ok := m.Get(11); !ok || v != 1 {
		t.Fatal("head survivor missing")
	}
	if v, ok := m.Get(18); !ok || v != 1 {
		t.Fatal("tail survivor missing")
	}
}

func TestMapUpdateGaps(t *testing.T) {
	m := NewMap[uint64, int](intEq)
	m.Set(10, 12, 5)
	m.Set(14, 16, 6)
	var tiles []Range[uint64]
	var present []bool
	m.Update(8, 18, func(r Range[uint64], v int, ok bool) (int, bool) {
		tiles = append(tiles, r)
		present = append(present, ok)
		if !ok {
			return 9, true // materialize gaps
		}
		return v + 1, true
	})
	wantTiles := []Range[uint64]{{8, 10}, {10, 12}, {12, 14}, {14, 16}, {16, 18}}
	wantPresent := []bool{false, true, false, true, false}
	if len(tiles) != len(wantTiles) {
		t.Fatalf("tiles = %v", tiles)
	}
	for i := range wantTiles {
		if tiles[i] != wantTiles[i] || present[i] != wantPresent[i] {
			t.Fatalf("tile %d = %v/%v, want %v/%v", i, tiles[i], present[i], wantTiles[i], wantPresent[i])
		}
	}
	for k, want := range map[uint64]int{8: 9, 10: 6, 12: 9, 14: 7, 16: 9} {
		if v, _ := m.Get(k); v != want {
			t.Fatalf("Get(%d) = %d, want %d", k, v, want)
		}
	}
	// keep=false drops tiles.
	m.Update(0, 100, func(r Range[uint64], v int, ok bool) (int, bool) { return 0, false })
	if m.Len() != 0 {
		t.Fatalf("Len after drop-all = %d", m.Len())
	}
}

// applyRef mirrors one operation onto the naive per-key reference.
type refModel struct {
	vals map[uint64]int
}

func (r *refModel) set(lo, hi uint64, v int) {
	for k := lo; k < hi; k++ {
		r.vals[k] = v
	}
}

func (r *refModel) del(lo, hi uint64) {
	for k := lo; k < hi; k++ {
		delete(r.vals, k)
	}
}

// TestMapRandomVsReference drives random Set/Update/Delete sequences
// against the per-key reference model and checks exact agreement plus
// structural invariants after every operation.
func TestMapRandomVsReference(t *testing.T) {
	const span = 96
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := NewMap[uint64, int](intEq)
		ref := &refModel{vals: map[uint64]int{}}
		for op := 0; op < 200; op++ {
			lo := uint64(rng.Intn(span))
			hi := lo + uint64(rng.Intn(16))
			switch rng.Intn(4) {
			case 0, 1:
				v := rng.Intn(4)
				m.Set(lo, hi, v)
				ref.set(lo, hi, v)
			case 2:
				m.Delete(lo, hi)
				ref.del(lo, hi)
			case 3:
				d := rng.Intn(3)
				keepGaps := rng.Intn(2) == 0
				m.Update(lo, hi, func(r Range[uint64], v int, ok bool) (int, bool) {
					if !ok {
						if keepGaps {
							return d, true
						}
						return 0, false
					}
					return v + d, true
				})
				for k := lo; k < hi; k++ {
					if v, ok := ref.vals[k]; ok {
						ref.vals[k] = v + d
					} else if keepGaps {
						ref.vals[k] = d
					}
				}
			}
			checkInvariants(t, m)
			got := contents(m, span+32)
			if len(got) != len(ref.vals) {
				t.Fatalf("seed %d op %d: %d keys, want %d", seed, op, len(got), len(ref.vals))
			}
			for k, v := range ref.vals {
				if gv, ok := got[k]; !ok || gv != v {
					t.Fatalf("seed %d op %d key %d: got %d,%v want %d", seed, op, k, gv, ok, v)
				}
			}
			// Point queries agree too (exercises the hint cache).
			for i := 0; i < 8; i++ {
				k := uint64(rng.Intn(span))
				gv, gok := m.Get(k)
				rv, rok := ref.vals[k]
				if gok != rok || (gok && gv != rv) {
					t.Fatalf("seed %d op %d Get(%d) = %d,%v want %d,%v", seed, op, k, gv, gok, rv, rok)
				}
			}
		}
	}
}

func TestSetCovers(t *testing.T) {
	s := NewSet[uint64]()
	s.Insert(10, 20)
	s.Insert(20, 30) // adjacent: must merge
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after adjacent insert", s.Len())
	}
	if !s.Covers(10, 30) || !s.Covers(15, 25) || s.Covers(5, 15) || s.Covers(25, 35) {
		t.Fatal("Covers wrong")
	}
	if !s.Covers(12, 12) {
		t.Fatal("empty range must be trivially covered")
	}
	s.Remove(14, 16)
	if s.Covers(10, 30) || !s.Covers(10, 14) || !s.Covers(16, 30) || s.Contains(15) {
		t.Fatal("Covers/Contains wrong after Remove")
	}
}

func TestSetRandomVsReference(t *testing.T) {
	const span = 80
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := NewSet[uint64]()
		ref := map[uint64]bool{}
		for op := 0; op < 150; op++ {
			lo := uint64(rng.Intn(span))
			hi := lo + uint64(rng.Intn(12))
			if rng.Intn(3) > 0 {
				s.Insert(lo, hi)
				for k := lo; k < hi; k++ {
					ref[k] = true
				}
			} else {
				s.Remove(lo, hi)
				for k := lo; k < hi; k++ {
					delete(ref, k)
				}
			}
			qlo := uint64(rng.Intn(span))
			qhi := qlo + uint64(rng.Intn(12))
			wantCov := true
			wantOver := false
			for k := qlo; k < qhi; k++ {
				if ref[k] {
					wantOver = true
				} else {
					wantCov = false
				}
			}
			if qhi <= qlo {
				wantCov = true
			}
			if got := s.Covers(qlo, qhi); got != wantCov {
				t.Fatalf("seed %d op %d Covers(%d,%d) = %v want %v", seed, op, qlo, qhi, got, wantCov)
			}
			if got := s.Overlaps(qlo, qhi); got != wantOver {
				t.Fatalf("seed %d op %d Overlaps(%d,%d) = %v want %v", seed, op, qlo, qhi, got, wantOver)
			}
		}
	}
}

// naivePersist is the per-word reference for PersistState.
type naivePersist struct {
	epoch   uint64
	mod     map[uint64]uint64
	persist map[uint64]uint64
	flushed map[uint64]bool
}

func newNaivePersist() *naivePersist {
	return &naivePersist{mod: map[uint64]uint64{}, persist: map[uint64]uint64{}, flushed: map[uint64]bool{}}
}

func (n *naivePersist) store(lo, hi uint64) {
	for k := lo; k < hi; k++ {
		n.mod[k] = n.epoch
		n.persist[k] = EpochInf
		delete(n.flushed, k)
	}
}

func (n *naivePersist) flush(lo, hi uint64) {
	for k := lo; k < hi; k++ {
		if _, ok := n.mod[k]; ok {
			n.flushed[k] = true
		}
	}
}

func (n *naivePersist) fence() {
	for k := range n.flushed {
		if n.persist[k] == EpochInf {
			n.persist[k] = n.epoch
		}
	}
	n.flushed = map[uint64]bool{}
	n.epoch++
}

func (n *naivePersist) isPersisted(lo, hi uint64) bool {
	for k := lo; k < hi; k++ {
		if _, ok := n.mod[k]; !ok {
			continue
		}
		if n.persist[k] >= n.epoch {
			return false
		}
	}
	return true
}

func (n *naivePersist) isOrderedBefore(aLo, aHi, bLo, bHi uint64) bool {
	aMax, aAny := uint64(0), false
	for k := aLo; k < aHi; k++ {
		if _, ok := n.mod[k]; ok {
			aAny = true
			if n.persist[k] > aMax {
				aMax = n.persist[k]
			}
		}
	}
	if !aAny {
		return true
	}
	if aMax == EpochInf {
		return false
	}
	bMin, bAny := uint64(EpochInf), false
	for k := bLo; k < bHi; k++ {
		if _, ok := n.mod[k]; ok {
			bAny = true
			if n.mod[k] < bMin {
				bMin = n.mod[k]
			}
		}
	}
	if !bAny {
		return false
	}
	return aMax < bMin
}

// TestPersistStateVsNaive drives random store/flush/fence sequences
// and checks IsPersisted / IsOrderedBefore against the per-word
// reference on random query ranges.
func TestPersistStateVsNaive(t *testing.T) {
	const span = 64
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := NewPersistState[uint64]()
		n := newNaivePersist()
		for op := 0; op < 250; op++ {
			lo := uint64(rng.Intn(span))
			hi := lo + 1 + uint64(rng.Intn(10))
			switch rng.Intn(5) {
			case 0, 1:
				s.Store(lo, hi)
				n.store(lo, hi)
			case 2, 3:
				s.Flush(lo, hi)
				n.flush(lo, hi)
			case 4:
				s.Fence()
				n.fence()
			}
			if s.Epoch() != n.epoch {
				t.Fatalf("seed %d op %d: epoch %d != %d", seed, op, s.Epoch(), n.epoch)
			}
			qa := uint64(rng.Intn(span))
			qb := qa + uint64(rng.Intn(12))
			if got, want := s.IsPersisted(qa, qb), n.isPersisted(qa, qb); got != want {
				t.Fatalf("seed %d op %d IsPersisted(%d,%d) = %v want %v", seed, op, qa, qb, got, want)
			}
			ra := uint64(rng.Intn(span))
			rb := ra + uint64(rng.Intn(12))
			if got, want := s.IsOrderedBefore(qa, qb, ra, rb), n.isOrderedBefore(qa, qb, ra, rb); got != want {
				t.Fatalf("seed %d op %d IsOrderedBefore = %v want %v", seed, op, got, want)
			}
		}
	}
}

// TestPersistStateExample pins the canonical store→flush→fence
// lifecycle from the Agamotto design.
func TestPersistStateExample(t *testing.T) {
	s := NewPersistState[uint64]()
	s.Store(0, 64)
	if s.IsPersisted(0, 64) {
		t.Fatal("modified data persisted without flush+fence")
	}
	s.Flush(0, 64)
	if s.IsPersisted(0, 64) {
		t.Fatal("flush alone must not persist (flushes may be delayed)")
	}
	s.Fence()
	if !s.IsPersisted(0, 64) {
		t.Fatal("flush + fence must persist")
	}
	if !s.IsPersisted(1000, 2000) {
		t.Fatal("untouched space is trivially persisted")
	}
	// Ordering: A persisted in epoch 0; B modified in epoch 1.
	s.Store(128, 192)
	if !s.IsOrderedBefore(0, 64, 128, 192) {
		t.Fatal("A fenced before B modified must be ordered")
	}
	if s.IsOrderedBefore(128, 192, 0, 64) {
		t.Fatal("unflushed B cannot be ordered before anything")
	}
	// Same-epoch mod and flush: windows overlap, no ordering.
	s.Store(256, 320)
	s.Flush(256, 320)
	s.Flush(128, 192)
	s.Fence()
	if !s.IsPersisted(128, 192) || !s.IsPersisted(256, 320) {
		t.Fatal("both fenced ranges must be persisted")
	}
	if s.IsOrderedBefore(128, 192, 256, 320) || s.IsOrderedBefore(256, 320, 128, 192) {
		t.Fatal("same-epoch persists are unordered")
	}
}

// TestMapAllocSteadyState: once the slab has grown, churn on a
// bounded key space allocates nothing.
func TestMapAllocSteadyState(t *testing.T) {
	m := NewMap[uint64, int](intEq)
	rng := rand.New(rand.NewSource(7))
	mutate := func() {
		lo := uint64(rng.Intn(256))
		hi := lo + 1 + uint64(rng.Intn(8))
		m.Set(lo, hi, rng.Intn(3))
	}
	for i := 0; i < 4096; i++ {
		mutate()
	}
	allocs := testing.AllocsPerRun(200, mutate)
	if allocs > 0.05 {
		t.Fatalf("steady-state Set allocates %.2f allocs/op, want 0", allocs)
	}
}
