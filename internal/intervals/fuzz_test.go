package intervals

import (
	"testing"
)

// FuzzMapSplitCoalesce feeds arbitrary operation tapes to the interval
// map and cross-checks every intermediate state against the per-key
// reference model, with the structural invariants (sorted, disjoint,
// non-empty, fully coalesced) asserted throughout. Each 4-byte chunk
// of the tape encodes one operation: opcode, lo, length, value.
func FuzzMapSplitCoalesce(f *testing.F) {
	f.Add([]byte{0, 10, 10, 1, 0, 15, 10, 2, 2, 12, 6, 0})
	f.Add([]byte{0, 0, 255, 1, 0, 8, 16, 1, 2, 4, 4, 0, 3, 0, 32, 5})
	f.Add([]byte{3, 250, 20, 7, 0, 255, 8, 3, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, tape []byte) {
		m := NewMap[uint64, int](intEq)
		ref := &refModel{vals: map[uint64]int{}}
		for len(tape) >= 4 {
			op, lo8, n8, v8 := tape[0], tape[1], tape[2], tape[3]
			tape = tape[4:]
			lo := uint64(lo8)
			hi := lo + uint64(n8)
			v := int(v8 % 5)
			switch op % 4 {
			case 0:
				m.Set(lo, hi, v)
				ref.set(lo, hi, v)
			case 1:
				m.Delete(lo, hi)
				ref.del(lo, hi)
			case 2:
				m.Update(lo, hi, func(r Range[uint64], old int, ok bool) (int, bool) {
					if !ok {
						return v, v%2 == 0
					}
					return old + v, true
				})
				for k := lo; k < hi; k++ {
					if old, ok := ref.vals[k]; ok {
						ref.vals[k] = old + v
					} else if v%2 == 0 {
						ref.vals[k] = v
					}
				}
			case 3:
				// Read-only probes between mutations.
				m.Overlaps(lo, hi)
				m.Get(lo)
				m.Find(hi)
			}
			checkInvariants(t, m)
		}
		got := contents(m, 1<<10)
		if len(got) != len(ref.vals) {
			t.Fatalf("%d keys, want %d", len(got), len(ref.vals))
		}
		for k, v := range ref.vals {
			if gv, ok := got[k]; !ok || gv != v {
				t.Fatalf("key %d: got %d,%v want %d", k, gv, ok, v)
			}
		}
	})
}
