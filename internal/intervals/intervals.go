// Package intervals provides an ordered interval map and set over
// 64-bit keys (memory.Addr, memory.BlockID, page indices) with
// split-on-overlap assignment and coalescing of adjacent equal-value
// ranges — the boost::icl idiom Agamotto's PersistentMemoryState is
// built on (SNIPPETS.md #1–2), tuned for the hot paths here:
//
//   - Storage is one contiguous sorted slab of half-open entries
//     [lo, hi) → V. There are no per-node heap allocations: inserting
//     in the middle shifts within the slab, and the slab's capacity is
//     retained across Clear, so steady-state mutation allocates only
//     when the distinct-range count grows past every previous high.
//   - Iteration is callback-based (Each/EachAll), so range queries and
//     walks allocate nothing — there is no iterator object to pool
//     because the "iterator" is a stack frame.
//   - Point lookups remember the last hit entry; workloads with any
//     locality (a simulator walking a heap, a builder revisiting the
//     same cache line) resolve Get in O(1) without searching.
//   - An optional equality predicate coalesces adjacent entries whose
//     values compare equal, so a frontier that covers untouched space
//     with one uniform value costs one entry, not one per block.
//
// The value type is caller-defined; callers that mutate values reached
// through Update must treat shared references copy-on-write, because a
// split duplicates the value into both halves.
package intervals

// Key is any 64-bit unsigned key type: memory.Addr, memory.BlockID,
// or a plain page/block index.
type Key interface{ ~uint64 }

// Range is a half-open key range [Lo, Hi). Ranges with Hi <= Lo are
// empty and ignored by every operation.
type Range[K Key] struct {
	Lo, Hi K
}

// Empty reports whether the range contains no keys.
func (r Range[K]) Empty() bool { return r.Hi <= r.Lo }

// Len returns the number of keys in the range.
func (r Range[K]) Len() uint64 { return uint64(r.Hi - r.Lo) }

// Overlaps reports whether two ranges share any key.
func (r Range[K]) Overlaps(o Range[K]) bool { return r.Lo < o.Hi && o.Lo < r.Hi }

// Contains reports whether k lies in the range.
func (r Range[K]) Contains(k K) bool { return r.Lo <= k && k < r.Hi }

type entry[K Key, V any] struct {
	lo, hi K
	v      V
}

// Map is an ordered map from disjoint half-open ranges to values.
// Assigning over an existing range splits the overlapped entries at
// the assignment's boundaries; adjacent entries with equal values (per
// the coalescing predicate) merge back into one. The zero Map is not
// ready for use; construct with NewMap.
type Map[K Key, V any] struct {
	eq   func(a, b V) bool // nil disables coalescing
	ents []entry[K, V]     // sorted by lo, pairwise disjoint, non-empty
	hint int               // index of the last entry hit by a lookup

	// scratch and window are splice staging buffers reused across
	// Update/Set/Delete calls.
	scratch []entry[K, V]
	window  []entry[K, V]

	// Splits and Coalesces count boundary cuts and equal-value merges
	// performed so far — the interval-churn stats surfaced by the graph
	// builder and the CLIs.
	Splits    uint64
	Coalesces uint64
}

// NewMap returns an empty map. eq, when non-nil, is the value-equality
// predicate used to coalesce adjacent ranges; pass nil for values that
// must never merge (e.g. distinct page pointers).
func NewMap[K Key, V any](eq func(a, b V) bool) *Map[K, V] {
	return &Map[K, V]{eq: eq}
}

// Len returns the number of distinct ranges stored.
func (m *Map[K, V]) Len() int { return len(m.ents) }

// Clear removes every entry, retaining storage capacity.
func (m *Map[K, V]) Clear() {
	m.ents = m.ents[:0]
	m.hint = 0
}

// search returns the index of the first entry with hi > k (the only
// entry that can contain k, and the first candidate overlapping any
// range starting at k). It is the classic sorted-slab binary search
// with a last-hit fast path.
func (m *Map[K, V]) search(k K) int {
	if h := m.hint; h < len(m.ents) {
		e := &m.ents[h]
		if e.lo <= k && k < e.hi {
			return h
		}
		// Common sequential pattern: the next entry.
		if k >= e.hi && h+1 < len(m.ents) && m.ents[h+1].lo <= k && k < m.ents[h+1].hi {
			m.hint = h + 1
			return h + 1
		}
	}
	lo, hi := 0, len(m.ents)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.ents[mid].hi <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value covering k.
func (m *Map[K, V]) Get(k K) (V, bool) {
	i := m.search(k)
	if i < len(m.ents) && m.ents[i].lo <= k {
		m.hint = i
		return m.ents[i].v, true
	}
	var zero V
	return zero, false
}

// Find returns the full stored range covering k and its value.
func (m *Map[K, V]) Find(k K) (Range[K], V, bool) {
	i := m.search(k)
	if i < len(m.ents) && m.ents[i].lo <= k {
		m.hint = i
		return Range[K]{m.ents[i].lo, m.ents[i].hi}, m.ents[i].v, true
	}
	var zero V
	return Range[K]{}, zero, false
}

// Overlaps reports whether any stored range intersects [lo, hi).
func (m *Map[K, V]) Overlaps(lo, hi K) bool {
	if hi <= lo {
		return false
	}
	i := m.search(lo)
	return i < len(m.ents) && m.ents[i].lo < hi
}

// Each visits the stored entries intersecting [lo, hi) in ascending
// order, clipped to the query range. fn returning false stops the
// walk. The map must not be mutated during the walk.
func (m *Map[K, V]) Each(lo, hi K, fn func(r Range[K], v V) bool) {
	if hi <= lo {
		return
	}
	for i := m.search(lo); i < len(m.ents) && m.ents[i].lo < hi; i++ {
		r := Range[K]{max(m.ents[i].lo, lo), min(m.ents[i].hi, hi)}
		if !fn(r, m.ents[i].v) {
			return
		}
	}
}

// EachAll visits every stored entry in ascending order.
func (m *Map[K, V]) EachAll(fn func(r Range[K], v V) bool) {
	for i := range m.ents {
		if !fn(Range[K]{m.ents[i].lo, m.ents[i].hi}, m.ents[i].v) {
			return
		}
	}
}

// Set assigns v uniformly over [lo, hi), splitting partially
// overlapped entries at the boundaries and replacing everything
// between them.
func (m *Map[K, V]) Set(lo, hi K, v V) {
	if hi <= lo {
		return
	}
	// Fast path: overwriting an entry with exactly matching boundaries
	// (the steady state of a frontier stamping the same block over and
	// over) needs no splice — unless the new value would coalesce with
	// a neighbor.
	if i := m.search(lo); i < len(m.ents) && m.ents[i].lo == lo && m.ents[i].hi == hi {
		if m.eq == nil ||
			(!(i > 0 && m.ents[i-1].hi == lo && m.eq(m.ents[i-1].v, v)) &&
				!(i+1 < len(m.ents) && m.ents[i+1].lo == hi && m.eq(m.ents[i+1].v, v))) {
			m.ents[i].v = v
			m.hint = i
			return
		}
	}
	m.scratch = append(m.scratch[:0], entry[K, V]{lo, hi, v})
	m.splice(lo, hi)
}

// Update transforms [lo, hi) tile by tile: existing entries are cut at
// the query boundaries, and fn is applied to each resulting tile —
// including the gaps between entries, which arrive with ok=false and a
// zero value. fn returns the tile's new value and whether to keep it;
// returning keep=false leaves (or turns) the tile into a gap, so
// "empty" states need never be materialized. Tiles are visited in
// ascending order and the results re-coalesced.
func (m *Map[K, V]) Update(lo, hi K, fn func(r Range[K], v V, ok bool) (V, bool)) {
	if hi <= lo {
		return
	}
	m.scratch = m.scratch[:0]
	var zero V
	cur := lo
	for i := m.search(lo); i < len(m.ents) && m.ents[i].lo < hi; i++ {
		e := m.ents[i]
		if cur < e.lo {
			// Gap before this entry.
			gapHi := min(e.lo, hi)
			if v, keep := fn(Range[K]{cur, gapHi}, zero, false); keep {
				m.pushScratch(cur, gapHi, v)
			}
			cur = gapHi
			if cur >= hi {
				break
			}
		}
		tileHi := min(e.hi, hi)
		if v, keep := fn(Range[K]{cur, tileHi}, e.v, true); keep {
			m.pushScratch(cur, tileHi, v)
		}
		cur = tileHi
		if cur >= hi {
			break
		}
	}
	if cur < hi {
		if v, keep := fn(Range[K]{cur, hi}, zero, false); keep {
			m.pushScratch(cur, hi, v)
		}
	}
	m.splice(lo, hi)
}

// Delete removes [lo, hi) from the map, splitting boundary entries.
func (m *Map[K, V]) Delete(lo, hi K) {
	if hi <= lo {
		return
	}
	m.scratch = m.scratch[:0]
	m.splice(lo, hi)
}

// pushScratch appends a tile to the staging buffer, merging with the
// previous tile when adjacent and equal.
func (m *Map[K, V]) pushScratch(lo, hi K, v V) {
	if n := len(m.scratch); n > 0 && m.eq != nil {
		p := &m.scratch[n-1]
		if p.hi == lo && m.eq(p.v, v) {
			p.hi = hi
			m.Coalesces++
			return
		}
	}
	m.scratch = append(m.scratch, entry[K, V]{lo, hi, v})
}

// splice replaces the window of entries overlapping [lo, hi) with the
// staged scratch tiles, preserving the parts of boundary entries
// outside the window and coalescing across the window edges.
func (m *Map[K, V]) splice(lo, hi K) {
	first := m.search(lo)
	last := first
	for last < len(m.ents) && m.ents[last].lo < hi {
		last++
	}

	// Preserve the outside parts of the boundary entries.
	var head, tail entry[K, V]
	haveHead, haveTail := false, false
	if first < len(m.ents) && m.ents[first].lo < lo {
		head = entry[K, V]{m.ents[first].lo, lo, m.ents[first].v}
		haveHead = true
		m.Splits++
	}
	if last > first && m.ents[last-1].hi > hi {
		tail = entry[K, V]{hi, m.ents[last-1].hi, m.ents[last-1].v}
		haveTail = true
		m.Splits++
	}

	// Merge head/tail with the staged tiles when values agree.
	if haveHead && len(m.scratch) > 0 && m.eq != nil &&
		head.hi == m.scratch[0].lo && m.eq(head.v, m.scratch[0].v) {
		m.scratch[0].lo = head.lo
		haveHead = false
		m.Splits-- // the cut healed
		m.Coalesces++
	}
	if haveTail && len(m.scratch) > 0 && m.eq != nil {
		if s := &m.scratch[len(m.scratch)-1]; s.hi == tail.lo && m.eq(s.v, tail.v) {
			s.hi = tail.hi
			haveTail = false
			m.Splits--
			m.Coalesces++
		}
	}

	// Assemble the replacement window: head, staged tiles, tail. Then
	// coalesce across the window's outer edges with the untouched
	// neighbors.
	window := m.window[:0]
	if haveHead {
		window = append(window, head)
	}
	window = append(window, m.scratch...)
	if haveTail {
		window = append(window, tail)
	}
	m.window = window[:0]

	// Edge coalescing with the neighbor entries outside [first, last).
	if m.eq != nil && len(window) > 0 {
		if first > 0 {
			p := &m.ents[first-1]
			if p.hi == window[0].lo && m.eq(p.v, window[0].v) {
				window[0].lo = p.lo
				first--
				m.Coalesces++
			}
		}
		if last < len(m.ents) {
			n := &m.ents[last]
			w := &window[len(window)-1]
			if w.hi == n.lo && m.eq(w.v, n.v) {
				w.hi = n.hi
				last++
				m.Coalesces++
			}
		}
	}

	m.replace(first, last, window)
	m.hint = first
}

// replace substitutes ents[first:last] with window, shifting the slab
// in place.
func (m *Map[K, V]) replace(first, last int, window []entry[K, V]) {
	oldN := last - first
	newN := len(window)
	switch {
	case newN == oldN:
		copy(m.ents[first:last], window)
	case newN < oldN:
		copy(m.ents[first:first+newN], window)
		m.ents = append(m.ents[:first+newN], m.ents[last:]...)
	default:
		grow := newN - oldN
		// Extend and shift the suffix right by grow.
		var zero entry[K, V]
		for i := 0; i < grow; i++ {
			m.ents = append(m.ents, zero)
		}
		copy(m.ents[first+newN:], m.ents[first+oldN:len(m.ents)-grow])
		copy(m.ents[first:first+newN], window)
	}
}

func min[K Key](a, b K) K {
	if a < b {
		return a
	}
	return b
}

func max[K Key](a, b K) K {
	if a > b {
		return a
	}
	return b
}
