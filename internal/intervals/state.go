package intervals

import "math"

// Set is an ordered set of half-open key ranges: a Map with unit
// values and adjacent-range coalescing always on.
type Set[K Key] struct {
	m Map[K, struct{}]
}

// NewSet returns an empty interval set.
func NewSet[K Key]() *Set[K] {
	return &Set[K]{m: Map[K, struct{}]{eq: func(struct{}, struct{}) bool { return true }}}
}

// Insert adds [lo, hi) to the set, merging with adjacent or
// overlapping members.
func (s *Set[K]) Insert(lo, hi K) { s.m.Set(lo, hi, struct{}{}) }

// Remove deletes [lo, hi) from the set, splitting boundary members.
func (s *Set[K]) Remove(lo, hi K) { s.m.Delete(lo, hi) }

// Contains reports whether k is a member.
func (s *Set[K]) Contains(k K) bool {
	_, ok := s.m.Get(k)
	return ok
}

// Overlaps reports whether any member range intersects [lo, hi).
func (s *Set[K]) Overlaps(lo, hi K) bool { return s.m.Overlaps(lo, hi) }

// Covers reports whether every key in [lo, hi) is a member. Empty
// ranges are trivially covered.
func (s *Set[K]) Covers(lo, hi K) bool {
	if hi <= lo {
		return true
	}
	cur := lo
	s.m.Each(lo, hi, func(r Range[K], _ struct{}) bool {
		if r.Lo != cur {
			return false // gap
		}
		cur = r.Hi
		return true
	})
	return cur >= hi
}

// Each visits member ranges intersecting [lo, hi), clipped, ascending.
func (s *Set[K]) Each(lo, hi K, fn func(r Range[K]) bool) {
	s.m.Each(lo, hi, func(r Range[K], _ struct{}) bool { return fn(r) })
}

// Len returns the number of disjoint member ranges.
func (s *Set[K]) Len() int { return s.m.Len() }

// Clear empties the set, retaining capacity.
func (s *Set[K]) Clear() { s.m.Clear() }

// EpochInf is the "infinitely in the future" persistence epoch: data
// modified but with no fence yet bounding its persist time.
const EpochInf = math.MaxUint64

// PersistInterval is the per-range state of PersistState: the epoch of
// the most recent modification and the epoch whose closing fence
// guarantees the modification is persisted (EpochInf while no
// flush+fence bounds it). This is the Agamotto "persistence interval":
// the window of time during which the write may reach the medium.
type PersistInterval struct {
	ModEpoch     uint64
	PersistEpoch uint64
}

// OverlapsInterval reports whether two persist intervals can persist
// in either order (their windows intersect).
func (p PersistInterval) OverlapsInterval(o PersistInterval) bool {
	return p.ModEpoch <= o.PersistEpoch && o.ModEpoch <= p.PersistEpoch
}

// PersistState tracks modified/flushed/persisted ranges of a
// persistent address space across fence-delimited persistence epochs,
// answering the two queries persistency verification is built from:
// IsPersisted (is this range guaranteed on media now?) and
// IsOrderedBefore (is range A guaranteed on media before any of range
// B's modifications could be?). Range granularity is whatever key the
// caller uses — byte addresses or cache-line ids.
type PersistState[K Key] struct {
	epoch uint64
	// mods maps modified ranges to their persist intervals. Absent
	// ranges were never modified (trivially persisted).
	mods *Map[K, PersistInterval]
	// flushed holds ranges flushed this epoch but not yet fenced.
	flushed *Set[K]
}

// NewPersistState returns a state at epoch 0 with no modifications.
func NewPersistState[K Key]() *PersistState[K] {
	return &PersistState[K]{
		mods:    NewMap[K, PersistInterval](func(a, b PersistInterval) bool { return a == b }),
		flushed: NewSet[K](),
	}
}

// Epoch returns the current persistence epoch (fences completed).
func (s *PersistState[K]) Epoch() uint64 { return s.epoch }

// Store records a modification of [lo, hi): its persist interval
// restarts at the current epoch, unbounded until flushed and fenced.
func (s *PersistState[K]) Store(lo, hi K) {
	s.mods.Set(lo, hi, PersistInterval{ModEpoch: s.epoch, PersistEpoch: EpochInf})
	s.flushed.Remove(lo, hi)
}

// Flush records a writeback request for [lo, hi). The data is not yet
// guaranteed persisted — the flush itself may be delayed — until the
// next Fence closes the epoch.
func (s *PersistState[K]) Flush(lo, hi K) {
	if s.mods.Overlaps(lo, hi) {
		s.flushed.Insert(lo, hi)
	}
}

// Fence closes the current epoch: every range flushed during it
// becomes persisted at this epoch, and the epoch counter advances.
func (s *PersistState[K]) Fence() {
	e := s.epoch
	s.flushed.m.EachAll(func(r Range[K], _ struct{}) bool {
		s.mods.Update(r.Lo, r.Hi, func(_ Range[K], pi PersistInterval, ok bool) (PersistInterval, bool) {
			if !ok {
				return pi, false
			}
			if pi.PersistEpoch == EpochInf {
				pi.PersistEpoch = e
			}
			return pi, true
		})
		return true
	})
	s.flushed.Clear()
	s.epoch++
}

// IsPersisted reports whether every modification in [lo, hi) is
// guaranteed to have reached the medium: each overlapping persist
// interval closed in a previous epoch. Never-modified space is
// trivially persisted.
func (s *PersistState[K]) IsPersisted(lo, hi K) bool {
	ok := true
	s.mods.Each(lo, hi, func(_ Range[K], pi PersistInterval) bool {
		if pi.PersistEpoch >= s.epoch {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// IsOrderedBefore reports whether every modification of [aLo, aHi) is
// guaranteed persisted before any modification of [bLo, bHi) can
// persist: A's latest persist epoch closes strictly before B's
// earliest modification epoch. Unmodified A is trivially ordered
// before everything; unmodified B is ordered after nothing.
func (s *PersistState[K]) IsOrderedBefore(aLo, aHi, bLo, bHi K) bool {
	aMax := uint64(0)
	aAny := false
	s.mods.Each(aLo, aHi, func(_ Range[K], pi PersistInterval) bool {
		aAny = true
		if pi.PersistEpoch > aMax {
			aMax = pi.PersistEpoch
		}
		return true
	})
	if !aAny {
		return true
	}
	if aMax == EpochInf {
		return false
	}
	bMin := uint64(EpochInf)
	bAny := false
	s.mods.Each(bLo, bHi, func(_ Range[K], pi PersistInterval) bool {
		bAny = true
		if pi.ModEpoch < bMin {
			bMin = pi.ModEpoch
		}
		return true
	})
	if !bAny {
		return false
	}
	return aMax < bMin
}
