package fault

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/memory"
)

// Repro strings: a failing campaign scenario serialized to one line.
//
//	fault1|k=v,k=v,...|cut=<nodes>:<hex>|plan=<fault>;<fault>;...
//
// The params section is an ordered key=value list the harness uses to
// rebuild the exact workload and trace (workload, design, policy,
// model, threads, inserts, seed, ...); this package round-trips it
// opaquely. The cut section is the node count followed by a hex bitset
// (node i lives in byte i/8, bit i%8). The plan section lists faults
// in Fault.String form; it may be empty (an annotation bug found with
// no faults injected). Everything the replay needs is in the string:
// rebuilding the trace from the seeded scheduler, re-deriving the
// graph, applying the cut and plan, and re-running recovery is fully
// deterministic.

// reproPrefix versions the format.
const reproPrefix = "fault1"

// Param is one harness-defined workload parameter.
type Param struct {
	Key, Value string
}

// Scenario is a complete replayable failure scenario.
type Scenario struct {
	// Params rebuild the workload/trace (harness-interpreted).
	Params []Param
	// Cut is the consistent cut the failure materialized.
	Cut graph.Cut
	// Plan is the injected fault set (possibly empty).
	Plan Plan
}

// Param returns the value for key, if present.
func (s *Scenario) Param(key string) (string, bool) {
	for _, p := range s.Params {
		if p.Key == key {
			return p.Value, true
		}
	}
	return "", false
}

// Repro serializes the scenario to its one-line repro string.
func (s *Scenario) Repro() string {
	var b strings.Builder
	b.WriteString(reproPrefix)
	b.WriteByte('|')
	for i, p := range s.Params {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.Key)
		b.WriteByte('=')
		b.WriteString(p.Value)
	}
	fmt.Fprintf(&b, "|cut=%d:%s", len(s.Cut.Included), encodeBits(s.Cut.Included))
	b.WriteString("|plan=")
	b.WriteString(s.Plan.String())
	return b.String()
}

// ParseRepro parses a repro string back into a scenario.
func ParseRepro(in string) (*Scenario, error) {
	parts := strings.Split(strings.TrimSpace(in), "|")
	if len(parts) != 4 || parts[0] != reproPrefix {
		return nil, fmt.Errorf("fault: repro must have 4 %q-separated sections starting with %q", "|", reproPrefix)
	}
	s := &Scenario{}
	if parts[1] != "" {
		for _, kv := range strings.Split(parts[1], ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok || k == "" {
				return nil, fmt.Errorf("fault: bad param %q", kv)
			}
			s.Params = append(s.Params, Param{Key: k, Value: v})
		}
	}
	cutStr, ok := strings.CutPrefix(parts[2], "cut=")
	if !ok {
		return nil, fmt.Errorf("fault: missing cut section in %q", parts[2])
	}
	nStr, bits, ok := strings.Cut(cutStr, ":")
	if !ok {
		return nil, fmt.Errorf("fault: cut section %q needs <nodes>:<hex>", cutStr)
	}
	n, err := strconv.Atoi(nStr)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("fault: bad cut node count %q", nStr)
	}
	s.Cut.Included, err = decodeBits(bits, n)
	if err != nil {
		return nil, err
	}
	planStr, ok := strings.CutPrefix(parts[3], "plan=")
	if !ok {
		return nil, fmt.Errorf("fault: missing plan section in %q", parts[3])
	}
	s.Plan, err = ParsePlan(planStr)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// ParsePlan parses the plan section (a ";"-separated fault list,
// possibly empty).
func ParsePlan(in string) (Plan, error) {
	var p Plan
	if in == "" {
		return p, nil
	}
	for _, fs := range strings.Split(in, ";") {
		f, err := parseFault(fs)
		if err != nil {
			return Plan{}, err
		}
		p.Faults = append(p.Faults, f)
	}
	return p, nil
}

func parseFault(in string) (Fault, error) {
	name, rest, ok := strings.Cut(in, "@")
	if !ok {
		return Fault{}, fmt.Errorf("fault: bad fault %q", in)
	}
	bad := func() (Fault, error) { return Fault{}, fmt.Errorf("fault: bad %s fault %q", name, in) }
	switch name {
	case "torn":
		nodeStr, maskStr, ok := strings.Cut(rest, "/")
		if !ok {
			return bad()
		}
		node, err1 := strconv.Atoi(nodeStr)
		mask, err2 := strconv.ParseUint(maskStr, 16, 8)
		if err1 != nil || err2 != nil || node < 0 {
			return bad()
		}
		return Fault{Kind: Torn, Node: graph.NodeID(node), Mask: uint8(mask)}, nil
	case "drop":
		node, err := strconv.Atoi(rest)
		if err != nil || node < 0 {
			return bad()
		}
		return Fault{Kind: Drop, Node: graph.NodeID(node)}, nil
	case "retry":
		nodeStr, attStr, ok := strings.Cut(rest, "x")
		if !ok {
			return bad()
		}
		node, err1 := strconv.Atoi(nodeStr)
		att, err2 := strconv.Atoi(attStr)
		if err1 != nil || err2 != nil || node < 0 || att <= 0 {
			return bad()
		}
		return Fault{Kind: Retry, Node: graph.NodeID(node), Attempts: att}, nil
	case "flipd", "flips":
		addrStr, bitStr, ok := strings.Cut(rest, ".")
		if !ok {
			return bad()
		}
		addr, err1 := strconv.ParseUint(addrStr, 16, 64)
		bit, err2 := strconv.ParseUint(bitStr, 10, 8)
		if err1 != nil || err2 != nil || bit > 7 {
			return bad()
		}
		k := FlipDetected
		if name == "flips" {
			k = FlipSilent
		}
		return Fault{Kind: k, Addr: memory.Addr(addr), Bit: uint8(bit)}, nil
	default:
		return Fault{}, fmt.Errorf("fault: unknown fault kind %q", name)
	}
}

// encodeBits packs a bool slice into hex, node i in byte i/8, bit i%8.
func encodeBits(bits []bool) string {
	buf := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			buf[i/8] |= 1 << uint(i%8)
		}
	}
	var sb strings.Builder
	for _, c := range buf {
		fmt.Fprintf(&sb, "%02x", c)
	}
	return sb.String()
}

func decodeBits(hexStr string, n int) ([]bool, error) {
	want := (n + 7) / 8
	if len(hexStr) != 2*want {
		return nil, fmt.Errorf("fault: cut bitset has %d hex digits, want %d for %d nodes", len(hexStr), 2*want, n)
	}
	out := make([]bool, n)
	for i := 0; i < want; i++ {
		v, err := strconv.ParseUint(hexStr[2*i:2*i+2], 16, 8)
		if err != nil {
			return nil, fmt.Errorf("fault: bad cut bitset byte %q", hexStr[2*i:2*i+2])
		}
		for j := 0; j < 8 && i*8+j < n; j++ {
			out[i*8+j] = v&(1<<uint(j)) != 0
		}
	}
	return out, nil
}
