package fault

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/memory"
)

// GenConfig parameterizes random fault-plan generation. The zero value
// enables every fault kind with equal weight and at most 3 faults per
// scenario.
type GenConfig struct {
	// MaxFaults bounds the faults per plan; 0 means 3.
	MaxFaults int
	// Weights select the fault mix; all-zero means 1 each. A kind with
	// weight 0 (when any other is set) is never generated.
	TornWeight, DropWeight, RetryWeight, FlipDetectedWeight, FlipSilentWeight int
	// MaxAttempts bounds a Retry fault's failed attempts; 0 means 4.
	MaxAttempts int
}

func (c GenConfig) normalize() GenConfig {
	if c.MaxFaults <= 0 {
		c.MaxFaults = 3
	}
	if c.TornWeight == 0 && c.DropWeight == 0 && c.RetryWeight == 0 &&
		c.FlipDetectedWeight == 0 && c.FlipSilentWeight == 0 {
		c.TornWeight, c.DropWeight, c.RetryWeight = 1, 1, 1
		c.FlipDetectedWeight, c.FlipSilentWeight = 1, 1
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	return c
}

// GenPlan draws a random fault plan for one (cut, image) scenario. All
// randomness comes from rng — same rng state, same plan — so campaigns
// are fully reproducible from their seed. words is the image's written
// word set (bit-flip targets); torn and dropped persists target the
// cut's frontier only (see the package comment). Kinds with no legal
// target in this scenario are skipped; the plan may come back empty
// for degenerate cuts.
func GenPlan(rng *rand.Rand, g *graph.Graph, c graph.Cut, words []memory.Addr, cfg GenConfig) Plan {
	cfg = cfg.normalize()
	frontier := Frontier(g, c)
	var persists []graph.NodeID
	for i, n := range g.Nodes {
		if c.Included[i] && n.Event.Kind.IsAccess() {
			persists = append(persists, graph.NodeID(i))
		}
	}

	type cand struct {
		kind   Kind
		weight int
	}
	cands := []cand{
		{Torn, cfg.TornWeight},
		{Drop, cfg.DropWeight},
		{Retry, cfg.RetryWeight},
		{FlipDetected, cfg.FlipDetectedWeight},
		{FlipSilent, cfg.FlipSilentWeight},
	}
	total := 0
	for _, cd := range cands {
		total += cd.weight
	}
	if total == 0 {
		return Plan{}
	}
	pick := func() Kind {
		r := rng.Intn(total)
		for _, cd := range cands {
			if r < cd.weight {
				return cd.kind
			}
			r -= cd.weight
		}
		return cands[len(cands)-1].kind
	}

	var p Plan
	n := 1 + rng.Intn(cfg.MaxFaults)
	for i := 0; i < n; i++ {
		switch k := pick(); k {
		case Torn:
			if len(frontier) == 0 {
				continue
			}
			node := frontier[rng.Intn(len(frontier))]
			size := int(g.Nodes[node].Event.Size)
			full := uint8(1<<uint(size)) - 1
			// Drop at least one byte of the write, or the tear is a
			// no-op by construction.
			mask := uint8(rng.Intn(256)) & full
			if mask == full {
				mask &^= 1 << uint(rng.Intn(size))
			}
			p.Faults = append(p.Faults, Fault{Kind: Torn, Node: node, Mask: mask})
		case Drop:
			if len(frontier) == 0 {
				continue
			}
			p.Faults = append(p.Faults, Fault{Kind: Drop, Node: frontier[rng.Intn(len(frontier))]})
		case Retry:
			if len(persists) == 0 {
				continue
			}
			p.Faults = append(p.Faults, Fault{
				Kind:     Retry,
				Node:     persists[rng.Intn(len(persists))],
				Attempts: 1 + rng.Intn(cfg.MaxAttempts),
			})
		case FlipDetected, FlipSilent:
			if len(words) == 0 {
				continue
			}
			w := words[rng.Intn(len(words))]
			p.Faults = append(p.Faults, Fault{
				Kind: k,
				Addr: w + memory.Addr(rng.Intn(memory.WordSize)),
				Bit:  uint8(rng.Intn(8)),
			})
		}
	}
	return p
}
