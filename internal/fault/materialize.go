package fault

import (
	"repro/internal/graph"
	"repro/internal/memory"
)

// Frontier returns the cut's frontier: included persists with no
// included dependents. These are the writes that may still have been
// in flight at the moment of failure, so torn and dropped persists are
// only legal there.
func Frontier(g *graph.Graph, c graph.Cut) []graph.NodeID {
	hasDep := make([]bool, g.Len())
	for _, n := range g.Nodes {
		if !c.Included[n.ID] {
			continue
		}
		for _, e := range n.In {
			hasDep[e.From] = true
		}
	}
	var out []graph.NodeID
	for i, n := range g.Nodes {
		if c.Included[i] && n.Event.Kind.IsAccess() && !hasDep[i] {
			out = append(out, graph.NodeID(i))
		}
	}
	return out
}

// Materialize builds the post-crash NVRAM image of cut c perturbed by
// plan p. It mirrors graph.Materialize — persists applied in trace
// order — with the device faults layered in:
//
//   - Drop excludes the node; Torn applies only the Mask-selected
//     bytes of its write. Both cascade: any included node depending on
//     a dropped or torn node is excluded too, so hand-edited plans
//     (e.g. a tweaked repro string) still yield reachable device
//     states — a persist's dependents cannot have reached media before
//     it did. Later faults override earlier ones on the same node.
//   - Retry faults do not change the image (the write eventually
//     succeeded); they only matter to nvram timing accounting.
//   - Bit flips are applied after all writes; FlipDetected also
//     poisons the word.
//
// With an empty plan, Materialize(g, c, Plan{}) equals
// g.Materialize(c).
func Materialize(g *graph.Graph, c graph.Cut, p Plan) *memory.Image {
	drop := make(map[graph.NodeID]bool)
	torn := make(map[graph.NodeID]uint8)
	for _, f := range p.Faults {
		switch f.Kind {
		case Drop:
			drop[f.Node] = true
			delete(torn, f.Node)
		case Torn:
			torn[f.Node] = f.Mask
			delete(drop, f.Node)
		}
	}

	im := memory.NewImage()
	// excluded marks nodes removed by a drop/tear or by depending on
	// one; the forward pass works because trace-built graphs are in
	// topological order with edges pointing backward.
	excluded := make([]bool, g.Len())
	for i, n := range g.Nodes {
		id := graph.NodeID(i)
		if !c.Included[i] {
			continue
		}
		if drop[id] {
			excluded[i] = true
			continue
		}
		_, isTorn := torn[id]
		for _, e := range n.In {
			if excluded[e.From] || (c.Included[e.From] && tornAncestor(torn, e.From)) {
				excluded[i] = true
				break
			}
		}
		if excluded[i] || !n.Event.Kind.IsAccess() {
			continue
		}
		var b [memory.WordSize]byte
		for j := 0; j < int(n.Event.Size); j++ {
			b[j] = byte(n.Event.Val >> (8 * j))
		}
		if isTorn {
			mask := torn[id]
			for j := 0; j < int(n.Event.Size); j++ {
				if mask&(1<<uint(j)) == 0 {
					continue
				}
				im.WriteBytes(n.Event.Addr+memory.Addr(j), b[j:j+1])
			}
			continue
		}
		im.WriteBytes(n.Event.Addr, b[:n.Event.Size])
	}

	for _, f := range p.Faults {
		switch f.Kind {
		case FlipDetected:
			im.FlipBit(f.Addr, f.Bit)
			im.Poison(f.Addr)
		case FlipSilent:
			im.FlipBit(f.Addr, f.Bit)
		}
	}
	return im
}

// tornAncestor reports whether from is torn (a torn persist's
// dependents are excluded like a dropped persist's: it never fully
// reached media).
func tornAncestor(torn map[graph.NodeID]uint8, from graph.NodeID) bool {
	_, ok := torn[from]
	return ok
}
