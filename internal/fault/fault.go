// Package fault injects device-level failures into the NVRAM images
// the recovery observer materializes.
//
// The paper's recovery observer (§4) models failure as a *clean*
// consistent cut of the persist-order DAG: every persist either fully
// reached media or did not happen at all. Real NVRAM also fails dirty
// (Ben-David et al., "Delay-Free Concurrency on Faulty Persistent
// Memory"): atomic persists tear, issued persists are silently dropped,
// writes fail transiently and are retried, and media cells rot. This
// package extends the observer's state space with exactly those
// perturbations, deterministically (every choice is driven by an
// injected *rand.Rand or spelled out in a replayable Plan):
//
//   - Torn: an atomic persist applied partially, at sub-word byte
//     granularity. Tearing models a write interrupted by the crash, so
//     it is only meaningful at the *frontier* of the cut (a persist
//     with no persisted dependents); Materialize enforces this by
//     excluding the dependents of a torn persist.
//   - Drop: an issued persist that never reached media. Also only
//     legal at the frontier — dropping an interior persist would
//     fabricate a device state the ordering constraints forbid — and
//     Materialize likewise excludes dependents, so the perturbed state
//     is always a reachable device state with one write in flight.
//   - Retry: a transient write failure masked by the device's bounded
//     retry/backoff loop. The data eventually reaches media, so the
//     image is unchanged; the cost is charged into the internal/nvram
//     timing model as extra latency and wear (see nvram.FaultProfile).
//   - FlipDetected: a media bit error the device's ECC detects but
//     cannot correct. The flipped data is returned to readers and the
//     word is poisoned (memory.Image.Poison); recovery must quarantine.
//   - FlipSilent: a media bit error the ECC misses. Only software
//     checksums can catch it; a silent flip that lands where no
//     checksum covers is the one documented class of undetectable
//     corruption, which campaigns report as a detection-rate statistic
//     rather than hide.
//
// A Plan plus a cut plus the deterministic trace seed is a complete,
// replayable failure scenario; Scenario (repro.go) round-trips all
// three through a one-line repro string.
package fault

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/memory"
)

// Kind enumerates the device-fault taxonomy.
type Kind uint8

const (
	// Torn applies a frontier persist partially (Mask selects bytes).
	Torn Kind = iota
	// Drop removes a frontier persist from the materialized state.
	Drop
	// Retry makes a persist fail transiently Attempts times before
	// succeeding; timing/wear accounting only.
	Retry
	// FlipDetected flips one media bit and poisons the word
	// (detectable-uncorrectable error).
	FlipDetected
	// FlipSilent flips one media bit with no device-side indication.
	FlipSilent
)

// String names the kind (also the repro-string mnemonic).
func (k Kind) String() string {
	switch k {
	case Torn:
		return "torn"
	case Drop:
		return "drop"
	case Retry:
		return "retry"
	case FlipDetected:
		return "flipd"
	case FlipSilent:
		return "flips"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Kinds lists the fault taxonomy.
var Kinds = []Kind{Torn, Drop, Retry, FlipDetected, FlipSilent}

// Fault is one injected device fault.
type Fault struct {
	Kind Kind
	// Node is the targeted persist for Torn, Drop, and Retry.
	Node graph.NodeID
	// Mask selects which bytes of a Torn persist reached media: bit i
	// set means byte i of the write was applied. Bits beyond the
	// write's size are ignored; a zero mask means nothing landed.
	Mask uint8
	// Attempts is the number of failed write attempts for Retry.
	Attempts int
	// Addr is the flipped byte's address for FlipDetected/FlipSilent.
	Addr memory.Addr
	// Bit is the flipped bit (0..7) within the byte at Addr.
	Bit uint8
}

// String renders the fault in repro-string form.
func (f Fault) String() string {
	switch f.Kind {
	case Torn:
		return fmt.Sprintf("torn@%d/%02x", f.Node, f.Mask)
	case Drop:
		return fmt.Sprintf("drop@%d", f.Node)
	case Retry:
		return fmt.Sprintf("retry@%dx%d", f.Node, f.Attempts)
	case FlipDetected, FlipSilent:
		return fmt.Sprintf("%s@%x.%d", f.Kind, uint64(f.Addr), f.Bit)
	default:
		return f.Kind.String()
	}
}

// Plan is a deterministic set of faults applied to one materialized
// cut. The zero Plan injects nothing.
type Plan struct {
	Faults []Fault
}

// Len returns the number of faults.
func (p Plan) Len() int { return len(p.Faults) }

// HasSilentFlip reports whether the plan injects any silent bit error —
// the one fault class software checksums may legitimately miss.
func (p Plan) HasSilentFlip() bool {
	for _, f := range p.Faults {
		if f.Kind == FlipSilent {
			return true
		}
	}
	return false
}

// Without returns a copy of the plan with fault i removed (the
// minimizer's step).
func (p Plan) Without(i int) Plan {
	out := Plan{Faults: make([]Fault, 0, len(p.Faults)-1)}
	out.Faults = append(out.Faults, p.Faults[:i]...)
	out.Faults = append(out.Faults, p.Faults[i+1:]...)
	return out
}

// RetryProfile extracts the transient-failure attempts per node, the
// input to nvram's retry/backoff accounting.
func (p Plan) RetryProfile() map[graph.NodeID]int {
	var out map[graph.NodeID]int
	for _, f := range p.Faults {
		if f.Kind != Retry || f.Attempts <= 0 {
			continue
		}
		if out == nil {
			out = make(map[graph.NodeID]int)
		}
		out[f.Node] += f.Attempts
	}
	return out
}

// String renders the plan as the repro string's fault section.
func (p Plan) String() string {
	parts := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ";")
}

// RecoveryReport is the structured outcome of a hardened (salvaging)
// recovery pass: what was recovered intact, what was detected as
// corrupt and quarantined, and what had to be skipped unattributed.
// A fault-tolerant recovery routine degrades gracefully — it returns
// the intact data plus a report — instead of returning silently wrong
// data or failing outright.
type RecoveryReport struct {
	// Recovered counts intact units (entries, records, rollback
	// records) recovered.
	Recovered int
	// Quarantined counts units detected as corrupt (checksum or seal
	// failure, implausible framing, poisoned media) and withheld.
	Quarantined int
	// Dropped counts units skipped without attribution — slots lost
	// while resynchronizing past a corrupt region. For variable-size
	// formats it counts alignment slots, an upper bound on lost
	// entries.
	Dropped int
	// PoisonedWords counts detectable-uncorrectable media errors
	// encountered while scanning.
	PoisonedWords int
	// HeaderQuarantined reports that a top-level pointer (head/tail,
	// committed/checkpoint, armed/done) was implausible or poisoned and
	// the scan ran in degraded mode.
	HeaderQuarantined bool
	// CRCDetected counts CRC validation failures (frame or shadow
	// checksums, durable-word copies) caught by the integrity layer.
	CRCDetected int
	// CDBDetected counts corruption-detecting booleans read as neither
	// constant — direct evidence of metadata corruption.
	CDBDetected int
	// DiscardedRecords counts records past the commit frontier that
	// recovery deliberately discarded (uncommitted or torn tails). A
	// nonzero count is *normal* on a mid-operation crash cut and is NOT
	// corruption evidence; it is reported for visibility only.
	DiscardedRecords int
	// BytesScanned is the number of NVRAM bytes examined.
	BytesScanned uint64
	// Notes carries short human-readable reasons (capped).
	Notes []string
}

// Detected reports whether the recovery saw any evidence of corruption
// — quarantine/drop/poison from the salvage layer, or a CRC/CDB hit
// from the integrity layer. DiscardedRecords is deliberately excluded:
// discarding an uncommitted tail is the expected outcome of a clean
// crash cut, not corruption. A clean report plus wrong recovered data
// is a *silent* corruption — the class fault campaigns exist to rule
// out; a report where Detected() is true means the corruption was
// caught (detected-and-recovered), never silently trusted.
func (r *RecoveryReport) Detected() bool {
	return r.Quarantined > 0 || r.Dropped > 0 || r.PoisonedWords > 0 || r.HeaderQuarantined ||
		r.DetectedByIntegrity()
}

// DetectedByIntegrity reports whether the integrity layer (CRC frames,
// shadow checksums, CDBs) specifically caught corruption, as opposed
// to the coarser salvage heuristics.
func (r *RecoveryReport) DetectedByIntegrity() bool {
	return r.CRCDetected > 0 || r.CDBDetected > 0
}

// maxNotes bounds the notes a report accumulates.
const maxNotes = 8

// Note appends a formatted note, keeping at most maxNotes.
func (r *RecoveryReport) Note(format string, args ...interface{}) {
	if len(r.Notes) < maxNotes {
		r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
	}
}

// Merge accumulates another report into r (campaign aggregation).
func (r *RecoveryReport) Merge(o RecoveryReport) {
	r.Recovered += o.Recovered
	r.Quarantined += o.Quarantined
	r.Dropped += o.Dropped
	r.PoisonedWords += o.PoisonedWords
	r.HeaderQuarantined = r.HeaderQuarantined || o.HeaderQuarantined
	r.CRCDetected += o.CRCDetected
	r.CDBDetected += o.CDBDetected
	r.DiscardedRecords += o.DiscardedRecords
	r.BytesScanned += o.BytesScanned
	for _, n := range o.Notes {
		r.Note("%s", n)
	}
}

// String summarizes the report for logs.
func (r *RecoveryReport) String() string {
	s := fmt.Sprintf("recovered %d, quarantined %d, dropped %d, poisoned %d, %d bytes scanned",
		r.Recovered, r.Quarantined, r.Dropped, r.PoisonedWords, r.BytesScanned)
	if r.DetectedByIntegrity() {
		s += fmt.Sprintf(", integrity-detected (crc %d, cdb %d)", r.CRCDetected, r.CDBDetected)
	}
	if r.DiscardedRecords > 0 {
		s += fmt.Sprintf(", discarded %d uncommitted", r.DiscardedRecords)
	}
	if r.HeaderQuarantined {
		s += ", HEADER QUARANTINED"
	}
	if len(r.Notes) > 0 {
		s += " (" + strings.Join(r.Notes, "; ") + ")"
	}
	return s
}
