package fault

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/memory"
	"repro/internal/trace"
)

// chainGraph builds a manual 3-node chain a→b→c of word persists to
// distinct addresses (values 0x...01, 02, 03).
func chainGraph() *graph.Graph {
	g := &graph.Graph{}
	for i := 0; i < 3; i++ {
		g.AddNode("", trace.Event{
			Seq:  uint64(i),
			Kind: trace.Store,
			Size: 8,
			Addr: memory.PersistentBase + memory.Addr(i*8),
			Val:  0x1111111111111100 + uint64(i+1),
		})
	}
	g.AddEdge(0, 1, graph.ProgramOrder)
	g.AddEdge(1, 2, graph.ProgramOrder)
	return g
}

func TestFrontier(t *testing.T) {
	g := chainGraph()
	if got := Frontier(g, g.Full()); len(got) != 1 || got[0] != 2 {
		t.Fatalf("full-cut frontier = %v, want [2]", got)
	}
	c := g.Empty()
	c.Included[0] = true
	if got := Frontier(g, c); len(got) != 1 || got[0] != 0 {
		t.Fatalf("prefix-cut frontier = %v, want [0]", got)
	}
	if got := Frontier(g, g.Empty()); len(got) != 0 {
		t.Fatalf("empty-cut frontier = %v, want none", got)
	}
}

func TestMaterializeEmptyPlanMatchesGraph(t *testing.T) {
	g := chainGraph()
	for _, c := range []graph.Cut{g.Full(), g.Empty(), g.PrefixCut(2)} {
		if !Materialize(g, c, Plan{}).Equal(g.Materialize(c)) {
			t.Fatal("empty plan must reproduce graph.Materialize")
		}
	}
}

func TestMaterializeDropCascades(t *testing.T) {
	g := chainGraph()
	// Dropping the interior node 1 must exclude its dependent 2 as
	// well, leaving only node 0's write.
	im := Materialize(g, g.Full(), Plan{Faults: []Fault{{Kind: Drop, Node: 1}}})
	if got := im.ReadWord(memory.PersistentBase); got != 0x1111111111111101 {
		t.Fatalf("node 0 write lost: %#x", got)
	}
	for i := 1; i < 3; i++ {
		if got := im.ReadWord(memory.PersistentBase + memory.Addr(i*8)); got != 0 {
			t.Fatalf("node %d should be excluded, read %#x", i, got)
		}
	}
}

func TestMaterializeTornMaskAndCascade(t *testing.T) {
	g := chainGraph()
	// Tear node 0 keeping only byte 0: bytes 1..7 of its write are
	// lost, and nodes 1, 2 (dependents) are excluded entirely.
	im := Materialize(g, g.Full(), Plan{Faults: []Fault{{Kind: Torn, Node: 0, Mask: 0x01}}})
	if got := im.ReadWord(memory.PersistentBase); got != 0x01 {
		t.Fatalf("torn write = %#x, want 0x01 (byte 0 only)", got)
	}
	if got := im.ReadWord(memory.PersistentBase + 8); got != 0 {
		t.Fatalf("dependent of torn persist must be excluded, read %#x", got)
	}
	// Mask 0 (nothing landed) behaves like a drop.
	im = Materialize(g, g.Full(), Plan{Faults: []Fault{{Kind: Torn, Node: 2, Mask: 0}}})
	if got := im.ReadWord(memory.PersistentBase + 16); got != 0 {
		t.Fatalf("zero-mask tear should land nothing, read %#x", got)
	}
	if got := im.ReadWord(memory.PersistentBase + 8); got != 0x1111111111111102 {
		t.Fatalf("non-dependent write lost: %#x", got)
	}
}

func TestMaterializeFlips(t *testing.T) {
	g := chainGraph()
	a := memory.PersistentBase + 8
	im := Materialize(g, g.Full(), Plan{Faults: []Fault{
		{Kind: FlipSilent, Addr: a, Bit: 1},
		{Kind: FlipDetected, Addr: a + 16, Bit: 0},
	}})
	if got := im.ReadWord(a); got != 0x1111111111111102^0x02 {
		t.Fatalf("silent flip not applied: %#x", got)
	}
	if im.Poisoned(a) {
		t.Fatal("silent flip must not poison")
	}
	if !im.Poisoned(a + 16) {
		t.Fatal("detectable flip must poison the word")
	}
	// Retry faults never change the image.
	if !Materialize(g, g.Full(), Plan{Faults: []Fault{{Kind: Retry, Node: 1, Attempts: 3}}}).
		Equal(g.Materialize(g.Full())) {
		t.Fatal("retry fault must leave the image unchanged")
	}
}

func TestReproRoundTrip(t *testing.T) {
	g := chainGraph()
	s := &Scenario{
		Params: []Param{{"workload", "queue"}, {"design", "cwl"}, {"seed", "42"}},
		Cut:    g.PrefixCut(2),
		Plan: Plan{Faults: []Fault{
			{Kind: Torn, Node: 1, Mask: 0xa5},
			{Kind: Drop, Node: 0},
			{Kind: Retry, Node: 2, Attempts: 3},
			{Kind: FlipDetected, Addr: memory.PersistentBase + 13, Bit: 7},
			{Kind: FlipSilent, Addr: memory.PersistentBase + 64, Bit: 0},
		}},
	}
	line := s.Repro()
	back, err := ParseRepro(line)
	if err != nil {
		t.Fatalf("ParseRepro(%q): %v", line, err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v\nline: %s", s, back, line)
	}
	if v, ok := back.Param("design"); !ok || v != "cwl" {
		t.Fatalf("Param(design) = %q, %v", v, ok)
	}
	// An empty plan (annotation-bug repro) round-trips too.
	s2 := &Scenario{Cut: g.Full()}
	back2, err := ParseRepro(s2.Repro())
	if err != nil {
		t.Fatal(err)
	}
	if back2.Plan.Len() != 0 || len(back2.Cut.Included) != 3 {
		t.Fatalf("empty-plan round trip: %+v", back2)
	}
}

func TestParseReproErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"fault2|a=b|cut=1:01|plan=",
		"fault1|a=b|cut=1:01",
		"fault1|=x|cut=1:01|plan=",
		"fault1||cut=9:00|plan=",
		"fault1||cut=1:01|plan=bogus@3",
		"fault1||cut=1:01|plan=torn@1",
		"fault1||cut=1:01|plan=flipd@zz.1",
	} {
		if _, err := ParseRepro(bad); err == nil {
			t.Errorf("ParseRepro(%q) should fail", bad)
		}
	}
}

func TestGenPlanDeterministicAndLegal(t *testing.T) {
	g := chainGraph()
	c := g.Full()
	words := g.Materialize(c).WrittenWords()
	p1 := GenPlan(rand.New(rand.NewSource(7)), g, c, words, GenConfig{})
	p2 := GenPlan(rand.New(rand.NewSource(7)), g, c, words, GenConfig{})
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("same rng seed must give same plan: %v vs %v", p1, p2)
	}
	frontier := map[graph.NodeID]bool{}
	for _, n := range Frontier(g, c) {
		frontier[n] = true
	}
	for seed := int64(0); seed < 50; seed++ {
		p := GenPlan(rand.New(rand.NewSource(seed)), g, c, words, GenConfig{})
		for _, f := range p.Faults {
			switch f.Kind {
			case Torn, Drop:
				if !frontier[f.Node] {
					t.Fatalf("seed %d: %v targets non-frontier node", seed, f)
				}
			case Retry:
				if f.Attempts <= 0 {
					t.Fatalf("seed %d: retry with no attempts", seed)
				}
			}
		}
	}
}

func TestPlanHelpers(t *testing.T) {
	p := Plan{Faults: []Fault{
		{Kind: Retry, Node: 3, Attempts: 2},
		{Kind: FlipSilent, Addr: memory.PersistentBase, Bit: 1},
		{Kind: Retry, Node: 3, Attempts: 1},
	}}
	if !p.HasSilentFlip() {
		t.Fatal("HasSilentFlip")
	}
	if got := p.RetryProfile(); got[3] != 3 {
		t.Fatalf("RetryProfile = %v", got)
	}
	q := p.Without(1)
	if q.Len() != 2 || q.HasSilentFlip() {
		t.Fatalf("Without: %+v", q)
	}
	if p.Len() != 3 {
		t.Fatal("Without must not mutate the receiver")
	}
}

func TestRecoveryReport(t *testing.T) {
	var r RecoveryReport
	if r.Detected() {
		t.Fatal("zero report must be clean")
	}
	r.Quarantined++
	if !r.Detected() {
		t.Fatal("quarantine is detection")
	}
	var h RecoveryReport
	h.HeaderQuarantined = true
	if !h.Detected() {
		t.Fatal("header quarantine is detection")
	}
	for i := 0; i < 20; i++ {
		h.Note("n%d", i)
	}
	if len(h.Notes) != maxNotes {
		t.Fatalf("notes should cap at %d, got %d", maxNotes, len(h.Notes))
	}
	r.Merge(h)
	if !r.HeaderQuarantined || r.Quarantined != 1 {
		t.Fatalf("merge: %+v", r)
	}
}
