// Package stats provides the small statistics and formatting helpers
// the benchmark harness needs: summary statistics, histograms (used for
// the paper's insert-distance tracing validation, §7), and aligned
// text-table rendering for the Table 1 / Figure 3–5 reproductions.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds order statistics of a sample.
type Summary struct {
	Count         int
	Min, Max      float64
	Mean          float64
	P50, P90, P99 float64
	StdDev        float64
}

// Summarize computes summary statistics; it returns a zero Summary for
// an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	// Welford's online update: the naive E[x²]−E[x]² form cancels
	// catastrophically when the mean dwarfs the spread (e.g. nanosecond
	// timestamps), silently reporting StdDev 0.
	mean, m2 := 0.0, 0.0
	for i, v := range s {
		d := v - mean
		mean += d / float64(i+1)
		m2 += d * (v - mean)
	}
	n := float64(len(s))
	variance := m2 / n
	return Summary{
		Count:  len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   mean,
		P50:    Percentile(s, 0.50),
		P90:    Percentile(s, 0.90),
		P99:    Percentile(s, 0.99),
		StdDev: math.Sqrt(variance),
	}
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of an ascending-sorted
// sample, linearly interpolating between the two closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// IntsToFloats converts a sample of ints.
func IntsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}

// Histogram is a fixed-bucket histogram over integer values.
type Histogram struct {
	// Bounds are ascending upper bounds; a final overflow bucket counts
	// values above the last bound.
	Bounds []int
	Counts []int
	Total  int
}

// NewHistogram builds a histogram with the given ascending bounds.
func NewHistogram(bounds ...int) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i-1] >= bounds[i] {
			panic("stats: histogram bounds must ascend")
		}
	}
	return &Histogram{Bounds: bounds, Counts: make([]int, len(bounds)+1)}
}

// Add records one observation.
func (h *Histogram) Add(v int) {
	h.Total++
	for i, b := range h.Bounds {
		if v <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// AddAll records a sample.
func (h *Histogram) AddAll(vs []int) {
	for _, v := range vs {
		h.Add(v)
	}
}

// String renders the histogram with proportional bars.
func (h *Histogram) String() string {
	var b strings.Builder
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	label := func(i int) string {
		if i == len(h.Bounds) {
			if len(h.Bounds) == 0 {
				// NewHistogram() with no bounds: the overflow bucket
				// is the only bucket and holds every value.
				return "all"
			}
			return fmt.Sprintf(">%d", h.Bounds[len(h.Bounds)-1])
		}
		lo := 0
		if i > 0 {
			lo = h.Bounds[i-1] + 1
		}
		if lo == h.Bounds[i] {
			return fmt.Sprintf("%d", lo)
		}
		return fmt.Sprintf("%d-%d", lo, h.Bounds[i])
	}
	for i, c := range h.Counts {
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", c*40/max)
		}
		fmt.Fprintf(&b, "%10s %8d %s\n", label(i), c, bar)
	}
	return b.String()
}

// Table renders aligned text tables (the pqbench output format).
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table with padded columns.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", width[i])
	}
	writeRow(rule)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values, quoting cells per
// RFC 4180 (commas, quotes, CR or LF force a quoted field).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n\r") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(esc(c))
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// FormatRate renders an operations-per-second rate compactly
// (e.g. "1.23M/s"); infinite rates render as "inf".
func FormatRate(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case v >= 1e9:
		return fmt.Sprintf("%.2fG/s", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM/s", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fk/s", v/1e3)
	default:
		return fmt.Sprintf("%.2f/s", v)
	}
}

// FormatNorm renders a rate normalized to instruction rate, bolding
// (with a trailing '*') values ≥ 1 the way the paper bolds Table 1
// entries that reach instruction execution rate.
func FormatNorm(v float64) string {
	if math.IsInf(v, 1) {
		return "inf*"
	}
	if v >= 1 {
		return fmt.Sprintf("%.2f*", v)
	}
	return fmt.Sprintf("%.3f", v)
}
