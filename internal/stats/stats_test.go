package stats

import (
	"encoding/csv"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 {
		t.Fatal("empty summary")
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{10, 20, 30, 40}
	if Percentile(s, 0) != 10 || Percentile(s, 1) != 40 {
		t.Fatal("extremes wrong")
	}
	if got := Percentile(s, 0.5); got != 25 {
		t.Fatalf("median = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("empty percentile should be NaN")
	}
}

func TestPercentileProperty(t *testing.T) {
	f := func(xs []float64, p float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		p = math.Abs(p)
		p -= math.Floor(p)
		s := make([]float64, len(xs))
		copy(s, xs)
		sort.Float64s(s)
		got := Percentile(s, p)
		return got >= s[0] && got <= s[len(s)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	h.AddAll([]int{1, 1, 2, 3, 5, 9, 100})
	if h.Total != 7 {
		t.Fatalf("total = %d", h.Total)
	}
	want := []int{2, 1, 1, 1, 2} // ≤1:{1,1}, 2:{2}, 3-4:{3}, 5-8:{5}, >8:{9,100}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("bucket %d = %d, want %d", i, h.Counts[i], c)
		}
	}
	out := h.String()
	if !strings.Contains(out, ">8") {
		t.Fatalf("histogram rendering:\n%s", out)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("descending bounds should panic")
		}
	}()
	NewHistogram(5, 3)
}

func TestIntsToFloats(t *testing.T) {
	f := IntsToFloats([]int{1, 2})
	if len(f) != 2 || f[0] != 1.0 || f[1] != 2.0 {
		t.Fatal("conversion wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("model", "rate")
	tbl.AddRow("strict", "0.033")
	tbl.AddRow("strand", "12.5*")
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "model") || !strings.Contains(lines[2], "strict") {
		t.Fatalf("table content:\n%s", out)
	}
	// Extra cells are dropped, missing cells padded.
	tbl2 := NewTable("a", "b")
	tbl2.AddRow("1", "2", "3")
	tbl2.AddRow("x")
	if !strings.Contains(tbl2.String(), "x") {
		t.Fatal("short row lost")
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("a", "b")
	tbl.AddRow(`say "hi"`, "x,y")
	csv := tbl.CSV()
	if !strings.Contains(csv, `"say ""hi""","x,y"`) {
		t.Fatalf("csv escaping:\n%s", csv)
	}
}

func TestFormatRate(t *testing.T) {
	cases := map[float64]string{
		2.5e9: "2.50G/s",
		3.1e6: "3.10M/s",
		4.2e3: "4.20k/s",
		9:     "9.00/s",
	}
	for v, want := range cases {
		if got := FormatRate(v); got != want {
			t.Errorf("FormatRate(%v) = %q, want %q", v, got, want)
		}
	}
	if FormatRate(math.Inf(1)) != "inf" {
		t.Error("inf formatting")
	}
}

func TestFormatNorm(t *testing.T) {
	if FormatNorm(0.033) != "0.033" {
		t.Errorf("got %q", FormatNorm(0.033))
	}
	if FormatNorm(1.5) != "1.50*" {
		t.Errorf("got %q", FormatNorm(1.5))
	}
	if FormatNorm(math.Inf(1)) != "inf*" {
		t.Errorf("got %q", FormatNorm(math.Inf(1)))
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tbl := NewTable("name", "value", "note")
	tbl.AddRow("plain", "a,b", `say "hi"`)
	tbl.AddRow("crlf\r\ncell", "line\nbreak", "cr\ronly")
	got := tbl.CSV()
	want := "name,value,note\n" +
		`plain,"a,b","say ""hi"""` + "\n" +
		"\"crlf\r\ncell\",\"line\nbreak\",\"cr\ronly\"\n"
	if got != want {
		t.Fatalf("CSV quoting:\ngot  %q\nwant %q", got, want)
	}
	// Round-trip through a conforming RFC 4180 reader.
	rd := csv.NewReader(strings.NewReader(got))
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("encoding/csv rejects output: %v", err)
	}
	if len(recs) != 3 || recs[1][1] != "a,b" || recs[2][1] != "line\nbreak" {
		t.Fatalf("round-trip mismatch: %q", recs)
	}
}

func TestHistogramNoBounds(t *testing.T) {
	// NewHistogram() is legal: one overflow bucket holding everything.
	// Regression: String used to index Bounds[-1] rendering its label.
	h := NewHistogram()
	h.AddAll([]int{1, 5, 9})
	if h.Total != 3 || h.Counts[0] != 3 {
		t.Fatalf("counts = %v, total = %d", h.Counts, h.Total)
	}
	s := h.String()
	if !strings.Contains(s, "all") || !strings.Contains(s, "3") {
		t.Fatalf("boundless histogram rendered %q, want the single bucket labeled 'all'", s)
	}
}

func TestSummarizeLargeMeanStdDev(t *testing.T) {
	// Regression: E[x²]−E[x]² catastrophically cancels when the mean
	// dwarfs the spread — the old code clamped the negative variance
	// to 0 and silently reported StdDev 0. Welford's update is exact
	// to rounding.
	xs := []float64{1e9, 1e9 + 1, 1e9 + 2}
	s := Summarize(xs)
	want := math.Sqrt(2.0 / 3.0) // population stddev of {0,1,2}
	if math.Abs(s.StdDev-want) > 1e-9 {
		t.Fatalf("StdDev = %v, want %v (catastrophic cancellation)", s.StdDev, want)
	}
	if s.Mean != 1e9+1 {
		t.Fatalf("Mean = %v", s.Mean)
	}

	// And the shifted sample must agree with the unshifted one.
	base := Summarize([]float64{0, 1, 2})
	if math.Abs(base.StdDev-s.StdDev) > 1e-9 {
		t.Fatalf("shift changed StdDev: %v vs %v", base.StdDev, s.StdDev)
	}
}
