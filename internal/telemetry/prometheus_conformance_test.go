package telemetry

import (
	"bytes"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// Conformance test for the Prometheus text exposition (format 0.0.4):
// a strict line parser walks the full output and enforces the format
// rules a real scraper relies on — contiguous families, HELP/TYPE
// ordering, sorted family order, valid label syntax and escaping,
// cumulative histogram buckets with le="+Inf" equal to _count, and
// float formatting. Registrations are deliberately interleaved across
// families so any grouping regression splits a family and fails here.

type promSample struct {
	name   string // base name without labels
	labels string // raw label block including braces, "" if none
	value  float64
	raw    string
}

type promFamily struct {
	name    string
	kind    string
	help    string
	samples []promSample
}

var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var promLabelKeyRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// parsePromSample splits `name{k="v",...} value` strictly, validating
// label syntax and escape sequences.
func parsePromSample(t *testing.T, line string) promSample {
	t.Helper()
	s := promSample{raw: line}
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		s.name = rest[:brace]
		end := parseLabelBlock(t, rest[brace:])
		s.labels = rest[brace : brace+end]
		rest = rest[brace+end:]
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			t.Fatalf("no value separator: %q", line)
		}
		s.name = rest[:sp]
		rest = rest[sp:]
	}
	if !promNameRe.MatchString(s.name) {
		t.Fatalf("bad metric name %q in %q", s.name, line)
	}
	if !strings.HasPrefix(rest, " ") {
		t.Fatalf("missing single-space separator: %q", line)
	}
	valStr := rest[1:]
	var err error
	switch valStr {
	case "+Inf":
		s.value = inf()
	case "-Inf":
		s.value = -inf()
	default:
		s.value, err = strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value %q in %q: %v", valStr, line, err)
		}
	}
	return s
}

func inf() float64 { v := 0.0; return 1 / v }

// parseLabelBlock validates a `{k="v",...}` block starting at in[0]=='{'
// and returns its length. It enforces key syntax and that values only
// escape \\, \", and \n.
func parseLabelBlock(t *testing.T, in string) int {
	t.Helper()
	i := 1 // past '{'
	for {
		start := i
		for i < len(in) && in[i] != '=' {
			i++
		}
		key := in[start:i]
		if !promLabelKeyRe.MatchString(key) {
			t.Fatalf("bad label key %q in %q", key, in)
		}
		i++ // '='
		if i >= len(in) || in[i] != '"' {
			t.Fatalf("label value not quoted in %q", in)
		}
		i++
		for i < len(in) && in[i] != '"' {
			if in[i] == '\\' {
				if i+1 >= len(in) || !strings.ContainsRune(`\"n`, rune(in[i+1])) {
					t.Fatalf("bad escape at %d in %q", i, in)
				}
				i++
			}
			if in[i] == '\n' {
				t.Fatalf("raw newline inside label value in %q", in)
			}
			i++
		}
		if i >= len(in) {
			t.Fatalf("unterminated label value in %q", in)
		}
		i++ // closing quote
		if i < len(in) && in[i] == ',' {
			i++
			continue
		}
		if i < len(in) && in[i] == '}' {
			return i + 1
		}
		t.Fatalf("expected ',' or '}' at %d in %q", i, in)
	}
}

// parsePromText parses the whole exposition into families, enforcing
// the structural rules as it goes.
func parsePromText(t *testing.T, text string) []promFamily {
	t.Helper()
	var fams []promFamily
	seen := map[string]bool{}
	var cur *promFamily
	var pendingHelp, pendingHelpName string
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 {
				t.Fatalf("malformed HELP: %q", line)
			}
			pendingHelpName, pendingHelp = parts[0], parts[1]
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE: %q", line)
			}
			name, kind := parts[0], parts[1]
			if seen[name] {
				t.Fatalf("family %q re-opened: families must be contiguous", name)
			}
			seen[name] = true
			if pendingHelpName != "" && pendingHelpName != name {
				t.Fatalf("HELP for %q not followed by its TYPE (got %q)", pendingHelpName, name)
			}
			fams = append(fams, promFamily{name: name, kind: kind, help: pendingHelp})
			cur = &fams[len(fams)-1]
			pendingHelp, pendingHelpName = "", ""
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unexpected comment line: %q", line)
		default:
			s := parsePromSample(t, line)
			if cur == nil {
				t.Fatalf("sample before any TYPE: %q", line)
			}
			base := s.name
			if cur.kind == "histogram" {
				base = strings.TrimSuffix(base, "_bucket")
				base = strings.TrimSuffix(base, "_sum")
				base = strings.TrimSuffix(base, "_count")
			}
			if base != cur.name {
				t.Fatalf("sample %q under family %q: families must be contiguous", s.name, cur.name)
			}
			cur.samples = append(cur.samples, s)
		}
	}
	return fams
}

func leValue(t *testing.T, labels string) float64 {
	t.Helper()
	m := regexp.MustCompile(`le="([^"]*)"`).FindStringSubmatch(labels)
	if m == nil {
		t.Fatalf("bucket without le label: %q", labels)
	}
	if m[1] == "+Inf" {
		return inf()
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("bad le %q: %v", m[1], err)
	}
	return v
}

func TestWritePrometheusConformance(t *testing.T) {
	reg := NewRegistry()
	// Interleave registrations across three families: the exporter must
	// regroup them into contiguous blocks.
	reg.SetHelp("sweep_items_total", "items completed per sweep")
	reg.Counter(Label("sweep_items_total", "sweep", "table1")).Add(12)
	reg.Gauge(Label("sweep_workers_busy", "sweep", "table1")).Set(3)
	reg.Counter(Label("sweep_items_total", "sweep", "fig3")).Add(7)
	h := reg.Histogram(Label("sweep_queue_depth", "sweep", "table1"), 1, 2, 4)
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	reg.Counter(Label("sweep_items_total", "sweep", "window")).Add(1)
	// Label escaping: backslash, quote, newline.
	reg.Gauge(Label("escape_check", "path", `a\b`, "quote", `say "hi"`, "nl", "l1\nl2")).Set(1)
	// Float formatting: integral gauge must not use an exponent.
	reg.Gauge("big_integral").Set(1234567)
	reg.Gauge("fractional").Set(0.125)
	// Timer: exports as a _seconds histogram family.
	stop := reg.Timer("phase").Time()
	stop()
	// Manifest info metric participates like any gauge family.
	(&Manifest{Tool: "t", GitSHA: "abc", GoVersion: "go", OS: "linux", Arch: "amd64", GOMAXPROCS: 4}).InfoMetric(reg)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	fams := parsePromText(t, text)

	byName := map[string]*promFamily{}
	var order []string
	for i := range fams {
		byName[fams[i].name] = &fams[i]
		order = append(order, fams[i].name)
	}
	if !sort.StringsAreSorted(order) {
		t.Errorf("families not sorted: %v", order)
	}

	items := byName["sweep_items_total"]
	if items == nil || items.kind != "counter" {
		t.Fatalf("sweep_items_total family: %+v", items)
	}
	if items.help != "items completed per sweep" {
		t.Errorf("help = %q", items.help)
	}
	if len(items.samples) != 3 {
		t.Errorf("sweep_items_total has %d samples, want 3 (family split?)", len(items.samples))
	}

	// Histogram: cumulative buckets, ascending le, +Inf == count.
	depth := byName["sweep_queue_depth"]
	if depth == nil || depth.kind != "histogram" {
		t.Fatalf("sweep_queue_depth family: %+v", depth)
	}
	var buckets []promSample
	var count, sum *promSample
	for i := range depth.samples {
		s := &depth.samples[i]
		switch s.name {
		case "sweep_queue_depth_bucket":
			buckets = append(buckets, *s)
		case "sweep_queue_depth_count":
			count = s
		case "sweep_queue_depth_sum":
			sum = s
		}
	}
	if count == nil || sum == nil || len(buckets) != 4 {
		t.Fatalf("histogram lines: %d buckets, count %v, sum %v", len(buckets), count, sum)
	}
	prevLe, prevCum := -inf(), -1.0
	for _, b := range buckets {
		le := leValue(t, b.labels)
		if le <= prevLe {
			t.Errorf("le not ascending: %v after %v", le, prevLe)
		}
		if b.value < prevCum {
			t.Errorf("bucket counts not cumulative: %v after %v", b.value, prevCum)
		}
		prevLe, prevCum = le, b.value
	}
	last := buckets[len(buckets)-1]
	if le := leValue(t, last.labels); le != inf() {
		t.Errorf("final bucket le = %v, want +Inf", le)
	}
	if last.value != count.value {
		t.Errorf("le=+Inf bucket %v != count %v", last.value, count.value)
	}
	if count.value != 4 || sum.value != 105 {
		t.Errorf("count %v sum %v, want 4 and 105", count.value, sum.value)
	}

	// Escaping round-trip: the raw line must contain the escaped forms.
	esc := byName["escape_check"]
	if esc == nil {
		t.Fatal("escape_check family missing")
	}
	raw := esc.samples[0].raw
	for _, want := range []string{`path="a\\b"`, `quote="say \"hi\""`, `nl="l1\nl2"`} {
		if !strings.Contains(raw, want) {
			t.Errorf("escaped label %s missing from %q", want, raw)
		}
	}

	// Float formatting.
	if !strings.Contains(text, "big_integral 1234567\n") {
		t.Error("integral gauge not rendered without exponent")
	}
	if !strings.Contains(text, "fractional 0.125\n") {
		t.Error("fractional gauge misrendered")
	}

	// Timer family exported under the _seconds unit suffix.
	if f := byName["phase_seconds"]; f == nil || f.kind != "histogram" {
		t.Errorf("phase_seconds family: %+v", f)
	}
	if f := byName["run_info"]; f == nil || f.kind != "gauge" || f.samples[0].value != 1 {
		t.Errorf("run_info family: %+v", f)
	}
}
