// Package telemetry is the observability layer of the reproduction:
// a lightweight metrics registry (counters, gauges, histograms, timers;
// snapshots to JSON and Prometheus text format) and a persist-timeline
// tracer that records per-persist provenance from the timing simulator
// and exports Chrome trace-event JSON viewable in Perfetto, plus a
// critical-path attribution report.
//
// The paper's whole methodology is "measure the persist ordering
// constraint critical path" (§7); telemetry makes that measurement
// inspectable: which constraint edges, threads, and annotation sites
// make up the path, and what every subsystem counted along the way.
// The tracer independently reconstructs the critical path from the
// recorded constraint edges, so agreement with core.Result doubles as
// a cross-check of the timing model.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics. Metric names may carry Prometheus-style
// labels inline — Label("x_total", "kind", "load") yields
// `x_total{kind="load"}` — and each distinct full name is a distinct
// series. All methods are safe for concurrent use; the counter/gauge
// fast paths are atomic.
type Registry struct {
	mu    sync.Mutex
	order []string // registration order, for deterministic output
	m     map[string]metric
	help  map[string]string // keyed by base name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]metric), help: make(map[string]string)}
}

// Label renders a metric name with labels appended in Prometheus text
// syntax: Label("n", "k", "v") == `n{k="v"}`. Pairs are emitted in the
// given order; values are escaped per the text format.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic("telemetry: Label requires key/value pairs")
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(kv[i+1])
		b.WriteString(v)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// baseName strips an inline label set: `n{k="v"}` → `n`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelPart returns the inline label set including braces, or "".
func labelPart(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[i:]
	}
	return ""
}

// timerName splices the timer's _seconds unit suffix onto the base
// name, before any inline label set.
func timerName(name string) string {
	return baseName(name) + "_seconds" + labelPart(name)
}

// metric is the common interface of registered series.
type metric interface{ kind() string }

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

func (*Counter) kind() string { return "counter" }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for Prometheus semantics; not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float64.
type Gauge struct{ bits atomic.Uint64 }

func (*Gauge) kind() string { return "gauge" }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (not atomic with respect to concurrent Add; last write
// wins under contention — fine for the single-threaded harness).
func (g *Gauge) Add(d float64) { g.Set(g.Value() + d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; final +Inf bucket implicit
	counts []int64   // len(bounds)+1
	count  int64
	sum    float64
}

func (*Histogram) kind() string { return "histogram" }

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// snapshot returns a copy under the lock.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
	}
	return s
}

// Timer is a histogram over durations in seconds.
type Timer struct{ h *Histogram }

func (*Timer) kind() string { return "timer" }

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) { t.h.Observe(d.Seconds()) }

// Time starts a stopwatch; the returned func records the elapsed time.
func (t *Timer) Time() func() {
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// DefaultDurationBounds are the Timer bucket bounds, in seconds.
var DefaultDurationBounds = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 30, 120,
}

// register fetches-or-creates a series, enforcing kind consistency.
func (r *Registry) register(name string, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.m[name]; ok {
		return m
	}
	m := mk()
	r.m[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	m := r.register(name, func() metric { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %s", name, m.kind()))
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	m := r.register(name, func() metric { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %s", name, m.kind()))
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket bounds on first use (later calls reuse the existing
// bounds).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i-1] >= bounds[i] {
			panic("telemetry: histogram bounds must ascend")
		}
	}
	m := r.register(name, func() metric {
		return &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]int64, len(bounds)+1)}
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %s", name, m.kind()))
	}
	return h
}

// Timer returns the named timer, creating it on first use. The series
// is exported as a histogram in seconds.
func (r *Registry) Timer(name string) *Timer {
	m := r.register(name, func() metric {
		return &Timer{h: &Histogram{
			bounds: append([]float64(nil), DefaultDurationBounds...),
			counts: make([]int64, len(DefaultDurationBounds)+1),
		}}
	})
	t, ok := m.(*Timer)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %s", name, m.kind()))
	}
	return t
}

// SetHelp attaches Prometheus HELP text to a base metric name.
func (r *Registry) SetHelp(base, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[base] = help
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra final
	// entry for observations above the last bound.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of every series.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	series := make(map[string]metric, len(r.m))
	for k, v := range r.m {
		series[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, name := range names {
		switch m := series[name].(type) {
		case *Counter:
			s.Counters[name] = m.Value()
		case *Gauge:
			s.Gauges[name] = m.Value()
		case *Histogram:
			s.Histograms[name] = m.snapshot()
		case *Timer:
			s.Histograms[timerName(name)] = m.h.snapshot()
		}
	}
	if len(s.Counters) == 0 {
		s.Counters = nil
	}
	if len(s.Gauges) == 0 {
		s.Gauges = nil
	}
	if len(s.Histograms) == 0 {
		s.Histograms = nil
	}
	return s
}

// WriteJSON writes an indented JSON snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4). Series are grouped into metric families by
// base name — the format requires every line of a family to be
// contiguous, which raw registration order cannot guarantee when
// series of different families interleave — and families are emitted
// in sorted base-name order; within a family, series keep registration
// order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	series := make(map[string]metric, len(r.m))
	for k, v := range r.m {
		series[k] = v
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	// Group registered series into families; timers export under their
	// _seconds-suffixed base name.
	exportBase := func(name string) string {
		if _, ok := series[name].(*Timer); ok {
			return baseName(timerName(name))
		}
		return baseName(name)
	}
	families := make(map[string][]string)
	var famOrder []string
	for _, name := range names {
		base := exportBase(name)
		if _, ok := families[base]; !ok {
			famOrder = append(famOrder, base)
		}
		families[base] = append(families[base], name)
	}
	sort.Strings(famOrder)

	var b strings.Builder
	header := func(base, kind string) {
		if h := help[base]; h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", base, h)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", base, kind)
	}
	histo := func(name string, hs HistogramSnapshot) {
		base, labels := baseName(name), labelPart(name)
		cum := int64(0)
		for i, bound := range hs.Bounds {
			cum += hs.Counts[i]
			fmt.Fprintf(&b, "%s_bucket%s %d\n", base, mergeLabels(labels, "le", formatFloat(bound)), cum)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", base, mergeLabels(labels, "le", "+Inf"), hs.Count)
		fmt.Fprintf(&b, "%s_sum%s %s\n", base, labels, formatFloat(hs.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", base, labels, hs.Count)
	}
	for _, base := range famOrder {
		members := families[base]
		switch series[members[0]].(type) {
		case *Counter:
			header(base, "counter")
		case *Gauge:
			header(base, "gauge")
		case *Histogram, *Timer:
			header(base, "histogram")
		}
		for _, name := range members {
			switch m := series[name].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s %d\n", name, m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s %s\n", name, formatFloat(m.Value()))
			case *Histogram:
				histo(name, m.snapshot())
			case *Timer:
				histo(timerName(name), m.h.snapshot())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// mergeLabels appends one extra label to an existing inline label set.
func mergeLabels(labels, k, v string) string {
	extra := k + `="` + v + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// formatFloat renders floats the way Prometheus expects (no exponent
// for integral values, +Inf spelled out).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// SortedNames returns all registered series names, sorted — handy for
// tests and dumps.
func (r *Registry) SortedNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}
