package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// SpanTracer records wall-clock spans of the harness itself — sweep
// items with worker attribution, trace-cache generate/replay work,
// graph builds, campaign classify/minimize phases — as opposed to the
// persist-timeline Tracer, whose x-axis is logical program time. Spans
// export in the same Chrome trace-event format (WriteChromeTrace), so
// Perfetto shows where the harness spent real time next to where the
// simulated workload spent logical time, and every ended span feeds a
// per-category duration histogram (harness_span_seconds{span="..."})
// into the metrics registry.
//
// All methods are safe for concurrent use, and the whole API is
// nil-safe: a nil *SpanTracer records nothing and a nil *Span ignores
// End/Worker/Arg, so instrumented code threads an optional tracer
// without branching (the trace-cache idiom).
type SpanTracer struct {
	mu    sync.Mutex
	epoch time.Time
	reg   *Registry // optional; receives harness_span_seconds
	spans []SpanRecord
}

// SpanRecord is one completed span.
type SpanRecord struct {
	// Cat groups spans by harness subsystem ("sweep", "trace-cache",
	// "campaign", "graph"); the registry histogram is per-category.
	Cat string
	// Name is the specific operation (sweep label, "generate", ...).
	Name string
	// Worker is the sweep worker that ran the span, or -1 when the span
	// has no worker attribution (it renders on the "main" lane).
	Worker int
	// Start is the offset from the tracer's epoch; Dur the wall time.
	Start time.Duration
	Dur   time.Duration
	// Args carries extra provenance into the Chrome trace (item index,
	// workload key, hit/miss).
	Args map[string]any
}

// NewSpanTracer returns a tracer whose epoch is now. reg may be nil;
// when set, every ended span observes a harness_span_seconds{span=cat}
// histogram in it.
func NewSpanTracer(reg *Registry) *SpanTracer {
	if reg != nil {
		reg.SetHelp("harness_span_seconds", "wall-clock duration of harness spans, by category")
	}
	return &SpanTracer{epoch: time.Now(), reg: reg}
}

// Span is an open span; End completes and records it.
type Span struct {
	t     *SpanTracer
	rec   SpanRecord
	start time.Time
}

// Start opens a span. Safe on a nil tracer (returns nil; the nil *Span
// no-ops).
func (t *SpanTracer) Start(cat, name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, rec: SpanRecord{Cat: cat, Name: name, Worker: -1}, start: time.Now()}
}

// Worker attributes the span to a sweep worker index. Chainable;
// nil-safe.
func (s *Span) Worker(w int) *Span {
	if s != nil {
		s.rec.Worker = w
	}
	return s
}

// Arg attaches one provenance argument. Chainable; nil-safe.
func (s *Span) Arg(k string, v any) *Span {
	if s == nil {
		return s
	}
	if s.rec.Args == nil {
		s.rec.Args = make(map[string]any, 4)
	}
	s.rec.Args[k] = v
	return s
}

// End completes the span, appends it to the tracer, and observes the
// per-category duration histogram. Nil-safe; ending twice records
// twice (don't).
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	s.rec.Start = s.start.Sub(t.epoch)
	s.rec.Dur = time.Since(s.start)
	t.mu.Lock()
	t.spans = append(t.spans, s.rec)
	reg := t.reg
	t.mu.Unlock()
	if reg != nil {
		reg.Histogram(Label("harness_span_seconds", "span", s.rec.Cat), spanDurationBounds...).
			Observe(s.rec.Dur.Seconds())
	}
}

// spanDurationBounds bucket harness spans: microseconds (cache hits)
// through minutes (whole campaigns).
var spanDurationBounds = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 30, 120,
}

// Len returns the number of completed spans. Nil-safe.
func (t *SpanTracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the completed spans. Nil-safe.
func (t *SpanTracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// SpanTotal aggregates spans for one worker lane.
type SpanTotal struct {
	Count int
	Busy  time.Duration
}

// WorkerTotals aggregates completed spans by worker index, filtered by
// category and name ("" matches any) — the reconciliation surface:
// summing Count over workers for cat "sweep" and a sweep's label must
// equal that sweep's sweep_items_total counter. Nil-safe.
func (t *SpanTracer) WorkerTotals(cat, name string) map[int]SpanTotal {
	out := make(map[int]SpanTotal)
	if t == nil {
		return out
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.spans {
		sp := &t.spans[i]
		if (cat != "" && sp.Cat != cat) || (name != "" && sp.Name != name) {
			continue
		}
		tot := out[sp.Worker]
		tot.Count++
		tot.Busy += sp.Dur
		out[sp.Worker] = tot
	}
	return out
}

// spanPID is the Chrome trace process id of the wall-clock lane set;
// persist-timeline tracers occupy pids 1..n, so the harness process
// sorts after them.
const spanPID = 1000

// chromeEvents renders the span set as one Chrome trace process with a
// lane per worker (plus a "main" lane for unattributed spans).
func (t *SpanTracer) chromeEvents() []chromeEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]SpanRecord(nil), t.spans...)
	t.mu.Unlock()

	ev := []chromeEvent{
		{Ph: "M", Name: "process_name", PID: spanPID,
			Args: map[string]any{"name": "harness (wall clock)"}},
		{Ph: "M", Name: "process_sort_index", PID: spanPID,
			Args: map[string]any{"sort_index": spanPID}},
	}
	workers := make(map[int]bool)
	for i := range spans {
		workers[spans[i].Worker] = true
	}
	lanes := make([]int, 0, len(workers))
	for w := range workers {
		lanes = append(lanes, w)
	}
	sort.Ints(lanes)
	for _, w := range lanes {
		name := "main"
		if w >= 0 {
			name = fmt.Sprintf("worker %d", w)
		}
		ev = append(ev,
			chromeEvent{Ph: "M", Name: "thread_name", PID: spanPID, TID: spanTID(w),
				Args: map[string]any{"name": name}},
			chromeEvent{Ph: "M", Name: "thread_sort_index", PID: spanPID, TID: spanTID(w),
				Args: map[string]any{"sort_index": spanTID(w)}},
		)
	}
	for i := range spans {
		sp := &spans[i]
		args := map[string]any{"worker": sp.Worker}
		for k, v := range sp.Args {
			args[k] = v
		}
		ev = append(ev, chromeEvent{
			Ph: "X", Cat: sp.Cat, Name: sp.Name,
			PID: spanPID, TID: spanTID(sp.Worker),
			TS: sp.Start.Microseconds(), Dur: dur(sp.Dur.Microseconds()),
			Args: args,
		})
	}
	return ev
}

// spanTID maps a worker index to a Chrome lane: main first, then
// workers in order.
func spanTID(worker int) int64 {
	if worker < 0 {
		return 0
	}
	return int64(worker) + 1
}

// WriteChromeTrace exports the wall-clock spans alone, with the
// manifest (may be nil) in the document metadata.
func (t *SpanTracer) WriteChromeTrace(w io.Writer, m *Manifest) error {
	return EncodeChromeTraceDoc(w, m, t)
}

// EncodeChromeTraceDoc writes one Chrome trace-event JSON document
// holding the wall-clock span process (spans may be nil), every given
// persist-timeline tracer as its own process, and the run manifest
// (may be nil) under metadata.manifest — Perfetto and chrome://tracing
// ignore unknown top-level keys but keep them in "Info and stats".
func EncodeChromeTraceDoc(w io.Writer, m *Manifest, spans *SpanTracer, tracers ...*Tracer) error {
	var events []chromeEvent
	for i, t := range tracers {
		events = append(events, t.chromeEvents(int64(i)+1)...)
	}
	events = append(events, spans.chromeEvents()...)
	doc := struct {
		TraceEvents     []chromeEvent  `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		Metadata        map[string]any `json:"metadata,omitempty"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	if m != nil {
		doc.Metadata = map[string]any{"manifest": m}
	}
	return writeCompactJSON(w, doc)
}
