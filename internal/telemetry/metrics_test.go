package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("ops_total") != c {
		t.Fatal("re-registering a counter must return the same instance")
	}
	g := r.Gauge("depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as a gauge after counter should panic")
		}
	}()
	r.Gauge("x")
}

func TestLabel(t *testing.T) {
	got := Label("hits_total", "model", "epoch", "tid", "3")
	want := `hits_total{model="epoch",tid="3"}`
	if got != want {
		t.Fatalf("Label = %q, want %q", got, want)
	}
	if baseName(got) != "hits_total" {
		t.Fatalf("baseName = %q", baseName(got))
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 1, 10, 100)
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 4 || s.Sum != 555.5 {
		t.Fatalf("count=%d sum=%v", s.Count, s.Sum)
	}
	// Counts are per-bucket (non-cumulative): <=1, <=10, <=100, +Inf.
	want := []int64{1, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("step")
	tm.Observe(25 * time.Millisecond)
	snap := r.Snapshot()
	h, ok := snap.Histograms["step_seconds"]
	if !ok {
		t.Fatalf("timer missing from snapshot: %+v", snap.Histograms)
	}
	if h.Count != 1 || h.Sum < 0.02 || h.Sum > 0.03 {
		t.Fatalf("timer snapshot = %+v", h)
	}
}

// A labeled timer must splice the _seconds unit suffix before the label
// braces, both in the snapshot key and in the Prometheus exposition.
func TestTimerLabeled(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer(Label("campaign", "workload", "queue"))
	tm.Observe(5 * time.Millisecond)
	snap := r.Snapshot()
	key := `campaign_seconds{workload="queue"}`
	if _, ok := snap.Histograms[key]; !ok {
		t.Fatalf("snapshot missing %q: %+v", key, snap.Histograms)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `campaign_seconds_bucket{workload="queue",le="+Inf"} 1`) {
		t.Fatalf("prometheus output missing well-formed labeled timer bucket:\n%s", out)
	}
	if strings.Contains(out, `"}_second`) {
		t.Fatalf("unit suffix appended after label braces:\n%s", out)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("ops_total", "kind", "load")).Add(7)
	r.Gauge("depth").Set(4)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, buf.String())
	}
	if snap.Counters[`ops_total{kind="load"}`] != 7 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if snap.Gauges["depth"] != 4 {
		t.Fatalf("gauges = %+v", snap.Gauges)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("ops_total", "operations")
	r.Counter(Label("ops_total", "kind", "load")).Add(2)
	r.Counter(Label("ops_total", "kind", "store")).Add(3)
	r.Gauge("depth").Set(12)
	h := r.Histogram("occ", 0.5)
	h.Observe(0.25)
	h.Observe(0.75)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, w := range []string{
		"# HELP ops_total operations",
		"# TYPE ops_total counter",
		`ops_total{kind="load"} 2`,
		`ops_total{kind="store"} 3`,
		"# TYPE depth gauge",
		"depth 12",
		"# TYPE occ histogram",
		`occ_bucket{le="0.5"} 1`,
		`occ_bucket{le="+Inf"} 2`,
		"occ_sum 1",
		"occ_count 2",
	} {
		if !strings.Contains(out, w) {
			t.Fatalf("prometheus output missing %q:\n%s", w, out)
		}
	}
	// TYPE header must appear once per base name even with two series.
	if strings.Count(out, "# TYPE ops_total counter") != 1 {
		t.Fatalf("duplicate TYPE header:\n%s", out)
	}
}
