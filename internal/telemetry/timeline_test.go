package telemetry_test

// External test package: these tests drive real queue workloads through
// bench, which telemetry itself must not import.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/queue"
	"repro/internal/telemetry"
)

func policyFor(m core.Model) queue.Policy {
	switch m {
	case core.Strict:
		return queue.PolicyStrict
	case core.Strand:
		return queue.PolicyStrand
	default:
		return queue.PolicyEpoch
	}
}

func traced(t *testing.T, d queue.Design, m core.Model, threads, inserts int) (*telemetry.Tracer, core.Result) {
	t.Helper()
	w := bench.Workload{
		Design: d, Policy: policyFor(m),
		Threads: threads, Inserts: inserts, PayloadLen: 100, Seed: 42,
	}
	tr := telemetry.NewTracer(m, w.String())
	r, err := bench.SimulateProbed(w, core.Params{Model: m}, tr)
	if err != nil {
		t.Fatalf("%v/%v: %v", d, m, err)
	}
	return tr, r
}

// TestTracerMatchesSimulator is the acceptance cross-check: for every
// persistency model on both queue designs, the critical path
// reconstructed from the tracer's recorded constraint edges must equal
// the simulator's reported critical path (and every node's depth its
// reported level).
func TestTracerMatchesSimulator(t *testing.T) {
	for _, d := range []queue.Design{queue.CWL, queue.TwoLock} {
		for _, m := range core.Models {
			t.Run(fmt.Sprintf("%v_%v", d, m), func(t *testing.T) {
				tr, r := traced(t, d, m, 4, 300)
				if err := tr.Verify(r); err != nil {
					t.Fatal(err)
				}
				if r.Placed == 0 {
					t.Fatal("no persists recorded")
				}
			})
		}
	}
}

// TestTracerMatchesSimulatorOverwrite stresses the atomicity channel:
// an overwriting log recycles blocks, so strong persist atomicity
// serializes persists to reused slots.
func TestTracerMatchesSimulatorOverwrite(t *testing.T) {
	for _, m := range core.Models {
		w := bench.Workload{
			Design: queue.CWL, Policy: policyFor(m),
			Threads: 2, Inserts: 400, PayloadLen: 100, Seed: 7,
			DataBytes: 8192, Overwrite: true,
		}
		tr := telemetry.NewTracer(m, w.String())
		r, err := bench.SimulateProbed(w, core.Params{Model: m}, tr)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := tr.Verify(r); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

func TestChainsAndAttribution(t *testing.T) {
	tr, r := traced(t, queue.TwoLock, core.Epoch, 4, 300)
	chains := tr.Chains(5)
	if len(chains) == 0 {
		t.Fatal("no chains")
	}
	if chains[0].Length != r.CriticalPath {
		t.Fatalf("longest chain %d != critical path %d", chains[0].Length, r.CriticalPath)
	}
	for i := 1; i < len(chains); i++ {
		if chains[i].Length > chains[i-1].Length {
			t.Fatalf("chains not sorted: %d then %d", chains[i-1].Length, chains[i].Length)
		}
	}
	// The longest chain's recorded ids must step through its dep edges.
	ids := chains[0].IDs
	if int64(len(ids)) != chains[0].Length {
		t.Fatalf("chain has %d nodes, length %d", len(ids), chains[0].Length)
	}
	nodes := tr.Nodes()
	for i := 1; i < len(ids); i++ {
		if nodes[ids[i]].DepID != ids[i-1] {
			t.Fatalf("chain edge %d: node %d deps on %d, chain says %d",
				i, ids[i], nodes[ids[i]].DepID, ids[i-1])
		}
	}

	a := tr.Attribute(3)
	var sum int64
	for _, n := range a.EdgesByClass {
		sum += n
	}
	if sum != a.Placed || a.Placed != r.Placed {
		t.Fatalf("edge classes sum %d, placed %d (sim %d)", sum, a.Placed, r.Placed)
	}
	if a.CriticalPath != r.CriticalPath {
		t.Fatalf("attribution critical path %d != %d", a.CriticalPath, r.CriticalPath)
	}
	out := a.Render()
	if out == "" || len(a.Sites) == 0 {
		t.Fatalf("empty attribution render or sites: %q", out)
	}
}

// TestChromeTraceValid checks the export is well-formed Chrome
// trace-event JSON with the expected structure.
func TestChromeTraceValid(t *testing.T) {
	trEpoch, _ := traced(t, queue.CWL, core.Epoch, 2, 100)
	trStrand, _ := traced(t, queue.CWL, core.Strand, 2, 100)

	var buf bytes.Buffer
	if err := telemetry.EncodeChromeTrace(&buf, trEpoch, trStrand); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			PID  int64          `json:"pid"`
			TID  int64          `json:"tid"`
			TS   int64          `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	counts := map[string]int{}
	pids := map[int64]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "" {
			t.Fatal("event with empty ph")
		}
		counts[e.Ph]++
		pids[e.PID] = true
	}
	if len(pids) != 2 {
		t.Fatalf("expected 2 processes, saw %v", pids)
	}
	for _, ph := range []string{"M", "X", "s", "f", "C"} {
		if counts[ph] == 0 {
			t.Fatalf("no %q events in export: %v", ph, counts)
		}
	}
	// Flow starts and finishes pair up.
	if counts["s"] != counts["f"] {
		t.Fatalf("unbalanced flows: %d starts, %d finishes", counts["s"], counts["f"])
	}
}

// TestObserveResult checks the result adapter writes the expected series.
func TestObserveResult(t *testing.T) {
	_, r := traced(t, queue.CWL, core.Epoch, 2, 100)
	reg := telemetry.NewRegistry()
	telemetry.ObserveResult(reg, "cwl-test", r)
	name := telemetry.Label("sim_persists_total", "model", r.Model.String(), "workload", "cwl-test")
	if got := reg.Counter(name).Value(); got != r.Persists {
		t.Fatalf("%s = %d, want %d", name, got, r.Persists)
	}
}
