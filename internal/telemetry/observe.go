package telemetry

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/nvram"
	"repro/internal/trace"
)

// This file adapts the other subsystems' results into registry series
// under stable metric names. core cannot import telemetry (telemetry
// consumes core's Probe types), so the adaptation lives here.

// CountingSink is a trace.Sink that counts the event mix per thread and
// kind before forwarding to Next — the exec-side op-mix telemetry for
// pipelines that stream events rather than materializing a trace.
type CountingSink struct {
	reg  *Registry
	Next trace.Sink
	// cache avoids a map lookup per event: counters indexed by kind and
	// a small tid window (spill to labeled lookup beyond it).
	cache [16][16]*Counter
}

// NewCountingSink wraps next with per-kind/per-thread event counters in
// reg. A nil next counts and discards.
func NewCountingSink(reg *Registry, next trace.Sink) *CountingSink {
	if next == nil {
		next = trace.Discard
	}
	reg.SetHelp("exec_events_total", "trace events emitted by the execution engine, by kind and thread")
	return &CountingSink{reg: reg, Next: next}
}

// Emit implements trace.Sink.
func (s *CountingSink) Emit(e trace.Event) {
	k, tid := int(e.Kind), int(e.TID)
	if k < len(s.cache) && tid >= 0 && tid < len(s.cache[k]) {
		c := s.cache[k][tid]
		if c == nil {
			c = s.counter(e)
			s.cache[k][tid] = c
		}
		c.Inc()
	} else {
		s.counter(e).Inc()
	}
	s.Next.Emit(e)
}

func (s *CountingSink) counter(e trace.Event) *Counter {
	return s.reg.Counter(Label("exec_events_total",
		"kind", e.Kind.String(), "tid", strconv.Itoa(int(e.TID))))
}

// ObserveResult records a simulation result's counters under the given
// workload label (e.g. "cwl/epoch/8T") and the result's model.
func ObserveResult(reg *Registry, workload string, r core.Result) {
	reg.SetHelp("sim_persists_total", "persist operations issued (per atomic-block fragment)")
	reg.SetHelp("sim_persists_placed_total", "distinct NVRAM writes after coalescing")
	reg.SetHelp("sim_persists_coalesced_total", "persists merged into an open NVRAM write")
	reg.SetHelp("sim_critical_path", "persist ordering constraint critical path length")
	reg.SetHelp("sim_work_items_total", "completed work items (queue inserts)")
	reg.SetHelp("sim_events_total", "trace events consumed by the simulator")
	lbl := func(name string) string {
		return Label(name, "model", r.Model.String(), "workload", workload)
	}
	reg.Counter(lbl("sim_persists_total")).Add(r.Persists)
	reg.Counter(lbl("sim_persists_placed_total")).Add(r.Placed)
	reg.Counter(lbl("sim_persists_coalesced_total")).Add(r.Coalesced)
	reg.Gauge(lbl("sim_critical_path")).Set(float64(r.CriticalPath))
	reg.Counter(lbl("sim_work_items_total")).Add(r.WorkItems)
	reg.Counter(lbl("sim_events_total")).Add(r.Events)
}

// ObserveDevice records an nvram schedule's device-side counters:
// writes, retries, wear, and per-bank occupancy.
func ObserveDevice(reg *Registry, label string, r nvram.Result) {
	reg.SetHelp("nvram_writes_total", "NVRAM writes scheduled onto the device")
	reg.SetHelp("nvram_retries_total", "failed write attempts injected by fault profiles")
	reg.SetHelp("nvram_failed_persists_total", "persists abandoned after MaxRetries attempts")
	reg.SetHelp("nvram_wear_max", "largest per-block write count")
	reg.SetHelp("nvram_wear_blocks", "distinct blocks written")
	reg.SetHelp("nvram_makespan_seconds", "schedule completion time")
	reg.SetHelp("nvram_bank_occupancy", "per-bank busy fraction of the makespan")
	lbl := func(name string) string { return Label(name, "workload", label) }
	reg.Counter(lbl("nvram_writes_total")).Add(int64(r.Persists))
	reg.Counter(lbl("nvram_retries_total")).Add(int64(r.Retries))
	reg.Counter(lbl("nvram_failed_persists_total")).Add(int64(r.FailedPersists))
	reg.Gauge(lbl("nvram_wear_max")).Set(float64(r.WearMax))
	reg.Gauge(lbl("nvram_wear_blocks")).Set(float64(r.WearBlocks))
	reg.Gauge(lbl("nvram_makespan_seconds")).Set(r.Makespan.Seconds())
	if len(r.BankBusy) > 0 && r.Makespan > 0 {
		h := reg.Histogram(lbl("nvram_bank_occupancy"), 0.1, 0.25, 0.5, 0.75, 0.9, 0.99)
		for _, busy := range r.BankBusy {
			h.Observe(busy.Seconds() / r.Makespan.Seconds())
		}
	}
}
