package telemetry

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
)

// Manifest is the provenance record of one harness run: which binary,
// built from which commit, ran on what machine, with which flags,
// seeds, and model grid. Every CLI stamps one at startup and embeds it
// in every JSON artifact it writes (experiment reports, metrics
// snapshots, Chrome traces, campaign summaries, BENCH_history.jsonl
// records), so a number in an artifact can always be traced back to
// the exact configuration that produced it.
type Manifest struct {
	// Tool is the producing command ("pqbench", "crashsim", ...).
	Tool string `json:"tool"`
	// Started is the run's wall-clock start in RFC 3339 (UTC).
	Started string `json:"started"`
	// GitSHA is the VCS revision the binary was built from, when the
	// toolchain stamped one (go build from a checkout); the
	// REPRO_GIT_SHA environment variable overrides it for `go run` and
	// CI invocations the toolchain does not stamp. GitDirty reports
	// uncommitted changes at build time.
	GitSHA   string `json:"git_sha,omitempty"`
	GitDirty bool   `json:"git_dirty,omitempty"`
	// GoVersion/OS/Arch identify the toolchain and platform.
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	// CPUs is the machine's logical CPU count; GOMAXPROCS is the
	// scheduler parallelism the run actually had (the sweep engine's
	// default worker count).
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Hostname   string `json:"hostname,omitempty"`
	// Args echoes the raw command line; Flags is the full effective
	// flag set after parsing (defaults included), keyed by flag name.
	Args  []string          `json:"args,omitempty"`
	Flags map[string]string `json:"flags,omitempty"`
	// Seeds records every seed the run consumed, keyed by role.
	Seeds map[string]int64 `json:"seeds,omitempty"`
	// Models is the persistency-model grid the run simulated.
	Models []string `json:"models,omitempty"`
}

// NewManifest stamps a manifest for the named tool from the build info
// and the current process environment.
func NewManifest(tool string) *Manifest {
	m := &Manifest{
		Tool:       tool,
		Started:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if host, err := os.Hostname(); err == nil {
		m.Hostname = host
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				m.GitSHA = s.Value
			case "vcs.modified":
				m.GitDirty = s.Value == "true"
			}
		}
	}
	if sha := os.Getenv("REPRO_GIT_SHA"); sha != "" && m.GitSHA == "" {
		m.GitSHA = sha
	}
	if len(os.Args) > 1 {
		m.Args = append([]string(nil), os.Args[1:]...)
	}
	return m
}

// CaptureFlags records every flag's effective (post-Parse) value. Call
// it with flag.CommandLine after flag.Parse to capture the full flag
// set, defaults included.
func (m *Manifest) CaptureFlags(fs *flag.FlagSet) *Manifest {
	if m.Flags == nil {
		m.Flags = make(map[string]string)
	}
	fs.VisitAll(func(f *flag.Flag) { m.Flags[f.Name] = f.Value.String() })
	return m
}

// Seed records one named seed (e.g. "seed", "sampling").
func (m *Manifest) Seed(name string, v int64) *Manifest {
	if m.Seeds == nil {
		m.Seeds = make(map[string]int64)
	}
	m.Seeds[name] = v
	return m
}

// ModelGrid records the persistency models the run simulates.
func (m *Manifest) ModelGrid(models ...core.Model) *Manifest {
	m.Models = m.Models[:0]
	for _, mo := range models {
		m.Models = append(m.Models, mo.String())
	}
	return m
}

// String renders the one-line human-readable form CLIs print in their
// headers.
func (m *Manifest) String() string {
	sha := m.GitSHA
	if len(sha) > 12 {
		sha = sha[:12]
	}
	if sha == "" {
		sha = "unknown"
	}
	if m.GitDirty {
		sha += "+dirty"
	}
	return fmt.Sprintf("%s git=%s %s %s/%s cpus=%d gomaxprocs=%d started=%s",
		m.Tool, sha, m.GoVersion, m.OS, m.Arch, m.CPUs, m.GOMAXPROCS, m.Started)
}

// InfoMetric publishes the manifest as a Prometheus info-style gauge
// (`run_info{...} 1`), the idiomatic way to carry build/run metadata in
// the text exposition where nested JSON cannot.
func (m *Manifest) InfoMetric(reg *Registry) {
	reg.SetHelp("run_info", "run manifest: constant 1 gauge carrying provenance labels")
	reg.Gauge(Label("run_info",
		"tool", m.Tool,
		"git_sha", m.GitSHA,
		"go_version", m.GoVersion,
		"os", m.OS,
		"arch", m.Arch,
		"gomaxprocs", fmt.Sprint(m.GOMAXPROCS),
	)).Set(1)
}

// manifestSnapshot is the JSON metrics document: the registry snapshot
// with the run manifest alongside it.
type manifestSnapshot struct {
	Manifest *Manifest `json:"manifest,omitempty"`
	Snapshot
}

// WriteMetrics snapshots reg to path with the manifest embedded: paths
// ending in .prom or .txt get the Prometheus text exposition (manifest
// as a run_info gauge), everything else an indented JSON document with
// a top-level "manifest" key. A nil manifest writes the bare snapshot.
// This is the single metrics-writing path shared by all CLIs.
func WriteMetrics(reg *Registry, m *Manifest, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".prom") || strings.HasSuffix(path, ".txt") {
		if m != nil {
			m.InfoMetric(reg)
		}
		return reg.WritePrometheus(f)
	}
	if m == nil {
		return reg.WriteJSON(f)
	}
	return writeIndentedJSON(f, manifestSnapshot{Manifest: m, Snapshot: reg.Snapshot()})
}

// writeIndentedJSON encodes v indented with a trailing newline, the
// same shape Registry.WriteJSON emits.
func writeIndentedJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// FlagsSorted returns "name=value" pairs sorted by flag name — a
// deterministic rendering for logs and tests.
func (m *Manifest) FlagsSorted() []string {
	out := make([]string, 0, len(m.Flags))
	for k, v := range m.Flags {
		out = append(out, k+"="+v)
	}
	sort.Strings(out)
	return out
}
