package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/stats"
)

// Tracer records the persist timeline of one simulation: every NVRAM
// write with its provenance (thread, epoch/strand, block, dependence
// level, and the binding constraint edge), plus the trace's annotation
// structure (epochs, strands, work brackets). It implements core.Probe;
// attach with Sim.SetProbe before feeding events.
//
// The tracer deliberately re-derives the critical path from the
// recorded constraint edges rather than trusting the simulator's
// levels: Verify checks that the longest recorded chain matches
// core.Result.CriticalPath exactly, so the provenance bookkeeping and
// the scalar timing model cross-check each other.
type Tracer struct {
	// Name labels the run in trace exports (one Perfetto process per
	// tracer), e.g. "cwl/epoch 8T".
	Name string
	// Model is the simulated persistency model.
	Model core.Model
	// SiteLabel maps a persist's address to an annotation-site label
	// for attribution (e.g. "head", "slot data"). Nil uses a generic
	// block label.
	SiteLabel func(memory.Addr) string

	nodes    []Node
	marks    []mark
	maxEvent int64
	tids     map[int32]bool
}

// Node is one placed NVRAM write.
type Node struct {
	// ID is the placement id (0-based, placement order).
	ID int64
	// EventIndex is the fed-event index of the placing store; LastEvent
	// is the index of the last store that coalesced into this write.
	EventIndex int64
	LastEvent  int64
	TID        int32
	Addr       memory.Addr
	Size       uint8
	Block      memory.BlockID
	// Level is the simulator-reported dependence level.
	Level int64
	// DepID/DepClass identify the binding constraint edge (-1: root).
	DepID    int64
	DepClass core.DepClass
	// Epoch and Strand are the issuing thread's annotation indices.
	Epoch, Strand int64
	// Coalesced counts later persists merged into this write.
	Coalesced int64
}

type markKind uint8

const (
	markEpoch markKind = iota
	markStrand
	markBeginWork
	markEndWork
)

type mark struct {
	kind  markKind
	tid   int32
	event int64
	index int64 // epoch/strand index after the mark
	id    uint64
	sync  bool
}

// NewTracer returns an empty tracer for one simulation run.
func NewTracer(model core.Model, name string) *Tracer {
	return &Tracer{Model: model, Name: name, tids: make(map[int32]bool)}
}

// PersistPlaced implements core.Probe.
func (t *Tracer) PersistPlaced(r core.PersistRecord) {
	t.note(r.TID, r.EventIndex)
	if r.Coalesced {
		if r.ID >= 0 && r.ID < int64(len(t.nodes)) {
			n := &t.nodes[r.ID]
			n.Coalesced++
			if r.EventIndex > n.LastEvent {
				n.LastEvent = r.EventIndex
			}
		}
		return
	}
	if r.ID != int64(len(t.nodes)) {
		panic(fmt.Sprintf("telemetry: persist id %d out of order (have %d nodes)", r.ID, len(t.nodes)))
	}
	t.nodes = append(t.nodes, Node{
		ID: r.ID, EventIndex: r.EventIndex, LastEvent: r.EventIndex,
		TID: r.TID, Addr: r.Addr, Size: r.Size, Block: r.Block,
		Level: r.Level, DepID: r.DepID, DepClass: r.DepClass,
		Epoch: r.Epoch, Strand: r.Strand,
	})
}

// EpochMark implements core.Probe.
func (t *Tracer) EpochMark(tid int32, event, epoch int64, sync bool) {
	t.note(tid, event)
	t.marks = append(t.marks, mark{kind: markEpoch, tid: tid, event: event, index: epoch, sync: sync})
}

// StrandMark implements core.Probe.
func (t *Tracer) StrandMark(tid int32, event, strand int64) {
	t.note(tid, event)
	t.marks = append(t.marks, mark{kind: markStrand, tid: tid, event: event, index: strand})
}

// WorkMark implements core.Probe.
func (t *Tracer) WorkMark(tid int32, event int64, id uint64, begin bool) {
	t.note(tid, event)
	k := markEndWork
	if begin {
		k = markBeginWork
	}
	t.marks = append(t.marks, mark{kind: k, tid: tid, event: event, id: id})
}

func (t *Tracer) note(tid int32, event int64) {
	if event > t.maxEvent {
		t.maxEvent = event
	}
	t.tids[tid] = true
}

// Nodes returns the recorded NVRAM writes in placement order.
func (t *Tracer) Nodes() []Node { return t.nodes }

// CoalescedTotal sums the coalesce counts across all writes.
func (t *Tracer) CoalescedTotal() int64 {
	var n int64
	for i := range t.nodes {
		n += t.nodes[i].Coalesced
	}
	return n
}

// depths reconstructs each write's critical-path depth purely from the
// recorded constraint edges: depth = depth(dep) + 1. Placement order
// guarantees DepID < ID, so one forward pass suffices.
func (t *Tracer) depths() []int64 {
	d := make([]int64, len(t.nodes))
	for i := range t.nodes {
		dep := t.nodes[i].DepID
		if dep < 0 {
			d[i] = 1
			continue
		}
		if dep >= int64(i) {
			panic(fmt.Sprintf("telemetry: node %d depends on later node %d", i, dep))
		}
		d[i] = d[dep] + 1
	}
	return d
}

// CriticalPath returns the longest constraint chain reconstructed from
// the recorded edges (in persists), independent of the levels the
// simulator reported.
func (t *Tracer) CriticalPath() int64 {
	var max int64
	for _, d := range t.depths() {
		if d > max {
			max = d
		}
	}
	return max
}

// Verify cross-checks the recorded timeline against a simulation
// result: placement and coalesce counts must match, every node's
// reconstructed depth must equal its reported level, and the
// reconstructed critical path must equal the simulator's. A failure
// means the timing model and its provenance disagree.
func (t *Tracer) Verify(r core.Result) error {
	if int64(len(t.nodes)) != r.Placed {
		return fmt.Errorf("telemetry: tracer has %d placed persists, simulator reports %d", len(t.nodes), r.Placed)
	}
	if c := t.CoalescedTotal(); c != r.Coalesced {
		return fmt.Errorf("telemetry: tracer has %d coalesced persists, simulator reports %d", c, r.Coalesced)
	}
	depths := t.depths()
	var max int64
	for i, d := range depths {
		if d != t.nodes[i].Level {
			return fmt.Errorf("telemetry: node %d (t%d %#x): reconstructed depth %d != reported level %d",
				i, t.nodes[i].TID, uint64(t.nodes[i].Addr), d, t.nodes[i].Level)
		}
		if d > max {
			max = d
		}
	}
	if max != r.CriticalPath {
		return fmt.Errorf("telemetry: reconstructed critical path %d != simulator's %d", max, r.CriticalPath)
	}
	return nil
}

// Chain is one constraint chain, root first.
type Chain struct {
	// IDs are the node ids on the chain, root first.
	IDs []int64
	// Length is len(IDs) — the chain's contribution to the critical path.
	Length int64
	// Classes counts the chain's edges by constraint class (the root
	// node contributes a DepNone entry).
	Classes map[core.DepClass]int64
}

// Chains returns up to k maximal constraint chains ordered by length
// (longest first). Chains are edge-disjoint: a node already reported on
// a longer chain terminates a later one.
func (t *Tracer) Chains(k int) []Chain {
	depths := t.depths()
	order := make([]int, len(t.nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if depths[order[a]] != depths[order[b]] {
			return depths[order[a]] > depths[order[b]]
		}
		return order[a] < order[b]
	})
	visited := make([]bool, len(t.nodes))
	var out []Chain
	for _, end := range order {
		if len(out) >= k {
			break
		}
		if visited[end] {
			continue
		}
		var ids []int64
		classes := make(map[core.DepClass]int64)
		for id := int64(end); id >= 0; {
			ids = append(ids, id)
			classes[t.nodes[id].DepClass]++
			if visited[id] {
				break // continue into an already-reported chain no further
			}
			visited[id] = true
			id = t.nodes[id].DepID
		}
		// Reverse into root-first order.
		for i, j := 0, len(ids)-1; i < j; i, j = i+1, j-1 {
			ids[i], ids[j] = ids[j], ids[i]
		}
		out = append(out, Chain{IDs: ids, Length: depths[end], Classes: classes})
	}
	return out
}

// site labels a persist address for attribution.
func (t *Tracer) site(a memory.Addr) string {
	if t.SiteLabel != nil {
		return t.SiteLabel(a)
	}
	return fmt.Sprintf("blk %#x", uint64(memory.AlignDown(a, 64)))
}

// SiteShare is one annotation site's contribution to the critical path.
type SiteShare struct {
	Site  string
	Count int64
	Share float64 // fraction of the longest chain's nodes
}

// Attribution is the critical-path attribution report.
type Attribution struct {
	Model    core.Model
	Name     string
	Placed   int64
	Coalesced int64
	// CriticalPath is the reconstructed critical path.
	CriticalPath int64
	// EdgesByClass counts every placed persist's binding constraint by
	// class (DepNone = roots).
	EdgesByClass map[core.DepClass]int64
	// Chains are the top-k chains (longest first).
	Chains []Chain
	// Sites attributes the longest chain's nodes to annotation sites,
	// largest contribution first.
	Sites []SiteShare
}

// Attribute builds the attribution report with up to k chains.
func (t *Tracer) Attribute(k int) *Attribution {
	a := &Attribution{
		Model: t.Model, Name: t.Name,
		Placed: int64(len(t.nodes)), Coalesced: t.CoalescedTotal(),
		CriticalPath: t.CriticalPath(),
		EdgesByClass: make(map[core.DepClass]int64),
	}
	for i := range t.nodes {
		a.EdgesByClass[t.nodes[i].DepClass]++
	}
	a.Chains = t.Chains(k)
	if len(a.Chains) > 0 {
		counts := make(map[string]int64)
		for _, id := range a.Chains[0].IDs {
			counts[t.site(t.nodes[id].Addr)]++
		}
		total := int64(len(a.Chains[0].IDs))
		for site, n := range counts {
			a.Sites = append(a.Sites, SiteShare{Site: site, Count: n, Share: float64(n) / float64(total)})
		}
		sort.Slice(a.Sites, func(i, j int) bool {
			if a.Sites[i].Count != a.Sites[j].Count {
				return a.Sites[i].Count > a.Sites[j].Count
			}
			return a.Sites[i].Site < a.Sites[j].Site
		})
	}
	return a
}

// Render formats the report as text.
func (a *Attribution) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical-path attribution: %s (model %v)\n", a.Name, a.Model)
	fmt.Fprintf(&b, "  %d NVRAM writes (%d coalesced away), critical path %d\n",
		a.Placed, a.Coalesced, a.CriticalPath)

	cls := stats.NewTable("constraint-class", "binding-edges", "share")
	for _, c := range core.DepClasses {
		n := a.EdgesByClass[c]
		if n == 0 {
			continue
		}
		share := 0.0
		if a.Placed > 0 {
			share = float64(n) / float64(a.Placed)
		}
		cls.AddRow(c.String(), fmt.Sprintf("%d", n), fmt.Sprintf("%.1f%%", 100*share))
	}
	b.WriteString(cls.String())

	if len(a.Chains) > 0 {
		ch := stats.NewTable("chain", "length", "root", "program-order", "conflict", "atomicity")
		for i, c := range a.Chains {
			ch.AddRow(fmt.Sprintf("#%d", i+1), fmt.Sprintf("%d", c.Length),
				fmt.Sprintf("%d", c.Classes[core.DepNone]),
				fmt.Sprintf("%d", c.Classes[core.DepProgramOrder]),
				fmt.Sprintf("%d", c.Classes[core.DepConflict]),
				fmt.Sprintf("%d", c.Classes[core.DepAtomicity]))
		}
		b.WriteString("top chains (edge classes along each):\n")
		b.WriteString(ch.String())
	}
	if len(a.Sites) > 0 {
		st := stats.NewTable("site", "persists-on-path", "share")
		for _, s := range a.Sites {
			st.AddRow(s.Site, fmt.Sprintf("%d", s.Count), fmt.Sprintf("%.1f%%", 100*s.Share))
		}
		b.WriteString("longest chain by annotation site:\n")
		b.WriteString(st.String())
	}
	return b.String()
}

// ObserveMetrics records the tracer's totals into a registry: placed
// and coalesced writes and binding constraint edges by class, labeled
// by model and run name.
func (t *Tracer) ObserveMetrics(reg *Registry) {
	reg.SetHelp("tracer_constraint_edges_total", "binding constraint edges recorded by the persist tracer, by class")
	reg.SetHelp("tracer_writes_total", "NVRAM writes recorded by the persist tracer")
	reg.SetHelp("tracer_coalesced_total", "persists coalesced into recorded writes")
	model := t.Model.String()
	byClass := make(map[core.DepClass]int64)
	for i := range t.nodes {
		byClass[t.nodes[i].DepClass]++
	}
	for c, n := range byClass {
		reg.Counter(Label("tracer_constraint_edges_total",
			"model", model, "workload", t.Name, "class", c.String())).Add(n)
	}
	reg.Counter(Label("tracer_writes_total", "model", model, "workload", t.Name)).Add(int64(len(t.nodes)))
	reg.Counter(Label("tracer_coalesced_total", "model", model, "workload", t.Name)).Add(t.CoalescedTotal())
}
