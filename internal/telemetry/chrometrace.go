package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export (the JSON format Perfetto and
// chrome://tracing load). Layout:
//
//   - one "process" per tracer (per simulated configuration), so
//     several models over the same trace can be compared side by side;
//   - four lanes ("threads") per simulated thread: NVRAM writes,
//     epochs, strands, and work-item brackets;
//   - a persist renders as a complete slice spanning from its placing
//     store to the last store coalesced into it, with provenance args;
//   - flow arrows connect consecutive persists along the longest
//     constraint chain, tracing the critical path across lanes;
//   - a counter series plots the running critical-path depth.
//
// Timestamps are fed-event indices interpreted as microseconds: the
// x-axis is logical (program) time, not the device's wall clock.

type chromeEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	ID   int64          `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	lanePersist = iota
	laneEpoch
	laneStrand
	laneWork
	lanesPerThread
)

func lane(tid int32, kind int) int64 { return int64(tid)*lanesPerThread + int64(kind) }

// WriteChromeTrace exports this tracer alone; see EncodeChromeTrace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return EncodeChromeTrace(w, t)
}

// EncodeChromeTrace writes one Chrome trace-event JSON document holding
// every given tracer as its own process. EncodeChromeTraceDoc
// additionally embeds the run manifest and wall-clock spans.
func EncodeChromeTrace(w io.Writer, tracers ...*Tracer) error {
	return EncodeChromeTraceDoc(w, nil, nil, tracers...)
}

// writeCompactJSON encodes v unindented with a trailing newline.
func writeCompactJSON(w io.Writer, v any) error {
	return json.NewEncoder(w).Encode(v)
}

func dur(d int64) *int64 {
	if d < 1 {
		d = 1
	}
	return &d
}

func (t *Tracer) chromeEvents(pid int64) []chromeEvent {
	var ev []chromeEvent
	name := t.Name
	if name == "" {
		name = fmt.Sprintf("model %v", t.Model)
	}
	ev = append(ev,
		chromeEvent{Ph: "M", Name: "process_name", PID: pid, Args: map[string]any{"name": name}},
		chromeEvent{Ph: "M", Name: "process_sort_index", PID: pid, Args: map[string]any{"sort_index": pid}},
	)

	tids := make([]int32, 0, len(t.tids))
	for tid := range t.tids {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	laneNames := [lanesPerThread]string{"persists", "epochs", "strands", "work"}
	for _, tid := range tids {
		for k, ln := range laneNames {
			l := lane(tid, k)
			ev = append(ev,
				chromeEvent{Ph: "M", Name: "thread_name", PID: pid, TID: l,
					Args: map[string]any{"name": fmt.Sprintf("t%d %s", tid, ln)}},
				chromeEvent{Ph: "M", Name: "thread_sort_index", PID: pid, TID: l,
					Args: map[string]any{"sort_index": l}},
			)
		}
	}

	// Persist slices, plus the critical-path counter series.
	var runningMax int64
	for i := range t.nodes {
		n := &t.nodes[i]
		ev = append(ev, chromeEvent{
			Ph: "X", Cat: "persist", Name: t.site(n.Addr),
			PID: pid, TID: lane(n.TID, lanePersist),
			TS: n.EventIndex, Dur: dur(n.LastEvent - n.EventIndex + 1),
			Args: map[string]any{
				"id":        n.ID,
				"addr":      fmt.Sprintf("%#x", uint64(n.Addr)),
				"block":     int64(n.Block),
				"level":     n.Level,
				"dep":       n.DepID,
				"depClass":  n.DepClass.String(),
				"epoch":     n.Epoch,
				"strand":    n.Strand,
				"coalesced": n.Coalesced,
			},
		})
		if n.Level > runningMax {
			runningMax = n.Level
			ev = append(ev, chromeEvent{
				Ph: "C", Name: "critical-path depth", PID: pid, TS: n.EventIndex,
				Args: map[string]any{"depth": n.Level},
			})
		}
	}

	ev = append(ev, t.spanEvents(pid)...)
	ev = append(ev, t.flowEvents(pid)...)
	return ev
}

// spanEvents renders the annotation marks: epoch and strand intervals
// (from the previous mark on the thread to this one) and work brackets.
func (t *Tracer) spanEvents(pid int64) []chromeEvent {
	var ev []chromeEvent
	type span struct{ start, index int64 }
	epochs := make(map[int32]span)   // open epoch per thread
	strands := make(map[int32]span)  // open strand per thread
	work := make(map[uint64]int64)   // open work bracket -> begin event
	workTID := make(map[uint64]int32)
	closeSpan := func(tid int32, k int, cat string, s span, end int64) chromeEvent {
		return chromeEvent{
			Ph: "X", Cat: cat, Name: fmt.Sprintf("%s %d", cat, s.index),
			PID: pid, TID: lane(tid, k), TS: s.start, Dur: dur(end - s.start),
			Args: map[string]any{"index": s.index},
		}
	}
	for _, m := range t.marks {
		switch m.kind {
		case markEpoch:
			s := epochs[m.tid]
			if m.event > s.start {
				ev = append(ev, closeSpan(m.tid, laneEpoch, "epoch", s, m.event))
			}
			epochs[m.tid] = span{start: m.event, index: m.index}
			if m.sync {
				ev = append(ev, chromeEvent{
					Ph: "I", Cat: "sync", Name: "persist sync",
					PID: pid, TID: lane(m.tid, laneEpoch), TS: m.event,
				})
			}
		case markStrand:
			s := strands[m.tid]
			if m.event > s.start {
				ev = append(ev, closeSpan(m.tid, laneStrand, "strand", s, m.event))
			}
			strands[m.tid] = span{start: m.event, index: m.index}
		case markBeginWork:
			work[m.id] = m.event
			workTID[m.id] = m.tid
		case markEndWork:
			if begin, ok := work[m.id]; ok {
				ev = append(ev, chromeEvent{
					Ph: "X", Cat: "work", Name: fmt.Sprintf("op %d", m.id&0xffffffff),
					PID: pid, TID: lane(workTID[m.id], laneWork),
					TS: begin, Dur: dur(m.event - begin),
					Args: map[string]any{"id": m.id},
				})
				delete(work, m.id)
			}
		}
	}
	// Close trailing epoch/strand spans at the end of the trace.
	for tid, s := range epochs {
		if t.maxEvent > s.start || s.index > 0 {
			ev = append(ev, closeSpan(tid, laneEpoch, "epoch", s, t.maxEvent+1))
		}
	}
	for tid, s := range strands {
		if t.maxEvent > s.start || s.index > 0 {
			ev = append(ev, closeSpan(tid, laneStrand, "strand", s, t.maxEvent+1))
		}
	}
	return ev
}

// flowEvents draws arrows along the longest constraint chain: for each
// edge a→b on the chain, a flow start anchored inside a's slice and a
// flow finish anchored at b's.
func (t *Tracer) flowEvents(pid int64) []chromeEvent {
	chains := t.Chains(1)
	if len(chains) == 0 {
		return nil
	}
	var ev []chromeEvent
	ids := chains[0].IDs
	for i := 0; i+1 < len(ids); i++ {
		a, b := &t.nodes[ids[i]], &t.nodes[ids[i+1]]
		flowID := int64(i) + 1
		ev = append(ev,
			chromeEvent{Ph: "s", Cat: "critical-path", Name: "critical-path",
				PID: pid, TID: lane(a.TID, lanePersist), TS: a.EventIndex, ID: flowID},
			chromeEvent{Ph: "f", BP: "e", Cat: "critical-path", Name: "critical-path",
				PID: pid, TID: lane(b.TID, lanePersist), TS: b.EventIndex, ID: flowID},
		)
	}
	return ev
}
