package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilSpanTracerNoOps(t *testing.T) {
	var tr *SpanTracer
	sp := tr.Start("sweep", "x").Worker(3).Arg("item", 1)
	sp.End()
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Error("nil tracer recorded something")
	}
	if got := tr.WorkerTotals("", ""); len(got) != 0 {
		t.Errorf("nil tracer totals = %v", got)
	}
}

func TestSpanRecordingAndHistogram(t *testing.T) {
	reg := NewRegistry()
	tr := NewSpanTracer(reg)
	tr.Start("sweep", "table1").Worker(0).Arg("item", 0).End()
	tr.Start("sweep", "table1").Worker(1).Arg("item", 1).End()
	tr.Start("graph", "build").End()
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	spans := tr.Spans()
	if spans[2].Worker != -1 {
		t.Errorf("unattributed span worker = %d, want -1", spans[2].Worker)
	}
	for _, sp := range spans {
		if sp.Dur < 0 || sp.Start < 0 {
			t.Errorf("negative timing: %+v", sp)
		}
	}
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	if !strings.Contains(text, `harness_span_seconds_count{span="sweep"} 2`) {
		t.Errorf("missing sweep span histogram:\n%s", text)
	}
	if !strings.Contains(text, `harness_span_seconds_count{span="graph"} 1`) {
		t.Errorf("missing graph span histogram:\n%s", text)
	}
}

func TestWorkerTotalsFilters(t *testing.T) {
	tr := NewSpanTracer(nil)
	tr.Start("sweep", "table1").Worker(0).End()
	tr.Start("sweep", "table1").Worker(0).End()
	tr.Start("sweep", "table1").Worker(1).End()
	tr.Start("sweep", "fig3").Worker(0).End()
	tr.Start("trace-cache", "generate").Worker(1).End()

	tot := tr.WorkerTotals("sweep", "table1")
	if tot[0].Count != 2 || tot[1].Count != 1 {
		t.Errorf("table1 totals = %v", tot)
	}
	if all := tr.WorkerTotals("sweep", ""); all[0].Count != 3 || all[1].Count != 1 {
		t.Errorf("sweep wildcard totals = %v", all)
	}
	if any := tr.WorkerTotals("", ""); any[0].Count != 3 || any[1].Count != 2 {
		t.Errorf("full wildcard totals = %v", any)
	}
}

func TestSpanTracerConcurrentUse(t *testing.T) {
	tr := NewSpanTracer(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Start("sweep", "load").Worker(w).Arg("item", i).End()
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 400 {
		t.Errorf("Len = %d, want 400", tr.Len())
	}
	total := 0
	for _, tot := range tr.WorkerTotals("sweep", "load") {
		total += tot.Count
	}
	if total != 400 {
		t.Errorf("summed totals = %d, want 400", total)
	}
}

// chromeDoc mirrors the trace-event JSON envelope for assertions.
type chromeDoc struct {
	TraceEvents []struct {
		Ph   string         `json:"ph"`
		Cat  string         `json:"cat,omitempty"`
		Name string         `json:"name"`
		PID  int64          `json:"pid"`
		TID  int64          `json:"tid"`
		TS   int64          `json:"ts"`
		Dur  int64          `json:"dur,omitempty"`
		Args map[string]any `json:"args,omitempty"`
	} `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata"`
}

func TestChromeTraceDocValidWithManifest(t *testing.T) {
	tr := NewSpanTracer(nil)
	tr.Start("sweep", "table1").Worker(0).Arg("item", 0).End()
	tr.Start("campaign", "minimize").End()
	m := NewManifest("pqbench")

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, m); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid Chrome trace JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	man, ok := doc.Metadata["manifest"].(map[string]any)
	if !ok || man["tool"] != "pqbench" {
		t.Errorf("metadata.manifest = %v", doc.Metadata["manifest"])
	}

	var procName string
	lanes := map[int64]string{}
	slices := 0
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			procName, _ = ev.Args["name"].(string)
		case ev.Ph == "M" && ev.Name == "thread_name":
			lanes[ev.TID], _ = ev.Args["name"].(string)
		case ev.Ph == "X":
			slices++
			if ev.PID != spanPID {
				t.Errorf("slice pid = %d, want %d", ev.PID, spanPID)
			}
			if ev.TS < 0 || ev.Dur < 0 {
				t.Errorf("slice timing: %+v", ev)
			}
		}
	}
	if procName != "harness (wall clock)" {
		t.Errorf("process name = %q", procName)
	}
	if lanes[0] != "main" || lanes[1] != "worker 0" {
		t.Errorf("lanes = %v", lanes)
	}
	if slices != 2 {
		t.Errorf("slices = %d, want 2", slices)
	}
}

// The combined document must keep persist-timeline tracers and the
// wall-clock span process separate.
func TestEncodeChromeTraceDocCombines(t *testing.T) {
	spans := NewSpanTracer(nil)
	spans.Start("graph", "build").End()
	var buf bytes.Buffer
	if err := EncodeChromeTraceDoc(&buf, nil, spans); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Metadata != nil {
		t.Errorf("metadata present without manifest: %v", doc.Metadata)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("no events")
	}
}
