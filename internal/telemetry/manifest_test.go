package telemetry

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestNewManifestStampsEnvironment(t *testing.T) {
	m := NewManifest("pqbench")
	if m.Tool != "pqbench" {
		t.Errorf("Tool = %q", m.Tool)
	}
	if m.GoVersion != runtime.Version() || m.OS != runtime.GOOS || m.Arch != runtime.GOARCH {
		t.Errorf("toolchain fields: %q %q %q", m.GoVersion, m.OS, m.Arch)
	}
	if m.CPUs <= 0 || m.GOMAXPROCS <= 0 {
		t.Errorf("CPUs = %d, GOMAXPROCS = %d, want > 0", m.CPUs, m.GOMAXPROCS)
	}
	if m.Started == "" {
		t.Error("Started empty")
	}
}

func TestManifestGitSHAEnvFallback(t *testing.T) {
	t.Setenv("REPRO_GIT_SHA", "feedface0000")
	m := NewManifest("t")
	// The env var only fills in when the toolchain did not stamp a
	// revision (test binaries normally are not stamped).
	if m.GitSHA == "" {
		t.Error("GitSHA empty despite REPRO_GIT_SHA")
	}
}

func TestManifestCaptureFlagsSeedsModels(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.Int("inserts", 20000, "")
	fs.String("experiment", "all", "")
	if err := fs.Parse([]string{"-inserts", "5"}); err != nil {
		t.Fatal(err)
	}
	m := NewManifest("t").CaptureFlags(fs).Seed("seed", 42).ModelGrid(core.Models...)
	if m.Flags["inserts"] != "5" || m.Flags["experiment"] != "all" {
		t.Errorf("Flags = %v, want parsed value and default", m.Flags)
	}
	if got := m.FlagsSorted(); got[0] != "experiment=all" || got[1] != "inserts=5" {
		t.Errorf("FlagsSorted = %v", got)
	}
	if m.Seeds["seed"] != 42 {
		t.Errorf("Seeds = %v", m.Seeds)
	}
	if len(m.Models) != len(core.Models) || m.Models[0] != "strict" {
		t.Errorf("Models = %v", m.Models)
	}
}

func TestManifestStringTruncatesSHA(t *testing.T) {
	m := &Manifest{Tool: "x", GitSHA: "0123456789abcdef0123", GitDirty: true}
	s := m.String()
	if !strings.Contains(s, "git=0123456789ab+dirty") {
		t.Errorf("String() = %q", s)
	}
	if strings.Contains(s, "0123456789abc") {
		t.Errorf("SHA not truncated to 12: %q", s)
	}
}

func TestWriteMetricsJSONEmbedsManifest(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("items_total").Add(7)
	m := NewManifest("t").Seed("seed", 1)
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := WriteMetrics(reg, m, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Manifest *Manifest        `json:"manifest"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, data)
	}
	if doc.Manifest == nil || doc.Manifest.Tool != "t" || doc.Manifest.Seeds["seed"] != 1 {
		t.Errorf("manifest = %+v", doc.Manifest)
	}
	if doc.Counters["items_total"] != 7 {
		t.Errorf("counters = %v", doc.Counters)
	}
}

func TestWriteMetricsPrometheusInfoMetric(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("items_total").Add(7)
	m := NewManifest("t")
	m.GitSHA = "abc"
	path := filepath.Join(t.TempDir(), "metrics.prom")
	if err := WriteMetrics(reg, m, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, `run_info{`) || !strings.Contains(text, `git_sha="abc"`) {
		t.Errorf("missing run_info gauge:\n%s", text)
	}
	if !strings.Contains(text, "items_total 7") {
		t.Errorf("missing counter:\n%s", text)
	}
}
