// Package bench is the experiment harness: it wires workloads (the
// persistent queue), the execution engine, and the persistency-model
// simulator together to regenerate every table and figure in the
// paper's evaluation (§8), plus this reproduction's ablations.
//
// The paper's methodology (§7) computes system throughput as
//
//	min(instruction execution rate, persist-bound rate)
//
// where the instruction rate is measured natively (here: the
// non-simulated queue twin timed on the host) and the persist-bound
// rate comes from the persist ordering constraint critical path under
// 500 ns persists (Table 1) or a latency sweep (Figure 3).
package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/exec"
	"repro/internal/memory"
	"repro/internal/queue"
	"repro/internal/trace"
)

// Workload describes one queue benchmark configuration.
type Workload struct {
	// Design selects CWL or TwoLock.
	Design queue.Design
	// Policy selects the annotation discipline (Table 1 column).
	Policy queue.Policy
	// Threads is the simulated thread count (Table 1 uses 1 and 8).
	Threads int
	// Inserts is the total number of inserts across all threads.
	Inserts int
	// PayloadLen is the entry payload size; the paper uses 100 bytes.
	PayloadLen int
	// Seed drives the interleaving.
	Seed int64
	// DataBytes sizes the data segment; 0 auto-sizes so the run never
	// wraps (the evaluation is insert-only, as in the paper).
	DataBytes uint64
	// Overwrite runs the queue as an overwriting log (set DataBytes
	// smaller than the inserted volume to exercise buffer reuse, which
	// ratchets persist levels through strong persist atomicity on
	// recycled blocks).
	Overwrite bool
	// Integrity runs the queue with the corruption-detecting durable
	// format (internal/durable) — CRC-framed entries and dual-copy
	// pointer words — so benchmarks expose the framing overhead.
	Integrity bool
}

func (w *Workload) normalize() error {
	if w.Threads <= 0 {
		w.Threads = 1
	}
	if w.Inserts <= 0 {
		w.Inserts = 1000
	}
	if w.PayloadLen <= 0 {
		w.PayloadLen = 100
	}
	if w.DataBytes == 0 {
		slots := uint64(w.Inserts+w.Threads+1) * queue.SlotBytes(w.PayloadLen)
		w.DataBytes = slots + queue.SlotAlign
		if rem := w.DataBytes % queue.SlotAlign; rem != 0 {
			w.DataBytes += queue.SlotAlign - rem
		}
	}
	if w.DataBytes%queue.SlotAlign != 0 {
		return fmt.Errorf("bench: DataBytes %d not slot-aligned", w.DataBytes)
	}
	return nil
}

// String names the configuration compactly.
func (w Workload) String() string {
	return fmt.Sprintf("%v/%v/%dT", w.Design, w.Policy, w.Threads)
}

// Run executes the workload on the simulated machine, streaming events
// into sink, and returns the machine (for final-state inspection).
func Run(w Workload, sink trace.Sink) (*exec.Machine, error) {
	if err := w.normalize(); err != nil {
		return nil, err
	}
	m := exec.NewMachine(exec.Config{Threads: w.Threads, Seed: w.Seed, Sink: sink})
	s := m.SetupThread()
	q, err := queue.New(s, queue.Config{
		DataBytes:  w.DataBytes,
		Design:     w.Design,
		Policy:     w.Policy,
		MaxThreads: w.Threads,
		Overwrite:  w.Overwrite,
		Integrity:  w.Integrity,
	})
	if err != nil {
		return nil, err
	}
	per := w.Inserts / w.Threads
	extra := w.Inserts % w.Threads
	m.Run(func(t *exec.Thread) {
		n := per
		if t.TID() < extra {
			n++
		}
		for i := 0; i < n; i++ {
			id := uint64(t.TID())<<32 | uint64(i)
			t.BeginWork(id)
			q.Insert(t, queue.MakePayload(id, w.PayloadLen))
			t.EndWork(id)
		}
	})
	return m, nil
}

// Trace executes the workload and returns the captured trace (for
// multi-parameter sweeps that replay one execution many times).
func Trace(w Workload) (*trace.Trace, error) {
	tr := &trace.Trace{}
	if _, err := Run(w, tr); err != nil {
		return nil, err
	}
	return tr, nil
}

// Simulate executes the workload once, streaming directly into a
// persistency-model simulator (no trace storage).
func Simulate(w Workload, p core.Params) (core.Result, error) {
	return SimulateProbed(w, p, nil)
}

// SimulateProbed is Simulate with a persist-timeline probe attached to
// the simulator (telemetry tracers implement core.Probe); a nil probe
// is plain Simulate.
func SimulateProbed(w Workload, p core.Params, probe core.Probe) (core.Result, error) {
	sim, err := core.AcquireSim(p)
	if err != nil {
		return core.Result{}, err
	}
	defer core.ReleaseSim(sim)
	if probe != nil {
		sim.SetProbe(probe)
	}
	if _, err := Run(w, sim); err != nil {
		return core.Result{}, err
	}
	if err := sim.Err(); err != nil {
		return core.Result{}, err
	}
	return sim.Result(), nil
}

// QueueMeta reports the persistent layout Run creates for w without
// executing the workload: queue.New allocates head, tail, then the data
// segment deterministically, so a fresh machine reproduces the
// addresses the real run will use.
func QueueMeta(w Workload) (queue.Meta, error) {
	if err := w.normalize(); err != nil {
		return queue.Meta{}, err
	}
	m := exec.NewMachine(exec.Config{Threads: w.Threads, Seed: w.Seed, Sink: trace.Discard})
	s := m.SetupThread()
	q, err := queue.New(s, queue.Config{
		DataBytes: w.DataBytes, Design: w.Design, Policy: w.Policy,
		MaxThreads: w.Threads, Overwrite: w.Overwrite, Integrity: w.Integrity,
	})
	if err != nil {
		return queue.Meta{}, err
	}
	return q.Meta(), nil
}

// SiteLabel maps persist addresses to the queue's annotation sites
// ("head", "tail", "slot data") given its layout — the labeler
// critical-path attribution reports use.
func SiteLabel(meta queue.Meta) func(memory.Addr) string {
	ptrSpan := memory.Addr(memory.WordSize)
	if meta.Integrity {
		ptrSpan = durable.WordBytes
	}
	return func(a memory.Addr) string {
		switch {
		case a >= meta.Head && a < meta.Head+ptrSpan:
			return "head"
		case a >= meta.Tail && a < meta.Tail+ptrSpan:
			return "tail"
		case a >= meta.Data && a < meta.Data+memory.Addr(meta.DataBytes):
			return "slot data"
		default:
			return "other"
		}
	}
}

// ModelFor maps an annotation policy to the persistency model it is
// written for (Table 1's column pairing: the Racing Epochs column is
// epoch persistency with racing annotations).
func ModelFor(p queue.Policy) core.Model {
	switch p {
	case queue.PolicyStrict:
		return core.Strict
	case queue.PolicyStrand:
		return core.Strand
	default:
		return core.Epoch
	}
}

// NativeRate measures the instruction execution rate: inserts/second of
// the native (non-simulated) queue twin with the same design, thread
// count, and payload size. This plays the role of the paper's Xeon
// E5645 measurement; only the ratio to persist-bound rates matters.
// The native twin ignores Integrity: framing costs persists, not
// instructions, so the instruction rate is the same either way.
func NativeRate(w Workload) (float64, error) {
	if err := w.normalize(); err != nil {
		return 0, err
	}
	q, err := queue.NewNative(queue.Config{
		DataBytes:  w.DataBytes,
		Design:     w.Design,
		MaxThreads: w.Threads,
	})
	if err != nil {
		return 0, err
	}
	per := w.Inserts / w.Threads
	if per == 0 {
		per = 1
	}
	payload := queue.MakePayload(1, w.PayloadLen)
	start := time.Now()
	done := make(chan struct{})
	for t := 0; t < w.Threads; t++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				q.Insert(payload)
			}
		}()
	}
	for t := 0; t < w.Threads; t++ {
		<-done
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(per*w.Threads) / elapsed.Seconds(), nil
}

// UnbufferedRate estimates throughput under *unbuffered* strict
// persistency (§4.1's baseline, before the buffered optimization):
// execution stalls for every placed persist, so per-item time is the
// instruction time plus persists-per-item × latency.
func UnbufferedRate(r core.Result, instrRate float64, latency time.Duration) float64 {
	if r.WorkItems == 0 || instrRate <= 0 {
		return 0
	}
	ppi := float64(r.Placed) / float64(r.WorkItems)
	t := 1/instrRate + ppi*latency.Seconds()
	return 1 / t
}
