package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// A parallel Table 1 run instrumented with the span tracer must
// reconcile: the per-worker span totals for the table1 sweep sum to
// exactly the sweep engine's sweep_items_total counter, and the
// exported span trace is a valid Chrome trace-event document carrying
// the run manifest.
func TestTable1SpansReconcileWithSweepTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanTracer(reg)
	cache := NewTraceCache(DefaultCacheEntries)
	cache.SetSpans(spans)
	cfg := Table1Config{
		Inserts: 200, Threads: []int{1, 2}, Seed: 42, InstrRate: 1e8,
		Sweep: sweep.Config{Parallel: 4, Registry: reg, Spans: spans},
		Cache: cache,
	}
	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}

	items := reg.Counter(telemetry.Label("sweep_items_total", "sweep", "table1")).Value()
	if items == 0 {
		t.Fatal("sweep_items_total{sweep=table1} = 0")
	}
	totals := spans.WorkerTotals("sweep", "table1")
	var spanned int64
	for w, tot := range totals {
		if w < 0 || w >= 4 {
			t.Errorf("span attributed to worker %d outside pool [0,4)", w)
		}
		if tot.Busy <= 0 {
			t.Errorf("worker %d: zero busy time over %d spans", w, tot.Count)
		}
		spanned += int64(tot.Count)
	}
	if spanned != items {
		t.Errorf("span totals sum to %d, sweep_items_total = %d", spanned, items)
	}

	// The trace cache must have recorded generate (miss) work too.
	if gen := spans.WorkerTotals("trace-cache", "generate"); len(gen) == 0 {
		t.Error("no trace-cache generate spans recorded")
	}

	var buf bytes.Buffer
	man := telemetry.NewManifest("bench-test")
	if err := spans.WriteChromeTrace(&buf, man); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("span trace is not valid Chrome trace JSON: %v", err)
	}
	slices := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			slices++
		}
	}
	if int64(slices) < items {
		t.Errorf("trace has %d slices, want at least %d sweep items", slices, items)
	}
	if man2, ok := doc.Metadata["manifest"].(map[string]any); !ok || man2["tool"] != "bench-test" {
		t.Errorf("metadata.manifest = %v", doc.Metadata["manifest"])
	}
}
