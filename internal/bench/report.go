package bench

import (
	"encoding/json"
	"io"

	"repro/internal/telemetry"
)

// Machine-readable run reports: every experiment's rows rendered as a
// stable JSON document (pqbench -json, and the checked-in
// BENCH_table1.json artifact). Enum-typed fields serialize as their
// string names so the documents survive enum renumbering.

// Report is the JSON envelope for one experiment run.
type Report struct {
	// Experiment names the experiment (pqbench -experiment value).
	Experiment string `json:"experiment"`
	// Manifest records the run's provenance (git SHA, toolchain,
	// flags, seeds, model grid) when the producing CLI attached one.
	Manifest *telemetry.Manifest `json:"manifest,omitempty"`
	// Config echoes the experiment's effective configuration.
	Config any `json:"config,omitempty"`
	// Rows holds the experiment's per-configuration results.
	Rows any `json:"rows"`
}

// WithManifest attaches a run manifest to the report and returns it.
func (r *Report) WithManifest(m *telemetry.Manifest) *Report {
	r.Manifest = m
	return r
}

// WriteJSON writes the report, indented, with a trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

type table1RowJSON struct {
	Design       string  `json:"design"`
	Policy       string  `json:"policy"`
	Model        string  `json:"model"`
	Threads      int     `json:"threads"`
	Persists     int64   `json:"persists"`
	Placed       int64   `json:"placed"`
	Coalesced    int64   `json:"coalesced"`
	CriticalPath int64   `json:"critical_path"`
	InstrRate    float64 `json:"instr_rate_per_s"`
	PersistRate  float64 `json:"persist_rate_per_s"`
	Normalized   float64 `json:"normalized"`
}

// Table1Report wraps Table 1 rows for JSON output.
func Table1Report(cfg Table1Config, rows []Table1Row) *Report {
	cfg.normalize()
	out := make([]table1RowJSON, 0, len(rows))
	for _, r := range rows {
		out = append(out, table1RowJSON{
			Design:       r.Design.String(),
			Policy:       r.Policy.String(),
			Model:        ModelFor(r.Policy).String(),
			Threads:      r.Threads,
			Persists:     r.Result.Persists,
			Placed:       r.Result.Placed,
			Coalesced:    r.Result.Coalesced,
			CriticalPath: r.CriticalPath,
			InstrRate:    r.InstrRate,
			PersistRate:  r.PersistRate,
			Normalized:   r.Normalized,
		})
	}
	return &Report{
		Experiment: "table1",
		Config: map[string]any{
			"inserts":     cfg.Inserts,
			"payload_len": cfg.PayloadLen,
			"threads":     cfg.Threads,
			"latency_ns":  cfg.Latency.Nanoseconds(),
			"seed":        cfg.Seed,
			"instr_rate":  cfg.InstrRate,
		},
		Rows: out,
	}
}

type fig2RowJSON struct {
	Policy       string `json:"policy"`
	Model        string `json:"model"`
	Persists     int    `json:"persists"`
	ProgramOrder int    `json:"program_order_edges"`
	Atomicity    int    `json:"atomicity_edges"`
	Conflict     int    `json:"conflict_edges"`
	CriticalPath int64  `json:"critical_path"`
}

// Fig2Report wraps Figure 2 rows for JSON output.
func Fig2Report(rows []Fig2Row) *Report {
	out := make([]fig2RowJSON, 0, len(rows))
	for _, r := range rows {
		out = append(out, fig2RowJSON{
			Policy: r.Policy.String(), Model: r.Model.String(),
			Persists: r.Persists, ProgramOrder: r.ProgramOrder,
			Atomicity: r.Atomicity, Conflict: r.Conflict,
			CriticalPath: r.CriticalPath,
		})
	}
	return &Report{Experiment: "fig2", Rows: out}
}

type fig3PointJSON struct {
	LatencyNS    int64   `json:"latency_ns"`
	Policy       string  `json:"policy"`
	Model        string  `json:"model"`
	RatePerS     float64 `json:"rate_per_s"`
	PersistBound bool    `json:"persist_bound"`
}

// Fig3Report wraps Figure 3 points for JSON output.
func Fig3Report(points []Fig3Point) *Report {
	out := make([]fig3PointJSON, 0, len(points))
	for _, p := range points {
		out = append(out, fig3PointJSON{
			LatencyNS: p.Latency.Nanoseconds(),
			Policy:    p.Policy.String(), Model: p.Model.String(),
			RatePerS: p.Rate, PersistBound: p.PersistBound,
		})
	}
	return &Report{Experiment: "fig3", Rows: out}
}

type granPointJSON struct {
	Granularity   uint64  `json:"granularity"`
	Policy        string  `json:"policy"`
	Model         string  `json:"model"`
	PathPerInsert float64 `json:"path_per_insert"`
}

// GranReport wraps a granularity sweep (Figures 4 and 5); experiment is
// "fig4" or "fig5".
func GranReport(experiment string, points []GranPoint) *Report {
	out := make([]granPointJSON, 0, len(points))
	for _, p := range points {
		out = append(out, granPointJSON{
			Granularity: p.Granularity,
			Policy:      p.Policy.String(), Model: p.Model.String(),
			PathPerInsert: p.PathPerInsert,
		})
	}
	return &Report{Experiment: experiment, Rows: out}
}

type windowPointJSON struct {
	Window        int64   `json:"window"`
	PathPerInsert float64 `json:"path_per_insert"`
	Coalesced     int64   `json:"coalesced"`
}

// WindowReport wraps the coalescing-window ablation for JSON output.
func WindowReport(points []WindowPoint) *Report {
	out := make([]windowPointJSON, 0, len(points))
	for _, p := range points {
		out = append(out, windowPointJSON{Window: p.Window, PathPerInsert: p.PathPerInsert, Coalesced: p.Coalesced})
	}
	return &Report{Experiment: "window", Rows: out}
}
