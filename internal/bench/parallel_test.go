package bench

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/sweep"
)

// The sweep-determinism contract at the experiment level: equal seeds
// must produce byte-identical JSON reports at any worker count. These
// tests byte-compare the -json output exactly as the CLI would emit it
// (InstrRate fixed so no wall-clock measurement enters the report).

func table1JSON(t *testing.T, parallel int) []byte {
	t.Helper()
	cfg := Table1Config{
		Inserts: 300, Threads: []int{1, 2}, Seed: 42, InstrRate: 1e6,
		Sweep: sweep.Config{Parallel: parallel},
	}
	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Table1Report(cfg, rows).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTable1ParallelMatchesSequential(t *testing.T) {
	want := table1JSON(t, 1)
	for _, workers := range []int{2, 8} {
		if got := table1JSON(t, workers); !bytes.Equal(got, want) {
			t.Fatalf("-parallel %d report differs from sequential:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

func granJSON(t *testing.T, parallel int) []byte {
	t.Helper()
	points, err := Fig4(GranularityConfig{
		Inserts: 300, Seed: 7,
		Sweep: sweep.Config{Parallel: parallel},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := GranReport("fig4", points).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGranSweepParallelMatchesSequential(t *testing.T) {
	want := granJSON(t, 1)
	if got := granJSON(t, 8); !bytes.Equal(got, want) {
		t.Fatalf("-parallel 8 report differs from sequential:\n%s\nvs\n%s", got, want)
	}
}

func fig3JSON(t *testing.T, parallel int) []byte {
	t.Helper()
	points, err := Fig3(Fig3Config{
		Inserts: 300, Seed: 11, InstrRate: 1e6,
		Sweep: sweep.Config{Parallel: parallel},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Fig3Report(points).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFig3ParallelMatchesSequential(t *testing.T) {
	want := fig3JSON(t, 1)
	if got := fig3JSON(t, 8); !bytes.Equal(got, want) {
		t.Fatalf("-parallel 8 report differs from sequential:\n%s\nvs\n%s", got, want)
	}
}

func TestJournalPSTMParallelMatchesSequential(t *testing.T) {
	seqJ, err := JournalTable(120, []int{1, 2}, 3, sweep.Config{Parallel: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	parJ, err := JournalTable(120, []int{1, 2}, 3, sweep.Config{Parallel: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqJ) != len(parJ) {
		t.Fatalf("journal row counts differ: %d vs %d", len(seqJ), len(parJ))
	}
	for i := range seqJ {
		if !reflect.DeepEqual(seqJ[i], parJ[i]) {
			t.Fatalf("journal row %d differs: %+v vs %+v", i, seqJ[i], parJ[i])
		}
	}

	seqP, err := PSTMTable(120, []int{1, 2}, 5, sweep.Config{Parallel: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	parP, err := PSTMTable(120, []int{1, 2}, 5, sweep.Config{Parallel: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqP) != len(parP) {
		t.Fatalf("pstm row counts differ: %d vs %d", len(seqP), len(parP))
	}
	for i := range seqP {
		if !reflect.DeepEqual(seqP[i], parP[i]) {
			t.Fatalf("pstm row %d differs: %+v vs %+v", i, seqP[i], parP[i])
		}
	}
}
