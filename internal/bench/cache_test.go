package bench

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/pstm"
	"repro/internal/queue"
	"repro/internal/trace"
)

func TestTraceCacheHitReturnsSameTrace(t *testing.T) {
	c := NewTraceCache(8)
	w := Workload{Design: queue.CWL, Policy: queue.PolicyEpoch, Threads: 2, Inserts: 50, Seed: 7}
	a, err := c.Trace(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Trace(w)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second lookup did not return the cached trace")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", s)
	}
	if s.EventsReplayed != int64(a.Len()) || s.EventsGenerated != int64(a.Len()) {
		t.Fatalf("event accounting %+v, trace has %d events", s, a.Len())
	}
	if got := s.ReplayRate(); got != 0.5 {
		t.Fatalf("ReplayRate = %v, want 0.5", got)
	}
}

// Replayed-from-cache simulation must be byte-identical to streaming the
// execution straight into the simulator, for every model and workload
// family — the equivalence the whole trace-once design rests on.
func TestSimulateCachedMatchesStreaming(t *testing.T) {
	c := NewTraceCache(16)
	for _, w := range []Workload{
		{Design: queue.CWL, Policy: queue.PolicyEpoch, Threads: 2, Inserts: 60, Seed: 3},
		{Design: queue.TwoLock, Policy: queue.PolicyStrand, Threads: 3, Inserts: 40, Seed: 9},
	} {
		for _, m := range core.Models {
			p := core.Params{Model: m, TrackWorkPath: true}
			want, err := Simulate(w, p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SimulateCached(c, w, p)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%v/%v: replayed result differs from streamed\nstream: %+v\nreplay: %+v", w, m, want, got)
			}
		}
	}

	jw := JournalWorkload{Policy: journal.PolicyEpoch, Threads: 2, Txns: 40, Seed: 5}
	jp := core.Params{Model: core.Epoch}
	wantJ, err := SimulateJournalCached(nil, jw, jp)
	if err != nil {
		t.Fatal(err)
	}
	gotJ, err := SimulateJournalCached(c, jw, jp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantJ, gotJ) {
		t.Fatalf("journal: replayed result differs from streamed")
	}

	pw := PSTMWorkload{Policy: pstm.PolicyStrand, Threads: 2, Txns: 40, Seed: 5}
	pp := core.Params{Model: core.Strand}
	wantP, err := SimulatePSTMCached(nil, pw, pp)
	if err != nil {
		t.Fatal(err)
	}
	gotP, err := SimulatePSTMCached(c, pw, pp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantP, gotP) {
		t.Fatalf("pstm: replayed result differs from streamed")
	}
}

func TestTraceCacheSingleflight(t *testing.T) {
	c := NewTraceCache(8)
	w := Workload{Design: queue.CWL, Policy: queue.PolicyStrict, Threads: 2, Inserts: 80, Seed: 11}
	const n = 16
	got := make([]*trace.Trace, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := c.Trace(w)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = tr
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatalf("goroutine %d got a different trace", i)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != n-1 {
		t.Fatalf("stats = %+v, want 1 miss / %d hits", s, n-1)
	}
}

func TestTraceCacheEviction(t *testing.T) {
	c := NewTraceCache(2)
	mk := func(seed int64) Workload {
		return Workload{Design: queue.CWL, Policy: queue.PolicyEpoch, Threads: 1, Inserts: 20, Seed: seed}
	}
	for seed := int64(1); seed <= 3; seed++ {
		if _, err := c.Trace(mk(seed)); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", s)
	}
	// Seed 1 was least recently used; asking again must regenerate.
	if _, err := c.Trace(mk(1)); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Misses != 4 || s.Hits != 0 {
		t.Fatalf("stats after re-request = %+v, want 4 misses", s)
	}
	// Seed 3 stayed resident.
	if _, err := c.Trace(mk(3)); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Hits != 1 {
		t.Fatalf("stats = %+v, want resident seed-3 hit", s)
	}
}

// TestTraceCacheEventBudget pins the resident-event bound: once the
// cache holds more events than the budget, least-recently-used traces
// are evicted even though the entry count is far under max, and
// unescaped traces (pure SimulateCached traffic) are pool-Released
// while escaped ones keep their events for the caller.
func TestTraceCacheEventBudget(t *testing.T) {
	c := NewTraceCache(64)
	mk := func(seed int64) Workload {
		return Workload{Design: queue.CWL, Policy: queue.PolicyEpoch, Threads: 1, Inserts: 30, Seed: seed}
	}
	// Escaped: the caller holds this trace across later evictions.
	held, err := c.Trace(mk(100))
	if err != nil {
		t.Fatal(err)
	}
	heldLen := held.Len()
	c.SetEventBudget(int64(heldLen) + 1) // room for ~one trace
	p := core.Params{Model: core.Epoch}
	want, err := Simulate(mk(1), p)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 4; seed++ {
		if _, err := SimulateCached(c, mk(seed), p); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Fatalf("stats = %+v, want budget-driven evictions", s)
	}
	if s.Resident > int64(heldLen)+1 {
		t.Fatalf("resident events %d exceed budget %d", s.Resident, heldLen+1)
	}
	// The escaped trace must survive eviction untouched (left to GC,
	// never pool-Released, which would zero its chunks).
	if held.Len() != heldLen {
		t.Fatalf("escaped trace shrank from %d to %d events after eviction", heldLen, held.Len())
	}
	// An evicted unescaped workload regenerates and still matches the
	// streamed result.
	got, err := SimulateCached(c, mk(1), p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("post-eviction regeneration differs from streamed result")
	}
}

// TestSimulateCachedConcurrent hammers one workload from many
// goroutines under a budget tight enough to force eviction churn — the
// refcount must keep every in-flight replay's trace alive (the race
// detector turns a release-during-replay into a hard failure).
func TestSimulateCachedConcurrent(t *testing.T) {
	c := NewTraceCache(64)
	c.SetEventBudget(1) // evict everything as soon as pins drop
	w := Workload{Design: queue.CWL, Policy: queue.PolicyEpoch, Threads: 2, Inserts: 40, Seed: 13}
	p := core.Params{Model: core.Epoch}
	want, err := Simulate(w, p)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				got, err := SimulateCached(c, w, p)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(want, got) {
					t.Error("concurrent cached result differs from streamed")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestTraceCacheCachesErrors(t *testing.T) {
	c := NewTraceCache(8)
	calls := 0
	boom := errors.New("boom")
	gen := func() (*trace.Trace, error) { calls++; return nil, boom }
	type key struct{ k int }
	for i := 0; i < 3; i++ {
		if _, err := c.lookup(key{1}, gen); err != boom {
			t.Fatalf("lookup error = %v, want boom", err)
		}
	}
	if calls != 1 {
		t.Fatalf("generator ran %d times, want 1 (errors must be cached)", calls)
	}
}

func TestTraceCacheNil(t *testing.T) {
	var c *TraceCache
	w := Workload{Design: queue.CWL, Policy: queue.PolicyEpoch, Threads: 1, Inserts: 20, Seed: 1}
	a, err := c.Trace(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Trace(w)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("nil cache must generate fresh traces")
	}
	if s := c.Stats(); s != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", s)
	}
	c.Observe(nil) // must not panic
}
