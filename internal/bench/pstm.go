package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/pstm"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// Durable-transaction (pstm) workload harness: persist concurrency of
// undo-log transactions under each annotation discipline.

// PSTMWorkload describes one durable-transaction benchmark
// configuration: each thread runs paired-word undo-log transactions
// against its own word pair, so transactions conflict only on the
// pstm metadata.
type PSTMWorkload struct {
	// Policy selects the annotation discipline.
	Policy pstm.Policy
	// Threads is the simulated thread count.
	Threads int
	// Txns is the total transaction count.
	Txns int
	// Seed drives interleavings.
	Seed int64
}

func (w *PSTMWorkload) normalize() {
	if w.Threads <= 0 {
		w.Threads = 1
	}
	if w.Txns <= 0 {
		w.Txns = 1000
	}
}

// RunPSTM executes the workload, streaming events into sink.
func RunPSTM(w PSTMWorkload, sink trace.Sink) error {
	w.normalize()
	m := exec.NewMachine(exec.Config{Threads: w.Threads, Seed: w.Seed, Sink: sink})
	s := m.SetupThread()
	h, err := pstm.New(s, pstm.Config{Words: 2 * w.Threads, UndoCap: 8, Policy: w.Policy})
	if err != nil {
		return err
	}
	per := w.Txns / w.Threads
	m.Run(func(t *exec.Thread) {
		for i := 0; i < per; i++ {
			id := uint64(t.TID())<<32 | uint64(i)
			t.BeginWork(id)
			h.Atomic(t, func(tx *pstm.Tx) {
				v := uint64(i + 1)
				tx.Store(t.TID()*2, v)
				tx.Store(t.TID()*2+1, v)
			})
			t.EndWork(id)
		}
	})
	return nil
}

// PSTMTrace executes the workload and returns the captured trace.
func PSTMTrace(w PSTMWorkload) (*trace.Trace, error) {
	tr := &trace.Trace{}
	if err := RunPSTM(w, tr); err != nil {
		return nil, err
	}
	return tr, nil
}

// PSTMRow is one row of the pstm persist-concurrency table.
type PSTMRow struct {
	Policy     pstm.Policy
	Threads    int
	Result     core.Result
	PathPerTxn float64
}

// PSTMModelFor maps pstm policies to their target models.
func PSTMModelFor(p pstm.Policy) core.Model {
	switch p {
	case pstm.PolicyStrict:
		return core.Strict
	case pstm.PolicyStrand:
		return core.Strand
	default:
		return core.Epoch
	}
}

// PSTMTable evaluates persist concurrency of paired-word durable
// transactions (racing excluded: unsafe for this structure), fanning
// the (threads × policy) grid across sw workers. A non-nil cache
// materializes each (threads, policy) execution once and replays it on
// the pooled simulator path; repeated invocations reuse the traces.
func PSTMTable(txns int, threads []int, seed int64, sw sweep.Config, cache *TraceCache) ([]PSTMRow, error) {
	if txns <= 0 {
		txns = 1000
	}
	if len(threads) == 0 {
		threads = []int{1, 4}
	}
	type cell struct {
		threads int
		policy  pstm.Policy
	}
	var grid []cell
	for _, th := range threads {
		for _, pol := range pstm.Policies {
			if pol == pstm.PolicyRacingEpoch {
				continue
			}
			grid = append(grid, cell{th, pol})
		}
	}
	rows := make([]PSTMRow, 0, len(grid))
	err := sweep.Run(len(grid), sw.Named("pstm"),
		func(i int) (PSTMRow, error) {
			c := grid[i]
			w := PSTMWorkload{Policy: c.policy, Threads: c.threads, Txns: txns, Seed: seed}
			r, err := SimulatePSTMCached(cache, w, core.Params{Model: PSTMModelFor(c.policy)})
			if err != nil {
				return PSTMRow{}, fmt.Errorf("bench: pstm %v/%dT: %w", c.policy, c.threads, err)
			}
			return PSTMRow{Policy: c.policy, Threads: c.threads, Result: r, PathPerTxn: r.PathPerWork()}, nil
		},
		func(_ int, r PSTMRow) error {
			rows = append(rows, r)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderPSTM formats the pstm table.
func RenderPSTM(rows []PSTMRow) *stats.Table {
	t := stats.NewTable("policy", "threads", "critical-path", "path/txn", "coalesced")
	for _, r := range rows {
		t.AddRow(
			r.Policy.String(), fmt.Sprint(r.Threads),
			fmt.Sprint(r.Result.CriticalPath),
			fmt.Sprintf("%.2f", r.PathPerTxn),
			fmt.Sprint(r.Result.Coalesced),
		)
	}
	return t
}
