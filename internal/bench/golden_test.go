package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/queue"
)

// TestGoldenCriticalPaths pins exact simulation outputs for a fixed
// seed: any drift in the scheduler, the queue implementations, or the
// persistency models shows up here as a hard diff, not a silent
// methodology change. The numbers are the observed outputs at the time
// the test was written — they are a regression fence, not a claim from
// the paper. Update them deliberately (with a CHANGES.md note) when a
// semantic change is intended.
func TestGoldenCriticalPaths(t *testing.T) {
	cases := []struct {
		design    queue.Design
		model     core.Model
		policy    queue.Policy
		path      int64
		placed    int64
		coalesced int64
	}{
		{queue.CWL, core.Strict, queue.PolicyStrict, 32002, 32002, 0},
		{queue.CWL, core.Epoch, queue.PolicyEpoch, 4001, 32002, 0},
		{queue.CWL, core.Strand, queue.PolicyStrand, 3, 30003, 1999},
		{queue.TwoLock, core.Strict, queue.PolicyStrict, 13734, 31215, 406},
		{queue.TwoLock, core.Epoch, queue.PolicyEpoch, 553, 30553, 1050},
		{queue.TwoLock, core.Strand, queue.PolicyStrand, 3, 30003, 1533},
	}
	for _, c := range cases {
		w := Workload{
			Design: c.design, Policy: c.policy,
			Threads: 4, Inserts: 2000, PayloadLen: 100, Seed: 42,
		}
		r, err := Simulate(w, core.Params{Model: c.model})
		if err != nil {
			t.Fatalf("%v/%v: %v", c.design, c.model, err)
		}
		if r.CriticalPath != c.path || r.Placed != c.placed || r.Coalesced != c.coalesced {
			t.Errorf("%v/%v: (path, placed, coalesced) = (%d, %d, %d), golden (%d, %d, %d)",
				c.design, c.model, r.CriticalPath, r.Placed, r.Coalesced,
				c.path, c.placed, c.coalesced)
		}
	}
}
