package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/journal"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// Journal workload harness: the same persist-concurrency evaluation as
// Table 1, applied to the redo-journaled metadata store — the paper's
// journaled-file-system motivation (§6, §9).

// JournalWorkload describes one journal benchmark configuration.
type JournalWorkload struct {
	// Policy selects the annotation discipline.
	Policy journal.Policy
	// Threads is the simulated thread count.
	Threads int
	// Txns is the total transaction count.
	Txns int
	// BlocksPerTxn is the transaction write set size.
	BlocksPerTxn int
	// JournalBytes sizes the redo ring; 0 auto-sizes to avoid wraps.
	JournalBytes uint64
	// Seed drives interleavings.
	Seed int64
}

func (w *JournalWorkload) normalize() {
	if w.Threads <= 0 {
		w.Threads = 1
	}
	if w.Txns <= 0 {
		w.Txns = 1000
	}
	if w.BlocksPerTxn <= 0 {
		w.BlocksPerTxn = 2
	}
	if w.JournalBytes == 0 {
		per := uint64(w.BlocksPerTxn+1) * 128
		w.JournalBytes = uint64(w.Txns+w.Threads+2) * per
		if rem := w.JournalBytes % 64; rem != 0 {
			w.JournalBytes += 64 - rem
		}
	}
}

// RunJournal executes the workload, streaming events into sink. Each
// thread owns a disjoint block group, so transactions conflict only on
// the journal structures — the interesting part.
func RunJournal(w JournalWorkload, sink trace.Sink) error {
	w.normalize()
	m := exec.NewMachine(exec.Config{Threads: w.Threads, Seed: w.Seed, Sink: sink})
	s := m.SetupThread()
	st, err := journal.New(s, journal.Config{
		Blocks:       w.Threads * w.BlocksPerTxn,
		JournalBytes: w.JournalBytes,
		Policy:       w.Policy,
	})
	if err != nil {
		return err
	}
	per := w.Txns / w.Threads
	extra := w.Txns % w.Threads
	m.Run(func(t *exec.Thread) {
		n := per
		if t.TID() < extra {
			n++
		}
		base := t.TID() * w.BlocksPerTxn
		for i := 0; i < n; i++ {
			id := uint64(t.TID())<<32 | uint64(i)
			t.BeginWork(id)
			writes := make([]journal.Write, w.BlocksPerTxn)
			for b := 0; b < w.BlocksPerTxn; b++ {
				writes[b] = journal.Write{Block: base + b, Data: journal.MakeBlock(id + 1)}
			}
			st.Update(t, writes)
			t.EndWork(id)
		}
	})
	return nil
}

// JournalTrace executes the workload and returns the captured trace.
func JournalTrace(w JournalWorkload) (*trace.Trace, error) {
	tr := &trace.Trace{}
	if err := RunJournal(w, tr); err != nil {
		return nil, err
	}
	return tr, nil
}

// JournalRow is one row of the journal persist-concurrency table.
type JournalRow struct {
	Policy       journal.Policy
	Threads      int
	Result       core.Result
	PathPerTxn   float64
	CriticalPath int64
}

// JournalModelFor maps journal policies to their target models.
func JournalModelFor(p journal.Policy) core.Model {
	switch p {
	case journal.PolicyStrict:
		return core.Strict
	case journal.PolicyStrand:
		return core.Strand
	default:
		return core.Epoch
	}
}

// JournalTable evaluates persist concurrency of the journal under
// every policy and the given thread counts, fanning the (threads ×
// policy) grid across sw workers. A non-nil cache materializes each
// (threads, policy) execution once and replays it on the pooled
// simulator path; repeated invocations reuse the traces.
func JournalTable(txns int, threads []int, seed int64, sw sweep.Config, cache *TraceCache) ([]JournalRow, error) {
	if len(threads) == 0 {
		threads = []int{1, 4}
	}
	type cell struct {
		threads int
		policy  journal.Policy
	}
	var grid []cell
	for _, th := range threads {
		for _, pol := range journal.Policies {
			if pol == journal.PolicyRacingEpoch {
				continue // unsafe for this structure; excluded from the table
			}
			grid = append(grid, cell{th, pol})
		}
	}
	rows := make([]JournalRow, 0, len(grid))
	err := sweep.Run(len(grid), sw.Named("journal"),
		func(i int) (JournalRow, error) {
			c := grid[i]
			w := JournalWorkload{Policy: c.policy, Threads: c.threads, Txns: txns, Seed: seed}
			r, err := SimulateJournalCached(cache, w, core.Params{Model: JournalModelFor(c.policy)})
			if err != nil {
				return JournalRow{}, fmt.Errorf("bench: journal %v/%dT: %w", c.policy, c.threads, err)
			}
			return JournalRow{
				Policy: c.policy, Threads: c.threads, Result: r,
				PathPerTxn:   r.PathPerWork(),
				CriticalPath: r.CriticalPath,
			}, nil
		},
		func(_ int, r JournalRow) error {
			rows = append(rows, r)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderJournal formats the journal table.
func RenderJournal(rows []JournalRow) *stats.Table {
	t := stats.NewTable("policy", "threads", "critical-path", "path/txn", "coalesced")
	for _, r := range rows {
		t.AddRow(
			r.Policy.String(), fmt.Sprint(r.Threads),
			fmt.Sprint(r.CriticalPath),
			fmt.Sprintf("%.2f", r.PathPerTxn),
			fmt.Sprint(r.Result.Coalesced),
		)
	}
	return t
}
