package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/pstm"
	"repro/internal/sweep"
	"repro/internal/trace"
)

func TestRunJournalProducesWork(t *testing.T) {
	sim := core.MustNewSim(core.Params{Model: core.Epoch})
	if err := RunJournal(JournalWorkload{Policy: journal.PolicyEpoch, Threads: 3, Txns: 10, Seed: 1}, sim); err != nil {
		t.Fatal(err)
	}
	r := sim.Result()
	if r.WorkItems != 10 {
		t.Fatalf("work items = %d", r.WorkItems)
	}
	if r.Persists == 0 {
		t.Fatal("no persists")
	}
}

func TestJournalTableShape(t *testing.T) {
	rows, err := JournalTable(200, []int{1, 2}, 3, sweep.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 policies × 2 thread counts (racing excluded)
		t.Fatalf("rows = %d", len(rows))
	}
	at := func(p journal.Policy, th int) JournalRow {
		for _, r := range rows {
			if r.Policy == p && r.Threads == th {
				return r
			}
		}
		t.Fatalf("missing %v/%d", p, th)
		return JournalRow{}
	}
	s := at(journal.PolicyStrict, 1)
	e := at(journal.PolicyEpoch, 1)
	d := at(journal.PolicyStrand, 1)
	// Strict serializes every persist of a transaction (~41 for
	// 2-block transactions); epoch collapses each stage (~3); strand
	// coalesces the commit word and keeps only stage ordering.
	if s.PathPerTxn < 30 || s.PathPerTxn > 55 {
		t.Errorf("strict path/txn = %.1f", s.PathPerTxn)
	}
	if e.PathPerTxn < 2 || e.PathPerTxn > 4.5 {
		t.Errorf("epoch path/txn = %.1f", e.PathPerTxn)
	}
	if !(d.CriticalPath < e.CriticalPath && e.CriticalPath < s.CriticalPath) {
		t.Errorf("hierarchy: strand %d epoch %d strict %d", d.CriticalPath, e.CriticalPath, s.CriticalPath)
	}
	out := RenderJournal(rows).String()
	if !strings.Contains(out, "path/txn") || !strings.Contains(out, "strand") {
		t.Fatalf("rendering:\n%s", out)
	}
}

func TestPSTMTableShape(t *testing.T) {
	rows, err := PSTMTable(200, []int{1}, 2, sweep.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var strict, epoch float64
	for _, r := range rows {
		switch r.Policy {
		case pstm.PolicyStrict:
			strict = r.PathPerTxn
		case pstm.PolicyEpoch:
			epoch = r.PathPerTxn
		}
	}
	// Undo logging is barrier-heavy: epoch gains only ~2× over strict
	// (each write's record must precede its in-place update), unlike
	// the redo journal's stage-batched ~14×.
	if !(epoch < strict && epoch > strict/4) {
		t.Fatalf("pstm paths: strict %.1f epoch %.1f", strict, epoch)
	}
	if RenderPSTM(rows).String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestJournalModelFor(t *testing.T) {
	if JournalModelFor(journal.PolicyStrict) != core.Strict ||
		JournalModelFor(journal.PolicyEpoch) != core.Epoch ||
		JournalModelFor(journal.PolicyRacingEpoch) != core.Epoch ||
		JournalModelFor(journal.PolicyStrand) != core.Strand {
		t.Fatal("model pairing")
	}
}

func TestRunJournalTraceValid(t *testing.T) {
	tr := &trace.Trace{}
	if err := RunJournal(JournalWorkload{Policy: journal.PolicyStrand, Threads: 2, Txns: 8, Seed: 5}, tr); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	sum := trace.Summarize(tr)
	if sum.Strands != 8 {
		t.Fatalf("strands = %d", sum.Strands)
	}
	if sum.WorkItems != 8 {
		t.Fatalf("work items = %d", sum.WorkItems)
	}
}
