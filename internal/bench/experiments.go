package bench

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/queue"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// This file regenerates the paper's evaluation artifacts:
//
//	Table 1  — persist-bound insert rate normalized to instruction rate
//	Figure 2 — queue persist dependence structure (constraint classes)
//	Figure 3 — achievable rate vs. persist latency
//	Figure 4 — persist critical path vs. atomic persist granularity
//	Figure 5 — persist critical path vs. dependence tracking granularity

// DefaultLatency is the paper's headline persist latency (Table 1).
const DefaultLatency = 500 * time.Nanosecond

// Table1Config parameterizes the Table 1 reproduction.
type Table1Config struct {
	// Inserts per configuration. Zero means 20000.
	Inserts int
	// PayloadLen is the entry size; the paper inserts 100-byte entries.
	PayloadLen int
	// Threads lists the thread counts (paper: 1 and 8).
	Threads []int
	// Latency is the persist latency (paper: 500 ns).
	Latency time.Duration
	// Seed drives interleavings.
	Seed int64
	// InstrRate optionally fixes the instruction rate (items/s) instead
	// of measuring the native queue — used by tests for determinism.
	InstrRate float64
	// Sweep controls grid parallelism; the zero value runs on
	// GOMAXPROCS workers. Results are identical at any worker count.
	Sweep sweep.Config
	// Cache, when non-nil, materializes each distinct workload's trace
	// once and replays it for every cell that shares it (the four
	// policies of a (threads, design) pair differ only by annotation
	// sites, so their traces differ and do not collide — but repeated
	// invocations and the simulator's pooled replay path still win).
	// Nil streams each cell's execution directly into its simulator.
	Cache *TraceCache
}

func (c *Table1Config) normalize() {
	if c.Inserts <= 0 {
		c.Inserts = 20000
	}
	if c.PayloadLen <= 0 {
		c.PayloadLen = 100
	}
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 8}
	}
	if c.Latency <= 0 {
		c.Latency = DefaultLatency
	}
}

// Table1Row is one cell group of Table 1.
type Table1Row struct {
	Design       queue.Design
	Policy       queue.Policy
	Threads      int
	Result       core.Result
	InstrRate    float64 // items/s, native execution
	PersistRate  float64 // items/s, persist-bound
	Normalized   float64 // PersistRate / InstrRate (Table 1's number)
	CriticalPath int64
}

// Table1 runs every (design × policy × threads) configuration and
// returns the rows in presentation order. The simulations fan out
// across cfg.Sweep workers; rows are merged in grid order, so the
// output is identical at any worker count.
func Table1(cfg Table1Config) ([]Table1Row, error) {
	cfg.normalize()
	// Phase 1, sequential: NativeRate is a wall-clock measurement of
	// real goroutines — running simulations beside it would skew the
	// denominator, so every rate is measured before the fan-out.
	type cell struct {
		threads int
		design  queue.Design
		policy  queue.Policy
		instr   float64
	}
	var grid []cell
	for _, threads := range cfg.Threads {
		for _, design := range []queue.Design{queue.CWL, queue.TwoLock} {
			instr := cfg.InstrRate
			if instr <= 0 {
				var err error
				instr, err = NativeRate(Workload{
					Design: design, Threads: threads,
					Inserts: cfg.Inserts, PayloadLen: cfg.PayloadLen,
				})
				if err != nil {
					return nil, err
				}
			}
			for _, pol := range queue.Policies {
				grid = append(grid, cell{threads, design, pol, instr})
			}
		}
	}
	// Phase 2, parallel: each cell simulates independently; workers
	// share read-only traces through cfg.Cache when one is given.
	rows := make([]Table1Row, 0, len(grid))
	err := sweep.Run(len(grid), cfg.Sweep.Named("table1"),
		func(i int) (Table1Row, error) {
			c := grid[i]
			w := Workload{
				Design: c.design, Policy: c.policy, Threads: c.threads,
				Inserts: cfg.Inserts, PayloadLen: cfg.PayloadLen, Seed: cfg.Seed,
			}
			r, err := SimulateCached(cfg.Cache, w, core.Params{Model: ModelFor(c.policy)})
			if err != nil {
				return Table1Row{}, fmt.Errorf("bench: %v: %w", w, err)
			}
			pr := r.PersistBoundRate(cfg.Latency)
			return Table1Row{
				Design: c.design, Policy: c.policy, Threads: c.threads,
				Result: r, InstrRate: c.instr, PersistRate: pr,
				Normalized:   pr / c.instr,
				CriticalPath: r.CriticalPath,
			}, nil
		},
		func(_ int, row Table1Row) error {
			rows = append(rows, row)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTable1 formats rows the way the paper lays out Table 1: one row
// per thread count, normalized rates per design × policy; values ≥ 1
// (instruction-rate-bound, bold in the paper) carry a trailing '*'.
func RenderTable1(rows []Table1Row) *stats.Table {
	t := stats.NewTable(
		"threads",
		"cwl/strict", "cwl/epoch", "cwl/racing", "cwl/strand",
		"2lc/strict", "2lc/epoch", "2lc/racing", "2lc/strand",
	)
	cell := make(map[string]string)
	var threads []int
	seen := make(map[int]bool)
	for _, r := range rows {
		key := fmt.Sprintf("%d/%v/%v", r.Threads, r.Design, r.Policy)
		cell[key] = stats.FormatNorm(r.Normalized)
		if !seen[r.Threads] {
			seen[r.Threads] = true
			threads = append(threads, r.Threads)
		}
	}
	for _, th := range threads {
		row := []string{fmt.Sprintf("%d", th)}
		for _, d := range []queue.Design{queue.CWL, queue.TwoLock} {
			for _, p := range queue.Policies {
				row = append(row, cell[fmt.Sprintf("%d/%v/%v", th, d, p)])
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Fig3Config parameterizes the persist-latency sweep (CWL, 1 thread).
type Fig3Config struct {
	// Inserts per trace. Zero means 20000.
	Inserts int
	// PayloadLen defaults to 100.
	PayloadLen int
	// Latencies to sweep; nil means a log sweep of 10 ns – 100 µs.
	Latencies []time.Duration
	// Seed drives the interleaving.
	Seed int64
	// InstrRate optionally fixes the instruction rate for determinism.
	InstrRate float64
	// Sweep controls grid parallelism (one worker per policy here).
	Sweep sweep.Config
	// Cache optionally replays cached traces instead of re-executing.
	Cache *TraceCache
}

// Fig3Point is one plotted point: achievable rate at one latency under
// one policy/model pairing.
type Fig3Point struct {
	Latency time.Duration
	Policy  queue.Policy
	Model   core.Model
	// Rate is min(instruction rate, persist-bound rate), items/s.
	Rate float64
	// PersistBound reports whether persists (not instructions) limit.
	PersistBound bool
}

// Fig3Policies are the models Figure 3 plots.
var Fig3Policies = []queue.Policy{queue.PolicyStrict, queue.PolicyEpoch, queue.PolicyStrand}

// Fig3 sweeps persist latency. The critical path is latency-independent,
// so each policy's workload runs once and the sweep is analytic — the
// same trick lets the paper plot smooth curves.
func Fig3(cfg Fig3Config) ([]Fig3Point, error) {
	if cfg.Inserts <= 0 {
		cfg.Inserts = 20000
	}
	if cfg.PayloadLen <= 0 {
		cfg.PayloadLen = 100
	}
	if len(cfg.Latencies) == 0 {
		for _, ns := range []int64{10, 30, 100, 300, 1000, 3000, 10000, 30000, 100000} {
			cfg.Latencies = append(cfg.Latencies, time.Duration(ns)*time.Nanosecond)
		}
	}
	instr := cfg.InstrRate
	if instr <= 0 {
		var err error
		instr, err = NativeRate(Workload{Design: queue.CWL, Threads: 1, Inserts: cfg.Inserts, PayloadLen: cfg.PayloadLen})
		if err != nil {
			return nil, err
		}
	}
	// One simulation per policy runs in parallel; the analytic latency
	// sweep happens at merge time, in policy order.
	var out []Fig3Point
	err := sweep.Run(len(Fig3Policies), cfg.Sweep.Named("fig3"),
		func(i int) (core.Result, error) {
			pol := Fig3Policies[i]
			w := Workload{Design: queue.CWL, Policy: pol, Threads: 1, Inserts: cfg.Inserts, PayloadLen: cfg.PayloadLen, Seed: cfg.Seed}
			return SimulateCached(cfg.Cache, w, core.Params{Model: ModelFor(pol)})
		},
		func(i int, r core.Result) error {
			pol := Fig3Policies[i]
			model := ModelFor(pol)
			for _, lat := range cfg.Latencies {
				pb := r.PersistBoundRate(lat)
				rate := math.Min(instr, pb)
				out = append(out, Fig3Point{
					Latency: lat, Policy: pol, Model: model,
					Rate: rate, PersistBound: pb < instr,
				})
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BreakEvenLatency returns the largest swept latency at which the
// policy still achieves instruction rate (the x-coordinate where its
// Figure 3 curve leaves the compute-bound plateau), or 0 if it is
// persist-bound everywhere.
func BreakEvenLatency(points []Fig3Point, pol queue.Policy) time.Duration {
	var best time.Duration
	for _, p := range points {
		if p.Policy == pol && !p.PersistBound && p.Latency > best {
			best = p.Latency
		}
	}
	return best
}

// RenderFig3 formats the sweep as a table: rows = latency, one column
// per policy (million inserts/s, the paper's y-axis).
func RenderFig3(points []Fig3Point) *stats.Table {
	t := stats.NewTable("latency", "strict", "epoch", "strand")
	byLat := make(map[time.Duration]map[queue.Policy]float64)
	var order []time.Duration
	for _, p := range points {
		m, ok := byLat[p.Latency]
		if !ok {
			m = make(map[queue.Policy]float64)
			byLat[p.Latency] = m
			order = append(order, p.Latency)
		}
		m[p.Policy] = p.Rate
	}
	for _, lat := range order {
		t.AddRow(
			lat.String(),
			fmt.Sprintf("%.3f", byLat[lat][queue.PolicyStrict]/1e6),
			fmt.Sprintf("%.3f", byLat[lat][queue.PolicyEpoch]/1e6),
			fmt.Sprintf("%.3f", byLat[lat][queue.PolicyStrand]/1e6),
		)
	}
	return t
}

// GranularityConfig parameterizes Figures 4 and 5 (CWL, 1 thread,
// strict vs. epoch).
type GranularityConfig struct {
	// Inserts per trace; zero means 5000.
	Inserts int
	// PayloadLen defaults to 100.
	PayloadLen int
	// Granularities to sweep; nil means 8..256.
	Granularities []uint64
	// Seed drives the interleaving.
	Seed int64
	// Sweep controls grid parallelism across (policy × granularity).
	Sweep sweep.Config
	// Cache optionally holds the per-policy traces, so Fig4 and Fig5
	// (which sweep the same workloads) generate them once between them.
	Cache *TraceCache
}

func (c *GranularityConfig) normalize() {
	if c.Inserts <= 0 {
		c.Inserts = 5000
	}
	if c.PayloadLen <= 0 {
		c.PayloadLen = 100
	}
	if len(c.Granularities) == 0 {
		c.Granularities = []uint64{8, 16, 32, 64, 128, 256}
	}
}

// GranPoint is one point of Figure 4 or 5: average persist critical
// path per insert at one granularity.
type GranPoint struct {
	Granularity   uint64
	Policy        queue.Policy
	Model         core.Model
	PathPerInsert float64
}

// granPolicies are the two curves in Figures 4 and 5.
var granPolicies = []queue.Policy{queue.PolicyStrict, queue.PolicyEpoch}

func granularitySweep(cfg GranularityConfig, mkParams func(core.Model, uint64) core.Params) ([]GranPoint, error) {
	cfg.normalize()
	// Phase 1: one trace per policy, generated in parallel (each
	// trace's SC execution stays single-pass within its worker).
	traces := make([]*trace.Trace, len(granPolicies))
	err := sweep.Run(len(granPolicies), cfg.Sweep.Named("gran-trace"),
		func(i int) (*trace.Trace, error) {
			pol := granPolicies[i]
			w := Workload{Design: queue.CWL, Policy: pol, Threads: 1, Inserts: cfg.Inserts, PayloadLen: cfg.PayloadLen, Seed: cfg.Seed}
			return cfg.Cache.Trace(w)
		},
		func(i int, tr *trace.Trace) error {
			traces[i] = tr
			return nil
		})
	if err != nil {
		return nil, err
	}
	// Phase 2: the (policy × granularity) grid; core.Simulate only
	// reads the shared trace, so workers can share it freely.
	ng := len(cfg.Granularities)
	out := make([]GranPoint, 0, len(granPolicies)*ng)
	err = sweep.Run(len(granPolicies)*ng, cfg.Sweep.Named("gran"),
		func(i int) (GranPoint, error) {
			pol := granPolicies[i/ng]
			g := cfg.Granularities[i%ng]
			model := ModelFor(pol)
			sp := cfg.Sweep.Spans.Start("simulate", model.String()).Arg("granularity", g)
			r, err := core.Simulate(traces[i/ng], mkParams(model, g))
			sp.End()
			if err != nil {
				return GranPoint{}, err
			}
			return GranPoint{Granularity: g, Policy: pol, Model: model, PathPerInsert: r.PathPerWork()}, nil
		},
		func(_ int, p GranPoint) error {
			out = append(out, p)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig4 sweeps atomic persist granularity (tracking fixed at 8 B):
// larger atomic persists let strict persistency coalesce toward epoch's
// critical path; epoch barely moves.
func Fig4(cfg GranularityConfig) ([]GranPoint, error) {
	return granularitySweep(cfg, func(m core.Model, g uint64) core.Params {
		return core.Params{Model: m, AtomicGranularity: g, TrackingGranularity: 8}
	})
}

// Fig5 sweeps dependence tracking granularity (atomic persists fixed at
// 8 B): coarse tracking reintroduces constraints via persist false
// sharing, degrading epoch toward strict; strict barely moves.
func Fig5(cfg GranularityConfig) ([]GranPoint, error) {
	return granularitySweep(cfg, func(m core.Model, g uint64) core.Params {
		return core.Params{Model: m, AtomicGranularity: 8, TrackingGranularity: g}
	})
}

// RenderGran formats a granularity sweep: rows = granularity, columns =
// strict and epoch path-per-insert.
func RenderGran(points []GranPoint, axis string) *stats.Table {
	t := stats.NewTable(axis, "strict", "epoch")
	type key struct {
		g uint64
		p queue.Policy
	}
	vals := make(map[key]float64)
	var order []uint64
	seen := make(map[uint64]bool)
	for _, p := range points {
		vals[key{p.Granularity, p.Policy}] = p.PathPerInsert
		if !seen[p.Granularity] {
			seen[p.Granularity] = true
			order = append(order, p.Granularity)
		}
	}
	for _, g := range order {
		t.AddRow(
			fmt.Sprintf("%dB", g),
			fmt.Sprintf("%.2f", vals[key{g, queue.PolicyStrict}]),
			fmt.Sprintf("%.2f", vals[key{g, queue.PolicyEpoch}]),
		)
	}
	return t
}

// WindowPoint is one row of the coalescing-window ablation: how a
// finite persist buffer bounds strand persistency's otherwise unbounded
// head-pointer coalescing on the queue.
type WindowPoint struct {
	// Window is the coalescing window in placed persists (0 = unbounded).
	Window int64
	// PathPerInsert is the resulting critical path per insert.
	PathPerInsert float64
	// Coalesced counts merged persists.
	Coalesced int64
}

// WindowAblation sweeps the coalescing window for the strand-annotated
// CWL queue (1 thread); the per-window simulations run on sw workers
// over one shared trace (cached across invocations when cache is
// non-nil).
func WindowAblation(inserts int, seed int64, windows []int64, sw sweep.Config, cache *TraceCache) ([]WindowPoint, error) {
	if inserts <= 0 {
		inserts = 5000
	}
	if len(windows) == 0 {
		windows = []int64{0, 1024, 256, 64, 16, 4}
	}
	w := Workload{Design: queue.CWL, Policy: queue.PolicyStrand, Threads: 1, Inserts: inserts, PayloadLen: 100, Seed: seed}
	tr, err := cache.Trace(w)
	if err != nil {
		return nil, err
	}
	out := make([]WindowPoint, 0, len(windows))
	err = sweep.Run(len(windows), sw.Named("window"),
		func(i int) (WindowPoint, error) {
			sp := sw.Spans.Start("simulate", core.Strand.String()).Arg("window", windows[i])
			r, err := core.Simulate(tr, core.Params{Model: core.Strand, CoalesceWindow: windows[i]})
			sp.End()
			if err != nil {
				return WindowPoint{}, err
			}
			return WindowPoint{Window: windows[i], PathPerInsert: r.PathPerWork(), Coalesced: r.Coalesced}, nil
		},
		func(_ int, p WindowPoint) error {
			out = append(out, p)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RenderWindow formats the window ablation.
func RenderWindow(points []WindowPoint) *stats.Table {
	t := stats.NewTable("window", "path/insert", "coalesced")
	for _, p := range points {
		label := fmt.Sprint(p.Window)
		if p.Window == 0 {
			label = "inf"
		}
		t.AddRow(label, fmt.Sprintf("%.4f", p.PathPerInsert), fmt.Sprint(p.Coalesced))
	}
	return t
}

// Fig2Row is one row of the Figure 2 reproduction: the persist
// dependence structure of the CWL queue under each annotation policy,
// quantified as constraint-edge counts by class plus the resulting
// critical path. Relaxation shows up as edge classes disappearing:
// epoch removes the intra-insert serialization (the paper's "A"
// constraints), strand removes inter-insert serialization ("B").
type Fig2Row struct {
	Policy       queue.Policy
	Model        core.Model
	Persists     int
	ProgramOrder int
	Atomicity    int
	Conflict     int
	CriticalPath int64
}

// Fig2 builds the constraint DAG of a small CWL run per policy. Trace
// generation is hoisted into its own phase — the trace depends only on
// the policy, not on anything the graph phase varies — so each
// execution runs exactly once (and is shared across invocations when
// cache is non-nil) before the graph builders fan out over sw workers.
func Fig2(inserts int, seed int64, sw sweep.Config, cache *TraceCache) ([]Fig2Row, error) {
	if inserts <= 0 {
		inserts = 50
	}
	// Phase 1: one trace per policy.
	traces := make([]*trace.Trace, len(queue.Policies))
	err := sweep.Run(len(queue.Policies), sw.Named("fig2-trace"),
		func(i int) (*trace.Trace, error) {
			pol := queue.Policies[i]
			w := Workload{Design: queue.CWL, Policy: pol, Threads: 1, Inserts: inserts, PayloadLen: 100, Seed: seed}
			return cache.Trace(w)
		},
		func(i int, tr *trace.Trace) error {
			traces[i] = tr
			return nil
		})
	if err != nil {
		return nil, err
	}
	// Phase 2: constraint graphs over the read-only traces.
	rows := make([]Fig2Row, 0, len(queue.Policies))
	err = sweep.Run(len(queue.Policies), sw.Named("fig2"),
		func(i int) (Fig2Row, error) {
			pol := queue.Policies[i]
			model := ModelFor(pol)
			sp := sw.Spans.Start("graph", "build").Arg("model", model.String())
			g, err := graph.Build(traces[i], core.Params{Model: model})
			if err == nil {
				sp.Arg("frontier-ranges", g.Stats.FrontierRanges).Arg("peak-ranges", g.Stats.PeakRanges)
			}
			sp.End()
			if err != nil {
				return Fig2Row{}, err
			}
			counts := g.EdgeCounts()
			return Fig2Row{
				Policy: pol, Model: model, Persists: g.Len(),
				ProgramOrder: counts[graph.ProgramOrder],
				Atomicity:    counts[graph.Atomicity],
				Conflict:     counts[graph.Conflict],
				CriticalPath: g.CriticalPath(),
			}, nil
		},
		func(_ int, r Fig2Row) error {
			rows = append(rows, r)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFig2 formats the dependence-structure comparison.
func RenderFig2(rows []Fig2Row) *stats.Table {
	t := stats.NewTable("policy", "model", "persists", "prog-order", "atomicity", "conflict", "critical-path")
	for _, r := range rows {
		t.AddRow(
			r.Policy.String(), r.Model.String(),
			fmt.Sprintf("%d", r.Persists),
			fmt.Sprintf("%d", r.ProgramOrder),
			fmt.Sprintf("%d", r.Atomicity),
			fmt.Sprintf("%d", r.Conflict),
			fmt.Sprintf("%d", r.CriticalPath),
		)
	}
	return t
}
