package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/queue"
	"repro/internal/sweep"
)

func TestWorkloadNormalize(t *testing.T) {
	w := Workload{Design: queue.CWL}
	if err := w.normalize(); err != nil {
		t.Fatal(err)
	}
	if w.Threads != 1 || w.Inserts == 0 || w.PayloadLen != 100 {
		t.Fatalf("defaults: %+v", w)
	}
	if w.DataBytes%queue.SlotAlign != 0 {
		t.Fatal("auto-sized DataBytes unaligned")
	}
	if w.String() == "" {
		t.Fatal("empty workload name")
	}
}

func TestRunProducesExpectedWork(t *testing.T) {
	w := Workload{Design: queue.CWL, Policy: queue.PolicyEpoch, Threads: 3, Inserts: 10, PayloadLen: 40, Seed: 1}
	r, err := Simulate(w, core.Params{Model: core.Epoch})
	if err != nil {
		t.Fatal(err)
	}
	if r.WorkItems != 10 {
		t.Fatalf("work items = %d, want 10 (uneven split must still sum)", r.WorkItems)
	}
	if r.Persists == 0 || r.CriticalPath == 0 {
		t.Fatalf("no persists simulated: %+v", r)
	}
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(Table1Config{
		Inserts: 400, PayloadLen: 100, Threads: []int{1, 4},
		Latency: 500 * time.Nanosecond, InstrRate: 4e6, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*2*4 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(d queue.Design, p queue.Policy, th int) Table1Row {
		for _, r := range rows {
			if r.Design == d && r.Policy == p && r.Threads == th {
				return r
			}
		}
		t.Fatalf("missing row %v/%v/%d", d, p, th)
		return Table1Row{}
	}

	// Paper shape 1: strict persistency is persist-bound and far below
	// instruction rate; CWL 1T suffers roughly a 30× slowdown.
	s1 := get(queue.CWL, queue.PolicyStrict, 1)
	if s1.Normalized > 0.2 {
		t.Errorf("CWL/strict/1T normalized = %v, expected heavily persist-bound", s1.Normalized)
	}
	ppw := float64(s1.CriticalPath) / float64(s1.Result.WorkItems)
	if ppw < 10 || ppw > 25 {
		t.Errorf("CWL/strict/1T path per insert = %.1f, expected ~16", ppw)
	}

	// Paper shape 2: epoch persistency removes intra-insert
	// serialization: CWL 1T path per insert ≈ 2.
	e1 := get(queue.CWL, queue.PolicyEpoch, 1)
	eppw := float64(e1.CriticalPath) / float64(e1.Result.WorkItems)
	if eppw < 1.5 || eppw > 3.5 {
		t.Errorf("CWL/epoch/1T path per insert = %.2f, expected ~2", eppw)
	}
	if e1.Normalized <= s1.Normalized {
		t.Error("epoch should outperform strict")
	}

	// Paper shape 3: racing epochs equal epoch at one thread (races
	// cannot occur within one thread), and help at several threads.
	r1 := get(queue.CWL, queue.PolicyRacingEpoch, 1)
	if r1.CriticalPath != e1.CriticalPath {
		t.Errorf("racing (%d) != epoch (%d) at 1T", r1.CriticalPath, e1.CriticalPath)
	}
	e4 := get(queue.CWL, queue.PolicyEpoch, 4)
	r4 := get(queue.CWL, queue.PolicyRacingEpoch, 4)
	if r4.CriticalPath > e4.CriticalPath {
		t.Errorf("racing at 4T (%d) should not exceed epoch (%d)", r4.CriticalPath, e4.CriticalPath)
	}

	// Paper shape 4: strand reaches (or vastly exceeds) instruction
	// rate even single-threaded.
	st1 := get(queue.CWL, queue.PolicyStrand, 1)
	if st1.Normalized < 1 {
		t.Errorf("CWL/strand/1T normalized = %v, expected ≥ 1", st1.Normalized)
	}
	if st1.CriticalPath > e1.CriticalPath {
		t.Error("strand should relax epoch further")
	}

	// Paper shape 5: 2LC under strict persistency is persist-bound and
	// roughly thread-insensitive (everything serializes).
	t2s1 := get(queue.TwoLock, queue.PolicyStrict, 1)
	t2s4 := get(queue.TwoLock, queue.PolicyStrict, 4)
	if t2s1.Normalized > 0.2 || t2s4.Normalized > 0.2 {
		t.Errorf("2LC/strict normalized = %v / %v, expected persist-bound", t2s1.Normalized, t2s4.Normalized)
	}
}

func TestRenderTable1(t *testing.T) {
	rows, err := Table1(Table1Config{Inserts: 100, Threads: []int{1}, InstrRate: 1e6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTable1(rows).String()
	for _, col := range []string{"cwl/strict", "2lc/strand", "threads"} {
		if !strings.Contains(out, col) {
			t.Fatalf("missing column %q in:\n%s", col, out)
		}
	}
}

func TestFig3ShapeAndBreakEven(t *testing.T) {
	points, err := Fig3(Fig3Config{Inserts: 400, InstrRate: 4e6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Rates must be non-increasing in latency for each policy, and at
	// the lowest latency everything should be compute-bound.
	for _, pol := range Fig3Policies {
		var prev float64 = -1
		for _, p := range points {
			if p.Policy != pol {
				continue
			}
			if prev >= 0 && p.Rate > prev+1e-9 {
				t.Errorf("%v: rate increased with latency", pol)
			}
			prev = p.Rate
		}
	}
	// Break-even ordering: strict leaves the plateau first, strand last.
	bStrict := BreakEvenLatency(points, queue.PolicyStrict)
	bEpoch := BreakEvenLatency(points, queue.PolicyEpoch)
	bStrand := BreakEvenLatency(points, queue.PolicyStrand)
	if !(bStrict < bEpoch && bEpoch < bStrand) {
		t.Errorf("break-even ordering: strict %v, epoch %v, strand %v", bStrict, bEpoch, bStrand)
	}
	out := RenderFig3(points).String()
	if !strings.Contains(out, "latency") {
		t.Fatalf("fig3 rendering:\n%s", out)
	}
}

func TestFig4Shape(t *testing.T) {
	points, err := Fig4(GranularityConfig{Inserts: 300, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	at := func(p queue.Policy, g uint64) float64 {
		for _, pt := range points {
			if pt.Policy == p && pt.Granularity == g {
				return pt.PathPerInsert
			}
		}
		t.Fatalf("missing point %v/%d", p, g)
		return 0
	}
	// Strict improves with atomic persist size; epoch stays flat; they
	// converge at 256 B (paper Figure 4).
	if !(at(queue.PolicyStrict, 8) > 3*at(queue.PolicyStrict, 256)) {
		t.Errorf("strict@8=%.2f should far exceed strict@256=%.2f", at(queue.PolicyStrict, 8), at(queue.PolicyStrict, 256))
	}
	if ratio := at(queue.PolicyEpoch, 256) / at(queue.PolicyEpoch, 8); ratio < 0.5 || ratio > 1.5 {
		t.Errorf("epoch should be insensitive to atomic size, ratio %.2f", ratio)
	}
	if ratio := at(queue.PolicyStrict, 256) / at(queue.PolicyEpoch, 256); ratio > 1.6 {
		t.Errorf("strict@256 (%.2f) should approach epoch@256 (%.2f)", at(queue.PolicyStrict, 256), at(queue.PolicyEpoch, 256))
	}
	if RenderGran(points, "atomic").String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestFig5Shape(t *testing.T) {
	points, err := Fig5(GranularityConfig{Inserts: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	at := func(p queue.Policy, g uint64) float64 {
		for _, pt := range points {
			if pt.Policy == p && pt.Granularity == g {
				return pt.PathPerInsert
			}
		}
		t.Fatalf("missing point %v/%d", p, g)
		return 0
	}
	// Coarse tracking reintroduces constraints: epoch degrades toward
	// strict; strict is unaffected (paper Figure 5).
	if !(at(queue.PolicyEpoch, 256) > 3*at(queue.PolicyEpoch, 8)) {
		t.Errorf("epoch@256=%.2f should far exceed epoch@8=%.2f", at(queue.PolicyEpoch, 256), at(queue.PolicyEpoch, 8))
	}
	if ratio := at(queue.PolicyStrict, 256) / at(queue.PolicyStrict, 8); ratio < 0.8 || ratio > 1.3 {
		t.Errorf("strict should be insensitive to tracking size, ratio %.2f", ratio)
	}
	if ratio := at(queue.PolicyEpoch, 256) / at(queue.PolicyStrict, 256); ratio < 0.5 || ratio > 1.5 {
		t.Errorf("epoch@256 (%.2f) should approach strict@256 (%.2f)", at(queue.PolicyEpoch, 256), at(queue.PolicyStrict, 256))
	}
}

func TestFig2Shape(t *testing.T) {
	rows, err := Fig2(20, 6, sweep.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byPolicy := make(map[queue.Policy]Fig2Row)
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	// Same workload -> same persist count everywhere.
	n := byPolicy[queue.PolicyStrict].Persists
	for _, r := range rows {
		if r.Persists != n {
			t.Errorf("persist count differs: %v has %d, strict has %d", r.Policy, r.Persists, n)
		}
	}
	// Relaxation strictly reduces the critical path: strict > epoch ≥
	// racing ≥ strand (1 thread: epoch == racing).
	cp := func(p queue.Policy) int64 { return byPolicy[p].CriticalPath }
	if !(cp(queue.PolicyStrict) > cp(queue.PolicyEpoch)) {
		t.Errorf("strict CP %d should exceed epoch %d", cp(queue.PolicyStrict), cp(queue.PolicyEpoch))
	}
	if !(cp(queue.PolicyEpoch) >= cp(queue.PolicyStrand)) {
		t.Errorf("epoch CP %d should be ≥ strand %d", cp(queue.PolicyEpoch), cp(queue.PolicyStrand))
	}
	if RenderFig2(rows).String() == "" {
		t.Fatal("empty fig2 rendering")
	}
}

func TestNativeRatePositive(t *testing.T) {
	for _, d := range []queue.Design{queue.CWL, queue.TwoLock} {
		rate, err := NativeRate(Workload{Design: d, Threads: 2, Inserts: 5000, PayloadLen: 100})
		if err != nil {
			t.Fatal(err)
		}
		if rate <= 0 {
			t.Fatalf("%v: rate = %v", d, rate)
		}
	}
}

func TestUnbufferedRate(t *testing.T) {
	r := core.Result{Placed: 100, WorkItems: 10}
	// 10 persists/item × 1µs = 10µs/item plus 1µs instruction time.
	rate := UnbufferedRate(r, 1e6, time.Microsecond)
	if rate < 90e3*0.99 || rate > 91e3 {
		t.Fatalf("unbuffered rate = %v, want ~90.9k", rate)
	}
	if UnbufferedRate(core.Result{}, 1e6, time.Microsecond) != 0 {
		t.Fatal("zero work items should yield 0")
	}
}

func TestCoalesceWindowBoundsStrand(t *testing.T) {
	// With the paper's idealized unbounded coalescing, strand
	// persistency merges head-pointer persists essentially forever and
	// the critical path barely grows. A finite persist buffer
	// (CoalesceWindow) closes open persists, so head persists
	// periodically bump the path — strand stays far below epoch but is
	// no longer unbounded.
	w := Workload{Design: queue.CWL, Policy: queue.PolicyStrand, Threads: 1, Inserts: 600, Seed: 1}
	unbounded, err := Simulate(w, core.Params{Model: core.Strand})
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := Simulate(w, core.Params{Model: core.Strand, CoalesceWindow: 64})
	if err != nil {
		t.Fatal(err)
	}
	if windowed.CriticalPath <= unbounded.CriticalPath {
		t.Fatalf("finite window should ratchet the strand critical path: windowed %d, unbounded %d",
			windowed.CriticalPath, unbounded.CriticalPath)
	}
	epoch, err := Simulate(
		Workload{Design: queue.CWL, Policy: queue.PolicyEpoch, Threads: 1, Inserts: 600, Seed: 1},
		core.Params{Model: core.Epoch, CoalesceWindow: 64})
	if err != nil {
		t.Fatal(err)
	}
	if windowed.CriticalPath >= epoch.CriticalPath {
		t.Fatalf("windowed strand (%d) should still beat epoch (%d)", windowed.CriticalPath, epoch.CriticalPath)
	}
}

func TestOverwriteLogWorkload(t *testing.T) {
	// Overwrite mode wraps the buffer many times without panicking and
	// still produces a valid simulation.
	r, err := Simulate(
		Workload{Design: queue.CWL, Policy: queue.PolicyEpoch, Threads: 2, Inserts: 300, Seed: 2,
			DataBytes: 4096, Overwrite: true},
		core.Params{Model: core.Epoch})
	if err != nil {
		t.Fatal(err)
	}
	if r.WorkItems != 300 {
		t.Fatalf("work items = %d", r.WorkItems)
	}
}

func TestRacingPolicyActuallyRaces(t *testing.T) {
	// The paper's configurations by construction: the non-racing epoch
	// discipline (barriers around locks) produces no persist-epoch
	// races; the racing discipline produces them.
	races := func(pol queue.Policy) int {
		tr, err := Trace(Workload{Design: queue.CWL, Policy: pol, Threads: 4, Inserts: 40, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.DetectEpochRaces(tr, core.RaceConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Total
	}
	if n := races(queue.PolicyEpoch); n != 0 {
		t.Errorf("non-racing epoch policy raced %d times", n)
	}
	if n := races(queue.PolicyRacingEpoch); n == 0 {
		t.Error("racing policy produced no persist-epoch races")
	}
}

func TestModelFor(t *testing.T) {
	if ModelFor(queue.PolicyStrict) != core.Strict ||
		ModelFor(queue.PolicyEpoch) != core.Epoch ||
		ModelFor(queue.PolicyRacingEpoch) != core.Epoch ||
		ModelFor(queue.PolicyStrand) != core.Strand {
		t.Fatal("policy-model pairing wrong")
	}
}
