package bench

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// TraceCache memoizes workload traces so experiment grids generate each
// distinct SC execution exactly once and replay it across every model
// and granularity that wants it. Keys are the normalized workload
// structs themselves (Workload, JournalWorkload, PSTMWorkload — all
// comparable), so two requests collide exactly when they describe the
// same execution: same structure, same parameters, same seed.
//
// The cache is concurrency-safe and deduplicates in-flight generation:
// when several sweep workers ask for the same trace at once, one
// generates while the rest block on the entry's ready channel and then
// share the result. Failed generations are cached too, so a grid does
// not re-run a broken workload once per cell.
//
// Capacity is bounded two ways: by entry count and by total resident
// events (a byte proxy — chunked storage costs ~32 B/event). Inserting
// past either bound evicts least-recently-used completed entries. An
// evicted trace whose pointer was handed to a caller (Trace, Do and
// friends) is left to the garbage collector — the caller may still hold
// it. An evicted trace that never escaped the cache (pure
// SimulateCached traffic) is pool-Released so its chunks are recycled
// into the next fill instead of growing the heap; a per-entry refcount
// pins traces against release while a replay is in flight.
type TraceCache struct {
	mu       sync.Mutex
	max      int
	budget   int64 // max resident events across completed entries
	resident int64 // events held by completed entries, under mu
	entries  map[any]*cacheEntry
	tick     uint64 // LRU clock, advanced under mu

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	replayed  atomic.Int64 // events served from cache
	generated atomic.Int64 // events produced by cache fills

	// spans, when non-nil, records wall-clock spans (category
	// "trace-cache") for miss/generate and hit/replay work, so the
	// harness timeline shows where executions were paid for vs
	// replayed. Set once via SetSpans before concurrent use.
	spans *telemetry.SpanTracer
}

// cacheEntry is the singleflight slot for one workload key. The filling
// goroutine owns tr/err until it closes ready; waiters read them only
// after <-ready. done mirrors the channel state under TraceCache.mu so
// eviction can skip in-flight fills without racing on the channel.
type cacheEntry struct {
	ready   chan struct{}
	done    bool
	escaped bool  // trace pointer returned to a caller; never Release
	refs    int   // pins against eviction-release, under TraceCache.mu
	events  int64 // tr.Len() once done (0 for failed fills)
	lastUse uint64
	tr      *trace.Trace
	err     error
}

// DefaultCacheEntries is the default capacity bound (the pqbench and
// crashsim -trace-cache flags default to it).
const DefaultCacheEntries = 64

// DefaultCacheEventBudget bounds resident trace events (~32 B each, so
// this is roughly a 32 MiB cache). Large experiment grids whose cells
// are all distinct stream through the cache at a bounded footprint
// instead of materializing the whole grid's event history.
const DefaultCacheEventBudget = 1 << 20

// NewTraceCache returns a cache holding at most maxEntries traces
// (maxEntries <= 0 means DefaultCacheEntries) and at most
// DefaultCacheEventBudget resident events.
func NewTraceCache(maxEntries int) *TraceCache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	return &TraceCache{
		max:     maxEntries,
		budget:  DefaultCacheEventBudget,
		entries: make(map[any]*cacheEntry, maxEntries),
	}
}

// SetSpans attaches a wall-clock span tracer; nil detaches. Safe on a
// nil cache. Call before the cache sees concurrent traffic.
func (c *TraceCache) SetSpans(st *telemetry.SpanTracer) {
	if c != nil {
		c.spans = st
	}
}

// SetEventBudget overrides the resident-event bound; n <= 0 restores
// the default. Not safe to call concurrently with lookups.
func (c *TraceCache) SetEventBudget(n int64) {
	if n <= 0 {
		n = DefaultCacheEventBudget
	}
	c.mu.Lock()
	c.budget = n
	c.evictLocked()
	c.mu.Unlock()
}

// get returns the pinned entry for key, creating an in-flight one on
// miss. The caller must call put when finished with the entry's trace;
// on miss the caller is the filling goroutine and must complete the
// entry via fill. escape marks the trace as handed out, disqualifying
// it from eviction-time release.
func (c *TraceCache) get(key any, escape bool) (e *cacheEntry, missed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.tick++
		e.lastUse = c.tick
		e.refs++
		if escape {
			e.escaped = true
		}
		c.hits.Add(1)
		return e, false
	}
	e = &cacheEntry{ready: make(chan struct{}), refs: 1, escaped: escape}
	c.tick++
	e.lastUse = c.tick
	c.entries[key] = e
	c.evictLocked()
	c.misses.Add(1)
	return e, true
}

// put drops the pin taken by get. An over-budget cache may have been
// waiting on this pin to evict.
func (c *TraceCache) put(e *cacheEntry) {
	c.mu.Lock()
	e.refs--
	c.evictLocked()
	c.mu.Unlock()
}

// fill completes a missed entry and wakes its waiters.
func (c *TraceCache) fill(e *cacheEntry, tr *trace.Trace, err error) {
	if err == nil {
		c.generated.Add(int64(tr.Len()))
	}
	c.mu.Lock()
	e.tr, e.err = tr, err
	e.done = true
	if err == nil {
		e.events = int64(tr.Len())
		c.resident += e.events
	}
	c.evictLocked()
	c.mu.Unlock()
	close(e.ready)
}

// lookup returns the trace for key, calling gen to fill on miss. A nil
// receiver is a pass-through: gen runs uncached, so every caller can
// thread an optional *TraceCache without branching. The returned trace
// escapes to the caller, so eviction will never pool-Release it.
func (c *TraceCache) lookup(key any, gen func() (*trace.Trace, error)) (*trace.Trace, error) {
	if c == nil {
		return gen()
	}
	e, missed := c.get(key, true)
	defer c.put(e)
	if missed {
		sp := c.spans.Start("trace-cache", "generate").Arg("key", fmt.Sprint(key))
		tr, err := gen()
		sp.End()
		c.fill(e, tr, err)
		return tr, err
	}
	sp := c.spans.Start("trace-cache", "hit").Arg("key", fmt.Sprint(key))
	<-e.ready
	sp.End()
	if e.err == nil {
		c.replayed.Add(int64(e.tr.Len()))
	}
	return e.tr, e.err
}

// evictLocked drops least-recently-used completed entries until both
// the entry count and the resident-event total are within bound.
// In-flight fills and pinned entries are skipped (their waiters hold
// the entry); if everything is pinned the cache runs over budget until
// pins drop. Traces that never escaped the cache are pool-Released so
// their chunks feed the next fill. The O(entries) scan is fine at the
// bounded sizes this cache runs at.
func (c *TraceCache) evictLocked() {
	for len(c.entries) > c.max || c.resident > c.budget {
		var victimKey any
		var victim *cacheEntry
		for k, e := range c.entries {
			if !e.done || e.refs > 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return
		}
		delete(c.entries, victimKey)
		c.resident -= victim.events
		if !victim.escaped && victim.err == nil {
			victim.tr.Release()
		}
		c.evictions.Add(1)
	}
}

// Do returns the trace for an arbitrary comparable key, filling via gen
// on miss — the entry point for callers whose workloads are not one of
// the built-in bench structs (e.g. crashsim's fault workloads). Keys of
// distinct types never collide, so callers need no namespacing beyond
// their own key type. A nil cache calls gen directly.
func (c *TraceCache) Do(key any, gen func() (*trace.Trace, error)) (*trace.Trace, error) {
	return c.lookup(key, gen)
}

// Trace returns the queue workload's trace, generating it at most once
// per distinct normalized workload. A nil cache generates directly.
func (c *TraceCache) Trace(w Workload) (*trace.Trace, error) {
	if err := w.normalize(); err != nil {
		return nil, err
	}
	return c.lookup(w, func() (*trace.Trace, error) { return Trace(w) })
}

// JournalTrace is Trace for the journal workload.
func (c *TraceCache) JournalTrace(w JournalWorkload) (*trace.Trace, error) {
	w.normalize()
	return c.lookup(w, func() (*trace.Trace, error) { return JournalTrace(w) })
}

// PSTMTrace is Trace for the durable-transaction workload.
func (c *TraceCache) PSTMTrace(w PSTMWorkload) (*trace.Trace, error) {
	w.normalize()
	return c.lookup(w, func() (*trace.Trace, error) { return PSTMTrace(w) })
}

// streamSim executes a workload body once, streaming straight into a
// pooled simulator (no trace storage) — the uncached fast path.
func streamSim(p core.Params, run func(trace.Sink) error) (core.Result, error) {
	sim, err := core.AcquireSim(p)
	if err != nil {
		return core.Result{}, err
	}
	defer core.ReleaseSim(sim)
	if err := run(sim); err != nil {
		return core.Result{}, err
	}
	if err := sim.Err(); err != nil {
		return core.Result{}, err
	}
	return sim.Result(), nil
}

// simulateStream is the shared cached-simulation core. On a cache miss
// it executes the workload exactly once, teeing the event stream into
// both the cache's trace and a pooled simulator, so the filling caller
// pays one pass — no generate-then-replay double walk. On a hit it
// replays the cached trace through core.Simulate's pooled path. Both
// paths produce byte-identical results — the simulator never reads
// Event.Seq, the only field replay rewrites.
//
// A simulator error on the miss path is parameter-specific and must not
// poison the cached trace for other parameter sets: the trace still
// installs whenever generation itself succeeded.
func (c *TraceCache) simulateStream(key any, p core.Params, run func(trace.Sink) error) (core.Result, error) {
	e, missed := c.get(key, false)
	defer c.put(e) // pin e.tr against eviction-release until replay ends
	if !missed {
		<-e.ready
		if e.err != nil {
			return core.Result{}, e.err
		}
		c.replayed.Add(int64(e.tr.Len()))
		sp := c.spans.Start("trace-cache", "replay").
			Arg("key", fmt.Sprint(key)).Arg("model", p.Model.String())
		r, err := core.Simulate(e.tr, p)
		sp.End()
		return r, err
	}
	sp := c.spans.Start("trace-cache", "generate").
		Arg("key", fmt.Sprint(key)).Arg("model", p.Model.String())
	defer sp.End()
	t := &trace.Trace{}
	sim, aerr := core.AcquireSim(p)
	if aerr != nil {
		// Bad simulation params: still fill the cache for callers with
		// valid ones, then surface the error.
		if rerr := run(t); rerr != nil {
			c.fill(e, nil, rerr)
			return core.Result{}, rerr
		}
		c.fill(e, t, nil)
		return core.Result{}, aerr
	}
	var res core.Result
	var simErr error
	rerr := run(trace.Tee{t, sim})
	if rerr == nil {
		if simErr = sim.Err(); simErr == nil {
			res = sim.Result()
		}
	}
	core.ReleaseSim(sim)
	if rerr != nil {
		c.fill(e, nil, rerr) // generation failed: cache the failure
		return core.Result{}, rerr
	}
	// A simulator error is parameter-specific and must not poison the
	// trace for other parameter sets: install it regardless.
	c.fill(e, t, nil)
	return res, simErr
}

// SimulateCached is Simulate through an optional trace cache: a nil
// cache streams the execution straight into the simulator (no trace
// storage, exactly Simulate); a non-nil cache fills or reuses the
// workload's cached trace, executing the workload at most once across
// all parameter sets that ask for it.
func SimulateCached(c *TraceCache, w Workload, p core.Params) (core.Result, error) {
	if c == nil {
		return Simulate(w, p)
	}
	if err := w.normalize(); err != nil {
		return core.Result{}, err
	}
	return c.simulateStream(w, p, func(s trace.Sink) error {
		_, err := Run(w, s)
		return err
	})
}

// SimulateJournalCached is SimulateCached for the journal workload.
func SimulateJournalCached(c *TraceCache, w JournalWorkload, p core.Params) (core.Result, error) {
	w.normalize()
	run := func(s trace.Sink) error { return RunJournal(w, s) }
	if c == nil {
		return streamSim(p, run)
	}
	return c.simulateStream(w, p, run)
}

// SimulatePSTMCached is SimulateCached for the durable-transaction
// workload.
func SimulatePSTMCached(c *TraceCache, w PSTMWorkload, p core.Params) (core.Result, error) {
	w.normalize()
	run := func(s trace.Sink) error { return RunPSTM(w, s) }
	if c == nil {
		return streamSim(p, run)
	}
	return c.simulateStream(w, p, run)
}

// CacheStats is a point-in-time snapshot of a TraceCache's counters.
type CacheStats struct {
	Hits      int64 // lookups served from an existing entry
	Misses    int64 // lookups that generated
	Evictions int64 // completed entries dropped for capacity
	Entries   int   // entries resident now (including in-flight)
	Resident  int64 // events held by completed entries right now
	// EventsReplayed counts trace events handed out from cache hits;
	// EventsGenerated counts events produced by fills. Their ratio is
	// the fraction of all simulated events that skipped re-execution.
	EventsReplayed  int64
	EventsGenerated int64
}

// ReplayRate is EventsReplayed / (EventsReplayed + EventsGenerated),
// or 0 before any traffic.
func (s CacheStats) ReplayRate() float64 {
	total := s.EventsReplayed + s.EventsGenerated
	if total == 0 {
		return 0
	}
	return float64(s.EventsReplayed) / float64(total)
}

// Stats snapshots the counters. Safe on a nil cache (all zeros).
func (c *TraceCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	n := len(c.entries)
	res := c.resident
	c.mu.Unlock()
	return CacheStats{
		Hits:            c.hits.Load(),
		Misses:          c.misses.Load(),
		Evictions:       c.evictions.Load(),
		Entries:         n,
		Resident:        res,
		EventsReplayed:  c.replayed.Load(),
		EventsGenerated: c.generated.Load(),
	}
}

// Observe publishes the cache's counters into reg under stable metric
// names. telemetry cannot import bench (it would cycle through sweep),
// so the adapter lives here, in observe.go style. No-op on a nil cache.
func (c *TraceCache) Observe(reg *telemetry.Registry) {
	if c == nil {
		return
	}
	s := c.Stats()
	reg.SetHelp("trace_cache_hits_total", "trace lookups served from cache")
	reg.SetHelp("trace_cache_misses_total", "trace lookups that generated a fresh execution")
	reg.SetHelp("trace_cache_evictions_total", "cached traces dropped for capacity")
	reg.SetHelp("trace_cache_entries", "traces resident in the cache")
	reg.SetHelp("trace_cache_resident_events", "trace events held by the cache right now")
	reg.SetHelp("trace_cache_events_replayed_total", "trace events served from cache instead of re-execution")
	reg.SetHelp("trace_cache_events_generated_total", "trace events produced by cache fills")
	reg.SetHelp("trace_cache_replay_rate", "fraction of trace events served by replay")
	reg.Counter("trace_cache_hits_total").Add(s.Hits)
	reg.Counter("trace_cache_misses_total").Add(s.Misses)
	reg.Counter("trace_cache_evictions_total").Add(s.Evictions)
	reg.Gauge("trace_cache_entries").Set(float64(s.Entries))
	reg.Gauge("trace_cache_resident_events").Set(float64(s.Resident))
	reg.Counter("trace_cache_events_replayed_total").Add(s.EventsReplayed)
	reg.Counter("trace_cache_events_generated_total").Add(s.EventsGenerated)
	reg.Gauge("trace_cache_replay_rate").Set(s.ReplayRate())
}
